// Package apsp is a from-scratch Go reproduction of
//
//	Udit Agarwal and Vijaya Ramachandran,
//	"Distributed Weighted All Pairs Shortest Paths Through Pipelining",
//	IPDPS 2019.
//
// It implements, on top of a faithful CONGEST-model simulator, every
// algorithm the paper describes: the pipelined (h,k)-SSP Algorithm 1 with
// its key κ = d·γ + l and multi-entry lists (Theorem I.1), the simplified
// short-range Algorithm 2 and its extension (Lemma II.15), consistent
// h-hop tree (CSSSP) construction (Sec. III-A), blocker-set computation
// including the pipelined score updates of Algorithm 4 (Sec. III-B), the
// composite Algorithm 3 realizing the W- and Δ-parameterized APSP/k-SSP
// bounds (Theorems I.2 and I.3), and the (1+ε)-approximate APSP of
// Theorem I.5 — together with the baselines the paper builds on
// (Lenzen–Peleg unweighted pipelining, positive-weight pipelining,
// distributed Bellman–Ford).
//
// Every distributed computation runs on the simulator in internal/congest,
// which enforces the model (one O(log n)-bit message per link direction
// per round) and reports rounds, messages and per-link congestion — the
// quantities the paper's theorems bound. Results are validated against
// sequential references (Dijkstra, Floyd–Warshall, h-hop dynamic
// programming).
//
// # Quick start
//
//	g := apsp.RandomGraph(64, 256, apsp.GenOpts{Seed: 1, MaxW: 16, ZeroFrac: 0.2})
//	res, err := apsp.PipelinedAPSP(g, 0)   // Theorem I.1(ii)
//	// res.Dist[s][v], res.Stats.Rounds, res.Bound ...
//
// # Reproduction findings
//
// The conference pseudocode of Algorithm 1 under-determines two rules, and
// the literal readings are incorrect on small instances this repository
// found (see internal/core and EXPERIMENTS.md): the INSERT eviction can
// discard a due-but-unsent entry that uniquely carries a downstream h-hop
// shortest path, and the Step 13 ν-gate can reject such an entry outright.
// The default ModePareto discipline — keep exactly the per-source Pareto
// frontier of (distance, hops) — retains the paper's keys and schedule,
// is provably correct, and is what all composite algorithms use; the
// paper-literal machinery remains available as ModePaper for the bound
// and ablation experiments.
package apsp
