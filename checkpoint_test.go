package apsp

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/approx"
	"repro/internal/bellman"
	"repro/internal/checkpoint"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/hssp"
	"repro/internal/posweight"
	"repro/internal/scaling"
	"repro/internal/shortrange"
	"repro/internal/unweighted"
)

// These tests are the crash/restore conformance gate: killing a run at an
// arbitrary round barrier, serializing the snapshot, and resuming it in a
// fresh engine must reproduce the uninterrupted run bit-exactly —
// distances, parents, logical Stats and the observer stream — for every
// protocol family, on both schedulers, with and without an adversarial
// delivery substrate underneath.

// ckptRun executes one protocol invocation: sched and net configure the
// engine, pol is the checkpoint policy under test (nil = none). It returns
// a deep-comparable result payload plus the logical Stats.
type ckptRun func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error)

// difftestInstance is the fixed instance a conformance sweep runs on.
type difftestInstance struct {
	G       *graph.Graph
	Sources []int
	H       int
}

func ckptInstance(seed int64) difftestInstance {
	return difftestInstance{
		G:       graph.Random(20, 60, graph.GenOpts{Seed: seed, MaxW: 6, ZeroFrac: 0.2, Directed: true}),
		Sources: []int{0, 7, 13},
		H:       6,
	}
}

// ckptProbe is one (engine run index, checkpoint round) cell.
type ckptProbe struct{ run, round int }

var (
	// singleRunProbes cover protocols with one engine run; multiRunProbes
	// add later engine runs of multi-phase pipelines (the resume
	// re-executes the earlier phases deterministically first).
	singleRunProbes = []ckptProbe{{0, 1}, {0, 2}, {0, 5}}
	multiRunProbes  = []ckptProbe{{0, 1}, {0, 2}, {0, 5}, {2, 1}, {2, 2}}
)

// sweepCheckpointConformance runs the kill/restore matrix for one protocol:
// scheduler × {no substrate, all-faults substrate} × probe cells, each cell
// compared bit-exactly against the fault-free dense baseline. Cells whose
// checkpoint never fires (the probed engine run terminates before the
// probed round) are skipped, but at least three cells must fire.
func sweepCheckpointConformance(t *testing.T, in difftestInstance, probes []ckptProbe, run ckptRun) {
	t.Helper()
	base, baseStats, err := run(in, congest.SchedulerDense, nil, nil)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	plans := []*faults.Plan{nil, faultPlanAll(41)}
	netOf := func(p *faults.Plan) congest.Network {
		if p == nil {
			return nil
		}
		return faults.New(*p)
	}
	fired := 0
	for _, sched := range []congest.Scheduler{congest.SchedulerDense, congest.SchedulerActive} {
		for _, plan := range plans {
			for _, pr := range probes {
				cell := fmt.Sprintf("sched=%v plan=%s run=%d round=%d", sched, planName(plan), pr.run, pr.round)
				k := &checkpoint.Keeper{}
				pol := &congest.CheckpointPolicy{AtRound: pr.round, Run: pr.run, Stop: true, Sink: k.Sink}
				_, _, err := run(in, sched, netOf(plan), pol)
				if err == nil {
					continue // probed run never reached the probed round
				}
				if !errors.Is(err, congest.ErrCheckpointStop) {
					t.Fatalf("%s: kill: want ErrCheckpointStop, got %v", cell, err)
				}
				snap, saves := k.Latest()
				if snap == nil || saves != 1 {
					t.Fatalf("%s: %d snapshots delivered", cell, saves)
				}
				if snap.Round != pr.round || snap.RunIdx != pr.run {
					t.Fatalf("%s: snapshot at run=%d round=%d", cell, snap.RunIdx, snap.Round)
				}
				fired++
				// The resumed engine must accept the snapshot only through
				// its serialized form: the disk format is the contract.
				b, err := snap.MarshalBinary()
				if err != nil {
					t.Fatalf("%s: marshal: %v", cell, err)
				}
				snap2 := &congest.Snapshot{}
				if err := snap2.UnmarshalBinary(b); err != nil {
					t.Fatalf("%s: unmarshal: %v", cell, err)
				}
				res, stats, err := run(in, sched, netOf(plan), &congest.CheckpointPolicy{Resume: snap2})
				if err != nil {
					t.Fatalf("%s: resume: %v", cell, err)
				}
				if stats != baseStats {
					t.Fatalf("%s: resumed stats diverge: %+v vs baseline %+v", cell, stats, baseStats)
				}
				if !reflect.DeepEqual(res, base) {
					t.Fatalf("%s: resumed results diverge from uninterrupted run", cell)
				}
			}
		}
	}
	if fired < 3 {
		t.Fatalf("only %d checkpoint cells fired; the probe rounds no longer exercise this protocol", fired)
	}
}

func TestCheckpointConformanceCore(t *testing.T) {
	sweepCheckpointConformance(t, ckptInstance(3), singleRunProbes,
		func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error) {
			res, err := core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H, Scheduler: sched, Network: net, Checkpoint: pol})
			if err != nil {
				return nil, congest.Stats{}, err
			}
			return []interface{}{res.Dist, res.Hops, res.Parent, res.LateSends, res.Collisions, res.Missed}, res.Stats, nil
		})
}

func TestCheckpointConformancePosweight(t *testing.T) {
	in := ckptInstance(4)
	in.G = graph.Random(20, 60, graph.GenOpts{Seed: 4, MaxW: 6, MinW: 1, Directed: true})
	sweepCheckpointConformance(t, in, singleRunProbes,
		func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error) {
			res, err := posweight.Run(in.G, posweight.Opts{Sources: in.Sources, Scheduler: sched, Network: net, Checkpoint: pol})
			if err != nil {
				return nil, congest.Stats{}, err
			}
			return []interface{}{res.Dist, res.Parent, res.LateSends, res.MissedSends}, res.Stats, nil
		})
}

func TestCheckpointConformanceUnweighted(t *testing.T) {
	sweepCheckpointConformance(t, ckptInstance(5), singleRunProbes,
		func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error) {
			res, err := unweighted.KSource(in.G, in.Sources, congest.Config{Scheduler: sched, Network: net, Checkpoint: pol})
			if err != nil {
				return nil, congest.Stats{}, err
			}
			return []interface{}{res.Dist, res.Parent}, res.Stats, nil
		})
}

func TestCheckpointConformanceBellman(t *testing.T) {
	sweepCheckpointConformance(t, ckptInstance(6), singleRunProbes,
		func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error) {
			res, err := bellman.Run(in.G, bellman.Opts{Sources: in.Sources, H: in.H, Scheduler: sched, Network: net, Checkpoint: pol})
			if err != nil {
				return nil, congest.Stats{}, err
			}
			return []interface{}{res.Dist, res.Parent}, res.Stats, nil
		})
}

func TestCheckpointConformanceShortRange(t *testing.T) {
	sweepCheckpointConformance(t, ckptInstance(7), singleRunProbes,
		func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error) {
			res, err := shortrange.Run(in.G, shortrange.Opts{Sources: in.Sources, H: in.H, Scheduler: sched, Network: net, Checkpoint: pol})
			if err != nil {
				return nil, congest.Stats{}, err
			}
			return []interface{}{res.Dist, res.Hops, res.Snap}, res.Stats, nil
		})
}

func TestCheckpointConformanceScaling(t *testing.T) {
	sweepCheckpointConformance(t, ckptInstance(8), multiRunProbes,
		func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error) {
			res, err := scaling.Run(in.G, scaling.Opts{Sources: in.Sources, Scheduler: sched, Network: net, Checkpoint: pol})
			if err != nil {
				return nil, congest.Stats{}, err
			}
			return []interface{}{res.Dist, res.PhaseRounds}, res.Stats, nil
		})
}

// TestCheckpointConformanceBlockerAPSP covers the full multi-phase
// pipeline (cssp → blocker → per-blocker SSSP → broadcast): a checkpoint
// in a later engine run resumes by re-executing the earlier phases
// deterministically, then restoring mid-phase.
func TestCheckpointConformanceBlockerAPSP(t *testing.T) {
	in := ckptInstance(9)
	in.G = graph.Random(14, 42, graph.GenOpts{Seed: 9, MaxW: 6, ZeroFrac: 0.2, Directed: true})
	sweepCheckpointConformance(t, in, multiRunProbes,
		func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error) {
			res, err := hssp.Run(in.G, hssp.Opts{Sources: in.Sources, Scheduler: sched, Network: net, Checkpoint: pol})
			if err != nil {
				return nil, congest.Stats{}, err
			}
			return []interface{}{res.Dist, res.Q, res.H, res.PhaseRounds}, res.Stats, nil
		})
}

func TestCheckpointConformanceApprox(t *testing.T) {
	in := ckptInstance(10)
	in.G = graph.Random(14, 42, graph.GenOpts{Seed: 10, MaxW: 6, ZeroFrac: 0.2, Directed: true})
	sweepCheckpointConformance(t, in, multiRunProbes,
		func(in difftestInstance, sched congest.Scheduler, net congest.Network, pol *congest.CheckpointPolicy) (interface{}, congest.Stats, error) {
			res, err := approx.Run(in.G, approx.Opts{Sources: in.Sources, Eps: 0.5, Scheduler: sched, Network: net, Checkpoint: pol})
			if err != nil {
				return nil, congest.Stats{}, err
			}
			return []interface{}{res.Scaled, res.Scales, res.PhaseRounds}, res.Stats, nil
		})
}

// TestCheckpointObserverSplice asserts the strongest stream invariant: the
// killed run's observer stream concatenated with the resumed run's stream
// equals the uninterrupted run's stream event-for-event — the restore
// really does continue at the exact barrier, on both schedulers.
func TestCheckpointObserverSplice(t *testing.T) {
	in := ckptInstance(11)
	for _, sched := range []congest.Scheduler{congest.SchedulerDense, congest.SchedulerActive} {
		run := func(pol *congest.CheckpointPolicy) *streamRecorder {
			rec := &streamRecorder{}
			_, err := core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H, Scheduler: sched, Obs: rec, Checkpoint: pol})
			if pol != nil && pol.Stop {
				if !errors.Is(err, congest.ErrCheckpointStop) {
					t.Fatalf("sched=%v: want ErrCheckpointStop, got %v", sched, err)
				}
			} else if err != nil {
				t.Fatalf("sched=%v: %v", sched, err)
			}
			return rec
		}
		baseRec := run(nil)
		const R = 4
		k := &checkpoint.Keeper{}
		killRec := run(&congest.CheckpointPolicy{AtRound: R, Stop: true, Sink: k.Sink})
		snap, _ := k.Latest()
		if snap == nil {
			t.Fatalf("sched=%v: no snapshot", sched)
		}
		resRec := run(&congest.CheckpointPolicy{Resume: snap})
		spliced := append(append([]congest.RoundEvent(nil), killRec.rounds...), resRec.rounds...)
		if !reflect.DeepEqual(spliced, baseRec.rounds) {
			t.Fatalf("sched=%v: RoundDone splice diverges: %d+%d events vs %d",
				sched, len(killRec.rounds), len(resRec.rounds), len(baseRec.rounds))
		}
		sends := append(append([][3]int(nil), killRec.sends...), resRec.sends...)
		if !reflect.DeepEqual(sends, baseRec.sends) {
			t.Fatalf("sched=%v: NodeSends splice diverges", sched)
		}
	}
}

// TestCheckpointResumeUnderChaos round-trips the delivery substrate's
// state through a snapshot: under the all-faults plan, a checkpoint taken
// at round 6 by a run resumed from round 3 must be byte-identical —
// in-flight packets, per-link sequence and ACK cursors included — to the
// round-6 checkpoint of an uninterrupted run.
func TestCheckpointResumeUnderChaos(t *testing.T) {
	in := ckptInstance(12)
	plan := faults.All(5)
	snapAt := func(pol *congest.CheckpointPolicy, k *checkpoint.Keeper) *congest.Snapshot {
		_, err := core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H, Network: faults.New(plan), Checkpoint: pol})
		if !errors.Is(err, congest.ErrCheckpointStop) {
			t.Fatalf("want ErrCheckpointStop, got %v", err)
		}
		snap, _ := k.Latest()
		if snap == nil {
			t.Fatal("no snapshot delivered")
		}
		return snap
	}
	k6 := &checkpoint.Keeper{}
	direct := snapAt(&congest.CheckpointPolicy{AtRound: 6, Stop: true, Sink: k6.Sink}, k6)
	k3 := &checkpoint.Keeper{}
	snap3 := snapAt(&congest.CheckpointPolicy{AtRound: 3, Stop: true, Sink: k3.Sink}, k3)
	if len(snap3.Net) == 0 {
		t.Fatal("round-3 snapshot carries no substrate state; the chaos plan is not exercising the network")
	}
	k63 := &checkpoint.Keeper{}
	via := snapAt(&congest.CheckpointPolicy{Resume: snap3, AtRound: 6, Stop: true, Sink: k63.Sink}, k63)
	db, err := direct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	vb, err := via.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(db, vb) {
		t.Fatal("round-6 snapshot differs between the uninterrupted run and the run resumed from round 3")
	}
}

// panicNode injects a node-local fault: node `id` panics in round `at`.
type panicNode struct{ id, at int }

func (p *panicNode) Init(*congest.Context) {}
func (p *panicNode) Round(_ *congest.Context, r int, _ []congest.Message) {
	if p.id == 2 && r == p.at {
		panic("injected node fault")
	}
}
func (p *panicNode) Quiescent() bool { return false }

// TestCheckpointPanicBecomesCrashError: a panicking node must not take the
// engine (or the process) down — it surfaces as a structured CrashError
// naming the node and round, with Restart 0 (panics are not schedulable
// restarts).
func TestCheckpointPanicBecomesCrashError(t *testing.T) {
	g := graph.Random(8, 16, graph.GenOpts{Seed: 2, MaxW: 3})
	for _, workers := range []int{1, 4} {
		_, err := congest.Run(g, func(v int) congest.Node { return &panicNode{id: v, at: 3} },
			congest.Config{Workers: workers, MaxRounds: 10})
		var ce *congest.CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: want CrashError, got %v", workers, err)
		}
		if ce.Node != 2 || ce.Round != 3 || ce.Restart != 0 || ce.Panic == nil {
			t.Fatalf("workers=%d: CrashError fields %+v", workers, ce)
		}
	}
}

// TestCheckpointSupervisedRestart drives the full crash-stop story: a
// scripted crash kills node 1 at round 4 with a restart offset, the
// supervisor re-arms from the latest per-round checkpoint, and the
// restarted computation completes with the fault-free answer. The
// faults.Network is shared across attempts, so the fired crash stays
// disarmed.
func TestCheckpointSupervisedRestart(t *testing.T) {
	in := ckptInstance(13)
	base, err := core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H})
	if err != nil {
		t.Fatal(err)
	}
	net := faults.New(faults.Plan{})
	net.Script = []faults.Event{{Round: 4, From: 1, Kind: faults.CrashEvent, Arg: 1}}
	k := &checkpoint.Keeper{}
	pol := &congest.CheckpointPolicy{Every: 1, Sink: k.Sink}
	var res *core.Result
	restarts, err := checkpoint.Supervise(pol, k, 3, func() error {
		r, ferr := core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H, Network: net, Checkpoint: pol})
		if ferr == nil {
			res = r
		}
		return ferr
	})
	if err != nil {
		t.Fatalf("supervised run failed after %d restarts: %v", restarts, err)
	}
	if restarts != 1 {
		t.Fatalf("restarts = %d, want 1", restarts)
	}
	if disarmed := net.DisarmedCrashes(); len(disarmed) != 1 || disarmed[0] != 0 {
		t.Fatalf("DisarmedCrashes = %v, want [0]", disarmed)
	}
	if res.Stats != base.Stats || !reflect.DeepEqual(res.Dist, base.Dist) || !reflect.DeepEqual(res.Parent, base.Parent) {
		t.Fatal("supervised result diverges from the fault-free run")
	}
}

// TestCheckpointUnrecoverableCrash: a crash event with no restart offset
// must surface as an unrecoverable error, not loop the supervisor.
func TestCheckpointUnrecoverableCrash(t *testing.T) {
	in := ckptInstance(14)
	net := faults.New(faults.Plan{})
	net.Script = []faults.Event{{Round: 2, From: 3, Kind: faults.CrashEvent}}
	k := &checkpoint.Keeper{}
	pol := &congest.CheckpointPolicy{Every: 1, Sink: k.Sink}
	restarts, err := checkpoint.Supervise(pol, k, 3, func() error {
		_, ferr := core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H, Network: net, Checkpoint: pol})
		return ferr
	})
	var ce *congest.CrashError
	if !errors.As(err, &ce) || ce.Node != 3 || ce.Round != 2 {
		t.Fatalf("want unrecoverable CrashError for node 3 round 2, got %v", err)
	}
	if restarts != 0 {
		t.Fatalf("restarts = %d, want 0", restarts)
	}
}

// TestCheckpointFileRoundTrip covers the disk container: Save → Load →
// resume, plus metadata validation against the wrong computation.
func TestCheckpointFileRoundTrip(t *testing.T) {
	in := ckptInstance(15)
	base, err := core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/run.ckpt"
	meta := &checkpoint.Meta{
		Alg: "core", N: in.G.N(), M: in.G.M(), Graph: checkpoint.Fingerprint(in.G),
		Sources: in.Sources, H: in.H,
	}
	k := &checkpoint.Keeper{Path: path, Meta: meta}
	_, err = core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H,
		Checkpoint: &congest.CheckpointPolicy{AtRound: 3, Stop: true, Sink: k.Sink}})
	if !errors.Is(err, congest.ErrCheckpointStop) {
		t.Fatalf("want ErrCheckpointStop, got %v", err)
	}
	gotMeta, snap, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := gotMeta.ValidateAgainst(in.G, in.Sources, in.H, "", snap.Sched); err != nil {
		t.Fatalf("metadata should validate against its own run: %v", err)
	}
	other := graph.Random(20, 60, graph.GenOpts{Seed: 99, MaxW: 6, Directed: true})
	if err := gotMeta.ValidateAgainst(other, in.Sources, in.H, "", snap.Sched); err == nil {
		t.Fatal("metadata validated against a different graph")
	}
	if err := gotMeta.ValidateAgainst(in.G, in.Sources, in.H, "drop=0.2", snap.Sched); err == nil {
		t.Fatal("metadata validated against a different fault plan")
	}
	probe, err := checkpoint.ReadMetaOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Graph != meta.Graph || probe.Alg != "core" {
		t.Fatalf("ReadMetaOnly returned %+v", probe)
	}
	res, err := core.Run(in.G, core.Opts{Sources: in.Sources, H: in.H,
		Checkpoint: &congest.CheckpointPolicy{Resume: snap}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != base.Stats || !reflect.DeepEqual(res.Dist, base.Dist) {
		t.Fatal("resume from disk diverges from the uninterrupted run")
	}
}

// FuzzCheckpointRoundTrip fuzzes the kill/serialize/resume cycle over
// seeds, checkpoint rounds, schedulers and fault plans, asserting the
// resumed run is always bit-identical to the uninterrupted one.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(3), false, uint8(0))
	f.Add(int64(7), uint8(1), true, uint8(2))
	f.Add(int64(42), uint8(6), true, uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, round uint8, active bool, planSel uint8) {
		g := graph.Random(12, 30, graph.GenOpts{Seed: seed, MaxW: 5, ZeroFrac: 0.2, Directed: true})
		sources := []int{0, 5}
		R := int(round%8) + 1
		sched := congest.SchedulerDense
		if active {
			sched = congest.SchedulerActive
		}
		var plan *faults.Plan
		switch planSel % 3 {
		case 1:
			plan = &faults.Plan{Seed: seed}
		case 2:
			plan = faultPlanAll(seed)
		}
		netOf := func() congest.Network {
			if plan == nil {
				return nil
			}
			return faults.New(*plan)
		}
		run := func(net congest.Network, pol *congest.CheckpointPolicy) (*bellman.Result, error) {
			return bellman.Run(g, bellman.Opts{Sources: sources, H: 5, Scheduler: sched, Network: net, Checkpoint: pol})
		}
		base, err := run(netOf(), nil)
		if err != nil {
			t.Fatal(err)
		}
		k := &checkpoint.Keeper{}
		_, err = run(netOf(), &congest.CheckpointPolicy{AtRound: R, Stop: true, Sink: k.Sink})
		if err == nil {
			return // run finished before round R; nothing to resume
		}
		if !errors.Is(err, congest.ErrCheckpointStop) {
			t.Fatalf("R=%d: %v", R, err)
		}
		snap, _ := k.Latest()
		b, err := snap.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		snap2 := &congest.Snapshot{}
		if err := snap2.UnmarshalBinary(b); err != nil {
			t.Fatal(err)
		}
		res, err := run(netOf(), &congest.CheckpointPolicy{Resume: snap2})
		if err != nil {
			t.Fatalf("R=%d: resume: %v", R, err)
		}
		if res.Stats != base.Stats || !reflect.DeepEqual(res.Dist, base.Dist) || !reflect.DeepEqual(res.Parent, base.Parent) {
			t.Fatalf("R=%d sched=%v plan=%s: resumed run diverges", R, sched, planName(plan))
		}
	})
}
