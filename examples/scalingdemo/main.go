// Scaling demo: the extension the paper's conclusion (Sec. V) poses as an
// open problem — making the pipelined strategy work with Gabow's scaling
// technique — implemented and measured. Each bit phase is a pipelined
// (h,k)-SSP run under per-source reduced costs with the tiny promise
// Δ ≤ n−1; the "each source sees a different edge weight" obstacle is
// resolved by carrying the sender's previous-phase distance in the
// message. Rounds become weight-insensitive (∝ log W), and the crossover
// against the Δ-sensitive Theorem I.1(ii) appears as weights grow.
package main

import (
	"fmt"
	"log"

	apsp "repro"
)

func main() {
	const n = 24
	fmt.Printf("%8s %10s %16s %14s %10s\n", "W", "Δ", "scaling rounds", "Alg1 rounds", "winner")
	for _, w := range []int64{8, 128, 2048, 32768} {
		g := apsp.RandomGraph(n, 3*n, apsp.GenOpts{Seed: 5, MinW: w / 4, MaxW: w, Directed: true})
		delta := apsp.DeltaOf(g)

		sc, err := apsp.ScalingAPSP(g, nil)
		if err != nil {
			log.Fatal(err)
		}
		a1, err := apsp.PipelinedAPSP(g, delta)
		if err != nil {
			log.Fatal(err)
		}

		// Both must be exact.
		want := apsp.ExactAPSP(g)
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if sc.Dist[s][v] != want[s][v] || a1.Dist[s][v] != want[s][v] {
					log.Fatalf("W=%d: wrong distance at (%d,%d)", w, s, v)
				}
			}
		}
		winner := "Alg1"
		if sc.Stats.Rounds < a1.Stats.Rounds {
			winner = "scaling"
		}
		fmt.Printf("%8d %10d %10d (%2d phases) %10d %10s\n",
			w, delta, sc.Stats.Rounds, sc.Bits+1, a1.Stats.Rounds, winner)
	}
	fmt.Println("\nscaling rounds track log W; Algorithm 1 tracks √Δ — Sec. V's hoped-for behaviour")
}
