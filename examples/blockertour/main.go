// Blocker tour: walk through the machinery of Sec. III on one graph —
// build the consistent h-hop trees (CSSSP), compute a blocker set with the
// greedy of Sec. III-B (including Algorithm 4's pipelined updates), then
// run the full Algorithm 3 and compare its cost to the plain pipelined
// APSP (the Theorems I.2/I.3 trade-off).
package main

import (
	"fmt"
	"log"

	apsp "repro"
)

func main() {
	g := apsp.ZeroHeavyGraph(48, 192, 0.4, apsp.GenOpts{Seed: 5, MaxW: 12, Directed: true})
	sources := make([]int, g.N())
	for v := range sources {
		sources[v] = v
	}
	const h = 4

	// Step 1: the consistent h-hop tree collection.
	coll, err := apsp.BuildCSSSP(g, sources, h, 0)
	if err != nil {
		log.Fatal(err)
	}
	if bad := coll.Verify(g); len(bad) != 0 {
		log.Fatalf("CSSSP inconsistent: %s", bad[0])
	}
	deep := 0
	for i := range sources {
		for v := 0; v < g.N(); v++ {
			if coll.Depth[i][v] == h {
				deep++
			}
		}
	}
	fmt.Printf("CSSSP: %d trees of height ≤ %d, %d depth-%d leaves to cover, %d rounds\n",
		len(sources), h, deep, h, coll.Stats.Rounds)

	// Step 2: the blocker set.
	blk, err := apsp.ComputeBlockerSet(g, coll)
	if err != nil {
		log.Fatal(err)
	}
	if bad := apsp.VerifyBlockerCoverage(coll, blk.Q); len(bad) != 0 {
		log.Fatalf("uncovered path: %s", bad[0])
	}
	fmt.Printf("blocker: |Q| = %d picks %v…, phases %v\n", len(blk.Q), head(blk.Q, 6), blk.PhaseRounds)

	// Steps 1–5 together: Algorithm 3 vs the plain pipelined APSP.
	a3, err := apsp.BlockerAPSP(g, apsp.HSSPOpts{H: h})
	if err != nil {
		log.Fatal(err)
	}
	a1, err := apsp.PipelinedAPSP(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	want := apsp.ExactAPSP(g)
	for s := 0; s < g.N(); s++ {
		for v := 0; v < g.N(); v++ {
			if a3.Dist[s][v] != want[s][v] || a1.Dist[s][v] != want[s][v] {
				log.Fatalf("wrong distance at (%d,%d)", s, v)
			}
		}
	}
	fmt.Printf("Algorithm 3: %d rounds (%v)\n", a3.Stats.Rounds, a3.PhaseRounds)
	fmt.Printf("Algorithm 1: %d rounds (bound %d)\n", a1.Stats.Rounds, a1.Bound)
	fmt.Println("both exact; the winner depends on W and Δ (Corollary I.4 — see experiment E-T1213)")
}

func head(q []int, k int) []int {
	if len(q) < k {
		return q
	}
	return q[:k]
}
