// Zero weights: reproduce the paper's central motivation (Sec. II). The
// classical pipelined schedule r = d(s) + pos(s) of Lenzen–Peleg [12] is
// sound for positive integer weights but breaks on zero-weight edges: on a
// zero-weight chain an estimate arrives *after* its only send slot and is
// silently dropped. Algorithm 1's key κ = d·γ + l repairs this.
package main

import (
	"fmt"
	"log"

	apsp "repro"
)

func main() {
	// The zero-weight ladder: long zero chains inside layers, weighted
	// rungs between them — weighted distance and hop count diverge
	// maximally.
	g := apsp.LayeredZeroGraph(6, 8, apsp.GenOpts{Seed: 3, MaxW: 9, Directed: true})
	n := g.N()
	sources := make([]int, n)
	for v := range sources {
		sources[v] = v
	}
	want := apsp.ExactAPSP(g)
	countWrong := func(dist [][]int64) int {
		wrong := 0
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if dist[s][v] != want[s][v] {
					wrong++
				}
			}
		}
		return wrong
	}

	// 1. The classical schedule, strict (as in the unweighted literature).
	strict, err := apsp.PositiveWeightKSSP(g, apsp.PositiveWeightOpts{Sources: sources, Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical pipeline (strict):  %4d wrong of %d, %d sends missed their slot\n",
		countWrong(strict.Dist), n*n, strict.MissedSends)

	// 2. The classical schedule with late sends allowed: correct again,
	// but the 2n-round guarantee is gone.
	lenient, err := apsp.PositiveWeightKSSP(g, apsp.PositiveWeightOpts{Sources: sources})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classical pipeline (lenient): %4d wrong, %d late sends, %d rounds\n",
		countWrong(lenient.Dist), lenient.LateSends, lenient.Stats.Rounds)

	// 3. Algorithm 1: exact, and within its proven round budget.
	a1, err := apsp.PipelinedAPSP(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Algorithm 1 (this paper):     %4d wrong, %d rounds (bound %d)\n",
		countWrong(a1.Dist), a1.Stats.Rounds, a1.Bound)
	fmt.Printf("multi-entry lists held up to %d entries per source at a node\n", a1.MaxPerSource)
}
