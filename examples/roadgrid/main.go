// Road grid: the k-SSP use case on a grid "road network". A handful of
// depots (sources) need h-hop-bounded shortest-path distances to every
// intersection — deliveries may traverse at most h road segments. This is
// exactly the (h,k)-SSP problem of Theorem I.1(i), and zero-weight edges
// model free connectors (ramps, roundabouts).
package main

import (
	"fmt"
	"log"

	apsp "repro"
)

func main() {
	const rows, cols = 12, 12
	g := apsp.GridGraph(rows, cols, apsp.GenOpts{Seed: 11, MaxW: 9, ZeroFrac: 0.2})
	depots := []int{0, rows*cols - 1, (rows/2)*cols + cols/2} // two corners + center
	const h = 14                                              // delivery hop budget

	res, err := apsp.PipelinedHKSSP(g, apsp.PipelineOpts{Sources: depots, H: h})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %dx%d, %d depots, hop budget %d\n", rows, cols, len(depots), h)
	fmt.Printf("rounds %d (paper bound 2√(khΔ)+k+h = %d)\n", res.Stats.Rounds, res.Bound)

	// Which intersections are unreachable within the hop budget from the
	// corner depot, and what does the budget cost in distance?
	unreach, tighter := 0, 0
	full := apsp.ExactSSSP(g, depots[0])
	for v := 0; v < g.N(); v++ {
		if res.Dist[0][v] >= apsp.Inf {
			unreach++
		} else if res.Dist[0][v] > full[v] {
			tighter++
		}
	}
	fmt.Printf("depot %d: %d intersections beyond %d hops, %d pay a detour premium vs unbounded routing\n",
		depots[0], unreach, h, tighter)

	// Validate against the h-hop dynamic-programming oracle.
	for i, s := range depots {
		want := apsp.ExactHHop(g, s, h)
		for v := 0; v < g.N(); v++ {
			if res.Dist[i][v] != want[v] {
				log.Fatalf("mismatch at depot %d node %d", s, v)
			}
		}
	}
	fmt.Println("validated against the h-hop oracle")

	// Print a small distance field for the center depot (top-left corner
	// of the grid), demonstrating per-node results.
	fmt.Println("center-depot distances, top-left 4x6 corner:")
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			d := res.Dist[2][r*cols+c]
			if d >= apsp.Inf {
				fmt.Printf("   . ")
			} else {
				fmt.Printf("%4d ", d)
			}
		}
		fmt.Println()
	}
}
