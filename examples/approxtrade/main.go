// Approximation trade-off: the (1+ε)-approximate APSP of Theorem I.5 on a
// graph with zero-weight edges — the case prior deterministic
// approximations ([16], [18]) could not handle. Sweeps ε and reports the
// rounds/accuracy frontier against the exact pipelined algorithm.
package main

import (
	"fmt"
	"log"

	apsp "repro"
)

func main() {
	g := apsp.ZeroHeavyGraph(40, 160, 0.35, apsp.GenOpts{Seed: 13, MaxW: 20, Directed: true})

	exact, err := apsp.PipelinedAPSP(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact (Algorithm 1): %6d rounds\n", exact.Stats.Rounds)

	for _, eps := range []float64{1.0, 0.5, 0.25} {
		res, err := apsp.ApproxAPSP(g, apsp.ApproxOpts{Eps: eps})
		if err != nil {
			log.Fatal(err)
		}
		stretch, mismatches := apsp.CheckApproxStretch(g, res)
		if mismatches != 0 {
			log.Fatalf("eps=%v: %d structural mismatches", eps, mismatches)
		}
		fmt.Printf("ε=%.2f: %6d rounds across %d scales, worst stretch %.4f (claim ≤ %.2f)\n",
			eps, res.Stats.Rounds, res.Scales, stretch, 1+eps)
	}

	// Spot-check: zero-distance pairs are exact, not approximate.
	res, err := apsp.ApproxAPSP(g, apsp.ApproxOpts{Eps: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	zeros := 0
	want := apsp.ExactAPSP(g)
	for s := 0; s < g.N(); s++ {
		for v := 0; v < g.N(); v++ {
			if want[s][v] == 0 && res.Scaled[s][v] == 0 {
				zeros++
			}
		}
	}
	fmt.Printf("zero-distance pairs handled exactly: %d (Sec. IV reachability phase)\n", zeros)
}
