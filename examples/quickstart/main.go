// Quickstart: run the paper's pipelined APSP (Algorithm 1, Theorem I.1) on
// a small random graph with zero-weight edges, inspect the CONGEST cost
// against the paper's round bound, and validate against Dijkstra.
package main

import (
	"fmt"
	"log"

	apsp "repro"
)

func main() {
	// A 64-node random digraph; a quarter of the edges weigh zero — the
	// regime that breaks classical pipelining and that this paper solves.
	g := apsp.RandomGraph(64, 256, apsp.GenOpts{
		Seed:     7,
		MaxW:     16,
		ZeroFrac: 0.25,
		Directed: true,
	})

	res, err := apsp.PipelinedAPSP(g, 0) // Δ promise derived automatically
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n=%d m=%d Δ(used)=%d\n", g.N(), g.M(), res.Delta)
	fmt.Printf("rounds: %d   (paper bound 2n√Δ+2n = %d, ratio %.2f)\n",
		res.Stats.Rounds, res.Bound, float64(res.Stats.Rounds)/float64(res.Bound))
	fmt.Printf("messages: %d, max per-link congestion: %d\n",
		res.Stats.Messages, res.Stats.MaxLinkCongestion)
	fmt.Printf("largest list at any node: %d entries (multi-entry lists are the paper's key idea)\n",
		res.MaxListLen)

	// Every node ends with its distance from every source plus the last
	// edge of a shortest path (the CONGEST problem statement).
	fmt.Printf("d(0,%d) = %d via last edge (%d -> %d)\n",
		g.N()-1, res.Dist[0][g.N()-1], res.Parent[0][g.N()-1], g.N()-1)

	// Validate the whole matrix against sequential Dijkstra.
	want := apsp.ExactAPSP(g)
	for s := 0; s < g.N(); s++ {
		for v := 0; v < g.N(); v++ {
			if res.Dist[s][v] != want[s][v] {
				log.Fatalf("mismatch at (%d,%d): %d vs %d", s, v, res.Dist[s][v], want[s][v])
			}
		}
	}
	fmt.Println("validated: all", g.N()*g.N(), "distances match Dijkstra")
}
