// Checkpoint support: congest.Stateful for the single-estimate pipelined
// node. Derived fields (srcIdx, inW) are rebuilt by Init; everything that
// evolves across rounds — estimates, parents, the (dist, src)-sorted send
// list, pending flags and schedule diagnostics — round-trips here.
package posweight

import (
	"fmt"

	"repro/internal/congest"
)

func init() {
	congest.RegisterPayloadCodec("posweight.estimate", estimate{},
		func(enc *congest.StateEncoder, p congest.Payload) {
			m := p.(estimate)
			enc.Int(m.src)
			enc.Int64(m.d)
		},
		func(dec *congest.StateDecoder) (congest.Payload, error) {
			m := estimate{src: dec.Int(), d: dec.Int64()}
			return m, dec.Err()
		})
}

// EncodeState implements congest.Stateful.
func (nd *node) EncodeState(enc *congest.StateEncoder) {
	enc.Int(nd.curRound)
	enc.Int(nd.late)
	enc.Int(nd.missed)
	enc.Int64s(nd.dist)
	enc.Ints(nd.parent)
	enc.Bools(nd.needSend)
	enc.Ints(nd.list)
}

// DecodeState implements congest.Stateful.
func (nd *node) DecodeState(dec *congest.StateDecoder) error {
	nd.curRound = dec.Int()
	nd.late = dec.Int()
	nd.missed = dec.Int()
	nd.dist = dec.Int64s()
	nd.parent = dec.Ints()
	nd.needSend = dec.Bools()
	nd.list = dec.Ints()
	if err := dec.Err(); err != nil {
		return err
	}
	k := len(nd.opts.Sources)
	if len(nd.dist) != k || len(nd.parent) != k || len(nd.needSend) != k {
		return fmt.Errorf("posweight: snapshot arity mismatch (want %d sources)", k)
	}
	for _, i := range nd.list {
		if i < 0 || i >= k {
			return fmt.Errorf("posweight: snapshot list index %d out of range", i)
		}
	}
	return nil
}
