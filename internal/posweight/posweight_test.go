package posweight

import (
	"testing"

	"repro/internal/graph"
)

func allSources(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestPositiveWeightsMatchDijkstra(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(30, 90, graph.GenOpts{Seed: seed, MinW: 1, MaxW: 9, Directed: seed%2 == 0})
		res, err := Run(g, Opts{Sources: allSources(g.N())})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := graph.APSP(g)
		for s := 0; s < g.N(); s++ {
			for v := 0; v < g.N(); v++ {
				if res.Dist[s][v] != want[s][v] {
					t.Fatalf("seed %d: dist[%d][%d] = %d, want %d", seed, s, v, res.Dist[s][v], want[s][v])
				}
			}
		}
		if res.LateSends != 0 {
			t.Errorf("seed %d: %d late sends with positive weights (schedule should be sound)", seed, res.LateSends)
		}
	}
}

func TestScheduleSoundInStrictModePositive(t *testing.T) {
	g := graph.Random(25, 70, graph.GenOpts{Seed: 12, MinW: 1, MaxW: 5, Directed: true})
	res, err := Run(g, Opts{Sources: allSources(g.N()), Strict: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := graph.APSP(g)
	for s := 0; s < g.N(); s++ {
		for v := 0; v < g.N(); v++ {
			if res.Dist[s][v] != want[s][v] {
				t.Fatalf("strict mode wrong with positive weights at [%d][%d]: %d vs %d", s, v, res.Dist[s][v], want[s][v])
			}
		}
	}
}

func TestRoundBoundPositive(t *testing.T) {
	// Paper Sec. II: estimates arrive before round d(s)+pos(s), so the last
	// send is at most Δ + k; everything is quiet by Δ + k + 1.
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(40, 120, graph.GenOpts{Seed: seed, MinW: 1, MaxW: 6, Directed: true})
		res, err := Run(g, Opts{Sources: allSources(g.N())})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		delta := graph.Delta(g)
		bound := int(delta) + g.N()
		if res.Stats.Rounds > bound {
			t.Fatalf("seed %d: rounds %d exceed Δ+k = %d", seed, res.Stats.Rounds, bound)
		}
	}
}

func TestUnitWeightsWithinTwoN(t *testing.T) {
	g := graph.Random(50, 150, graph.GenOpts{Seed: 3, MinW: 1, MaxW: 1})
	res, err := Run(g, Opts{Sources: allSources(g.N())})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stats.Rounds >= 2*g.N() {
		t.Fatalf("unweighted APSP rounds %d, want < 2n = %d ([12] bound)", res.Stats.Rounds, 2*g.N())
	}
}

func TestMaxDistTruncates(t *testing.T) {
	g := graph.Path(6, graph.GenOpts{Seed: 1, MinW: 2, MaxW: 2})
	res, err := Run(g, Opts{Sources: []int{0}, MaxDist: 5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Distances along the path: 0,2,4,6,8,10; cap 5 keeps 0,2,4.
	want := []int64{0, 2, 4, graph.Inf, graph.Inf, graph.Inf}
	for v, w := range want {
		if res.Dist[0][v] != w {
			t.Fatalf("dist[0][%d] = %d, want %d", v, res.Dist[0][v], w)
		}
	}
}

func TestZeroWeightBreaksStrictSchedule(t *testing.T) {
	// The paper's motivating failure (Sec. II): on a zero-weight chain the
	// predecessor no longer satisfies d_y = d_v − 1, estimates arrive after
	// their send slot, and the strict equality schedule drops them.
	g := graph.New(3, true)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 0)
	res, err := Run(g, Opts{Sources: []int{0}, Strict: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dist[0][2] != graph.Inf {
		t.Fatalf("expected the strict schedule to lose the zero-chain estimate; dist = %d", res.Dist[0][2])
	}
	if res.MissedSends == 0 {
		t.Fatal("expected missed sends to be counted")
	}
}

func TestZeroWeightLenientIsCorrectButLate(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.ZeroHeavy(30, 90, 0.5, graph.GenOpts{Seed: seed, MaxW: 6, Directed: true})
		res, err := Run(g, Opts{Sources: allSources(g.N())})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := graph.APSP(g)
		for s := 0; s < g.N(); s++ {
			for v := 0; v < g.N(); v++ {
				if res.Dist[s][v] != want[s][v] {
					t.Fatalf("seed %d: lenient mode wrong at [%d][%d]: %d vs %d", seed, s, v, res.Dist[s][v], want[s][v])
				}
			}
		}
	}
	// At least one seed must exhibit late sends; a zero-heavy family that
	// never violates the schedule would not demonstrate anything.
	g := graph.New(3, true)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 0)
	res, err := Run(g, Opts{Sources: []int{0}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.LateSends == 0 {
		t.Fatal("zero chain produced no late sends in lenient mode")
	}
	if res.Dist[0][2] != 0 {
		t.Fatalf("lenient dist = %d, want 0", res.Dist[0][2])
	}
}

func TestParentPointersFormShortestPaths(t *testing.T) {
	g := graph.Random(25, 80, graph.GenOpts{Seed: 21, MinW: 1, MaxW: 7, Directed: true})
	res, err := Run(g, Opts{Sources: []int{0, 5, 9}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range []int{0, 5, 9} {
		for v := 0; v < g.N(); v++ {
			if res.Dist[i][v] >= graph.Inf {
				if res.Parent[i][v] != -1 {
					t.Fatalf("unreachable %d has parent", v)
				}
				continue
			}
			if v == s {
				if res.Parent[i][v] != s {
					t.Fatalf("source parent = %d", res.Parent[i][v])
				}
				continue
			}
			p := res.Parent[i][v]
			w, ok := g.Weight(p, v)
			if !ok || res.Dist[i][p]+w != res.Dist[i][v] {
				t.Fatalf("parent edge not tight: src %d node %d parent %d", s, v, p)
			}
		}
	}
}

func TestInputValidation(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 3})
	if _, err := Run(g, Opts{}); err == nil {
		t.Fatal("no sources accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{7}}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{1, 1}}); err == nil {
		t.Fatal("duplicate source accepted")
	}
}

func TestSubsetOfSources(t *testing.T) {
	g := graph.Grid(4, 5, graph.GenOpts{Seed: 2, MinW: 1, MaxW: 4})
	sources := []int{0, 7, 19}
	res, err := Run(g, Opts{Sources: sources})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range sources {
		want := graph.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[i][v] != want[v] {
				t.Fatalf("dist[%d][%d] = %d, want %d", s, v, res.Dist[i][v], want[v])
			}
		}
	}
}
