// Package posweight implements the classical single-estimate pipelined
// k-source shortest-path algorithm that the paper's Algorithm 1
// generalizes: the scheme of Lenzen–Peleg [12] / Holzer–Wattenhofer [17],
// where each node keeps one best distance estimate per source in a list
// sorted by (d, source) and sends the estimate for source s in round
// r = d(s) + pos(s).
//
// With positive integer edge weights (or unweighted graphs) the schedule is
// sound: the predecessor of the estimate d at v holds d' ≤ d − 1, which is
// the fact the 2n-round bound rests on. With zero-weight edges that fact
// fails — the paper's whole motivation (Sec. II) — and this implementation
// exposes exactly how it fails: in Strict mode (the literature's
// equality-only send rule) estimates can miss their send slot and
// distances come out wrong; in the default lenient mode late sends are
// permitted and counted, trading the round bound for correctness.
//
// This package is both the paper's baseline competitor and the substrate of
// the (1+ε)-approximation of Sec. IV (which runs it per weight scale on a
// positive-weight transform).
package posweight

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
)

// estimate is the wire payload: a distance estimate for one source.
type estimate struct {
	src int   // source node ID
	d   int64 // distance estimate
}

// Words reports the message size: source ID and distance, one word each.
func (estimate) Words() int { return 2 }

// Opts configures a run.
type Opts struct {
	// Sources are the source node IDs (k-SSP). Required.
	Sources []int
	// MaxDist drops estimates with distance > MaxDist (0 = unlimited).
	// Used by the approximation algorithm to truncate per-scale searches.
	MaxDist int64
	// Strict selects the literature's equality-only send rule
	// (send s in round r only if d(s) + pos(s) == r). The default lenient
	// rule also sends overdue entries (one per round) and counts them.
	Strict bool
	// MaxRounds bounds the engine (0 = a generous default).
	MaxRounds int
	// Workers and Scheduler are passed to the engine.
	Workers   int
	Scheduler congest.Scheduler
	// Obs, if set, receives engine events (see congest.Observer).
	Obs congest.Observer
	// Network, if set, replaces the engine's perfect delivery with a
	// pluggable substrate (see congest.Config.Network); internal/faults
	// provides the adversarial one.
	Network congest.Network
	// Checkpoint and Ctx are passed to the engine (see
	// congest.Config.Checkpoint and congest.Config.Ctx).
	Checkpoint *congest.CheckpointPolicy
	Ctx        context.Context
}

// Result is the outcome of a run.
type Result struct {
	// Dist[i][v] is the computed distance from Sources[i] to v (graph.Inf
	// if none was found).
	Dist [][]int64
	// Parent[i][v] is the predecessor of v on the discovered path from
	// Sources[i] (-1 if none; the source's own parent is itself).
	Parent [][]int
	// Stats is the engine cost report.
	Stats congest.Stats
	// LateSends counts sends that happened after their scheduled round
	// (lenient mode only; always 0 with positive weights on schedule).
	LateSends int
	// MissedSends counts entries that were due in some round but not sent
	// in it (strict mode: they may fire later if their position grows, or
	// never).
	MissedSends int
}

type node struct {
	id   int
	opts *Opts

	srcIdx   map[int]int // source ID -> index in Sources
	dist     []int64     // per source index
	parent   []int
	inW      map[int]int64 // sender -> min arc weight into this node
	list     []int         // source indices, sorted by (dist, srcID)
	needSend []bool
	curRound int

	late, missed int
}

func (nd *node) Init(ctx *congest.Context) {
	k := len(nd.opts.Sources)
	nd.srcIdx = make(map[int]int, k)
	nd.dist = make([]int64, k)
	nd.parent = make([]int, k)
	nd.needSend = make([]bool, k)
	for i, s := range nd.opts.Sources {
		nd.srcIdx[s] = i
		nd.dist[i] = graph.Inf
		nd.parent[i] = -1
	}
	nd.inW = make(map[int]int64)
	for _, e := range ctx.InEdges() {
		if w, ok := nd.inW[e.From]; !ok || e.W < w {
			nd.inW[e.From] = e.W
		}
	}
	if i, ok := nd.srcIdx[nd.id]; ok {
		nd.dist[i] = 0
		nd.parent[i] = nd.id
		nd.needSend[i] = true
		nd.list = append(nd.list, i)
	}
}

// listLess orders source indices by (distance, source ID).
func (nd *node) listLess(a, b int) bool {
	if nd.dist[a] != nd.dist[b] {
		return nd.dist[a] < nd.dist[b]
	}
	return nd.opts.Sources[a] < nd.opts.Sources[b]
}

// improve records a strictly better estimate for source index i and
// repositions it in the list.
func (nd *node) improve(i int, d int64, from int) {
	had := nd.dist[i] < graph.Inf
	nd.dist[i] = d
	nd.parent[i] = from
	nd.needSend[i] = true
	if had {
		// Remove the stale position.
		for p, j := range nd.list {
			if j == i {
				nd.list = append(nd.list[:p], nd.list[p+1:]...)
				break
			}
		}
	}
	p := sort.Search(len(nd.list), func(p int) bool { return !nd.listLess(nd.list[p], i) })
	nd.list = append(nd.list, 0)
	copy(nd.list[p+1:], nd.list[p:])
	nd.list[p] = i
}

func (nd *node) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	nd.curRound = r
	for _, m := range inbox {
		est := m.Payload.(estimate)
		w, ok := nd.inW[m.From]
		if !ok {
			continue // link exists but no arc into this node (directed graph)
		}
		i, ok := nd.srcIdx[est.src]
		if !ok {
			ctx.Failf("estimate for unknown source %d", est.src)
			return
		}
		d := est.d + w
		if nd.opts.MaxDist > 0 && d > nd.opts.MaxDist {
			continue
		}
		if d < nd.dist[i] {
			nd.improve(i, d, m.From)
		}
	}
	// Send phase: pick the lowest-ordered entry that is due. In strict mode
	// "due" means schedule == r; lenient also allows overdue (late) sends.
	sendP := -1
	late := false
	for p, i := range nd.list {
		if !nd.needSend[i] {
			continue
		}
		sched := nd.dist[i] + int64(p) + 1
		if sched == int64(r) {
			if sendP < 0 {
				sendP = p
			} else {
				nd.missed++ // two entries due in the same round: only one link slot
			}
		} else if sched < int64(r) {
			if nd.opts.Strict {
				nd.missed++
			} else if sendP < 0 {
				sendP, late = p, true
			}
		}
	}
	if sendP >= 0 {
		i := nd.list[sendP]
		ctx.Broadcast(estimate{src: nd.opts.Sources[i], d: nd.dist[i]})
		nd.needSend[i] = false
		if late {
			nd.late++
		}
	}
}

func (nd *node) Quiescent() bool {
	for p, i := range nd.list {
		if !nd.needSend[i] {
			continue
		}
		if !nd.opts.Strict {
			return false // lenient: every pending entry fires eventually
		}
		// Strict: the entry can still fire only if its schedule lies in the
		// future; overdue entries need a position bump (i.e. a receive).
		if nd.dist[i]+int64(p)+1 > int64(nd.curRound) {
			return false
		}
	}
	return true
}

// NextWake implements congest.Waker: the earliest schedule among pending
// entries. Overdue schedules are clamped to the next round by the engine,
// so a strict-mode node with a missed entry is still stepped every round
// and its per-round missed accounting matches the dense engine exactly.
func (nd *node) NextWake() int {
	next := congest.WakeOnReceive
	for p, i := range nd.list {
		if !nd.needSend[i] {
			continue
		}
		if sched := nd.dist[i] + int64(p) + 1; next == congest.WakeOnReceive || sched < int64(next) {
			next = int(sched)
		}
	}
	return next
}

// Run executes the pipelined k-source computation on g.
func Run(g *graph.Graph, opts Opts) (*Result, error) {
	if len(opts.Sources) == 0 {
		return nil, fmt.Errorf("posweight: no sources")
	}
	seen := make(map[int]bool)
	for _, s := range opts.Sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("posweight: source %d out of range", s)
		}
		if seen[s] {
			return nil, fmt.Errorf("posweight: duplicate source %d", s)
		}
		seen[s] = true
	}
	nodes := make([]*node, g.N())
	stats, err := congest.Run(g, func(v int) congest.Node {
		nodes[v] = &node{id: v, opts: &opts}
		return nodes[v]
	}, congest.Config{MaxRounds: opts.MaxRounds, Workers: opts.Workers, Scheduler: opts.Scheduler, Observer: opts.Obs, Network: opts.Network, Checkpoint: opts.Checkpoint, Ctx: opts.Ctx})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Dist:   make([][]int64, len(opts.Sources)),
		Parent: make([][]int, len(opts.Sources)),
		Stats:  stats,
	}
	for i := range opts.Sources {
		res.Dist[i] = make([]int64, g.N())
		res.Parent[i] = make([]int, g.N())
		for v, nd := range nodes {
			res.Dist[i][v] = nd.dist[i]
			res.Parent[i][v] = nd.parent[i]
		}
	}
	for _, nd := range nodes {
		res.LateSends += nd.late
		res.MissedSends += nd.missed
	}
	return res, nil
}
