package dot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestWriteDirected(t *testing.T) {
	g := graph.New(3, true)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(1, 2, 0)
	var buf bytes.Buffer
	err := Write(&buf, g, Options{
		Title:      "demo",
		TreeParent: []int{0, 0, 1},
		Highlight:  map[int]string{1: "tomato"},
	})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph apsp {", `label="demo"`, "n0 -> n1", "penwidth=2.2",
		`fillcolor="tomato"`, `label="5"`, "}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteUndirected(t *testing.T) {
	g := graph.New(2, false)
	g.MustAddEdge(0, 1, 3)
	var buf bytes.Buffer
	if err := Write(&buf, g, Options{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph apsp {") || !strings.Contains(out, "n0 -- n1") {
		t.Fatalf("undirected DOT wrong:\n%s", out)
	}
}

func TestNodeLabel(t *testing.T) {
	g := graph.New(2, true)
	g.MustAddEdge(0, 1, 1)
	var buf bytes.Buffer
	err := Write(&buf, g, Options{NodeLabel: func(v int) string { return "X" }})
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !strings.Contains(buf.String(), `label="X"`) {
		t.Fatal("custom label missing")
	}
}
