// Package dot renders graphs, tree overlays and node highlights in
// Graphviz DOT format — the quickest way to eyeball a CSSSP tree, a
// blocker set, or a counterexample instance.
package dot

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// Options controls the rendering.
type Options struct {
	// Title becomes the graph label.
	Title string
	// TreeParent, if non-nil, draws the edge parent→v of every node with
	// TreeParent[v] >= 0 && != v bold; remaining graph edges are dimmed.
	TreeParent []int
	// Highlight maps node → fill color (e.g. blocker picks to "tomato").
	Highlight map[int]string
	// NodeLabel, if set, overrides the default numeric label.
	NodeLabel func(v int) string
}

// Write renders g to w in DOT format.
func Write(w io.Writer, g *graph.Graph, opts Options) error {
	bw := bufio.NewWriter(w)
	kind, arrow := "digraph", "->"
	if !g.Directed() {
		kind, arrow = "graph", "--"
	}
	fmt.Fprintf(bw, "%s apsp {\n", kind)
	if opts.Title != "" {
		fmt.Fprintf(bw, "  label=%q;\n  labelloc=t;\n", opts.Title)
	}
	fmt.Fprintf(bw, "  node [shape=circle, fontsize=10];\n")
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprint(v)
		if opts.NodeLabel != nil {
			label = opts.NodeLabel(v)
		}
		// Labels may contain DOT escapes like \n, so only quotes are
		// escaped (fmt's %q would double the backslashes).
		attrs := fmt.Sprintf("label=\"%s\"", strings.ReplaceAll(label, `"`, `\"`))
		if c, ok := opts.Highlight[v]; ok {
			attrs += fmt.Sprintf(", style=filled, fillcolor=%q", c)
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", v, attrs)
	}
	inTree := func(u, v int) bool {
		if opts.TreeParent == nil {
			return false
		}
		if v < len(opts.TreeParent) && opts.TreeParent[v] == u && u != v {
			return true
		}
		if !g.Directed() && u < len(opts.TreeParent) && opts.TreeParent[u] == v && u != v {
			return true
		}
		return false
	}
	for _, e := range g.Edges() {
		style := "color=gray70"
		if opts.TreeParent == nil {
			style = "color=black"
		}
		if inTree(e.From, e.To) {
			style = "color=black, penwidth=2.2"
		}
		fmt.Fprintf(bw, "  n%d %s n%d [label=\"%d\", fontsize=9, %s];\n", e.From, arrow, e.To, e.W, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
