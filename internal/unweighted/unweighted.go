// Package unweighted provides the pipelined unweighted APSP of
// Lenzen–Peleg [12] (refining Holzer–Wattenhofer [17]) — the algorithm the
// paper's Sec. II uses as its starting point — as a thin specialization of
// the generic single-estimate pipeline in internal/posweight with unit
// weights.
//
// It also provides the zero-weight reachability computation of Sec. IV:
// unweighted APSP run on the subgraph of zero-weight arcs, which identifies
// every pair at shortest-path distance exactly 0.
package unweighted

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/posweight"
)

// KSource computes hop distances (every arc counted as 1) from the given
// sources using the [12] pipelined schedule. The round complexity is at
// most 2n (paper Sec. II, recap of [12]). cfg carries the engine knobs;
// the zero value is fine.
func KSource(g *graph.Graph, sources []int, cfg congest.Config) (*posweight.Result, error) {
	unit := g.Transform(func(int64) int64 { return 1 })
	return posweight.Run(unit, posweight.Opts{
		Sources:    sources,
		MaxRounds:  cfg.MaxRounds,
		Workers:    cfg.Workers,
		Scheduler:  cfg.Scheduler,
		Obs:        cfg.Observer,
		Network:    cfg.Network,
		Checkpoint: cfg.Checkpoint,
		Ctx:        cfg.Ctx,
	})
}

// APSP computes all-pairs hop distances.
func APSP(g *graph.Graph) (*posweight.Result, error) {
	sources := make([]int, g.N())
	for v := range sources {
		sources[v] = v
	}
	return KSource(g, sources, congest.Config{})
}

// EstimateDelta computes a distributed upper bound on the h-hop
// shortest-path distances: Δ̂ = min(h, eccentricity in hops)·maxWeight,
// obtained by running the unweighted pipelined APSP (< 2n rounds) and
// taking the largest finite hop distance. Tighter than the local fallback
// h·maxWeight whenever the graph's hop eccentricities are below h, which
// shrinks Algorithm 1's proven bound 2√(khΔ)+k+h (measured rounds can
// move either way; see the public API doc). The cost is the returned
// Stats; pass the estimate as Opts.Delta.
func EstimateDelta(g *graph.Graph, h int) (int64, *posweight.Result, error) {
	res, err := APSP(g)
	if err != nil {
		return 0, nil, err
	}
	var maxHops int64
	for _, row := range res.Dist {
		for _, d := range row {
			if d < graph.Inf && d > maxHops {
				maxHops = d
			}
		}
	}
	if int64(h) < maxHops {
		maxHops = int64(h)
	}
	delta := maxHops * g.MaxWeight()
	if delta < 1 {
		delta = 1
	}
	return delta, res, nil
}

// ZeroReach computes reach[i][v] = true iff there is a zero-weight path
// from sources[i] to v, by running unweighted APSP on the zero-arc
// subgraph (paper Sec. IV: "reachability between all pairs of vertices
// connected by zero-weight paths ... considering only the zero weight
// edges"). The subgraph's links are a subset of the network's links, so the
// round cost is a legal CONGEST cost on the original network.
func ZeroReach(g *graph.Graph, sources []int, cfg congest.Config) ([][]bool, *posweight.Result, error) {
	zero := g.Subgraph(func(e graph.Edge) bool { return e.W == 0 })
	res, err := KSource(zero, sources, cfg)
	if err != nil {
		return nil, nil, err
	}
	reach := make([][]bool, len(sources))
	for i := range sources {
		reach[i] = make([]bool, g.N())
		for v := 0; v < g.N(); v++ {
			reach[i][v] = res.Dist[i][v] < graph.Inf
		}
	}
	return reach, res, nil
}
