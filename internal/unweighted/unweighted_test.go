package unweighted

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

func TestAPSPMatchesHopDistances(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(30, 90, graph.GenOpts{Seed: seed, MaxW: 9, Directed: seed%2 == 0})
		res, err := APSP(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		unit := g.Transform(func(int64) int64 { return 1 })
		for s := 0; s < g.N(); s++ {
			want := graph.Dijkstra(unit, s)
			for v := 0; v < g.N(); v++ {
				if res.Dist[s][v] != want[v] {
					t.Fatalf("seed %d: hops[%d][%d] = %d, want %d", seed, s, v, res.Dist[s][v], want[v])
				}
			}
		}
		if res.Stats.Rounds >= 2*g.N() {
			t.Fatalf("seed %d: rounds %d ≥ 2n ([12] bound)", seed, res.Stats.Rounds)
		}
		if res.LateSends != 0 {
			t.Fatalf("seed %d: unweighted pipeline had %d late sends", seed, res.LateSends)
		}
	}
}

func TestKSourceSubset(t *testing.T) {
	g := graph.Grid(5, 5, graph.GenOpts{Seed: 3, MaxW: 4})
	sources := []int{0, 12, 24}
	res, err := KSource(g, sources, congest.Config{})
	if err != nil {
		t.Fatalf("KSource: %v", err)
	}
	unit := g.Transform(func(int64) int64 { return 1 })
	for i, s := range sources {
		want := graph.Dijkstra(unit, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[i][v] != want[v] {
				t.Fatalf("hops[%d][%d] = %d, want %d", s, v, res.Dist[i][v], want[v])
			}
		}
	}
}

func TestEstimateDelta(t *testing.T) {
	g := graph.Random(30, 120, graph.GenOpts{Seed: 6, MaxW: 10, ZeroFrac: 0.2, Directed: true})
	h := g.N() - 1
	est, res, err := EstimateDelta(g, h)
	if err != nil {
		t.Fatalf("EstimateDelta: %v", err)
	}
	truth := graph.Delta(g)
	if est < truth {
		t.Fatalf("estimate %d below true Δ %d (must be an upper bound)", est, truth)
	}
	naive := int64(h) * g.MaxWeight()
	if est > naive {
		t.Fatalf("estimate %d worse than the local fallback %d", est, naive)
	}
	if res.Stats.Rounds >= 2*g.N() {
		t.Fatalf("estimation cost %d rounds ≥ 2n", res.Stats.Rounds)
	}
	t.Logf("Δ̂ = %d (true %d, local fallback %d, cost %d rounds)", est, truth, naive, res.Stats.Rounds)
	// With a small hop budget the bound uses h, not the eccentricity.
	est2, _, err := EstimateDelta(g, 2)
	if err != nil {
		t.Fatalf("EstimateDelta: %v", err)
	}
	if est2 != 2*g.MaxWeight() {
		t.Fatalf("h-capped estimate = %d, want %d", est2, 2*g.MaxWeight())
	}
}

func TestZeroReachMatchesClosure(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(25, 75, graph.GenOpts{Seed: seed, MaxW: 6, ZeroFrac: 0.4, Directed: true})
		sources := make([]int, g.N())
		for v := range sources {
			sources[v] = v
		}
		reach, _, err := ZeroReach(g, sources, congest.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := graph.ZeroClosure(g)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if reach[u][v] != want[u][v] {
					t.Fatalf("seed %d: reach[%d][%d] = %v, want %v", seed, u, v, reach[u][v], want[u][v])
				}
			}
		}
	}
}

func TestZeroReachNoZeroEdges(t *testing.T) {
	g := graph.Random(15, 40, graph.GenOpts{Seed: 2, MinW: 1, MaxW: 5, Directed: true})
	reach, res, err := ZeroReach(g, []int{0, 1}, congest.Config{})
	if err != nil {
		t.Fatalf("ZeroReach: %v", err)
	}
	for i, s := range []int{0, 1} {
		for v := 0; v < g.N(); v++ {
			if reach[i][v] != (v == s) {
				t.Fatalf("reach[%d][%d] = %v on zero-free graph", s, v, reach[i][v])
			}
		}
	}
	if res.Stats.Rounds != 0 {
		// No zero arcs: sources have no links in the subgraph, so the only
		// entries are the self-entries and at most one send each can occur
		// on... no links at all means zero sends.
		t.Fatalf("rounds = %d on an edgeless zero-subgraph", res.Stats.Rounds)
	}
}
