// Checkpoint support: congest.Stateful for the per-bit-phase Pareto
// pipelined node, mirroring internal/core's scheme — list in order,
// per-source sets in stored order (swap-deletion makes stored order
// self-propagating), lazy heap in heap-array order with a dead sentinel
// for items whose entry has been removed.
package scaling

import (
	"fmt"

	"repro/internal/congest"
)

func init() {
	congest.RegisterPayloadCodec("scaling.phaseMsg", phaseMsg{},
		func(enc *congest.StateEncoder, p congest.Payload) {
			m := p.(phaseMsg)
			enc.Int(m.src)
			enc.Int64(m.d)
			enc.Int64(m.l)
			enc.Int64(m.prevY)
		},
		func(dec *congest.StateDecoder) (congest.Payload, error) {
			m := phaseMsg{src: dec.Int(), d: dec.Int64(), l: dec.Int64(), prevY: dec.Int64()}
			return m, dec.Err()
		})
}

// EncodeState implements congest.Stateful.
func (nd *phaseNode) EncodeState(enc *congest.StateEncoder) {
	enc.Int64(nd.seq)
	enc.Int(nd.pending)
	enc.Int(nd.late)

	enc.Int(len(nd.list))
	for _, z := range nd.list {
		enc.Int64(z.d)
		enc.Int64(z.l)
		enc.Int(z.srcIdx)
		enc.Int(z.parent)
		enc.Bool(z.needSend)
	}
	enc.Int(len(nd.perSrc))
	for _, ps := range nd.perSrc {
		idxs := make([]int, len(ps))
		for i, z := range ps {
			idxs[i] = z.idx
		}
		enc.Ints(idxs)
	}
	enc.Int64s(nd.bestD)
	enc.Int64s(nd.bestL)
	enc.Int(nd.hp.Len())
	for _, it := range nd.hp {
		enc.Int64(it.time)
		enc.Int64(it.seq)
		ei := -1
		if !it.e.dead {
			ei = it.e.idx
		}
		enc.Int(ei)
	}
}

// DecodeState implements congest.Stateful.
func (nd *phaseNode) DecodeState(dec *congest.StateDecoder) error {
	nd.seq = dec.Int64()
	nd.pending = dec.Int()
	nd.late = dec.Int()

	nl := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	k := len(nd.sources)
	list := make([]*phaseEntry, nl)
	for i := range list {
		z := &phaseEntry{d: dec.Int64(), l: dec.Int64(), srcIdx: dec.Int(), parent: dec.Int(), needSend: dec.Bool(), idx: i}
		if err := dec.Err(); err != nil {
			return err
		}
		if z.srcIdx < 0 || z.srcIdx >= k {
			return fmt.Errorf("scaling: entry source index %d out of range", z.srcIdx)
		}
		z.ceilK = nd.gamma.CeilKappa(z.d, z.l)
		list[i] = z
	}
	nd.list = list

	at := func(i int) (*phaseEntry, error) {
		if i < 0 || i >= len(list) {
			return nil, fmt.Errorf("scaling: entry index %d out of range", i)
		}
		return list[i], nil
	}

	np := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if np != k {
		return fmt.Errorf("scaling: snapshot has %d sources, run has %d", np, k)
	}
	nd.perSrc = make([][]*phaseEntry, k)
	for i := 0; i < k; i++ {
		idxs := dec.Ints()
		if err := dec.Err(); err != nil {
			return err
		}
		ps := make([]*phaseEntry, len(idxs))
		for j, ix := range idxs {
			z, err := at(ix)
			if err != nil {
				return err
			}
			ps[j] = z
		}
		nd.perSrc[i] = ps
	}
	nd.bestD = dec.Int64s()
	nd.bestL = dec.Int64s()
	if len(nd.bestD) != k || len(nd.bestL) != k {
		return fmt.Errorf("scaling: snapshot best arity mismatch (want %d sources)", k)
	}

	nh := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	var deadSentinel *phaseEntry
	nd.hp = make(phaseHeap, 0, nh)
	for i := 0; i < nh; i++ {
		it := phaseItem{time: dec.Int64(), seq: dec.Int64()}
		ei := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		if ei >= 0 {
			z, err := at(ei)
			if err != nil {
				return err
			}
			it.e = z
		} else {
			if deadSentinel == nil {
				deadSentinel = &phaseEntry{dead: true, idx: -1}
			}
			it.e = deadSentinel
		}
		nd.hp = append(nd.hp, it)
	}
	return dec.Err()
}
