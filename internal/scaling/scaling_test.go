package scaling

import (
	"testing"

	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/graph"
)

// TestDifferentialSweep sweeps small instances of the scaling extension
// against Dijkstra, including large weights relative to the graph size.
func TestDifferentialSweep(t *testing.T) {
	difftest.Search(t, difftest.Space{SeedsPerSize: 10, MaxK: 2, MaxW: 300, ZeroFrac: 0.3}, func(in difftest.Instance) error {
		res, err := Run(in.G, Opts{Sources: in.Sources})
		if err != nil {
			return err
		}
		return difftest.SSSPOracle(in, res.Dist)
	})
}

func TestScalingAPSPMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(20, 60, graph.GenOpts{Seed: seed, MaxW: 50, ZeroFrac: 0.3, Directed: seed%2 == 0})
		res, err := Run(g, Opts{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := graph.APSP(g)
		for s := 0; s < g.N(); s++ {
			for v := 0; v < g.N(); v++ {
				if res.Dist[s][v] != want[s][v] {
					t.Fatalf("seed %d: dist[%d][%d] = %d, want %d", seed, s, v, res.Dist[s][v], want[s][v])
				}
			}
		}
	}
}

func TestScalingKSSP(t *testing.T) {
	g := graph.Random(24, 80, graph.GenOpts{Seed: 9, MaxW: 1000, ZeroFrac: 0.25, Directed: true})
	sources := []int{0, 8, 16}
	res, err := Run(g, Opts{Sources: sources})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range sources {
		want := graph.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[i][v] != want[v] {
				t.Fatalf("dist[%d][%d] = %d, want %d", s, v, res.Dist[i][v], want[v])
			}
		}
	}
	if res.Bits != 10 { // 1000 needs 10 bits
		t.Fatalf("Bits = %d, want 10", res.Bits)
	}
	if len(res.PhaseRounds) != res.Bits+1 {
		t.Fatalf("phases recorded %d, want %d", len(res.PhaseRounds), res.Bits+1)
	}
}

func TestScalingZeroWeights(t *testing.T) {
	// All-zero weights: one bootstrap-like phase must still resolve
	// reachability.
	g := graph.Random(15, 40, graph.GenOpts{Seed: 2, MaxW: 5, Directed: true}).
		Transform(func(int64) int64 { return 0 })
	res, err := Run(g, Opts{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := graph.APSP(g)
	for s := 0; s < g.N(); s++ {
		for v := 0; v < g.N(); v++ {
			if res.Dist[s][v] != want[s][v] {
				t.Fatalf("dist[%d][%d] = %d, want %d", s, v, res.Dist[s][v], want[s][v])
			}
		}
	}
}

func TestScalingBeatsPipelineAtLargeWeights(t *testing.T) {
	// The point of the extension: phase distances are ≤ n−1 regardless of
	// W, so rounds are W-insensitive, while Theorem I.1(ii) pays 2n√Δ.
	g := graph.Random(20, 60, graph.GenOpts{Seed: 4, MinW: 500, MaxW: 4000, Directed: true})
	delta := graph.Delta(g)
	sc, err := Run(g, Opts{})
	if err != nil {
		t.Fatalf("scaling: %v", err)
	}
	a1, err := core.APSP(g, delta, false)
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	want := graph.APSP(g)
	for s := 0; s < g.N(); s++ {
		for v := 0; v < g.N(); v++ {
			if sc.Dist[s][v] != want[s][v] || a1.Dist[s][v] != want[s][v] {
				t.Fatalf("wrong distance at (%d,%d)", s, v)
			}
		}
	}
	if sc.Stats.Rounds >= a1.Stats.Rounds {
		t.Fatalf("scaling (%d rounds) did not beat the Δ-sensitive pipeline (%d rounds) at Δ=%d",
			sc.Stats.Rounds, a1.Stats.Rounds, delta)
	}
	t.Logf("Δ=%d: scaling %d rounds (%d phases) vs pipelined %d rounds",
		delta, sc.Stats.Rounds, sc.Bits+1, a1.Stats.Rounds)
}

func TestScalingValidation(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 3})
	if _, err := Run(g, Opts{Sources: []int{}}); err == nil {
		t.Fatal("empty sources accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{9}}); err == nil {
		t.Fatal("bad source accepted")
	}
}
