// Package scaling implements the extension the paper leaves as future work
// (Sec. V, Conclusion): combining the pipelined strategy with Gabow's
// scaling technique [9] to get weight-insensitive exact APSP.
//
// Gabow's scaling processes the weight bits most-significant first. With
// B = ⌈log₂(W+1)⌉, phase t ∈ {B−1, …, 0} uses the scaled weights
// w_t(e) = ⌊w(e)/2^t⌋ = 2·w_{t+1}(e) + bit_t(e). Given the previous
// phase's distances d_{t+1}(x,·), the reduced costs
//
//	c_t^x(u,v) = w_t(u,v) + 2·d_{t+1}(x,u) − 2·d_{t+1}(x,v)
//
// are non-negative, and the phase's shortest-path distances under c_t^x
// are at most n−1 (each edge contributes its bit plus slack that
// telescopes away), so each phase is an (h,k)-SSP instance with the tiny
// promise Δ ≤ n−1 regardless of W — exactly where the pipelined approach
// shines.
//
// The paper's obstacle — "in the scaling algorithm each source sees a
// different edge weight on a given edge" — dissolves once each message
// carries the sender's previous-phase distance: the receiver then computes
// the reduced cost of the traversed edge locally, because it knows its own
// previous-phase distance. The messages grow by one word, which the
// CONGEST budget absorbs, and the whole computation stays deterministic —
// no Ghaffari-style randomized scheduling is needed.
//
// Round complexity: B phases, each a k-source pipelined run with Δ ≤ n−1
// and h = n−1, i.e. O(√(k·n·n)) = O(n^{3/2}) rounds per phase for k = n,
// for O(n^{3/2}·log W) in total — independent of Δ, and better than
// Theorem I.1(ii)'s 2n√Δ whenever Δ ≫ n·log²W.
//
// The per-phase list discipline is the provably-correct Pareto frontier
// (see internal/core): zero reduced costs are pervasive (every tight edge
// has slack 0 and possibly bit 0), so this is squarely the zero-weight
// regime the paper targets.
package scaling

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/key"
)

// Opts configures a scaling run.
type Opts struct {
	// Sources is the source set (nil = all nodes).
	Sources []int
	// MaxRounds, Workers and Scheduler are passed to the engine (per
	// phase).
	MaxRounds int
	Workers   int
	Scheduler congest.Scheduler
	// Obs, if set, receives the engine events of every bit phase (see
	// congest.Observer); phases are annotated "bit<t>" via
	// congest.SetPhase, most significant first.
	Obs congest.Observer
	// Network, if set, replaces the engine's perfect delivery with a
	// pluggable substrate in every bit phase (see congest.Config.Network);
	// internal/faults provides the adversarial one.
	Network congest.Network
	// Checkpoint and Ctx are passed to the engine in every bit phase (see
	// congest.Config.Checkpoint and congest.Config.Ctx).
	Checkpoint *congest.CheckpointPolicy
	Ctx        context.Context
}

// Result reports exact distances and per-phase costs.
type Result struct {
	Sources []int
	// Dist[i][v] = δ(Sources[i], v).
	Dist [][]int64
	// Stats accumulates all phases; PhaseRounds[t] is the rounds of scaling
	// phase t (index 0 = most significant bit phase).
	Stats       congest.Stats
	PhaseRounds []int
	// Bits is the number of scaling phases B.
	Bits int
}

// phaseMsg is the wire format: an entry extended with the sender's
// previous-phase distance so the receiver can form the reduced cost.
type phaseMsg struct {
	src   int   // source node ID
	d     int64 // reduced-cost distance of the carried path
	l     int64 // hop length
	prevY int64 // sender's previous-phase distance d_{t+1}(src, y)
}

// Words reports the message size: 4 words, within the CONGEST budget.
func (phaseMsg) Words() int { return 4 }

// phaseEntry is one Pareto-frontier entry.
type phaseEntry struct {
	d, l     int64
	srcIdx   int
	parent   int
	needSend bool
	dead     bool
	idx      int
	ceilK    int64
}

type phaseItem struct {
	time int64
	seq  int64
	e    *phaseEntry
}

type phaseHeap []phaseItem

func (h phaseHeap) Len() int { return len(h) }
func (h phaseHeap) Less(i, j int) bool {
	return h[i].time < h[j].time || (h[i].time == h[j].time && h[i].seq < h[j].seq)
}
func (h phaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *phaseHeap) Push(x interface{}) { *h = append(*h, x.(phaseItem)) }
func (h *phaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// phaseNode runs one scaling phase: a k-source Pareto-pipelined SSP under
// per-source reduced costs.
type phaseNode struct {
	id      int
	sources []int
	srcIdx  map[int]int
	gamma   key.Gamma
	h       int64

	// scaledW[y] = w_t of the minimum arc y->id (this phase's scale).
	scaledW map[int]int64
	// prev[i] = d_{t+1}(sources[i], id); Inf if unreachable.
	prev []int64

	list    []*phaseEntry
	perSrc  [][]*phaseEntry
	bestD   []int64
	bestL   []int64
	pending int
	hp      phaseHeap
	seq     int64
	late    int
}

func (nd *phaseNode) Init(ctx *congest.Context) {
	k := len(nd.sources)
	nd.srcIdx = make(map[int]int, k)
	nd.perSrc = make([][]*phaseEntry, k)
	nd.bestD = make([]int64, k)
	nd.bestL = make([]int64, k)
	for i, s := range nd.sources {
		nd.srcIdx[s] = i
		nd.bestD[i] = graph.Inf
		nd.bestL[i] = -1
	}
	if i, ok := nd.srcIdx[nd.id]; ok && nd.prev[i] < graph.Inf {
		z := &phaseEntry{d: 0, l: 0, srcIdx: i, parent: nd.id, needSend: true}
		z.ceilK = nd.gamma.CeilKappa(0, 0)
		nd.bestD[i], nd.bestL[i] = 0, 0
		nd.insertAt(z, 0)
		nd.schedule(z)
	}
}

func (nd *phaseNode) schedule(z *phaseEntry) {
	nd.seq++
	heap.Push(&nd.hp, phaseItem{time: z.ceilK + int64(z.idx) + 1, seq: nd.seq, e: z})
}

func (nd *phaseNode) insertAt(z *phaseEntry, p int) {
	nd.list = append(nd.list, nil)
	copy(nd.list[p+1:], nd.list[p:])
	nd.list[p] = z
	for i := p; i < len(nd.list); i++ {
		nd.list[i].idx = i
	}
	nd.perSrc[z.srcIdx] = append(nd.perSrc[z.srcIdx], z)
	if z.needSend {
		nd.pending++
	}
}

func (nd *phaseNode) remove(z *phaseEntry) {
	p := z.idx
	nd.list = append(nd.list[:p], nd.list[p+1:]...)
	for i := p; i < len(nd.list); i++ {
		nd.list[i].idx = i
	}
	ps := nd.perSrc[z.srcIdx]
	for i, e := range ps {
		if e == z {
			ps[i] = ps[len(ps)-1]
			nd.perSrc[z.srcIdx] = ps[:len(ps)-1]
			break
		}
	}
	if z.needSend {
		nd.pending--
	}
	z.dead = true
}

func (nd *phaseNode) less(a, b *phaseEntry) bool {
	if c := nd.gamma.Cmp(a.d, a.l, b.d, b.l); c != 0 {
		return c < 0
	}
	if a.d != b.d {
		return a.d < b.d
	}
	return nd.sources[a.srcIdx] < nd.sources[b.srcIdx]
}

func (nd *phaseNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		msg := m.Payload.(phaseMsg)
		w, ok := nd.scaledW[m.From]
		if !ok {
			continue
		}
		i, ok := nd.srcIdx[msg.src]
		if !ok {
			ctx.Failf("scaling: unknown source %d", msg.src)
			return
		}
		if nd.prev[i] >= graph.Inf {
			// Unreachable in the previous phase means unreachable, period;
			// no reduced cost is defined.
			continue
		}
		// Reduced cost of the traversed arc, formed locally:
		// c = w_t(y,v) + 2·d_{t+1}(x,y) − 2·d_{t+1}(x,v).
		c := w + 2*msg.prevY - 2*nd.prev[i]
		if c < 0 {
			ctx.Failf("scaling: negative reduced cost %d at node %d (phase invariant broken)", c, nd.id)
			return
		}
		d := msg.d + c
		l := msg.l + 1
		if l > nd.h || d > nd.h {
			continue // phase promise: distances ≤ n−1
		}
		// Pareto discipline.
		if d == nd.bestD[i] && l == nd.bestL[i] {
			continue
		}
		dominated := false
		for _, e := range nd.perSrc[i] {
			if e.d <= d && e.l <= l {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		z := &phaseEntry{d: d, l: l, srcIdx: i, parent: m.From, needSend: true}
		z.ceilK = nd.gamma.CeilKappa(d, l)
		if d < nd.bestD[i] || (d == nd.bestD[i] && l < nd.bestL[i]) {
			nd.bestD[i], nd.bestL[i] = d, l
		}
		p := sort.Search(len(nd.list), func(j int) bool { return !nd.less(nd.list[j], z) })
		nd.insertAt(z, p)
		var victims []*phaseEntry
		for _, e := range nd.perSrc[i] {
			if e != z && e.d >= d && e.l >= l {
				victims = append(victims, e)
			}
		}
		for _, e := range victims {
			nd.remove(e)
		}
		nd.schedule(z)
	}

	// Send phase: earliest due entry, one per round.
	var cand *phaseEntry
	var candSched int64
	for nd.hp.Len() > 0 && nd.hp[0].time <= int64(r) {
		it := heap.Pop(&nd.hp).(phaseItem)
		z := it.e
		if z.dead || !z.needSend {
			continue
		}
		sched := z.ceilK + int64(z.idx) + 1
		if sched > int64(r) {
			nd.schedule(z)
			continue
		}
		if cand == nil || sched < candSched || (sched == candSched && z.idx < cand.idx) {
			if cand != nil {
				nd.seq++
				heap.Push(&nd.hp, phaseItem{time: int64(r) + 1, seq: nd.seq, e: cand})
			}
			cand, candSched = z, sched
		} else {
			nd.seq++
			heap.Push(&nd.hp, phaseItem{time: int64(r) + 1, seq: nd.seq, e: z})
		}
	}
	if cand == nil {
		return
	}
	if candSched < int64(r) {
		nd.late++
	}
	cand.needSend = false
	nd.pending--
	i := cand.srcIdx
	ctx.Broadcast(phaseMsg{src: nd.sources[i], d: cand.d, l: cand.l, prevY: nd.prev[i]})
}

func (nd *phaseNode) Quiescent() bool { return nd.pending == 0 }

// NextWake implements congest.Waker: sends (and requeued collisions) are
// gated on heap-pop time exactly as in core, so the heap top is the next
// spontaneous action; a stale top only costs a harmless early step.
func (nd *phaseNode) NextWake() int {
	if nd.hp.Len() > 0 {
		return int(nd.hp[0].time)
	}
	return congest.WakeOnReceive
}

// Run computes exact APSP/k-SSP by bit scaling.
func Run(g *graph.Graph, opts Opts) (*Result, error) {
	n := g.N()
	sources := opts.Sources
	if sources == nil {
		sources = make([]int, n)
		for v := range sources {
			sources[v] = v
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("scaling: no sources")
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("scaling: source %d out of range", s)
		}
	}
	k := len(sources)
	res := &Result{Sources: append([]int(nil), sources...)}

	// B = number of bit phases. W = 0 still needs one phase to resolve
	// reachability into 0/Inf distances.
	bits := 0
	for w := g.MaxWeight(); w > 0; w >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	res.Bits = bits

	h := int64(n - 1)
	if h < 1 {
		h = 1
	}
	gamma := key.New(k, int(h), h) // per-phase promise Δ = n−1

	// prev[i][v] carries d_{t+1}; phase B's scaled weights are all zero, so
	// start with "reachability distances" of 0/Inf under all-zero weights —
	// which is exactly what running the first phase with prev ≡ 0 for
	// reachable... we bootstrap with prev = 0 everywhere and let phase B−1's
	// hop/distance caps do the work: with w_{B}≡0, d_B(x,v) = 0 iff v is
	// reachable from x. We compute that bootstrap with a phase run at scale
	// t = B (all weights 0).
	prev := make([][]int64, k)
	for i := range prev {
		prev[i] = make([]int64, n)
		// At scale B every weight is 0, and the virtual phase B+1 has
		// everything at 0 for reachable nodes; seeding with 0 for all is
		// sound because unreachable nodes simply never receive entries.
		for v := range prev[i] {
			prev[i][v] = 0
		}
	}

	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		b := key.Bound(k, int(h), h)
		mr := 16*b + 4096
		if mr > 1<<30 {
			mr = 1 << 30
		}
		maxRounds = int(mr)
	}

	runPhase := func(t int) ([][]int64, error) {
		congest.SetPhase(opts.Obs, fmt.Sprintf("bit%d", t))
		nodes := make([]*phaseNode, n)
		stats, err := congest.Run(g, func(v int) congest.Node {
			nd := &phaseNode{id: v, sources: sources, gamma: gamma, h: h}
			nd.scaledW = make(map[int]int64)
			for _, e := range g.In(v) {
				w := e.W >> uint(t)
				if old, ok := nd.scaledW[e.From]; !ok || w < old {
					nd.scaledW[e.From] = w
				}
			}
			nd.prev = make([]int64, k)
			for i := range nd.prev {
				nd.prev[i] = prev[i][v]
			}
			nodes[v] = nd
			return nd
		}, congest.Config{MaxRounds: maxRounds, Workers: opts.Workers, Scheduler: opts.Scheduler, Observer: opts.Obs, Network: opts.Network, Checkpoint: opts.Checkpoint, Ctx: opts.Ctx})
		res.Stats.Add(stats)
		res.PhaseRounds = append(res.PhaseRounds, stats.Rounds)
		if err != nil {
			return nil, fmt.Errorf("scaling: phase t=%d: %w", t, err)
		}
		// d_t(x,v) = dist_c(x,v) + 2·d_{t+1}(x,v), locally at v.
		out := make([][]int64, k)
		for i := 0; i < k; i++ {
			out[i] = make([]int64, n)
			for v := 0; v < n; v++ {
				if nodes[v].bestD[i] >= graph.Inf || prev[i][v] >= graph.Inf {
					out[i][v] = graph.Inf
				} else {
					out[i][v] = nodes[v].bestD[i] + 2*prev[i][v]
				}
			}
		}
		return out, nil
	}

	// Bootstrap phase at scale = bits (all scaled weights zero): resolves
	// reachability, d = 0 or Inf.
	boot, err := runPhase(bits)
	if err != nil {
		return nil, err
	}
	prev = boot

	for t := bits - 1; t >= 0; t-- {
		cur, err := runPhase(t)
		if err != nil {
			return nil, err
		}
		prev = cur
	}
	res.Dist = prev
	return res, nil
}
