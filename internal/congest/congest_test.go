package congest

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// intPayload is a one-word test payload.
type intPayload int

func (intPayload) Words() int { return 1 }

// floodNode implements unweighted BFS flooding from node 0: on first
// learning its distance it broadcasts distance+1.
type floodNode struct {
	id    int
	dist  int
	fresh bool
}

func newFlood(v int) Node { return &floodNode{id: v, dist: -1} }

func (f *floodNode) Init(ctx *Context) {
	if f.id == 0 {
		f.dist = 0
		f.fresh = true
	}
}

func (f *floodNode) Round(ctx *Context, r int, inbox []Message) {
	for _, m := range inbox {
		d := int(m.Payload.(intPayload))
		if f.dist < 0 || d < f.dist {
			f.dist = d
			f.fresh = true
		}
	}
	if f.fresh {
		ctx.Broadcast(intPayload(f.dist + 1))
		f.fresh = false
	}
}

func (f *floodNode) Quiescent() bool { return !f.fresh }

func TestFloodBFSOnPath(t *testing.T) {
	g := graph.Path(6, graph.GenOpts{Seed: 1, MaxW: 1})
	nodes := make([]*floodNode, g.N())
	stats, err := Run(g, func(v int) Node {
		nodes[v] = newFlood(v).(*floodNode)
		return nodes[v]
	}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v, nd := range nodes {
		if nd.dist != v {
			t.Fatalf("BFS dist at %d = %d, want %d", v, nd.dist, v)
		}
	}
	// Node 0 broadcasts in round 1; node 4 (dist 4) broadcasts in round 5,
	// reaching node 5. The last send happens in round 5... node 5 also
	// broadcasts once after learning its distance, in round 6.
	if stats.Rounds != 6 {
		t.Fatalf("Rounds = %d, want 6", stats.Rounds)
	}
	if stats.MaxWords != 1 {
		t.Fatalf("MaxWords = %d", stats.MaxWords)
	}
}

func TestFloodBFSMatchesHopDistanceOnRandom(t *testing.T) {
	g := graph.Random(40, 120, graph.GenOpts{Seed: 5, MaxW: 3})
	hop := graph.HHopDistances(g.Transform(func(int64) int64 { return 1 }), 0, g.N())
	nodes := make([]*floodNode, g.N())
	if _, err := Run(g, func(v int) Node {
		nodes[v] = newFlood(v).(*floodNode)
		return nodes[v]
	}, Config{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v := range nodes {
		if int64(nodes[v].dist) != hop[v] {
			t.Fatalf("flood dist at %d = %d, want %d", v, nodes[v].dist, hop[v])
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g := graph.Random(60, 200, graph.GenOpts{Seed: 9, MaxW: 3})
	run := func(workers int) ([]int, Stats) {
		nodes := make([]*floodNode, g.N())
		stats, err := Run(g, func(v int) Node {
			nodes[v] = newFlood(v).(*floodNode)
			return nodes[v]
		}, Config{Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		out := make([]int, g.N())
		for v := range nodes {
			out[v] = nodes[v].dist
		}
		return out, stats
	}
	d1, s1 := run(1)
	d8, s8 := run(8)
	for v := range d1 {
		if d1[v] != d8[v] {
			t.Fatalf("worker-count changed result at node %d: %d vs %d", v, d1[v], d8[v])
		}
	}
	if s1.Rounds != s8.Rounds || s1.Messages != s8.Messages {
		t.Fatalf("worker-count changed stats: %+v vs %+v", s1, s8)
	}
}

// violator sends a bogus message per the selected mode.
type violator struct {
	id   int
	mode string
	done bool
}

func (x *violator) Init(*Context) {}
func (x *violator) Round(ctx *Context, r int, inbox []Message) {
	if x.done || x.id != 0 {
		x.done = true
		return
	}
	x.done = true
	switch x.mode {
	case "nolink":
		ctx.Send(2, intPayload(1)) // 0 and 2 are not adjacent on a path
	case "double":
		ctx.Send(1, intPayload(1))
		ctx.Send(1, intPayload(2))
	case "fat":
		ctx.Send(1, fatPayload{})
	case "fail":
		ctx.Failf("synthetic failure")
	}
}
func (x *violator) Quiescent() bool { return x.done }

type fatPayload struct{}

func (fatPayload) Words() int { return 99 }

func TestProtocolViolations(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 1})
	for _, mode := range []string{"nolink", "double", "fat", "fail"} {
		_, err := Run(g, func(v int) Node { return &violator{id: v, mode: mode} }, Config{})
		if err == nil {
			t.Errorf("mode %q: Run succeeded, want protocol error", mode)
		}
	}
}

// chatterer never quiesces.
type chatterer struct{ id int }

func (c *chatterer) Init(*Context) {}
func (c *chatterer) Round(ctx *Context, r int, inbox []Message) {
	if c.id == 0 {
		ctx.Send(1, intPayload(r))
	}
}
func (c *chatterer) Quiescent() bool { return false }

func TestMaxRoundsEnforced(t *testing.T) {
	g := graph.Path(2, graph.GenOpts{Seed: 1, MaxW: 1})
	_, err := Run(g, func(v int) Node { return &chatterer{id: v} }, Config{MaxRounds: 50})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestLinkCongestionCounted(t *testing.T) {
	g := graph.Path(2, graph.GenOpts{Seed: 1, MaxW: 1})
	// Node 0 sends 7 messages to node 1 over 7 rounds.
	type sender struct {
		chatterer
		budget *int
	}
	budget := 7
	nodes := func(v int) Node {
		if v == 0 {
			return nodeFunc{
				round: func(ctx *Context, r int, inbox []Message) {
					if budget > 0 {
						ctx.Send(1, intPayload(r))
						budget--
					}
				},
				quiescent: func() bool { return budget == 0 },
			}
		}
		return nodeFunc{round: func(*Context, int, []Message) {}, quiescent: func() bool { return true }}
	}
	_ = sender{}
	stats, err := Run(g, nodes, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.MaxLinkCongestion != 7 {
		t.Fatalf("MaxLinkCongestion = %d, want 7", stats.MaxLinkCongestion)
	}
	if stats.Rounds != 7 || stats.Messages != 7 {
		t.Fatalf("stats = %+v", stats)
	}
}

// nodeFunc adapts closures to the Node interface for tests.
type nodeFunc struct {
	init      func(*Context)
	round     func(*Context, int, []Message)
	quiescent func() bool
}

func (n nodeFunc) Init(ctx *Context) {
	if n.init != nil {
		n.init(ctx)
	}
}
func (n nodeFunc) Round(ctx *Context, r int, inbox []Message) { n.round(ctx, r, inbox) }
func (n nodeFunc) Quiescent() bool                            { return n.quiescent() }

func TestNoSendsAtAllIsZeroRounds(t *testing.T) {
	g := graph.Path(4, graph.GenOpts{Seed: 1, MaxW: 1})
	stats, err := Run(g, func(v int) Node {
		return nodeFunc{round: func(*Context, int, []Message) {}, quiescent: func() bool { return true }}
	}, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Rounds != 0 || stats.Messages != 0 {
		t.Fatalf("stats = %+v, want zero activity", stats)
	}
}

func TestInitMayNotSend(t *testing.T) {
	g := graph.Path(2, graph.GenOpts{Seed: 1, MaxW: 1})
	_, err := Run(g, func(v int) Node {
		return nodeFunc{
			init:      func(ctx *Context) { ctx.Send(1-ctx.ID(), intPayload(0)) },
			round:     func(*Context, int, []Message) {},
			quiescent: func() bool { return true },
		}
	}, Config{})
	if err == nil {
		t.Fatal("Init send accepted, want error (round 0 has no sends)")
	}
}

func TestRoundFuncObserved(t *testing.T) {
	g := graph.Path(4, graph.GenOpts{Seed: 1, MaxW: 1})
	var timeline []int
	_, err := Run(g, newFlood, Config{Observer: RoundFunc(func(r, msgs int) {
		timeline = append(timeline, msgs)
	})})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(timeline) == 0 || timeline[0] == 0 {
		t.Fatalf("timeline = %v, want sends observed from round 1", timeline)
	}
}

// recordingObserver captures the full event stream for assertions.
type recordingObserver struct {
	n         int
	rounds    []RoundEvent
	nodeSends map[int]int
	peaks     []int
	done      bool
	doneStats Stats
}

func (o *recordingObserver) RunStart(n int)         { o.n = n }
func (o *recordingObserver) RoundDone(e RoundEvent) { o.rounds = append(o.rounds, e) }
func (o *recordingObserver) NodeSends(round, node, msgs int) {
	if o.nodeSends == nil {
		o.nodeSends = make(map[int]int)
	}
	o.nodeSends[node] += msgs
}
func (o *recordingObserver) LinkPeak(round, from, to, load int) { o.peaks = append(o.peaks, load) }
func (o *recordingObserver) RunDone(s Stats)                    { o.done = true; o.doneStats = s }

// TestObserverSeesEveryRound asserts that RoundDone fires for every executed
// round — in particular the final quiescing round, which carries no traffic
// and therefore lies beyond Stats.Rounds.
func TestObserverSeesEveryRound(t *testing.T) {
	g := graph.Path(6, graph.GenOpts{Seed: 1, MaxW: 1})
	var o recordingObserver
	stats, err := Run(g, newFlood, Config{Observer: &o})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if o.n != g.N() {
		t.Fatalf("RunStart n = %d, want %d", o.n, g.N())
	}
	for i, e := range o.rounds {
		if e.Round != i+1 {
			t.Fatalf("round events not contiguous: event %d has Round %d", i, e.Round)
		}
	}
	// Flooding quiesces one round after the last send: the engine must
	// still report that quiet round.
	if len(o.rounds) != stats.Rounds+1 {
		t.Fatalf("observed %d rounds, want %d (Stats.Rounds %d + final quiescing round)",
			len(o.rounds), stats.Rounds+1, stats.Rounds)
	}
	last := o.rounds[len(o.rounds)-1]
	if last.Sent != 0 || last.Active != 0 {
		t.Fatalf("final quiescing round reported traffic: %+v", last)
	}
	var total, active int
	for _, e := range o.rounds {
		total += e.Sent
		if e.Active > 0 {
			active++
		}
	}
	if int64(total) != stats.Messages {
		t.Fatalf("observer counted %d messages, stats %d", total, stats.Messages)
	}
	var nodeTotal int
	for _, c := range o.nodeSends {
		nodeTotal += c
	}
	if int64(nodeTotal) != stats.Messages {
		t.Fatalf("NodeSends total %d != stats messages %d", nodeTotal, stats.Messages)
	}
	if len(o.peaks) == 0 || o.peaks[len(o.peaks)-1] != stats.MaxLinkCongestion {
		t.Fatalf("LinkPeak samples %v, want last == MaxLinkCongestion %d", o.peaks, stats.MaxLinkCongestion)
	}
	if !o.done || o.doneStats != stats {
		t.Fatalf("RunDone stats %+v, want %+v", o.doneStats, stats)
	}
}

// TestObserverRunDoneOnError asserts RunDone fires even when the run aborts.
func TestObserverRunDoneOnError(t *testing.T) {
	g := graph.Path(2, graph.GenOpts{Seed: 1, MaxW: 1})
	var o recordingObserver
	_, err := Run(g, func(v int) Node {
		return nodeFunc{
			init: func(*Context) {},
			round: func(ctx *Context, r int, _ []Message) {
				ctx.Failf("boom")
			},
			quiescent: func() bool { return false },
		}
	}, Config{Observer: &o})
	if err == nil {
		t.Fatal("want error")
	}
	if !o.done {
		t.Fatal("RunDone did not fire on the error path")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rounds: 10, Messages: 100, MaxWords: 2, MaxLinkCongestion: 3, MaxNodeSends: 9}
	b := Stats{Rounds: 5, Messages: 50, MaxWords: 4, MaxLinkCongestion: 1, MaxNodeSends: 12}
	a.Add(b)
	if a.Rounds != 15 || a.Messages != 150 || a.MaxWords != 4 || a.MaxLinkCongestion != 3 || a.MaxNodeSends != 12 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestMaxNodeSendsCounted(t *testing.T) {
	// Star: the center relays, leaves speak once. The center's broadcast
	// (degree 4) dominates MaxNodeSends.
	g := graph.New(5, false)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, v, 1)
	}
	stats, err := Run(g, newFlood, Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.MaxNodeSends != 4 {
		t.Fatalf("MaxNodeSends = %d, want 4 (the center's single broadcast)", stats.MaxNodeSends)
	}
}

func TestCustomBandwidth(t *testing.T) {
	// A 9-word payload passes with a raised bound and fails the default.
	g := graph.Path(2, graph.GenOpts{Seed: 1, MaxW: 1})
	run := func(maxWords int) error {
		_, err := Run(g, func(v int) Node {
			sent := false
			return nodeFunc{
				round: func(ctx *Context, r int, inbox []Message) {
					if v == 0 && !sent {
						ctx.Send(1, wideload{})
						sent = true
					}
				},
				quiescent: func() bool { return v != 0 || sent },
			}
		}, Config{MaxWordsPerMessage: maxWords})
		return err
	}
	if err := run(16); err != nil {
		t.Fatalf("raised bound rejected 9 words: %v", err)
	}
	if err := run(0); err == nil { // default 8
		t.Fatal("default bound accepted 9 words")
	}
}

type wideload struct{}

func (wideload) Words() int { return 9 }

func TestWorkersExceedingNodes(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 1})
	if _, err := Run(g, newFlood, Config{Workers: 64}); err != nil {
		t.Fatalf("Workers > n failed: %v", err)
	}
}

func TestInboxSortedBySender(t *testing.T) {
	// Star: center 0 linked to 1..4; all leaves send to 0 in round 1;
	// the center checks sender order in round 2.
	g := graph.New(5, false)
	for v := 1; v < 5; v++ {
		g.MustAddEdge(0, v, 1)
	}
	var got []int
	okDone := false
	_, err := Run(g, func(v int) Node {
		if v == 0 {
			return nodeFunc{
				round: func(ctx *Context, r int, inbox []Message) {
					if r == 2 {
						for _, m := range inbox {
							got = append(got, m.From)
						}
						okDone = true
					}
				},
				quiescent: func() bool { return okDone },
			}
		}
		sent := false
		return nodeFunc{
			round: func(ctx *Context, r int, inbox []Message) {
				if !sent {
					ctx.Send(0, intPayload(v))
					sent = true
				}
			},
			quiescent: func() bool { return sent },
		}
	}, Config{Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3, 4}
	if len(got) != 4 {
		t.Fatalf("inbox = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inbox order = %v, want %v", got, want)
		}
	}
}
