package congest

import "strings"

// Timeline records per-round message counts (attach Observer() to
// Config.Observer) and renders them as a sparkline — a compact view of an
// algorithm's communication profile over time, used by cmd/apsprun and in
// experiment write-ups.
type Timeline struct {
	Counts []int
}

// Observer adapts the timeline to the engine's Observer interface.
func (t *Timeline) Observer() Observer { return RoundFunc(t.Observe) }

// Observe records one round's message count. Rounds arrive in order
// starting at 1; skipped-ahead round indices zero-fill the gap.
func (t *Timeline) Observe(round, msgs int) {
	// Rounds arrive in order starting at 1.
	for len(t.Counts) < round {
		t.Counts = append(t.Counts, 0)
	}
	t.Counts[round-1] = msgs
}

// Peak returns the maximum per-round message count.
func (t *Timeline) Peak() int {
	p := 0
	for _, c := range t.Counts {
		if c > p {
			p = c
		}
	}
	return p
}

// Total returns the total message count.
func (t *Timeline) Total() int {
	s := 0
	for _, c := range t.Counts {
		s += c
	}
	return s
}

var sparks = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the timeline downsampled to at most width buckets
// (each bucket shows its maximum). Empty timeline renders as "".
func (t *Timeline) Sparkline(width int) string {
	n := len(t.Counts)
	if n == 0 || width <= 0 {
		return ""
	}
	if width > n {
		width = n
	}
	buckets := make([]int, width)
	for i, c := range t.Counts {
		b := i * width / n
		if c > buckets[b] {
			buckets[b] = c
		}
	}
	peak := 0
	for _, b := range buckets {
		if b > peak {
			peak = b
		}
	}
	if peak == 0 {
		return strings.Repeat(string(sparks[0]), width)
	}
	var sb strings.Builder
	for _, b := range buckets {
		idx := b * (len(sparks) - 1) / peak
		sb.WriteRune(sparks[idx])
	}
	return sb.String()
}
