package congest

import "repro/internal/graph"

// Stepper drives an engine one round at a time. Test-only: the allocation
// guards and worker-adaptivity benchmarks need to execute individual
// rounds inside testing.AllocsPerRun / b.N loops, which the all-in-one Run
// entry point cannot do.
type Stepper struct {
	e *engine
	r int
}

// NewStepper builds and Init-s an engine without starting the round loop.
func NewStepper(g *graph.Graph, mk func(v int) Node, cfg Config) (*Stepper, error) {
	cfg = cfg.withDefaults()
	e, err := newEngine(g, mk, cfg)
	if err != nil {
		return nil, err
	}
	return &Stepper{e: e}, nil
}

// StepRound executes the next round (idle rounds included — no
// fast-forward, so round numbering matches the dense engine) and reports
// the number of messages sent.
func (s *Stepper) StepRound() (int, error) {
	s.r++
	e := s.e
	dense := e.cfg.Scheduler == SchedulerDense
	if e.net != nil {
		e.collectNet(s.r, dense)
	}
	work := e.allNodes
	if !dense {
		work = e.collectActive(s.r)
		if len(work) == 0 {
			return 0, nil
		}
	}
	sent, _, err := e.step(s.r, work, dense)
	return sent, err
}

// Done reports engine quiescence (all nodes quiescent, nothing in flight).
func (s *Stepper) Done() bool {
	return s.e.quiCount == len(s.e.nodes) && s.e.inflight == 0
}

// Round reports the last executed round.
func (s *Stepper) Round() int { return s.r }
