package congest

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestTimelineObserve(t *testing.T) {
	var tl Timeline
	tl.Observe(1, 5)
	tl.Observe(2, 0)
	tl.Observe(4, 7) // round 3 skipped: must be zero-filled
	if len(tl.Counts) != 4 || tl.Counts[2] != 0 || tl.Counts[3] != 7 {
		t.Fatalf("Counts = %v", tl.Counts)
	}
	if tl.Peak() != 7 || tl.Total() != 12 {
		t.Fatalf("peak %d total %d", tl.Peak(), tl.Total())
	}
}

func TestSparkline(t *testing.T) {
	var tl Timeline
	for r := 1; r <= 100; r++ {
		tl.Observe(r, r%10)
	}
	s := tl.Sparkline(20)
	if len([]rune(s)) != 20 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	if !strings.ContainsRune(s, '█') {
		t.Fatalf("no full block in %q", s)
	}
	if tl.Sparkline(0) != "" {
		t.Fatal("width 0 should render empty")
	}
	var empty Timeline
	if empty.Sparkline(10) != "" {
		t.Fatal("empty timeline should render empty")
	}
}

func TestSparklineAllZero(t *testing.T) {
	var tl Timeline
	tl.Observe(1, 0)
	tl.Observe(2, 0)
	s := tl.Sparkline(10)
	if s != "▁▁" {
		t.Fatalf("all-zero sparkline = %q", s)
	}
}

func TestSparklineWidthExceedsCounts(t *testing.T) {
	var tl Timeline
	tl.Observe(1, 3)
	tl.Observe(2, 9)
	tl.Observe(3, 1)
	// width > len(Counts) must clamp to one rune per round, not pad or
	// divide by zero.
	s := []rune(tl.Sparkline(50))
	if len(s) != 3 {
		t.Fatalf("sparkline %q has %d runes, want 3 (clamped to len(Counts))", string(s), len(s))
	}
	if s[1] != '█' {
		t.Fatalf("peak round not rendered as full block in %q", string(s))
	}
}

func TestTimelineObserveSkipsFarAhead(t *testing.T) {
	var tl Timeline
	tl.Observe(1, 2)
	tl.Observe(10, 4) // rounds 2..9 skipped: the zero-fill loop covers them
	if len(tl.Counts) != 10 {
		t.Fatalf("len(Counts) = %d, want 10", len(tl.Counts))
	}
	for r := 2; r <= 9; r++ {
		if tl.Counts[r-1] != 0 {
			t.Fatalf("skipped round %d holds %d, want 0", r, tl.Counts[r-1])
		}
	}
	if tl.Total() != 6 || tl.Peak() != 4 {
		t.Fatalf("total %d peak %d", tl.Total(), tl.Peak())
	}
	// Observing an already-recorded round overwrites, not appends.
	tl.Observe(10, 5)
	if len(tl.Counts) != 10 || tl.Counts[9] != 5 {
		t.Fatalf("re-observe: Counts = %v", tl.Counts)
	}
}

func TestTimelineWithEngine(t *testing.T) {
	g := graph.Path(6, graph.GenOpts{Seed: 1, MaxW: 1})
	var tl Timeline
	stats, err := Run(g, newFlood, Config{Observer: tl.Observer()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if tl.Total() != int(stats.Messages) {
		t.Fatalf("timeline total %d != stats messages %d", tl.Total(), stats.Messages)
	}
	if len(tl.Counts) < stats.Rounds {
		t.Fatalf("timeline rounds %d < stats rounds %d", len(tl.Counts), stats.Rounds)
	}
}
