package congest

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestProgressLifecycle(t *testing.T) {
	p := &Progress{}
	s := p.Snapshot()
	if s.Running || s.Runs != 0 || s.Rounds != 0 || s.Messages != 0 || s.Elapsed != 0 {
		t.Fatalf("zero-value snapshot %+v", s)
	}

	p.RunStart(100)
	p.Phase("hopsets")
	for i := 0; i < 5; i++ {
		p.RoundDone(RoundEvent{Round: i + 1, Sent: 7})
	}
	p.RunStart(100) // second engine run of the same recompute
	p.RoundDone(RoundEvent{Round: 1, Sent: 3})

	s = p.Snapshot()
	if !s.Running {
		t.Fatal("not running after RunStart")
	}
	if s.Runs != 2 || s.Rounds != 6 || s.Messages != 38 {
		t.Fatalf("mid-run snapshot %+v", s)
	}
	if s.Phase != "hopsets" {
		t.Fatalf("phase %q", s.Phase)
	}
	if s.Elapsed <= 0 {
		t.Fatalf("elapsed %v, want > 0 while running", s.Elapsed)
	}

	p.Done()
	if s = p.Snapshot(); s.Running {
		t.Fatal("still running after Done")
	}

	p.Reset()
	s = p.Snapshot()
	if s.Runs != 0 || s.Rounds != 0 || s.Messages != 0 || s.Phase != "" || s.Elapsed != 0 {
		t.Fatalf("post-reset snapshot %+v", s)
	}

	// The snapshot must serialize with the documented field names — the
	// /debug/live stream embeds it verbatim.
	b, err := json.Marshal(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"runs"`, `"rounds"`, `"messages"`, `"elapsedNs"`, `"running"`} {
		if !bytes.Contains(b, []byte(key)) {
			t.Fatalf("snapshot JSON %s lacks %s", b, key)
		}
	}
}

// TestProgressConcurrent hammers the observer callbacks from many
// goroutines while snapshots are read; run under -race this is the
// data-race check for the lock-free counters.
func TestProgressConcurrent(t *testing.T) {
	p := &Progress{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.RunStart(10)
			for i := 0; i < 250; i++ {
				p.RoundDone(RoundEvent{Round: i + 1, Sent: 2})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = p.Snapshot()
		}
	}()
	wg.Wait()
	s := p.Snapshot()
	if s.Runs != 4 || s.Rounds != 1000 || s.Messages != 2000 {
		t.Fatalf("final snapshot %+v", s)
	}
}
