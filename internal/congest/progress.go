package congest

import (
	"sync/atomic"
	"time"
)

// Progress is a lock-free Observer for live introspection of a running
// computation: the engine updates it synchronously on the routing
// goroutine, and any number of concurrent readers (an HTTP /debug/live
// streamer, a progress bar) Snapshot it without blocking the run. It also
// implements Phaser, so multi-phase algorithms report which phase is
// currently executing.
//
// One Progress may observe many engine runs (a recompute is one logical
// job of possibly dozens of runs); Reset rewinds it between jobs.
type Progress struct {
	runs     atomic.Int64
	rounds   atomic.Int64 // executed rounds across all runs
	messages atomic.Int64
	startNS  atomic.Int64 // UnixNano of the first RunStart since Reset
	phase    atomic.Pointer[string]
	running  atomic.Bool
}

// ProgressSnapshot is one consistent-enough view of a running computation
// (fields are read individually from atomics; exactness across fields is
// not needed for a heartbeat).
type ProgressSnapshot struct {
	// Runs counts engine runs started; Rounds executed rounds and
	// Messages sent messages across all of them.
	Runs     int64 `json:"runs"`
	Rounds   int64 `json:"rounds"`
	Messages int64 `json:"messages"`
	// Phase is the phase reported via SetPhase ("" before the first).
	Phase string `json:"phase,omitempty"`
	// Elapsed is the wall time since the first run started (0 before).
	Elapsed time.Duration `json:"elapsedNs"`
	// Running is true between the first RunStart and Done.
	Running bool `json:"running"`
}

// Reset rewinds every counter for a new logical job.
func (p *Progress) Reset() {
	p.runs.Store(0)
	p.rounds.Store(0)
	p.messages.Store(0)
	p.startNS.Store(0)
	p.phase.Store(nil)
	p.running.Store(false)
}

// Done marks the logical job finished (the engine cannot know when a
// multi-run algorithm's last run ends; the driver does).
func (p *Progress) Done() { p.running.Store(false) }

// Snapshot returns the current counters.
func (p *Progress) Snapshot() ProgressSnapshot {
	s := ProgressSnapshot{
		Runs:     p.runs.Load(),
		Rounds:   p.rounds.Load(),
		Messages: p.messages.Load(),
		Running:  p.running.Load(),
	}
	if ph := p.phase.Load(); ph != nil {
		s.Phase = *ph
	}
	if start := p.startNS.Load(); start != 0 {
		s.Elapsed = time.Duration(time.Now().UnixNano() - start)
	}
	return s
}

// RunStart implements Observer.
func (p *Progress) RunStart(n int) {
	if p.runs.Add(1) == 1 || p.startNS.Load() == 0 {
		p.startNS.CompareAndSwap(0, time.Now().UnixNano())
	}
	p.running.Store(true)
}

// RoundDone implements Observer.
func (p *Progress) RoundDone(e RoundEvent) {
	p.rounds.Add(1)
	p.messages.Add(int64(e.Sent))
}

// NodeSends implements Observer.
func (p *Progress) NodeSends(round, node, msgs int) {}

// LinkPeak implements Observer.
func (p *Progress) LinkPeak(round, from, to, load int) {}

// RunDone implements Observer.
func (p *Progress) RunDone(s Stats) {}

// Phase implements Phaser.
func (p *Progress) Phase(name string) { p.phase.Store(&name) }
