// Package congest simulates the CONGEST model of distributed computation
// (paper Sec. I-B): n processors on the nodes of a graph proceed in
// synchronous rounds; in each round a node may send one O(log n)-bit message
// along each incident communication link and receives, at the start of the
// next round, the messages sent to it in the previous round.
//
// The simulator is the cost substrate for every algorithm in this
// repository: it counts rounds and messages, tracks per-link congestion, and
// *enforces* the model — an oversized payload or two messages pushed on the
// same link direction in one round is an error, not a silent success.
//
// Communication always uses the underlying undirected graph of the input,
// even for directed inputs, exactly as the paper assumes.
//
// # Scheduling
//
// The engine's cost model is rounds, but its wall-clock is host time, and
// the two are decoupled: in most rounds of the paper's pipelined algorithms
// only a handful of nodes have anything to do (the ⌈κ⌉+pos schedule tells
// each node exactly when its next entry fires). The default active-set
// scheduler therefore steps only the nodes that can act this round — nodes
// with a non-empty inbox, nodes whose self-declared wake round (see Waker)
// has arrived, and non-Waker nodes that are not quiescent — and
// fast-forwards over rounds in which that set is empty. Stats, results and
// the Observer event stream are bit-identical to the dense engine
// (RoundEvent.Elapsed, wall clock, excepted); Config.Scheduler selects the
// dense engine for differential testing.
//
// # The message plane
//
// The engine's hot path is struct-of-arrays and arena-backed, reused
// across rounds (see DESIGN.md, "The message plane"). Sends are staged in
// one flat outbox arena sized to the total communication degree — node v's
// stage is the fixed sub-slice outBuf[sendOff[v]:sendOff[v+1]], capacity
// exactly deg(v), with link indices staged in a parallel plane so routing
// never searches the adjacency — and inboxes are carved out of one flat,
// double-buffered receive plane by a count-then-scatter pass: the messages
// for a node are a contiguous sub-slice addressed by per-node (end, len)
// cursors, not n append-grown slices. Steady-state rounds allocate
// nothing; protocols that also want allocation-free payloads use the
// pooled payload path (Pool, Context.PayloadReuse).
package congest

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// Payload is implemented by message payloads. Words reports the payload size
// in O(log n)-bit machine words so the engine can enforce the bandwidth
// bound.
type Payload interface {
	Words() int
}

// Message is a single CONGEST message in flight.
type Message struct {
	From, To int
	Payload  Payload
}

// Node is a processor's algorithm. The engine calls Init once (the paper's
// round 0, in which state is set up but nothing is sent), then Round once
// per communication round with the messages sent to this node in the
// previous round, sorted by sender.
//
// Inbox order is an explicit engine invariant, not an accident of
// routing: messages are presented in ascending sender order, with each
// link's messages in the order they were sent. Under a Network (see
// network.go) that order is reconstructed from per-link sequence numbers
// by the reliability shim — physical arrival order carries no meaning,
// and protocols must not be exposed to it.
//
// Inbox slices are views into an engine-owned plane reused across rounds:
// nodes must not retain the slice — or the Payload values it carries —
// past the Round call that delivered them.
//
// Quiescent must report true when the node will send no further messages
// unless it first receives one; the engine halts when every node is
// quiescent and no messages are in flight. Quiescent must be a pure
// function of the node's state: the active-set scheduler caches its value
// between steps.
type Node interface {
	Init(ctx *Context)
	Round(ctx *Context, r int, inbox []Message)
	Quiescent() bool
}

// WakeOnReceive is the Waker sentinel for "step me only when I receive a
// message".
const WakeOnReceive = -1

// Waker is optionally implemented by Nodes whose send schedule is
// predictable. After every step, the active-set scheduler asks the node for
// the next round in which it may act spontaneously (send, or mutate state
// in a round-dependent way, e.g. record a snapshot); until that round
// arrives the node is stepped only when it receives a message. Returning
// WakeOnReceive declares that only a receive can make the node act.
//
// The contract is strict, and a violation is a protocol error, not a
// slowdown: if a node would have sent (or changed state) in a round earlier
// than its declared wake, the active-set engine simply never steps it
// there, and its results diverge from the dense engine's — which is exactly
// what the scheduler-equivalence difftests detect. Returning a round that
// is too early is always safe (the node is stepped, finds nothing due, and
// is asked again). Returns ≤ the current round are clamped to the next
// round. A node that is not Quiescent must not return WakeOnReceive unless
// a message for it is already in flight.
//
// Nodes that do not implement Waker are stepped every round while
// non-quiescent (and on every receive), which is always correct.
type Waker interface {
	NextWake() int
}

// Scheduler selects the engine's stepping strategy.
type Scheduler int

const (
	// SchedulerActive (default) steps only the active set each round and
	// fast-forwards over empty rounds. Stats, results and observer events
	// are bit-identical to SchedulerDense (Elapsed excepted).
	SchedulerActive Scheduler = iota
	// SchedulerDense steps all n nodes every round — the reference
	// semantics, kept for differential testing.
	SchedulerDense
)

// Context gives a node its local view: its ID, its incident edges, and the
// send primitives. Nodes must not retain references to inbox slices across
// rounds.
type Context struct {
	id   int
	g    *graph.Graph
	eng  *engine
	nbrs []int // communication neighbors, cached once at engine init

	// out and li are the node's staged sends for the current round: fixed
	// sub-slices of the engine's flat outbox arena (capacity = degree, so
	// a model-respecting node never reallocates them) plus the parallel
	// link-index plane that lets routing skip the adjacency search. A
	// model-violating node (two messages on one link, or a send without a
	// link) spills into a transient heap slice and is rejected by routing.
	out []Message
	li  []int32
	err error
}

// ID returns this node's identifier in 0..N()-1.
func (c *Context) ID() int { return c.id }

// N returns the number of nodes in the network (known to all nodes, as is
// standard in the CONGEST model).
func (c *Context) N() int { return c.g.N() }

// OutEdges returns the weighted arcs leaving this node.
func (c *Context) OutEdges() []graph.Edge { return c.g.Out(c.id) }

// InEdges returns the weighted arcs entering this node.
func (c *Context) InEdges() []graph.Edge { return c.g.In(c.id) }

// Neighbors returns this node's neighbors in the communication graph,
// ascending (a view cached at engine init; callers must not mutate it).
func (c *Context) Neighbors() []int { return c.nbrs }

// Degree returns the communication degree of this node.
func (c *Context) Degree() int { return len(c.nbrs) }

// Send stages a message to neighbor "to" for delivery next round.
func (c *Context) Send(to int, p Payload) {
	c.out = append(c.out, Message{From: c.id, To: to, Payload: p})
	c.li = append(c.li, int32(c.g.CommIndex(c.id, to)))
}

// Broadcast stages the same message to every communication neighbor. The
// payload value is shared across all staged copies (payloads are
// read-only on the receive side), and the cached neighbor view doubles as
// the link-index sequence, so a broadcast costs no lookups at all.
func (c *Context) Broadcast(p Payload) {
	for i, to := range c.nbrs {
		c.out = append(c.out, Message{From: c.id, To: to, Payload: p})
		c.li = append(c.li, int32(i))
	}
}

// PayloadReuse reports whether sender-owned payload reuse (see Pool) is
// safe in this run: true on the engine's built-in delivery path, false
// when a Network substrate is installed (delayed deliveries and
// retransmit queues may hold a payload arbitrarily long, so reusing it
// would corrupt traffic still in flight).
func (c *Context) PayloadReuse() bool { return c.eng.net == nil }

// Fail records an algorithm-level error; the engine aborts the run and
// returns it.
func (c *Context) Fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Failf is Fail with formatting.
func (c *Context) Failf(format string, args ...interface{}) {
	c.Fail(fmt.Errorf(format, args...))
}

// Config controls an engine run. The zero value is usable.
type Config struct {
	// MaxRounds aborts the run with an error after this many rounds
	// (default 1<<22). Algorithms with proven round bounds should pass
	// their bound plus slack so runaway bugs surface as errors.
	MaxRounds int
	// MaxWordsPerMessage is the bandwidth bound B in words (default 8;
	// a CONGEST message is O(log n) bits, i.e. O(1) words of log n bits).
	MaxWordsPerMessage int
	// Workers bounds the goroutines stepping nodes within a round. The
	// default is GOMAXPROCS; the effective parallelism is adaptive per
	// round — the engine shards the round's active list (not the ID
	// space) and steps small lists serially (one worker per
	// workersPerChunk active nodes), so huge graphs with tiny active sets
	// never pay the parallel-barrier tax (see BenchmarkEngineWorkers*).
	// Results are bit-identical regardless.
	Workers int
	// Scheduler selects the stepping strategy (default SchedulerActive).
	Scheduler Scheduler
	// Network, if set, replaces the engine's built-in perfect delivery
	// with a pluggable delivery substrate (see Network; internal/faults
	// provides the adversarial one plus the reliability shim that keeps
	// results and logical Stats bit-identical). nil keeps the zero-cost
	// built-in path.
	Network Network
	// Observer, if set, receives engine events (round completions,
	// per-node send counts, link-congestion peaks, wall clock per round).
	// nil keeps the engine on its zero-overhead path. Adapt a legacy
	// func(round, msgs int) hook with RoundFunc. Fast-forwarded rounds
	// emit their (empty) RoundDone events so the stream stays identical
	// across schedulers.
	Observer Observer
	// Checkpoint, if set, snapshots the engine at round barriers and/or
	// resumes from a prior Snapshot (see CheckpointPolicy). The policy is
	// shared across all engine runs of a multi-phase algorithm.
	Checkpoint *CheckpointPolicy
	// Ctx, if set, cancels the run at the next round barrier: Run returns
	// an error wrapping context.Cause, after writing a final snapshot to
	// the checkpoint Sink when one is configured. nil means no
	// cancellation (checked once per round, never mid-step).
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 22
	}
	if c.MaxWordsPerMessage == 0 {
		c.MaxWordsPerMessage = 8
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// workersPerChunk is the minimum number of active nodes per worker: a
// round with fewer than 2·workersPerChunk active nodes runs serially,
// because the fork/join barrier costs more than the per-node work. This
// is the per-round adaptive replacement for the old static "parallel only
// when n ≥ 128" cutoff — the decision now follows the round's active-set
// size, so a 100k-node graph whose rounds touch 30 nodes steps them on
// one goroutine.
const workersPerChunk = 64

// Stats reports the cost of a run in the model's terms.
type Stats struct {
	// Rounds is the index of the last round in which any message was sent:
	// the algorithm's round complexity on this input.
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// MaxWords is the largest payload observed, in words.
	MaxWords int
	// MaxLinkCongestion is the maximum number of messages carried by a
	// single link direction over the whole run (the paper's "congestion").
	MaxLinkCongestion int
	// MaxNodeSends is the largest total number of messages sent by any
	// single node — a load-balance indicator (hotspots show up here, e.g.
	// the roots of broadcast trees).
	MaxNodeSends int
}

// Add accumulates s2 into s for multi-phase algorithms: rounds add
// (phases run sequentially), congestion takes the max.
func (s *Stats) Add(s2 Stats) {
	s.Rounds += s2.Rounds
	s.Messages += s2.Messages
	if s2.MaxWords > s.MaxWords {
		s.MaxWords = s2.MaxWords
	}
	if s2.MaxLinkCongestion > s.MaxLinkCongestion {
		s.MaxLinkCongestion = s2.MaxLinkCongestion
	}
	if s2.MaxNodeSends > s.MaxNodeSends {
		s.MaxNodeSends = s2.MaxNodeSends
	}
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("congest: exceeded MaxRounds without quiescing")

// wakeItem is a pending wake request for a node. The heap is indexed (pos
// tracks each node's entry), so a node has at most one live entry at any
// time: re-arming moves it in place with heap.Fix instead of accumulating
// stale entries, keeping the heap at ≤ n items with no lazy-deletion pops.
type wakeItem struct {
	round, node int
}

type wakeHeap struct {
	items []wakeItem
	pos   []int // node -> index in items; -1 when absent
}

// The sift code is container/heap's algorithm with concrete types: the
// stdlib API moves items through interface{} values, which boxes (heap-
// allocates) a wakeItem on every push — on the engine's zero-alloc round
// path that is the whole ballgame. (round, node) is a strict total order,
// so the pop sequence is layout-independent and restore may rebuild the
// array in any valid heap shape.
func (h *wakeHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	return a.round < b.round || (a.round == b.round && a.node < b.node)
}

func (h *wakeHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].node] = i
	h.pos[h.items[j].node] = j
}

func (h *wakeHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h *wakeHeap) down(i, n int) bool {
	i0 := i
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h.less(j2, j) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > i0
}

func (h *wakeHeap) push(it wakeItem) {
	h.pos[it.node] = len(h.items)
	h.items = append(h.items, it)
	h.up(len(h.items) - 1)
}

// popMin removes and returns the earliest wake.
func (h *wakeHeap) popMin() wakeItem {
	n := len(h.items) - 1
	h.swap(0, n)
	h.down(0, n)
	it := h.items[n]
	h.items = h.items[:n]
	h.pos[it.node] = -1
	return it
}

// fix restores the heap after items[i].round changed in place.
func (h *wakeHeap) fix(i int) {
	if !h.down(i, len(h.items)) {
		h.up(i)
	}
}

// remove deletes the entry at index i.
func (h *wakeHeap) remove(i int) {
	n := len(h.items) - 1
	if n != i {
		h.swap(i, n)
		if !h.down(i, n) {
			h.up(i)
		}
	}
	it := h.items[n]
	h.items = h.items[:n]
	h.pos[it.node] = -1
}

// engine holds a run's state in struct-of-arrays form: every per-node
// quantity is a parallel slice indexed by node ID (activity flags,
// quiescence cache, wake rounds, send counters, inbox cursors), message
// storage is flat arenas reused across rounds, and the Contexts themselves
// live in one contiguous slice.
type engine struct {
	g     *graph.Graph
	cfg   Config
	obs   Observer
	net   Network
	nodes []Node
	ctxs  []Context // contiguous; node v's view is &ctxs[v]

	// Flat send plane. Node v's staged sends live in the fixed arena
	// region outBuf[sendOff[v]:sendOff[v+1]] (capacity = its degree; the
	// Context holds the capped sub-slice), with link indices staged in
	// the parallel outLi region by Send/Broadcast. linkLoad is the flat
	// per-(sender, neighbor-index) congestion plane over the same
	// offsets.
	outBuf   []Message
	outLi    []int32
	sendOff  []int32 // n+1 prefix sums of communication degree
	linkLoad []int32

	// netBatch stages the round's validated sends when a Network is
	// installed (the built-in path scatters into the receive plane
	// instead).
	netBatch []Message

	// Flat receive plane, double-buffered and reused across rounds. The
	// round's inbox for node v is the contiguous sub-slice
	// recvCur[inEnd[v]-inLen[v]:inEnd[v]] (inLen[v] == 0 means empty; the
	// cursors of nodes outside recvList are stale and never read). The
	// routing pass counts next-round messages per destination into
	// nxtLen, carves disjoint regions of recvNxt, and scatters in
	// ascending sender order — which is exactly the inbox-sorted-by-
	// sender delivery contract, with no per-destination slices and no
	// sort. recvList names the nodes with a non-empty inbox this round;
	// recvNext the destinations of the round being routed.
	recvCur, recvNxt []Message
	inEnd, inLen     []int32
	nxtEnd, nxtLen   []int32
	recvList         []int
	recvNext         []int

	nodeSends []int
	seenStamp []int // per-destination round stamp for duplicate-link checks

	// Quiescence and inflight tracking, maintained incrementally: the
	// per-round termination check is O(1) on both schedulers. quiescent[v]
	// is the cached Quiescent() of v's last step (Quiescent is a pure
	// function of node state, which only changes when the node is stepped);
	// inflight counts undelivered+unconsumed messages, which equals the
	// previous round's send count because every receiver is stepped.
	quiescent []bool
	quiCount  int
	inflight  int

	// Active-set scheduler state.
	wakers     []Waker // nil for non-Waker nodes
	wakeAt     []int   // currently requested wake round per node; 0 = none
	wakes      wakeHeap
	alwaysOn   []bool // non-Waker node is on the every-round list
	alwaysList []int
	work       []int // the round's active list (sorted ascending)
	mark       []int // epoch stamps deduplicating work-list inserts
	epoch      int
	allNodes   []int // 0..n-1, the dense scheduler's work list

	// Crash isolation: panics inside a node's Round are recovered into
	// CrashErrors (crashMu serializes worker-goroutine reports; the
	// lowest-node crash wins so the outcome is worker-count independent).
	crashMu sync.Mutex
	crash   *CrashError

	stats Stats
}

// phaseName asks the observer for the current algorithm phase, for crash
// attribution; "" when no observer tracks phases.
func (e *engine) phaseName() string {
	if pt, ok := e.obs.(PhaseTracker); ok {
		return pt.CurrentPhase()
	}
	return ""
}

// inboxOf returns node v's inbox for the current round: a contiguous view
// into the receive plane.
func (e *engine) inboxOf(v int) []Message {
	l := e.inLen[v]
	if l == 0 {
		return nil
	}
	end := e.inEnd[v]
	return e.recvCur[end-l : end]
}

// newEngine builds and initializes an engine: nodes constructed and
// Init-ed (the model's round 0), planes carved, scheduler state seeded.
func newEngine(g *graph.Graph, mk func(v int) Node, cfg Config) (*engine, error) {
	n := g.N()
	e := &engine{
		g:         g,
		cfg:       cfg,
		obs:       cfg.Observer,
		net:       cfg.Network,
		nodes:     make([]Node, n),
		ctxs:      make([]Context, n),
		sendOff:   make([]int32, n+1),
		inEnd:     make([]int32, n),
		inLen:     make([]int32, n),
		nxtEnd:    make([]int32, n),
		nxtLen:    make([]int32, n),
		nodeSends: make([]int, n),
		seenStamp: make([]int, n),
		quiescent: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		e.sendOff[v+1] = e.sendOff[v] + int32(g.Degree(v))
		e.seenStamp[v] = -1
	}
	deg2 := int(e.sendOff[n]) // sum of degrees = 2m undirected arcs
	e.outBuf = make([]Message, deg2)
	e.outLi = make([]int32, deg2)
	e.linkLoad = make([]int32, deg2)
	// Receive planes and routing scratch, sized for the model's worst case
	// up front (≤1 message per arc per round, ≤n destinations): the steady
	// state never grows them, so rounds never re-allocate — the property
	// the allocation guards in alloc_test.go enforce.
	e.recvCur = make([]Message, 0, deg2)
	e.recvNxt = make([]Message, 0, deg2)
	e.recvList = make([]int, 0, n)
	e.recvNext = make([]int, 0, n)
	e.work = make([]int, 0, n)
	for v := 0; v < n; v++ {
		e.nodes[v] = mk(v)
		lo, hi := e.sendOff[v], e.sendOff[v+1]
		e.ctxs[v] = Context{
			id:   v,
			g:    g,
			eng:  e,
			nbrs: g.CommNeighbors(v),
			out:  e.outBuf[lo:lo:hi],
			li:   e.outLi[lo:lo:hi],
		}
	}
	if e.net != nil {
		e.net.Reset(n)
	}
	if e.obs != nil {
		e.obs.RunStart(n)
	}
	for v := 0; v < n; v++ {
		e.nodes[v].Init(&e.ctxs[v])
		if err := e.ctxs[v].err; err != nil {
			return e, fmt.Errorf("congest: node %d failed in Init: %w", v, err)
		}
		if len(e.ctxs[v].out) != 0 {
			return e, fmt.Errorf("congest: node %d sent during Init (the model's round 0 has no sends)", v)
		}
	}
	for v := 0; v < n; v++ {
		if e.nodes[v].Quiescent() {
			e.quiescent[v] = true
			e.quiCount++
		}
	}

	e.allNodes = make([]int, n)
	for v := range e.allNodes {
		e.allNodes[v] = v
	}
	if cfg.Scheduler != SchedulerDense {
		e.wakers = make([]Waker, n)
		e.wakeAt = make([]int, n)
		e.alwaysOn = make([]bool, n)
		e.mark = make([]int, n)
		e.wakes.items = make([]wakeItem, 0, n)
		e.wakes.pos = make([]int, n)
		for v := range e.wakes.pos {
			e.wakes.pos[v] = -1
		}
		for v := 0; v < n; v++ {
			if w, ok := e.nodes[v].(Waker); ok {
				e.wakers[v] = w
				e.arm(v, 0)
			} else if !e.quiescent[v] {
				e.alwaysOn[v] = true
				e.alwaysList = append(e.alwaysList, v)
			}
		}
	}
	return e, nil
}

// Run executes the algorithm created by mk (called once per node, in node
// order) until every node is quiescent and no messages are in flight, or
// until cfg.MaxRounds is exceeded.
func Run(g *graph.Graph, mk func(v int) Node, cfg Config) (Stats, error) {
	cfg = cfg.withDefaults()
	pol := cfg.Checkpoint
	runIdx := 0
	if pol != nil {
		runIdx = pol.beginRun()
	}
	e, err := newEngine(g, mk, cfg)
	if e != nil && e.obs != nil {
		// RunDone fires on every exit path — normal quiescence, MaxRounds
		// and algorithm failures alike — with the stats accumulated so far.
		defer func() { e.obs.RunDone(e.stats) }()
	}
	if err != nil {
		return e.stats, err
	}

	startR := 1
	if pol != nil && pol.Resume != nil && pol.Resume.RunIdx == runIdx {
		if err := e.restore(pol.Resume); err != nil {
			return e.stats, fmt.Errorf("congest: resume: %w", err)
		}
		startR = pol.Resume.Round
	}
	return e.loop(startR, runIdx)
}

// loop is the round loop, from round startR until quiescence or abort.
func (e *engine) loop(startR, runIdx int) (Stats, error) {
	cfg := e.cfg
	pol := cfg.Checkpoint
	dense := cfg.Scheduler == SchedulerDense
	crasher, _ := e.net.(Crasher)
	n := len(e.nodes)

	for r := startR; ; r++ {
		if r > cfg.MaxRounds {
			return e.stats, fmt.Errorf("%w (MaxRounds=%d)", ErrMaxRounds, cfg.MaxRounds)
		}
		if e.quiCount == n && e.inflight == 0 {
			return e.stats, nil
		}
		if cfg.Ctx != nil {
			select {
			case <-cfg.Ctx.Done():
				// A cancellation lands on a clean barrier: write a final
				// snapshot (best effort — the cancellation error wins) so
				// the run is resumable, then abort.
				if pol != nil && pol.Sink != nil {
					if snap, serr := e.snapshot(r, runIdx); serr == nil {
						_ = pol.Sink(snap)
					}
				}
				return e.stats, fmt.Errorf("congest: run canceled at round %d: %w", r, context.Cause(cfg.Ctx))
			default:
			}
		}
		if pol != nil {
			if stop, due := pol.due(runIdx, r); due {
				snap, err := e.snapshot(r, runIdx)
				if err != nil {
					return e.stats, err
				}
				if err := pol.Sink(snap); err != nil {
					return e.stats, fmt.Errorf("congest: checkpoint sink: %w", err)
				}
				if stop {
					return e.stats, ErrCheckpointStop
				}
			}
		}
		if crasher != nil {
			if v, restart, due := crasher.CrashDue(r); due {
				return e.stats, &CrashError{Node: v, Round: r, Phase: e.phaseName(), Restart: restart}
			}
		}
		if e.net != nil {
			e.collectNet(r, dense)
		}
		work := e.allNodes
		if !dense {
			work = e.collectActive(r)
			if len(work) == 0 {
				// Fast-forward: no inbox is pending (every receiver is in the
				// work list), no wake is due, and every stragglers-free round
				// up to the next wake (or the network's next due delivery)
				// would step nothing and send nothing — so no state changes
				// and the termination conditions cannot flip mid-skip. Jump
				// there, emitting the empty RoundDone events the dense
				// engine would have produced.
				target := cfg.MaxRounds + 1
				if next := e.nextWake(); next > 0 && next <= cfg.MaxRounds {
					target = next
				}
				if e.net != nil {
					if due := e.net.NextDue(r + 1); due > 0 && due < target {
						target = due
					}
				}
				// Checkpoints and scripted crashes fire at exact rounds;
				// clamp the skip so neither is jumped over.
				if pol != nil {
					if due := pol.nextDue(r+1, runIdx); due > 0 && due < target {
						target = due
					}
				}
				if crasher != nil {
					if due := crasher.NextCrash(r + 1); due > 0 && due < target {
						target = due
					}
				}
				if e.obs != nil {
					for rr := r; rr < target; rr++ {
						e.obs.RoundDone(RoundEvent{Round: rr})
					}
				}
				r = target - 1
				continue
			}
		}
		var start time.Time
		if e.obs != nil {
			start = time.Now()
		}
		sent, active, err := e.step(r, work, dense)
		if err != nil {
			return e.stats, err
		}
		if sent > 0 {
			e.stats.Rounds = r
		}
		if e.obs != nil {
			e.obs.RoundDone(RoundEvent{Round: r, Sent: sent, Active: active, Elapsed: time.Since(start)})
		}
	}
}

// collectNet drains the Network's round-r deliveries into the receive
// plane. The batch arrives sorted by (To, From) — the delivery-order
// invariant — so each destination's messages are already a contiguous run
// and the plane is filled by one sequential copy.
func (e *engine) collectNet(r int, dense bool) {
	batch := e.net.Collect(r)
	if len(batch) == 0 {
		return
	}
	if cap(e.recvCur) < len(batch) {
		e.recvCur = make([]Message, len(batch))
	} else {
		e.recvCur = e.recvCur[:len(batch)]
	}
	copy(e.recvCur, batch)
	for i := 0; i < len(batch); {
		to := batch[i].To
		j := i + 1
		for j < len(batch) && batch[j].To == to {
			j++
		}
		e.inEnd[to] = int32(j)
		e.inLen[to] = int32(j - i)
		e.recvList = append(e.recvList, to)
		i = j
	}
}

// arm records node v's next self-declared wake round after a step in round
// r (0 for the post-Init arm). Returns ≤ r are clamped to r+1; a previous
// request is updated in place via the heap's node index.
func (e *engine) arm(v, r int) {
	w := e.wakers[v].NextWake()
	if w < 0 {
		// WakeOnReceive: only an incoming message steps v.
		if p := e.wakes.pos[v]; p >= 0 {
			e.wakes.remove(p)
		}
		e.wakeAt[v] = 0
		return
	}
	if w <= r {
		w = r + 1
	}
	if e.wakeAt[v] == w {
		return
	}
	e.wakeAt[v] = w
	if p := e.wakes.pos[v]; p >= 0 {
		e.wakes.items[p].round = w
		e.wakes.fix(p)
	} else {
		e.wakes.push(wakeItem{round: w, node: v})
	}
}

// nextWake returns the smallest pending wake round; 0 when none is pending.
func (e *engine) nextWake() int {
	if len(e.wakes.items) > 0 {
		return e.wakes.items[0].round
	}
	return 0
}

// collectActive assembles round r's active list: every node with a
// non-empty inbox, every non-Waker node that was non-quiescent after its
// last step, and every node whose wake round has arrived. Sorted ascending
// so the routing pass visits senders in node order (the inbox-sorted-by-
// sender delivery contract).
func (e *engine) collectActive(r int) []int {
	e.epoch++
	work := e.work[:0]
	add := func(v int) {
		if e.mark[v] != e.epoch {
			e.mark[v] = e.epoch
			work = append(work, v)
		}
	}
	for _, v := range e.recvList {
		add(v)
	}
	kept := e.alwaysList[:0]
	for _, v := range e.alwaysList {
		if e.alwaysOn[v] {
			kept = append(kept, v)
			add(v)
		}
	}
	e.alwaysList = kept
	for len(e.wakes.items) > 0 && e.wakes.items[0].round <= r {
		it := e.wakes.popMin()
		e.wakeAt[it.node] = 0
		add(it.node)
	}
	e.work = work
	if len(work) == len(e.nodes) {
		return e.allNodes // the whole graph is active; already sorted
	}
	sort.Ints(work)
	return work
}

// stepNode runs one node's Round under panic isolation: a panic inside
// protocol code is recovered into a structured CrashError (node, round,
// phase) instead of unwinding the engine; the other nodes of the same
// round finish their steps untouched. When several nodes panic in one
// round the lowest node wins, so the outcome is worker-count independent.
func (e *engine) stepNode(v, r int) {
	defer func() {
		if p := recover(); p != nil {
			e.crashMu.Lock()
			if e.crash == nil || v < e.crash.Node {
				e.crash = &CrashError{Node: v, Round: r, Phase: e.phaseName(), Panic: p}
			}
			e.crashMu.Unlock()
		}
	}()
	e.nodes[v].Round(&e.ctxs[v], r, e.inboxOf(v))
}

// step runs one synchronous round over the given work list (all nodes under
// the dense scheduler, the active set otherwise): each listed node consumes
// its inbox and stages sends; the engine then validates and routes the
// sends into the next round's receive plane. Returns the number of
// messages sent this round and the number of nodes that sent.
func (e *engine) step(r int, work []int, dense bool) (int, int, error) {
	workers := e.cfg.Workers
	// Shard the work list, not the ID space: active nodes cluster, and a
	// static lo..hi split over 0..n would leave most workers idle. The
	// worker count adapts to the round's active-set size — small lists
	// stay serial, because the fork/join barrier costs more than the
	// per-node work (see workersPerChunk and BenchmarkEngineWorkers*).
	if workers > 1 {
		if maxW := (len(work) + workersPerChunk - 1) / workersPerChunk; workers > maxW {
			workers = maxW
		}
	}
	if workers <= 1 {
		for _, v := range work {
			e.stepNode(v, r)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (len(work) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(work) {
				hi = len(work)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []int) {
				defer wg.Done()
				for _, v := range part {
					e.stepNode(v, r)
				}
			}(work[lo:hi])
		}
		wg.Wait()
	}
	if e.crash != nil {
		ce := e.crash
		e.crash = nil
		return 0, 0, ce
	}

	// Validate and count. Single-threaded: it touches the shared
	// congestion and destination planes. Senders are visited in ascending
	// node order (work is sorted); link indices were staged at send time,
	// so no adjacency search happens here.
	n := len(e.nodes)
	sent, active := 0, 0
	e.recvNext = e.recvNext[:0]
	for _, v := range work {
		ctx := &e.ctxs[v]
		if ctx.err != nil {
			return sent, active, fmt.Errorf("congest: node %d failed in round %d: %w", v, r, ctx.err)
		}
		out := ctx.out
		if len(out) == 0 {
			continue
		}
		// stamp = v*maxRounds+r would overflow; a (round, sender)-unique
		// stamp suffices since we check one sender's batch at a time.
		stamp := r*n + v
		base := e.sendOff[v]
		for i := range out {
			to := out[i].To
			li := ctx.li[i]
			if li < 0 {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent to %d without a link", r, v, to)
			}
			if e.seenStamp[to] == stamp {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent two messages on link to %d", r, v, to)
			}
			e.seenStamp[to] = stamp
			w := out[i].Payload.Words()
			if w > e.cfg.MaxWordsPerMessage {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent %d-word message to %d (bound %d)",
					r, v, w, to, e.cfg.MaxWordsPerMessage)
			}
			if w > e.stats.MaxWords {
				e.stats.MaxWords = w
			}
			ll := base + li
			e.linkLoad[ll]++
			if int(e.linkLoad[ll]) > e.stats.MaxLinkCongestion {
				e.stats.MaxLinkCongestion = int(e.linkLoad[ll])
				if e.obs != nil {
					e.obs.LinkPeak(r, v, to, e.stats.MaxLinkCongestion)
				}
			}
			if e.net != nil {
				// Hand the message to the delivery substrate instead of the
				// built-in receive plane; the batch stays in canonical
				// order because work is sorted and out is send-ordered.
				e.netBatch = append(e.netBatch, out[i])
			} else if e.nxtLen[to] == 0 {
				e.nxtLen[to] = 1
				e.recvNext = append(e.recvNext, to)
			} else {
				e.nxtLen[to]++
			}
			sent++
		}
		active++
		if e.obs != nil {
			e.obs.NodeSends(r, v, len(out))
		}
		e.nodeSends[v] += len(out)
		if e.nodeSends[v] > e.stats.MaxNodeSends {
			e.stats.MaxNodeSends = e.nodeSends[v]
		}
	}
	e.stats.Messages += int64(sent)

	if e.net != nil {
		if len(e.netBatch) > 0 {
			if err := e.net.Send(r, e.netBatch); err != nil {
				return sent, active, fmt.Errorf("congest: network delivery failed in round %d: %w", r, err)
			}
			e.netBatch = e.netBatch[:0]
		}
		for _, v := range work {
			ctx := &e.ctxs[v]
			ctx.out = ctx.out[:0]
			ctx.li = ctx.li[:0]
		}
	} else if sent > 0 {
		// Carve the next round's receive plane: disjoint per-destination
		// regions sized by the counts above, then scatter in ascending
		// sender order — each destination's sub-slice is born sorted by
		// sender, the delivery order the Node contract promises.
		total := int32(0)
		for _, to := range e.recvNext {
			c := e.nxtLen[to]
			e.nxtEnd[to] = total
			total += c
		}
		if cap(e.recvNxt) < int(total) {
			e.recvNxt = make([]Message, total)
		} else {
			e.recvNxt = e.recvNxt[:total]
		}
		for _, v := range work {
			ctx := &e.ctxs[v]
			out := ctx.out
			for i := range out {
				to := out[i].To
				p := e.nxtEnd[to]
				e.recvNxt[p] = out[i]
				e.nxtEnd[to] = p + 1
			}
			ctx.out = out[:0]
			ctx.li = ctx.li[:0]
		}
	}

	// Refresh the cached quiescence of every stepped node and, for the
	// active scheduler, its next wake (Wakers) or always-on membership
	// (non-Wakers; removal is lazy, see collectActive).
	for _, v := range work {
		q := e.nodes[v].Quiescent()
		if q != e.quiescent[v] {
			e.quiescent[v] = q
			if q {
				e.quiCount++
			} else {
				e.quiCount--
			}
		}
		if dense {
			continue
		}
		if e.wakers[v] != nil {
			// A node with messages already routed to it is stepped next
			// round regardless and re-armed after that step, so asking it
			// for a wake now is pure overhead. Any wake left armed from an
			// earlier step fires as a harmless extra step — the active set
			// may exceed the dense set's busy nodes, never undershoot it.
			if e.nxtLen[v] == 0 {
				e.arm(v, r)
			}
		} else if q == e.alwaysOn[v] {
			if q {
				e.alwaysOn[v] = false
			} else {
				e.alwaysOn[v] = true
				e.alwaysList = append(e.alwaysList, v)
			}
		}
	}

	// Deliver: every inbox of this round was consumed, so retire its
	// cursors and swap in the next round's plane (already sorted by
	// sender). Every message scattered above is in the new plane, and
	// every destination will be stepped next round, so the inflight count
	// is exactly this round's send count.
	for _, v := range e.recvList {
		e.inLen[v] = 0
	}
	e.recvList = e.recvList[:0]
	if e.net != nil {
		// With a Network installed, round-(r+1) traffic is whatever the
		// substrate chooses to deliver (collectNet fills the plane at the
		// top of the next executed round); in-flight is what it has
		// accepted but not yet delivered — drops shrink it, delayed and
		// duplicated deliveries extend it beyond the next round.
		e.recvCur = e.recvCur[:0]
		e.inflight = e.net.Pending()
	} else {
		e.recvCur, e.recvNxt = e.recvNxt, e.recvCur
		e.inEnd, e.nxtEnd = e.nxtEnd, e.inEnd
		e.inLen, e.nxtLen = e.nxtLen, e.inLen
		e.recvList, e.recvNext = e.recvNext, e.recvList
		e.inflight = sent
	}
	return sent, active, nil
}
