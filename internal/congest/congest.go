// Package congest simulates the CONGEST model of distributed computation
// (paper Sec. I-B): n processors on the nodes of a graph proceed in
// synchronous rounds; in each round a node may send one O(log n)-bit message
// along each incident communication link and receives, at the start of the
// next round, the messages sent to it in the previous round.
//
// The simulator is the cost substrate for every algorithm in this
// repository: it counts rounds and messages, tracks per-link congestion, and
// *enforces* the model — an oversized payload or two messages pushed on the
// same link direction in one round is an error, not a silent success.
//
// Communication always uses the underlying undirected graph of the input,
// even for directed inputs, exactly as the paper assumes.
package congest

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
)

// Payload is implemented by message payloads. Words reports the payload size
// in O(log n)-bit machine words so the engine can enforce the bandwidth
// bound.
type Payload interface {
	Words() int
}

// Message is a single CONGEST message in flight.
type Message struct {
	From, To int
	Payload  Payload
}

// Node is a processor's algorithm. The engine calls Init once (the paper's
// round 0, in which state is set up but nothing is sent), then Round once
// per communication round with the messages sent to this node in the
// previous round, sorted by sender.
//
// Quiescent must report true when the node will send no further messages
// unless it first receives one; the engine halts when every node is
// quiescent and no messages are in flight.
type Node interface {
	Init(ctx *Context)
	Round(ctx *Context, r int, inbox []Message)
	Quiescent() bool
}

// Context gives a node its local view: its ID, its incident edges, and the
// send primitives. Nodes must not retain references to inbox slices across
// rounds.
type Context struct {
	id  int
	g   *graph.Graph
	eng *engine
	out []Message
	err error
}

// ID returns this node's identifier in 0..N()-1.
func (c *Context) ID() int { return c.id }

// N returns the number of nodes in the network (known to all nodes, as is
// standard in the CONGEST model).
func (c *Context) N() int { return c.g.N() }

// OutEdges returns the weighted arcs leaving this node.
func (c *Context) OutEdges() []graph.Edge { return c.g.Out(c.id) }

// InEdges returns the weighted arcs entering this node.
func (c *Context) InEdges() []graph.Edge { return c.g.In(c.id) }

// Neighbors returns this node's neighbors in the communication graph,
// ascending.
func (c *Context) Neighbors() []int { return c.g.CommNeighbors(c.id) }

// Degree returns the communication degree of this node.
func (c *Context) Degree() int { return c.g.Degree(c.id) }

// Send stages a message to neighbor "to" for delivery next round.
func (c *Context) Send(to int, p Payload) {
	c.out = append(c.out, Message{From: c.id, To: to, Payload: p})
}

// Broadcast stages the same message to every communication neighbor.
func (c *Context) Broadcast(p Payload) {
	for _, to := range c.g.CommNeighbors(c.id) {
		c.out = append(c.out, Message{From: c.id, To: to, Payload: p})
	}
}

// Fail records an algorithm-level error; the engine aborts the run and
// returns it.
func (c *Context) Fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Failf is Fail with formatting.
func (c *Context) Failf(format string, args ...interface{}) {
	c.Fail(fmt.Errorf(format, args...))
}

// Config controls an engine run. The zero value is usable.
type Config struct {
	// MaxRounds aborts the run with an error after this many rounds
	// (default 1<<22). Algorithms with proven round bounds should pass
	// their bound plus slack so runaway bugs surface as errors.
	MaxRounds int
	// MaxWordsPerMessage is the bandwidth bound B in words (default 8;
	// a CONGEST message is O(log n) bits, i.e. O(1) words of log n bits).
	MaxWordsPerMessage int
	// Workers bounds the goroutines stepping nodes within a round. The
	// default is adaptive: 1 for networks under 128 nodes (the per-round
	// barrier costs more than the tiny per-node work; see
	// BenchmarkEngineWorkers*), GOMAXPROCS above. Results are
	// bit-identical regardless.
	Workers int
	// Observer, if set, receives engine events (round completions,
	// per-node send counts, link-congestion peaks, wall clock per round).
	// nil keeps the engine on its zero-overhead path. Adapt a legacy
	// func(round, msgs int) hook with RoundFunc.
	Observer Observer
}

func (c Config) withDefaults(n int) Config {
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 22
	}
	if c.MaxWordsPerMessage == 0 {
		c.MaxWordsPerMessage = 8
	}
	if c.Workers == 0 {
		if n < 128 {
			c.Workers = 1
		} else {
			c.Workers = runtime.GOMAXPROCS(0)
		}
	}
	return c
}

// Stats reports the cost of a run in the model's terms.
type Stats struct {
	// Rounds is the index of the last round in which any message was sent:
	// the algorithm's round complexity on this input.
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// MaxWords is the largest payload observed, in words.
	MaxWords int
	// MaxLinkCongestion is the maximum number of messages carried by a
	// single link direction over the whole run (the paper's "congestion").
	MaxLinkCongestion int
	// MaxNodeSends is the largest total number of messages sent by any
	// single node — a load-balance indicator (hotspots show up here, e.g.
	// the roots of broadcast trees).
	MaxNodeSends int
}

// Add accumulates s2 into s for multi-phase algorithms: rounds add
// (phases run sequentially), congestion takes the max.
func (s *Stats) Add(s2 Stats) {
	s.Rounds += s2.Rounds
	s.Messages += s2.Messages
	if s2.MaxWords > s.MaxWords {
		s.MaxWords = s2.MaxWords
	}
	if s2.MaxLinkCongestion > s.MaxLinkCongestion {
		s.MaxLinkCongestion = s2.MaxLinkCongestion
	}
	if s2.MaxNodeSends > s.MaxNodeSends {
		s.MaxNodeSends = s2.MaxNodeSends
	}
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("congest: exceeded MaxRounds without quiescing")

type engine struct {
	g     *graph.Graph
	cfg   Config
	obs   Observer
	nodes []Node
	ctxs  []*Context

	inbox     [][]Message
	nextIn    [][]Message
	linkLoad  [][]int32 // per (sender, neighbor-index) message counts
	nodeSends []int
	seenStamp []int // per-destination round stamp for duplicate-link checks

	stats Stats
}

// Run executes the algorithm created by mk (called once per node, in node
// order) until every node is quiescent and no messages are in flight, or
// until cfg.MaxRounds is exceeded.
func Run(g *graph.Graph, mk func(v int) Node, cfg Config) (Stats, error) {
	n := g.N()
	cfg = cfg.withDefaults(n)
	e := &engine{
		g:         g,
		cfg:       cfg,
		obs:       cfg.Observer,
		nodes:     make([]Node, n),
		ctxs:      make([]*Context, n),
		inbox:     make([][]Message, n),
		nextIn:    make([][]Message, n),
		linkLoad:  make([][]int32, n),
		nodeSends: make([]int, n),
		seenStamp: make([]int, n),
	}
	for v := 0; v < n; v++ {
		e.linkLoad[v] = make([]int32, g.Degree(v))
		e.seenStamp[v] = -1
	}
	for v := 0; v < n; v++ {
		e.nodes[v] = mk(v)
		e.ctxs[v] = &Context{id: v, g: g, eng: e}
	}
	if e.obs != nil {
		e.obs.RunStart(n)
		// RunDone fires on every exit path — normal quiescence, MaxRounds
		// and algorithm failures alike — with the stats accumulated so far.
		defer func() { e.obs.RunDone(e.stats) }()
	}
	for v := 0; v < n; v++ {
		e.nodes[v].Init(e.ctxs[v])
		if err := e.ctxs[v].err; err != nil {
			return e.stats, fmt.Errorf("congest: node %d failed in Init: %w", v, err)
		}
		if len(e.ctxs[v].out) != 0 {
			return e.stats, fmt.Errorf("congest: node %d sent during Init (the model's round 0 has no sends)", v)
		}
	}

	for r := 1; ; r++ {
		if r > cfg.MaxRounds {
			return e.stats, fmt.Errorf("%w (MaxRounds=%d)", ErrMaxRounds, cfg.MaxRounds)
		}
		if e.allQuiescent() && e.noInflight() {
			return e.stats, nil
		}
		var start time.Time
		if e.obs != nil {
			start = time.Now()
		}
		sent, active, err := e.step(r)
		if err != nil {
			return e.stats, err
		}
		if sent > 0 {
			e.stats.Rounds = r
		}
		if e.obs != nil {
			e.obs.RoundDone(RoundEvent{Round: r, Sent: sent, Active: active, Elapsed: time.Since(start)})
		}
	}
}

func (e *engine) allQuiescent() bool {
	for _, nd := range e.nodes {
		if !nd.Quiescent() {
			return false
		}
	}
	return true
}

func (e *engine) noInflight() bool {
	for _, in := range e.inbox {
		if len(in) > 0 {
			return false
		}
	}
	return true
}

// step runs one synchronous round: every node consumes its inbox and stages
// sends; the engine then validates and routes the sends into next-round
// inboxes. Returns the number of messages sent this round and the number of
// nodes that sent.
func (e *engine) step(r int) (int, int, error) {
	n := len(e.nodes)
	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for v := 0; v < n; v++ {
			e.nodes[v].Round(e.ctxs[v], r, e.inbox[v])
		}
	} else {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for v := lo; v < hi; v++ {
					e.nodes[v].Round(e.ctxs[v], r, e.inbox[v])
				}
			}(lo, hi)
		}
		wg.Wait()
	}

	// Validate and route. Single-threaded: it touches shared inboxes.
	// Routing visits senders in ascending node order, so each destination's
	// next-round inbox is built already sorted by sender — the delivery
	// order the Node contract promises — without a sort.
	sent, active := 0, 0
	for v := 0; v < n; v++ {
		ctx := e.ctxs[v]
		if ctx.err != nil {
			return sent, active, fmt.Errorf("congest: node %d failed in round %d: %w", v, r, ctx.err)
		}
		if len(ctx.out) == 0 {
			continue
		}
		// stamp = v*maxRounds+r would overflow; a (round, sender)-unique
		// stamp suffices since we check one sender's batch at a time.
		stamp := r*n + v
		for _, m := range ctx.out {
			li := e.g.CommIndex(m.From, m.To)
			if li < 0 {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent to %d without a link", r, m.From, m.To)
			}
			if e.seenStamp[m.To] == stamp {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent two messages on link to %d", r, m.From, m.To)
			}
			e.seenStamp[m.To] = stamp
			w := m.Payload.Words()
			if w > e.cfg.MaxWordsPerMessage {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent %d-word message to %d (bound %d)",
					r, m.From, w, m.To, e.cfg.MaxWordsPerMessage)
			}
			if w > e.stats.MaxWords {
				e.stats.MaxWords = w
			}
			e.linkLoad[m.From][li]++
			if int(e.linkLoad[m.From][li]) > e.stats.MaxLinkCongestion {
				e.stats.MaxLinkCongestion = int(e.linkLoad[m.From][li])
				if e.obs != nil {
					e.obs.LinkPeak(r, m.From, m.To, e.stats.MaxLinkCongestion)
				}
			}
			e.nextIn[m.To] = append(e.nextIn[m.To], m)
			sent++
		}
		active++
		if e.obs != nil {
			e.obs.NodeSends(r, v, len(ctx.out))
		}
		e.nodeSends[v] += len(ctx.out)
		if e.nodeSends[v] > e.stats.MaxNodeSends {
			e.stats.MaxNodeSends = e.nodeSends[v]
		}
		ctx.out = ctx.out[:0]
	}
	e.stats.Messages += int64(sent)

	// Deliver: swap next-round inboxes in (already sorted by sender).
	for v := 0; v < n; v++ {
		e.inbox[v] = e.inbox[v][:0]
		e.inbox[v], e.nextIn[v] = e.nextIn[v], e.inbox[v]
	}
	return sent, active, nil
}
