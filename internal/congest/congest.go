// Package congest simulates the CONGEST model of distributed computation
// (paper Sec. I-B): n processors on the nodes of a graph proceed in
// synchronous rounds; in each round a node may send one O(log n)-bit message
// along each incident communication link and receives, at the start of the
// next round, the messages sent to it in the previous round.
//
// The simulator is the cost substrate for every algorithm in this
// repository: it counts rounds and messages, tracks per-link congestion, and
// *enforces* the model — an oversized payload or two messages pushed on the
// same link direction in one round is an error, not a silent success.
//
// Communication always uses the underlying undirected graph of the input,
// even for directed inputs, exactly as the paper assumes.
//
// # Scheduling
//
// The engine's cost model is rounds, but its wall-clock is host time, and
// the two are decoupled: in most rounds of the paper's pipelined algorithms
// only a handful of nodes have anything to do (the ⌈κ⌉+pos schedule tells
// each node exactly when its next entry fires). The default active-set
// scheduler therefore steps only the nodes that can act this round — nodes
// with a non-empty inbox, nodes whose self-declared wake round (see Waker)
// has arrived, and non-Waker nodes that are not quiescent — and
// fast-forwards over rounds in which that set is empty. Stats, results and
// the Observer event stream are bit-identical to the dense engine
// (RoundEvent.Elapsed, wall clock, excepted); Config.Scheduler selects the
// dense engine for differential testing.
package congest

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
)

// Payload is implemented by message payloads. Words reports the payload size
// in O(log n)-bit machine words so the engine can enforce the bandwidth
// bound.
type Payload interface {
	Words() int
}

// Message is a single CONGEST message in flight.
type Message struct {
	From, To int
	Payload  Payload
}

// Node is a processor's algorithm. The engine calls Init once (the paper's
// round 0, in which state is set up but nothing is sent), then Round once
// per communication round with the messages sent to this node in the
// previous round, sorted by sender.
//
// Inbox order is an explicit engine invariant, not an accident of
// routing: messages are presented in ascending sender order, with each
// link's messages in the order they were sent. Under a Network (see
// network.go) that order is reconstructed from per-link sequence numbers
// by the reliability shim — physical arrival order carries no meaning,
// and protocols must not be exposed to it.
//
// Quiescent must report true when the node will send no further messages
// unless it first receives one; the engine halts when every node is
// quiescent and no messages are in flight. Quiescent must be a pure
// function of the node's state: the active-set scheduler caches its value
// between steps.
type Node interface {
	Init(ctx *Context)
	Round(ctx *Context, r int, inbox []Message)
	Quiescent() bool
}

// WakeOnReceive is the Waker sentinel for "step me only when I receive a
// message".
const WakeOnReceive = -1

// Waker is optionally implemented by Nodes whose send schedule is
// predictable. After every step, the active-set scheduler asks the node for
// the next round in which it may act spontaneously (send, or mutate state
// in a round-dependent way, e.g. record a snapshot); until that round
// arrives the node is stepped only when it receives a message. Returning
// WakeOnReceive declares that only a receive can make the node act.
//
// The contract is strict, and a violation is a protocol error, not a
// slowdown: if a node would have sent (or changed state) in a round earlier
// than its declared wake, the active-set engine simply never steps it
// there, and its results diverge from the dense engine's — which is exactly
// what the scheduler-equivalence difftests detect. Returning a round that
// is too early is always safe (the node is stepped, finds nothing due, and
// is asked again). Returns ≤ the current round are clamped to the next
// round. A node that is not Quiescent must not return WakeOnReceive unless
// a message for it is already in flight.
//
// Nodes that do not implement Waker are stepped every round while
// non-quiescent (and on every receive), which is always correct.
type Waker interface {
	NextWake() int
}

// Scheduler selects the engine's stepping strategy.
type Scheduler int

const (
	// SchedulerActive (default) steps only the active set each round and
	// fast-forwards over empty rounds. Stats, results and observer events
	// are bit-identical to SchedulerDense (Elapsed excepted).
	SchedulerActive Scheduler = iota
	// SchedulerDense steps all n nodes every round — the reference
	// semantics, kept for differential testing.
	SchedulerDense
)

// Context gives a node its local view: its ID, its incident edges, and the
// send primitives. Nodes must not retain references to inbox slices across
// rounds.
type Context struct {
	id  int
	g   *graph.Graph
	eng *engine
	out []Message
	err error
}

// ID returns this node's identifier in 0..N()-1.
func (c *Context) ID() int { return c.id }

// N returns the number of nodes in the network (known to all nodes, as is
// standard in the CONGEST model).
func (c *Context) N() int { return c.g.N() }

// OutEdges returns the weighted arcs leaving this node.
func (c *Context) OutEdges() []graph.Edge { return c.g.Out(c.id) }

// InEdges returns the weighted arcs entering this node.
func (c *Context) InEdges() []graph.Edge { return c.g.In(c.id) }

// Neighbors returns this node's neighbors in the communication graph,
// ascending.
func (c *Context) Neighbors() []int { return c.g.CommNeighbors(c.id) }

// Degree returns the communication degree of this node.
func (c *Context) Degree() int { return c.g.Degree(c.id) }

// Send stages a message to neighbor "to" for delivery next round.
func (c *Context) Send(to int, p Payload) {
	c.out = append(c.out, Message{From: c.id, To: to, Payload: p})
}

// Broadcast stages the same message to every communication neighbor.
func (c *Context) Broadcast(p Payload) {
	for _, to := range c.g.CommNeighbors(c.id) {
		c.out = append(c.out, Message{From: c.id, To: to, Payload: p})
	}
}

// Fail records an algorithm-level error; the engine aborts the run and
// returns it.
func (c *Context) Fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Failf is Fail with formatting.
func (c *Context) Failf(format string, args ...interface{}) {
	c.Fail(fmt.Errorf(format, args...))
}

// Config controls an engine run. The zero value is usable.
type Config struct {
	// MaxRounds aborts the run with an error after this many rounds
	// (default 1<<22). Algorithms with proven round bounds should pass
	// their bound plus slack so runaway bugs surface as errors.
	MaxRounds int
	// MaxWordsPerMessage is the bandwidth bound B in words (default 8;
	// a CONGEST message is O(log n) bits, i.e. O(1) words of log n bits).
	MaxWordsPerMessage int
	// Workers bounds the goroutines stepping nodes within a round. The
	// default is adaptive: 1 for networks under 128 nodes (the per-round
	// barrier costs more than the tiny per-node work; see
	// BenchmarkEngineWorkers*), GOMAXPROCS above. Work is sharded over the
	// round's active list, so clustered activity parallelizes too. Results
	// are bit-identical regardless.
	Workers int
	// Scheduler selects the stepping strategy (default SchedulerActive).
	Scheduler Scheduler
	// Network, if set, replaces the engine's built-in perfect delivery
	// with a pluggable delivery substrate (see Network; internal/faults
	// provides the adversarial one plus the reliability shim that keeps
	// results and logical Stats bit-identical). nil keeps the zero-cost
	// built-in path.
	Network Network
	// Observer, if set, receives engine events (round completions,
	// per-node send counts, link-congestion peaks, wall clock per round).
	// nil keeps the engine on its zero-overhead path. Adapt a legacy
	// func(round, msgs int) hook with RoundFunc. Fast-forwarded rounds
	// emit their (empty) RoundDone events so the stream stays identical
	// across schedulers.
	Observer Observer
	// Checkpoint, if set, snapshots the engine at round barriers and/or
	// resumes from a prior Snapshot (see CheckpointPolicy). The policy is
	// shared across all engine runs of a multi-phase algorithm.
	Checkpoint *CheckpointPolicy
	// Ctx, if set, cancels the run at the next round barrier: Run returns
	// an error wrapping context.Cause, after writing a final snapshot to
	// the checkpoint Sink when one is configured. nil means no
	// cancellation (checked once per round, never mid-step).
	Ctx context.Context
}

func (c Config) withDefaults(n int) Config {
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 22
	}
	if c.MaxWordsPerMessage == 0 {
		c.MaxWordsPerMessage = 8
	}
	if c.Workers == 0 {
		if n < 128 {
			c.Workers = 1
		} else {
			c.Workers = runtime.GOMAXPROCS(0)
		}
	}
	return c
}

// Stats reports the cost of a run in the model's terms.
type Stats struct {
	// Rounds is the index of the last round in which any message was sent:
	// the algorithm's round complexity on this input.
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// MaxWords is the largest payload observed, in words.
	MaxWords int
	// MaxLinkCongestion is the maximum number of messages carried by a
	// single link direction over the whole run (the paper's "congestion").
	MaxLinkCongestion int
	// MaxNodeSends is the largest total number of messages sent by any
	// single node — a load-balance indicator (hotspots show up here, e.g.
	// the roots of broadcast trees).
	MaxNodeSends int
}

// Add accumulates s2 into s for multi-phase algorithms: rounds add
// (phases run sequentially), congestion takes the max.
func (s *Stats) Add(s2 Stats) {
	s.Rounds += s2.Rounds
	s.Messages += s2.Messages
	if s2.MaxWords > s.MaxWords {
		s.MaxWords = s2.MaxWords
	}
	if s2.MaxLinkCongestion > s.MaxLinkCongestion {
		s.MaxLinkCongestion = s2.MaxLinkCongestion
	}
	if s2.MaxNodeSends > s.MaxNodeSends {
		s.MaxNodeSends = s2.MaxNodeSends
	}
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("congest: exceeded MaxRounds without quiescing")

// wakeItem is a pending wake request for a node. The heap is indexed (pos
// tracks each node's entry), so a node has at most one live entry at any
// time: re-arming moves it in place with heap.Fix instead of accumulating
// stale entries, keeping the heap at ≤ n items with no lazy-deletion pops.
type wakeItem struct {
	round, node int
}

type wakeHeap struct {
	items []wakeItem
	pos   []int // node -> index in items; -1 when absent
}

func (h *wakeHeap) Len() int { return len(h.items) }
func (h *wakeHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	return a.round < b.round || (a.round == b.round && a.node < b.node)
}
func (h *wakeHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].node] = i
	h.pos[h.items[j].node] = j
}
func (h *wakeHeap) Push(x interface{}) {
	it := x.(wakeItem)
	h.pos[it.node] = len(h.items)
	h.items = append(h.items, it)
}
func (h *wakeHeap) Pop() interface{} {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	h.pos[it.node] = -1
	return it
}

type engine struct {
	g     *graph.Graph
	cfg   Config
	obs   Observer
	net   Network
	nodes []Node
	ctxs  []*Context

	// netBatch stages the round's validated sends when a Network is
	// installed (the built-in path routes into nextIn instead).
	netBatch []Message

	inbox     [][]Message
	nextIn    [][]Message
	linkLoad  [][]int32 // per (sender, neighbor-index) message counts
	nodeSends []int
	seenStamp []int // per-destination round stamp for duplicate-link checks

	// Quiescence and inflight tracking, maintained incrementally: the
	// per-round termination check is O(1) on both schedulers. quiescent[v]
	// is the cached Quiescent() of v's last step (Quiescent is a pure
	// function of node state, which only changes when the node is stepped);
	// inflight counts undelivered+unconsumed messages, which equals the
	// previous round's send count because every receiver is stepped.
	quiescent []bool
	quiCount  int
	inflight  int

	// Active-set scheduler state.
	wakers     []Waker // nil for non-Waker nodes
	wakeAt     []int   // currently requested wake round per node; 0 = none
	wakes      wakeHeap
	alwaysOn   []bool // non-Waker node is on the every-round list
	alwaysList []int
	recvList   []int // nodes whose inbox is non-empty this round
	recvNext   []int // destinations receiving messages routed this round
	work       []int // the round's active list (sorted ascending)
	mark       []int // epoch stamps deduplicating work-list inserts
	epoch      int
	allNodes   []int // 0..n-1, the dense scheduler's work list

	// Crash isolation: panics inside a node's Round are recovered into
	// CrashErrors (crashMu serializes worker-goroutine reports; the
	// lowest-node crash wins so the outcome is worker-count independent).
	crashMu sync.Mutex
	crash   *CrashError

	stats Stats
}

// phaseName asks the observer for the current algorithm phase, for crash
// attribution; "" when no observer tracks phases.
func (e *engine) phaseName() string {
	if pt, ok := e.obs.(PhaseTracker); ok {
		return pt.CurrentPhase()
	}
	return ""
}

// Run executes the algorithm created by mk (called once per node, in node
// order) until every node is quiescent and no messages are in flight, or
// until cfg.MaxRounds is exceeded.
func Run(g *graph.Graph, mk func(v int) Node, cfg Config) (Stats, error) {
	n := g.N()
	cfg = cfg.withDefaults(n)
	pol := cfg.Checkpoint
	runIdx := 0
	if pol != nil {
		runIdx = pol.beginRun()
	}
	e := &engine{
		g:         g,
		cfg:       cfg,
		obs:       cfg.Observer,
		net:       cfg.Network,
		nodes:     make([]Node, n),
		ctxs:      make([]*Context, n),
		inbox:     make([][]Message, n),
		nextIn:    make([][]Message, n),
		linkLoad:  make([][]int32, n),
		nodeSends: make([]int, n),
		seenStamp: make([]int, n),
		quiescent: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		e.linkLoad[v] = make([]int32, g.Degree(v))
		e.seenStamp[v] = -1
	}
	for v := 0; v < n; v++ {
		e.nodes[v] = mk(v)
		e.ctxs[v] = &Context{id: v, g: g, eng: e}
	}
	if e.net != nil {
		e.net.Reset(n)
	}
	if e.obs != nil {
		e.obs.RunStart(n)
		// RunDone fires on every exit path — normal quiescence, MaxRounds
		// and algorithm failures alike — with the stats accumulated so far.
		defer func() { e.obs.RunDone(e.stats) }()
	}
	for v := 0; v < n; v++ {
		e.nodes[v].Init(e.ctxs[v])
		if err := e.ctxs[v].err; err != nil {
			return e.stats, fmt.Errorf("congest: node %d failed in Init: %w", v, err)
		}
		if len(e.ctxs[v].out) != 0 {
			return e.stats, fmt.Errorf("congest: node %d sent during Init (the model's round 0 has no sends)", v)
		}
	}
	for v := 0; v < n; v++ {
		if e.nodes[v].Quiescent() {
			e.quiescent[v] = true
			e.quiCount++
		}
	}

	dense := cfg.Scheduler == SchedulerDense
	e.allNodes = make([]int, n)
	for v := range e.allNodes {
		e.allNodes[v] = v
	}
	if !dense {
		e.wakers = make([]Waker, n)
		e.wakeAt = make([]int, n)
		e.alwaysOn = make([]bool, n)
		e.mark = make([]int, n)
		e.wakes.pos = make([]int, n)
		for v := range e.wakes.pos {
			e.wakes.pos[v] = -1
		}
		for v := 0; v < n; v++ {
			if w, ok := e.nodes[v].(Waker); ok {
				e.wakers[v] = w
				e.arm(v, 0)
			} else if !e.quiescent[v] {
				e.alwaysOn[v] = true
				e.alwaysList = append(e.alwaysList, v)
			}
		}
	}

	startR := 1
	if pol != nil && pol.Resume != nil && pol.Resume.RunIdx == runIdx {
		if err := e.restore(pol.Resume); err != nil {
			return e.stats, fmt.Errorf("congest: resume: %w", err)
		}
		startR = pol.Resume.Round
	}
	crasher, _ := e.net.(Crasher)

	for r := startR; ; r++ {
		if r > cfg.MaxRounds {
			return e.stats, fmt.Errorf("%w (MaxRounds=%d)", ErrMaxRounds, cfg.MaxRounds)
		}
		if e.quiCount == n && e.inflight == 0 {
			return e.stats, nil
		}
		if cfg.Ctx != nil {
			select {
			case <-cfg.Ctx.Done():
				// A cancellation lands on a clean barrier: write a final
				// snapshot (best effort — the cancellation error wins) so
				// the run is resumable, then abort.
				if pol != nil && pol.Sink != nil {
					if snap, serr := e.snapshot(r, runIdx); serr == nil {
						_ = pol.Sink(snap)
					}
				}
				return e.stats, fmt.Errorf("congest: run canceled at round %d: %w", r, context.Cause(cfg.Ctx))
			default:
			}
		}
		if pol != nil {
			if stop, due := pol.due(runIdx, r); due {
				snap, err := e.snapshot(r, runIdx)
				if err != nil {
					return e.stats, err
				}
				if err := pol.Sink(snap); err != nil {
					return e.stats, fmt.Errorf("congest: checkpoint sink: %w", err)
				}
				if stop {
					return e.stats, ErrCheckpointStop
				}
			}
		}
		if crasher != nil {
			if v, restart, due := crasher.CrashDue(r); due {
				return e.stats, &CrashError{Node: v, Round: r, Phase: e.phaseName(), Restart: restart}
			}
		}
		if e.net != nil {
			// Deliver the traffic the network holds for this round. Every
			// receiver lands on recvList, so the active scheduler steps it
			// exactly as it would a built-in delivery.
			for _, m := range e.net.Collect(r) {
				if !dense && len(e.inbox[m.To]) == 0 {
					e.recvList = append(e.recvList, m.To)
				}
				e.inbox[m.To] = append(e.inbox[m.To], m)
			}
		}
		work := e.allNodes
		if !dense {
			work = e.collectActive(r)
			if len(work) == 0 {
				// Fast-forward: no inbox is pending (every receiver is in the
				// work list), no wake is due, and every stragglers-free round
				// up to the next wake (or the network's next due delivery)
				// would step nothing and send nothing — so no state changes
				// and the termination conditions cannot flip mid-skip. Jump
				// there, emitting the empty RoundDone events the dense
				// engine would have produced.
				target := cfg.MaxRounds + 1
				if next := e.nextWake(); next > 0 && next <= cfg.MaxRounds {
					target = next
				}
				if e.net != nil {
					if due := e.net.NextDue(r + 1); due > 0 && due < target {
						target = due
					}
				}
				// Checkpoints and scripted crashes fire at exact rounds;
				// clamp the skip so neither is jumped over.
				if pol != nil {
					if due := pol.nextDue(r+1, runIdx); due > 0 && due < target {
						target = due
					}
				}
				if crasher != nil {
					if due := crasher.NextCrash(r + 1); due > 0 && due < target {
						target = due
					}
				}
				if e.obs != nil {
					for rr := r; rr < target; rr++ {
						e.obs.RoundDone(RoundEvent{Round: rr})
					}
				}
				r = target - 1
				continue
			}
		}
		var start time.Time
		if e.obs != nil {
			start = time.Now()
		}
		sent, active, err := e.step(r, work, dense)
		if err != nil {
			return e.stats, err
		}
		if sent > 0 {
			e.stats.Rounds = r
		}
		if e.obs != nil {
			e.obs.RoundDone(RoundEvent{Round: r, Sent: sent, Active: active, Elapsed: time.Since(start)})
		}
	}
}

// arm records node v's next self-declared wake round after a step in round
// r (0 for the post-Init arm). Returns ≤ r are clamped to r+1; a previous
// request is updated in place via the heap's node index.
func (e *engine) arm(v, r int) {
	w := e.wakers[v].NextWake()
	if w < 0 {
		// WakeOnReceive: only an incoming message steps v.
		if p := e.wakes.pos[v]; p >= 0 {
			heap.Remove(&e.wakes, p)
		}
		e.wakeAt[v] = 0
		return
	}
	if w <= r {
		w = r + 1
	}
	if e.wakeAt[v] == w {
		return
	}
	e.wakeAt[v] = w
	if p := e.wakes.pos[v]; p >= 0 {
		e.wakes.items[p].round = w
		heap.Fix(&e.wakes, p)
	} else {
		heap.Push(&e.wakes, wakeItem{round: w, node: v})
	}
}

// nextWake returns the smallest pending wake round; 0 when none is pending.
func (e *engine) nextWake() int {
	if len(e.wakes.items) > 0 {
		return e.wakes.items[0].round
	}
	return 0
}

// collectActive assembles round r's active list: every node with a
// non-empty inbox, every non-Waker node that was non-quiescent after its
// last step, and every node whose wake round has arrived. Sorted ascending
// so the routing pass visits senders in node order (the inbox-sorted-by-
// sender delivery contract).
func (e *engine) collectActive(r int) []int {
	e.epoch++
	work := e.work[:0]
	add := func(v int) {
		if e.mark[v] != e.epoch {
			e.mark[v] = e.epoch
			work = append(work, v)
		}
	}
	for _, v := range e.recvList {
		add(v)
	}
	kept := e.alwaysList[:0]
	for _, v := range e.alwaysList {
		if e.alwaysOn[v] {
			kept = append(kept, v)
			add(v)
		}
	}
	e.alwaysList = kept
	for len(e.wakes.items) > 0 && e.wakes.items[0].round <= r {
		it := heap.Pop(&e.wakes).(wakeItem)
		e.wakeAt[it.node] = 0
		add(it.node)
	}
	e.work = work
	if len(work) == len(e.nodes) {
		return e.allNodes // the whole graph is active; already sorted
	}
	sort.Ints(work)
	return work
}

// stepNode runs one node's Round under panic isolation: a panic inside
// protocol code is recovered into a structured CrashError (node, round,
// phase) instead of unwinding the engine; the other nodes of the same
// round finish their steps untouched. When several nodes panic in one
// round the lowest node wins, so the outcome is worker-count independent.
func (e *engine) stepNode(v, r int) {
	defer func() {
		if p := recover(); p != nil {
			e.crashMu.Lock()
			if e.crash == nil || v < e.crash.Node {
				e.crash = &CrashError{Node: v, Round: r, Phase: e.phaseName(), Panic: p}
			}
			e.crashMu.Unlock()
		}
	}()
	e.nodes[v].Round(e.ctxs[v], r, e.inbox[v])
}

// step runs one synchronous round over the given work list (all nodes under
// the dense scheduler, the active set otherwise): each listed node consumes
// its inbox and stages sends; the engine then validates and routes the
// sends into next-round inboxes. Returns the number of messages sent this
// round and the number of nodes that sent.
func (e *engine) step(r int, work []int, dense bool) (int, int, error) {
	workers := e.cfg.Workers
	if workers > len(work) {
		workers = len(work)
	}
	// Shard the work list, not the ID space: active nodes cluster, and a
	// static lo..hi split over 0..n would leave most workers idle. Tiny
	// lists stay serial — the barrier costs more than the work.
	const minChunk = 16
	if workers > 1 {
		if maxW := (len(work) + minChunk - 1) / minChunk; workers > maxW {
			workers = maxW
		}
	}
	if workers <= 1 {
		for _, v := range work {
			e.stepNode(v, r)
		}
	} else {
		var wg sync.WaitGroup
		chunk := (len(work) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(work) {
				hi = len(work)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []int) {
				defer wg.Done()
				for _, v := range part {
					e.stepNode(v, r)
				}
			}(work[lo:hi])
		}
		wg.Wait()
	}
	if e.crash != nil {
		ce := e.crash
		e.crash = nil
		return 0, 0, ce
	}

	// Validate and route. Single-threaded: it touches shared inboxes.
	// Routing visits senders in ascending node order (work is sorted), so
	// each destination's next-round inbox is built already sorted by sender
	// — the delivery order the Node contract promises — without a sort.
	n := len(e.nodes)
	sent, active := 0, 0
	if !dense {
		e.recvNext = e.recvNext[:0]
	}
	for _, v := range work {
		ctx := e.ctxs[v]
		if ctx.err != nil {
			return sent, active, fmt.Errorf("congest: node %d failed in round %d: %w", v, r, ctx.err)
		}
		if len(ctx.out) == 0 {
			continue
		}
		// stamp = v*maxRounds+r would overflow; a (round, sender)-unique
		// stamp suffices since we check one sender's batch at a time.
		stamp := r*n + v
		for _, m := range ctx.out {
			li := e.g.CommIndex(m.From, m.To)
			if li < 0 {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent to %d without a link", r, m.From, m.To)
			}
			if e.seenStamp[m.To] == stamp {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent two messages on link to %d", r, m.From, m.To)
			}
			e.seenStamp[m.To] = stamp
			w := m.Payload.Words()
			if w > e.cfg.MaxWordsPerMessage {
				return sent, active, fmt.Errorf("congest: round %d: node %d sent %d-word message to %d (bound %d)",
					r, m.From, w, m.To, e.cfg.MaxWordsPerMessage)
			}
			if w > e.stats.MaxWords {
				e.stats.MaxWords = w
			}
			e.linkLoad[m.From][li]++
			if int(e.linkLoad[m.From][li]) > e.stats.MaxLinkCongestion {
				e.stats.MaxLinkCongestion = int(e.linkLoad[m.From][li])
				if e.obs != nil {
					e.obs.LinkPeak(r, m.From, m.To, e.stats.MaxLinkCongestion)
				}
			}
			if e.net != nil {
				// Hand the message to the delivery substrate instead of the
				// built-in next-round inbox; the batch stays in canonical
				// order because work is sorted and ctx.out is send-ordered.
				e.netBatch = append(e.netBatch, m)
			} else {
				if !dense && len(e.nextIn[m.To]) == 0 {
					e.recvNext = append(e.recvNext, m.To)
				}
				e.nextIn[m.To] = append(e.nextIn[m.To], m)
			}
			sent++
		}
		active++
		if e.obs != nil {
			e.obs.NodeSends(r, v, len(ctx.out))
		}
		e.nodeSends[v] += len(ctx.out)
		if e.nodeSends[v] > e.stats.MaxNodeSends {
			e.stats.MaxNodeSends = e.nodeSends[v]
		}
		ctx.out = ctx.out[:0]
	}
	e.stats.Messages += int64(sent)
	if e.net != nil && len(e.netBatch) > 0 {
		if err := e.net.Send(r, e.netBatch); err != nil {
			return sent, active, fmt.Errorf("congest: network delivery failed in round %d: %w", r, err)
		}
		e.netBatch = e.netBatch[:0]
	}

	// Refresh the cached quiescence of every stepped node and, for the
	// active scheduler, its next wake (Wakers) or always-on membership
	// (non-Wakers; removal is lazy, see collectActive).
	for _, v := range work {
		q := e.nodes[v].Quiescent()
		if q != e.quiescent[v] {
			e.quiescent[v] = q
			if q {
				e.quiCount++
			} else {
				e.quiCount--
			}
		}
		if dense {
			continue
		}
		if e.wakers[v] != nil {
			// A node with messages already routed to it is stepped next
			// round regardless and re-armed after that step, so asking it
			// for a wake now is pure overhead. Any wake left armed from an
			// earlier step fires as a harmless extra step — the active set
			// may exceed the dense set's busy nodes, never undershoot it.
			if len(e.nextIn[v]) == 0 {
				e.arm(v, r)
			}
		} else if q == e.alwaysOn[v] {
			if q {
				e.alwaysOn[v] = false
			} else {
				e.alwaysOn[v] = true
				e.alwaysList = append(e.alwaysList, v)
			}
		}
	}

	// Deliver: every stepped inbox was consumed; swap in the next-round
	// inboxes (already sorted by sender). Every message routed above is in
	// some nextIn, and every destination will be stepped next round, so the
	// inflight count is exactly this round's send count.
	if dense {
		for v := 0; v < n; v++ {
			e.inbox[v] = e.inbox[v][:0]
			e.inbox[v], e.nextIn[v] = e.nextIn[v], e.inbox[v]
		}
	} else {
		for _, v := range work {
			e.inbox[v] = e.inbox[v][:0]
		}
		for _, to := range e.recvNext {
			e.inbox[to], e.nextIn[to] = e.nextIn[to], e.inbox[to]
		}
		e.recvList, e.recvNext = e.recvNext, e.recvList
	}
	// With a Network installed, in-flight traffic is whatever it has
	// accepted but not yet delivered: drops shrink it, delayed and
	// duplicated deliveries extend it beyond the next round.
	if e.net != nil {
		e.inflight = e.net.Pending()
	} else {
		e.inflight = sent
	}
	return sent, active, nil
}
