package congest

import "time"

// RoundEvent describes one executed engine round, including trailing
// quiescing rounds in which nothing was sent (Stats.Rounds, by contrast,
// only counts up to the last round with traffic).
type RoundEvent struct {
	// Round is the 1-based round index within this engine run.
	Round int
	// Sent is the number of messages sent this round.
	Sent int
	// Active is the number of nodes that sent at least one message.
	Active int
	// Elapsed is the wall-clock time the round took (node stepping plus
	// validation and routing).
	Elapsed time.Duration
}

// Observer receives engine events. The engine invokes every method
// synchronously on the routing goroutine, so implementations need no
// locking against the engine itself (but must lock if they are shared
// across concurrent engine runs). A nil Observer in Config costs nothing;
// see BenchmarkEngineWorkers*.
//
// internal/obs provides the standard implementation: a phase-attributing
// Recorder with JSONL trace, Chrome trace_event and Prometheus text sinks.
type Observer interface {
	// RunStart fires once per engine run, before round 1, with the number
	// of nodes.
	RunStart(n int)
	// RoundDone fires after every executed round — including the final
	// quiescing round(s) in which no message was sent.
	RoundDone(e RoundEvent)
	// NodeSends fires once per round for each node that sent at least one
	// message, in ascending node order, before that round's RoundDone.
	NodeSends(round, node, msgs int)
	// LinkPeak fires when a link direction's cumulative message count sets
	// a new run maximum (the paper's "congestion"): a sample stream of
	// where congestion concentrates.
	LinkPeak(round, from, to, load int)
	// RunDone fires once when the run ends (normally or with an error),
	// with the final Stats.
	RunDone(s Stats)
}

// Phaser is optionally implemented by Observers that attribute costs to
// named algorithm phases (obs.Recorder does). Multi-phase algorithms call
// SetPhase at phase boundaries; the engine itself never does.
type Phaser interface {
	Phase(name string)
}

// SetPhase switches o's current phase if o supports phase attribution;
// otherwise (including o == nil) it is a no-op.
func SetPhase(o Observer, name string) {
	if p, ok := o.(Phaser); ok {
		p.Phase(name)
	}
}

// NopObserver is an Observer that ignores every event. Embed it to
// implement only the methods you care about.
type NopObserver struct{}

func (NopObserver) RunStart(int)                {}
func (NopObserver) RoundDone(RoundEvent)        {}
func (NopObserver) NodeSends(int, int, int)     {}
func (NopObserver) LinkPeak(int, int, int, int) {}
func (NopObserver) RunDone(Stats)               {}

// RoundFunc adapts a func(round, msgs int) — the signature of the former
// Config.OnRound hook and of Timeline.Observe — to an Observer.
type RoundFunc func(round, msgs int)

func (f RoundFunc) RunStart(int)                {}
func (f RoundFunc) RoundDone(e RoundEvent)      { f(e.Round, e.Sent) }
func (f RoundFunc) NodeSends(int, int, int)     {}
func (f RoundFunc) LinkPeak(int, int, int, int) {}
func (f RoundFunc) RunDone(Stats)               {}

// Tee fans events out to several observers in order. Nil entries are
// dropped; Tee returns nil for an empty (or all-nil) list and the observer
// itself for a single entry, so callers can pass the result straight to
// Config.Observer without losing the nil fast path.
func Tee(os ...Observer) Observer {
	kept := make(tee, 0, len(os))
	for _, o := range os {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

type tee []Observer

func (t tee) RunStart(n int) {
	for _, o := range t {
		o.RunStart(n)
	}
}

func (t tee) RoundDone(e RoundEvent) {
	for _, o := range t {
		o.RoundDone(e)
	}
}

func (t tee) NodeSends(round, node, msgs int) {
	for _, o := range t {
		o.NodeSends(round, node, msgs)
	}
}

func (t tee) LinkPeak(round, from, to, load int) {
	for _, o := range t {
		o.LinkPeak(round, from, to, load)
	}
}

func (t tee) RunDone(s Stats) {
	for _, o := range t {
		o.RunDone(s)
	}
}

// Phase forwards the phase switch to every observer that supports it, so a
// Tee of a Recorder and a plain timeline keeps phase attribution working.
func (t tee) Phase(name string) {
	for _, o := range t {
		SetPhase(o, name)
	}
}

// CurrentPhase reports the first phase-tracking member's phase, so crash
// attribution works through a Tee.
func (t tee) CurrentPhase() string {
	for _, o := range t {
		if pt, ok := o.(PhaseTracker); ok {
			return pt.CurrentPhase()
		}
	}
	return ""
}
