// Sender-owned payload recycling: the allocation-free half of the flat
// message plane (DESIGN.md, "The message plane").
//
// The engine's buffers are arenas reused across rounds, but the payloads
// riding in them are protocol-owned heap objects: a protocol that
// allocates a payload per send still allocates every round. A Pool lets
// the SENDER recycle them, which is the only side that safely can —
// Broadcast stages one shared payload value on every outgoing link, so
// receiver-side recycling would free the same object once per neighbor.
//
// The safety argument is the engine's round barrier. A payload handed out
// in round s is staged in s, delivered at the start of round s+1, and the
// Node contract forbids receivers from retaining it past their round-(s+1)
// step — which has fully completed (worker barrier included) by the time
// the sender is stepped in any round r ≥ s+2. Pool therefore recycles a
// payload exactly when its stamp is ≤ r−2 and allocates otherwise, so a
// steady-state protocol cycles between two generations of payloads and
// allocates none.
package congest

// Pool recycles payload objects of one concrete type for one sending
// node. It is not safe for concurrent use — which matches the engine:
// each node is stepped by exactly one goroutine per round, and a pool
// must be owned by a single node (embed one in the node's state).
//
// Get returns a payload usable for a send in round r: recycled when an
// object from round ≤ r−2 is available and reuse is safe in this run
// (see Context.PayloadReuse — under a Network substrate, retransmit
// queues may hold payloads arbitrarily long, so the pool falls back to
// plain allocation and stays correct, just not allocation-free).
type Pool[T any] struct {
	last int  // round of the most recent Get
	free []*T // stamped ≤ last−2: consumed, safe to hand out
	prev []*T // stamped last−1: delivered this round, possibly being read
	cur  []*T // stamped last: staged, not yet delivered
}

// Get returns a payload for a send in round r, recycled when safe.
// Callers must overwrite every field before staging it.
func (p *Pool[T]) Get(ctx *Context, r int) *T {
	if !ctx.PayloadReuse() {
		return new(T)
	}
	if r != p.last {
		p.advance(r)
	}
	var v *T
	if n := len(p.free); n > 0 {
		v = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	} else {
		v = new(T)
	}
	p.cur = append(p.cur, v)
	return v
}

// advance retires generations older than r−1. Rounds only move forward,
// so on a +1 advance the prev generation (now two barriers old) is freed
// and cur becomes prev; on a larger jump (fast-forwarded idle rounds)
// both generations are two or more barriers old and everything is freed.
func (p *Pool[T]) advance(r int) {
	p.free = append(p.free, p.prev...)
	if r == p.last+1 {
		clearPtrs(p.prev)
		p.prev, p.cur = p.cur, p.prev[:0]
	} else {
		p.free = append(p.free, p.cur...)
		clearPtrs(p.prev)
		clearPtrs(p.cur)
		p.prev = p.prev[:0]
		p.cur = p.cur[:0]
	}
	p.last = r
}

// Prewarm stocks the free generation with n fresh objects and reserves
// matching slice capacity, so a node's first sends recycle instead of
// allocating. Call from Node.Init (typically gated on Context.PayloadReuse,
// since a pool under a Network substrate never recycles). A steady sender
// needs 3 objects in flight across the two-round barrier; n=4 covers that
// with slack.
func (p *Pool[T]) Prewarm(n int) {
	block := make([]T, n)
	p.free = make([]*T, n, 2*n)
	for i := range block {
		p.free[i] = &block[i]
	}
	p.prev = make([]*T, 0, n)
	p.cur = make([]*T, 0, n)
}

func clearPtrs[T any](s []*T) {
	for i := range s {
		s[i] = nil
	}
}
