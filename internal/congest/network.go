package congest

// Network replaces the engine's built-in perfect delivery with a pluggable
// delivery substrate. The built-in path (Config.Network == nil) delivers
// every message sent in round r into its destination's round-r+1 inbox,
// exactly once, in canonical order; a Network may instead simulate an
// imperfect physical network underneath the round abstraction —
// internal/faults implements a seeded adversarial one (bounded delay,
// drops, duplication, reordering) together with the reliability shim
// (per-link sequence numbers, ACK + retransmit, round barrier) that
// restores exact synchronous semantics over it.
//
// # The delivery-order invariant
//
// The engine's Node contract promises inboxes sorted by sender. With the
// built-in path that falls out of routing order, which silently equates
// delivery order with send order — an assumption no real network honors.
// A Network makes the invariant explicit: the order of Collect's batch
// must be reconstructed from per-link sequence numbers ((To, From)
// ascending, each link's messages in send order), never from physical
// arrival order. internal/faults' test-only ArrivalOrder knob restores the
// old implicit behavior precisely so tests can demonstrate it is wrong.
//
// A Network is driven by one engine run at a time; like an Observer, it
// must not be shared by concurrent runs.
type Network interface {
	// Reset is called once at the start of each engine run with the node
	// count. Implementations discard per-run delivery state (sequence
	// numbers, undelivered traffic) but may retain cumulative physical
	// statistics across the runs of a multi-phase algorithm.
	Reset(n int)
	// Send hands over round r's validated outgoing batch in canonical
	// order (ascending sender; in CONGEST each link direction carries at
	// most one message per round). The slice is reused by the engine;
	// implementations must copy what they keep. A returned error aborts
	// the run (e.g. a reliability barrier that cannot complete).
	Send(r int, batch []Message) error
	// Collect returns the messages to deliver into round-r inboxes,
	// sorted by (To, From) with each link's messages in send order — the
	// delivery-order invariant above. The engine calls it once per
	// executed round in increasing round order; rounds skipped by the
	// active scheduler's fast-forward are guaranteed (via NextDue) to
	// have no deliveries due.
	Collect(r int) []Message
	// NextDue returns the smallest round ≥ after with deliveries pending,
	// or 0 when none is: the active scheduler's fast-forward bound.
	NextDue(after int) int
	// Pending counts accepted-but-undelivered messages. The engine
	// terminates only when every node is quiescent and Pending is 0.
	Pending() int
}
