// Steady-state allocation guards for the flat message plane: once the
// engine's arenas and the protocols' pools have warmed up, executing a
// round must allocate NOTHING — not in the engine (flat send/receive
// planes, concrete-typed heaps, cached neighbor views) and not in the
// guarded protocol families (pooled payloads, entry freelists, reused
// scratch). These tests are the enforcement behind the ≥2× throughput
// claim in DESIGN.md: an accidental per-message or per-round allocation
// shows up here as a hard failure, not as a slow drift in benchmarks.
//
// The guards run the serial step path (Workers: 1): the parallel path
// allocates its fork/join goroutines by design, which is why the engine
// only forks when a round's active set is large enough to pay for it.
package congest_test

import (
	"testing"

	"repro/internal/bellman"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
)

// measureSteadyState warms the engine up for warm rounds, then asserts
// that the next measured rounds allocate zero bytes each and that real
// traffic flowed while measuring (a guard that quiesced early would
// vacuously pass).
func measureSteadyState(t *testing.T, st *congest.Stepper, warm, measured int) {
	t.Helper()
	for i := 0; i < warm; i++ {
		if _, err := st.StepRound(); err != nil {
			t.Fatalf("warmup round %d: %v", st.Round(), err)
		}
		if st.Done() {
			t.Fatalf("engine quiesced during warmup (round %d): workload too small for a steady-state guard", st.Round())
		}
	}
	sent := 0
	var stepErr error
	avg := testing.AllocsPerRun(measured, func() {
		if stepErr != nil {
			return
		}
		n, err := st.StepRound()
		sent += n
		stepErr = err
	})
	if stepErr != nil {
		t.Fatalf("measured round %d: %v", st.Round(), stepErr)
	}
	if sent == 0 {
		t.Fatalf("no messages sent during the measured window ending at round %d: not a steady-state measurement", st.Round())
	}
	if avg != 0 {
		t.Fatalf("%.2f allocations per steady-state round, want 0 (%d messages over the window)", avg, sent)
	}
}

func schedulers() []struct {
	name  string
	sched congest.Scheduler
} {
	return []struct {
		name  string
		sched congest.Scheduler
	}{
		{"dense", congest.SchedulerDense},
		{"active", congest.SchedulerActive},
	}
}

// TestAllocFreeRoundsBellman guards the Bellman–Ford family. The ring
// keeps the run busy for a long time — each source's relaxation wave
// advances one hop per block, so nodes keep improving and re-broadcasting
// for ~n blocks — and with the pooled *estimate payload every round must
// be allocation-free on both schedulers.
func TestAllocFreeRoundsBellman(t *testing.T) {
	g := graph.Ring(128, graph.GenOpts{Seed: 11, MaxW: 64, MinW: 1})
	for _, sc := range schedulers() {
		t.Run(sc.name, func(t *testing.T) {
			sources := []int{0, 31, 67, 101}
			opts := bellman.Opts{Sources: sources, H: 127}
			st, err := congest.NewStepper(g, bellman.NewNode(&opts), congest.Config{Workers: 1, Scheduler: sc.sched})
			if err != nil {
				t.Fatal(err)
			}
			measureSteadyState(t, st, 40, 60)
		})
	}
}

// TestAllocFreeRoundsPipelined guards the paper's pipelined (h,k)-SSP
// family: pooled *wire payloads, the Prealloc'd entry freelist, reused
// scratch slices and the concrete-typed send heap together make the
// receive→insert→send cycle allocation-free — with Prealloc covering the
// run's peak entry demand, from the very first round, not just after a
// warmup plateau.
func TestAllocFreeRoundsPipelined(t *testing.T) {
	g := graph.Random(64, 384, graph.GenOpts{Seed: 7, MaxW: 512, MinW: 1, Directed: true})
	delta := graph.Delta(g)
	for _, sc := range schedulers() {
		t.Run(sc.name, func(t *testing.T) {
			opts := core.Opts{Sources: []int{0, 16, 32, 48}, H: 63, Delta: delta, Prealloc: 512}
			st, err := congest.NewStepper(g, core.NewNode(&opts), congest.Config{Workers: 1, Scheduler: sc.sched})
			if err != nil {
				t.Fatal(err)
			}
			measureSteadyState(t, st, 60, 80)
		})
	}
}
