// Checkpoint/restore support: a versioned, deterministic snapshot of a
// running engine taken at a round barrier, sufficient for bit-exact resume.
//
// The engine state that matters at a barrier is small and explicit: the
// per-node protocol state (encoded by the nodes themselves via Stateful),
// the inboxes staged for the next round, the logical Stats and congestion
// counters, the active-set scheduler's wake requests, and — when a
// delivery substrate or a phase-attributing observer is installed — their
// opaque state via Snapshotter. Everything is written through the
// deterministic StateEncoder byte stream, so two snapshots of identical
// logical states are byte-identical, and a snapshot round-trips through
// MarshalBinary across processes.
//
// Multi-phase algorithms run many engines in sequence. A CheckpointPolicy
// threads through all of them (via Config.Checkpoint) and counts engine
// runs; a Snapshot records which run it was taken in (RunIdx) and resuming
// re-executes the earlier runs deterministically — they are pure functions
// of the input — before restoring into the matching run and continuing
// from the recorded round.
package congest

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
)

// SnapshotVersion is the current snapshot format version. Snapshots are
// rejected on version mismatch — the format follows the engine's internal
// state, so cross-version restore is out of scope by policy (see
// DESIGN.md, "Crash faults & checkpointing").
const SnapshotVersion = 1

// StateEncoder writes the deterministic byte stream snapshots are made of:
// zigzag varints for integers, length-prefixed strings, one byte per bool.
// The zero value is ready to use.
type StateEncoder struct {
	buf []byte
}

// Bytes returns the encoded stream.
func (e *StateEncoder) Bytes() []byte { return e.buf }

// Uint64 appends an unsigned varint.
func (e *StateEncoder) Uint64(x uint64) {
	for x >= 0x80 {
		e.buf = append(e.buf, byte(x)|0x80)
		x >>= 7
	}
	e.buf = append(e.buf, byte(x))
}

// Int64 appends a signed (zigzag) varint.
func (e *StateEncoder) Int64(x int64) {
	e.Uint64(uint64(x)<<1 ^ uint64(x>>63))
}

// Int appends a signed varint.
func (e *StateEncoder) Int(x int) { e.Int64(int64(x)) }

// Bool appends one byte.
func (e *StateEncoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends the IEEE-754 bits of x as a fixed-width little-endian
// word (varints would not round-trip NaN payloads deterministically).
func (e *StateEncoder) Float64(x float64) {
	bits := math.Float64bits(x)
	for i := 0; i < 8; i++ {
		e.buf = append(e.buf, byte(bits>>(8*i)))
	}
}

// String appends a length-prefixed string.
func (e *StateEncoder) String(s string) {
	e.Uint64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *StateEncoder) Blob(b []byte) {
	e.Uint64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Ints appends a length-prefixed []int.
func (e *StateEncoder) Ints(xs []int) {
	e.Uint64(uint64(len(xs)))
	for _, x := range xs {
		e.Int(x)
	}
}

// Int64s appends a length-prefixed []int64.
func (e *StateEncoder) Int64s(xs []int64) {
	e.Uint64(uint64(len(xs)))
	for _, x := range xs {
		e.Int64(x)
	}
}

// Bools appends a length-prefixed []bool.
func (e *StateEncoder) Bools(xs []bool) {
	e.Uint64(uint64(len(xs)))
	for _, x := range xs {
		e.Bool(x)
	}
}

// StateDecoder reads a StateEncoder stream. Errors latch: after the first
// malformed read every subsequent read returns a zero value, and Err
// reports the failure — callers check once at the end. Every
// length-prefixed read validates the announced length against the bytes
// remaining, so a corrupted (or fuzzed) stream cannot force a huge
// allocation.
type StateDecoder struct {
	buf []byte
	off int
	err error
}

// NewStateDecoder returns a decoder over data.
func NewStateDecoder(data []byte) *StateDecoder {
	return &StateDecoder{buf: data}
}

// Err reports the first decoding failure, or nil.
func (d *StateDecoder) Err() error { return d.err }

// Len reports the number of unread bytes.
func (d *StateDecoder) Len() int { return len(d.buf) - d.off }

func (d *StateDecoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf("congest: decode: "+format, args...)
	}
}

// Uint64 reads an unsigned varint.
func (d *StateDecoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	var x uint64
	var shift uint
	for {
		if d.off >= len(d.buf) {
			d.fail("truncated varint at offset %d", d.off)
			return 0
		}
		b := d.buf[d.off]
		d.off++
		if shift == 63 && b > 1 {
			d.fail("varint overflow at offset %d", d.off)
			return 0
		}
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x
		}
		shift += 7
		if shift > 63 {
			d.fail("varint too long at offset %d", d.off)
			return 0
		}
	}
}

// Int64 reads a signed (zigzag) varint.
func (d *StateDecoder) Int64() int64 {
	u := d.Uint64()
	return int64(u>>1) ^ -int64(u&1)
}

// Int reads a signed varint and checks it fits an int.
func (d *StateDecoder) Int() int {
	x := d.Int64()
	if int64(int(x)) != x {
		d.fail("value %d overflows int", x)
		return 0
	}
	return int(x)
}

// Bool reads one byte.
func (d *StateDecoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("bad bool byte %d at offset %d", b, d.off-1)
		return false
	}
	return b == 1
}

// Float64 reads the fixed-width IEEE-754 word Float64 wrote.
func (d *StateDecoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Len() < 8 {
		d.fail("truncated float64 at offset %d", d.off)
		return 0
	}
	var bits uint64
	for i := 0; i < 8; i++ {
		bits |= uint64(d.buf[d.off+i]) << (8 * i)
	}
	d.off += 8
	return math.Float64frombits(bits)
}

// count reads a length prefix and validates it against the remaining bytes
// assuming each element costs at least minBytes.
func (d *StateDecoder) count(minBytes int) int {
	n := d.Uint64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Len())/uint64(minBytes) {
		d.fail("length %d exceeds %d remaining bytes", n, d.Len())
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (d *StateDecoder) String() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	if d.Len() < n {
		d.fail("truncated string of length %d at offset %d", n, d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Blob reads a length-prefixed byte slice (copied out of the stream).
func (d *StateDecoder) Blob() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	if d.Len() < n {
		d.fail("truncated blob of length %d at offset %d", n, d.off)
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+n]...)
	d.off += n
	return b
}

// Ints reads a length-prefixed []int (nil when empty).
func (d *StateDecoder) Ints() []int {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = d.Int()
	}
	return xs
}

// Int64s reads a length-prefixed []int64 (nil when empty).
func (d *StateDecoder) Int64s() []int64 {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = d.Int64()
	}
	return xs
}

// Bools reads a length-prefixed []bool (nil when empty).
func (d *StateDecoder) Bools() []bool {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	xs := make([]bool, n)
	for i := range xs {
		xs[i] = d.Bool()
	}
	return xs
}

// Stateful is implemented by protocol nodes that support checkpointing.
// EncodeState writes the node's dynamic state; DecodeState restores it
// into a node freshly built by the protocol's mk function (so structural,
// input-derived state — the graph view, source index maps, schedule
// parameters — is already in place and only round-evolving state is
// serialized). Encode and Decode must be exact inverses: the conformance
// gate asserts bit-exact equality of a resumed run against an
// uninterrupted one.
type Stateful interface {
	EncodeState(*StateEncoder)
	DecodeState(*StateDecoder) error
}

// Snapshotter is implemented by Networks and Observers whose state must
// survive a checkpoint (internal/faults.Network: per-link seq/ACK state,
// queued deliveries, the PRF cursor; internal/obs.Recorder: per-phase
// counters). Implementations that do not offer it are skipped: a snapshot
// then captures no state for them, and restore leaves them untouched.
type Snapshotter interface {
	SnapshotState(*StateEncoder) error
	RestoreState(*StateDecoder) error
}

// Crasher is implemented by Networks that script crash-stop node faults
// (internal/faults with CrashEvent entries). CrashDue reports a crash
// scheduled for round r — the engine converts it into a CrashError before
// stepping anyone — and disarms it (a fired crash never re-fires, even
// after Reset or restore: crash-stop is an event, not a state). NextCrash
// reports the earliest crash round ≥ after still armed (0 = none), so the
// active scheduler's fast-forward cannot jump over one.
type Crasher interface {
	CrashDue(r int) (node, restart int, ok bool)
	NextCrash(after int) int
}

// PhaseTracker is implemented by Observers that know the current algorithm
// phase (internal/obs.Recorder); the engine uses it to attribute
// CrashErrors to a phase.
type PhaseTracker interface {
	CurrentPhase() string
}

// CrashError reports a crash-stop node fault: a scripted crash event or a
// recovered panic inside a node's Round. The engine aborts the run at a
// clean barrier and returns it; other nodes' state is intact.
type CrashError struct {
	// Node is the crashed processor; Round the round it crashed in.
	Node, Round int
	// Phase is the algorithm phase at crash time (when the observer tracks
	// phases; "" otherwise).
	Phase string
	// Restart, when positive, is the round at which the fault plan allows
	// the node back; a supervisor (internal/checkpoint.Supervise) treats
	// the crash as recoverable and restores the latest checkpoint. 0 means
	// crash-stop for good.
	Restart int
	// Panic is the recovered panic value for panic-induced crashes; nil
	// for scripted ones.
	Panic interface{}
}

func (e *CrashError) Error() string {
	s := fmt.Sprintf("congest: node %d crashed in round %d", e.Node, e.Round)
	if e.Phase != "" {
		s += fmt.Sprintf(" (phase %q)", e.Phase)
	}
	if e.Panic != nil {
		s += fmt.Sprintf(": panic: %v", e.Panic)
	}
	return s
}

// ErrCheckpointStop is returned by Run when a CheckpointPolicy with Stop
// set fired: the snapshot was taken and delivered to the Sink, and the
// run was deliberately killed at the barrier (the testable stand-in for a
// process kill).
var ErrCheckpointStop = errors.New("congest: run stopped at checkpoint")

// CheckpointPolicy tells the engine when to snapshot and what to resume
// from. One policy value is shared by every engine run of a multi-phase
// algorithm (thread it via Config.Checkpoint / the protocols' Opts): it
// counts runs, so Snapshot.RunIdx identifies the phase and resume
// re-executes earlier phases deterministically before restoring.
type CheckpointPolicy struct {
	// Every, when positive, snapshots at every round divisible by it (in
	// every engine run).
	Every int
	// AtRound, when positive, snapshots at exactly that round of engine
	// run Run (0-based across the policy's lifetime).
	AtRound int
	Run     int
	// Stop kills the run (ErrCheckpointStop) right after the AtRound
	// snapshot is delivered.
	Stop bool
	// Sink receives every snapshot. A nil Sink disables checkpointing.
	Sink func(*Snapshot) error
	// Resume, when set, restores this snapshot: engine runs before
	// Resume.RunIdx execute normally (deterministic re-execution), the
	// matching run restores at the barrier and continues from
	// Resume.Round. Snapshot triggers at or before the resume point are
	// suppressed so a resumed run does not immediately re-fire the stop
	// that killed its predecessor.
	Resume *Snapshot

	runs int
}

// Rearm resets the policy's run counter and installs s as the resume
// point (nil restarts from scratch): a supervisor restarting a crashed
// computation re-executes every engine run from the beginning, so the
// run indices must be handed out afresh.
func (p *CheckpointPolicy) Rearm(s *Snapshot) {
	p.runs = 0
	p.Resume = s
}

// beginRun hands out this engine run's index.
func (p *CheckpointPolicy) beginRun() int {
	i := p.runs
	p.runs++
	return i
}

// resuming reports whether (runIdx, r) is at or before the resume point.
func (p *CheckpointPolicy) resuming(runIdx, r int) bool {
	return p.Resume != nil &&
		(runIdx < p.Resume.RunIdx || (runIdx == p.Resume.RunIdx && r <= p.Resume.Round))
}

// due reports whether a snapshot fires at round r of run runIdx, and
// whether the run stops after it.
func (p *CheckpointPolicy) due(runIdx, r int) (stop, due bool) {
	if p.Sink == nil || p.resuming(runIdx, r) {
		return false, false
	}
	if p.AtRound == r && p.Run == runIdx {
		return p.Stop, true
	}
	if p.Every > 0 && r%p.Every == 0 {
		return false, true
	}
	return false, false
}

// nextDue returns the earliest round ≥ after at which a snapshot may fire
// in run runIdx (0 = none): the fast-forward clamp.
func (p *CheckpointPolicy) nextDue(after, runIdx int) int {
	if p.Sink == nil {
		return 0
	}
	best := 0
	if p.Run == runIdx && p.AtRound >= after {
		best = p.AtRound
	}
	if p.Every > 0 {
		next := after + (p.Every-after%p.Every)%p.Every
		if best == 0 || next < best {
			best = next
		}
	}
	return best
}

// Snapshot is one engine checkpoint, taken at the top of round Round
// before that round's deliveries: everything a fresh engine over the same
// (graph, protocol, config) needs to continue bit-exactly.
type Snapshot struct {
	// Version guards the format (SnapshotVersion).
	Version int
	// Sched is the scheduler the snapshot was taken under; restore
	// requires the same one (the wake heap exists only under the
	// active-set scheduler).
	Sched Scheduler
	// N is the network size; RunIdx the engine-run index under the
	// policy; Round the next round to execute.
	N, RunIdx, Round int
	// Stats is the logical cost accumulated so far.
	Stats Stats
	// NodeSends, LinkLoad, Quiescent and Inflight are the engine's
	// congestion and termination counters.
	NodeSends []int
	LinkLoad  [][]int32
	Quiescent []bool
	Inflight  int
	// Nodes holds each node's Stateful encoding; Inbox each node's staged
	// round-Round messages (nil = empty; always nil under a Network,
	// whose queued traffic lives in Net instead).
	Nodes [][]byte
	Inbox [][]byte
	// WakeAt is the active-set scheduler's pending wake round per node
	// (0 = none); nil under the dense scheduler.
	WakeAt []int
	// Net and Obs are the opaque Snapshotter states of the delivery
	// substrate and the observer (nil when absent or not snapshotting).
	Net []byte
	Obs []byte
}

// MarshalBinary encodes the snapshot as one deterministic byte stream.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	enc := &StateEncoder{}
	enc.Int(s.Version)
	enc.Int(int(s.Sched))
	enc.Int(s.N)
	enc.Int(s.RunIdx)
	enc.Int(s.Round)
	enc.Int(s.Stats.Rounds)
	enc.Int64(s.Stats.Messages)
	enc.Int(s.Stats.MaxWords)
	enc.Int(s.Stats.MaxLinkCongestion)
	enc.Int(s.Stats.MaxNodeSends)
	enc.Ints(s.NodeSends)
	enc.Uint64(uint64(len(s.LinkLoad)))
	for _, row := range s.LinkLoad {
		enc.Uint64(uint64(len(row)))
		for _, x := range row {
			enc.Int64(int64(x))
		}
	}
	enc.Bools(s.Quiescent)
	enc.Int(s.Inflight)
	blobs := func(bs [][]byte) {
		enc.Uint64(uint64(len(bs)))
		for _, b := range bs {
			enc.Blob(b)
		}
	}
	blobs(s.Nodes)
	blobs(s.Inbox)
	enc.Bool(s.WakeAt != nil)
	enc.Ints(s.WakeAt)
	enc.Blob(s.Net)
	enc.Blob(s.Obs)
	return enc.Bytes(), nil
}

// UnmarshalBinary decodes a MarshalBinary stream.
func (s *Snapshot) UnmarshalBinary(data []byte) error {
	dec := NewStateDecoder(data)
	s.Version = dec.Int()
	if dec.Err() == nil && s.Version != SnapshotVersion {
		return fmt.Errorf("congest: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	s.Sched = Scheduler(dec.Int())
	s.N = dec.Int()
	s.RunIdx = dec.Int()
	s.Round = dec.Int()
	s.Stats.Rounds = dec.Int()
	s.Stats.Messages = dec.Int64()
	s.Stats.MaxWords = dec.Int()
	s.Stats.MaxLinkCongestion = dec.Int()
	s.Stats.MaxNodeSends = dec.Int()
	s.NodeSends = dec.Ints()
	nl := dec.count(1)
	s.LinkLoad = nil
	for i := 0; i < nl && dec.Err() == nil; i++ {
		nr := dec.count(1)
		row := make([]int32, nr)
		for j := range row {
			row[j] = int32(dec.Int64())
		}
		s.LinkLoad = append(s.LinkLoad, row)
	}
	s.Quiescent = dec.Bools()
	s.Inflight = dec.Int()
	blobs := func() [][]byte {
		n := dec.count(1)
		if dec.Err() != nil || n == 0 {
			return nil
		}
		bs := make([][]byte, n)
		for i := range bs {
			b := dec.Blob()
			if len(b) > 0 {
				bs[i] = b
			}
		}
		return bs
	}
	s.Nodes = blobs()
	s.Inbox = blobs()
	hasWake := dec.Bool()
	s.WakeAt = dec.Ints()
	if hasWake && s.WakeAt == nil && dec.Err() == nil {
		s.WakeAt = []int{}
	}
	if !hasWake {
		s.WakeAt = nil
	}
	s.Net = dec.Blob()
	if len(s.Net) == 0 {
		s.Net = nil
	}
	s.Obs = dec.Blob()
	if len(s.Obs) == 0 {
		s.Obs = nil
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if dec.Len() != 0 {
		return fmt.Errorf("congest: snapshot has %d trailing bytes", dec.Len())
	}
	return nil
}

// Payload codec registry. Protocol packages register a codec per payload
// type in an init function; the engine uses them to serialize in-flight
// messages (inboxes, the fault network's queues) by name, so a snapshot
// taken in one process restores in another.
type payloadCodec struct {
	name string
	enc  func(*StateEncoder, Payload)
	dec  func(*StateDecoder) (Payload, error)
}

var payloadCodecs = struct {
	sync.RWMutex
	byName map[string]*payloadCodec
	byType map[reflect.Type]*payloadCodec
}{
	byName: make(map[string]*payloadCodec),
	byType: make(map[reflect.Type]*payloadCodec),
}

// RegisterPayloadCodec registers a payload codec under a unique name.
// prototype fixes the concrete payload type the codec handles (payloads of
// that exact dynamic type are encoded with enc). Registration typically
// happens in the protocol package's init; duplicate names or types panic.
func RegisterPayloadCodec(name string, prototype Payload, enc func(*StateEncoder, Payload), dec func(*StateDecoder) (Payload, error)) {
	payloadCodecs.Lock()
	defer payloadCodecs.Unlock()
	t := reflect.TypeOf(prototype)
	if _, dup := payloadCodecs.byName[name]; dup {
		panic(fmt.Sprintf("congest: payload codec %q registered twice", name))
	}
	if _, dup := payloadCodecs.byType[t]; dup {
		panic(fmt.Sprintf("congest: payload type %v registered twice", t))
	}
	c := &payloadCodec{name: name, enc: enc, dec: dec}
	payloadCodecs.byName[name] = c
	payloadCodecs.byType[t] = c
}

// EncodeMessage serializes one in-flight message using the registered
// codec for its payload type.
func EncodeMessage(enc *StateEncoder, m Message) error {
	payloadCodecs.RLock()
	c := payloadCodecs.byType[reflect.TypeOf(m.Payload)]
	payloadCodecs.RUnlock()
	if c == nil {
		return fmt.Errorf("congest: no payload codec registered for %T", m.Payload)
	}
	enc.Int(m.From)
	enc.Int(m.To)
	enc.String(c.name)
	c.enc(enc, m.Payload)
	return nil
}

// DecodeMessage is the inverse of EncodeMessage.
func DecodeMessage(dec *StateDecoder) (Message, error) {
	var m Message
	m.From = dec.Int()
	m.To = dec.Int()
	name := dec.String()
	if err := dec.Err(); err != nil {
		return Message{}, err
	}
	payloadCodecs.RLock()
	c := payloadCodecs.byName[name]
	payloadCodecs.RUnlock()
	if c == nil {
		return Message{}, fmt.Errorf("congest: no payload codec registered under %q", name)
	}
	p, err := c.dec(dec)
	if err != nil {
		return Message{}, err
	}
	if err := dec.Err(); err != nil {
		return Message{}, err
	}
	m.Payload = p
	return m, nil
}

// snapshot captures the engine at the top of round r (before round-r
// deliveries) — see Snapshot for the field-by-field contract.
func (e *engine) snapshot(r, runIdx int) (*Snapshot, error) {
	n := len(e.nodes)
	s := &Snapshot{
		Version:   SnapshotVersion,
		Sched:     e.cfg.Scheduler,
		N:         n,
		RunIdx:    runIdx,
		Round:     r,
		Stats:     e.stats,
		NodeSends: append([]int(nil), e.nodeSends...),
		Quiescent: append([]bool(nil), e.quiescent...),
		Inflight:  e.inflight,
		LinkLoad:  make([][]int32, n),
		Nodes:     make([][]byte, n),
		Inbox:     make([][]byte, n),
	}
	for v := 0; v < n; v++ {
		// Per-node rows are carved out of the flat congestion and receive
		// planes: the encoded stream is identical to the historical
		// per-node-slice layout, which is the on-disk compatibility
		// contract (see checkpoint_compat_test.go).
		lo, hi := e.sendOff[v], e.sendOff[v+1]
		s.LinkLoad[v] = append([]int32(nil), e.linkLoad[lo:hi]...)
		st, ok := e.nodes[v].(Stateful)
		if !ok {
			return nil, fmt.Errorf("congest: checkpoint: node %d (%T) does not implement Stateful", v, e.nodes[v])
		}
		enc := &StateEncoder{}
		st.EncodeState(enc)
		s.Nodes[v] = enc.Bytes()
		if inbox := e.inboxOf(v); len(inbox) > 0 {
			enc := &StateEncoder{}
			enc.Int(len(inbox))
			for _, m := range inbox {
				if err := EncodeMessage(enc, m); err != nil {
					return nil, fmt.Errorf("congest: checkpoint: inbox of node %d: %w", v, err)
				}
			}
			s.Inbox[v] = enc.Bytes()
		}
	}
	if e.cfg.Scheduler != SchedulerDense {
		s.WakeAt = append([]int(nil), e.wakeAt...)
	}
	if sn, ok := e.net.(Snapshotter); ok {
		enc := &StateEncoder{}
		if err := sn.SnapshotState(enc); err != nil {
			return nil, fmt.Errorf("congest: checkpoint: network state: %w", err)
		}
		s.Net = enc.Bytes()
	}
	if sn, ok := e.obs.(Snapshotter); ok {
		enc := &StateEncoder{}
		if err := sn.SnapshotState(enc); err != nil {
			return nil, fmt.Errorf("congest: checkpoint: observer state: %w", err)
		}
		s.Obs = enc.Bytes()
	}
	return s, nil
}

// restore loads a snapshot into a freshly initialized engine (mk and Init
// have run; the snapshot overwrites all round-evolving state). The caller
// starts the round loop at s.Round.
func (e *engine) restore(s *Snapshot) error {
	n := len(e.nodes)
	if s.Version != SnapshotVersion {
		return fmt.Errorf("snapshot version %d, want %d", s.Version, SnapshotVersion)
	}
	if s.N != n {
		return fmt.Errorf("snapshot is for n=%d, engine has n=%d", s.N, n)
	}
	if s.Sched != e.cfg.Scheduler {
		return fmt.Errorf("snapshot taken under scheduler %d, engine runs %d", s.Sched, e.cfg.Scheduler)
	}
	if len(s.Nodes) != n || len(s.NodeSends) != n || len(s.Quiescent) != n || len(s.LinkLoad) != n {
		return fmt.Errorf("snapshot field lengths do not match n=%d", n)
	}
	dense := e.cfg.Scheduler == SchedulerDense
	if !dense && len(s.WakeAt) != n {
		return fmt.Errorf("snapshot has %d wake entries, want %d", len(s.WakeAt), n)
	}
	for v := 0; v < n; v++ {
		st, ok := e.nodes[v].(Stateful)
		if !ok {
			return fmt.Errorf("node %d (%T) does not implement Stateful", v, e.nodes[v])
		}
		dec := NewStateDecoder(s.Nodes[v])
		if err := st.DecodeState(dec); err != nil {
			return fmt.Errorf("node %d state: %w", v, err)
		}
		if err := dec.Err(); err != nil {
			return fmt.Errorf("node %d state: %w", v, err)
		}
		if dec.Len() != 0 {
			return fmt.Errorf("node %d state has %d trailing bytes", v, dec.Len())
		}
		lo, hi := e.sendOff[v], e.sendOff[v+1]
		if len(s.LinkLoad[v]) != int(hi-lo) {
			return fmt.Errorf("node %d link-load width %d, want %d", v, len(s.LinkLoad[v]), hi-lo)
		}
		copy(e.linkLoad[lo:hi], s.LinkLoad[v])
	}
	e.stats = s.Stats
	copy(e.nodeSends, s.NodeSends)
	e.quiCount = 0
	for v := 0; v < n; v++ {
		e.quiescent[v] = s.Quiescent[v]
		if s.Quiescent[v] {
			e.quiCount++
		}
	}
	e.inflight = s.Inflight
	// Rebuild the receive plane: each node's staged messages are appended
	// as one contiguous run (nodes visited ascending, so the plane layout
	// matches what a live routing pass would have scattered) and the
	// (end, len) cursors plus the destination list are restored with it.
	for _, v := range e.recvList {
		e.inLen[v] = 0
	}
	e.recvList = e.recvList[:0]
	e.recvCur = e.recvCur[:0]
	for v := 0; v < n; v++ {
		if v < len(s.Inbox) && len(s.Inbox[v]) > 0 {
			dec := NewStateDecoder(s.Inbox[v])
			cnt := dec.Int()
			start := len(e.recvCur)
			for i := 0; i < cnt; i++ {
				m, err := DecodeMessage(dec)
				if err != nil {
					return fmt.Errorf("inbox of node %d: %w", v, err)
				}
				if m.To != v {
					return fmt.Errorf("inbox of node %d holds a message for %d", v, m.To)
				}
				e.recvCur = append(e.recvCur, m)
			}
			if err := dec.Err(); err != nil {
				return fmt.Errorf("inbox of node %d: %w", v, err)
			}
			if len(e.recvCur) > start {
				e.inEnd[v] = int32(len(e.recvCur))
				e.inLen[v] = int32(len(e.recvCur) - start)
				e.recvList = append(e.recvList, v)
			}
		}
	}
	if !dense {
		// Rebuild the wake heap from the per-node wake rounds. The heap
		// pops in a total (round, node) order with at most one entry per
		// node, so any rebuild is pop-order-identical to the original.
		e.wakes.items = e.wakes.items[:0]
		for v := range e.wakes.pos {
			e.wakes.pos[v] = -1
		}
		copy(e.wakeAt, s.WakeAt)
		for v := 0; v < n; v++ {
			if e.wakeAt[v] > 0 {
				e.wakes.items = append(e.wakes.items, wakeItem{round: e.wakeAt[v], node: v})
			}
		}
		sort.Slice(e.wakes.items, func(i, j int) bool {
			a, b := e.wakes.items[i], e.wakes.items[j]
			return a.round < b.round || (a.round == b.round && a.node < b.node)
		})
		for i, it := range e.wakes.items {
			e.wakes.pos[it.node] = i
		}
		// Non-Waker nodes rejoin the every-round list iff non-quiescent;
		// stale always-list entries in the original engine were observably
		// invisible (collectActive skips alwaysOn=false entries).
		e.alwaysList = e.alwaysList[:0]
		for v := 0; v < n; v++ {
			on := e.wakers[v] == nil && !e.quiescent[v]
			e.alwaysOn[v] = on
			if on {
				e.alwaysList = append(e.alwaysList, v)
			}
		}
	}
	if s.Net != nil {
		sn, ok := e.net.(Snapshotter)
		if !ok {
			return fmt.Errorf("snapshot carries network state but the engine's network (%T) cannot restore it", e.net)
		}
		dec := NewStateDecoder(s.Net)
		if err := sn.RestoreState(dec); err != nil {
			return fmt.Errorf("network state: %w", err)
		}
		if err := dec.Err(); err != nil {
			return fmt.Errorf("network state: %w", err)
		}
	} else if e.net != nil {
		if _, ok := e.net.(Snapshotter); ok {
			return fmt.Errorf("engine has a snapshotting network but the snapshot carries no network state")
		}
	}
	if s.Obs != nil {
		if sn, ok := e.obs.(Snapshotter); ok {
			dec := NewStateDecoder(s.Obs)
			if err := sn.RestoreState(dec); err != nil {
				return fmt.Errorf("observer state: %w", err)
			}
			if err := dec.Err(); err != nil {
				return fmt.Errorf("observer state: %w", err)
			}
		}
	}
	return nil
}
