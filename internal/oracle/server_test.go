package oracle

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// newTestServer builds a published pipeline snapshot over a small random
// graph and wraps it in an httptest server.
func newTestServer(t *testing.T, tweak func(*Server)) (*httptest.Server, *Server, *Snapshot) {
	t.Helper()
	g, _, in := testInput(t, 16, 48, 21, []int{0, 2, 5, 9})
	snap, err := Build(g, in, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Store: &Store{}, Cache: NewPathCache(128), Met: NewMetrics()}
	if tweak != nil {
		tweak(srv)
	}
	srv.Publish(snap)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, snap
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestServerDistEndpoint(t *testing.T) {
	ts, _, snap := newTestServer(t, nil)
	for _, src := range snap.Sources() {
		row, _ := snap.Row(src)
		for v := 0; v < snap.N(); v++ {
			var resp distResp
			status := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=%d", ts.URL, src, v), &resp)
			if status != http.StatusOK {
				t.Fatalf("dist(%d,%d) status %d", src, v, status)
			}
			want := snap.DistAt(row, v)
			switch {
			case want >= graph.Inf:
				if resp.Reachable || resp.Dist != nil {
					t.Fatalf("dist(%d,%d): unreachable pair served %+v", src, v, resp)
				}
			case resp.Dist == nil || *resp.Dist != want || !resp.Reachable:
				t.Fatalf("dist(%d,%d) = %+v, want %d", src, v, resp, want)
			}
			if resp.Gen != snap.Gen() {
				t.Fatalf("dist(%d,%d) gen %d, want %d", src, v, resp.Gen, snap.Gen())
			}
		}
	}
}

func TestServerPathEndpoint(t *testing.T) {
	ts, _, snap := newTestServer(t, nil)
	src := snap.Sources()[1]
	row, _ := snap.Row(src)
	served := 0
	for v := 0; v < snap.N(); v++ {
		want, wantErr := snap.Path(row, v)
		var resp pathResp
		status := getJSON(t, fmt.Sprintf("%s/path?src=%d&dst=%d", ts.URL, src, v), &resp)
		if wantErr != nil {
			if status != pathStatus(wantErr) {
				t.Fatalf("path(%d,%d) status %d, want %d for %v", src, v, status, pathStatus(wantErr), wantErr)
			}
			continue
		}
		served++
		if status != http.StatusOK {
			t.Fatalf("path(%d,%d) status %d", src, v, status)
		}
		if len(resp.Path) != len(want) || resp.Hops != len(want)-1 || resp.Dist != snap.DistAt(row, v) {
			t.Fatalf("path(%d,%d) = %+v, want path %v", src, v, resp, want)
		}
		for j := range want {
			if resp.Path[j] != want[j] {
				t.Fatalf("path(%d,%d) = %v, want %v", src, v, resp.Path, want)
			}
		}
	}
	if served == 0 {
		t.Fatal("no reachable path was exercised")
	}
}

func TestServerErrorStatuses(t *testing.T) {
	ts, _, snap := newTestServer(t, nil)
	nonSource := -1
	for v := 0; v < snap.N(); v++ {
		if _, ok := snap.Row(v); !ok {
			nonSource = v
			break
		}
	}
	cases := []struct {
		url  string
		want int
	}{
		{"/dist?src=0", http.StatusBadRequest},                              // missing dst
		{"/dist?src=zero&dst=1", http.StatusBadRequest},                     // non-numeric
		{"/dist?src=0&dst=999", http.StatusBadRequest},                      // dst out of range
		{fmt.Sprintf("/dist?src=%d&dst=1", nonSource), http.StatusNotFound}, // not a source row
		{"/path?src=0&dst=-2", http.StatusBadRequest},                       // dst out of range
		{fmt.Sprintf("/path?src=%d&dst=1", nonSource), http.StatusNotFound}, // not a source row
		{"/dist?src=99999&dst=0", http.StatusNotFound},                      // far outside
	}
	for _, tc := range cases {
		var e errResp
		if status := getJSON(t, ts.URL+tc.url, &e); status != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.url, status, e.Error, tc.want)
		} else if e.Error == "" {
			t.Errorf("%s: error body missing", tc.url)
		}
	}
}

func TestServerNoSnapshot503(t *testing.T) {
	srv := &Server{Store: &Store{}, Met: NewMetrics()}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if status := getJSON(t, ts.URL+"/dist?src=0&dst=1", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("empty store served status %d, want 503", status)
	}
	if status := getJSON(t, ts.URL+"/healthz", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("empty store healthz %d, want 503", status)
	}
}

func TestServerBatch(t *testing.T) {
	ts, _, snap := newTestServer(t, func(s *Server) { s.BatchBudget = 64 })
	src := snap.Sources()[0]
	row, _ := snap.Row(src)

	var queries []batchItem
	for v := 0; v < snap.N(); v++ {
		queries = append(queries, batchItem{Kind: "dist", Src: src, Dst: v})
		queries = append(queries, batchItem{Kind: "path", Src: src, Dst: v})
	}
	queries = append(queries,
		batchItem{Kind: "dist", Src: -5, Dst: 0},     // unknown source → per-item 404
		batchItem{Kind: "dist", Src: src, Dst: 9999}, // bad dst → per-item 400
		batchItem{Kind: "warp", Src: src, Dst: 0},    // unknown kind → per-item 400
	)
	body, _ := json.Marshal(batchReq{Queries: queries})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var br batchResp
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Gen != snap.Gen() || len(br.Results) != len(queries) {
		t.Fatalf("batch gen=%d results=%d, want gen=%d results=%d", br.Gen, len(br.Results), snap.Gen(), len(queries))
	}
	for v := 0; v < snap.N(); v++ {
		d := br.Results[2*v]
		want := snap.DistAt(row, v)
		if want < graph.Inf && (d.Dist == nil || *d.Dist != want) {
			t.Fatalf("batch dist(%d,%d) = %+v, want %d", src, v, d, want)
		}
		p := br.Results[2*v+1]
		wantPath, wantErr := snap.Path(row, v)
		if wantErr != nil {
			if p.Status != pathStatus(wantErr) || p.Error == "" {
				t.Fatalf("batch path(%d,%d) = %+v, want status %d", src, v, p, pathStatus(wantErr))
			}
		} else if len(p.Path) != len(wantPath) {
			t.Fatalf("batch path(%d,%d) = %v, want %v", src, v, p.Path, wantPath)
		}
	}
	tail := br.Results[len(br.Results)-3:]
	for i, wantStatus := range []int{http.StatusNotFound, http.StatusBadRequest, http.StatusBadRequest} {
		if tail[i].Status != wantStatus {
			t.Fatalf("trailing batch item %d: %+v, want status %d", i, tail[i], wantStatus)
		}
	}

	// Over-budget and malformed batches are refused whole.
	big, _ := json.Marshal(batchReq{Queries: make([]batchItem, 65)})
	if resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(big)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("over-budget batch status %d, want 413", resp.StatusCode)
		}
	}
	for _, bad := range []string{"{not json", `{"queries":[]}`} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch %q status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestServerAdmissionShedding(t *testing.T) {
	block := make(chan struct{})
	ts, srv, _ := newTestServer(t, func(s *Server) {
		s.MaxInflight = 2
		s.AdmitWait = time.Millisecond
	})
	// Occupy both slots directly (the handler path would race the test).
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	defer func() { close(block); <-srv.sem; <-srv.sem }()

	if status := getJSON(t, ts.URL+"/dist?src=0&dst=1", nil); status != http.StatusTooManyRequests {
		t.Fatalf("saturated server status %d, want 429", status)
	}
	if srv.Met.Shed.Value() == 0 {
		t.Fatal("shed counter not incremented")
	}
	// Control endpoints bypass admission even under saturation.
	if status := getJSON(t, ts.URL+"/healthz", nil); status != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", status)
	}
}

func TestServerRecomputeSingleFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	ts, srv, snap := newTestServer(t, nil)
	g, _, in := testInput(t, 16, 48, 21, []int{0, 2, 5, 9})
	srv.Recompute = func(ctx context.Context) (*Snapshot, error) {
		once.Do(func() { close(started) })
		<-release
		return Build(g, in, BuildOpts{})
	}
	post := func(path string) int {
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := post("/admin/recompute"); status != http.StatusAccepted {
		t.Fatalf("recompute status %d, want 202", status)
	}
	<-started
	if status := post("/admin/recompute"); status != http.StatusConflict {
		t.Fatalf("concurrent recompute status %d, want 409", status)
	}
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Store.Current().Gen() == snap.Gen() {
		if time.Now().After(deadline) {
			t.Fatal("recompute never published")
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Store.Current().Gen(); got != snap.Gen()+1 {
		t.Fatalf("published gen %d, want %d", got, snap.Gen()+1)
	}
	var h healthResp
	if status := getJSON(t, ts.URL+"/healthz", &h); status != http.StatusOK || h.Gen != snap.Gen()+1 {
		t.Fatalf("healthz after swap: status %d, %+v", status, h)
	}
}

func TestServerRecomputeUnavailable(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	resp, err := http.Post(ts.URL+"/admin/recompute", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("recompute without source: %d, want 501", resp.StatusCode)
	}
}

func TestServerMetricsAndHealthz(t *testing.T) {
	ts, _, snap := newTestServer(t, nil)
	// Serve a few queries so instruments move.
	getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=1", ts.URL, snap.Sources()[0]), nil)
	getJSON(t, fmt.Sprintf("%s/path?src=%d&dst=1", ts.URL, snap.Sources()[0]), nil)
	getJSON(t, fmt.Sprintf("%s/path?src=%d&dst=1", ts.URL, snap.Sources()[0]), nil) // cache hit

	var h healthResp
	if status := getJSON(t, ts.URL+"/healthz", &h); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if h.Status != "ok" || h.Gen != snap.Gen() || h.N != snap.N() || h.K != snap.K() || !h.HasPaths {
		t.Fatalf("healthz body %+v", h)
	}
	if h.Fingerprint != fmt.Sprintf("%016x", snap.Fingerprint()) {
		t.Fatalf("healthz fingerprint %q", h.Fingerprint)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		`apspd_queries_total{kind="dist"} 1`,
		`apspd_queries_total{kind="path"} 2`,
		"apspd_snapshot_generation 1",
		"apspd_snapshot_swaps_total 1",
		"apspd_path_cache_hits_total 1",
		"apspd_path_cache_misses_total 1",
		"apspd_latency_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestServerPprofWired(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	if status := getJSON(t, ts.URL+"/debug/pprof/cmdline", nil); status != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", status)
	}
}
