package oracle

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
)

// writeMidRunCheckpoint runs the pipeline until the engine's checkpoint
// drill stops it at a mid-run round and returns the snapshot file — the
// exact artifact `apsprun -checkpoint-stop` leaves behind.
func writeMidRunCheckpoint(t *testing.T, g *graph.Graph, sources []int, atRound int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	meta := &checkpoint.Meta{
		Alg: "pipeline", N: g.N(), M: g.M(), Graph: checkpoint.Fingerprint(g),
		Sources: sources, H: 0, Sched: congest.SchedulerActive,
	}
	keeper := &checkpoint.Keeper{Path: path, Meta: meta}
	pol := &congest.CheckpointPolicy{AtRound: atRound, Stop: true, Sink: keeper.Sink}
	_, err := core.Run(g, core.Opts{Sources: sources, H: g.N() - 1, Checkpoint: pol})
	if !errors.Is(err, congest.ErrCheckpointStop) {
		t.Fatalf("checkpoint drill ended with %v, want ErrCheckpointStop", err)
	}
	return path
}

// TestCheckpointToOracleHandoff is the satellite gate for the
// apsprun → apspd pipeline: a checkpoint written mid-run loads into a
// ComputeSpec, the resumed computation completes, and the snapshot built
// from it serves distances identical to an uninterrupted run (resume is
// bit-exact, so so is the oracle).
func TestCheckpointToOracleHandoff(t *testing.T) {
	g := graph.Random(24, 80, graph.GenOpts{MaxW: 8, ZeroFrac: 0.25, Seed: 13, Directed: true})
	sources := []int{0, 5, 11, 19}
	path := writeMidRunCheckpoint(t, g, sources, 6)

	// The spec's Alg is adopted from the checkpoint metadata; H stays the
	// raw flag value the metadata recorded (0 = default).
	sp := ComputeSpec{Sources: sources}
	if err := LoadCheckpoint(path, g, &sp); err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if sp.Alg != "pipeline" || sp.Resume == nil {
		t.Fatalf("spec after load: alg=%q resume=%v", sp.Alg, sp.Resume != nil)
	}
	resumed, err := Compute(context.Background(), g, sp)
	if err != nil {
		t.Fatalf("resumed Compute: %v", err)
	}
	fresh, err := Compute(context.Background(), g, ComputeSpec{Alg: "pipeline", Sources: sources})
	if err != nil {
		t.Fatalf("fresh Compute: %v", err)
	}
	snap, err := Build(g, resumed, BuildOpts{Fingerprint: checkpoint.Fingerprint(g)})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if snap.Fingerprint() != checkpoint.Fingerprint(g) {
		t.Fatal("fingerprint not carried into snapshot")
	}
	for i := range sources {
		for v := 0; v < g.N(); v++ {
			if snap.DistAt(i, v) != fresh.Dist[i][v] {
				t.Fatalf("resumed oracle dist(%d,%d) = %d, uninterrupted %d",
					i, v, snap.DistAt(i, v), fresh.Dist[i][v])
			}
			if snap.parentAt(i, v) != fresh.Parent[i][v] {
				t.Fatalf("resumed oracle parent(%d,%d) = %d, uninterrupted %d",
					i, v, snap.parentAt(i, v), fresh.Parent[i][v])
			}
		}
	}
}

// TestLoadCheckpointValidation: a checkpoint must refuse to resume against
// the wrong graph, sources, algorithm, or crash-scripted state.
func TestLoadCheckpointValidation(t *testing.T) {
	g := graph.Random(20, 60, graph.GenOpts{MaxW: 8, ZeroFrac: 0.25, Seed: 17, Directed: true})
	sources := []int{0, 4, 9}
	path := writeMidRunCheckpoint(t, g, sources, 4)

	t.Run("wrong graph", func(t *testing.T) {
		other := graph.Random(20, 60, graph.GenOpts{MaxW: 8, ZeroFrac: 0.25, Seed: 18, Directed: true})
		sp := ComputeSpec{Sources: sources}
		if err := LoadCheckpoint(path, other, &sp); err == nil || !strings.Contains(err.Error(), "graph mismatch") {
			t.Fatalf("wrong graph accepted: %v", err)
		}
	})
	t.Run("wrong sources", func(t *testing.T) {
		sp := ComputeSpec{Sources: []int{0, 4}}
		if err := LoadCheckpoint(path, g, &sp); err == nil || !strings.Contains(err.Error(), "source") {
			t.Fatalf("wrong sources accepted: %v", err)
		}
	})
	t.Run("wrong alg", func(t *testing.T) {
		sp := ComputeSpec{Alg: "bellman", Sources: sources}
		if err := LoadCheckpoint(path, g, &sp); err == nil || !strings.Contains(err.Error(), "-alg") {
			t.Fatalf("wrong alg accepted: %v", err)
		}
	})
	t.Run("wrong plan", func(t *testing.T) {
		sp := ComputeSpec{Sources: sources, Plan: "delay=2,seed=5"}
		if err := LoadCheckpoint(path, g, &sp); err == nil || !strings.Contains(err.Error(), "plan") {
			t.Fatalf("wrong fault plan accepted: %v", err)
		}
	})
	t.Run("crash-scripted checkpoint rejected", func(t *testing.T) {
		meta, snap, err := checkpoint.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		meta.Disarmed = []int{0}
		tainted := filepath.Join(t.TempDir(), "crash.ckpt")
		if err := checkpoint.Save(tainted, meta, snap); err != nil {
			t.Fatal(err)
		}
		sp := ComputeSpec{Sources: sources}
		if err := LoadCheckpoint(tainted, g, &sp); err == nil || !strings.Contains(err.Error(), "crash") {
			t.Fatalf("crash-scripted checkpoint accepted: %v", err)
		}
	})
}

// TestComputeUnderFaults: a fault plan changes the physical wire, never
// the served answers — the oracle built under adversarial delivery equals
// the fault-free one.
func TestComputeUnderFaults(t *testing.T) {
	g := graph.Random(16, 48, graph.GenOpts{MaxW: 8, ZeroFrac: 0.25, Seed: 23, Directed: true})
	sources := []int{0, 7}
	clean, err := Compute(context.Background(), g, ComputeSpec{Alg: "pipeline", Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Compute(context.Background(), g, ComputeSpec{Alg: "pipeline", Sources: sources,
		Plan: "delay=2,drop=0.2,dup=0.1,reorder", FaultSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sources {
		for v := 0; v < g.N(); v++ {
			if clean.Dist[i][v] != faulty.Dist[i][v] {
				t.Fatalf("faults changed dist(%d,%d): %d vs %d", i, v, clean.Dist[i][v], faulty.Dist[i][v])
			}
		}
	}
}
