// Package oracle is the distance-oracle serving layer over precomputed
// APSP results: the second half of the paper's bargain. Agarwal &
// Ramachandran frame weighted APSP as oracle precomputation — pay
// Õ(n^{5/4}) CONGEST rounds once, then answer any (s,v) distance or path
// query from the stored distance and parent matrices — and this package
// serves those answers over HTTP at memory speed.
//
// The stored form is an immutable, source-sharded column store: the k
// source rows are split into fixed-size shards, each holding its rows'
// distances (flat int64), hop counts and parent pointers (flat int32) in
// row-major order. A Snapshot is never mutated after Build; the serving
// Store swaps whole snapshots through one atomic pointer, so queries take
// no lock, see exactly one generation end-to-end, and a background
// recompute can publish a replacement with zero failed or mixed-generation
// queries (the hot-swap gate in swap_test.go holds the receipt).
//
// Path queries lazily materialize the recorded path by the hardened
// core.WalkParents walker (shared error taxonomy with ReconstructPath),
// behind a small LRU keyed by (generation, row, target).
package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
)

// DefaultShardBits is the default log2 of rows per shard: 64 source rows
// per shard keeps a shard's distance block (64·n int64) L2-resident for
// the n this repository targets while bounding build parallelism grain.
const DefaultShardBits = 6

// BuildInput is a computed result in matrix form, the common denominator
// of every protocol family's Result struct. Hops and Parent are optional
// (nil disables path serving; hops additionally gate hop validation).
type BuildInput struct {
	// Alg names the protocol family that produced the matrices.
	Alg string
	// Sources[i] is the source node of row i.
	Sources []int
	// Dist[i][v] is the distance from Sources[i] to v (graph.Inf if
	// unreachable).
	Dist [][]int64
	// Hops[i][v] is the hop count of the recorded path (optional).
	Hops [][]int64
	// Parent[i][v] is the predecessor of v on the recorded path
	// (optional; -1 = none).
	Parent [][]int
	// Stats is the CONGEST cost paid to compute the matrices.
	Stats congest.Stats
	// Phys is the delivery shim's physical cost when the computation ran
	// under a fault plan (nil = perfect delivery).
	Phys *faults.PhysStats
}

// shard holds a contiguous block of source rows, row-major.
type shard struct {
	dist   []int64
	hops   []int32 // nil when hops are not recorded
	parent []int32 // nil when parents are not recorded
}

// Snapshot is one immutable, queryable generation of the oracle.
type Snapshot struct {
	gen       uint64 // assigned by Store.Publish; 0 until published
	alg       string
	n         int
	sources   []int
	srcRow    map[int]int
	shardBits uint
	shards    []shard
	g         *graph.Graph
	stats     congest.Stats
	phys      *faults.PhysStats
	fp        uint64 // graph fingerprint (checkpoint.Fingerprint)
}

// BuildOpts tunes snapshot construction.
type BuildOpts struct {
	// ShardBits is the log2 of source rows per shard (0 = DefaultShardBits).
	ShardBits uint
	// Fingerprint pins the graph identity (informative; /healthz reports it).
	Fingerprint uint64
}

// Build repacks a computed result into the sharded column store. The
// input is validated like untrusted data: shape mismatches and
// out-of-range parents are errors, not panics — snapshots can be built
// from deserialized files.
func Build(g *graph.Graph, in BuildInput, opts BuildOpts) (*Snapshot, error) {
	n, k := g.N(), len(in.Sources)
	if k == 0 {
		return nil, fmt.Errorf("oracle: no sources")
	}
	if len(in.Dist) != k {
		return nil, fmt.Errorf("oracle: %d sources but %d distance rows", k, len(in.Dist))
	}
	if in.Hops != nil && len(in.Hops) != k {
		return nil, fmt.Errorf("oracle: %d sources but %d hop rows", k, len(in.Hops))
	}
	if in.Parent != nil && len(in.Parent) != k {
		return nil, fmt.Errorf("oracle: %d sources but %d parent rows", k, len(in.Parent))
	}
	bits := opts.ShardBits
	if bits == 0 {
		bits = DefaultShardBits
	}
	srcRow := make(map[int]int, k)
	for i, s := range in.Sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("oracle: source node %d outside graph (n=%d)", s, n)
		}
		if prev, dup := srcRow[s]; dup {
			return nil, fmt.Errorf("oracle: source %d appears at rows %d and %d", s, prev, i)
		}
		srcRow[s] = i
	}

	rowsPer := 1 << bits
	nShards := (k + rowsPer - 1) / rowsPer
	snap := &Snapshot{
		alg:       in.Alg,
		n:         n,
		sources:   append([]int(nil), in.Sources...),
		srcRow:    srcRow,
		shardBits: bits,
		shards:    make([]shard, nShards),
		g:         g,
		stats:     in.Stats,
		phys:      in.Phys,
		fp:        opts.Fingerprint,
	}

	// Repack shard-parallel: each shard copies (and range-checks) its own
	// rows, so building a large snapshot scales with cores.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for si := 0; si < nShards; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			lo := si * rowsPer
			hi := lo + rowsPer
			if hi > k {
				hi = k
			}
			rows := hi - lo
			sh := shard{dist: make([]int64, rows*n)}
			if in.Hops != nil {
				sh.hops = make([]int32, rows*n)
			}
			if in.Parent != nil {
				sh.parent = make([]int32, rows*n)
			}
			for r := 0; r < rows; r++ {
				i := lo + r
				if len(in.Dist[i]) != n {
					fail(&mu, &firstErr, fmt.Errorf("oracle: distance row %d has %d entries, want %d", i, len(in.Dist[i]), n))
					return
				}
				copy(sh.dist[r*n:(r+1)*n], in.Dist[i])
				if sh.hops != nil {
					if len(in.Hops[i]) != n {
						fail(&mu, &firstErr, fmt.Errorf("oracle: hop row %d has %d entries, want %d", i, len(in.Hops[i]), n))
						return
					}
					for v, h := range in.Hops[i] {
						if h < -1 || h > int64(n) {
							fail(&mu, &firstErr, fmt.Errorf("oracle: hop count %d at (%d,%d) out of range", h, i, v))
							return
						}
						sh.hops[r*n+v] = int32(h)
					}
				}
				if sh.parent != nil {
					if len(in.Parent[i]) != n {
						fail(&mu, &firstErr, fmt.Errorf("oracle: parent row %d has %d entries, want %d", i, len(in.Parent[i]), n))
						return
					}
					for v, p := range in.Parent[i] {
						if p < -1 || p >= n {
							fail(&mu, &firstErr, fmt.Errorf("oracle: parent %d at (%d,%d) outside graph", p, i, v))
							return
						}
						sh.parent[r*n+v] = int32(p)
					}
				}
			}
			snap.shards[si] = sh
		}(si)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return snap, nil
}

func fail(mu *sync.Mutex, dst *error, err error) {
	mu.Lock()
	if *dst == nil {
		*dst = err
	}
	mu.Unlock()
}

// Gen is the generation assigned at publish time (0 = unpublished).
func (s *Snapshot) Gen() uint64 { return s.gen }

// Alg names the protocol family that produced the snapshot.
func (s *Snapshot) Alg() string { return s.alg }

// N is the number of nodes; K the number of source rows.
func (s *Snapshot) N() int { return s.n }

// K is the number of source rows.
func (s *Snapshot) K() int { return len(s.sources) }

// Sources returns the source node per row (callers must not mutate).
func (s *Snapshot) Sources() []int { return s.sources }

// Stats is the CONGEST cost paid to compute the snapshot.
func (s *Snapshot) Stats() congest.Stats { return s.stats }

// Phys is the delivery shim's physical cost for the computation (nil when
// it ran over perfect delivery).
func (s *Snapshot) Phys() *faults.PhysStats { return s.phys }

// Fingerprint is the graph fingerprint the snapshot was built against.
func (s *Snapshot) Fingerprint() uint64 { return s.fp }

// Graph returns the graph the snapshot answers for.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Row maps a source node ID to its row index.
func (s *Snapshot) Row(src int) (int, bool) {
	i, ok := s.srcRow[src]
	return i, ok
}

// DistAt returns the stored distance for (row, v). The hot path of the
// whole subsystem: two shifts, one map-free bounds setup and one load.
func (s *Snapshot) DistAt(row, v int) int64 {
	sh := &s.shards[row>>s.shardBits]
	return sh.dist[(row&(1<<s.shardBits-1))*s.n+v]
}

// HasPaths reports whether parent pointers were recorded.
func (s *Snapshot) HasPaths() bool { return len(s.shards) > 0 && s.shards[0].parent != nil }

// HasHops reports whether hop counts were recorded.
func (s *Snapshot) HasHops() bool { return len(s.shards) > 0 && s.shards[0].hops != nil }

// hopAt / parentAt read the int32 columns (only called when recorded).
func (s *Snapshot) hopAt(row, v int) int64 {
	sh := &s.shards[row>>s.shardBits]
	return int64(sh.hops[(row&(1<<s.shardBits-1))*s.n+v])
}

func (s *Snapshot) parentAt(row, v int) int {
	sh := &s.shards[row>>s.shardBits]
	return int(sh.parent[(row&(1<<s.shardBits-1))*s.n+v])
}

// Path materializes the recorded path from row's source to v through the
// hardened shared walker: identical path and error semantics to
// core.ReconstructPath on the original result (the differential gate in
// differential_test.go holds the receipt). All failures are typed
// *core.PathError values.
func (s *Snapshot) Path(row, v int) ([]int, error) {
	if !s.HasPaths() {
		return nil, &core.PathError{Kind: core.ErrPathMalformed, Source: row, Node: v,
			Detail: fmt.Sprintf("%s snapshot records no parent pointers", s.alg)}
	}
	pv := core.PathView{
		Sources: s.sources,
		Dist:    s.DistAt,
		Parent:  s.parentAt,
	}
	if s.HasHops() {
		pv.Hops = s.hopAt
	}
	return core.WalkParents(s.g, pv, row, v)
}

// Store is the atomic snapshot holder: readers Load the current pointer
// once per request and never block; Publish assigns the next generation
// and swaps the pointer. RWMutex-free by construction.
type Store struct {
	cur atomic.Pointer[Snapshot]
	gen atomic.Uint64
}

// Current returns the serving snapshot (nil before the first Publish).
func (st *Store) Current() *Snapshot { return st.cur.Load() }

// Publish assigns s the next generation and makes it the serving
// snapshot. Returns the generation. The previous snapshot stays valid for
// requests that already loaded it — that is the zero-failed-queries swap.
func (st *Store) Publish(s *Snapshot) uint64 {
	s.gen = st.gen.Add(1)
	st.cur.Store(s)
	return s.gen
}
