package oracle

import (
	"container/list"
	"sync"
)

// pathKey identifies one materialized path. The generation is part of the
// key, so a snapshot swap implicitly invalidates every cached entry
// without any flush coordination — stale generations simply stop being
// asked for and age out of the LRU.
type pathKey struct {
	gen  uint64
	row  int
	node int
}

// pathEntry caches the walker's full answer, error included: corrupt-row
// and unreachable queries are just as repeatable as successful ones, and
// re-walking them on every request would make the failure path the
// expensive one.
type pathEntry struct {
	path []int
	err  error
}

// PathCache is a fixed-capacity LRU over materialized paths. All methods
// are safe for concurrent use; the zero value is invalid, use
// NewPathCache.
type PathCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recent; values are *pathElem
	byK          map[pathKey]*list.Element
	hits, misses uint64
}

type pathElem struct {
	key pathKey
	ent pathEntry
}

// NewPathCache returns an LRU holding at most capacity paths
// (capacity <= 0 disables caching; every lookup misses).
func NewPathCache(capacity int) *PathCache {
	return &PathCache{cap: capacity, ll: list.New(), byK: make(map[pathKey]*list.Element)}
}

// Get returns the cached walker answer for (snapshot generation, row,
// node) and whether it was present.
func (c *PathCache) Get(gen uint64, row, node int) ([]int, error, bool) {
	if c.cap <= 0 {
		return nil, nil, false
	}
	k := pathKey{gen, row, node}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byK[k]
	if !ok {
		c.misses++
		return nil, nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	ent := el.Value.(*pathElem).ent
	return ent.path, ent.err, true
}

// Put stores a walker answer, evicting the least recently used entry when
// over capacity.
func (c *PathCache) Put(gen uint64, row, node int, path []int, err error) {
	if c.cap <= 0 {
		return
	}
	k := pathKey{gen, row, node}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byK[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*pathElem).ent = pathEntry{path, err}
		return
	}
	el := c.ll.PushFront(&pathElem{key: k, ent: pathEntry{path, err}})
	c.byK[k] = el
	if c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.byK, old.Value.(*pathElem).key)
	}
}

// Stats reports cumulative hit/miss counts and the current entry count.
func (c *PathCache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
