package oracle

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fillSlots occupies n admission slots directly (white-box: the ladder is
// a function of semaphore occupancy, so the test sets occupancy exactly
// instead of racing slow requests against it).
func fillSlots(t *testing.T, srv *Server, n int) func() {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case srv.sem <- struct{}{}:
		default:
			t.Fatalf("could not occupy slot %d of %d", i, n)
		}
	}
	return func() {
		for i := 0; i < n; i++ {
			<-srv.sem
		}
	}
}

func TestDegradeLadderLevels(t *testing.T) {
	_, srv, _ := newTestServer(t, func(s *Server) { s.MaxInflight = 10 })
	cases := []struct {
		occupied, want int
	}{
		{0, degradeNone}, {5, degradeNone}, {7, degradeNone},
		{8, degradeNoCacheInsert}, {9, degradeDistOnly}, {10, degradeDistOnly},
	}
	for _, c := range cases {
		release := fillSlots(t, srv, c.occupied)
		if got := srv.degradeLevel(); got != c.want {
			t.Errorf("degradeLevel at %d/10 = %d, want %d", c.occupied, got, c.want)
		}
		release()
	}
}

func TestDegradeDistOnlyRefusesPaths(t *testing.T) {
	ts, srv, snap := newTestServer(t, func(s *Server) { s.MaxInflight = 10 })
	src := snap.Sources()[0]
	// Occupy 8 of 10: the query itself takes a 9th slot, so at handler
	// time occupancy is 9/10 >= 0.9 — dist-only.
	release := fillSlots(t, srv, 8)
	defer release()

	resp, err := http.Get(fmt.Sprintf("%s/path?src=%d&dst=1", ts.URL, src))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/path under dist-only load: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded /path refusal lacks Retry-After")
	}
	if srv.Met.DegradedPaths.Value() != 1 {
		t.Fatalf("DegradedPaths = %v, want 1", srv.Met.DegradedPaths.Value())
	}

	// Dist lookups keep full service on the same rung.
	var dresp distResp
	if status := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=1", ts.URL, src), &dresp); status != http.StatusOK {
		t.Fatalf("/dist under dist-only load: status %d, want 200", status)
	}

	// Batch path items degrade per-item; dist items still answer.
	body, _ := json.Marshal(batchReq{Queries: []batchItem{
		{Kind: "dist", Src: src, Dst: 1},
		{Kind: "path", Src: src, Dst: 1},
	}})
	bresp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	var br batchResp
	if err := json.NewDecoder(bresp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Status != 0 {
		t.Fatalf("batch dist item degraded: %+v", br.Results[0])
	}
	if br.Results[1].Status != http.StatusServiceUnavailable {
		t.Fatalf("batch path item status %d, want 503: %+v", br.Results[1].Status, br.Results[1])
	}
}

func TestDegradeStopsCacheInserts(t *testing.T) {
	_, srv, snap := newTestServer(t, func(s *Server) { s.MaxInflight = 10 })
	row, dst := 0, -1
	for v := 0; v < snap.N(); v++ { // any reachable target will do
		if v != snap.Sources()[row] && snap.DistAt(row, v) < 1<<60 {
			dst = v
			break
		}
	}
	if dst < 0 {
		t.Fatal("no reachable target from row 0")
	}
	// At rung 1 (8/10 occupied) a path walk must not populate the cache.
	release := fillSlots(t, srv, 8)
	if _, err := srv.lookupPath(context.Background(), snap, row, dst); err != nil {
		t.Fatalf("lookupPath: %v", err)
	}
	release()
	if _, _, ok := srv.Cache.Get(snap.Gen(), row, dst); ok {
		t.Fatal("cache admitted an insert while degraded")
	}
	// Unloaded, the same lookup caches.
	if _, err := srv.lookupPath(context.Background(), snap, row, dst); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := srv.Cache.Get(snap.Gen(), row, dst); !ok {
		t.Fatal("cache insert did not resume at full service")
	}
}

func TestRecomputeFailureServesStale(t *testing.T) {
	var fail bool
	var mu sync.Mutex
	ts, srv, snap := newTestServer(t, nil)
	srv.Recompute = func(ctx context.Context) (*Snapshot, error) {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			return nil, errors.New("injected compute failure")
		}
		g, _, in := testInput(t, 16, 48, 21, []int{0, 2, 5, 9})
		return Build(g, in, BuildOpts{})
	}
	trigger := func() {
		resp, err := http.Post(ts.URL+"/admin/recompute", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("recompute trigger: status %d", resp.StatusCode)
		}
		for i := 0; srv.recomputing.Load(); i++ {
			if i > 1000 {
				t.Fatal("recompute did not finish")
			}
			time.Sleep(time.Millisecond)
		}
	}

	mu.Lock()
	fail = true
	mu.Unlock()
	trigger()
	var h healthResp
	if status := getJSON(t, ts.URL+"/healthz", &h); status != http.StatusOK {
		t.Fatalf("healthz while stale: status %d, want 200 (stale still serves)", status)
	}
	if h.Status != "stale" || !strings.Contains(h.LastError, "injected compute failure") {
		t.Fatalf("healthz = %+v, want stale with the recompute error", h)
	}
	if h.Gen != snap.Gen() {
		t.Fatalf("healthz gen %d, want the stale generation %d", h.Gen, snap.Gen())
	}
	if srv.Met.RecomputeFails.Value() != 1 {
		t.Fatalf("RecomputeFails = %v, want 1", srv.Met.RecomputeFails.Value())
	}
	// Queries still answer from the stale generation.
	var dresp distResp
	if status := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=1", ts.URL, snap.Sources()[0]), &dresp); status != http.StatusOK {
		t.Fatalf("stale /dist status %d", status)
	}
	if dresp.Gen != snap.Gen() {
		t.Fatalf("stale /dist gen %d, want %d", dresp.Gen, snap.Gen())
	}

	// A later successful recompute clears the flag.
	mu.Lock()
	fail = false
	mu.Unlock()
	trigger()
	if status := getJSON(t, ts.URL+"/healthz", &h); status != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz after recovery = %d %+v, want ok", status, h)
	}
	if h.Gen != snap.Gen()+1 {
		t.Fatalf("healthz gen %d, want fresh generation %d", h.Gen, snap.Gen()+1)
	}
}

func TestBatchClientDisconnect(t *testing.T) {
	_, srv, snap := newTestServer(t, nil)
	src := snap.Sources()[0]
	var items []batchItem
	for i := 0; i < 600; i++ { // two deadline-check segments
		items = append(items, batchItem{Kind: "dist", Src: src, Dst: i % snap.N()})
	}
	body, _ := json.Marshal(batchReq{Queries: items})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the handler starts
	req := httptest.NewRequest(http.MethodPost, "/batch", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosed {
		t.Fatalf("disconnected batch: status %d, want %d", rec.Code, statusClientClosed)
	}
	var er errResp
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "aborted after 0 of 600") {
		t.Fatalf("partial error = %q, want the typed done/total report", er.Error)
	}
	if srv.Met.DeadlineExceeded.Value() != 0 {
		t.Fatal("client disconnect miscounted as deadline_exceeded")
	}
}

func TestBatchDeadlineExceeded(t *testing.T) {
	_, srv, snap := newTestServer(t, func(s *Server) { s.Deadline = time.Nanosecond })
	src := snap.Sources()[0]
	var items []batchItem
	for i := 0; i < 600; i++ {
		items = append(items, batchItem{Kind: "dist", Src: src, Dst: i % snap.N()})
	}
	body, _ := json.Marshal(batchReq{Queries: items})
	req := httptest.NewRequest(http.MethodPost, "/batch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline batch: status %d, want 504", rec.Code)
	}
	var er errResp
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "of 600 queries") || !strings.Contains(er.Error, "deadline exceeded") {
		t.Fatalf("partial error = %q, want done/total + deadline cause", er.Error)
	}
	if srv.Met.DeadlineExceeded.Value() != 1 {
		t.Fatalf("DeadlineExceeded = %v, want 1", srv.Met.DeadlineExceeded.Value())
	}
}

func TestBatchPartialErrorUnwraps(t *testing.T) {
	e := &BatchPartialError{Done: 3, Total: 10, Cause: context.DeadlineExceeded}
	if !errors.Is(e, context.DeadlineExceeded) {
		t.Fatal("BatchPartialError must unwrap to its cause")
	}
	if !strings.Contains(e.Error(), "3 of 10") {
		t.Fatalf("Error() = %q", e.Error())
	}
}

// TestAdmissionSaturation hammers a MaxInflight=1 server with concurrent
// requests (run under -race in CI). Invariants, independent of timing:
// every request is answered exactly once, as either a 200 or a 429; every
// 429 carries Retry-After; and the shed metric counts the 429s exactly —
// no request is both shed and answered, none vanishes.
func TestAdmissionSaturation(t *testing.T) {
	ts, srv, snap := newTestServer(t, func(s *Server) {
		s.MaxInflight = 1
		s.AdmitWait = time.Microsecond
		s.DegradeCacheAt = -1 // isolate admission: no ladder interference
		s.DegradeDistOnlyAt = -1
	})
	src := snap.Sources()[0]
	// Path batches are slow enough (no cache) to hold the only slot.
	srv.Cache = nil
	var items []batchItem
	for i := 0; i < 512; i++ {
		items = append(items, batchItem{Kind: "path", Src: src, Dst: i % snap.N()})
	}
	body, _ := json.Marshal(batchReq{Queries: items})

	const workers, perWorker = 8, 6
	var ok200, shed429, other atomic64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					other.add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.add(1)
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						t.Error("shed response lacks Retry-After")
					}
					shed429.add(1)
				default:
					other.add(1)
				}
			}
		}()
	}
	wg.Wait()
	total := workers * perWorker
	if got := ok200.load() + shed429.load() + other.load(); got != int64(total) {
		t.Fatalf("answered %d of %d requests", got, total)
	}
	if other.load() != 0 {
		t.Fatalf("%d requests neither served nor shed", other.load())
	}
	if ok200.load() == 0 {
		t.Fatal("saturation shed everything; the slot holder should finish")
	}
	if got := int64(srv.Met.Shed.Value()); got != shed429.load() {
		t.Fatalf("shed metric %d != observed 429s %d", got, shed429.load())
	}
}

// atomic64 is a tiny helper to keep the saturation counts race-clean.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
