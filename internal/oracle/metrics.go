package oracle

import (
	"io"

	"repro/internal/faults"
	"repro/internal/obs"
)

// latencyBounds are the query-latency histogram bucket upper bounds in
// seconds: 10µs to ~2.6s in powers of 4, resolving both the in-memory
// point-lookup regime and the pathological tail.
var latencyBounds = []float64{
	10e-6, 40e-6, 160e-6, 640e-6, 2.56e-3, 10.24e-3, 40.96e-3, 163.84e-3, 655.36e-3, 2.62144,
}

// Metrics is the serving-layer instrument set, one obs.Registry underneath
// (the same encoder the engine's metrics sink uses, so /metrics output is
// scrape-compatible with the rest of the repository's dumps).
type Metrics struct {
	reg *obs.Registry

	// QueriesTotal counts finished queries by kind (dist | path | batch).
	distQ, pathQ, batchQ obs.Counter
	// Latency is observed once per finished query, in seconds.
	distLat, pathLat, batchLat obs.Histogram
	// Shed counts requests refused at admission (429).
	Shed obs.Counter
	// ErrorsTotal counts queries that returned a non-2xx status.
	Errors obs.Counter
	// CacheHits / CacheMisses mirror the path cache counters.
	cacheHits, cacheMisses obs.Counter
	// Generation is the serving snapshot generation; Swaps counts
	// publishes; Inflight the currently admitted requests.
	Generation obs.Gauge
	Swaps      obs.Counter
	Inflight   obs.Gauge
	// CheckpointLoad is the startup checkpoint's load wall time in seconds
	// (0 = the daemon did not load one).
	CheckpointLoad obs.Gauge
	// RecomputeFails counts recompute runs that errored (the server keeps
	// serving the previous generation — see healthz "stale").
	RecomputeFails obs.Counter
	// DeadlineExceeded counts queries cut off by the per-request deadline.
	DeadlineExceeded obs.Counter
	// DegradeLevel is the current load-shedding ladder rung (0 = full
	// service, 1 = path-cache inserts off, 2 = dist-only).
	DegradeLevel obs.Gauge
	// DegradedPaths counts path queries refused while dist-only degraded.
	DegradedPaths obs.Counter
	// physRetransmits / physDupDeliveries / physDataSends describe the
	// delivery shim's physical cost for the serving snapshot's computation
	// (all 0 when it ran over perfect delivery). Gauges, not counters: each
	// publish replaces them with the new snapshot's totals.
	physRetransmits, physDupDeliveries, physDataSends obs.Gauge
}

// NewMetrics registers the apspd instrument set on a fresh registry.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{reg: reg}
	const qh = "queries served, by kind"
	m.distQ = reg.Counter("apspd_queries_total", qh, obs.L("kind", "dist"))
	m.pathQ = reg.Counter("apspd_queries_total", qh, obs.L("kind", "path"))
	m.batchQ = reg.Counter("apspd_queries_total", qh, obs.L("kind", "batch"))
	const lh = "query latency in seconds, by kind"
	m.distLat = reg.Histogram("apspd_latency_seconds", lh, latencyBounds, obs.L("kind", "dist"))
	m.pathLat = reg.Histogram("apspd_latency_seconds", lh, latencyBounds, obs.L("kind", "path"))
	m.batchLat = reg.Histogram("apspd_latency_seconds", lh, latencyBounds, obs.L("kind", "batch"))
	m.Shed = reg.Counter("apspd_shed_total", "requests refused at admission (HTTP 429)")
	m.Errors = reg.Counter("apspd_errors_total", "queries answered with a non-2xx status")
	m.cacheHits = reg.Counter("apspd_path_cache_hits_total", "path cache hits")
	m.cacheMisses = reg.Counter("apspd_path_cache_misses_total", "path cache misses")
	m.Generation = reg.Gauge("apspd_snapshot_generation", "serving snapshot generation (0 = none)")
	m.Swaps = reg.Counter("apspd_snapshot_swaps_total", "snapshot publishes")
	m.Inflight = reg.Gauge("apspd_inflight_requests", "requests currently admitted")
	m.CheckpointLoad = reg.Gauge("apspd_checkpoint_load_seconds", "startup checkpoint load wall time (0 = none loaded)")
	m.RecomputeFails = reg.Counter("apspd_recompute_failures_total", "recompute runs that errored (previous generation kept serving)")
	m.DeadlineExceeded = reg.Counter("apspd_deadline_exceeded_total", "queries cut off by the per-request deadline")
	m.DegradeLevel = reg.Gauge("apspd_degrade_level", "load-shedding ladder rung (0 full, 1 no cache inserts, 2 dist-only)")
	m.DegradedPaths = reg.Counter("apspd_degraded_paths_total", "path queries refused while dist-only degraded")
	m.physRetransmits = reg.Gauge("apspd_compute_phys_retransmits", "delivery-shim retransmissions during the serving snapshot's computation")
	m.physDupDeliveries = reg.Gauge("apspd_compute_phys_dup_deliveries", "duplicate deliveries discarded during the serving snapshot's computation")
	m.physDataSends = reg.Gauge("apspd_compute_phys_data_sends", "first data transmissions during the serving snapshot's computation")
	return m
}

// SetPhys republishes the serving snapshot's physical-delivery cost
// (called on every publish; nil resets the gauges to perfect delivery).
func (m *Metrics) SetPhys(p *faults.PhysStats) {
	if p == nil {
		m.physRetransmits.Set(0)
		m.physDupDeliveries.Set(0)
		m.physDataSends.Set(0)
		return
	}
	m.physRetransmits.Set(float64(p.Retransmits))
	m.physDupDeliveries.Set(float64(p.DupDeliveries))
	m.physDataSends.Set(float64(p.DataSends))
}

// QueriesTotal sums the per-kind finished-query counters (the /debug/live
// QPS source).
func (m *Metrics) QueriesTotal() float64 {
	return m.distQ.Value() + m.pathQ.Value() + m.batchQ.Value()
}

// Query returns the (counter, histogram) pair for a query kind.
func (m *Metrics) Query(kind string) (obs.Counter, obs.Histogram) {
	switch kind {
	case "path":
		return m.pathQ, m.pathLat
	case "batch":
		return m.batchQ, m.batchLat
	default:
		return m.distQ, m.distLat
	}
}

// SyncCache republishes the cache's cumulative counters (called on each
// /metrics scrape; the counters are absolute, so set-via-add keeps the
// registry monotone without per-query overhead in the cache).
func (m *Metrics) SyncCache(c *PathCache) {
	if c == nil {
		return
	}
	hits, misses, _ := c.Stats()
	m.cacheHits.Add(float64(hits) - m.cacheHits.Value())
	m.cacheMisses.Add(float64(misses) - m.cacheMisses.Value())
}

// Write renders the instrument set in classic Prometheus text format.
func (m *Metrics) Write(w io.Writer) error { return m.reg.Write(w) }

// WriteOpenMetrics renders the instrument set in OpenMetrics format, with
// trace-ID exemplars on the latency histogram buckets.
func (m *Metrics) WriteOpenMetrics(w io.Writer) error { return m.reg.WriteOpenMetrics(w) }
