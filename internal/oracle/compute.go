package oracle

import (
	"context"
	"fmt"

	"repro/internal/bellman"
	"repro/internal/checkpoint"
	"repro/internal/compute"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/hssp"
	"repro/internal/scaling"
	"repro/internal/shortrange"
)

// ComputeSpec describes one oracle precomputation: which protocol family
// to run, over which sources, under which engine configuration. It mirrors
// cmd/apsprun's flag conventions (H == 0 means the per-algorithm default,
// nil Sources means all nodes, Plan in faults.Parse syntax) so a checkpoint
// written by apsprun resumes here unchanged.
type ComputeSpec struct {
	// Alg is the protocol family: pipeline | blocker | scaling |
	// shortrange | bellman. (approx is excluded: its result is a stretch
	// bound, not exact distances, and the oracle contract is exactness.)
	Alg string
	// Backend selects the compute substrate. "" and "congest" simulate
	// the protocol family on the message-passing engine; "parallel" runs
	// the centralized shared-memory backend (internal/compute), which
	// produces the same unrestricted exact matrices as the pipeline
	// family orders of magnitude faster — the production recompute path
	// at large n. The parallel backend rejects engine-only features:
	// hop bounds below n-1, fault plans, and checkpoint resume.
	Backend string
	// Sources are the query sources (nil = all nodes).
	Sources []int
	// H is the raw hop parameter (0 = per-algorithm default, exactly as
	// apsprun's -h; checkpoint metadata records this raw value).
	H int
	// Workers and Sched configure the engine (results are bit-identical
	// across both, so they are free to differ from the checkpointed run
	// only in Workers — Sched is validated).
	Workers int
	Sched   congest.Scheduler
	// Plan is an adversarial-delivery plan in faults.Parse syntax
	// ("" or "none" = perfect delivery); FaultSeed keys the fault PRF when
	// the plan carries no seed term.
	Plan      string
	FaultSeed int64
	// Resume is an engine snapshot to restart from (see LoadCheckpoint).
	Resume *congest.Snapshot
	// Obs optionally attaches an engine observer.
	Obs congest.Observer
}

// normalize expands the apsprun flag conventions against a concrete graph.
func (sp *ComputeSpec) normalize(g *graph.Graph) error {
	if sp.Sources == nil {
		sp.Sources = make([]int, g.N())
		for v := range sp.Sources {
			sp.Sources[v] = v
		}
	}
	for _, s := range sp.Sources {
		if s < 0 || s >= g.N() {
			return fmt.Errorf("oracle: source %d outside graph (n=%d)", s, g.N())
		}
	}
	switch sp.Alg {
	case "pipeline", "blocker", "scaling", "shortrange", "bellman":
	default:
		return fmt.Errorf("oracle: unknown algorithm %q (want pipeline | blocker | scaling | shortrange | bellman)", sp.Alg)
	}
	return nil
}

// hopBound resolves the effective hop parameter (apsprun's defaulting).
func (sp *ComputeSpec) hopBound(g *graph.Graph) int {
	if sp.H != 0 {
		return sp.H
	}
	switch sp.Alg {
	case "shortrange":
		return 8
	case "blocker", "scaling":
		return 0 // hssp chooses its own H; scaling has none
	default: // pipeline, bellman: unrestricted
		return g.N() - 1
	}
}

// network builds the adversarial-delivery shim for the spec's plan
// ("" or "none" = nil, perfect delivery) and returns the canonical plan
// string — the form checkpoint metadata records.
func (sp *ComputeSpec) network() (*faults.Network, string, error) {
	if sp.Plan == "" || sp.Plan == "none" {
		return nil, "", nil
	}
	plan, err := faults.Parse(sp.Plan)
	if err != nil {
		return nil, "", err
	}
	if plan.Seed == 0 {
		plan.Seed = sp.FaultSeed
	}
	fnet := faults.New(plan)
	return fnet, fnet.Plan.String(), nil
}

// Compute runs the spec's protocol family to completion and returns the
// result in BuildInput form, ready for Build. Families without parent
// records (blocker, scaling) yield distance-only inputs: /dist and /batch
// serve them, /path reports a typed error.
func Compute(ctx context.Context, g *graph.Graph, sp ComputeSpec) (BuildInput, error) {
	switch sp.Backend {
	case "", "congest":
	case "parallel":
		return computeParallel(ctx, g, sp)
	default:
		return BuildInput{}, fmt.Errorf("oracle: unknown backend %q (want congest | parallel)", sp.Backend)
	}
	if err := sp.normalize(g); err != nil {
		return BuildInput{}, err
	}
	fnet, _, err := sp.network()
	if err != nil {
		return BuildInput{}, err
	}
	var network congest.Network
	if fnet != nil {
		network = fnet
	}
	var pol *congest.CheckpointPolicy
	if sp.Resume != nil {
		pol = &congest.CheckpointPolicy{Resume: sp.Resume}
	}
	h := sp.hopBound(g)

	var in BuildInput
	switch sp.Alg {
	case "pipeline":
		res, err := core.Run(g, core.Opts{Sources: sp.Sources, H: h, Workers: sp.Workers,
			Scheduler: sp.Sched, Obs: sp.Obs, Network: network, Checkpoint: pol, Ctx: ctx})
		if err != nil {
			return BuildInput{}, err
		}
		in = BuildInput{Alg: sp.Alg, Sources: res.Sources, Dist: res.Dist,
			Hops: res.Hops, Parent: res.Parent, Stats: res.Stats}
	case "blocker":
		res, err := hssp.Run(g, hssp.Opts{Sources: sp.Sources, H: sp.H, Workers: sp.Workers,
			Scheduler: sp.Sched, Obs: sp.Obs, Network: network, Checkpoint: pol, Ctx: ctx})
		if err != nil {
			return BuildInput{}, err
		}
		in = BuildInput{Alg: sp.Alg, Sources: res.Sources, Dist: res.Dist, Stats: res.Stats}
	case "scaling":
		res, err := scaling.Run(g, scaling.Opts{Sources: sp.Sources, Workers: sp.Workers,
			Scheduler: sp.Sched, Obs: sp.Obs, Network: network, Checkpoint: pol, Ctx: ctx})
		if err != nil {
			return BuildInput{}, err
		}
		in = BuildInput{Alg: sp.Alg, Sources: res.Sources, Dist: res.Dist, Stats: res.Stats}
	case "shortrange":
		res, err := shortrange.Run(g, shortrange.Opts{Sources: sp.Sources, H: h, Workers: sp.Workers,
			Scheduler: sp.Sched, Obs: sp.Obs, Network: network, Checkpoint: pol, Ctx: ctx})
		if err != nil {
			return BuildInput{}, err
		}
		in = BuildInput{Alg: sp.Alg, Sources: sp.Sources, Dist: res.Dist,
			Hops: res.Hops, Parent: res.Parent, Stats: res.Stats}
	case "bellman":
		res, err := bellman.Run(g, bellman.Opts{Sources: sp.Sources, H: h, Workers: sp.Workers,
			Scheduler: sp.Sched, Obs: sp.Obs, Network: network, Checkpoint: pol, Ctx: ctx})
		if err != nil {
			return BuildInput{}, err
		}
		// Bellman–Ford records parents but not hop counts: path queries go
		// through the walker's nil-Hops mode (distance tightness only).
		in = BuildInput{Alg: sp.Alg, Sources: sp.Sources, Dist: res.Dist,
			Parent: res.Parent, Stats: res.Stats}
	default:
		return BuildInput{}, fmt.Errorf("oracle: unknown algorithm %q", sp.Alg)
	}
	if fnet != nil {
		// The shim's physical cost travels with the result: the serving
		// layer exports it (retransmits, duplicate deliveries) per snapshot.
		phys := fnet.Phys()
		in.Phys = &phys
	}
	return in, nil
}

// computeParallel is the Backend == "parallel" path: the centralized
// shared-memory backend of internal/compute. It computes the same
// lexicographic (dist, hops) matrices as the unrestricted pipeline family
// — bit-identical dist and hops, a parent tree valid under the same
// walker — without simulating any rounds, so the resulting snapshot
// carries zero engine Stats. Engine-only spec features are rejected
// rather than silently ignored. The run is not cancelable mid-kernel;
// ctx is checked once on entry.
func computeParallel(ctx context.Context, g *graph.Graph, sp ComputeSpec) (BuildInput, error) {
	if sp.Alg != "" && sp.Alg != "pipeline" {
		return BuildInput{}, fmt.Errorf("oracle: backend parallel computes unrestricted exact APSP; -alg %s needs the congest backend", sp.Alg)
	}
	if sp.Resume != nil {
		return BuildInput{}, fmt.Errorf("oracle: backend parallel cannot resume an engine checkpoint; use the congest backend")
	}
	if sp.Plan != "" && sp.Plan != "none" {
		return BuildInput{}, fmt.Errorf("oracle: backend parallel has no physical network to fault; use the congest backend")
	}
	if sp.H != 0 && sp.H < g.N()-1 {
		return BuildInput{}, fmt.Errorf("oracle: backend parallel is unrestricted (h >= n-1); hop bound %d needs the congest backend", sp.H)
	}
	if err := ctx.Err(); err != nil {
		return BuildInput{}, err
	}
	res, err := compute.APSP(g, compute.Opts{Sources: sp.Sources, Workers: sp.Workers})
	if err != nil {
		return BuildInput{}, err
	}
	return BuildInput{Alg: "parallel/" + string(res.Kernel), Sources: res.Sources,
		Dist: res.Dist, Hops: res.Hops, Parent: res.Parent}, nil
}

// LoadCheckpoint reads an apsprun checkpoint file, validates its metadata
// against the graph and spec (graph fingerprint, sources, hop parameter,
// fault plan, scheduler — the same gate apsprun -resume applies), and arms
// sp.Resume with the snapshot. When the checkpoint names an algorithm it
// must match sp.Alg; when sp.Alg is empty it is adopted from the
// checkpoint, so `apspd -load run.ckpt` needs no -alg flag.
//
// Checkpoints taken under scripted crash faults (apsprun -crash) carry
// disarmed-event state the oracle cannot replay and are rejected.
func LoadCheckpoint(path string, g *graph.Graph, sp *ComputeSpec) error {
	if sp.Backend == "parallel" {
		return fmt.Errorf("oracle: checkpoints are engine snapshots; -load needs the congest backend")
	}
	meta, snap, err := checkpoint.Load(path)
	if err != nil {
		return err
	}
	if sp.Alg == "" {
		sp.Alg = meta.Alg
	}
	if meta.Alg != "" && meta.Alg != sp.Alg {
		return fmt.Errorf("oracle: checkpoint %s was taken by -alg %s, not %s", path, meta.Alg, sp.Alg)
	}
	if len(meta.Disarmed) > 0 {
		return fmt.Errorf("oracle: checkpoint %s carries scripted crash-fault state; resume it with apsprun -resume instead", path)
	}
	if err := sp.normalize(g); err != nil {
		return err
	}
	_, planStr, err := sp.network()
	if err != nil {
		return err
	}
	if err := meta.ValidateAgainst(g, sp.Sources, sp.H, planStr, sp.Sched); err != nil {
		return err
	}
	sp.Resume = snap
	return nil
}
