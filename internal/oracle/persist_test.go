package oracle

import (
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// saveLoadPair builds a snapshot, saves it, and loads it back.
func saveLoadPair(t *testing.T, in BuildInput, g *graph.Graph, fp uint64) (*Snapshot, *Snapshot, string) {
	t.Helper()
	snap, err := Build(g, in, BuildOpts{Fingerprint: fp})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	(&Store{}).Publish(snap)
	path := filepath.Join(t.TempDir(), "a.snap")
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	got, err := LoadSnapshot(path, g, fp)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	return snap, got, path
}

func assertSameAnswers(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if got.Alg() != want.Alg() || got.N() != want.N() || got.K() != want.K() ||
		got.Fingerprint() != want.Fingerprint() ||
		got.HasPaths() != want.HasPaths() || got.HasHops() != want.HasHops() {
		t.Fatalf("identity mismatch: got %s n=%d k=%d fp=%x paths=%v hops=%v",
			got.Alg(), got.N(), got.K(), got.Fingerprint(), got.HasPaths(), got.HasHops())
	}
	for row := 0; row < want.K(); row++ {
		for v := 0; v < want.N(); v++ {
			if got.DistAt(row, v) != want.DistAt(row, v) {
				t.Fatalf("dist(%d,%d) = %d, want %d", row, v, got.DistAt(row, v), want.DistAt(row, v))
			}
			if !want.HasPaths() {
				continue
			}
			wp, werr := want.Path(row, v)
			gp, gerr := got.Path(row, v)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("path(%d,%d) errors diverge: %v vs %v", row, v, werr, gerr)
			}
			if len(wp) != len(gp) {
				t.Fatalf("path(%d,%d) lengths diverge: %d vs %d", row, v, len(wp), len(gp))
			}
			for i := range wp {
				if wp[i] != gp[i] {
					t.Fatalf("path(%d,%d)[%d] = %d, want %d", row, v, i, gp[i], wp[i])
				}
			}
		}
	}
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	g, _, in := testInput(t, 24, 72, 11, []int{0, 3, 7, 11, 23})
	want, got, _ := saveLoadPair(t, in, g, 0xfeedbeef)
	assertSameAnswers(t, want, got)
	if got.Stats().Rounds != want.Stats().Rounds {
		t.Fatalf("stats dropped: rounds %d vs %d", got.Stats().Rounds, want.Stats().Rounds)
	}
}

func TestSnapshotSaveLoadDistOnly(t *testing.T) {
	g, _, in := testInput(t, 16, 48, 5, []int{0, 5, 9})
	in.Hops, in.Parent = nil, nil
	want, got, _ := saveLoadPair(t, in, g, 0)
	if got.HasPaths() || got.HasHops() {
		t.Fatal("dist-only snapshot grew columns in transit")
	}
	assertSameAnswers(t, want, got)
}

// TestSnapshotTornWriteSweep truncates the file at EVERY byte boundary
// and requires each load to fail loudly with ErrCorruptSnapshot — a torn
// write (crash mid-save without the rename discipline) must never parse
// as a shorter-but-plausible snapshot.
func TestSnapshotTornWriteSweep(t *testing.T) {
	g, _, in := testInput(t, 8, 24, 3, []int{0, 5})
	_, _, path := saveLoadPair(t, in, g, 7)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.snap")
	for cut := 0; cut < len(whole); cut++ {
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, lerr := LoadSnapshot(torn, g, 0); !errors.Is(lerr, ErrCorruptSnapshot) {
			t.Fatalf("truncation at byte %d of %d: err = %v, want ErrCorruptSnapshot", cut, len(whole), lerr)
		}
	}
}

func TestSnapshotBitFlipSweep(t *testing.T) {
	g, _, in := testInput(t, 8, 24, 3, []int{0, 5})
	_, _, path := saveLoadPair(t, in, g, 7)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(t.TempDir(), "flip.snap")
	// Flip one bit in every 7th byte (a full per-bit sweep is slow and
	// adds nothing: the checksum catches any single flip the same way).
	for off := 0; off < len(whole); off += 7 {
		mut := append([]byte(nil), whole...)
		mut[off] ^= 1 << (off % 8)
		if err := os.WriteFile(flipped, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, lerr := LoadSnapshot(flipped, g, 0); !errors.Is(lerr, ErrCorruptSnapshot) {
			t.Fatalf("bit flip at byte %d: err = %v, want ErrCorruptSnapshot", off, lerr)
		}
	}
}

func TestSnapshotFingerprintMismatch(t *testing.T) {
	g, _, in := testInput(t, 16, 48, 5, []int{0, 5})
	_, _, path := saveLoadPair(t, in, g, 42)
	if _, err := LoadSnapshot(path, g, 43); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("fingerprint mismatch err = %v, want ErrSnapshotMismatch", err)
	}
	// Wrong graph size is a mismatch too, not corruption.
	g2 := graph.Random(10, 20, graph.GenOpts{MaxW: 8, Seed: 9, Directed: true})
	if _, err := LoadSnapshot(path, g2, 0); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("graph-size mismatch err = %v, want ErrSnapshotMismatch", err)
	}
}

func TestRecoverDirQuarantinesCorrupt(t *testing.T) {
	g, _, in := testInput(t, 16, 48, 5, []int{0, 5, 9})
	snap, err := Build(g, in, BuildOpts{Fingerprint: 1})
	if err != nil {
		t.Fatal(err)
	}
	(&Store{}).Publish(snap)
	dir := t.TempDir()
	older, err := SaveToDir(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	newer, err := SaveToDir(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the newest file: recovery must quarantine it and fall back to
	// the older valid generation.
	whole, _ := os.ReadFile(newer)
	if err := os.WriteFile(newer, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))
	got, path, err := RecoverDir(dir, g, 1, log)
	if err != nil {
		t.Fatalf("RecoverDir: %v", err)
	}
	if got == nil || path != older {
		t.Fatalf("recovered %q, want fallback to %q", path, older)
	}
	assertSameAnswers(t, snap, got)
	if _, err := os.Stat(newer + QuarantineSuffix); err != nil {
		t.Fatalf("torn file not quarantined: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() == filepath.Base(newer) {
			t.Fatal("torn file still present under its snapshot name")
		}
	}
}

func TestRecoverDirColdBoot(t *testing.T) {
	g, _, _ := testInput(t, 8, 24, 3, []int{0})
	if snap, path, err := RecoverDir(t.TempDir(), g, 0, nil); snap != nil || path != "" || err != nil {
		t.Fatalf("empty dir: got (%v, %q, %v), want cold boot", snap, path, err)
	}
	if snap, path, err := RecoverDir(filepath.Join(t.TempDir(), "missing"), g, 0, nil); snap != nil || path != "" || err != nil {
		t.Fatalf("missing dir: got (%v, %q, %v), want cold boot", snap, path, err)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	g, _, in := testInput(t, 8, 24, 3, []int{0, 5})
	snap, err := Build(g, in, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 5; i++ {
		p, err := SaveToDir(dir, snap)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// A quarantined file must survive pruning.
	evidence := filepath.Join(dir, "old.snap"+QuarantineSuffix)
	if err := os.WriteFile(evidence, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	left, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Fatalf("%d snapshots left, want 2: %v", len(left), left)
	}
	for _, p := range left {
		if p != paths[3] && p != paths[4] {
			t.Fatalf("pruning kept %q, want the two newest of %v", p, paths)
		}
	}
	if _, err := os.Stat(evidence); err != nil {
		t.Fatalf("quarantined file pruned: %v", err)
	}
	if err := Prune(dir, 0); err != nil {
		t.Fatalf("Prune(keep=0): %v", err)
	}
	if left, _ = listSnapshots(dir); len(left) != 2 {
		t.Fatal("Prune(keep<=0) must be a no-op")
	}
}

func TestSaveSnapshotLeavesNoTempDebris(t *testing.T) {
	g, _, in := testInput(t, 8, 24, 3, []int{0})
	snap, err := Build(g, in, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveSnapshot(filepath.Join(dir, "a.snap"), snap); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp debris left behind: %s", e.Name())
		}
	}
}
