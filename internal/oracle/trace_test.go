package oracle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// spanSink captures emitted traces in memory for assertions.
type spanSink struct {
	mu     sync.Mutex
	traces [][]trace.SpanRecord
}

func (m *spanSink) Trace(spans []trace.SpanRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.traces = append(m.traces, spans)
	return nil
}

func (m *spanSink) Close() error { return nil }

func (m *spanSink) all() [][]trace.SpanRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([][]trace.SpanRecord(nil), m.traces...)
}

// tracedServer is newTestServer plus an always-sample tracer feeding a
// memory sink.
func tracedServer(t *testing.T, tweak func(*Server)) (*httptest.Server, *Server, *Snapshot, *spanSink) {
	t.Helper()
	sink := &spanSink{}
	tracer := trace.New(trace.Options{SampleEvery: 1, Seed: 99, Sinks: []trace.Sink{sink}})
	ts, srv, snap := newTestServer(t, func(s *Server) {
		s.Tracer = tracer
		if tweak != nil {
			tweak(s)
		}
	})
	t.Cleanup(func() { tracer.Close() })
	return ts, srv, snap, sink
}

// spanNames maps name -> record for a single trace's spans.
func spanNames(spans []trace.SpanRecord) map[string]trace.SpanRecord {
	out := make(map[string]trace.SpanRecord, len(spans))
	for _, s := range spans {
		out[s.Name] = s
	}
	return out
}

func TestServerTracedPathSpanTree(t *testing.T) {
	ts, _, snap, sink := tracedServer(t, nil)
	src := snap.Sources()[1]
	row, _ := snap.Row(src)
	dst := -1
	for v := 0; v < snap.N(); v++ {
		if p, err := snap.Path(row, v); err == nil && len(p) >= 2 {
			dst = v
			break
		}
	}
	if dst < 0 {
		t.Fatal("no reachable multi-hop destination in fixture")
	}

	url := fmt.Sprintf("%s/path?src=%d&dst=%d", ts.URL, src, dst)
	for i, wantHit := range []string{"false", "true"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status %d", i, resp.StatusCode)
		}
		if hdr := resp.Header.Get(trace.TraceparentHeader); hdr == "" {
			t.Fatalf("request %d: no traceparent echoed", i)
		} else if _, _, sampled, ok := trace.ParseTraceparent(hdr); !ok || !sampled {
			t.Fatalf("request %d: echoed traceparent %q invalid or unsampled", i, hdr)
		}

		traces := sink.all()
		if len(traces) != i+1 {
			t.Fatalf("request %d: %d traces emitted", i, len(traces))
		}
		spans := traces[i]
		byName := spanNames(spans)
		root, ok := byName["serve.path"]
		if !ok || root.Parent != "" {
			t.Fatalf("request %d: no serve.path root in %v", i, byName)
		}
		if root.Attrs["http.status"] != "200" || root.Attrs["gen"] == "" {
			t.Fatalf("request %d: root attrs %v", i, root.Attrs)
		}
		probe, ok := byName["cache.probe"]
		if !ok || probe.Parent != root.SpanID {
			t.Fatalf("request %d: cache.probe missing or misparented: %+v", i, probe)
		}
		if probe.Attrs["hit"] != wantHit {
			t.Fatalf("request %d: cache.probe hit=%q, want %q", i, probe.Attrs["hit"], wantHit)
		}
		walk, walked := byName["walk"]
		if wantHit == "false" {
			if !walked || walk.Parent != root.SpanID {
				t.Fatalf("cold request: walk span missing or misparented: %+v", walk)
			}
			if walk.Attrs["hops"] == "" {
				t.Fatalf("cold request: walk lacks hops attr: %v", walk.Attrs)
			}
		} else if walked {
			t.Fatalf("cached request still walked parents: %+v", walk)
		}
	}
}

func TestServerTracedDistLookup(t *testing.T) {
	ts, _, snap, sink := tracedServer(t, nil)
	src := snap.Sources()[0]
	if status := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=1", ts.URL, src), nil); status != http.StatusOK {
		t.Fatalf("dist status %d", status)
	}
	traces := sink.all()
	if len(traces) != 1 {
		t.Fatalf("%d traces emitted", len(traces))
	}
	byName := spanNames(traces[0])
	root, ok := byName["serve.dist"]
	if !ok {
		t.Fatalf("no serve.dist root in %v", byName)
	}
	if lk, ok := byName["lookup"]; !ok || lk.Parent != root.SpanID {
		t.Fatalf("lookup span missing or misparented: %+v", lk)
	}
}

func TestServerTraceparentExtraction(t *testing.T) {
	ts, _, snap, sink := tracedServer(t, nil)
	const upstream = "11f92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("GET", fmt.Sprintf("%s/dist?src=%d&dst=3", ts.URL, snap.Sources()[0]), nil)
	req.Header.Set(trace.TraceparentHeader, trace.FormatTraceparent(upstream, "00f067aa0ba902b7", true))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	id, _, sampled, ok := trace.ParseTraceparent(resp.Header.Get(trace.TraceparentHeader))
	if !ok || id != upstream || !sampled {
		t.Fatalf("echoed traceparent %q does not continue upstream trace %s",
			resp.Header.Get(trace.TraceparentHeader), upstream)
	}
	traces := sink.all()
	if len(traces) != 1 || traces[0][0].TraceID != upstream {
		t.Fatalf("emitted trace does not carry upstream ID: %v", traces)
	}
}

func TestServerErrorTracedAndCounted(t *testing.T) {
	ts, _, _, sink := tracedServer(t, nil)
	if status := getJSON(t, ts.URL+"/dist?src=0&dst=99999", nil); status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	traces := sink.all()
	if len(traces) != 1 {
		t.Fatalf("%d traces emitted", len(traces))
	}
	root := traces[0][0]
	if root.Err == "" || root.Attrs["http.status"] != "400" {
		t.Fatalf("failed request's root span not marked: %+v", root)
	}
}

func TestServerBatchSegmentSpans(t *testing.T) {
	ts, _, snap, sink := tracedServer(t, nil)
	src := snap.Sources()[0]
	var queries []batchItem
	for v := 0; v < snap.N(); v++ {
		queries = append(queries, batchItem{Kind: "dist", Src: src, Dst: v})
	}
	body, _ := json.Marshal(batchReq{Queries: queries})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	traces := sink.all()
	if len(traces) != 1 {
		t.Fatalf("%d traces emitted, want 1 (per-query spans must be suppressed)", len(traces))
	}
	byName := spanNames(traces[0])
	root, ok := byName["serve.batch"]
	if !ok {
		t.Fatalf("no serve.batch root in %v", byName)
	}
	if root.Attrs["queries"] != fmt.Sprint(len(queries)) {
		t.Fatalf("root queries attr %q, want %d", root.Attrs["queries"], len(queries))
	}
	segs := 0
	for _, s := range traces[0] {
		switch s.Name {
		case "batch.segment":
			segs++
			if s.Parent != root.SpanID || s.Attrs["offset"] == "" {
				t.Fatalf("segment span malformed: %+v", s)
			}
		case "cache.probe", "walk", "lookup":
			t.Fatalf("per-query span %q leaked into batch trace", s.Name)
		}
	}
	if segs != 1 {
		t.Fatalf("%d batch.segment spans for %d queries, want 1", segs, len(queries))
	}
}

func TestServerSlowQueryLogCarriesTraceID(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	handler, err := obs.NewLogHandler(lockedWriter, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	ts, _, snap, sink := tracedServer(t, func(s *Server) {
		s.Log = slog.New(trace.LogHandler(handler))
		s.SlowQuery = time.Nanosecond // everything is slow
	})
	if status := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=1", ts.URL, snap.Sources()[0]), nil); status != http.StatusOK {
		t.Fatalf("dist status %d", status)
	}
	traces := sink.all()
	if len(traces) != 1 {
		t.Fatalf("%d traces emitted", len(traces))
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	var rec struct {
		Msg     string `json:"msg"`
		Kind    string `json:"kind"`
		TraceID string `json:"trace_id"`
	}
	line := ""
	for _, l := range strings.Split(logged, "\n") {
		if strings.Contains(l, `"slow query"`) {
			line = l
			break
		}
	}
	if line == "" {
		t.Fatalf("no slow-query line in log output %q", logged)
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("bad slow-query log line %q: %v", line, err)
	}
	if rec.Msg != "slow query" || rec.Kind != "dist" {
		t.Fatalf("slow-query record %+v", rec)
	}
	if rec.TraceID != traces[0][0].TraceID {
		t.Fatalf("log trace_id %q != emitted trace %q", rec.TraceID, traces[0][0].TraceID)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServerExemplarInOpenMetrics(t *testing.T) {
	ts, _, snap, sink := tracedServer(t, nil)
	if status := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=2", ts.URL, snap.Sources()[0]), nil); status != http.StatusOK {
		t.Fatalf("dist status %d", status)
	}
	traces := sink.all()
	if len(traces) != 1 {
		t.Fatalf("%d traces emitted", len(traces))
	}
	traceID := traces[0][0].TraceID

	// OpenMetrics negotiation carries the exemplar and the EOF marker.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("openmetrics Content-Type %q", ct)
	}
	want := fmt.Sprintf(`# {trace_id="%s"}`, traceID)
	if !strings.Contains(string(om), want) {
		t.Fatalf("openmetrics output lacks exemplar %s:\n%s", want, om)
	}
	if !strings.HasSuffix(strings.TrimRight(string(om), "\n"), "# EOF") {
		t.Fatal("openmetrics output lacks # EOF terminator")
	}

	// The classic exposition must stay exemplar-free for old scrapers.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	classic, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("classic Content-Type %q", ct)
	}
	if strings.Contains(string(classic), "# {") || strings.Contains(string(classic), "# EOF") {
		t.Fatal("classic exposition leaked OpenMetrics syntax")
	}
}

func TestServerUntracedHasNoTraceHeaders(t *testing.T) {
	ts, _, snap := newTestServer(t, nil) // no tracer wired
	resp, err := http.Get(fmt.Sprintf("%s/dist?src=%d&dst=1", ts.URL, snap.Sources()[0]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dist status %d", resp.StatusCode)
	}
	if hdr := resp.Header.Get(trace.TraceparentHeader); hdr != "" {
		t.Fatalf("untraced server echoed traceparent %q", hdr)
	}
}
