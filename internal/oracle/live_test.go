package oracle

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/congest"
)

// readSSE consumes up to n `data:` events from an event-stream response.
func readSSE(t *testing.T, url string, n int) []liveEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	var events []liveEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && len(events) < n {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev liveEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

func TestServerLiveStream(t *testing.T) {
	ts, srv, snap := newTestServer(t, func(s *Server) {
		s.Progress = &congest.Progress{}
	})
	src := snap.Sources()[0]
	if status := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=1", ts.URL, src), nil); status != http.StatusOK {
		t.Fatalf("warm-up query status %d", status)
	}

	events := readSSE(t, ts.URL+"/debug/live?interval=50ms&n=3", 3)
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Gen != snap.Gen() {
			t.Fatalf("event %d gen %d, want %d", i, ev.Gen, snap.Gen())
		}
		if ev.Alg != snap.Alg() {
			t.Fatalf("event %d alg %q, want %q", i, ev.Alg, snap.Alg())
		}
		if ev.Queries < 1 {
			t.Fatalf("event %d queries %d, want >= 1", i, ev.Queries)
		}
		if ev.Recomputing {
			t.Fatalf("event %d claims a recompute is running", i)
		}
		if ev.Progress == nil {
			t.Fatalf("event %d lacks an engine progress snapshot", i)
		}
	}

	// The heartbeat reflects engine progress while a "recompute" runs.
	srv.Progress.Reset()
	srv.Progress.RunStart(snap.N())
	for i := 0; i < 4; i++ {
		srv.Progress.RoundDone(congest.RoundEvent{Round: i + 1, Sent: 10})
	}
	ev := readSSE(t, ts.URL+"/debug/live?interval=50ms&n=1", 1)[0]
	if !ev.Progress.Running || ev.Progress.Rounds != 4 || ev.Progress.Messages != 40 {
		t.Fatalf("mid-recompute progress %+v", ev.Progress)
	}
	if int64(snap.Stats().Rounds) > 4 && ev.EtaNS <= 0 {
		t.Fatalf("no ETA despite %d expected rounds: %+v", snap.Stats().Rounds, ev)
	}
	srv.Progress.Done()
	ev = readSSE(t, ts.URL+"/debug/live?interval=50ms&n=1", 1)[0]
	if ev.Progress.Running || ev.EtaNS != 0 {
		t.Fatalf("post-recompute event still running: %+v", ev)
	}
}

func TestServerLiveBadParams(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	for _, q := range []string{"interval=banana", "interval=-1s", "n=banana", "n=-2"} {
		if status := getJSON(t, ts.URL+"/debug/live?"+q, nil); status != http.StatusBadRequest {
			t.Errorf("/debug/live?%s: status %d, want 400", q, status)
		}
	}
}

func TestServerLiveNoProgressWired(t *testing.T) {
	ts, _, _ := newTestServer(t, nil) // Progress left nil
	ev := readSSE(t, ts.URL+"/debug/live?n=1", 1)[0]
	if ev.Progress != nil || ev.EtaNS != 0 {
		t.Fatalf("progress reported without a wired Progress: %+v", ev)
	}
}
