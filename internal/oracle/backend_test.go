package oracle

import (
	"context"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

// TestParallelBackendMatchesCongest is the oracle-level wiring gate: a
// snapshot bootstrapped through Backend "parallel" answers exactly like
// one computed on the simulated engine — same dist and hops bit for bit,
// and a parent tree the same walker accepts.
func TestParallelBackendMatchesCongest(t *testing.T) {
	g := graph.Random(28, 100, graph.GenOpts{Seed: 21, MaxW: 9, ZeroFrac: 0.2, Directed: true})
	engine, err := Compute(context.Background(), g, ComputeSpec{Alg: "pipeline"})
	if err != nil {
		t.Fatalf("congest backend: %v", err)
	}
	par, err := Compute(context.Background(), g, ComputeSpec{Alg: "pipeline", Backend: "parallel", Workers: 4})
	if err != nil {
		t.Fatalf("parallel backend: %v", err)
	}
	if !strings.HasPrefix(par.Alg, "parallel/") {
		t.Fatalf("parallel backend labeled %q", par.Alg)
	}
	for i := range engine.Dist {
		for v := range engine.Dist[i] {
			if par.Dist[i][v] != engine.Dist[i][v] {
				t.Fatalf("dist(%d,%d): parallel %d, engine %d", i, v, par.Dist[i][v], engine.Dist[i][v])
			}
			if par.Hops[i][v] != engine.Hops[i][v] {
				t.Fatalf("hops(%d,%d): parallel %d, engine %d", i, v, par.Hops[i][v], engine.Hops[i][v])
			}
		}
	}
	snap, err := Build(g, par, BuildOpts{})
	if err != nil {
		t.Fatalf("Build from parallel backend: %v", err)
	}
	if !snap.HasPaths() || !snap.HasHops() {
		t.Fatal("parallel snapshot should carry parents and hops")
	}
	for v := 0; v < g.N(); v++ {
		if snap.DistAt(3, v) >= graph.Inf {
			continue
		}
		if _, err := snap.Path(3, v); err != nil {
			t.Fatalf("Path(3,%d) through parallel snapshot: %v", v, err)
		}
	}
}

// TestParallelBackendRejectsEngineFeatures pins the contract that
// engine-only spec features fail loudly on the parallel backend instead
// of being silently ignored.
func TestParallelBackendRejectsEngineFeatures(t *testing.T) {
	g := graph.Random(12, 30, graph.GenOpts{Seed: 3, MaxW: 5, Directed: true})
	ctx := context.Background()
	cases := map[string]ComputeSpec{
		"hop-bounded alg": {Alg: "shortrange", Backend: "parallel"},
		"fault plan":      {Alg: "pipeline", Backend: "parallel", Plan: "delay=2"},
		"small h":         {Alg: "pipeline", Backend: "parallel", H: 3},
		"resume":          {Alg: "pipeline", Backend: "parallel", Resume: &congest.Snapshot{}},
		"unknown backend": {Alg: "pipeline", Backend: "gpu"},
	}
	for name, sp := range cases {
		if _, err := Compute(ctx, g, sp); err == nil {
			t.Errorf("%s: accepted by parallel backend", name)
		}
	}
	// h >= n-1 is explicitly fine: it is the unrestricted run.
	if _, err := Compute(ctx, g, ComputeSpec{Backend: "parallel", H: g.N() - 1}); err != nil {
		t.Fatalf("unrestricted h rejected: %v", err)
	}
	// -load is an engine snapshot: the gate sits in LoadCheckpoint.
	sp := ComputeSpec{Backend: "parallel"}
	if err := LoadCheckpoint("nonexistent.ckpt", g, &sp); err == nil || !strings.Contains(err.Error(), "congest backend") {
		t.Fatalf("LoadCheckpoint with parallel backend: %v", err)
	}
}
