package oracle

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseExposition extracts `name{labels} value` samples from a classic
// text exposition, failing on any line that is neither a comment nor a
// well-formed sample.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	return out
}

// TestServerScrapeUnderLoad hammers /batch while /metrics is scraped and
// fresh snapshots are hot-swapped in, all at once; run under -race this is
// the data-race check, and every scrape must stay parseable with the
// monotone series (queries, swaps) never moving backwards.
func TestServerScrapeUnderLoad(t *testing.T) {
	g, _, in := testInput(t, 16, 48, 21, []int{0, 2, 5, 9})
	snap, err := Build(g, in, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Store: &Store{}, Cache: NewPathCache(128), Met: NewMetrics(), MaxInflight: 64}
	srv.Publish(snap)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	src := snap.Sources()[0]
	var queries []batchItem
	for v := 0; v < snap.N(); v++ {
		queries = append(queries, batchItem{Kind: "dist", Src: src, Dst: v})
		queries = append(queries, batchItem{Kind: "path", Src: src, Dst: v})
	}
	body, _ := json.Marshal(batchReq{Queries: queries})

	const (
		batchWorkers = 4
		batchesEach  = 25
		swaps        = 20
		scrapes      = 40
	)
	var wg sync.WaitGroup

	for w := 0; w < batchWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < batchesEach; i++ {
				resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			fresh, err := Build(g, in, BuildOpts{})
			if err != nil {
				t.Errorf("rebuild %d: %v", i, err)
				return
			}
			srv.Publish(fresh)
			time.Sleep(time.Millisecond)
		}
	}()

	scrape := func(accept string) string {
		req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("scrape: %v", err)
			return ""
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("scrape status %d", resp.StatusCode)
		}
		return string(b)
	}

	wg.Add(1)
	var mu sync.Mutex
	var exposures []map[string]float64
	go func() {
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			accept := ""
			if i%2 == 1 {
				accept = "application/openmetrics-text"
			}
			body := scrape(accept)
			if body == "" {
				return
			}
			if accept != "" {
				// Strip OpenMetrics-only syntax before the shared parser.
				var classic []string
				for _, line := range strings.Split(body, "\n") {
					if line == "# EOF" {
						continue
					}
					if idx := strings.Index(line, " # {"); idx >= 0 {
						line = line[:idx]
					}
					classic = append(classic, line)
				}
				body = strings.Join(classic, "\n")
			}
			samples := parseExposition(t, body)
			mu.Lock()
			exposures = append(exposures, samples)
			mu.Unlock()
			time.Sleep(500 * time.Microsecond)
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	if len(exposures) != scrapes {
		t.Fatalf("%d scrapes recorded, want %d", len(exposures), scrapes)
	}
	monotone := []string{
		`apspd_queries_total{kind="batch"}`,
		`apspd_snapshot_swaps_total`,
		`apspd_errors_total`,
	}
	for _, name := range monotone {
		prev := -1.0
		seen := false
		for i, samples := range exposures {
			v, ok := samples[name]
			if !ok {
				continue
			}
			seen = true
			if v < prev {
				t.Errorf("%s moved backwards at scrape %d: %v -> %v", name, i, prev, v)
			}
			prev = v
		}
		if !seen {
			t.Errorf("series %s never appeared in any scrape", name)
		}
	}

	// The scraper may finish before the last batches do, so re-scrape once
	// everything is quiet for the exact totals.
	final := parseExposition(t, scrape(""))
	if got := final[`apspd_queries_total{kind="batch"}`]; got != float64(batchWorkers*batchesEach) {
		t.Errorf(`apspd_queries_total{kind="batch"} = %v, want %d`, got, batchWorkers*batchesEach)
	}
	if got := final[`apspd_snapshot_swaps_total`]; got != float64(swaps+1) {
		t.Errorf("apspd_snapshot_swaps_total = %v, want %d", got, swaps+1)
	}
}
