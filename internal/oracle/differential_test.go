package oracle

import (
	"context"
	"errors"
	"testing"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/graph"
)

// TestDifferentialAllFamilies is the oracle's conformance gate: for every
// protocol family, every answer the snapshot serves must be byte-equal to
// the in-memory result it was built from — distances against the Dist
// matrix, paths (where the family records parents) against the shared
// walker run directly over the matrices, error kinds included. Families
// without parent records must refuse path queries with a typed error, not
// improvise.
func TestDifferentialAllFamilies(t *testing.T) {
	g := graph.Random(20, 64, graph.GenOpts{MaxW: 8, ZeroFrac: 0.25, Seed: 11, Directed: true})
	sources := []int{0, 3, 9, 17}

	families := []struct {
		alg      string
		h        int
		wantPath bool
		wantHops bool
	}{
		{"pipeline", 0, true, true},
		{"blocker", 0, false, false},
		{"scaling", 0, false, false},
		{"shortrange", 0, true, true}, // h=0 → default 8: hop-limited but self-consistent
		{"bellman", 0, true, false},
	}
	for _, fam := range families {
		t.Run(fam.alg, func(t *testing.T) {
			in, err := Compute(context.Background(), g, ComputeSpec{Alg: fam.alg, Sources: sources, H: fam.h})
			if err != nil {
				t.Fatalf("Compute(%s): %v", fam.alg, err)
			}
			snap, err := Build(g, in, BuildOpts{ShardBits: 1})
			if err != nil {
				t.Fatalf("Build(%s): %v", fam.alg, err)
			}
			if snap.HasPaths() != fam.wantPath || snap.HasHops() != fam.wantHops {
				t.Fatalf("%s capabilities paths=%v hops=%v, want %v/%v",
					fam.alg, snap.HasPaths(), snap.HasHops(), fam.wantPath, fam.wantHops)
			}

			// Distances: byte-equal to the in-memory matrix, every pair.
			for i := range in.Sources {
				for v := 0; v < g.N(); v++ {
					if got := snap.DistAt(i, v); got != in.Dist[i][v] {
						t.Fatalf("%s DistAt(%d,%d) = %d, in-memory %d", fam.alg, i, v, got, in.Dist[i][v])
					}
				}
			}

			if !fam.wantPath {
				if _, err := snap.Path(0, 1); !errors.Is(err, core.ErrPathMalformed) {
					t.Fatalf("%s path query returned %v, want ErrPathMalformed", fam.alg, err)
				}
				return
			}

			// Paths: the snapshot walk must agree with the walker applied to
			// the in-memory matrices — same nodes or same typed error kind.
			pv := core.PathView{
				Sources: in.Sources,
				Dist:    func(i, v int) int64 { return in.Dist[i][v] },
				Parent:  func(i, v int) int { return in.Parent[i][v] },
			}
			if in.Hops != nil {
				pv.Hops = func(i, v int) int64 { return in.Hops[i][v] }
			}
			for i := range in.Sources {
				for v := 0; v < g.N(); v++ {
					want, wantErr := core.WalkParents(g, pv, i, v)
					got, gotErr := snap.Path(i, v)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s (%d,%d): oracle err %v, in-memory err %v", fam.alg, i, v, gotErr, wantErr)
					}
					if wantErr != nil {
						var pe *core.PathError
						if !errors.As(wantErr, &pe) || !errors.Is(gotErr, pe.Kind) {
							t.Fatalf("%s (%d,%d): error kind diverged: oracle %v, in-memory %v", fam.alg, i, v, gotErr, wantErr)
						}
						continue
					}
					if len(want) != len(got) {
						t.Fatalf("%s (%d,%d): path %v vs %v", fam.alg, i, v, got, want)
					}
					for j := range want {
						if want[j] != got[j] {
							t.Fatalf("%s (%d,%d): path %v vs %v", fam.alg, i, v, got, want)
						}
					}
				}
			}
		})
	}
}

// TestDifferentialExactFamiliesVsReference pins the exact (unrestricted)
// families to one parallel-backend reference matrix (itself validated
// against sequential Dijkstra in internal/compute), so the serving
// layer's provenance chain reaches ground truth without a per-query
// Dijkstra per family.
func TestDifferentialExactFamiliesVsReference(t *testing.T) {
	g := graph.Random(18, 54, graph.GenOpts{MaxW: 7, ZeroFrac: 0.2, Seed: 4, Directed: true})
	sources := []int{1, 6, 12}
	ref, err := compute.APSP(g, compute.Opts{Sources: sources})
	if err != nil {
		t.Fatalf("reference backend: %v", err)
	}
	for _, alg := range []string{"pipeline", "blocker", "scaling", "bellman"} {
		in, err := Compute(context.Background(), g, ComputeSpec{Alg: alg, Sources: sources})
		if err != nil {
			t.Fatalf("Compute(%s): %v", alg, err)
		}
		snap, err := Build(g, in, BuildOpts{})
		if err != nil {
			t.Fatalf("Build(%s): %v", alg, err)
		}
		for i, s := range sources {
			for v := 0; v < g.N(); v++ {
				if got := snap.DistAt(i, v); got != ref.Dist[i][v] {
					t.Fatalf("%s dist(%d,%d) = %d, reference %d", alg, s, v, got, ref.Dist[i][v])
				}
			}
		}
	}
}
