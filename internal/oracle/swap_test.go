package oracle

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestHotSwapUnderLoad is the zero-downtime gate: 10k queries race an
// aggressive stream of snapshot swaps, and every single one must succeed
// (no 5xx, no shed) and be answered wholly by one published generation —
// never a torn or intermediate state. Distances differ between the two
// graphs, so a mixed answer would be caught by the per-generation oracle
// check, not just the gen field.
func TestHotSwapUnderLoad(t *testing.T) {
	sources := []int{0, 3, 7}
	gA, _, inA := testInput(t, 16, 48, 31, sources)
	snapA, err := Build(gA, inA, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	gB, _, inB := testInput(t, 16, 48, 77, sources) // different seed → different distances
	snapB, err := Build(gB, inB, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}

	srv := &Server{Store: &Store{}, Cache: NewPathCache(256), Met: NewMetrics(),
		MaxInflight: 1024} // high ceiling: this gate must see zero sheds
	srv.Publish(snapA)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// wantByGen[gen][row][v] is the only acceptable answer for that gen.
	wantByGen := map[uint64][][]int64{snapA.Gen(): inA.Dist}

	const queries = 10_000
	const workers = 32
	var (
		done     atomic.Int64
		failures atomic.Int64
		mu       sync.Mutex
		firstErr string
	)
	report := func(format string, args ...any) {
		failures.Add(1)
		mu.Lock()
		if firstErr == "" {
			firstErr = fmt.Sprintf(format, args...)
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := ts.Client()
			for q := w; q < queries; q += workers {
				row := q % len(sources)
				v := q % 16
				url := fmt.Sprintf("%s/dist?src=%d&dst=%d", ts.URL, sources[row], v)
				resp, err := client.Get(url)
				if err != nil {
					report("query %d: %v", q, err)
					continue
				}
				var dr distResp
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					report("query %d: status %d, decode %v", q, resp.StatusCode, decErr)
					continue
				}
				mu.Lock()
				want, known := wantByGen[dr.Gen]
				mu.Unlock()
				if !known {
					report("query %d answered from unpublished generation %d", q, dr.Gen)
					continue
				}
				wantD := want[row][v]
				switch {
				case wantD >= graph.Inf:
					if dr.Reachable {
						report("query %d: gen %d should be unreachable, got %+v", q, dr.Gen, dr)
					}
				case dr.Dist == nil || *dr.Dist != wantD:
					report("query %d: gen %d dist %+v, want %d", q, dr.Gen, dr, wantD)
				}
				done.Add(1)
			}
		}(w)
	}

	// Swap continuously while the load runs: A and B alternate, and each
	// publish lands mid-traffic.
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		next := []*Snapshot{snapB, snapA}
		for i := 0; done.Load()+failures.Add(0) < queries; i++ {
			// Re-Build so each publish is a fresh snapshot with a new gen
			// (Publish mutates gen; snapshots are single-publish).
			src := next[i%2]
			in, g := inA, gA
			if src == snapB {
				in, g = inB, gB
			}
			fresh, err := Build(g, in, BuildOpts{})
			if err != nil {
				report("rebuild: %v", err)
				return
			}
			mu.Lock()
			gen := srv.Publish(fresh)
			wantByGen[gen] = in.Dist
			mu.Unlock()
			if gen > 1_000_000 {
				return // safety net; never expected
			}
			time.Sleep(100 * time.Microsecond) // dozens of swaps per run, not millions
		}
	}()
	wg.Wait()
	<-swapDone

	if failures.Load() != 0 {
		t.Fatalf("%d of %d queries failed during hot swap; first: %s", failures.Load(), queries, firstErr)
	}
	if done.Load() != queries {
		t.Fatalf("only %d of %d queries completed", done.Load(), queries)
	}
	if shed := srv.Met.Shed.Value(); shed != 0 {
		t.Fatalf("%v queries shed during swap; the gate requires zero", shed)
	}
	if swaps := srv.Met.Swaps.Value(); swaps < 2 {
		t.Fatalf("only %v swaps happened; load finished before any swap pressure", swaps)
	}
}
