package oracle

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// testInput computes a pipeline result on a small random graph and wraps
// it as a BuildInput.
func testInput(t *testing.T, n, m int, seed int64, sources []int) (*graph.Graph, *core.Result, BuildInput) {
	t.Helper()
	g := graph.Random(n, m, graph.GenOpts{MaxW: 8, ZeroFrac: 0.25, Seed: seed, Directed: true})
	res, err := core.Run(g, core.Opts{Sources: sources, H: g.N() - 1})
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	return g, res, BuildInput{Alg: "pipeline", Sources: res.Sources, Dist: res.Dist,
		Hops: res.Hops, Parent: res.Parent, Stats: res.Stats}
}

func TestBuildRoundTrip(t *testing.T) {
	// Sources chosen to straddle a shard boundary at ShardBits=1 (2 rows
	// per shard, 5 rows → 3 shards, last one ragged).
	g, res, in := testInput(t, 24, 72, 3, []int{0, 3, 7, 11, 23})
	snap, err := Build(g, in, BuildOpts{ShardBits: 1})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if snap.K() != 5 || snap.N() != g.N() {
		t.Fatalf("snapshot shape k=%d n=%d", snap.K(), snap.N())
	}
	if !snap.HasPaths() || !snap.HasHops() {
		t.Fatal("pipeline snapshot should record paths and hops")
	}
	for i, s := range res.Sources {
		row, ok := snap.Row(s)
		if !ok || row != i {
			t.Fatalf("Row(%d) = %d,%v want %d", s, row, ok, i)
		}
		for v := 0; v < g.N(); v++ {
			if got := snap.DistAt(i, v); got != res.Dist[i][v] {
				t.Fatalf("DistAt(%d,%d) = %d, want %d", i, v, got, res.Dist[i][v])
			}
			if got := snap.hopAt(i, v); got != res.Hops[i][v] {
				t.Fatalf("hopAt(%d,%d) = %d, want %d", i, v, got, res.Hops[i][v])
			}
			if got := snap.parentAt(i, v); got != res.Parent[i][v] {
				t.Fatalf("parentAt(%d,%d) = %d, want %d", i, v, got, res.Parent[i][v])
			}
		}
	}
}

func TestBuildRejectsCorruptInput(t *testing.T) {
	g, _, _ := testInput(t, 12, 30, 5, []int{0, 4})
	cases := []struct {
		name   string
		mutate func(*BuildInput)
	}{
		{"no sources", func(in *BuildInput) { in.Sources = nil }},
		{"row count mismatch", func(in *BuildInput) { in.Dist = in.Dist[:1] }},
		{"short dist row", func(in *BuildInput) { in.Dist[1] = in.Dist[1][:3] }},
		{"short hop row", func(in *BuildInput) { in.Hops[0] = in.Hops[0][:3] }},
		{"short parent row", func(in *BuildInput) { in.Parent[0] = in.Parent[0][:3] }},
		{"source outside graph", func(in *BuildInput) { in.Sources[0] = 99 }},
		{"duplicate source", func(in *BuildInput) { in.Sources[1] = in.Sources[0] }},
		{"parent outside graph", func(in *BuildInput) { in.Parent[1][2] = 77 }},
		{"hop outside range", func(in *BuildInput) { in.Hops[1][2] = 1 << 40 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, in := testInput(t, 12, 30, 5, []int{0, 4})
			tc.mutate(&in)
			if _, err := Build(g, in, BuildOpts{}); err == nil {
				t.Fatal("corrupt input accepted")
			}
		})
	}
}

func TestStorePublishGenerations(t *testing.T) {
	g, _, in := testInput(t, 12, 30, 7, []int{0, 1})
	var st Store
	if st.Current() != nil {
		t.Fatal("empty store should serve nil")
	}
	a, err := Build(g, in, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, in, BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if gen := st.Publish(a); gen != 1 || a.Gen() != 1 {
		t.Fatalf("first publish gen = %d/%d, want 1", gen, a.Gen())
	}
	if st.Current() != a {
		t.Fatal("store not serving first snapshot")
	}
	if gen := st.Publish(b); gen != 2 {
		t.Fatalf("second publish gen = %d, want 2", gen)
	}
	if st.Current() != b {
		t.Fatal("store not serving second snapshot")
	}
	// The displaced snapshot stays fully usable for in-flight readers.
	if a.DistAt(0, 3) != b.DistAt(0, 3) {
		t.Fatal("displaced snapshot corrupted by swap")
	}
}

func TestSnapshotPathMatchesReconstruct(t *testing.T) {
	g, res, in := testInput(t, 20, 60, 9, []int{0, 5, 13})
	snap, err := Build(g, in, BuildOpts{ShardBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Sources {
		for v := 0; v < g.N(); v++ {
			want, wantErr := core.ReconstructPath(g, res, i, v)
			got, gotErr := snap.Path(i, v)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("(%d,%d): oracle err %v, in-memory err %v", i, v, gotErr, wantErr)
			}
			if wantErr != nil {
				var wantPE, gotPE *core.PathError
				if !errors.As(wantErr, &wantPE) || !errors.As(gotErr, &gotPE) || !errors.Is(gotErr, wantPE.Kind) {
					t.Fatalf("(%d,%d): error kind diverged: oracle %v, in-memory %v", i, v, gotErr, wantErr)
				}
				continue
			}
			if len(want) != len(got) {
				t.Fatalf("(%d,%d): path %v vs %v", i, v, got, want)
			}
			for j := range want {
				if want[j] != got[j] {
					t.Fatalf("(%d,%d): path %v vs %v", i, v, got, want)
				}
			}
		}
	}
}

func TestPathCacheLRU(t *testing.T) {
	c := NewPathCache(2)
	c.Put(1, 0, 1, []int{0, 1}, nil)
	c.Put(1, 0, 2, []int{0, 1, 2}, nil)
	if _, _, ok := c.Get(1, 0, 1); !ok {
		t.Fatal("entry 1 missing")
	}
	c.Put(1, 0, 3, []int{0, 3}, nil) // evicts (1,0,2): (1,0,1) was touched
	if _, _, ok := c.Get(1, 0, 2); ok {
		t.Fatal("LRU evicted the wrong entry")
	}
	if _, _, ok := c.Get(1, 0, 1); !ok {
		t.Fatal("recently used entry evicted")
	}
	// Errors are cached values too.
	sentinel := errors.New("nope")
	c.Put(1, 0, 4, nil, sentinel)
	if _, err, ok := c.Get(1, 0, 4); !ok || !errors.Is(err, sentinel) {
		t.Fatalf("cached error lost: %v %v", err, ok)
	}
	// A new generation misses regardless of key overlap.
	if _, _, ok := c.Get(2, 0, 1); ok {
		t.Fatal("generation leaked across cache keys")
	}
	hits, misses, size := c.Stats()
	if hits == 0 || misses == 0 || size != 2 {
		t.Fatalf("stats hits=%d misses=%d size=%d", hits, misses, size)
	}
	// Capacity 0 disables caching entirely.
	z := NewPathCache(0)
	z.Put(1, 0, 0, []int{0}, nil)
	if _, _, ok := z.Get(1, 0, 0); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestComputeSpecDefaults(t *testing.T) {
	g := graph.Random(10, 30, graph.GenOpts{MaxW: 6, Seed: 2, Directed: true})
	sp := ComputeSpec{Alg: "pipeline"}
	in, err := Compute(context.Background(), g, sp)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if len(in.Sources) != g.N() {
		t.Fatalf("nil sources expanded to %d rows, want all %d", len(in.Sources), g.N())
	}
	if _, err := Compute(context.Background(), g, ComputeSpec{Alg: "frobnicate"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Compute(context.Background(), g, ComputeSpec{Alg: "pipeline", Sources: []int{99}}); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}
