package oracle

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Defaults for the Server knobs (applied when the field is zero).
const (
	DefaultMaxInflight = 256
	DefaultAdmitWait   = 5 * time.Millisecond
	DefaultDeadline    = 2 * time.Second
	DefaultBatchBudget = 4096
	maxBatchBytes      = 4 << 20

	// Degradation ladder defaults (fractions of MaxInflight occupancy).
	DefaultDegradeCacheAt    = 0.75
	DefaultDegradeDistOnlyAt = 0.9
	// shedRetryAfter is the Retry-After (seconds) stamped on every shed or
	// degraded refusal, sized to the admission queue's drain time.
	shedRetryAfter = "1"
	// statusClientClosed mirrors nginx's 499: the client vanished before
	// the answer existed, so no bytes reach the wire — the status only
	// feeds metrics and logs.
	statusClientClosed = 499
)

// GenHeader and ShardHeader are stamped on every query response (and on
// /healthz): the generation that answered, and — when the server owns a
// shard of a larger cluster — its shard ID. The cluster router reads them
// to track backend generations and refuse mixed-generation batch answers.
const (
	GenHeader   = "X-Apsp-Generation"
	ShardHeader = "X-Apsp-Shard"
)

// Degradation ladder rungs, in increasing order of shed aggression.
const (
	degradeNone          = 0 // full service
	degradeNoCacheInsert = 1 // path-cache stops admitting entries
	degradeDistOnly      = 2 // path queries refused with 503
)

// degradeLevel reads the ladder rung from the current admission-slot
// occupancy. One channel-length read: cheap enough for every query.
func (s *Server) degradeLevel() int {
	occ := float64(len(s.sem)) / float64(s.MaxInflight)
	switch {
	case s.DegradeDistOnlyAt > 0 && occ >= s.DegradeDistOnlyAt:
		return degradeDistOnly
	case s.DegradeCacheAt > 0 && occ >= s.DegradeCacheAt:
		return degradeNoCacheInsert
	}
	return degradeNone
}

// Server serves distance-oracle queries over HTTP/JSON.
//
// Endpoints:
//
//	GET  /dist?src=S&dst=V    point distance (200 even when unreachable)
//	GET  /path?src=S&dst=V    materialized shortest path
//	POST /batch               {"queries":[{"kind":"dist|path","src":S,"dst":V},...]}
//	GET  /healthz             snapshot identity + readiness
//	GET  /metrics             Prometheus text (apspd_* instruments)
//	POST /admin/recompute     background recompute + atomic snapshot swap
//	GET  /debug/pprof/...     runtime profiles
//
// Admission control: at most MaxInflight query requests execute at once;
// a request that cannot get a slot within AdmitWait is shed with 429.
// Every admitted query runs under a Deadline-bounded context and reads the
// snapshot pointer exactly once — a /batch of 10k lookups is answered
// entirely from one generation even if a swap lands mid-request.
type Server struct {
	Store *Store
	Cache *PathCache
	Met   *Metrics

	MaxInflight int
	AdmitWait   time.Duration
	Deadline    time.Duration
	BatchBudget int

	// Recompute, when set, is invoked by POST /admin/recompute (in a
	// background goroutine, single-flight) to build a replacement
	// snapshot; the server publishes whatever it returns. A failed
	// recompute does NOT take the server down: the previous generation
	// keeps serving ("stale" on /healthz) until a later recompute lands.
	Recompute func(ctx context.Context) (*Snapshot, error)
	// AfterPublish, when set, observes every published snapshot (the
	// daemon's autosave hook). Called synchronously after the swap; a slow
	// hook delays the Publish caller, never queries.
	AfterPublish func(*Snapshot)
	// DegradeCacheAt and DegradeDistOnlyAt are the load-shedding ladder
	// thresholds, as fractions of MaxInflight occupancy: at DegradeCacheAt
	// the path cache stops admitting new entries (lookups still hit); at
	// DegradeDistOnlyAt path queries are refused with 503 + Retry-After so
	// the cheap dist lookups keep their latency. 0 = defaults (0.75 and
	// 0.9); negative disables that rung.
	DegradeCacheAt    float64
	DegradeDistOnlyAt float64
	// Log receives operational and per-query records (nil = silent). Wrap
	// the handler with trace.LogHandler so records carry trace IDs.
	Log *slog.Logger
	// Tracer records request span trees (nil = tracing off; every call
	// site tolerates the nil tracer at zero cost).
	Tracer *trace.Tracer
	// SlowQuery is the slow-query log threshold: any query at least this
	// slow is logged at WARN with its trace ID (0 = off).
	SlowQuery time.Duration
	// LogEvery debug-logs one in every N completed queries (0 = off) —
	// a sampled request log that stays readable under load.
	LogEvery int
	// Progress, when set, observes recompute runs for /debug/live (wire
	// the same Progress into the recompute spec's engine observer).
	Progress *congest.Progress
	// ShardID, when non-empty, names the source shard this server owns
	// (apspd -shard k/N). It is stamped on every response as ShardHeader
	// and reported on /healthz, so a cluster router can verify it wired
	// each backend to the shard the map says it owns.
	ShardID string

	initOnce    sync.Once
	sem         chan struct{}
	recomputing atomic.Bool
	logSeq      atomic.Uint64
	staleErr    atomic.Pointer[string] // last recompute error; nil = fresh
}

func (s *Server) init() {
	s.initOnce.Do(func() {
		if s.MaxInflight <= 0 {
			s.MaxInflight = DefaultMaxInflight
		}
		if s.AdmitWait <= 0 {
			s.AdmitWait = DefaultAdmitWait
		}
		if s.Deadline <= 0 {
			s.Deadline = DefaultDeadline
		}
		if s.BatchBudget <= 0 {
			s.BatchBudget = DefaultBatchBudget
		}
		if s.DegradeCacheAt == 0 {
			s.DegradeCacheAt = DefaultDegradeCacheAt
		}
		if s.DegradeDistOnlyAt == 0 {
			s.DegradeDistOnlyAt = DefaultDegradeDistOnlyAt
		}
		if s.Met == nil {
			s.Met = NewMetrics()
		}
		s.sem = make(chan struct{}, s.MaxInflight)
	})
}

// logAt emits one record when a logger is configured; the context carries
// the current span, so a trace.LogHandler-wrapped logger stamps trace IDs.
func (s *Server) logAt(ctx context.Context, level slog.Level, msg string, attrs ...slog.Attr) {
	if s.Log != nil {
		s.Log.LogAttrs(ctx, level, msg, attrs...)
	}
}

// Publish makes snap the serving snapshot and updates the swap metrics.
// Safe to call while queries are in flight: requests that already loaded
// the old snapshot finish against it.
func (s *Server) Publish(snap *Snapshot) uint64 {
	s.init()
	gen := s.Store.Publish(snap)
	s.Met.Generation.Set(float64(gen))
	s.Met.Swaps.Inc()
	s.Met.SetPhys(snap.Phys())
	s.staleErr.Store(nil) // a fresh generation clears the stale flag
	s.logAt(context.Background(), slog.LevelInfo, "published snapshot",
		slog.Uint64("gen", gen), slog.String("alg", snap.Alg()),
		slog.Int("n", snap.N()), slog.Int("k", snap.K()))
	if s.AfterPublish != nil {
		s.AfterPublish(snap)
	}
	return gen
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	s.init()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dist", s.query("dist", s.handleDist))
	mux.HandleFunc("GET /path", s.query("path", s.handlePath))
	mux.HandleFunc("POST /batch", s.query("batch", s.handleBatch))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/live", s.handleLive)
	mux.HandleFunc("POST /admin/recompute", s.handleRecompute)
	// pprof needs explicit wiring: the daemon serves its own mux, not
	// http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// query wraps a query handler with tracing, admission control, the
// per-request deadline, and the per-kind latency/throughput instruments.
//
// Tracing: the root span ("serve.<kind>") opens before admission, adopts an
// incoming W3C traceparent when present, and the server-side header is
// echoed on the response so callers learn their trace ID. Head-sampled
// queries additionally attach their trace ID as an exemplar on the latency
// histogram bucket they land in — the metrics-to-trace join.
func (s *Server) query(kind string, h func(http.ResponseWriter, *http.Request, *Snapshot) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, root := s.Tracer.StartRequest(r.Context(), "serve."+kind, r.Header.Get(trace.TraceparentHeader))
		if root != nil {
			w.Header().Set(trace.TraceparentHeader, root.Traceparent())
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// No free slot: wait up to AdmitWait before shedding. The
			// admit span only exists on this contended path — uncontended
			// admission is one channel send and leaves no span.
			admit := root.Child("admit")
			t := time.NewTimer(s.AdmitWait)
			select {
			case s.sem <- struct{}{}:
				t.Stop()
				admit.End()
			case <-t.C:
				s.Met.Shed.Inc()
				admit.End()
				root.Error(errors.New("shed: admission queue full"))
				root.End()
				writeErrRetry(w, http.StatusTooManyRequests, "overloaded, retry later")
				return
			case <-r.Context().Done():
				t.Stop()
				s.Met.Shed.Inc()
				admit.End()
				root.Error(errors.New("shed: client gave up in admission queue"))
				root.End()
				writeErrRetry(w, http.StatusTooManyRequests, "client gave up in admission queue")
				return
			}
		}
		s.Met.Inflight.Add(1)
		s.Met.DegradeLevel.Set(float64(s.degradeLevel()))
		start := time.Now()
		status := http.StatusOK
		defer func() {
			<-s.sem
			s.Met.Inflight.Add(-1)
			dur := time.Since(start)
			qc, lat := s.Met.Query(kind)
			qc.Inc()
			if root != nil && root.Sampled() {
				lat.ObserveExemplar(dur.Seconds(), obs.L("trace_id", root.TraceID()))
			} else {
				lat.Observe(dur.Seconds())
			}
			root.SetInt("http.status", int64(status))
			root.End()
			s.logQuery(ctx, kind, status, dur)
		}()

		dctx, cancel := context.WithTimeout(ctx, s.Deadline)
		defer cancel()
		snap := s.Store.Current() // the request's one and only pointer read
		if snap == nil {
			s.Met.Errors.Inc()
			root.Error(errors.New("no snapshot published yet"))
			status = writeErr(w, http.StatusServiceUnavailable, "no snapshot published yet")
			return
		}
		root.SetInt("gen", int64(snap.Gen()))
		// The generation/shard headers are the cluster contract: a router
		// learns which generation answered without parsing the body (the
		// headers are set before the handler writes, so they reach the wire
		// on every status).
		w.Header().Set(GenHeader, strconv.FormatUint(snap.Gen(), 10))
		if s.ShardID != "" {
			w.Header().Set(ShardHeader, s.ShardID)
		}
		status = h(w, r.WithContext(dctx), snap)
		if status >= 400 {
			s.Met.Errors.Inc()
			root.Error(fmt.Errorf("HTTP %d", status))
		}
	}
}

// logQuery is the per-query log policy: slow queries at WARN, server
// faults at ERROR, and a 1-in-LogEvery sample at DEBUG. The context
// carries the root span, so every record lands with its trace ID.
func (s *Server) logQuery(ctx context.Context, kind string, status int, dur time.Duration) {
	if s.Log == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("kind", kind), slog.Int("status", status), slog.Duration("dur", dur),
	}
	switch {
	case s.SlowQuery > 0 && dur >= s.SlowQuery:
		s.logAt(ctx, slog.LevelWarn, "slow query", attrs...)
	case status >= 500:
		s.logAt(ctx, slog.LevelError, "query failed", attrs...)
	case s.LogEvery > 0 && (s.logSeq.Add(1)-1)%uint64(s.LogEvery) == 0:
		s.logAt(ctx, slog.LevelDebug, "query", attrs...)
	}
}

// distResp is the /dist answer; Dist is omitted when unreachable.
type distResp struct {
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Reachable bool   `json:"reachable"`
	Dist      *int64 `json:"dist,omitempty"`
	Gen       uint64 `json:"gen"`
}

// pathResp is the /path answer; Hops is the edge count of Path.
type pathResp struct {
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	Dist int64  `json:"dist"`
	Hops int    `json:"hops"`
	Path []int  `json:"path"`
	Gen  uint64 `json:"gen"`
}

// resolve parses src/dst query params and maps src to its snapshot row.
// On failure it writes the error response and returns (-1, -1, status).
func resolve(w http.ResponseWriter, r *http.Request, snap *Snapshot) (row, dst, status int) {
	src, err := strconv.Atoi(r.URL.Query().Get("src"))
	if err != nil {
		return -1, -1, writeErr(w, http.StatusBadRequest, "bad or missing src: %v", err)
	}
	dst, err = strconv.Atoi(r.URL.Query().Get("dst"))
	if err != nil {
		return -1, -1, writeErr(w, http.StatusBadRequest, "bad or missing dst: %v", err)
	}
	row, ok := snap.Row(src)
	if !ok {
		return -1, -1, writeErr(w, http.StatusNotFound, "source %d not in snapshot (k=%d of n=%d)", src, snap.K(), snap.N())
	}
	if dst < 0 || dst >= snap.N() {
		return -1, -1, writeErr(w, http.StatusBadRequest, "dst %d outside graph (n=%d)", dst, snap.N())
	}
	return row, dst, 0
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request, snap *Snapshot) int {
	row, dst, status := resolve(w, r, snap)
	if status != 0 {
		return status
	}
	_, sp := trace.Start(r.Context(), "lookup")
	d := snap.DistAt(row, dst)
	sp.End()
	resp := distResp{Src: snap.Sources()[row], Dst: dst, Gen: snap.Gen()}
	if d < graph.Inf {
		resp.Reachable = true
		resp.Dist = &d
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request, snap *Snapshot) int {
	row, dst, status := resolve(w, r, snap)
	if status != 0 {
		return status
	}
	if !snap.HasPaths() {
		return writeErr(w, http.StatusNotImplemented, "%s snapshots record no parent pointers; only /dist is served", snap.Alg())
	}
	if s.degradeLevel() >= degradeDistOnly {
		s.Met.DegradedPaths.Inc()
		return writeErrRetry(w, http.StatusServiceUnavailable, "degraded to dist-only under load, retry later")
	}
	path, err := s.lookupPath(r.Context(), snap, row, dst)
	if err != nil {
		return writeErr(w, pathStatus(err), "%v", err)
	}
	return writeJSON(w, http.StatusOK, pathResp{
		Src: snap.Sources()[row], Dst: dst,
		Dist: snap.DistAt(row, dst), Hops: len(path) - 1, Path: path, Gen: snap.Gen(),
	})
}

// lookupPath consults the LRU before walking; walker errors are cached
// alongside successes (both are deterministic for a given generation).
// When the context carries a span, the cache probe and the parent walk
// each get a child (batch queries pass a spanless context — the segment
// span is their granularity).
func (s *Server) lookupPath(ctx context.Context, snap *Snapshot, row, dst int) ([]int, error) {
	parent := trace.FromContext(ctx)
	if s.Cache != nil {
		probe := parent.Child("cache.probe")
		path, err, ok := s.Cache.Get(snap.Gen(), row, dst)
		if probe != nil {
			probe.Set("hit", strconv.FormatBool(ok))
			probe.End()
		}
		if ok {
			return path, err
		}
	}
	walk := parent.Child("walk")
	path, err := snap.Path(row, dst)
	walk.Error(err)
	if len(path) > 0 {
		walk.SetInt("hops", int64(len(path)-1))
	}
	walk.End()
	// Under load (ladder rung 1+) the cache stops admitting entries:
	// inserts churn the LRU lock and evict the hot set exactly when the
	// server can least afford it. Hits above still serve.
	if s.Cache != nil && s.degradeLevel() < degradeNoCacheInsert {
		s.Cache.Put(snap.Gen(), row, dst, path, err)
	}
	return path, err
}

// pathStatus maps the shared walker's typed errors onto HTTP statuses:
// caller mistakes are 4xx, snapshot corruption is 500 (the walker is a
// validator — a corrupt parent matrix must read as a server fault, not as
// a plausible-looking path).
func pathStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrPathSourceRange), errors.Is(err, core.ErrPathNodeRange):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrPathUnreachable):
		return http.StatusNotFound
	default: // cycle, broken chain, bad arc, inconsistent, malformed
		return http.StatusInternalServerError
	}
}

// batchReq / batchItem are the /batch request body.
type batchReq struct {
	Queries []batchItem `json:"queries"`
}

type batchItem struct {
	Kind string `json:"kind,omitempty"` // "dist" (default) | "path"
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
}

// batchResult is one per-query answer; Error/Status are set instead of the
// payload fields when the query failed.
type batchResult struct {
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Reachable bool   `json:"reachable"`
	Dist      *int64 `json:"dist,omitempty"`
	Path      []int  `json:"path,omitempty"`
	Error     string `json:"error,omitempty"`
	Status    int    `json:"status,omitempty"`
}

type batchResp struct {
	Gen     uint64        `json:"gen"`
	Results []batchResult `json:"results"`
}

// BatchPartialError reports a /batch cut off after Done of Total queries.
// Cause distinguishes the per-request deadline (context.DeadlineExceeded,
// answered 504) from the client hanging up (context.Canceled, nothing to
// answer — the 499 status only feeds metrics). The type is exported so
// in-process callers (experiments, tests) can assert on partial progress
// instead of string-matching.
type BatchPartialError struct {
	Done, Total int
	Cause       error
}

func (e *BatchPartialError) Error() string {
	return fmt.Sprintf("batch aborted after %d of %d queries: %v", e.Done, e.Total, e.Cause)
}

func (e *BatchPartialError) Unwrap() error { return e.Cause }

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, snap *Snapshot) int {
	var req batchReq
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err := dec.Decode(&req); err != nil {
		return writeErr(w, http.StatusBadRequest, "bad batch body: %v", err)
	}
	if len(req.Queries) == 0 {
		return writeErr(w, http.StatusBadRequest, "empty batch")
	}
	if len(req.Queries) > s.BatchBudget {
		return writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds budget %d", len(req.Queries), s.BatchBudget)
	}
	ctx := r.Context()
	sp := trace.FromContext(ctx)
	sp.SetInt("queries", int64(len(req.Queries)))
	// Individual queries run without spans: a 10k-query batch traced per
	// query would blow the span budget and drown the tree. The 256-query
	// segment is the tracing granularity.
	qctx := trace.ContextWith(ctx, nil)
	resp := batchResp{Gen: snap.Gen(), Results: make([]batchResult, len(req.Queries))}
	var seg *trace.Span
	for qi, q := range req.Queries {
		// The deadline AND the client's own context are checked between
		// queries, so a huge path batch neither holds its admission slot
		// past the request budget nor keeps burning CPU for a client that
		// already hung up.
		if qi&255 == 0 {
			seg.End()
			if err := ctx.Err(); err != nil {
				seg = nil
				perr := &BatchPartialError{Done: qi, Total: len(req.Queries), Cause: err}
				if errors.Is(err, context.DeadlineExceeded) {
					s.Met.DeadlineExceeded.Inc()
					return writeErr(w, http.StatusGatewayTimeout, "%v", perr)
				}
				// Client disconnect: the write below is a no-op on a dead
				// connection; the status records the abandonment.
				return writeErr(w, statusClientClosed, "%v", perr)
			}
			seg = sp.Child("batch.segment")
			seg.SetInt("offset", int64(qi))
		}
		resp.Results[qi] = s.batchOne(qctx, snap, q)
	}
	seg.End()
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) batchOne(ctx context.Context, snap *Snapshot, q batchItem) batchResult {
	res := batchResult{Src: q.Src, Dst: q.Dst}
	fail := func(status int, format string, args ...any) batchResult {
		res.Error = fmt.Sprintf(format, args...)
		res.Status = status
		return res
	}
	row, ok := snap.Row(q.Src)
	if !ok {
		return fail(http.StatusNotFound, "source %d not in snapshot", q.Src)
	}
	if q.Dst < 0 || q.Dst >= snap.N() {
		return fail(http.StatusBadRequest, "dst %d outside graph (n=%d)", q.Dst, snap.N())
	}
	switch q.Kind {
	case "", "dist":
		if d := snap.DistAt(row, q.Dst); d < graph.Inf {
			res.Reachable = true
			res.Dist = &d
		}
	case "path":
		if !snap.HasPaths() {
			return fail(http.StatusNotImplemented, "%s snapshots record no parent pointers", snap.Alg())
		}
		if s.degradeLevel() >= degradeDistOnly {
			s.Met.DegradedPaths.Inc()
			return fail(http.StatusServiceUnavailable, "degraded to dist-only under load, retry later")
		}
		path, err := s.lookupPath(ctx, snap, row, q.Dst)
		if err != nil {
			return fail(pathStatus(err), "%v", err)
		}
		d := snap.DistAt(row, q.Dst)
		res.Reachable, res.Dist, res.Path = true, &d, path
	default:
		return fail(http.StatusBadRequest, "unknown query kind %q", q.Kind)
	}
	return res
}

// healthResp is the /healthz body. Status "stale" means the snapshot is
// valid and serving but the most recent recompute failed — degraded, not
// down; orchestrators should alert, not restart.
type healthResp struct {
	Status       string `json:"status"` // "ok" | "loading" | "stale"
	Gen          uint64 `json:"gen"`
	Alg          string `json:"alg,omitempty"`
	N            int    `json:"n,omitempty"`
	K            int    `json:"k,omitempty"`
	Shard        string `json:"shard,omitempty"`
	Fingerprint  string `json:"fingerprint,omitempty"`
	HasPaths     bool   `json:"has_paths"`
	Recomputing  bool   `json:"recomputing"`
	DegradeLevel int    `json:"degrade_level,omitempty"`
	LastError    string `json:"last_recompute_error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.init()
	snap := s.Store.Current()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthResp{Status: "loading", Recomputing: s.recomputing.Load()})
		return
	}
	w.Header().Set(GenHeader, strconv.FormatUint(snap.Gen(), 10))
	if s.ShardID != "" {
		w.Header().Set(ShardHeader, s.ShardID)
	}
	resp := healthResp{
		Status: "ok", Gen: snap.Gen(), Alg: snap.Alg(), N: snap.N(), K: snap.K(),
		Shard:       s.ShardID,
		Fingerprint: fmt.Sprintf("%016x", snap.Fingerprint()),
		HasPaths:    snap.HasPaths(), Recomputing: s.recomputing.Load(),
		DegradeLevel: s.degradeLevel(),
	}
	if msg := s.staleErr.Load(); msg != nil {
		resp.Status = "stale"
		resp.LastError = *msg
	}
	// Stale is still 200: the answers served are correct, just older than
	// requested. Only a missing snapshot is unready.
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.init()
	s.Met.SyncCache(s.Cache)
	var err error
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		// OpenMetrics carries the trace-ID exemplars; classic scrapers get
		// the plain text format unchanged.
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		err = s.Met.WriteOpenMetrics(w)
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		err = s.Met.Write(w)
	}
	if err != nil {
		s.logAt(r.Context(), slog.LevelWarn, "metrics write", slog.Any("err", err))
	}
}

// handleRecompute starts a background rebuild and answers 202; a second
// request while one is running answers 409 (single-flight). The swap
// itself is Publish — one atomic pointer store, zero dropped queries.
func (s *Server) handleRecompute(w http.ResponseWriter, r *http.Request) {
	s.init()
	if s.Recompute == nil {
		writeErr(w, http.StatusNotImplemented, "server has no recompute source (started from a static load)")
		return
	}
	if !s.recomputing.CompareAndSwap(false, true) {
		writeErr(w, http.StatusConflict, "recompute already running")
		return
	}
	// The recompute trace outlives the HTTP request: its root span is born
	// from the request's traceparent (so a caller can follow its own
	// trigger into the rebuild) but runs on a background context.
	rctx, sp := s.Tracer.StartRequest(context.Background(), "recompute", r.Header.Get(trace.TraceparentHeader))
	if sp != nil {
		w.Header().Set(trace.TraceparentHeader, sp.Traceparent())
	}
	go func() {
		defer s.recomputing.Store(false)
		if s.Progress != nil {
			s.Progress.Reset()
		}
		start := time.Now()
		snap, err := s.Recompute(rctx)
		if s.Progress != nil {
			s.Progress.Done()
		}
		if err != nil {
			msg := err.Error()
			s.staleErr.Store(&msg)
			s.Met.RecomputeFails.Inc()
			sp.Error(err)
			sp.End()
			var gen uint64
			if cur := s.Store.Current(); cur != nil {
				gen = cur.Gen()
			}
			s.logAt(rctx, slog.LevelError, "recompute failed, serving stale generation",
				slog.Any("err", err), slog.Uint64("gen", gen))
			return
		}
		gen := s.Publish(snap)
		sp.SetInt("gen", int64(gen))
		sp.End()
		s.logAt(rctx, slog.LevelInfo, "recompute finished",
			slog.Uint64("gen", gen), slog.Duration("dur", time.Since(start)))
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "recompute started"})
}

type errResp struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, errResp{Error: fmt.Sprintf(format, args...)})
}

// writeErrRetry is writeErr plus a Retry-After header — every shed and
// degraded refusal tells the client when to come back, so a well-behaved
// retry loop (internal/client honors the header) backs off in step with
// the server's load instead of hammering it.
func writeErrRetry(w http.ResponseWriter, status int, format string, args ...any) int {
	w.Header().Set("Retry-After", shedRetryAfter)
	return writeErr(w, status, format, args...)
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
	return status
}
