package oracle

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Defaults for the Server knobs (applied when the field is zero).
const (
	DefaultMaxInflight = 256
	DefaultAdmitWait   = 5 * time.Millisecond
	DefaultDeadline    = 2 * time.Second
	DefaultBatchBudget = 4096
	maxBatchBytes      = 4 << 20
)

// Server serves distance-oracle queries over HTTP/JSON.
//
// Endpoints:
//
//	GET  /dist?src=S&dst=V    point distance (200 even when unreachable)
//	GET  /path?src=S&dst=V    materialized shortest path
//	POST /batch               {"queries":[{"kind":"dist|path","src":S,"dst":V},...]}
//	GET  /healthz             snapshot identity + readiness
//	GET  /metrics             Prometheus text (apspd_* instruments)
//	POST /admin/recompute     background recompute + atomic snapshot swap
//	GET  /debug/pprof/...     runtime profiles
//
// Admission control: at most MaxInflight query requests execute at once;
// a request that cannot get a slot within AdmitWait is shed with 429.
// Every admitted query runs under a Deadline-bounded context and reads the
// snapshot pointer exactly once — a /batch of 10k lookups is answered
// entirely from one generation even if a swap lands mid-request.
type Server struct {
	Store *Store
	Cache *PathCache
	Met   *Metrics

	MaxInflight int
	AdmitWait   time.Duration
	Deadline    time.Duration
	BatchBudget int

	// Recompute, when set, is invoked by POST /admin/recompute (in a
	// background goroutine, single-flight) to build a replacement
	// snapshot; the server publishes whatever it returns.
	Recompute func(ctx context.Context) (*Snapshot, error)
	// Logf receives operational messages (nil = silent).
	Logf func(format string, args ...any)

	initOnce    sync.Once
	sem         chan struct{}
	recomputing atomic.Bool
}

func (s *Server) init() {
	s.initOnce.Do(func() {
		if s.MaxInflight <= 0 {
			s.MaxInflight = DefaultMaxInflight
		}
		if s.AdmitWait <= 0 {
			s.AdmitWait = DefaultAdmitWait
		}
		if s.Deadline <= 0 {
			s.Deadline = DefaultDeadline
		}
		if s.BatchBudget <= 0 {
			s.BatchBudget = DefaultBatchBudget
		}
		if s.Met == nil {
			s.Met = NewMetrics()
		}
		s.sem = make(chan struct{}, s.MaxInflight)
	})
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Publish makes snap the serving snapshot and updates the swap metrics.
// Safe to call while queries are in flight: requests that already loaded
// the old snapshot finish against it.
func (s *Server) Publish(snap *Snapshot) uint64 {
	s.init()
	gen := s.Store.Publish(snap)
	s.Met.Generation.Set(float64(gen))
	s.Met.Swaps.Inc()
	s.logf("published snapshot gen=%d alg=%s n=%d k=%d", gen, snap.Alg(), snap.N(), snap.K())
	return gen
}

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	s.init()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dist", s.query("dist", s.handleDist))
	mux.HandleFunc("GET /path", s.query("path", s.handlePath))
	mux.HandleFunc("POST /batch", s.query("batch", s.handleBatch))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /admin/recompute", s.handleRecompute)
	// pprof needs explicit wiring: the daemon serves its own mux, not
	// http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// query wraps a query handler with admission control, the per-request
// deadline, and the per-kind latency/throughput instruments.
func (s *Server) query(kind string, h func(http.ResponseWriter, *http.Request, *Snapshot) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			// No free slot: wait up to AdmitWait before shedding.
			t := time.NewTimer(s.AdmitWait)
			select {
			case s.sem <- struct{}{}:
				t.Stop()
			case <-t.C:
				s.Met.Shed.Inc()
				writeErr(w, http.StatusTooManyRequests, "overloaded, retry later")
				return
			case <-r.Context().Done():
				t.Stop()
				s.Met.Shed.Inc()
				writeErr(w, http.StatusTooManyRequests, "client gave up in admission queue")
				return
			}
		}
		s.Met.Inflight.Add(1)
		start := time.Now()
		defer func() {
			<-s.sem
			s.Met.Inflight.Add(-1)
			qc, lat := s.Met.Query(kind)
			qc.Inc()
			lat.Observe(time.Since(start).Seconds())
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.Deadline)
		defer cancel()
		snap := s.Store.Current() // the request's one and only pointer read
		if snap == nil {
			s.Met.Errors.Inc()
			writeErr(w, http.StatusServiceUnavailable, "no snapshot published yet")
			return
		}
		if status := h(w, r.WithContext(ctx), snap); status >= 400 {
			s.Met.Errors.Inc()
		}
	}
}

// distResp is the /dist answer; Dist is omitted when unreachable.
type distResp struct {
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Reachable bool   `json:"reachable"`
	Dist      *int64 `json:"dist,omitempty"`
	Gen       uint64 `json:"gen"`
}

// pathResp is the /path answer; Hops is the edge count of Path.
type pathResp struct {
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
	Dist int64  `json:"dist"`
	Hops int    `json:"hops"`
	Path []int  `json:"path"`
	Gen  uint64 `json:"gen"`
}

// resolve parses src/dst query params and maps src to its snapshot row.
// On failure it writes the error response and returns (-1, -1, status).
func resolve(w http.ResponseWriter, r *http.Request, snap *Snapshot) (row, dst, status int) {
	src, err := strconv.Atoi(r.URL.Query().Get("src"))
	if err != nil {
		return -1, -1, writeErr(w, http.StatusBadRequest, "bad or missing src: %v", err)
	}
	dst, err = strconv.Atoi(r.URL.Query().Get("dst"))
	if err != nil {
		return -1, -1, writeErr(w, http.StatusBadRequest, "bad or missing dst: %v", err)
	}
	row, ok := snap.Row(src)
	if !ok {
		return -1, -1, writeErr(w, http.StatusNotFound, "source %d not in snapshot (k=%d of n=%d)", src, snap.K(), snap.N())
	}
	if dst < 0 || dst >= snap.N() {
		return -1, -1, writeErr(w, http.StatusBadRequest, "dst %d outside graph (n=%d)", dst, snap.N())
	}
	return row, dst, 0
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request, snap *Snapshot) int {
	row, dst, status := resolve(w, r, snap)
	if status != 0 {
		return status
	}
	resp := distResp{Src: snap.Sources()[row], Dst: dst, Gen: snap.Gen()}
	if d := snap.DistAt(row, dst); d < graph.Inf {
		resp.Reachable = true
		resp.Dist = &d
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request, snap *Snapshot) int {
	row, dst, status := resolve(w, r, snap)
	if status != 0 {
		return status
	}
	if !snap.HasPaths() {
		return writeErr(w, http.StatusNotImplemented, "%s snapshots record no parent pointers; only /dist is served", snap.Alg())
	}
	path, err := s.lookupPath(snap, row, dst)
	if err != nil {
		return writeErr(w, pathStatus(err), "%v", err)
	}
	return writeJSON(w, http.StatusOK, pathResp{
		Src: snap.Sources()[row], Dst: dst,
		Dist: snap.DistAt(row, dst), Hops: len(path) - 1, Path: path, Gen: snap.Gen(),
	})
}

// lookupPath consults the LRU before walking; walker errors are cached
// alongside successes (both are deterministic for a given generation).
func (s *Server) lookupPath(snap *Snapshot, row, dst int) ([]int, error) {
	if s.Cache != nil {
		if path, err, ok := s.Cache.Get(snap.Gen(), row, dst); ok {
			return path, err
		}
	}
	path, err := snap.Path(row, dst)
	if s.Cache != nil {
		s.Cache.Put(snap.Gen(), row, dst, path, err)
	}
	return path, err
}

// pathStatus maps the shared walker's typed errors onto HTTP statuses:
// caller mistakes are 4xx, snapshot corruption is 500 (the walker is a
// validator — a corrupt parent matrix must read as a server fault, not as
// a plausible-looking path).
func pathStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrPathSourceRange), errors.Is(err, core.ErrPathNodeRange):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrPathUnreachable):
		return http.StatusNotFound
	default: // cycle, broken chain, bad arc, inconsistent, malformed
		return http.StatusInternalServerError
	}
}

// batchReq / batchItem are the /batch request body.
type batchReq struct {
	Queries []batchItem `json:"queries"`
}

type batchItem struct {
	Kind string `json:"kind,omitempty"` // "dist" (default) | "path"
	Src  int    `json:"src"`
	Dst  int    `json:"dst"`
}

// batchResult is one per-query answer; Error/Status are set instead of the
// payload fields when the query failed.
type batchResult struct {
	Src       int    `json:"src"`
	Dst       int    `json:"dst"`
	Reachable bool   `json:"reachable"`
	Dist      *int64 `json:"dist,omitempty"`
	Path      []int  `json:"path,omitempty"`
	Error     string `json:"error,omitempty"`
	Status    int    `json:"status,omitempty"`
}

type batchResp struct {
	Gen     uint64        `json:"gen"`
	Results []batchResult `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, snap *Snapshot) int {
	var req batchReq
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err := dec.Decode(&req); err != nil {
		return writeErr(w, http.StatusBadRequest, "bad batch body: %v", err)
	}
	if len(req.Queries) == 0 {
		return writeErr(w, http.StatusBadRequest, "empty batch")
	}
	if len(req.Queries) > s.BatchBudget {
		return writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds budget %d", len(req.Queries), s.BatchBudget)
	}
	ctx := r.Context()
	resp := batchResp{Gen: snap.Gen(), Results: make([]batchResult, len(req.Queries))}
	for qi, q := range req.Queries {
		// The deadline is checked between queries so a huge path batch
		// cannot hold its admission slot past the request budget.
		if qi&255 == 0 && ctx.Err() != nil {
			return writeErr(w, http.StatusGatewayTimeout, "deadline exceeded after %d of %d queries", qi, len(req.Queries))
		}
		resp.Results[qi] = s.batchOne(snap, q)
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) batchOne(snap *Snapshot, q batchItem) batchResult {
	res := batchResult{Src: q.Src, Dst: q.Dst}
	fail := func(status int, format string, args ...any) batchResult {
		res.Error = fmt.Sprintf(format, args...)
		res.Status = status
		return res
	}
	row, ok := snap.Row(q.Src)
	if !ok {
		return fail(http.StatusNotFound, "source %d not in snapshot", q.Src)
	}
	if q.Dst < 0 || q.Dst >= snap.N() {
		return fail(http.StatusBadRequest, "dst %d outside graph (n=%d)", q.Dst, snap.N())
	}
	switch q.Kind {
	case "", "dist":
		if d := snap.DistAt(row, q.Dst); d < graph.Inf {
			res.Reachable = true
			res.Dist = &d
		}
	case "path":
		if !snap.HasPaths() {
			return fail(http.StatusNotImplemented, "%s snapshots record no parent pointers", snap.Alg())
		}
		path, err := s.lookupPath(snap, row, q.Dst)
		if err != nil {
			return fail(pathStatus(err), "%v", err)
		}
		d := snap.DistAt(row, q.Dst)
		res.Reachable, res.Dist, res.Path = true, &d, path
	default:
		return fail(http.StatusBadRequest, "unknown query kind %q", q.Kind)
	}
	return res
}

// healthResp is the /healthz body.
type healthResp struct {
	Status      string `json:"status"` // "ok" | "loading"
	Gen         uint64 `json:"gen"`
	Alg         string `json:"alg,omitempty"`
	N           int    `json:"n,omitempty"`
	K           int    `json:"k,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	HasPaths    bool   `json:"has_paths"`
	Recomputing bool   `json:"recomputing"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.init()
	snap := s.Store.Current()
	if snap == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthResp{Status: "loading", Recomputing: s.recomputing.Load()})
		return
	}
	writeJSON(w, http.StatusOK, healthResp{
		Status: "ok", Gen: snap.Gen(), Alg: snap.Alg(), N: snap.N(), K: snap.K(),
		Fingerprint: fmt.Sprintf("%016x", snap.Fingerprint()),
		HasPaths:    snap.HasPaths(), Recomputing: s.recomputing.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.init()
	s.Met.SyncCache(s.Cache)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.Met.Write(w); err != nil {
		s.logf("metrics write: %v", err)
	}
}

// handleRecompute starts a background rebuild and answers 202; a second
// request while one is running answers 409 (single-flight). The swap
// itself is Publish — one atomic pointer store, zero dropped queries.
func (s *Server) handleRecompute(w http.ResponseWriter, r *http.Request) {
	s.init()
	if s.Recompute == nil {
		writeErr(w, http.StatusNotImplemented, "server has no recompute source (started from a static load)")
		return
	}
	if !s.recomputing.CompareAndSwap(false, true) {
		writeErr(w, http.StatusConflict, "recompute already running")
		return
	}
	go func() {
		defer s.recomputing.Store(false)
		snap, err := s.Recompute(context.Background())
		if err != nil {
			s.logf("recompute failed: %v", err)
			return
		}
		s.Publish(snap)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "recompute started"})
}

type errResp struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, errResp{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
	return status
}
