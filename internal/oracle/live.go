package oracle

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/congest"
)

// liveEvent is one /debug/live heartbeat: serving-side throughput plus,
// during a recompute, the engine's live progress and a rounds-based ETA.
type liveEvent struct {
	Gen      uint64 `json:"gen"`
	Alg      string `json:"alg,omitempty"`
	Inflight int64  `json:"inflight"`
	// Queries is the cumulative finished-query count; QPS the rate since
	// the previous event (0 on the first).
	Queries int64   `json:"queries"`
	QPS     float64 `json:"qps"`
	Shed    int64   `json:"shed"`
	Errors  int64   `json:"errors"`
	// Recomputing mirrors /healthz; Progress is the engine heartbeat while
	// a recompute runs (requires Server.Progress to be wired).
	Recomputing bool                      `json:"recomputing"`
	Progress    *congest.ProgressSnapshot `json:"progress,omitempty"`
	// EtaNS estimates the remaining recompute wall time by scaling elapsed
	// time by rounds remaining, using the serving snapshot's round count as
	// the total (a recompute of the same graph replays roughly the same
	// rounds). 0 when no estimate is possible.
	EtaNS int64 `json:"etaNs,omitempty"`
}

// snap builds one heartbeat against the previous event (nil for the first).
func (s *Server) liveSnap(prev *liveEvent, dt time.Duration) liveEvent {
	ev := liveEvent{
		Inflight:    int64(s.Met.Inflight.Value()),
		Queries:     int64(s.Met.QueriesTotal()),
		Shed:        int64(s.Met.Shed.Value()),
		Errors:      int64(s.Met.Errors.Value()),
		Recomputing: s.recomputing.Load(),
	}
	snap := s.Store.Current()
	if snap != nil {
		ev.Gen = snap.Gen()
		ev.Alg = snap.Alg()
	}
	if prev != nil && dt > 0 {
		ev.QPS = float64(ev.Queries-prev.Queries) / dt.Seconds()
	}
	if s.Progress != nil {
		ps := s.Progress.Snapshot()
		ev.Progress = &ps
		if ps.Running && ps.Rounds > 0 && snap != nil {
			if total := int64(snap.Stats().Rounds); total > ps.Rounds {
				ev.EtaNS = int64(float64(ps.Elapsed) * float64(total-ps.Rounds) / float64(ps.Rounds))
			}
		}
	}
	return ev
}

// handleLive streams liveEvent heartbeats as server-sent events. Query
// parameters: interval (Go duration, default 1s, floor 50ms) and n (stop
// after that many events; 0 = stream until the client disconnects).
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	s.init()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	interval := time.Second
	if v := r.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "bad interval %q", v)
			return
		}
		if d < 50*time.Millisecond {
			d = 50 * time.Millisecond
		}
		interval = d
	}
	limit := 0
	if v := r.URL.Query().Get("n"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &limit); err != nil || limit < 0 {
			writeErr(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(ev liveEvent) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	prev := s.liveSnap(nil, 0)
	prevT := time.Now()
	if !send(prev) {
		return
	}
	sent := 1
	if limit > 0 && sent >= limit {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case now := <-tick.C:
			ev := s.liveSnap(&prev, now.Sub(prevT))
			prev, prevT = ev, now
			if !send(ev) {
				return
			}
			sent++
			if limit > 0 && sent >= limit {
				return
			}
		}
	}
}
