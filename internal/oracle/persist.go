package oracle

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/congest"
	"repro/internal/faults"
	"repro/internal/graph"
)

// Snapshot container format (little-endian):
//
//	magic    [8]byte  "APSPSNAP"
//	version  u32      1
//	metaLen  u32
//	meta     JSON     snapMeta (alg, n, k, sources, fingerprint, columns)
//	dist     k·n i64
//	hops     k·n i32  (present iff meta.HasHops)
//	parent   k·n i32  (present iff meta.HasPaths)
//	checksum u64      FNV-64a over every preceding byte
//
// This is the oracle's own autosave format — deliberately separate from
// the engine checkpoint container (internal/checkpoint), which snapshots
// an in-flight computation; this snapshots a finished, serving answer
// set. The trailing checksum makes every torn or bit-flipped file a loud
// ErrCorruptSnapshot instead of silently wrong distances.
const (
	snapMagic   = "APSPSNAP"
	snapVersion = 1
	snapSuffix  = ".snap"
	// QuarantineSuffix is appended to unreadable snapshot files by
	// RecoverDir so they never shadow an older valid generation again.
	QuarantineSuffix = ".corrupt"
)

// ErrCorruptSnapshot is wrapped by every load failure caused by the file
// contents (bad magic, truncation, checksum mismatch, malformed meta) —
// as opposed to I/O errors or graph mismatches.
var ErrCorruptSnapshot = errors.New("oracle: corrupt snapshot")

// ErrSnapshotMismatch is wrapped when a structurally valid snapshot was
// built against a different graph than the one it is being loaded for.
var ErrSnapshotMismatch = errors.New("oracle: snapshot/graph mismatch")

// snapMeta is the JSON header of a persisted snapshot.
type snapMeta struct {
	Alg         string            `json:"alg"`
	N           int               `json:"n"`
	K           int               `json:"k"`
	Sources     []int             `json:"sources"`
	Fingerprint uint64            `json:"fingerprint"`
	HasHops     bool              `json:"has_hops"`
	HasPaths    bool              `json:"has_paths"`
	Stats       congest.Stats     `json:"stats"`
	Phys        *faults.PhysStats `json:"phys,omitempty"`
}

// SaveSnapshot writes snap to path atomically: a temp file in the same
// directory is written, fsynced, renamed into place, and the parent
// directory is fsynced — after a crash at any instant, path either holds
// the complete new snapshot or whatever was there before, never a tear.
func SaveSnapshot(path string, snap *Snapshot) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("oracle: creating snapshot temp file: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = writeSnapshot(tmp, snap); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("oracle: syncing snapshot: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("oracle: closing snapshot temp file: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("oracle: installing snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("oracle: opening snapshot dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("oracle: syncing snapshot dir: %w", err)
	}
	return nil
}

func writeSnapshot(f *os.File, snap *Snapshot) error {
	meta := snapMeta{
		Alg: snap.alg, N: snap.n, K: snap.K(), Sources: snap.sources,
		Fingerprint: snap.fp, HasHops: snap.HasHops(), HasPaths: snap.HasPaths(),
		Stats: snap.stats, Phys: snap.phys,
	}
	mj, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("oracle: encoding snapshot meta: %w", err)
	}
	sum := fnv.New64a()
	w := io.MultiWriter(f, sum)

	hdr := make([]byte, 0, 16+len(mj))
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, snapVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(mj)))
	hdr = append(hdr, mj...)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("oracle: writing snapshot header: %w", err)
	}

	// Column blocks, one buffered row at a time.
	buf := make([]byte, 0, snap.n*8)
	for row := 0; row < meta.K; row++ {
		buf = buf[:0]
		for v := 0; v < snap.n; v++ {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(snap.DistAt(row, v)))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("oracle: writing distance row %d: %w", row, err)
		}
	}
	if meta.HasHops {
		for row := 0; row < meta.K; row++ {
			buf = buf[:0]
			for v := 0; v < snap.n; v++ {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(snap.hopAt(row, v))))
			}
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("oracle: writing hop row %d: %w", row, err)
			}
		}
	}
	if meta.HasPaths {
		for row := 0; row < meta.K; row++ {
			buf = buf[:0]
			for v := 0; v < snap.n; v++ {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(snap.parentAt(row, v))))
			}
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("oracle: writing parent row %d: %w", row, err)
			}
		}
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], sum.Sum64())
	if _, err := f.Write(tail[:]); err != nil {
		return fmt.Errorf("oracle: writing snapshot checksum: %w", err)
	}
	return nil
}

// LoadSnapshot reads, checksums, and revalidates a persisted snapshot
// against g. expectFP, when non-zero, must match the stored graph
// fingerprint (ErrSnapshotMismatch otherwise). Every structural defect —
// truncation at any byte, flipped bits, malformed meta — returns an error
// wrapping ErrCorruptSnapshot; a load never yields a partially-filled or
// silently wrong snapshot.
func LoadSnapshot(path string, g *graph.Graph, expectFP uint64) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("oracle: reading snapshot: %w", err)
	}
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s: %s", ErrCorruptSnapshot, path, fmt.Sprintf(format, args...))
	}
	if len(data) < len(snapMagic)+8+8 {
		return nil, corrupt("file is %d bytes, too short for the container", len(data))
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	sum := fnv.New64a()
	sum.Write(body)
	if got, want := sum.Sum64(), binary.LittleEndian.Uint64(tail); got != want {
		return nil, corrupt("checksum %016x, file says %016x", got, want)
	}
	if string(body[:8]) != snapMagic {
		return nil, corrupt("bad magic %q", body[:8])
	}
	if v := binary.LittleEndian.Uint32(body[8:12]); v != snapVersion {
		return nil, corrupt("unsupported version %d", v)
	}
	metaLen := int(binary.LittleEndian.Uint32(body[12:16]))
	if metaLen < 0 || 16+metaLen > len(body) {
		return nil, corrupt("meta length %d exceeds file", metaLen)
	}
	var meta snapMeta
	if err := json.Unmarshal(body[16:16+metaLen], &meta); err != nil {
		return nil, corrupt("bad meta JSON: %v", err)
	}
	if meta.N <= 0 || meta.K <= 0 || len(meta.Sources) != meta.K {
		return nil, corrupt("meta n=%d k=%d sources=%d inconsistent", meta.N, meta.K, len(meta.Sources))
	}
	if meta.N != g.N() {
		return nil, fmt.Errorf("%w: snapshot has n=%d, graph has n=%d", ErrSnapshotMismatch, meta.N, g.N())
	}
	if expectFP != 0 && meta.Fingerprint != expectFP {
		return nil, fmt.Errorf("%w: snapshot fingerprint %016x, graph %016x", ErrSnapshotMismatch, meta.Fingerprint, expectFP)
	}

	cells := meta.K * meta.N
	want := cells * 8
	if meta.HasHops {
		want += cells * 4
	}
	if meta.HasPaths {
		want += cells * 4
	}
	cols := body[16+metaLen:]
	if len(cols) != want {
		return nil, corrupt("column bytes %d, want %d", len(cols), want)
	}

	in := BuildInput{
		Alg: meta.Alg, Sources: meta.Sources, Stats: meta.Stats, Phys: meta.Phys,
		Dist: make([][]int64, meta.K),
	}
	flatDist := make([]int64, cells)
	for i := range flatDist {
		flatDist[i] = int64(binary.LittleEndian.Uint64(cols[i*8:]))
	}
	for r := 0; r < meta.K; r++ {
		in.Dist[r] = flatDist[r*meta.N : (r+1)*meta.N]
	}
	off := cells * 8
	if meta.HasHops {
		flat := make([]int64, cells)
		for i := range flat {
			flat[i] = int64(int32(binary.LittleEndian.Uint32(cols[off+i*4:])))
		}
		in.Hops = make([][]int64, meta.K)
		for r := 0; r < meta.K; r++ {
			in.Hops[r] = flat[r*meta.N : (r+1)*meta.N]
		}
		off += cells * 4
	}
	if meta.HasPaths {
		flat := make([]int, cells)
		for i := range flat {
			flat[i] = int(int32(binary.LittleEndian.Uint32(cols[off+i*4:])))
		}
		in.Parent = make([][]int, meta.K)
		for r := 0; r < meta.K; r++ {
			in.Parent[r] = flat[r*meta.N : (r+1)*meta.N]
		}
	}
	snap, err := Build(g, in, BuildOpts{Fingerprint: meta.Fingerprint})
	if err != nil {
		// Build's range checks catching anything here means the checksum
		// passed but the content is impossible — still a corrupt file.
		return nil, corrupt("revalidation failed: %v", err)
	}
	return snap, nil
}

// SaveToDir saves snap under dir with a name that sorts newest-first by
// creation order, and returns the path.
func SaveToDir(dir string, snap *Snapshot) (string, error) {
	name := fmt.Sprintf("snap-%020d-g%d%s", time.Now().UnixNano(), snap.Gen(), snapSuffix)
	path := filepath.Join(dir, name)
	if err := SaveSnapshot(path, snap); err != nil {
		return "", err
	}
	return path, nil
}

// listSnapshots returns dir's snapshot files, newest first (by modtime,
// then name).
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type cand struct {
		path string
		mod  time.Time
	}
	var cands []cand
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		cands = append(cands, cand{filepath.Join(dir, e.Name()), info.ModTime()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].mod.Equal(cands[j].mod) {
			return cands[i].mod.After(cands[j].mod)
		}
		return cands[i].path > cands[j].path
	})
	paths := make([]string, len(cands))
	for i, c := range cands {
		paths[i] = c.path
	}
	return paths, nil
}

// RecoverDir finds the newest loadable snapshot in dir. Corrupt files are
// quarantined (renamed with QuarantineSuffix) and skipped — a torn
// autosave from a crash mid-write must never shadow the older valid
// generation behind it. Graph-mismatched files are skipped but left in
// place (they are valid, just for a different input). Returns (nil, "",
// nil) when dir holds no usable snapshot — a cold boot, not an error.
func RecoverDir(dir string, g *graph.Graph, expectFP uint64, log *slog.Logger) (*Snapshot, string, error) {
	paths, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", fmt.Errorf("oracle: scanning snapshot dir: %w", err)
	}
	for _, path := range paths {
		snap, err := LoadSnapshot(path, g, expectFP)
		if err == nil {
			return snap, path, nil
		}
		if errors.Is(err, ErrSnapshotMismatch) {
			if log != nil {
				log.Warn("skipping snapshot for different graph", slog.String("path", path), slog.Any("err", err))
			}
			continue
		}
		// Corrupt or unreadable: quarantine so the next boot does not
		// retry it, and fall through to the next-newest candidate.
		qpath := path + QuarantineSuffix
		if rerr := os.Rename(path, qpath); rerr != nil {
			qpath = path + " (quarantine failed)"
		}
		if log != nil {
			log.Warn("quarantined corrupt snapshot",
				slog.String("path", path), slog.String("quarantine", qpath), slog.Any("err", err))
		}
	}
	return nil, "", nil
}

// Prune deletes all but the keep newest snapshot files in dir (keep <= 0
// keeps everything). Quarantined files are never pruned — they are
// evidence.
func Prune(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	paths, err := listSnapshots(dir)
	if err != nil {
		return fmt.Errorf("oracle: scanning snapshot dir: %w", err)
	}
	var firstErr error
	for _, path := range paths[min(keep, len(paths)):] {
		if err := os.Remove(path); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
