package cssp

import "fmt"

// Explicit verifiers for the two structural lemmas of Sec. III that the
// blocker-set algorithms rely on. Both follow from Definition III.3's
// cross-tree path consistency, but the blocker update algorithms use them
// in a specific operational form, so they get their own oracles (and the
// experiment E-CSSSP exercises them via the test suite).

// VerifyCommonSubtree checks Lemma III.6's operational content for vertex
// c: for every vertex v that is a descendant of c in several trees, the
// path from c to v — in particular v's parent — is identical in all of
// them. This is what lets Algorithm 4 pipeline one message per round down
// "the" subtree of c.
func (c *Collection) VerifyCommonSubtree(node int) []string {
	var bad []string
	pathOf := make(map[int]string) // v -> serialized c→v segment
	for i := range c.Sources {
		for v := range c.Parent[i] {
			path := c.PathTo(i, v)
			// Find node on the path; the suffix from it is the c→v segment.
			for j, u := range path {
				if u != node {
					continue
				}
				sig := fmt.Sprint(path[j:])
				if prev, ok := pathOf[v]; ok && prev != sig {
					bad = append(bad, fmt.Sprintf("subtree of %d: two distinct paths to %d: %s vs %s", node, v, prev, sig))
				} else {
					pathOf[v] = sig
				}
				break
			}
		}
	}
	return bad
}

// VerifyInTree checks Lemma III.7 for vertex c: the union of the tree
// paths from each root to c forms an in-tree rooted at c — every vertex u
// lying on any root→c path has a unique next hop toward c across all
// trees. This is what lets the ancestor score updates pipeline without
// collisions.
func (c *Collection) VerifyInTree(node int) []string {
	var bad []string
	next := make(map[int]int) // u -> successor toward node
	for i := range c.Sources {
		path := c.PathTo(i, node)
		for j := 0; j+1 < len(path); j++ {
			u, succ := path[j], path[j+1]
			if prev, ok := next[u]; ok && prev != succ {
				bad = append(bad, fmt.Sprintf("in-tree of %d: node %d has successors %d and %d", node, u, prev, succ))
			} else {
				next[u] = succ
			}
		}
	}
	return bad
}

// VerifyLemmas runs the Lemma III.6 and III.7 verifiers for every vertex
// and returns all violations.
func (c *Collection) VerifyLemmas() []string {
	var bad []string
	if len(c.Parent) == 0 {
		return nil
	}
	for v := range c.Parent[0] {
		bad = append(bad, c.VerifyCommonSubtree(v)...)
		bad = append(bad, c.VerifyInTree(v)...)
	}
	return bad
}
