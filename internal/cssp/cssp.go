// Package cssp builds h-hop Consistent SSSP collections (CSSSP,
// Definition III.3 and Lemma III.4 of the paper): a family of rooted trees
// T_x of height at most h, one per source, such that the path between any
// two vertices is the same in every tree containing it, and T_x reaches
// every vertex whose true shortest-path distance from x is realized within
// h hops.
//
// The construction is the paper's: run the pipelined Algorithm 1 with hop
// bound 2h, then retain only the vertices whose recorded shortest-path
// entry uses at most h hops (every other vertex sets its parent for that
// source to NIL). Verify checks Definition III.3 directly and is used both
// as a test oracle and as experiment E-CSSSP.
package cssp

import (
	"fmt"

	"repro/internal/bellman"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
)

// Collection is an h-hop CSSSP collection.
type Collection struct {
	Sources []int
	H       int
	// Parent[i][v]: parent of v in tree T_{Sources[i]}; -1 when v is not
	// in the tree; the root's parent is itself.
	Parent [][]int
	// Dist[i][v], Hops[i][v]: the recorded distance and hop length for
	// vertices in the tree (graph.Inf / -1 otherwise).
	Dist [][]int64
	Hops [][]int64
	// Children[i][v]: v's children in tree i (derived from Parent).
	Children [][][]int
	// Depth[i][v]: v's depth along parent pointers (equals Hops[i][v] for
	// a well-formed collection); -1 outside the tree.
	Depth [][]int
	// RawDist[i][v] is the untruncated 2h-hop shortest distance from the
	// underlying Algorithm 1 run (graph.Inf if unreachable in 2h hops):
	// the short-range distances Algorithm 3 combines with the per-blocker
	// values.
	RawDist [][]int64
	// Stats is the cost of the underlying Algorithm 1 run.
	Stats congest.Stats
}

// Build constructs the h-hop CSSSP collection for the given sources by
// running Algorithm 1 with hop bound 2h and truncating to h hops
// (Lemma III.4), followed by a distributed parent re-selection and peeling
// phase. The extra phase repairs a gap in the paper's construction that
// this repository found empirically: after truncation, a retained node's
// recorded parent can itself lie outside the tree (its 2h-hop optimum
// improves only at exactly 2h hops), breaking the parent chain. Each node
// therefore re-selects, per source, the minimum-ID in-neighbor whose
// recorded pair is exactly (d − w, l − 1); nodes with no valid candidate
// leave the tree and announce it so their dependents re-select in turn.
// Vertices the definition requires (those whose true distance δ(x,v) is
// realizable within h hops) provably never drop: along a minimal-hop true
// shortest path every prefix pair is recorded exactly.
//
// delta bounds 2h-hop shortest path distances (0 = derive). cfg carries the
// engine knobs for both the Algorithm 1 run and the repair phase; its
// Observer (may be nil) receives both phases' events.
func Build(g *graph.Graph, sources []int, h int, delta int64, cfg congest.Config) (*Collection, error) {
	return build(g, sources, h, delta, false, cfg)
}

// BuildBellmanFord constructs the same collection but computes the 2h-hop
// distances with distributed Bellman–Ford instead of Algorithm 1 — the
// Θ(n·h)-round method of [3] that the paper's Sec. III replaces ("the
// method in [3] takes Θ(n·h) rounds, which is too large for our
// purposes"). Kept as the ablation baseline for experiment E-STEP1.
func BuildBellmanFord(g *graph.Graph, sources []int, h int, cfg congest.Config) (*Collection, error) {
	return build(g, sources, h, 0, true, cfg)
}

func build(g *graph.Graph, sources []int, h int, delta int64, useBF bool, cfg congest.Config) (*Collection, error) {
	if h <= 0 {
		return nil, fmt.Errorf("cssp: h=%d must be positive", h)
	}
	var (
		res *core.Result
		err error
	)
	if useBF {
		bf, bfErr := bellman.Run(g, bellman.Opts{Sources: sources, H: 2 * h, MaxRounds: cfg.MaxRounds, Workers: cfg.Workers, Scheduler: cfg.Scheduler, Obs: cfg.Observer, Network: cfg.Network, Checkpoint: cfg.Checkpoint, Ctx: cfg.Ctx})
		if bfErr != nil {
			return nil, fmt.Errorf("cssp: Bellman-Ford run: %w", bfErr)
		}
		// Bellman–Ford reports distances but not minimal hop counts, which
		// the collection needs for truncation. A hop-tagged Bellman–Ford
		// costs a second 2h·k-round sweep; we charge that cost (doubling
		// the measured rounds — the quantity the ablation reports) and
		// fill the hop values from the sequential oracle, which matches
		// what the tagged sweep would compute.
		res = &core.Result{
			Sources: append([]int(nil), sources...),
			Dist:    bf.Dist,
			Parent:  bf.Parent,
			Hops:    hopsFromDP(g, sources, 2*h),
			Stats:   bf.Stats,
		}
		res.Stats.Rounds *= 2
		res.Stats.Messages *= 2
	} else {
		res, err = core.Run(g, core.Opts{Sources: sources, H: 2 * h, Delta: delta, MaxRounds: cfg.MaxRounds, Workers: cfg.Workers, Scheduler: cfg.Scheduler, Obs: cfg.Observer, Network: cfg.Network, Checkpoint: cfg.Checkpoint, Ctx: cfg.Ctx})
		if err != nil {
			return nil, fmt.Errorf("cssp: Algorithm 1 run: %w", err)
		}
	}
	k := len(sources)
	n := g.N()
	c := &Collection{
		Sources:  append([]int(nil), sources...),
		H:        h,
		Parent:   make([][]int, k),
		Dist:     make([][]int64, k),
		Hops:     make([][]int64, k),
		Children: make([][][]int, k),
		Depth:    make([][]int, k),
		Stats:    res.Stats,
	}
	c.RawDist = res.Dist
	for i := 0; i < k; i++ {
		c.Parent[i] = make([]int, n)
		c.Dist[i] = make([]int64, n)
		c.Hops[i] = make([]int64, n)
		c.Children[i] = make([][]int, n)
		c.Depth[i] = make([]int, n)
		for v := 0; v < n; v++ {
			if res.Hops[i][v] >= 0 && res.Hops[i][v] <= int64(h) {
				c.Parent[i][v] = res.Parent[i][v]
				c.Dist[i][v] = res.Dist[i][v]
				c.Hops[i][v] = res.Hops[i][v]
			} else {
				c.Parent[i][v] = -1
				c.Dist[i][v] = graph.Inf
				c.Hops[i][v] = -1
			}
			c.Depth[i][v] = -1
		}
	}
	s2, err := c.reselect(g, cfg)
	c.Stats.Add(s2)
	if err != nil {
		return nil, err
	}
	c.derive()
	return c, nil
}

// hopsFromDP returns the minimal hop counts of H-hop shortest paths per
// source (what a hop-tagged Bellman–Ford sweep would record).
func hopsFromDP(g *graph.Graph, sources []int, H int) [][]int64 {
	out := make([][]int64, len(sources))
	for i, s := range sources {
		_, l := graph.HHopDistHops(g, s, H)
		out[i] = make([]int64, g.N())
		for v, lv := range l {
			out[i][v] = int64(lv)
		}
	}
	return out
}

// derive fills Children and Depth from Parent.
func (c *Collection) derive() {
	for i := range c.Sources {
		root := c.Sources[i]
		n := len(c.Parent[i])
		for v := 0; v < n; v++ {
			p := c.Parent[i][v]
			if p >= 0 && v != root {
				c.Children[i][p] = append(c.Children[i][p], v)
			}
		}
		// Depth via BFS from the root along children.
		if c.Parent[i][root] >= 0 {
			c.Depth[i][root] = 0
			queue := []int{root}
			for len(queue) > 0 {
				v := queue[0]
				queue = queue[1:]
				for _, ch := range c.Children[i][v] {
					c.Depth[i][ch] = c.Depth[i][v] + 1
					queue = append(queue, ch)
				}
			}
		}
	}
}

// PathTo returns the tree path from the root of tree i to v (inclusive), or
// nil if v is not in the tree or the parent chain is malformed.
func (c *Collection) PathTo(i, v int) []int {
	if c.Parent[i][v] < 0 {
		return nil
	}
	root := c.Sources[i]
	var rev []int
	for cur := v; ; cur = c.Parent[i][cur] {
		rev = append(rev, cur)
		if cur == root {
			break
		}
		if len(rev) > len(c.Parent[i]) || c.Parent[i][cur] < 0 {
			return nil
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Verify checks Definition III.3 and returns a list of violations (empty
// means the collection is a valid h-hop CSSSP). g is the graph the
// collection was built from.
func (c *Collection) Verify(g *graph.Graph) []string {
	var bad []string
	n := g.N()

	// (a) Trees are well-formed: parent chains reach the root, height ≤ h,
	// depth equals the recorded hop count, edges exist with consistent
	// weights.
	for i, root := range c.Sources {
		if c.Parent[i][root] != root {
			bad = append(bad, fmt.Sprintf("tree %d: root %d not its own parent", i, root))
			continue
		}
		for v := 0; v < n; v++ {
			if c.Parent[i][v] < 0 {
				continue
			}
			path := c.PathTo(i, v)
			if path == nil {
				bad = append(bad, fmt.Sprintf("tree %d: broken parent chain at %d", i, v))
				continue
			}
			if len(path)-1 > c.H {
				bad = append(bad, fmt.Sprintf("tree %d: node %d at depth %d > h=%d", i, v, len(path)-1, c.H))
			}
			if int64(len(path)-1) != c.Hops[i][v] {
				bad = append(bad, fmt.Sprintf("tree %d: node %d depth %d != recorded hops %d", i, v, len(path)-1, c.Hops[i][v]))
			}
			var w int64
			okPath := true
			for j := 0; j+1 < len(path); j++ {
				ew, ok := g.Weight(path[j], path[j+1])
				if !ok {
					bad = append(bad, fmt.Sprintf("tree %d: missing arc (%d,%d)", i, path[j], path[j+1]))
					okPath = false
					break
				}
				w += ew
			}
			if okPath && w != c.Dist[i][v] {
				bad = append(bad, fmt.Sprintf("tree %d: path weight %d != recorded dist %d at %d", i, w, c.Dist[i][v], v))
			}
		}
	}

	// (b) Distances are the h-hop shortest path distances in the tree's
	// hop class: the recorded distance must equal the (≤ recorded hops)-hop
	// optimum and the hop count must be minimal for that distance.
	for i, root := range c.Sources {
		wantD, wantL := graph.HHopDistHops(g, root, c.H)
		for v := 0; v < n; v++ {
			if c.Parent[i][v] < 0 {
				continue
			}
			if c.Dist[i][v] != wantD[v] || c.Hops[i][v] != int64(wantL[v]) {
				bad = append(bad, fmt.Sprintf("tree %d: (d,l) at %d = (%d,%d), h-hop optimum (%d,%d)",
					i, v, c.Dist[i][v], c.Hops[i][v], wantD[v], wantL[v]))
			}
		}
	}

	// (c) Containment: T_u contains every v whose true shortest-path
	// distance from u is achieved within h hops.
	for i, root := range c.Sources {
		full := graph.Dijkstra(g, root)
		hh := graph.HHopDistances(g, root, c.H)
		for v := 0; v < n; v++ {
			if full[v] < graph.Inf && hh[v] == full[v] && c.Parent[i][v] < 0 {
				bad = append(bad, fmt.Sprintf("tree %d: missing %d though δ=%d is h-hop realizable", i, v, full[v]))
			}
		}
	}

	// (d) Cross-tree consistency: the u→v segment is identical in every
	// tree that contains it.
	type segKey struct{ u, v int }
	seen := make(map[segKey]string)
	for i := range c.Sources {
		for v := 0; v < n; v++ {
			path := c.PathTo(i, v)
			for j := 0; j < len(path)-1; j++ {
				u := path[j]
				key := segKey{u, v}
				sig := fmt.Sprint(path[j:])
				if prev, ok := seen[key]; ok {
					if prev != sig {
						bad = append(bad, fmt.Sprintf("inconsistent segment %d→%d: %s vs %s", u, v, prev, sig))
					}
				} else {
					seen[key] = sig
				}
			}
		}
	}
	return bad
}
