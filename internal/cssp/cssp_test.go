package cssp

import (
	"fmt"
	"testing"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/graph"
)

// TestDifferentialSweep verifies Definition III.3 and the blocker lemmas on
// every small random instance in the sweep space.
func TestDifferentialSweep(t *testing.T) {
	difftest.Search(t, difftest.Space{SeedsPerSize: 8, H: 3, ZeroFrac: 0.35}, func(in difftest.Instance) error {
		coll, err := Build(in.G, in.Sources, in.H, 0, congest.Config{})
		if err != nil {
			return err
		}
		if bad := coll.Verify(in.G); len(bad) != 0 {
			return fmt.Errorf("CSSSP violation: %s", bad[0])
		}
		if bad := coll.VerifyLemmas(); len(bad) != 0 {
			return fmt.Errorf("lemma violation: %s", bad[0])
		}
		return nil
	})
}

func TestBuildAndVerifyRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.Random(22, 66, graph.GenOpts{Seed: seed, MaxW: 6, ZeroFrac: 0.3, Directed: seed%2 == 0})
		sources := []int{0, 7, 14}
		for _, h := range []int{2, 4} {
			c, err := Build(g, sources, h, 0, congest.Config{})
			if err != nil {
				t.Fatalf("seed %d h %d: %v", seed, h, err)
			}
			if bad := c.Verify(g); len(bad) != 0 {
				for _, b := range bad {
					t.Errorf("seed %d h %d: %s", seed, h, b)
				}
				t.Fatalf("seed %d h %d: %d CSSSP violations", seed, h, len(bad))
			}
		}
	}
}

func TestBuildZeroHeavy(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.ZeroHeavy(20, 60, 0.5, graph.GenOpts{Seed: seed, MaxW: 5, Directed: true})
		sources := []int{0, 5, 10, 15}
		c, err := Build(g, sources, 3, 0, congest.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bad := c.Verify(g); len(bad) != 0 {
			t.Fatalf("seed %d: CSSSP violations: %v", seed, bad[0])
		}
	}
}

func TestFigureOnePhenomenon(t *testing.T) {
	// Figure 1's point: plain h-hop shortest-path parent pointers need not
	// form an h-hop tree, because a prefix of an h-hop shortest path need
	// not be an h-hop shortest path. Instance:
	//
	//   s=0 →(5) a=1            a's 2-hop SP is via b: weight 0, 2 hops
	//   0 →(0) b=2 →(0) 1
	//   1 →(0) v=3              v's 2-hop SP: 0→1→3, weight 5, parent 1
	//
	// With h=2, v records (5,2) with parent a, but a records (0,2): the
	// parent chain v→a→b→s has 3 hops and weight 0 — not v's path at all.
	g := graph.New(4, true)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 2, 0)
	g.MustAddEdge(2, 1, 0)
	g.MustAddEdge(1, 3, 0)

	// First, exhibit the phenomenon on a plain h=2 run of Algorithm 1.
	direct, err := core.Run(g, core.Opts{Sources: []int{0}, H: 2})
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	if direct.Dist[0][3] != 5 || direct.Parent[0][3] != 1 {
		t.Fatalf("v: (d,parent) = (%d,%d), want (5,1)", direct.Dist[0][3], direct.Parent[0][3])
	}
	if direct.Dist[0][1] != 0 || direct.Hops[0][1] != 2 {
		t.Fatalf("a: (d,l) = (%d,%d), want (0,2)", direct.Dist[0][1], direct.Hops[0][1])
	}
	// The naive parent chain v(5,2) → a(0,2) → b → s is 3 hops deep and
	// weighs 0 ≠ 5: not a 2-hop tree. The chain length exceeds h:
	chain := 0
	for cur := 3; cur != 0; cur = direct.Parent[0][cur] {
		chain++
	}
	if chain <= 2 {
		t.Fatalf("expected the naive parent chain to exceed h=2, got %d", chain)
	}

	// The CSSSP construction must repair this: v's true distance (0, via
	// 3 hops) is not 2-hop realizable, so v is simply not required — and
	// whatever remains verifies as a consistent 2-hop collection.
	c, err := Build(g, []int{0}, 2, 0, congest.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if bad := c.Verify(g); len(bad) != 0 {
		t.Fatalf("violations: %v", bad)
	}
	// a's true distance 0 is realizable in 2 hops: a must be present, via b.
	if c.Parent[0][1] != 2 || c.Dist[0][1] != 0 {
		t.Fatalf("a: (parent,dist) = (%d,%d), want (2,0)", c.Parent[0][1], c.Dist[0][1])
	}
	// v's true distance 0 needs 3 hops: the definition does not require v,
	// and keeping v's (5,2) record would break consistency; it must be out.
	if c.Parent[0][3] != -1 {
		t.Fatalf("v unexpectedly in the 2-hop CSSSP with parent %d", c.Parent[0][3])
	}
}

func TestChildrenAndDepthDerivation(t *testing.T) {
	g := graph.Grid(4, 4, graph.GenOpts{Seed: 2, MaxW: 4})
	c, err := Build(g, []int{0}, 6, 0, congest.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Every non-root tree node appears exactly once as a child.
	count := 0
	for _, chs := range c.Children[0] {
		count += len(chs)
	}
	inTree := 0
	for v := 0; v < g.N(); v++ {
		if c.Parent[0][v] >= 0 {
			inTree++
		}
	}
	if count != inTree-1 {
		t.Fatalf("child links %d, want %d", count, inTree-1)
	}
	for v := 0; v < g.N(); v++ {
		if c.Parent[0][v] >= 0 && int64(c.Depth[0][v]) != c.Hops[0][v] {
			t.Fatalf("depth/hops mismatch at %d: %d vs %d", v, c.Depth[0][v], c.Hops[0][v])
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 2})
	if _, err := Build(g, []int{0}, 0, 0, congest.Config{}); err == nil {
		t.Fatal("h=0 accepted")
	}
	if _, err := Build(g, nil, 2, 0, congest.Config{}); err == nil {
		t.Fatal("no sources accepted")
	}
}
