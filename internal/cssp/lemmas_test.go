package cssp

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

func TestLemmasIII6III7OnRandomFamilies(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(24, 80, graph.GenOpts{Seed: seed, MaxW: 6, ZeroFrac: 0.35, Directed: seed%2 == 0})
		sources := []int{0, 6, 12, 18}
		c, err := Build(g, sources, 3, 0, congest.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bad := c.VerifyLemmas(); len(bad) != 0 {
			t.Fatalf("seed %d: %s (and %d more)", seed, bad[0], len(bad)-1)
		}
	}
}

func TestLemmasOnZeroHeavy(t *testing.T) {
	g := graph.ZeroHeavy(28, 100, 0.6, graph.GenOpts{Seed: 11, MaxW: 7, Directed: true})
	sources := make([]int, 7)
	for i := range sources {
		sources[i] = i * 4
	}
	c, err := Build(g, sources, 4, 0, congest.Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if bad := c.VerifyLemmas(); len(bad) != 0 {
		t.Fatalf("%s (and %d more)", bad[0], len(bad)-1)
	}
}

func TestVerifyInTreeDetectsViolation(t *testing.T) {
	// Fabricate an inconsistent collection: two trees route to node 3
	// through different successors of node 0.
	// T_1 routes 1→4→0→3 (node 0's successor toward 3 is 3);
	// T_2 routes 2→0→5→3 (node 0's successor toward 3 is 5): conflict.
	c := &Collection{
		Sources: []int{1, 2},
		H:       3,
		Parent: [][]int{
			{4, 1, -1, 0, 1, -1}, // T_1: 3←0←4←1
			{2, -1, 2, 5, -1, 0}, // T_2: 3←5←0←2
		},
	}
	bad := c.VerifyInTree(3)
	if len(bad) == 0 {
		t.Fatal("fabricated in-tree violation not detected")
	}
}

func TestVerifyCommonSubtreeDetectsViolation(t *testing.T) {
	// Two trees give node 4 different parents below the shared node 0.
	c := &Collection{
		Sources: []int{1, 2},
		H:       3,
		Parent: [][]int{
			{1, 1, -1, 0, 3, -1},  // T_1: 1→0→3→4
			{2, -1, 2, -1, 0, -1}, // T_2: 2→0→4 (parent of 4 is 0)
		},
	}
	bad := c.VerifyCommonSubtree(0)
	if len(bad) == 0 {
		t.Fatal("fabricated subtree violation not detected")
	}
}
