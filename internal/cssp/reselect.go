package cssp

import (
	"repro/internal/congest"
	"repro/internal/graph"
)

// The parent re-selection phase. See Build for why it exists. Protocol:
//
//	rounds 1..k    every tree member broadcasts (src_i, d, l) in source order
//	round k+1..    each node checks, per source, whether some in-neighbor
//	               announced exactly (d−w, l−1); nodes with no candidate
//	               leave the tree and broadcast an INVALID notice (one per
//	               round); dependents re-check and may cascade
//
// At quiescence every remaining member picks the minimum-ID valid
// candidate as its parent, which is a purely local step.

const (
	kindAnnounce = iota
	kindInvalid
)

type reselMsg struct {
	kind int
	src  int
	d, l int64
}

// Words reports the message size in words.
func (m reselMsg) Words() int {
	if m.kind == kindInvalid {
		return 2
	}
	return 4
}

type nbVal struct {
	d, l int64
}

type reselNode struct {
	id   int
	coll *Collection
	k    int

	inW     map[int]int64
	nb      []map[int]nbVal // per source: announcing in-neighbor -> value
	valid   []bool
	invQ    []int // sources whose invalidation is pending broadcast
	checked bool
	cur     int
}

func (nd *reselNode) Init(ctx *congest.Context) {
	nd.k = len(nd.coll.Sources)
	nd.inW = make(map[int]int64)
	for _, e := range ctx.InEdges() {
		if w, ok := nd.inW[e.From]; !ok || e.W < w {
			nd.inW[e.From] = e.W
		}
	}
	nd.nb = make([]map[int]nbVal, nd.k)
	nd.valid = make([]bool, nd.k)
	for i := range nd.nb {
		nd.nb[i] = make(map[int]nbVal)
		nd.valid[i] = nd.coll.Dist[i][nd.id] < graph.Inf
	}
}

// hasCandidate reports whether some announcing in-neighbor carries exactly
// (d−w, l−1) for source i.
func (nd *reselNode) hasCandidate(i int) bool {
	d, l := nd.coll.Dist[i][nd.id], nd.coll.Hops[i][nd.id]
	for q, val := range nd.nb[i] {
		w, ok := nd.inW[q]
		if ok && val.d == d-w && val.l == l-1 {
			return true
		}
	}
	return false
}

// recheck drops this node from tree i when no candidate remains, queueing
// the invalidation broadcast.
func (nd *reselNode) recheck(i int) {
	if !nd.valid[i] || nd.id == nd.coll.Sources[i] {
		return
	}
	if !nd.hasCandidate(i) {
		nd.valid[i] = false
		nd.invQ = append(nd.invQ, i)
	}
}

func (nd *reselNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	nd.cur = r
	touched := make(map[int]bool)
	for _, m := range inbox {
		msg := m.Payload.(reselMsg)
		i := msg.src
		if i < 0 || i >= nd.k {
			ctx.Failf("reselect: bad source index %d", i)
			return
		}
		switch msg.kind {
		case kindAnnounce:
			nd.nb[i][m.From] = nbVal{d: msg.d, l: msg.l}
		case kindInvalid:
			delete(nd.nb[i], m.From)
			touched[i] = true
		}
	}
	if r <= nd.k {
		i := r - 1
		if nd.coll.Dist[i][nd.id] < graph.Inf {
			ctx.Broadcast(reselMsg{kind: kindAnnounce, src: i, d: nd.coll.Dist[i][nd.id], l: nd.coll.Hops[i][nd.id]})
		}
		return
	}
	if !nd.checked {
		// All announcements (sent by round k) have been processed by the
		// start of round k+1: run the initial validity check once.
		nd.checked = true
		for i := 0; i < nd.k; i++ {
			nd.recheck(i)
		}
	}
	for i := range touched {
		nd.recheck(i)
	}
	if len(nd.invQ) > 0 {
		i := nd.invQ[0]
		nd.invQ = nd.invQ[1:]
		ctx.Broadcast(reselMsg{kind: kindInvalid, src: i})
	}
}

func (nd *reselNode) Quiescent() bool {
	return nd.cur > nd.k && nd.checked && len(nd.invQ) == 0
}

// NextWake implements congest.Waker: the node acts in every round of the
// announcement window 1..k and in round k+1 (the initial validity check),
// then one round per queued invalidation broadcast.
func (nd *reselNode) NextWake() int {
	if nd.cur <= nd.k || len(nd.invQ) > 0 {
		return nd.cur + 1
	}
	return congest.WakeOnReceive
}

// reselect runs the re-selection protocol and rewrites Parent/Dist/Hops.
func (c *Collection) reselect(g *graph.Graph, cfg congest.Config) (congest.Stats, error) {
	nodes := make([]*reselNode, g.N())
	stats, err := congest.Run(g, func(v int) congest.Node {
		nodes[v] = &reselNode{id: v, coll: c}
		return nodes[v]
	}, cfg)
	if err != nil {
		return stats, err
	}
	for v, nd := range nodes {
		for i := range c.Sources {
			if v == c.Sources[i] {
				continue
			}
			if !nd.valid[i] {
				c.Parent[i][v] = -1
				c.Dist[i][v] = graph.Inf
				c.Hops[i][v] = -1
				continue
			}
			if c.Dist[i][v] >= graph.Inf {
				continue
			}
			// Local parent selection: minimum-ID candidate.
			d, l := c.Dist[i][v], c.Hops[i][v]
			best := -1
			for q, val := range nd.nb[i] {
				w, ok := nd.inW[q]
				if ok && val.d == d-w && val.l == l-1 && (best < 0 || q < best) {
					best = q
				}
			}
			if best < 0 {
				return stats, &inconsistentError{v: v, src: c.Sources[i]}
			}
			c.Parent[i][v] = best
		}
	}
	return stats, nil
}

type inconsistentError struct{ v, src int }

func (e *inconsistentError) Error() string {
	return "cssp: internal error: valid node has no parent candidate after re-selection"
}
