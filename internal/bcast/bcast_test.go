package bcast

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
)

func buildTestTree(t *testing.T, g *graph.Graph, root int) *Tree {
	t.Helper()
	tr, _, err := BuildTree(g, root, congest.Config{})
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	return tr
}

func TestBuildTreeOnPath(t *testing.T) {
	g := graph.Path(5, graph.GenOpts{Seed: 1, MaxW: 1})
	tr := buildTestTree(t, g, 0)
	for v := 0; v < 5; v++ {
		if tr.Depth[v] != v {
			t.Fatalf("Depth[%d] = %d, want %d", v, tr.Depth[v], v)
		}
	}
	if tr.Parent[0] != 0 || tr.Parent[3] != 2 {
		t.Fatalf("parents = %v", tr.Parent)
	}
	if tr.Height != 4 {
		t.Fatalf("Height = %d", tr.Height)
	}
	if len(tr.Children[2]) != 1 || tr.Children[2][0] != 3 {
		t.Fatalf("Children[2] = %v", tr.Children[2])
	}
}

func TestBuildTreeIsBFS(t *testing.T) {
	g := graph.Random(60, 180, graph.GenOpts{Seed: 7, MaxW: 5, Directed: true})
	tr := buildTestTree(t, g, 3)
	// Communication is undirected: compare against undirected hop distances.
	u := graph.New(g.N(), false)
	for _, e := range g.Edges() {
		u.MustAddEdge(e.From, e.To, 1)
	}
	hop := graph.HHopDistances(u, 3, g.N())
	for v := 0; v < g.N(); v++ {
		if int64(tr.Depth[v]) != hop[v] {
			t.Fatalf("Depth[%d] = %d, want %d", v, tr.Depth[v], hop[v])
		}
		if v != 3 {
			p := tr.Parent[v]
			if tr.Depth[p] != tr.Depth[v]-1 {
				t.Fatalf("parent depth not one less at %d", v)
			}
			if !g.HasLink(p, v) {
				t.Fatalf("parent edge (%d,%d) is not a link", p, v)
			}
		}
	}
	// Children lists must be consistent with parents.
	count := 0
	for v := range tr.Children {
		for _, c := range tr.Children[v] {
			if tr.Parent[c] != v {
				t.Fatalf("child %d of %d has parent %d", c, v, tr.Parent[c])
			}
			count++
		}
	}
	if count != g.N()-1 {
		t.Fatalf("tree has %d child links, want %d", count, g.N()-1)
	}
}

func TestBuildTreeDisconnected(t *testing.T) {
	g := graph.New(4, false)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, _, err := BuildTree(g, 0, congest.Config{}); err == nil {
		t.Fatal("BuildTree on disconnected graph succeeded")
	}
}

func TestMaxArg(t *testing.T) {
	g := graph.Random(40, 120, graph.GenOpts{Seed: 5, MaxW: 5})
	tr := buildTestTree(t, g, 0)
	vals := make([]int64, g.N())
	for v := range vals {
		vals[v] = int64((v * 7) % 23)
	}
	wantV, wantA := int64(-1), int64(-1)
	for v, x := range vals {
		if x > wantV {
			wantV, wantA = x, int64(v)
		}
	}
	got, arg, _, err := MaxArg(g, tr, vals, congest.Config{})
	if err != nil {
		t.Fatalf("MaxArg: %v", err)
	}
	if got != wantV || arg != wantA {
		t.Fatalf("MaxArg = (%d,%d), want (%d,%d)", got, arg, wantV, wantA)
	}
}

func TestMaxArgTieBreaksSmallestNode(t *testing.T) {
	g := graph.Ring(8, graph.GenOpts{Seed: 2, MaxW: 3})
	tr := buildTestTree(t, g, 0)
	vals := make([]int64, 8)
	vals[6] = 5
	vals[2] = 5
	_, arg, _, err := MaxArg(g, tr, vals, congest.Config{})
	if err != nil {
		t.Fatalf("MaxArg: %v", err)
	}
	if arg != 2 {
		t.Fatalf("arg = %d, want 2 (smallest node attaining the max)", arg)
	}
}

func TestSum(t *testing.T) {
	g := graph.RandomTree(30, graph.GenOpts{Seed: 8, MaxW: 4})
	tr := buildTestTree(t, g, 5)
	vals := make([]int64, g.N())
	var want int64
	for v := range vals {
		vals[v] = int64(v)
		want += int64(v)
	}
	got, _, err := Sum(g, tr, vals, congest.Config{})
	if err != nil {
		t.Fatalf("Sum: %v", err)
	}
	if got != want {
		t.Fatalf("Sum = %d, want %d", got, want)
	}
}

func TestBroadcastPipelined(t *testing.T) {
	g := graph.Path(6, graph.GenOpts{Seed: 1, MaxW: 1})
	tr := buildTestTree(t, g, 0)
	values := []Vec{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	got, stats, err := Broadcast(g, tr, values, congest.Config{})
	if err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		if len(got[v]) != len(values) {
			t.Fatalf("node %d got %d values", v, len(got[v]))
		}
		for i := range values {
			if got[v][i][0] != values[i][0] || got[v][i][1] != values[i][1] {
				t.Fatalf("node %d value %d = %v, want %v", v, i, got[v][i], values[i])
			}
		}
	}
	// Pipelining: rounds ≤ len(values) + height.
	if limit := len(values) + tr.Height; stats.Rounds > limit {
		t.Fatalf("Broadcast rounds = %d, want ≤ %d", stats.Rounds, limit)
	}
}

func TestBroadcastEmptyList(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 1})
	tr := buildTestTree(t, g, 0)
	got, stats, err := Broadcast(g, tr, nil, congest.Config{})
	if err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if stats.Rounds != 0 {
		t.Fatalf("empty broadcast used %d rounds", stats.Rounds)
	}
	for v := range got {
		if len(got[v]) != 0 {
			t.Fatalf("node %d received phantom values", v)
		}
	}
}

func TestGather(t *testing.T) {
	g := graph.Random(20, 50, graph.GenOpts{Seed: 4, MaxW: 5})
	tr := buildTestTree(t, g, 0)
	items := make([][]Vec, g.N())
	total := 0
	for v := 0; v < g.N(); v++ {
		for i := 0; i <= v%3; i++ {
			items[v] = append(items[v], Vec{int64(v), int64(i)})
			total++
		}
	}
	got, stats, err := Gather(g, tr, items, congest.Config{})
	if err != nil {
		t.Fatalf("Gather: %v", err)
	}
	if len(got) != total {
		t.Fatalf("Gather collected %d items, want %d", len(got), total)
	}
	seen := make(map[[2]int64]bool)
	for _, v := range got {
		seen[[2]int64{v[0], v[1]}] = true
	}
	if len(seen) != total {
		t.Fatalf("Gather produced duplicates: %d unique of %d", len(seen), total)
	}
	if limit := total + tr.Height + 1; stats.Rounds > limit {
		t.Fatalf("Gather rounds = %d, want ≤ %d", stats.Rounds, limit)
	}
}
