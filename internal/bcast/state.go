// Checkpoint support: congest.Stateful for the five tree-primitive node
// kinds. Tree topology, root and the root's source list are configuration
// (rebuilt by the phase driver); only the per-run dynamic state
// round-trips.
package bcast

import "repro/internal/congest"

func init() {
	congest.RegisterPayloadCodec("bcast.Vec", Vec(nil),
		func(enc *congest.StateEncoder, p congest.Payload) {
			enc.Int64s(p.(Vec))
		},
		func(dec *congest.StateDecoder) (congest.Payload, error) {
			return Vec(dec.Int64s()), dec.Err()
		})
}

func encodeVecs(enc *congest.StateEncoder, vs []Vec) {
	enc.Int(len(vs))
	for _, v := range vs {
		enc.Int64s(v)
	}
}

func decodeVecs(dec *congest.StateDecoder) []Vec {
	n := dec.Int()
	if dec.Err() != nil {
		return nil
	}
	vs := make([]Vec, 0, n)
	for i := 0; i < n; i++ {
		vs = append(vs, Vec(dec.Int64s()))
	}
	return vs
}

// EncodeState implements congest.Stateful.
func (t *treeNode) EncodeState(enc *congest.StateEncoder) {
	enc.Int(t.dist)
	enc.Int(t.parent)
	enc.Bool(t.fresh)
}

// DecodeState implements congest.Stateful.
func (t *treeNode) DecodeState(dec *congest.StateDecoder) error {
	t.dist = dec.Int()
	t.parent = dec.Int()
	t.fresh = dec.Bool()
	return dec.Err()
}

// EncodeState implements congest.Stateful.
func (c *claimNode) EncodeState(enc *congest.StateEncoder) {
	enc.Ints(c.children)
	enc.Bool(c.sent)
}

// DecodeState implements congest.Stateful.
func (c *claimNode) DecodeState(dec *congest.StateDecoder) error {
	c.children = dec.Ints()
	c.sent = dec.Bool()
	return dec.Err()
}

// EncodeState implements congest.Stateful.
func (a *aggNode) EncodeState(enc *congest.StateEncoder) {
	enc.Int64(a.val)
	enc.Int64(a.arg)
	enc.Int(a.pending)
	enc.Bool(a.sent)
}

// DecodeState implements congest.Stateful.
func (a *aggNode) DecodeState(dec *congest.StateDecoder) error {
	a.val = dec.Int64()
	a.arg = dec.Int64()
	a.pending = dec.Int()
	a.sent = dec.Bool()
	return dec.Err()
}

// EncodeState implements congest.Stateful.
func (p *pipeNode) EncodeState(enc *congest.StateEncoder) {
	enc.Int(p.sentI)
	encodeVecs(enc, p.queue)
	encodeVecs(enc, p.got)
}

// DecodeState implements congest.Stateful.
func (p *pipeNode) DecodeState(dec *congest.StateDecoder) error {
	p.sentI = dec.Int()
	p.queue = decodeVecs(dec)
	p.got = decodeVecs(dec)
	return dec.Err()
}

// EncodeState implements congest.Stateful.
func (gn *gatherNode) EncodeState(enc *congest.StateEncoder) {
	encodeVecs(enc, gn.queue)
	encodeVecs(enc, gn.got)
}

// DecodeState implements congest.Stateful.
func (gn *gatherNode) DecodeState(dec *congest.StateDecoder) error {
	gn.queue = decodeVecs(dec)
	gn.got = decodeVecs(dec)
	return dec.Err()
}
