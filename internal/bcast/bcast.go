// Package bcast provides the global-communication substrate that the
// paper's composite algorithms assume from [3]: a BFS spanning tree of the
// communication graph, convergecast aggregation (max with arg, sum),
// root-to-all broadcast, and pipelined broadcast of value lists.
//
// These are the standard CONGEST building blocks used by the blocker-set
// greedy selection (Sec. III-B: "the new blocker node c can be identified as
// one with the maximum score") and by Steps 3–4 of Algorithm 3 (per-blocker
// distance broadcast). Each primitive is a separate engine run; state flows
// between phases through per-node arrays, which never moves information
// between nodes — it only carries a node's own state into its next phase.
package bcast

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
)

// Vec is a small integer-vector payload.
type Vec []int64

// Words reports the payload size in words.
func (v Vec) Words() int { return len(v) }

// Tree describes a rooted BFS spanning tree of the communication graph.
type Tree struct {
	Root     int
	Parent   []int   // Parent[root] == root; -1 if unreachable
	Children [][]int // sorted ascending
	Depth    []int   // hops from root; -1 if unreachable
	Height   int     // max depth
}

// treeNode floods hop distances from the root; each node adopts the
// minimum-distance (then minimum-ID) sender as parent.
type treeNode struct {
	id     int
	root   int
	dist   int
	parent int
	fresh  bool
}

func (t *treeNode) Init(ctx *congest.Context) {
	t.dist = -1
	t.parent = -1
	if t.id == t.root {
		t.dist = 0
		t.parent = t.id
		t.fresh = true
	}
}

func (t *treeNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		d := int(m.Payload.(Vec)[0]) + 1
		if t.dist < 0 || d < t.dist || (d == t.dist && m.From < t.parent) {
			t.dist = d
			t.parent = m.From
			t.fresh = true
		}
	}
	if t.fresh {
		ctx.Broadcast(Vec{int64(t.dist)})
		t.fresh = false
	}
}

func (t *treeNode) Quiescent() bool { return !t.fresh }

// NextWake implements congest.Waker: a freshly improved distance is
// rebroadcast next round; otherwise only a better offer wakes the node.
func (t *treeNode) NextWake() int {
	if t.fresh {
		return 1 // clamped to the next round
	}
	return congest.WakeOnReceive
}

// claimNode notifies each node's parent so parents learn their children.
type claimNode struct {
	id, parent int
	children   []int
	sent       bool
}

func (c *claimNode) Init(*congest.Context) {}
func (c *claimNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		c.children = append(c.children, m.From)
	}
	if !c.sent {
		c.sent = true
		if c.parent >= 0 && c.parent != c.id {
			ctx.Send(c.parent, Vec{1})
		}
	}
}
func (c *claimNode) Quiescent() bool { return c.sent }

// NextWake implements congest.Waker: one spontaneous claim send, then the
// node only collects its children's claims.
func (c *claimNode) NextWake() int {
	if !c.sent {
		return 1
	}
	return congest.WakeOnReceive
}

// BuildTree constructs a BFS spanning tree rooted at root, distributed:
// a flooding phase establishes distances and parents, a claim phase tells
// parents their children. The communication graph must be connected. cfg
// carries the engine knobs for both phases; the zero value is fine.
func BuildTree(g *graph.Graph, root int, cfg congest.Config) (*Tree, congest.Stats, error) {
	n := g.N()
	if root < 0 || root >= n {
		return nil, congest.Stats{}, fmt.Errorf("bcast: root %d out of range", root)
	}
	tns := make([]*treeNode, n)
	stats, err := congest.Run(g, func(v int) congest.Node {
		tns[v] = &treeNode{id: v, root: root}
		return tns[v]
	}, cfg)
	if err != nil {
		return nil, stats, fmt.Errorf("bcast: BFS phase: %w", err)
	}
	cns := make([]*claimNode, n)
	s2, err := congest.Run(g, func(v int) congest.Node {
		cns[v] = &claimNode{id: v, parent: tns[v].parent}
		return cns[v]
	}, cfg)
	stats.Add(s2)
	if err != nil {
		return nil, stats, fmt.Errorf("bcast: claim phase: %w", err)
	}
	tr := &Tree{Root: root, Parent: make([]int, n), Children: make([][]int, n), Depth: make([]int, n)}
	for v := 0; v < n; v++ {
		tr.Parent[v] = tns[v].parent
		tr.Depth[v] = tns[v].dist
		if tns[v].dist > tr.Height {
			tr.Height = tns[v].dist
		}
		tr.Children[v] = cns[v].children // inbox order is ascending by sender
		if tns[v].dist < 0 {
			return nil, stats, fmt.Errorf("bcast: node %d unreachable from root %d (communication graph disconnected)", v, root)
		}
	}
	return tr, stats, nil
}

// aggNode convergecasts one (value, arg) pair up the tree, combining with a
// binary operation.
type aggNode struct {
	id      int
	tree    *Tree
	val     int64
	arg     int64
	pending int // children not yet reported
	sent    bool
	combine func(v1 int64, a1 int64, v2 int64, a2 int64) (int64, int64)
}

func (a *aggNode) Init(*congest.Context) { a.pending = len(a.tree.Children[a.id]) }

func (a *aggNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		p := m.Payload.(Vec)
		a.val, a.arg = a.combine(a.val, a.arg, p[0], p[1])
		a.pending--
	}
	if !a.sent && a.pending == 0 && a.id != a.tree.Root {
		a.sent = true
		ctx.Send(a.tree.Parent[a.id], Vec{a.val, a.arg})
	}
}

func (a *aggNode) Quiescent() bool { return a.sent || a.pending > 0 || a.id == a.tree.Root }

// NextWake implements congest.Waker: a leaf (or a node whose last child
// just reported) sends once, spontaneously; everyone else acts on receive.
func (a *aggNode) NextWake() int {
	if !a.sent && a.pending == 0 && a.id != a.tree.Root {
		return 1
	}
	return congest.WakeOnReceive
}

// MaxArg aggregates the maximum of vals with the smallest arg attaining it
// to the tree root. args default to the node ID. Returns the max, its arg,
// and the run stats. Only the root's view is returned (a follow-up
// Broadcast distributes it when needed).
func MaxArg(g *graph.Graph, tr *Tree, vals []int64, cfg congest.Config) (int64, int64, congest.Stats, error) {
	combine := func(v1, a1, v2, a2 int64) (int64, int64) {
		if v2 > v1 || (v2 == v1 && a2 < a1) {
			return v2, a2
		}
		return v1, a1
	}
	nodes := make([]*aggNode, g.N())
	stats, err := congest.Run(g, func(v int) congest.Node {
		nodes[v] = &aggNode{id: v, tree: tr, val: vals[v], arg: int64(v), combine: combine}
		return nodes[v]
	}, cfg)
	if err != nil {
		return 0, 0, stats, fmt.Errorf("bcast: MaxArg: %w", err)
	}
	root := nodes[tr.Root]
	return root.val, root.arg, stats, nil
}

// Sum aggregates the sum of vals to the tree root.
func Sum(g *graph.Graph, tr *Tree, vals []int64, cfg congest.Config) (int64, congest.Stats, error) {
	combine := func(v1, a1, v2, a2 int64) (int64, int64) { return v1 + v2, 0 }
	nodes := make([]*aggNode, g.N())
	stats, err := congest.Run(g, func(v int) congest.Node {
		nodes[v] = &aggNode{id: v, tree: tr, val: vals[v], combine: combine}
		return nodes[v]
	}, cfg)
	if err != nil {
		return 0, stats, fmt.Errorf("bcast: Sum: %w", err)
	}
	return nodes[tr.Root].val, stats, nil
}

// pipeNode relays a stream of Vec values down the tree in pipeline order.
type pipeNode struct {
	id    int
	tree  *Tree
	src   []Vec // only at root
	sentI int
	queue []Vec // received, to forward next round
	got   []Vec
}

func (p *pipeNode) Init(*congest.Context) {}

func (p *pipeNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		v := m.Payload.(Vec)
		p.got = append(p.got, v)
		p.queue = append(p.queue, v)
	}
	var out Vec
	if p.id == p.tree.Root {
		if p.sentI < len(p.src) {
			out = p.src[p.sentI]
			p.sentI++
		}
	} else if len(p.queue) > 0 {
		out = p.queue[0]
		p.queue = p.queue[1:]
	}
	if out != nil {
		for _, c := range p.tree.Children[p.id] {
			ctx.Send(c, out)
		}
	}
}

func (p *pipeNode) Quiescent() bool {
	if p.id == p.tree.Root {
		return p.sentI >= len(p.src)
	}
	return len(p.queue) == 0
}

// NextWake implements congest.Waker: the root streams one value per round
// until its list is exhausted; relays act while their queue drains.
func (p *pipeNode) NextWake() int {
	if p.id == p.tree.Root {
		if p.sentI < len(p.src) {
			return 1
		}
		return congest.WakeOnReceive
	}
	if len(p.queue) > 0 {
		return 1
	}
	return congest.WakeOnReceive
}

// Broadcast pipelines the given values from the tree root to every node.
// Every node receives all values in order; rounds ≤ len(values) + tree
// height. Returns each node's received list (the root's is the input).
func Broadcast(g *graph.Graph, tr *Tree, values []Vec, cfg congest.Config) ([][]Vec, congest.Stats, error) {
	nodes := make([]*pipeNode, g.N())
	stats, err := congest.Run(g, func(v int) congest.Node {
		nodes[v] = &pipeNode{id: v, tree: tr}
		if v == tr.Root {
			nodes[v].src = values
		}
		return nodes[v]
	}, cfg)
	if err != nil {
		return nil, stats, fmt.Errorf("bcast: Broadcast: %w", err)
	}
	out := make([][]Vec, g.N())
	for v := range nodes {
		if v == tr.Root {
			out[v] = values
		} else {
			out[v] = nodes[v].got
		}
	}
	return out, stats, nil
}

// Gather pipelines every node's value list up to the root (a convergecast
// of lists). Each node v contributes items[v]; the root ends with all items
// tagged by origin. Rounds ≤ total items + tree height.
type gatherNode struct {
	id    int
	tree  *Tree
	queue []Vec
	got   []Vec
}

func (gn *gatherNode) Init(*congest.Context) {}

func (gn *gatherNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		v := m.Payload.(Vec)
		gn.got = append(gn.got, v)
		if gn.id != gn.tree.Root {
			gn.queue = append(gn.queue, v)
		}
	}
	if gn.id != gn.tree.Root && len(gn.queue) > 0 {
		ctx.Send(gn.tree.Parent[gn.id], gn.queue[0])
		gn.queue = gn.queue[1:]
	}
}

func (gn *gatherNode) Quiescent() bool { return gn.id == gn.tree.Root || len(gn.queue) == 0 }

// NextWake implements congest.Waker: a non-root node forwards one queued
// item per round; the root only receives.
func (gn *gatherNode) NextWake() int {
	if gn.id != gn.tree.Root && len(gn.queue) > 0 {
		return 1
	}
	return congest.WakeOnReceive
}

// Gather collects items[v] from every node v at the root. Returns the
// root's received items (origin must be encoded in the Vec by the caller).
func Gather(g *graph.Graph, tr *Tree, items [][]Vec, cfg congest.Config) ([]Vec, congest.Stats, error) {
	nodes := make([]*gatherNode, g.N())
	stats, err := congest.Run(g, func(v int) congest.Node {
		nodes[v] = &gatherNode{id: v, tree: tr, queue: append([]Vec(nil), items[v]...)}
		return nodes[v]
	}, cfg)
	if err != nil {
		return nil, stats, fmt.Errorf("bcast: Gather: %w", err)
	}
	out := append([]Vec(nil), items[tr.Root]...)
	out = append(out, nodes[tr.Root].got...)
	return out, stats, nil
}
