package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/oracle"
)

// testCluster is an in-process cluster: real oracle servers behind real
// httptest listeners, fronted by a Router behind its own listener —
// everything the production topology has except separate processes.
type testCluster struct {
	g       *graph.Graph
	m       *Map
	servers [][]*oracle.Server   // [shard][replica]
	back    [][]*httptest.Server // [shard][replica]
	router  *Router
	front   *httptest.Server
}

// buildShardSnapE computes shard k's snapshot with the reference solver:
// one Dijkstra tree per owned source, exactly what apspd -shard serves.
func buildShardSnapE(g *graph.Graph, k, nShards int) (*oracle.Snapshot, error) {
	lo, hi := Range(g.N(), k, nShards)
	sources := make([]int, 0, hi-lo)
	dist := make([][]int64, 0, hi-lo)
	parent := make([][]int, 0, hi-lo)
	for s := lo; s < hi; s++ {
		d, p := graph.DijkstraTree(g, s)
		sources = append(sources, s)
		dist = append(dist, d)
		parent = append(parent, p)
	}
	return oracle.Build(g, oracle.BuildInput{Alg: "dijkstra", Sources: sources, Dist: dist, Parent: parent},
		oracle.BuildOpts{Fingerprint: checkpoint.Fingerprint(g)})
}

func buildShardSnap(t *testing.T, g *graph.Graph, k, nShards int) *oracle.Snapshot {
	t.Helper()
	snap, err := buildShardSnapE(g, k, nShards)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// startCluster boots nShards shards with `replicas` servers each over a
// seeded random graph, and a router over them. opts.Map and opts.Seed are
// filled in; everything else is the caller's.
func startCluster(t *testing.T, n, nShards, replicas int, opts Options) *testCluster {
	t.Helper()
	tc := &testCluster{g: graph.Random(n, 4*n, graph.GenOpts{Seed: 7, MaxW: 8, ZeroFrac: 0.25, Directed: true})}
	replicaSets := make([][]string, nShards)
	for k := 0; k < nShards; k++ {
		snap := buildShardSnap(t, tc.g, k, nShards)
		var srvs []*oracle.Server
		var backs []*httptest.Server
		for r := 0; r < replicas; r++ {
			k := k
			srv := &oracle.Server{
				Store: &oracle.Store{}, Cache: oracle.NewPathCache(1024),
				Met: oracle.NewMetrics(), ShardID: FormatShardID(k, nShards),
				Recompute: func(ctx context.Context) (*oracle.Snapshot, error) {
					return buildShardSnapE(tc.g, k, nShards)
				},
			}
			srv.Publish(snap)
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			srvs = append(srvs, srv)
			backs = append(backs, ts)
			replicaSets[k] = append(replicaSets[k], ts.URL)
		}
		tc.servers = append(tc.servers, srvs)
		tc.back = append(tc.back, backs)
	}
	m, err := NewContiguous(n, fmt.Sprintf("%016x", checkpoint.Fingerprint(tc.g)), replicaSets)
	if err != nil {
		t.Fatal(err)
	}
	tc.m = m
	opts.Map = m
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	router, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = router
	tc.front = httptest.NewServer(router.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

func getJSON(t *testing.T, url string, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestRouterRoutesQueries: every (src, dst) answered through the router
// matches the reference solver, whichever shard owns the source, and the
// generation/shard headers survive the hop.
func TestRouterRoutesQueries(t *testing.T) {
	tc := startCluster(t, 24, 3, 1, Options{})
	for src := 0; src < tc.g.N(); src++ {
		want := graph.Dijkstra(tc.g, src)
		for _, dst := range []int{0, 5, 11, 23} {
			var d struct {
				Reachable bool   `json:"reachable"`
				Dist      *int64 `json:"dist"`
				Gen       uint64 `json:"gen"`
			}
			status, hdr := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=%d", tc.front.URL, src, dst), &d)
			if status != http.StatusOK {
				t.Fatalf("dist(%d,%d) status %d", src, dst, status)
			}
			switch {
			case want[dst] >= graph.Inf:
				if d.Reachable {
					t.Fatalf("dist(%d,%d) should be unreachable, got %+v", src, dst, d)
				}
			case d.Dist == nil || *d.Dist != want[dst]:
				t.Fatalf("dist(%d,%d) = %+v, Dijkstra %d", src, dst, d, want[dst])
			}
			if hdr.Get(oracle.GenHeader) != "1" {
				t.Fatalf("dist(%d,%d) gen header %q, want 1", src, dst, hdr.Get(oracle.GenHeader))
			}
			wantShard := FormatShardID(tc.m.ShardFor(src).ID, 3)
			if hdr.Get(oracle.ShardHeader) != wantShard {
				t.Fatalf("dist(%d,%d) shard header %q, want %q", src, dst, hdr.Get(oracle.ShardHeader), wantShard)
			}
		}
	}

	// /path forwards the same way.
	var p struct {
		Path []int `json:"path"`
		Dist int64 `json:"dist"`
	}
	if status, _ := getJSON(t, tc.front.URL+"/path?src=20&dst=3", &p); status != http.StatusOK && status != http.StatusNotFound {
		t.Fatalf("path status %d", status)
	}

	// Cluster health: all shards up, fingerprints agree.
	var h clusterHealth
	if status, _ := getJSON(t, tc.front.URL+"/healthz", &h); status != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: status %d body %+v", status, h)
	}
	if len(h.Shards) != 3 {
		t.Fatalf("healthz shards %+v", h.Shards)
	}
}

// TestRouterBatchScatter: one /batch spanning all shards comes back in
// request order, each answer from the owning shard, with per-query 404
// entries for sources outside the map.
func TestRouterBatchScatter(t *testing.T) {
	tc := startCluster(t, 24, 3, 1, Options{})
	type q struct {
		Kind string `json:"kind,omitempty"`
		Src  int    `json:"src"`
		Dst  int    `json:"dst"`
	}
	qs := []q{{Src: 0, Dst: 5}, {Src: 23, Dst: 1}, {Src: 9, Dst: 9}, {Src: 99, Dst: 0}, {Kind: "path", Src: 15, Dst: 2}, {Src: 3, Dst: 17}}
	body, _ := json.Marshal(map[string]any{"queries": qs})
	resp, err := http.Post(tc.front.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Gen     uint64 `json:"gen"`
		Results []struct {
			Src    int    `json:"src"`
			Dst    int    `json:"dst"`
			Dist   *int64 `json:"dist"`
			Path   []int  `json:"path"`
			Error  string `json:"error"`
			Status int    `json:"status"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("batch answer %q: %v", raw, err)
	}
	if out.Gen != 1 || len(out.Results) != len(qs) {
		t.Fatalf("batch gen=%d results=%d, want gen=1 results=%d", out.Gen, len(out.Results), len(qs))
	}
	for i, r := range out.Results {
		if r.Src != qs[i].Src || r.Dst != qs[i].Dst {
			t.Fatalf("result %d is (%d,%d), want (%d,%d) — order lost", i, r.Src, r.Dst, qs[i].Src, qs[i].Dst)
		}
		if qs[i].Src == 99 {
			if r.Status != http.StatusNotFound || r.Error == "" {
				t.Fatalf("out-of-map query got %+v, want 404 entry", r)
			}
			continue
		}
		if r.Error != "" {
			t.Fatalf("result %d errored: %+v", i, r)
		}
		want := graph.Dijkstra(tc.g, r.Src)[r.Dst]
		if want < graph.Inf && (r.Dist == nil || *r.Dist != want) {
			t.Fatalf("result %d dist %+v, Dijkstra %d", i, r.Dist, want)
		}
		if qs[i].Kind == "path" && want < graph.Inf && len(r.Path) == 0 {
			t.Fatalf("path query %d came back without a path: %+v", i, r)
		}
	}
	if resp.Header.Get(oracle.GenHeader) != "1" {
		t.Fatalf("batch gen header %q", resp.Header.Get(oracle.GenHeader))
	}
}

// TestRouterShardFailure: with one shard dark, its queries degrade to
// per-query 502 entries (the batch still answers) and its single-source
// queries to 502 responses; /healthz turns degraded.
func TestRouterShardFailure(t *testing.T) {
	tc := startCluster(t, 12, 3, 1, Options{
		AttemptTimeout: 200 * time.Millisecond, MaxAttempts: 2,
	})
	tc.back[1][0].Close() // shard 1 (sources 4..7) goes dark

	var probe struct{}
	status, _ := getJSON(t, fmt.Sprintf("%s/dist?src=5&dst=0", tc.front.URL), &probe)
	if status != http.StatusBadGateway {
		t.Fatalf("dist on a dead shard: status %d, want 502", status)
	}

	body, _ := json.Marshal(map[string]any{"queries": []map[string]int{
		{"src": 0, "dst": 1}, {"src": 5, "dst": 1}, {"src": 10, "dst": 1},
	}})
	resp, err := http.Post(tc.front.URL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []struct {
			Src    int    `json:"src"`
			Error  string `json:"error"`
			Status int    `json:"status"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(out.Results) != 3 {
		t.Fatalf("batch status %d results %+v", resp.StatusCode, out.Results)
	}
	for i, r := range out.Results {
		deadShard := r.Src == 5
		if deadShard && (r.Status != http.StatusBadGateway || r.Error == "") {
			t.Fatalf("result %d (dead shard) = %+v, want 502 entry", i, r)
		}
		if !deadShard && r.Error != "" {
			t.Fatalf("result %d (live shard) errored: %+v", i, r)
		}
	}

	var h clusterHealth
	status, _ = getJSON(t, tc.front.URL+"/healthz", &h)
	if status != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("healthz with a dead shard: status %d body %+v", status, h)
	}
}

// TestRouterMixedGenRefusal is the generation-coherence gate: a /batch
// gathered while shards disagree on generation is refused with 503 (after
// one retry round) rather than assembled from two snapshots; once the
// laggard catches up the same batch answers from the new generation.
func TestRouterMixedGenRefusal(t *testing.T) {
	tc := startCluster(t, 12, 2, 1, Options{})
	batch := func() (int, uint64, http.Header) {
		body, _ := json.Marshal(map[string]any{"queries": []map[string]int{
			{"src": 0, "dst": 1}, {"src": 11, "dst": 1},
		}})
		resp, err := http.Post(tc.front.URL+"/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Gen uint64 `json:"gen"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out.Gen, resp.Header
	}

	if status, gen, _ := batch(); status != http.StatusOK || gen != 1 {
		t.Fatalf("coherent batch: status %d gen %d", status, gen)
	}

	// Shard 1 moves to generation 2; shard 0 lags.
	tc.servers[1][0].Publish(buildShardSnap(t, tc.g, 1, 2))
	status, _, hdr := batch()
	if status != http.StatusServiceUnavailable {
		t.Fatalf("mixed-generation batch answered %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("mixed-generation refusal carries no Retry-After")
	}
	if v := tc.router.Metrics().MixedGenRefusals.Value(); v < 1 {
		t.Fatalf("MixedGenRefusals = %v, want >= 1", v)
	}
	if v := tc.router.Metrics().GenRetries.Value(); v < 1 {
		t.Fatalf("GenRetries = %v, want >= 1 (laggard must be retried before refusing)", v)
	}

	// Laggard catches up: the same batch serves again, single generation.
	tc.servers[0][0].Publish(buildShardSnap(t, tc.g, 0, 2))
	if status, gen, _ := batch(); status != http.StatusOK || gen != 2 {
		t.Fatalf("post-rollout batch: status %d gen %d, want 200 gen 2", status, gen)
	}
}

// TestRouterRollout: POST /admin/recompute walks the shards one at a
// time; every backend republishes and the router's generation tracking
// follows.
func TestRouterRollout(t *testing.T) {
	tc := startCluster(t, 12, 3, 1, Options{
		RolloutPoll: 5 * time.Millisecond, RolloutTimeout: 10 * time.Second,
	})
	resp, err := http.Post(tc.front.URL+"/admin/recompute", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("recompute trigger status %d, want 202", resp.StatusCode)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		var h clusterHealth
		status, _ := getJSON(t, tc.front.URL+"/healthz", &h)
		done := status == http.StatusOK && !h.Rollout
		if done {
			for _, sh := range h.Shards {
				if sh.Gen != 2 {
					done = false
				}
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollout never completed: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := tc.router.Metrics().Rollouts.Value(); v != 1 {
		t.Fatalf("Rollouts = %v, want 1", v)
	}
	if v := tc.router.Metrics().RolloutFails.Value(); v != 0 {
		t.Fatalf("RolloutFails = %v, want 0", v)
	}
}

// TestRouterInputErrors: malformed requests are refused at the router
// without touching a backend.
func TestRouterInputErrors(t *testing.T) {
	tc := startCluster(t, 8, 2, 1, Options{BatchBudget: 4})
	for _, c := range []struct {
		path string
		want int
	}{
		{"/dist?src=abc&dst=0", http.StatusBadRequest},
		{"/dist?src=99&dst=0", http.StatusNotFound},
		{"/dist?src=-1&dst=0", http.StatusNotFound},
	} {
		if status, _ := getJSON(t, tc.front.URL+c.path, nil); status != c.want {
			t.Errorf("%s: status %d, want %d", c.path, status, c.want)
		}
	}
	post := func(body string) int {
		resp, err := http.Post(tc.front.URL+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if status := post("{not json"); status != http.StatusBadRequest {
		t.Errorf("bad body: %d", status)
	}
	if status := post(`{"queries":[]}`); status != http.StatusBadRequest {
		t.Errorf("empty batch: %d", status)
	}
	if status := post(`{"queries":[{"src":0,"dst":0},{"src":0,"dst":1},{"src":0,"dst":2},{"src":0,"dst":3},{"src":0,"dst":4}]}`); status != http.StatusRequestEntityTooLarge {
		t.Errorf("over-budget batch: %d", status)
	}
}
