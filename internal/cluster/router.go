package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/oracle"
)

// Defaults for the Router knobs (applied when the field is zero).
const (
	DefaultDeadline       = 5 * time.Second
	DefaultBatchBudget    = 4096
	DefaultRolloutPoll    = 50 * time.Millisecond
	DefaultRolloutTimeout = 5 * time.Minute
	maxBatchBytes         = 4 << 20
	// retryAfterSecs is stamped on every refusal the router synthesizes
	// (mixed generations, rollout conflict) — same drain-time contract as
	// the backend's shed responses.
	retryAfterSecs = "1"
)

// Options configures a Router.
type Options struct {
	// Map is the validated cluster layout. Required.
	Map *Map
	// Inner is the physical transport replicas are reached through (nil =
	// http.DefaultTransport). Tests inject in-process or fault-wrapped
	// transports here.
	Inner http.RoundTripper
	// AttemptTimeout, MaxAttempts, HedgeDelay, and Seed tune the per-shard
	// internal/client instances (zero = that package's defaults; hedging
	// is always on for queries with MaxHedges=1 and always off for admin
	// calls — the router never hedges a mutation).
	AttemptTimeout time.Duration
	MaxAttempts    int
	HedgeDelay     time.Duration
	Seed           int64
	// Deadline bounds one routed request end to end, scatter included.
	Deadline time.Duration
	// BatchBudget caps the queries in one /batch, pre-split.
	BatchBudget int
	// RolloutPoll and RolloutTimeout pace the shard-by-shard recompute
	// drain: after triggering a shard the router polls its /healthz every
	// RolloutPoll until the generation advances, giving up (and aborting
	// the rollout) after RolloutTimeout per shard.
	RolloutPoll    time.Duration
	RolloutTimeout time.Duration
	// Log receives operational records (nil = silent).
	Log *slog.Logger
}

// shardClient is one shard's view from the router: the logical endpoint
// its clients hedge under, and the last generation any of its replicas
// reported. Two clients per shard because query traffic hedges and
// retries freely (idempotent reads) while admin traffic must do neither —
// a hedged /admin/recompute could double-trigger a rebuild. The admin
// client also skips the replica rotation: mutations address each replica
// by its physical base URL, exactly once.
type shardClient struct {
	shard *Shard
	base  string // logical base URL, e.g. "http://apsp-shard-0"
	query *client.Client
	admin *client.Client
	// lastGen is the highest generation seen in any response header from
	// this shard; 0 until the first contact.
	lastGen atomic.Uint64
}

func (sc *shardClient) noteGen(h http.Header) uint64 {
	v := h.Get(oracle.GenHeader)
	if v == "" {
		return 0
	}
	gen, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	for {
		old := sc.lastGen.Load()
		if gen <= old || sc.lastGen.CompareAndSwap(old, gen) {
			return gen
		}
	}
}

// Router is the scatter-gather front-end over a shard map: it serves the
// apspd query surface by forwarding each query to the backend owning its
// source, splitting /batch bodies by shard, and refusing to assemble an
// answer from mixed generations. The router holds no graph state — only
// the map and per-shard reliability machinery — so any number of routers
// can front the same backends.
type Router struct {
	opts   Options
	met    *Metrics
	shards []*shardClient
	log    *slog.Logger

	rolling atomic.Bool
	// synced remembers the client-stat totals already pushed into the
	// monotone counters (set-via-add on scrape).
	syncMu sync.Mutex
	synced client.Stats
}

// NewRouter validates the map and builds the per-shard clients.
func NewRouter(opts Options) (*Router, error) {
	if opts.Map == nil {
		return nil, fmt.Errorf("cluster: router needs a shard map")
	}
	if err := opts.Map.Validate(); err != nil {
		return nil, err
	}
	if opts.Deadline <= 0 {
		opts.Deadline = DefaultDeadline
	}
	if opts.BatchBudget <= 0 {
		opts.BatchBudget = DefaultBatchBudget
	}
	if opts.RolloutPoll <= 0 {
		opts.RolloutPoll = DefaultRolloutPoll
	}
	if opts.RolloutTimeout <= 0 {
		opts.RolloutTimeout = DefaultRolloutTimeout
	}
	r := &Router{opts: opts, met: newMetrics(len(opts.Map.Shards)), log: opts.Log}
	for i := range opts.Map.Shards {
		s := &opts.Map.Shards[i]
		rt, err := newReplicaTransport(s.Replicas, opts.Inner)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", s.ID, err)
		}
		r.shards = append(r.shards, &shardClient{
			shard: s,
			base:  fmt.Sprintf("http://apsp-shard-%d", s.ID),
			query: client.New(client.Options{
				Transport:      rt,
				AttemptTimeout: opts.AttemptTimeout,
				MaxAttempts:    opts.MaxAttempts,
				HedgeDelay:     opts.HedgeDelay,
				Seed:           opts.Seed + int64(s.ID),
				MaxHedges:      1,
			}),
			// Admin calls: one attempt, no hedge, no breaker, physical
			// addressing — a mutation must reach each backend exactly as
			// many times as the operator asked for it, and a refused one
			// must surface, not trip reads.
			admin: client.New(client.Options{
				Transport:      opts.Inner,
				AttemptTimeout: opts.AttemptTimeout,
				MaxAttempts:    1,
				Seed:           opts.Seed + int64(s.ID),
				BreakerTrip:    -1,
			}),
		})
	}
	return r, nil
}

// Metrics exposes the router instrument set (for tests and embedding).
func (r *Router) Metrics() *Metrics { return r.met }

// Handler builds the route table — the same surface apspd serves, so a
// client needs no code change to move from one backend to the cluster.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dist", r.forward("dist"))
	mux.HandleFunc("GET /path", r.forward("path"))
	mux.HandleFunc("POST /batch", r.handleBatch)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("POST /admin/recompute", r.handleRecompute)
	return mux
}

func (r *Router) logAt(level slog.Level, msg string, attrs ...slog.Attr) {
	if r.log != nil {
		r.log.LogAttrs(context.Background(), level, msg, attrs...)
	}
}

// forward routes a single-source query (/dist or /path) to the shard
// owning src, verbatim query string and all, and relays the backend's
// answer — status, body, and the generation/shard headers the cluster
// contract rides on.
func (r *Router) forward(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		qc, lat := r.met.Query(kind)
		qc.Inc()
		start := time.Now()
		defer func() { lat.Observe(time.Since(start).Seconds()) }()

		src, err := strconv.Atoi(req.URL.Query().Get("src"))
		if err != nil {
			r.met.Errors.Inc()
			writeErr(w, http.StatusBadRequest, "bad or missing src: %v", err)
			return
		}
		sc := r.shardClientFor(src)
		if sc == nil {
			r.met.Unrouted.Inc()
			r.met.Errors.Inc()
			writeErr(w, http.StatusNotFound, "source %d outside cluster map (n=%d)", src, r.opts.Map.N)
			return
		}
		ctx, cancel := context.WithTimeout(req.Context(), r.opts.Deadline)
		defer cancel()
		resp, err := sc.query.GetJSON(ctx, sc.base+"/"+kind+"?"+req.URL.RawQuery, nil)
		if err != nil {
			r.met.ShardFailures.Inc()
			r.met.Errors.Inc()
			writeErrRetry(w, http.StatusBadGateway, "shard %d unavailable: %v", sc.shard.ID, err)
			return
		}
		gen := sc.noteGen(resp.Header)
		r.met.shardGen[sc.shard.ID].Set(float64(sc.lastGen.Load()))
		if resp.Status >= 400 {
			r.met.Errors.Inc()
		}
		relayHeaders(w, resp.Header)
		w.Header().Set(oracle.GenHeader, strconv.FormatUint(gen, 10))
		w.WriteHeader(resp.Status)
		_, _ = w.Write(resp.Body)
	}
}

// relayHeaders copies the answer headers a cluster client relies on.
func relayHeaders(w http.ResponseWriter, h http.Header) {
	for _, k := range []string{"Content-Type", oracle.ShardHeader, "Retry-After"} {
		if v := h.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
}

func (r *Router) shardClientFor(src int) *shardClient {
	s := r.opts.Map.ShardFor(src)
	if s == nil {
		return nil
	}
	for _, sc := range r.shards {
		if sc.shard.ID == s.ID {
			return sc
		}
	}
	return nil
}

// batchEnvelope is the /batch request with each query kept as raw JSON:
// the router needs only src (to route) and dst (to label error entries);
// everything else passes through to the owning backend untouched, so the
// router never lags the backend's query schema.
type batchEnvelope struct {
	Queries []json.RawMessage `json:"queries"`
}

type batchRoute struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// shardBatchResp is the slice of a backend /batch answer the router needs:
// the generation and the per-query results, kept raw for reassembly.
type shardBatchResp struct {
	Gen     uint64            `json:"gen"`
	Results []json.RawMessage `json:"results"`
}

// batchErrEntry mirrors the backend's per-query error result shape, so a
// shard-level failure degrades into the same per-query errors a client
// already handles (the BatchPartialError contract, lifted to shards).
type batchErrEntry struct {
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// subBatch is the per-shard slice of one /batch: which original indexes
// went to the shard, and the raw queries to send. lastGen records the
// generation of its most recent successful answer (0 = failed).
type subBatch struct {
	sc      *shardClient
	indexes []int
	queries []json.RawMessage
	lastGen uint64
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	qc, lat := r.met.Query("batch")
	qc.Inc()
	start := time.Now()
	defer func() { lat.Observe(time.Since(start).Seconds()) }()

	var env batchEnvelope
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBatchBytes))
	if err := dec.Decode(&env); err != nil {
		r.met.Errors.Inc()
		writeErr(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(env.Queries) == 0 {
		r.met.Errors.Inc()
		writeErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(env.Queries) > r.opts.BatchBudget {
		r.met.Errors.Inc()
		writeErr(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds budget %d", len(env.Queries), r.opts.BatchBudget)
		return
	}

	// Split by owning shard; queries no shard owns get their 404 entry
	// directly (the backend would answer the same for an unknown source).
	results := make([]json.RawMessage, len(env.Queries))
	subs := map[int]*subBatch{}
	for i, raw := range env.Queries {
		var q batchRoute
		if err := json.Unmarshal(raw, &q); err != nil {
			results[i] = errEntry(0, 0, http.StatusBadRequest, "unparseable query: %v", err)
			continue
		}
		sc := r.shardClientFor(q.Src)
		if sc == nil {
			r.met.Unrouted.Inc()
			results[i] = errEntry(q.Src, q.Dst, http.StatusNotFound, "source %d outside cluster map (n=%d)", q.Src, r.opts.Map.N)
			continue
		}
		sb := subs[sc.shard.ID]
		if sb == nil {
			sb = &subBatch{sc: sc}
			subs[sc.shard.ID] = sb
		}
		sb.indexes = append(sb.indexes, i)
		sb.queries = append(sb.queries, raw)
	}

	ctx, cancel := context.WithTimeout(req.Context(), r.opts.Deadline)
	defer cancel()

	// Scatter, gather, and chase generation agreement: if the gathered
	// shards disagree (a rollout is mid-flight), the lagging sub-batches
	// are re-issued once — their backends have usually republished by the
	// time the fastest shard answered from the new generation. Still mixed
	// after that: refuse with 503 rather than hand out a frankenanswer.
	gens, failed := r.scatter(ctx, subs, results)
	if len(gens) > 1 {
		var maxGen uint64
		for g := range gens {
			if g > maxGen {
				maxGen = g
			}
		}
		retry := map[int]*subBatch{}
		for id, sb := range subs {
			if sb.gen() != 0 && sb.gen() < maxGen {
				r.met.GenRetries.Inc()
				retry[id] = sb
			}
		}
		_, rfailed := r.scatter(ctx, retry, results)
		failed += rfailed
		// Re-derive the gathered generations from every sub-batch's final
		// answer (a failed retry drops its shard — its slots already carry
		// 502 entries, which don't claim a generation).
		gens = map[uint64]bool{}
		for _, sb := range subs {
			if g := sb.gen(); g != 0 {
				gens[g] = true
			}
		}
		if len(gens) > 1 {
			r.met.MixedGenRefusals.Inc()
			r.met.Errors.Inc()
			r.logAt(slog.LevelWarn, "refusing mixed-generation batch", slog.Uint64("max_gen", maxGen))
			writeErrRetry(w, http.StatusServiceUnavailable,
				"cluster generations disagree even after retry (rollout in progress), retry later")
			return
		}
	}
	var gen uint64
	for g := range gens {
		gen = g
	}
	if failed > 0 {
		r.met.Errors.Inc()
	}
	w.Header().Set(oracle.GenHeader, strconv.FormatUint(gen, 10))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Reassembled by hand: results are raw backend JSON, in request order.
	var buf bytes.Buffer
	buf.WriteString(`{"gen":`)
	buf.WriteString(strconv.FormatUint(gen, 10))
	buf.WriteString(`,"results":[`)
	for i, res := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(res)
	}
	buf.WriteString("]}\n")
	_, _ = w.Write(buf.Bytes())
}

// gen reads the generation of the sub-batch's last answer (0 = failed).
func (sb *subBatch) gen() uint64 { return sb.lastGen }

// scatter posts every sub-batch concurrently, writes each answer's raw
// results (or synthesized error entries) into the request-order slots, and
// returns the set of generations gathered plus the failed-shard count.
func (r *Router) scatter(ctx context.Context, subs map[int]*subBatch, results []json.RawMessage) (map[uint64]bool, int) {
	var mu sync.Mutex
	gens := map[uint64]bool{}
	failed := 0
	var wg sync.WaitGroup
	for _, sb := range subs {
		wg.Add(1)
		go func(sb *subBatch) {
			defer wg.Done()
			gen, ok := r.scatterOne(ctx, sb, results)
			mu.Lock()
			defer mu.Unlock()
			if !ok {
				failed++
				return
			}
			gens[gen] = true
		}(sb)
	}
	wg.Wait()
	return gens, failed
}

// scatterOne sends one shard's sub-batch and places its results. On shard
// failure every slot gets a 502 error entry — the batch still answers.
func (r *Router) scatterOne(ctx context.Context, sb *subBatch, results []json.RawMessage) (uint64, bool) {
	sb.lastGen = 0
	body, _ := json.Marshal(batchEnvelope{Queries: sb.queries})
	var sr shardBatchResp
	resp, err := sb.sc.query.PostJSON(ctx, sb.sc.base+"/batch", body, nil)
	if err == nil && resp.Status == http.StatusOK {
		err = json.Unmarshal(resp.Body, &sr)
	}
	if err != nil || resp.Status != http.StatusOK || len(sr.Results) != len(sb.indexes) {
		reason := "shard unavailable"
		switch {
		case err != nil:
			reason = err.Error()
		case resp.Status != http.StatusOK:
			reason = fmt.Sprintf("shard answered HTTP %d", resp.Status)
		default:
			reason = fmt.Sprintf("shard answered %d results for %d queries", len(sr.Results), len(sb.indexes))
		}
		r.met.ShardFailures.Inc()
		r.logAt(slog.LevelWarn, "batch shard failed",
			slog.Int("shard", sb.sc.shard.ID), slog.String("err", reason))
		for j, i := range sb.indexes {
			var q batchRoute
			_ = json.Unmarshal(sb.queries[j], &q)
			results[i] = errEntry(q.Src, q.Dst, http.StatusBadGateway, "shard %d: %s", sb.sc.shard.ID, reason)
		}
		return 0, false
	}
	sb.sc.noteGen(resp.Header)
	r.met.shardGen[sb.sc.shard.ID].Set(float64(sb.sc.lastGen.Load()))
	sb.lastGen = sr.Gen
	for j, i := range sb.indexes {
		results[i] = sr.Results[j]
	}
	return sr.Gen, true
}

func errEntry(src, dst, status int, format string, args ...any) json.RawMessage {
	raw, _ := json.Marshal(batchErrEntry{Src: src, Dst: dst, Status: status, Error: fmt.Sprintf(format, args...)})
	return raw
}

// clusterHealth is the router /healthz body: the cluster verdict plus one
// probe result per shard.
type clusterHealth struct {
	Status  string        `json:"status"` // "ok" | "degraded"
	N       int           `json:"n"`
	Rollout bool          `json:"rollout,omitempty"`
	Shards  []shardHealth `json:"shards"`
}

type shardHealth struct {
	ID          int    `json:"id"`
	Lo          int    `json:"lo"`
	Hi          int    `json:"hi"`
	Status      string `json:"status"`
	Gen         uint64 `json:"gen,omitempty"`
	Shard       string `json:"shard,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Error       string `json:"error,omitempty"`
}

// backendHealth is the slice of the apspd /healthz body the router reads.
type backendHealth struct {
	Status      string `json:"status"`
	Gen         uint64 `json:"gen"`
	N           int    `json:"n"`
	Shard       string `json:"shard"`
	Fingerprint string `json:"fingerprint"`
	Recomputing bool   `json:"recomputing"`
}

// handleHealthz probes every shard concurrently. The cluster is "ok" (200)
// only when every shard answers, agrees with the map's node count, and —
// when the map pins a fingerprint — serves that exact graph; anything less
// is "degraded" (503). A router in front of the wrong backends must fail
// its readiness check, not serve wrong answers.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	ctx, cancel := context.WithTimeout(req.Context(), r.opts.Deadline)
	defer cancel()
	resp := clusterHealth{Status: "ok", N: r.opts.Map.N, Rollout: r.rolling.Load(), Shards: make([]shardHealth, len(r.shards))}
	var wg sync.WaitGroup
	for i, sc := range r.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			resp.Shards[i] = r.probeShard(ctx, sc)
		}(i, sc)
	}
	wg.Wait()
	status := http.StatusOK
	for i := range resp.Shards {
		up := resp.Shards[i].Status == "ok" || resp.Shards[i].Status == "stale"
		r.met.shardUp[resp.Shards[i].ID].Set(b2f(up))
		if !up {
			resp.Status = "degraded"
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, resp)
}

// probeShard checks one shard's health against the map's expectations.
func (r *Router) probeShard(ctx context.Context, sc *shardClient) shardHealth {
	sh := shardHealth{ID: sc.shard.ID, Lo: sc.shard.Lo, Hi: sc.shard.Hi}
	var bh backendHealth
	resp, err := sc.query.GetJSON(ctx, sc.base+"/healthz", &bh)
	if err != nil {
		sh.Status, sh.Error = "down", err.Error()
		return sh
	}
	if resp.Status != http.StatusOK {
		sh.Status, sh.Error = "down", fmt.Sprintf("healthz answered HTTP %d", resp.Status)
		return sh
	}
	sc.noteGen(resp.Header)
	r.met.shardGen[sc.shard.ID].Set(float64(sc.lastGen.Load()))
	sh.Status, sh.Gen, sh.Shard, sh.Fingerprint = bh.Status, bh.Gen, bh.Shard, bh.Fingerprint
	switch {
	case bh.N != 0 && bh.N != r.opts.Map.N:
		sh.Status = "mismatch"
		sh.Error = fmt.Sprintf("backend serves n=%d, map says n=%d", bh.N, r.opts.Map.N)
	case r.opts.Map.Fingerprint != "" && bh.Fingerprint != "" && bh.Fingerprint != r.opts.Map.Fingerprint:
		sh.Status = "mismatch"
		sh.Error = fmt.Sprintf("backend fingerprint %s, map pins %s", bh.Fingerprint, r.opts.Map.Fingerprint)
	}
	return sh
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	r.syncClientStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := r.met.Write(w); err != nil {
		r.logAt(slog.LevelWarn, "metrics write", slog.Any("err", err))
	}
}

// syncClientStats folds the per-shard client counters into the registry
// (set-via-add: only the delta since the last scrape is added, keeping the
// exported counters monotone).
func (r *Router) syncClientStats() {
	var total client.Stats
	for _, sc := range r.shards {
		for _, s := range []client.Stats{sc.query.Snapshot(), sc.admin.Snapshot()} {
			total.Attempts += s.Attempts
			total.Retries += s.Retries
			total.Hedges += s.Hedges
			total.HedgeWins += s.HedgeWins
			total.BreakerFast += s.BreakerFast
			total.BreakerOpens += s.BreakerOpens
		}
	}
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	r.met.attempts.Add(float64(total.Attempts - r.synced.Attempts))
	r.met.retries.Add(float64(total.Retries - r.synced.Retries))
	r.met.hedges.Add(float64(total.Hedges - r.synced.Hedges))
	r.met.hedgeWins.Add(float64(total.HedgeWins - r.synced.HedgeWins))
	r.met.breakerFast.Add(float64(total.BreakerFast - r.synced.BreakerFast))
	r.met.breakerOpens.Add(float64(total.BreakerOpens - r.synced.BreakerOpens))
	r.synced = total
}

// handleRecompute starts a shard-by-shard rollout and answers 202. Single
// flight: a second trigger while one drains answers 409. The router walks
// the shards in order, triggering each backend's recompute and waiting for
// its generation to advance before moving on — at most one shard is
// rebuilding at any moment, so the cluster keeps (N-1)/N of its capacity
// and /batch answers stay single-generation except for the brief window a
// shard republishes in (which the mixed-generation retry absorbs).
func (r *Router) handleRecompute(w http.ResponseWriter, req *http.Request) {
	if !r.rolling.CompareAndSwap(false, true) {
		r.met.Errors.Inc()
		writeErrRetry(w, http.StatusConflict, "rollout already running")
		return
	}
	r.met.Rollouts.Inc()
	r.met.RolloutActive.Set(1)
	go r.rollout()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "rollout started"})
}

func (r *Router) rollout() {
	defer func() {
		r.rolling.Store(false)
		r.met.RolloutActive.Set(0)
	}()
	start := time.Now()
	for _, sc := range r.shards {
		if err := r.rolloutShard(sc); err != nil {
			r.met.RolloutFails.Inc()
			r.logAt(slog.LevelError, "rollout aborted",
				slog.Int("shard", sc.shard.ID), slog.Any("err", err))
			return
		}
	}
	r.logAt(slog.LevelInfo, "rollout finished", slog.Duration("dur", time.Since(start)))
}

// rolloutShard rolls one shard: each replica in turn is told to
// recompute (one POST, physically addressed, never hedged or retried)
// and polled on /healthz until a new generation is published and the
// rebuild flag clears. Replicas roll sequentially too, so a two-replica
// shard keeps a serving replica throughout its own rollout.
func (r *Router) rolloutShard(sc *shardClient) error {
	for _, base := range sc.shard.Replicas {
		if err := r.rolloutReplica(sc, base); err != nil {
			return err
		}
	}
	return nil
}

func (r *Router) rolloutReplica(sc *shardClient, base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.RolloutTimeout)
	defer cancel()
	var pre backendHealth
	if _, err := sc.admin.GetJSON(ctx, base+"/healthz", &pre); err != nil {
		return fmt.Errorf("pre-rollout health of %s: %w", base, err)
	}
	resp, err := sc.admin.Do(ctx, http.MethodPost, base+"/admin/recompute", "", nil)
	if err != nil {
		return fmt.Errorf("trigger %s: %w", base, err)
	}
	// 202 = started; 409 = one already running (count it as ours and wait).
	if resp.Status != http.StatusAccepted && resp.Status != http.StatusConflict {
		return fmt.Errorf("trigger %s answered HTTP %d", base, resp.Status)
	}
	t := time.NewTicker(r.opts.RolloutPoll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return fmt.Errorf("%s (shard %d) did not republish within %v (still gen %d)",
				base, sc.shard.ID, r.opts.RolloutTimeout, pre.Gen)
		case <-t.C:
		}
		var bh backendHealth
		resp, err := sc.admin.GetJSON(ctx, base+"/healthz", &bh)
		if err != nil || resp.Status != http.StatusOK {
			continue // transient probe failure: keep polling until the deadline
		}
		if bh.Status == "stale" {
			return fmt.Errorf("%s (shard %d) recompute failed (serving stale gen %d)", base, sc.shard.ID, bh.Gen)
		}
		if bh.Gen > pre.Gen && !bh.Recomputing {
			sc.noteGen(resp.Header)
			r.met.shardGen[sc.shard.ID].Set(float64(sc.lastGen.Load()))
			r.logAt(slog.LevelInfo, "replica rolled",
				slog.Int("shard", sc.shard.ID), slog.String("replica", base), slog.Uint64("gen", bh.Gen))
			return nil
		}
	}
}

type errResp struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errResp{Error: fmt.Sprintf(format, args...)})
}

func writeErrRetry(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Retry-After", retryAfterSecs)
	writeErr(w, status, format, args...)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
