package cluster

import (
	"io"
	"strconv"

	"repro/internal/obs"
)

// routerLatencyBounds match the apspd serving-layer buckets plus the
// network hop the router adds: 100µs to ~2.6s.
var routerLatencyBounds = []float64{
	100e-6, 400e-6, 1.6e-3, 6.4e-3, 25.6e-3, 102.4e-3, 409.6e-3, 1.6384, 2.62144,
}

// Metrics is the router instrument set (router_* namespace; one
// obs.Registry underneath, same exposition as apspd's /metrics).
type Metrics struct {
	reg *obs.Registry

	distQ, pathQ, batchQ       obs.Counter
	distLat, pathLat, batchLat obs.Histogram
	// Errors counts router responses with a non-2xx status (including
	// refusals the router itself synthesizes).
	Errors obs.Counter
	// Unrouted counts queries whose source no shard owns.
	Unrouted obs.Counter
	// ShardFailures counts scatter sub-requests that failed entirely
	// (their queries were answered with per-query error entries).
	ShardFailures obs.Counter
	// MixedGenRefusals counts /batch answers refused with 503 because the
	// gathered shards disagreed on generation even after a retry.
	MixedGenRefusals obs.Counter
	// GenRetries counts lagging sub-batches re-issued to chase the
	// highest gathered generation.
	GenRetries obs.Counter
	// Rollouts counts /admin/recompute fan-outs started; RolloutActive is
	// 1 while one is draining shard-by-shard; RolloutFails counts
	// rollouts that aborted before every shard republished.
	Rollouts      obs.Counter
	RolloutActive obs.Gauge
	RolloutFails  obs.Counter
	// Per-endpoint client work, synced from the per-shard internal/client
	// stats on every scrape (set-via-add keeps the counters monotone).
	attempts, retries, hedges, hedgeWins, breakerFast, breakerOpens obs.Counter
	// shardGen mirrors each shard's last-seen generation.
	shardGen []obs.Gauge
	// shardUp mirrors the last /healthz probe verdict per shard.
	shardUp []obs.Gauge
}

// newMetrics registers the router instrument set for nShards shards.
func newMetrics(nShards int) *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{reg: reg}
	const qh = "queries routed, by kind"
	m.distQ = reg.Counter("router_requests_total", qh, obs.L("kind", "dist"))
	m.pathQ = reg.Counter("router_requests_total", qh, obs.L("kind", "path"))
	m.batchQ = reg.Counter("router_requests_total", qh, obs.L("kind", "batch"))
	const lh = "end-to-end routed latency in seconds, by kind"
	m.distLat = reg.Histogram("router_latency_seconds", lh, routerLatencyBounds, obs.L("kind", "dist"))
	m.pathLat = reg.Histogram("router_latency_seconds", lh, routerLatencyBounds, obs.L("kind", "path"))
	m.batchLat = reg.Histogram("router_latency_seconds", lh, routerLatencyBounds, obs.L("kind", "batch"))
	m.Errors = reg.Counter("router_errors_total", "router responses with a non-2xx status")
	m.Unrouted = reg.Counter("router_unrouted_total", "queries whose source no shard owns")
	m.ShardFailures = reg.Counter("router_shard_failures_total", "scatter sub-requests that failed entirely")
	m.MixedGenRefusals = reg.Counter("router_mixed_generation_refusals_total", "batch answers refused because shards disagreed on generation")
	m.GenRetries = reg.Counter("router_generation_retries_total", "lagging sub-batches re-issued to reach one generation")
	m.Rollouts = reg.Counter("router_rollouts_total", "shard-by-shard recompute fan-outs started")
	m.RolloutActive = reg.Gauge("router_rollout_active", "1 while a rollout is draining shard-by-shard")
	m.RolloutFails = reg.Counter("router_rollout_failures_total", "rollouts aborted before every shard republished")
	m.attempts = reg.Counter("router_client_attempts_total", "backend HTTP attempts (incl. hedges)")
	m.retries = reg.Counter("router_client_retries_total", "backend retries")
	m.hedges = reg.Counter("router_client_hedges_total", "hedged backend attempts launched")
	m.hedgeWins = reg.Counter("router_client_hedge_wins_total", "hedged attempts that answered first")
	m.breakerFast = reg.Counter("router_client_breaker_fastfails_total", "requests failed fast on an open breaker")
	m.breakerOpens = reg.Counter("router_client_breaker_opens_total", "circuit breaker open transitions")
	for k := 0; k < nShards; k++ {
		m.shardGen = append(m.shardGen, reg.Gauge("router_shard_generation",
			"last generation seen from each shard's backends", obs.L("shard", strconv.Itoa(k))))
		m.shardUp = append(m.shardUp, reg.Gauge("router_shard_up",
			"1 when the shard's last health probe succeeded", obs.L("shard", strconv.Itoa(k))))
	}
	return m
}

// Query returns the (counter, histogram) pair for a query kind.
func (m *Metrics) Query(kind string) (obs.Counter, obs.Histogram) {
	switch kind {
	case "path":
		return m.pathQ, m.pathLat
	case "batch":
		return m.batchQ, m.batchLat
	default:
		return m.distQ, m.distLat
	}
}

// Write renders the instrument set in Prometheus text format.
func (m *Metrics) Write(w io.Writer) error { return m.reg.Write(w) }
