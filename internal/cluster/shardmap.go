// Package cluster is the multi-process scale-out layer over the apspd
// serving daemon: a versioned shard map that partitions the source
// dimension across N backends, and a stateless scatter-gather router that
// serves the whole apspd query surface (/dist, /path, /batch, /healthz,
// /metrics, /admin/recompute) against them.
//
// The algorithmic justification is the k-source framing of Agarwal &
// Ramachandran: a backend owning a contiguous source range computes a
// complete, independently valid k-source shortest-path result, so the
// cluster answer for any (s, v) query is exactly the single-process
// answer of whichever backend owns s. The router adds no approximation —
// only routing, retries, hedging across replicas (internal/client), and
// generation bookkeeping so a rolling recompute never mixes generations
// inside one answer.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// MapVersion is the shard-map schema version this package writes and the
// only one it accepts; bump it on any incompatible layout change.
const MapVersion = 1

// Shard is one source-range assignment: the backends listed in Replicas
// each own every source s with Lo <= s < Hi.
type Shard struct {
	ID int `json:"id"`
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Replicas are base URLs of apspd backends serving this shard, e.g.
	// "http://127.0.0.1:8081". Reads are hedged across them; at least one
	// must be live for the shard to be available.
	Replicas []string `json:"replicas"`
}

// Contains reports whether the shard owns source s.
func (s *Shard) Contains(src int) bool { return src >= s.Lo && src < s.Hi }

// K is the number of sources the shard owns.
func (s *Shard) K() int { return s.Hi - s.Lo }

// Map is the versioned cluster layout: which backend owns which sources
// of an n-node graph. It is JSON-serializable (cmd/apsprouter -map) and
// fingerprint-checked against the backends' /healthz at boot, so a router
// can refuse to scatter over backends serving a different graph.
type Map struct {
	Version int `json:"version"`
	N       int `json:"n"`
	// Fingerprint, when non-empty, is the graph fingerprint every backend
	// must report on /healthz (the %016x form checkpoint.Fingerprint
	// renders to there). Empty skips the check.
	Fingerprint string  `json:"fingerprint,omitempty"`
	Shards      []Shard `json:"shards"`
}

// Range returns the balanced contiguous source range [lo, hi) of shard k
// in an nShards-way partition of n sources — the same arithmetic apspd
// -shard k/N applies, so a map built here and a backend started with the
// matching flag agree on ownership by construction.
func Range(n, k, nShards int) (lo, hi int) {
	return k * n / nShards, (k + 1) * n / nShards
}

// NewContiguous builds a contiguous map: replicaSets[k] are the replicas
// of shard k, and shard k owns Range(n, k, len(replicaSets)).
func NewContiguous(n int, fingerprint string, replicaSets [][]string) (*Map, error) {
	if len(replicaSets) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	m := &Map{Version: MapVersion, N: n, Fingerprint: fingerprint}
	for k, reps := range replicaSets {
		lo, hi := Range(n, k, len(replicaSets))
		m.Shards = append(m.Shards, Shard{ID: k, Lo: lo, Hi: hi, Replicas: append([]string(nil), reps...)})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the map invariants: version, a positive node count,
// shards that tile [0, N) exactly (no gap, no overlap), unique IDs, and
// at least one replica per shard.
func (m *Map) Validate() error {
	if m.Version != MapVersion {
		return fmt.Errorf("cluster: shard map version %d, want %d", m.Version, MapVersion)
	}
	if m.N <= 0 {
		return fmt.Errorf("cluster: shard map n=%d must be positive", m.N)
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("cluster: shard map has no shards")
	}
	byLo := append([]Shard(nil), m.Shards...)
	sort.Slice(byLo, func(i, j int) bool { return byLo[i].Lo < byLo[j].Lo })
	ids := make(map[int]bool, len(m.Shards))
	next := 0
	for _, s := range byLo {
		if ids[s.ID] {
			return fmt.Errorf("cluster: duplicate shard id %d", s.ID)
		}
		ids[s.ID] = true
		if s.Lo != next {
			return fmt.Errorf("cluster: shard %d starts at %d, want %d (sources must tile [0,%d) exactly)", s.ID, s.Lo, next, m.N)
		}
		if s.Hi <= s.Lo {
			return fmt.Errorf("cluster: shard %d has empty range [%d,%d)", s.ID, s.Lo, s.Hi)
		}
		if len(s.Replicas) == 0 {
			return fmt.Errorf("cluster: shard %d has no replicas", s.ID)
		}
		for _, r := range s.Replicas {
			if !strings.HasPrefix(r, "http://") && !strings.HasPrefix(r, "https://") {
				return fmt.Errorf("cluster: shard %d replica %q is not an http(s) base URL", s.ID, r)
			}
		}
		next = s.Hi
	}
	if next != m.N {
		return fmt.Errorf("cluster: shards cover [0,%d) but the map declares n=%d", next, m.N)
	}
	return nil
}

// ShardFor returns the shard owning source src (nil when src is outside
// [0, N) — the map tiles the range, so inside it there is always one).
func (m *Map) ShardFor(src int) *Shard {
	if src < 0 || src >= m.N {
		return nil
	}
	i := sort.Search(len(m.Shards), func(i int) bool { return m.Shards[i].Hi > src })
	if i < len(m.Shards) && m.Shards[i].Contains(src) {
		return &m.Shards[i]
	}
	// Shards may be listed out of order; fall back to a scan.
	for i := range m.Shards {
		if m.Shards[i].Contains(src) {
			return &m.Shards[i]
		}
	}
	return nil
}

// Load reads and validates a shard map from a JSON file.
func Load(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: parsing shard map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &m, nil
}

// Save writes the map as indented JSON (atomicity is not needed: maps are
// deployment artifacts, not runtime state).
func (m *Map) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatShardID renders the canonical shard identity "k/N" that apspd
// -shard accepts and stamps into the ShardHeader.
func FormatShardID(k, nShards int) string {
	return strconv.Itoa(k) + "/" + strconv.Itoa(nShards)
}

// ParseShardID parses "k/N" with 0 <= k < N.
func ParseShardID(s string) (k, nShards int, err error) {
	ks, ns, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("cluster: bad shard id %q (want k/N)", s)
	}
	k, err1 := strconv.Atoi(ks)
	nShards, err2 := strconv.Atoi(ns)
	if err1 != nil || err2 != nil || nShards < 1 || k < 0 || k >= nShards {
		return 0, 0, fmt.Errorf("cluster: bad shard id %q (want k/N with 0 <= k < N)", s)
	}
	return k, nShards, nil
}
