package cluster

import (
	"path/filepath"
	"testing"
)

func TestRangeTiles(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{10, 3}, {7, 7}, {100, 1}, {64, 5}} {
		next := 0
		for k := 0; k < tc.shards; k++ {
			lo, hi := Range(tc.n, k, tc.shards)
			if lo != next {
				t.Fatalf("Range(%d,%d,%d) starts at %d, want %d", tc.n, k, tc.shards, lo, next)
			}
			if hi < lo {
				t.Fatalf("Range(%d,%d,%d) = [%d,%d) inverted", tc.n, k, tc.shards, lo, hi)
			}
			// Balanced: every shard within one source of n/shards.
			if w := hi - lo; w < tc.n/tc.shards || w > tc.n/tc.shards+1 {
				t.Fatalf("Range(%d,%d,%d) width %d unbalanced", tc.n, k, tc.shards, w)
			}
			next = hi
		}
		if next != tc.n {
			t.Fatalf("Range(%d,*,%d) tiles to %d, want %d", tc.n, tc.shards, next, tc.n)
		}
	}
}

func TestNewContiguousAndShardFor(t *testing.T) {
	m, err := NewContiguous(10, "abc", [][]string{
		{"http://a:1", "http://a:2"}, {"http://b:1"}, {"http://c:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 10; src++ {
		s := m.ShardFor(src)
		if s == nil || !s.Contains(src) {
			t.Fatalf("ShardFor(%d) = %+v", src, s)
		}
		lo, hi := Range(10, s.ID, 3)
		if s.Lo != lo || s.Hi != hi {
			t.Fatalf("shard %d range [%d,%d), Range says [%d,%d)", s.ID, s.Lo, s.Hi, lo, hi)
		}
	}
	if m.ShardFor(-1) != nil || m.ShardFor(10) != nil {
		t.Fatal("ShardFor accepted out-of-range sources")
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Map {
		m, err := NewContiguous(6, "", [][]string{{"http://a:1"}, {"http://b:1"}})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name   string
		mutate func(*Map)
	}{
		{"version", func(m *Map) { m.Version = 99 }},
		{"gap", func(m *Map) { m.Shards[1].Lo = 4 }},
		{"overlap", func(m *Map) { m.Shards[1].Lo = 2 }},
		{"short", func(m *Map) { m.Shards[1].Hi = 5 }},
		{"empty shard", func(m *Map) { m.Shards[0].Hi = m.Shards[0].Lo; m.Shards[1].Lo = 0 }},
		{"dup id", func(m *Map) { m.Shards[1].ID = m.Shards[0].ID }},
		{"no replicas", func(m *Map) { m.Shards[0].Replicas = nil }},
		{"bad url", func(m *Map) { m.Shards[0].Replicas = []string{"a:1"} }},
		{"no shards", func(m *Map) { m.Shards = nil }},
		{"bad n", func(m *Map) { m.N = 0; m.Shards = nil }},
	}
	for _, tc := range cases {
		m := base()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken map", tc.name)
		}
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	m, err := NewContiguous(12, "00deadbeef00cafe", [][]string{
		{"http://127.0.0.1:8081"}, {"http://127.0.0.1:8082", "http://127.0.0.1:8083"},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "map.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != m.N || got.Fingerprint != m.Fingerprint || len(got.Shards) != len(m.Shards) {
		t.Fatalf("round trip changed the map: %+v vs %+v", got, m)
	}
	for i := range m.Shards {
		if got.Shards[i].Lo != m.Shards[i].Lo || got.Shards[i].Hi != m.Shards[i].Hi ||
			len(got.Shards[i].Replicas) != len(m.Shards[i].Replicas) {
			t.Fatalf("shard %d changed: %+v vs %+v", i, got.Shards[i], m.Shards[i])
		}
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestShardIDFormat(t *testing.T) {
	for k := 0; k < 4; k++ {
		s := FormatShardID(k, 4)
		gk, gn, err := ParseShardID(s)
		if err != nil || gk != k || gn != 4 {
			t.Fatalf("ParseShardID(%q) = %d,%d,%v", s, gk, gn, err)
		}
	}
	for _, bad := range []string{"", "3", "3/", "/4", "4/4", "-1/4", "x/4", "0/0", "1/2/3"} {
		if _, _, err := ParseShardID(bad); err == nil {
			t.Errorf("ParseShardID(%q) accepted", bad)
		}
	}
}
