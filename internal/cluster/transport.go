package cluster

import (
	"fmt"
	"net/http"
	"net/url"
	"sync/atomic"
)

// replica is one concrete backend a replicaTransport can land an attempt
// on: a parsed base URL plus the RoundTripper that reaches it. Production
// replicas share one inner transport; tests give each replica its own
// (e.g. an httpfault.Transport blackholing exactly one of them).
type replica struct {
	scheme, host string
	rt           http.RoundTripper
}

// replicaTransport spreads successive attempts of one logical endpoint
// over a shard's replicas: attempt i lands on replica (i mod R). Combined
// with internal/client's hedging, this is cross-replica hedging for free —
// the primary attempt goes to one replica and the hedge, fired after the
// p99 delay, goes to the next, so a blackholed or slow replica costs one
// hedge delay instead of a timeout. The same rotation makes retries walk
// the replica set, so a dead backend is skipped on the next attempt.
//
// The request URL the client sees is a logical one ("http://apsp-shard-0/
// dist?..."): the breaker and hedge-latency state key off it, per shard
// and endpoint, while this transport substitutes the physical replica.
type replicaTransport struct {
	replicas []replica
	next     atomic.Uint64
}

// newReplicaTransport parses base URLs ("http://host:port") into a
// rotation over inner.
func newReplicaTransport(bases []string, inner http.RoundTripper) (*replicaTransport, error) {
	if inner == nil {
		inner = http.DefaultTransport
	}
	t := &replicaTransport{}
	for _, b := range bases {
		u, err := url.Parse(b)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad replica base URL %q", b)
		}
		t.replicas = append(t.replicas, replica{scheme: u.Scheme, host: u.Host, rt: inner})
	}
	if len(t.replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	return t, nil
}

// RoundTrip rewrites the logical request onto the next replica. The
// request is cloned: RoundTrippers must not mutate the caller's request,
// and hedged attempts run concurrently over this same transport.
func (t *replicaTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	r := t.replicas[int(t.next.Add(1)-1)%len(t.replicas)]
	clone := req.Clone(req.Context())
	clone.URL.Scheme = r.scheme
	clone.URL.Host = r.host
	clone.Host = ""
	return r.rt.RoundTrip(clone)
}
