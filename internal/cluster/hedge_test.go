package cluster

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpfault"
)

// hostFaultTransport routes requests to one faulty host through an
// httpfault injector and everything else straight through — the test
// topology for "one replica is sick, the other is fine".
type hostFaultTransport struct {
	faulty string // host:port whose traffic is chaos-wrapped
	ft     *httpfault.Transport
	inner  http.RoundTripper
}

func (t *hostFaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Host == t.faulty {
		return t.ft.RoundTrip(req)
	}
	return t.inner.RoundTrip(req)
}

// TestRouterHedgesAcrossReplicas is the cross-replica hedging gate
// (satellite of the cluster PR): with one of a shard's two replicas
// blackholed, a routed query must still answer fast — the hedge fires
// after HedgeDelay, the replica rotation lands it on the healthy replica,
// and the router's HedgeWins accounting shows the rescue. A blackholed
// replica costs one hedge delay, not an attempt timeout.
func TestRouterHedgesAcrossReplicas(t *testing.T) {
	tc := startCluster(t, 8, 1, 2, Options{}) // placeholder: rebuilt below with a faulty inner
	// startCluster wired both replicas healthy; rebuild the router with an
	// inner transport that blackholes every request to replica 0.
	inner := &http.Transport{}
	defer inner.CloseIdleConnections()
	faulty := strings.TrimPrefix(tc.back[0][0].URL, "http://")
	ft := &httpfault.Transport{Plan: httpfault.Plan{Seed: 3, Blackhole: 1}, Inner: inner}
	router, err := NewRouter(Options{
		Map:            tc.m,
		Inner:          &hostFaultTransport{faulty: faulty, ft: ft, inner: inner},
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    3,
		HedgeDelay:     5 * time.Millisecond,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	for i := 0; i < 8; i++ {
		start := time.Now()
		var d struct {
			Gen uint64 `json:"gen"`
		}
		status, _ := getJSON(t, fmt.Sprintf("%s/dist?src=%d&dst=0", front.URL, i), &d)
		if status != http.StatusOK || d.Gen != 1 {
			t.Fatalf("dist(%d,0) through a half-blackholed shard: status %d gen %d", i, status, d.Gen)
		}
		// The healthy answer must arrive via the hedge, far inside the
		// attempt timeout the blackholed primary would burn.
		if dur := time.Since(start); dur > time.Second {
			t.Fatalf("dist(%d,0) took %v — hedging did not rescue the blackholed primary", i, dur)
		}
	}
	if bh := ft.Snapshot().Blackholes; bh == 0 {
		t.Fatal("the faulty replica was never hit — the test proved nothing")
	}

	// The rescue is visible in the router's own accounting, via the same
	// /metrics surface operators scrape.
	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hedges, wins float64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "router_client_hedges_total") {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &hedges)
		}
		if strings.HasPrefix(line, "router_client_hedge_wins_total") {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &wins)
		}
	}
	if hedges == 0 || wins == 0 {
		t.Fatalf("hedges=%v wins=%v, want both > 0 (HedgeWins must be observed)", hedges, wins)
	}
}

// countingHandler wraps a backend handler and counts recompute triggers.
type countingHandler struct {
	inner      http.Handler
	recomputes atomic.Int64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/admin/recompute" {
		h.recomputes.Add(1)
	}
	h.inner.ServeHTTP(w, r)
}

// TestRouterNeverHedgesMutations: a rollout's /admin/recompute trigger
// reaches each replica EXACTLY once — no hedge, no retry, no duplicate
// side-effect — even though the router hedges queries freely against the
// same replicas. The counting handlers are installed before any traffic
// flows, so the counts are exhaustive.
func TestRouterNeverHedgesMutations(t *testing.T) {
	tc := startCluster(t, 8, 1, 2, Options{})
	// startCluster's backends are discarded; fresh ones wrap the same
	// oracle servers in trigger-counting handlers.
	for r := 0; r < 2; r++ {
		tc.back[0][r].Close()
	}
	counters := make([]*countingHandler, 2)
	bases := make([]string, 2)
	for r := 0; r < 2; r++ {
		counters[r] = &countingHandler{inner: tc.servers[0][r].Handler()}
		ts := httptest.NewServer(counters[r])
		defer ts.Close()
		bases[r] = ts.URL
	}
	m, err := NewContiguous(8, tc.m.Fingerprint, [][]string{bases})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewRouter(Options{
		Map: m, HedgeDelay: time.Millisecond, Seed: 5,
		RolloutPoll: 5 * time.Millisecond, RolloutTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	resp, err := http.Post(front.URL+"/admin/recompute", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trigger status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var h clusterHealth
		status, _ := getJSON(t, front.URL+"/healthz", &h)
		if status == http.StatusOK && !h.Rollout && len(h.Shards) == 1 && h.Shards[0].Gen >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollout never completed: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for r, c := range counters {
		if got := c.recomputes.Load(); got != 1 {
			t.Fatalf("recompute reached replica %d %d times, want exactly 1 (mutations must never hedge or retry)", r, got)
		}
	}
}
