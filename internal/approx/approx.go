// Package approx implements the paper's Theorem I.5 (Sec. IV): a
// deterministic (1+ε)-approximate APSP for non-negative polynomially
// bounded integer weights, zero-weight edges included.
//
// The paper's reduction is followed exactly:
//
//  1. compute zero-weight reachability — pairs at distance exactly 0 — by
//     running the pipelined unweighted APSP of [12] on the zero-arc
//     subgraph (internal/unweighted);
//  2. transform the graph: zero weights become 1, positive weights w
//     become n²·w, making every weight strictly positive while preserving
//     shortest paths to within the claimed factor;
//  3. run the positive-weight black box of Theorem IV.1 ([16], [18]) on
//     the transformed graph with accuracy ε/3.
//
// For step 3 this repository substitutes its own deterministic
// weight-scaling substrate (the technique family of [18]): for each
// distance scale 2^i the weights are rounded up to multiples of
// ρ_i ≈ ε·2^i/(3n) and a depth-bounded run of the positive-weight pipeline
// (internal/posweight — sound for positive weights) recovers distances in
// [2^i, 2^{i+1}) with additive error ≤ n·ρ_i ≤ (ε/3)·2^i. The round cost is
// O((n/ε + n)·log(n·maxW)) — the same shape (linear in n, polynomial in
// 1/ε, one log factor) as the paper's O((n/ε²)·log n) black box.
package approx

import (
	"context"
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/posweight"
	"repro/internal/unweighted"
)

// Opts configures a run.
type Opts struct {
	// Sources restricts the computation (nil = all pairs).
	Sources []int
	// Eps is the target stretch 1+Eps. Must be positive; the theorem's
	// analysis needs Eps > 3/n.
	Eps float64
	// Obs, if set, receives the engine events of every phase (see
	// congest.Observer). Run annotates the phase boundaries via
	// congest.SetPhase with the names "zero" and "scale<i>" — the same
	// keys as Result.PhaseRounds.
	Obs congest.Observer
	// Workers and Scheduler are passed to the engine of every phase.
	Workers   int
	Scheduler congest.Scheduler
	// Network, if set, replaces the engine's perfect delivery with a
	// pluggable substrate in every phase (see congest.Config.Network);
	// internal/faults provides the adversarial one.
	Network congest.Network
	// Checkpoint and Ctx are passed to the engine of every phase (see
	// congest.Config.Checkpoint and congest.Config.Ctx).
	Checkpoint *congest.CheckpointPolicy
	Ctx        context.Context
}

// Result reports approximate distances.
type Result struct {
	Sources []int
	// Scaled[i][v] is the approximate distance in the transformed graph
	// G' (weights n²·w, zeros → 1): an actual path weight in G', so
	// Scaled/n² ∈ [δ, (1+ε)·δ] per the paper's analysis. Zero-distance
	// pairs hold 0; unreachable pairs graph.Inf.
	Scaled [][]int64
	// N2 is the scale factor n².
	N2 int64
	// Stats accumulates all phases; PhaseRounds maps "zero" and
	// "scale<i>" to their rounds.
	Stats       congest.Stats
	PhaseRounds map[string]int
	// Scales is the number of distance scales run.
	Scales int
}

// Value returns the approximate distance for pair index (i, v) in original
// weight units, as a float64 (graph.Inf stays +Inf).
func (r *Result) Value(i, v int) float64 {
	s := r.Scaled[i][v]
	if s >= graph.Inf {
		return math.Inf(1)
	}
	return float64(s) / float64(r.N2)
}

// Run computes (1+ε)-approximate shortest path distances.
func Run(g *graph.Graph, opts Opts) (*Result, error) {
	if opts.Eps <= 0 {
		return nil, fmt.Errorf("approx: Eps must be positive, got %v", opts.Eps)
	}
	n := g.N()
	sources := opts.Sources
	if sources == nil {
		sources = make([]int, n)
		for v := range sources {
			sources[v] = v
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("approx: no sources")
	}
	n2 := int64(n) * int64(n)
	res := &Result{
		Sources:     append([]int(nil), sources...),
		N2:          n2,
		PhaseRounds: make(map[string]int),
	}

	// Step 1: zero-weight reachability.
	congest.SetPhase(opts.Obs, "zero")
	reach, zr, err := unweighted.ZeroReach(g, sources, congest.Config{Workers: opts.Workers, Scheduler: opts.Scheduler, Observer: opts.Obs, Network: opts.Network, Checkpoint: opts.Checkpoint, Ctx: opts.Ctx})
	if err != nil {
		return nil, fmt.Errorf("approx: zero reachability: %w", err)
	}
	res.Stats.Add(zr.Stats)
	res.PhaseRounds["zero"] = zr.Stats.Rounds

	// Step 2: the positive transform G'.
	gp := g.Transform(func(w int64) int64 {
		if w == 0 {
			return 1
		}
		return n2 * w
	})

	// Step 3: weight-scaling sweep. Distances in G' lie in
	// [1, (n−1)·(n²·maxW+1)].
	maxD := int64(n-1) * (n2*g.MaxWeight() + 1)
	if maxD < 1 {
		maxD = 1
	}
	epsP := opts.Eps / 3
	k := len(sources)
	best := make([][]int64, k)
	for i := range best {
		best[i] = make([]int64, n)
		for v := range best[i] {
			best[i][v] = graph.Inf
		}
	}
	scale := 0
	for lim := int64(1); ; lim *= 2 {
		// Per-hop round-up error totals ≤ n·ρ ≤ ε'·lim ≤ ε'·δ' for pairs
		// with δ' ≥ lim.
		rho := int64(epsP * float64(lim) / float64(n))
		if rho < 1 {
			rho = 1
		}
		// Depth covering distances ≤ 2·lim after rounding, plus the ≤ n−1
		// per-hop round-up slack.
		depth := (2*lim)/rho + int64(n)
		gs := gp.Transform(func(w int64) int64 { return (w + rho - 1) / rho })
		congest.SetPhase(opts.Obs, fmt.Sprintf("scale%d", scale))
		pr, err := posweight.Run(gs, posweight.Opts{Sources: sources, MaxDist: depth, Workers: opts.Workers, Scheduler: opts.Scheduler, Obs: opts.Obs, Network: opts.Network, Checkpoint: opts.Checkpoint, Ctx: opts.Ctx})
		if err != nil {
			return nil, fmt.Errorf("approx: scale %d: %w", scale, err)
		}
		res.Stats.Add(pr.Stats)
		res.PhaseRounds[fmt.Sprintf("scale%d", scale)] = pr.Stats.Rounds
		for i := range sources {
			for v := 0; v < n; v++ {
				if d := pr.Dist[i][v]; d < graph.Inf {
					if est := d * rho; est < best[i][v] {
						best[i][v] = est
					}
				}
			}
		}
		scale++
		if lim >= maxD {
			break
		}
	}
	res.Scales = scale

	// Combine with zero reachability.
	res.Scaled = best
	for i := range sources {
		for v := 0; v < n; v++ {
			if reach[i][v] {
				res.Scaled[i][v] = 0
			}
		}
	}
	return res, nil
}

// CheckStretch validates a result against exact distances, returning the
// maximum observed multiplicative stretch over pairs with δ ≥ 1 and the
// number of structural mismatches (zero/unreachable classification).
func CheckStretch(g *graph.Graph, res *Result) (float64, int) {
	maxStretch := 1.0
	mismatches := 0
	for i, s := range res.Sources {
		exact := graph.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			d := exact[v]
			switch {
			case d >= graph.Inf:
				if res.Scaled[i][v] < graph.Inf {
					mismatches++
				}
			case d == 0:
				if res.Scaled[i][v] != 0 {
					mismatches++
				}
			default:
				if res.Scaled[i][v] >= graph.Inf {
					mismatches++
					continue
				}
				stretch := res.Value(i, v) / float64(d)
				if stretch < 1.0-1e-12 {
					mismatches++ // an underestimate would be a bug, not stretch
				}
				if stretch > maxStretch {
					maxStretch = stretch
				}
			}
		}
	}
	return maxStretch, mismatches
}
