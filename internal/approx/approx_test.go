package approx

import (
	"fmt"
	"testing"

	"repro/internal/difftest"
	"repro/internal/graph"
)

// TestDifferentialSweep sweeps small instances: stretch must stay within
// 1+ε and classifications (zero/unreachable) must be exact.
func TestDifferentialSweep(t *testing.T) {
	difftest.Search(t, difftest.Space{SeedsPerSize: 8, MaxK: 1, ZeroFrac: 0.4}, func(in difftest.Instance) error {
		res, err := Run(in.G, Opts{Eps: 0.5})
		if err != nil {
			return err
		}
		stretch, mismatches := CheckStretch(in.G, res)
		if mismatches != 0 {
			return fmt.Errorf("%d structural mismatches", mismatches)
		}
		if stretch > 1.5 {
			return fmt.Errorf("stretch %.4f exceeds 1.5", stretch)
		}
		return nil
	})
}

func TestStretchWithinEps(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(24, 80, graph.GenOpts{Seed: seed, MaxW: 9, ZeroFrac: 0.3, Directed: seed%2 == 0})
		eps := 0.5
		res, err := Run(g, Opts{Eps: eps})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		stretch, mismatches := CheckStretch(g, res)
		if mismatches != 0 {
			t.Fatalf("seed %d: %d structural mismatches", seed, mismatches)
		}
		if stretch > 1+eps {
			t.Fatalf("seed %d: stretch %.4f exceeds 1+ε = %.2f", seed, stretch, 1+eps)
		}
	}
}

func TestTighterEps(t *testing.T) {
	g := graph.Random(20, 60, graph.GenOpts{Seed: 7, MaxW: 6, ZeroFrac: 0.4, Directed: true})
	for _, eps := range []float64{0.25, 1.0} {
		res, err := Run(g, Opts{Eps: eps})
		if err != nil {
			t.Fatalf("eps %v: %v", eps, err)
		}
		stretch, mismatches := CheckStretch(g, res)
		if mismatches != 0 {
			t.Fatalf("eps %v: %d mismatches", eps, mismatches)
		}
		if stretch > 1+eps {
			t.Fatalf("eps %v: stretch %.4f too large", eps, stretch)
		}
	}
}

func TestZeroPairsExact(t *testing.T) {
	// Pairs connected by zero-weight paths must come out exactly 0: the
	// whole point of the zero-reachability phase.
	g := graph.New(5, true)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 0)
	g.MustAddEdge(2, 3, 7)
	g.MustAddEdge(3, 4, 0)
	res, err := Run(g, Opts{Eps: 0.5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Scaled[0][2] != 0 {
		t.Fatalf("zero pair (0,2) = %d", res.Scaled[0][2])
	}
	if res.Scaled[0][4] == 0 || res.Scaled[0][4] >= graph.Inf {
		t.Fatalf("pair (0,4) = %d, want positive finite", res.Scaled[0][4])
	}
	if v := res.Value(0, 4); v < 7 || v > 7*1.5 {
		t.Fatalf("Value(0,4) = %v, want within [7, 10.5]", v)
	}
}

func TestUnreachablePairs(t *testing.T) {
	g := graph.New(3, true)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(2, 1, 3)
	res, err := Run(g, Opts{Eps: 0.5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Scaled[0][2] < graph.Inf {
		t.Fatalf("unreachable pair got %d", res.Scaled[0][2])
	}
}

func TestSubsetSources(t *testing.T) {
	g := graph.Grid(4, 5, graph.GenOpts{Seed: 3, MaxW: 5, ZeroFrac: 0.25})
	res, err := Run(g, Opts{Sources: []int{0, 19}, Eps: 0.5})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	stretch, mismatches := CheckStretch(g, res)
	if mismatches != 0 || stretch > 1.5 {
		t.Fatalf("stretch %.4f mismatches %d", stretch, mismatches)
	}
}

func TestRoundsScaleShape(t *testing.T) {
	// Rounds should grow roughly linearly in n for fixed ε (the paper's
	// O((n/ε²)·log n) shape): check the ratio between n and 2n stays far
	// below quadratic growth.
	eps := 0.5
	rounds := func(n int) int {
		g := graph.Random(n, 3*n, graph.GenOpts{Seed: 11, MaxW: 4, ZeroFrac: 0.3, Directed: true})
		res, err := Run(g, Opts{Eps: eps})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		return res.Stats.Rounds
	}
	r1, r2 := rounds(16), rounds(32)
	if r2 > 8*r1 {
		t.Fatalf("rounds grew superlinearly: %d -> %d", r1, r2)
	}
	t.Logf("rounds: n=16 -> %d, n=32 -> %d", r1, r2)
}

func TestValidation(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 3})
	if _, err := Run(g, Opts{Eps: 0}); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := Run(g, Opts{Eps: 0.5, Sources: []int{}}); err == nil {
		t.Fatal("empty sources accepted")
	}
}
