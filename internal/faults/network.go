package faults

import (
	"fmt"
	"sort"

	"repro/internal/congest"
)

// queued is one message awaiting logical delivery.
type queued struct {
	m   congest.Message
	key uint64 // deterministic shuffle key (unreliable-mode reordering)
}

// flight is one physical transmission in the air during a round barrier.
type flight struct {
	ack      bool
	from, to int
	seq      int64 // data: sequence number; ack: cumulative acknowledgement
	msg      congest.Message
	key      uint64 // deterministic shuffle key (Plan.Reorder)
}

// Network implements congest.Network: a simulated physical network whose
// per-transmission faults are drawn from Plan, under the reliability shim
// that restores exact synchronous semantics (see the package comment).
// Configure the exported fields before the first engine run; the zero
// Plan is a perfect network.
//
// Like a congest.Observer, a Network serves one engine run at a time (a
// multi-phase algorithm's sequential runs are fine — physical statistics
// accumulate across them) and must not be shared by concurrent runs.
type Network struct {
	// Plan is the fault model.
	Plan Plan
	// Unreliable disables the reliability shim (test-only): faults hit
	// logical delivery directly — drops lose messages for good, delays
	// defer them by whole logical rounds, duplicates deliver twice. This
	// is the divergence injector behind internal/difftest.Shrink; no
	// synchronous protocol is expected to survive it.
	Unreliable bool
	// ArrivalOrder makes inboxes reflect physical acceptance order
	// instead of the canonical (sender, sequence) order (test-only): the
	// engine's former implicit "delivery order equals send order"
	// assumption, kept so tests can demonstrate it is wrong.
	ArrivalOrder bool
	// Script, when non-nil, replaces the probabilistic plan: exactly the
	// listed events fire, each against the first transmission attempt of
	// its (Round, From, To) message. Rounds are per engine run.
	Script []Event
	// Sink, if set, receives one PhysStats delta per logical round with
	// traffic.
	Sink Sink

	n       int
	links   map[uint64]*link
	ready   map[int][]queued // due logical round -> batch
	pending int

	phys     PhysStats
	recorded []Event

	// fired marks script crash events (by index) that have already
	// crashed the engine. It survives Reset and checkpoint restore alike:
	// crash-stop is a one-shot adversarial event, and a supervisor that
	// restores a pre-crash checkpoint must not crash again on replay.
	fired map[int]bool

	// Barrier scratch, reused across rounds.
	active    []*link
	flights   map[int64][]flight
	arrive    [][]congest.Message // per-destination acceptance-order log
	touched   []int               // destinations with acceptances this round
	flightCtr int64
}

// CrashDue implements congest.Crasher: it reports a scripted crash-stop
// event due at round r (lowest node first when several are scheduled) and
// disarms it.
func (nw *Network) CrashDue(r int) (node, restart int, ok bool) {
	best := -1
	for i, e := range nw.Script {
		if e.Kind != CrashEvent || e.Round != r || nw.fired[i] {
			continue
		}
		if best < 0 || e.From < nw.Script[best].From {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	if nw.fired == nil {
		nw.fired = make(map[int]bool)
	}
	nw.fired[best] = true
	e := nw.Script[best]
	if e.Arg > 0 {
		restart = e.Round + e.Arg
	}
	return e.From, restart, true
}

// NextCrash implements congest.Crasher: the earliest round ≥ after with an
// armed crash event (0 = none).
func (nw *Network) NextCrash(after int) int {
	due := 0
	for i, e := range nw.Script {
		if e.Kind != CrashEvent || e.Round < after || nw.fired[i] {
			continue
		}
		if due == 0 || e.Round < due {
			due = e.Round
		}
	}
	return due
}

// DisarmedCrashes returns the script indices of crash events that have
// fired, for persisting the disarm bookkeeping across processes
// (internal/checkpoint stores them in the file header; snapshots
// deliberately do not carry them — see fired).
func (nw *Network) DisarmedCrashes() []int {
	idx := make([]int, 0, len(nw.fired))
	for i := range nw.fired {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// DisarmCrashes marks the given script indices as fired (the restore-side
// counterpart of DisarmedCrashes).
func (nw *Network) DisarmCrashes(idx []int) {
	if len(idx) == 0 {
		return
	}
	if nw.fired == nil {
		nw.fired = make(map[int]bool)
	}
	for _, i := range idx {
		nw.fired[i] = true
	}
}

// New returns a Network for the plan. The caller should have validated
// the plan (Parse does); an unsatisfiable plan (Drop ≥ 1) surfaces as a
// barrier error on the first round with traffic.
func New(plan Plan) *Network { return &Network{Plan: plan} }

// Reset implements congest.Network: per-run delivery state is discarded,
// cumulative physical statistics and the recorded event log survive.
func (nw *Network) Reset(n int) {
	nw.n = n
	nw.links = make(map[uint64]*link)
	nw.ready = make(map[int][]queued)
	nw.pending = 0
	nw.flights = make(map[int64][]flight)
	nw.arrive = make([][]congest.Message, n)
	nw.touched = nw.touched[:0]
	nw.active = nw.active[:0]
	nw.flightCtr = 0
}

func (nw *Network) linkFor(from, to int) *link {
	k := uint64(uint32(from))<<32 | uint64(uint32(to))
	l := nw.links[k]
	if l == nil {
		l = &link{from: from, to: to}
		nw.links[k] = l
	}
	return l
}

// Send implements congest.Network.
func (nw *Network) Send(r int, batch []congest.Message) error {
	if len(batch) == 0 {
		return nil
	}
	var delta PhysStats
	var err error
	if nw.Unreliable {
		nw.sendRaw(r, batch, &delta)
	} else {
		err = nw.barrier(r, batch, &delta)
	}
	nw.phys.Add(delta)
	if nw.Sink != nil {
		nw.Sink.PhysRound(r, delta)
	}
	return err
}

// Collect implements congest.Network.
func (nw *Network) Collect(r int) []congest.Message {
	q := nw.ready[r]
	if len(q) == 0 {
		return nil
	}
	delete(nw.ready, r)
	nw.pending -= len(q)
	if nw.Unreliable {
		// Wire order within the round is adversarial when Reorder is set;
		// group by destination (stable) and restore per-sender order
		// unless ArrivalOrder deliberately exposes the wire order.
		if nw.Plan.Reorder && len(q) > 1 {
			sort.SliceStable(q, func(i, j int) bool { return q[i].key < q[j].key })
		}
		if nw.ArrivalOrder {
			sort.SliceStable(q, func(i, j int) bool { return q[i].m.To < q[j].m.To })
		} else {
			sort.SliceStable(q, func(i, j int) bool {
				a, b := q[i].m, q[j].m
				return a.To < b.To || (a.To == b.To && a.From < b.From)
			})
		}
	}
	out := make([]congest.Message, len(q))
	for i, x := range q {
		out[i] = x.m
	}
	return out
}

// NextDue implements congest.Network.
func (nw *Network) NextDue(after int) int {
	due := 0
	for r := range nw.ready {
		if r >= after && (due == 0 || r < due) {
			due = r
		}
	}
	return due
}

// Pending implements congest.Network.
func (nw *Network) Pending() int { return nw.pending }

// Phys returns the cumulative physical-delivery statistics across every
// engine run since the Network was created.
func (nw *Network) Phys() PhysStats {
	s := nw.phys
	s.DelayHist = append([]int64(nil), nw.phys.DelayHist...)
	return s
}

// Recorded returns the faults the probabilistic plan injected in
// unreliable mode, in injection order — a script that replays the run
// exactly (rounds are per engine run, so replay a single-run protocol).
func (nw *Network) Recorded() []Event {
	return append([]Event(nil), nw.recorded...)
}

func (nw *Network) record(e Event) { nw.recorded = append(nw.recorded, e) }

// dataFate judges one data transmission attempt.
func (nw *Network) dataFate(r, from, to int, seq int64, attempt int) (drop bool, delay int, dup bool, dupDelay int) {
	if nw.Script != nil {
		if attempt == 0 {
			f := scriptFateOf(nw.Script, r, from, to)
			return f.drop, f.delay, f.dup, f.dupDelay
		}
		return false, 0, false, 0
	}
	p := nw.Plan
	drop = p.Drop > 0 && u01(p.prf(kindDataDrop, r, from, to, seq, attempt)) < p.Drop
	if p.MaxDelay > 0 {
		delay = int(p.prf(kindDataDelay, r, from, to, seq, attempt) % uint64(p.MaxDelay+1))
	}
	dup = p.Dup > 0 && u01(p.prf(kindDataDup, r, from, to, seq, attempt)) < p.Dup
	if dup && p.MaxDelay > 0 {
		dupDelay = int(p.prf(kindDupDelay, r, from, to, seq, attempt) % uint64(p.MaxDelay+1))
	}
	return
}

func (nw *Network) ackFate(r int, l *link, attempt int) (drop bool, delay int) {
	if nw.Script != nil {
		return false, 0
	}
	p := nw.Plan
	drop = p.Drop > 0 && u01(p.prf(kindAckDrop, r, l.from, l.to, l.delivered, attempt)) < p.Drop
	if p.MaxDelay > 0 {
		delay = int(p.prf(kindAckDelay, r, l.from, l.to, l.delivered, attempt) % uint64(p.MaxDelay+1))
	}
	return
}

// enqueue schedules a message for logical delivery in round due.
func (nw *Network) enqueue(due int, m congest.Message) {
	nw.flightCtr++
	key := nw.Plan.prf(kindShuffle, due, m.From, m.To, nw.flightCtr, 0)
	nw.ready[due] = append(nw.ready[due], queued{m: m, key: key})
	nw.pending++
}

// sendRaw is unreliable mode: the fault fate of each message applies to
// its logical delivery directly, and every plan-injected fault is
// recorded as a replayable Event.
func (nw *Network) sendRaw(r int, batch []congest.Message, delta *PhysStats) {
	record := nw.Script == nil
	for _, m := range batch {
		drop, delay, dup, dupDelay := nw.dataFate(r, m.From, m.To, 0, 0)
		delta.DataSends++
		if drop {
			delta.DataDrops++
			delta.Dropped++
			if record {
				nw.record(Event{Round: r, From: m.From, To: m.To, Kind: DropEvent})
			}
		} else {
			delta.delayed(delay)
			delta.Delivered++
			nw.enqueue(r+1+delay, m)
			if delay > 0 && record {
				nw.record(Event{Round: r, From: m.From, To: m.To, Kind: DelayEvent, Arg: delay})
			}
		}
		if dup {
			delta.DupCopies++
			delta.Delivered++
			nw.enqueue(r+1+dupDelay, m)
			if record {
				nw.record(Event{Round: r, From: m.From, To: m.To, Kind: DupEvent, Arg: dupDelay})
			}
		}
	}
}

// launch puts one physical transmission in the air, arriving at sub-round
// at.
func (nw *Network) launch(at int64, f flight) {
	nw.flightCtr++
	f.key = nw.Plan.prf(kindShuffle, int(at), f.from, f.to, nw.flightCtr, 0)
	nw.flights[at] = append(nw.flights[at], f)
}

// barrier runs the reliability shim for one logical round: physical
// sub-rounds of transmit → receive → acknowledge until every link's
// outstanding window is cumulatively acknowledged, then reassembles the
// (provably complete) batch for round r+1 in canonical order. The
// simulation is deterministic: links transmit in canonical batch order,
// arrivals are processed in launch order (or the plan's adversarial
// shuffle), and no map is iterated.
func (nw *Network) barrier(r int, batch []congest.Message, delta *PhysStats) error {
	active := nw.active[:0]
	for _, m := range batch {
		l := nw.linkFor(m.From, m.To)
		if len(l.out) != 0 {
			return fmt.Errorf("faults: link %d→%d entered round %d with an unacknowledged window", m.From, m.To, r)
		}
		l.nextSeq++
		l.out = append(l.out, pkt{seq: l.nextSeq, msg: m})
		l.resendAt = 0
		l.ackTries = 0
		active = append(active, l)
	}
	nw.active = active
	outstanding := len(active)
	// The retransmit timeout covers a full round trip at maximum delay;
	// the sub-round cap turns an unsatisfiable plan (or a shim bug) into
	// an engine error instead of a hang.
	rto := int64(2*nw.Plan.MaxDelay + 3)
	maxSub := int64(1000 * (nw.Plan.MaxDelay + 2))
	var recvd []*link
	var t int64
	for outstanding > 0 {
		if t >= maxSub {
			return fmt.Errorf("faults: round %d barrier incomplete after %d physical sub-rounds (plan %q)", r, t, nw.Plan.String())
		}
		// Transmit: every link whose timeout expired re-sends its window.
		for _, l := range active {
			if len(l.out) == 0 || t < l.resendAt {
				continue
			}
			for i := range l.out {
				p := &l.out[i]
				attempt := p.attempts
				p.attempts++
				if attempt == 0 {
					delta.DataSends++
				} else {
					delta.Retransmits++
				}
				drop, delay, dup, dupDelay := nw.dataFate(r, l.from, l.to, p.seq, attempt)
				if drop {
					delta.DataDrops++
				} else {
					delta.delayed(delay)
					nw.launch(t+1+int64(delay), flight{from: l.from, to: l.to, seq: p.seq, msg: p.msg})
				}
				if dup {
					delta.DupCopies++
					nw.launch(t+1+int64(dupDelay), flight{from: l.from, to: l.to, seq: p.seq, msg: p.msg})
				}
			}
			l.resendAt = t + rto
		}
		t++
		delta.SubRounds++
		// Receive: process this sub-round's arrivals.
		fl := nw.flights[t]
		delete(nw.flights, t)
		if nw.Plan.Reorder && len(fl) > 1 {
			sort.SliceStable(fl, func(i, j int) bool { return fl[i].key < fl[j].key })
		}
		recvd = recvd[:0]
		for _, f := range fl {
			l := nw.linkFor(f.from, f.to)
			if f.ack {
				if l.ack(f.seq) {
					outstanding--
				}
				continue
			}
			if l.accept(f.seq, f.msg) {
				if len(nw.arrive[f.to]) == 0 {
					nw.touched = append(nw.touched, f.to)
				}
				nw.arrive[f.to] = append(nw.arrive[f.to], f.msg)
			} else {
				delta.DupDeliveries++
			}
			if !l.ackPend {
				l.ackPend = true
				recvd = append(recvd, l)
			}
		}
		// Acknowledge: one cumulative ACK per link with data arrivals.
		for _, l := range recvd {
			l.ackPend = false
			attempt := l.ackTries
			l.ackTries++
			delta.AckSends++
			drop, delay := nw.ackFate(r, l, attempt)
			if drop {
				delta.AckDrops++
				continue
			}
			nw.launch(t+1+int64(delay), flight{ack: true, from: l.from, to: l.to, seq: l.delivered})
		}
	}
	// The barrier is complete; transmissions still in the air (stale ACKs,
	// duplicate copies) are moot and discarded.
	for k := range nw.flights {
		delete(nw.flights, k)
	}

	// Reassemble round r+1's batch. Canonical order is reconstructed from
	// (destination, sender, sequence) — the delivery-order invariant —
	// unless ArrivalOrder deliberately exposes physical acceptance order.
	total := 0
	if nw.ArrivalOrder {
		sort.Ints(nw.touched)
		for _, v := range nw.touched {
			for _, m := range nw.arrive[v] {
				nw.enqueue(r+1, m)
			}
			total += len(nw.arrive[v])
			nw.arrive[v] = nil
		}
	} else {
		ls := make([]*link, len(active))
		copy(ls, active)
		sort.Slice(ls, func(i, j int) bool {
			a, b := ls[i], ls[j]
			return a.to < b.to || (a.to == b.to && a.from < b.from)
		})
		for _, l := range ls {
			for _, m := range l.got {
				nw.enqueue(r+1, m)
			}
			total += len(l.got)
		}
		for _, v := range nw.touched {
			nw.arrive[v] = nil
		}
	}
	nw.touched = nw.touched[:0]
	for _, l := range active {
		l.got = l.got[:0]
	}
	nw.active = active[:0]
	delta.Delivered += int64(total)
	if total != len(batch) {
		return fmt.Errorf("faults: round %d delivered %d of %d messages despite the shim", r, total, len(batch))
	}
	return nil
}
