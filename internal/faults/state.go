// Checkpoint support: the Network's snapshotting side of the
// congest.Snapshotter contract. A snapshot is taken at a round barrier,
// where the reliability shim's per-round scratch (outstanding windows,
// in-air flights, acceptance logs) is provably empty; what must survive is
// the state that carries meaning across rounds — per-link sequence
// numbers, cumulative ACK and delivery frontiers, holdback buffers, the
// queued (delayed) logical deliveries, the PRF flight cursor, and the
// cumulative physical statistics and recorded event log.
//
// The fired-crash bookkeeping is deliberately NOT part of the snapshot:
// see Network.fired.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/congest"
)

func encodeEvent(enc *congest.StateEncoder, e Event) {
	enc.Int(e.Round)
	enc.Int(e.From)
	enc.Int(e.To)
	enc.Int(int(e.Kind))
	enc.Int(e.Arg)
}

func decodeEvent(dec *congest.StateDecoder) Event {
	var e Event
	e.Round = dec.Int()
	e.From = dec.Int()
	e.To = dec.Int()
	e.Kind = Kind(dec.Int())
	e.Arg = dec.Int()
	return e
}

// SnapshotState implements congest.Snapshotter.
func (nw *Network) SnapshotState(enc *congest.StateEncoder) error {
	enc.Int(nw.n)
	enc.Bool(nw.Unreliable)

	// Links, in sorted (from, to) key order so the stream is deterministic.
	keys := make([]uint64, 0, len(nw.links))
	for k := range nw.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	enc.Int(len(keys))
	for _, k := range keys {
		l := nw.links[k]
		if len(l.out) != 0 || len(l.got) != 0 {
			return fmt.Errorf("faults: snapshot of link %d→%d mid-barrier (outstanding window)", l.from, l.to)
		}
		enc.Int(l.from)
		enc.Int(l.to)
		enc.Int64(l.nextSeq)
		enc.Int64(l.ackedTo)
		enc.Int64(l.delivered)
		seqs := make([]int64, 0, len(l.hold))
		for s := range l.hold {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		enc.Int(len(seqs))
		for _, s := range seqs {
			enc.Int64(s)
			if err := congest.EncodeMessage(enc, l.hold[s]); err != nil {
				return err
			}
		}
	}

	// Queued logical deliveries, in due-round order.
	dues := make([]int, 0, len(nw.ready))
	for r := range nw.ready {
		dues = append(dues, r)
	}
	sort.Ints(dues)
	enc.Int(len(dues))
	for _, r := range dues {
		q := nw.ready[r]
		enc.Int(r)
		enc.Int(len(q))
		for _, x := range q {
			if err := congest.EncodeMessage(enc, x.m); err != nil {
				return err
			}
			enc.Uint64(x.key)
		}
	}

	enc.Int(nw.pending)
	enc.Int64(nw.flightCtr)

	// Cumulative physical statistics and the recorded event log: a resumed
	// run re-executes earlier phases (re-accumulating their physical cost
	// identically), then this snapshot resets both to the original values,
	// replacing the re-executed prefix with itself plus the skipped rounds.
	enc.Int64(nw.phys.DataSends)
	enc.Int64(nw.phys.Retransmits)
	enc.Int64(nw.phys.DupCopies)
	enc.Int64(nw.phys.DupDeliveries)
	enc.Int64(nw.phys.DataDrops)
	enc.Int64(nw.phys.AckDrops)
	enc.Int64(nw.phys.AckSends)
	enc.Int64(nw.phys.Delivered)
	enc.Int64(nw.phys.Dropped)
	enc.Int64(nw.phys.SubRounds)
	enc.Int64s(nw.phys.DelayHist)
	enc.Int(len(nw.recorded))
	for _, e := range nw.recorded {
		encodeEvent(enc, e)
	}
	return nil
}

// RestoreState implements congest.Snapshotter. The Network must be
// configured identically to the snapshotted one (same Plan, Script,
// Unreliable mode); only the dynamic state is restored.
func (nw *Network) RestoreState(dec *congest.StateDecoder) error {
	n := dec.Int()
	unreliable := dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != nw.n {
		return fmt.Errorf("faults: snapshot is for n=%d, network has n=%d", n, nw.n)
	}
	if unreliable != nw.Unreliable {
		return fmt.Errorf("faults: snapshot Unreliable=%v, network has %v", unreliable, nw.Unreliable)
	}

	nw.links = make(map[uint64]*link)
	nl := dec.Int()
	for i := 0; i < nl; i++ {
		from := dec.Int()
		to := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		l := nw.linkFor(from, to)
		l.nextSeq = dec.Int64()
		l.ackedTo = dec.Int64()
		l.delivered = dec.Int64()
		nh := dec.Int()
		for j := 0; j < nh; j++ {
			seq := dec.Int64()
			m, err := congest.DecodeMessage(dec)
			if err != nil {
				return err
			}
			if l.hold == nil {
				l.hold = make(map[int64]congest.Message)
			}
			l.hold[seq] = m
		}
	}

	nw.ready = make(map[int][]queued)
	nd := dec.Int()
	for i := 0; i < nd; i++ {
		r := dec.Int()
		nq := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		q := make([]queued, 0, nq)
		for j := 0; j < nq; j++ {
			m, err := congest.DecodeMessage(dec)
			if err != nil {
				return err
			}
			q = append(q, queued{m: m, key: dec.Uint64()})
		}
		nw.ready[r] = q
	}

	nw.pending = dec.Int()
	nw.flightCtr = dec.Int64()

	nw.phys = PhysStats{
		DataSends:     dec.Int64(),
		Retransmits:   dec.Int64(),
		DupCopies:     dec.Int64(),
		DupDeliveries: dec.Int64(),
		DataDrops:     dec.Int64(),
		AckDrops:      dec.Int64(),
		AckSends:      dec.Int64(),
		Delivered:     dec.Int64(),
		Dropped:       dec.Int64(),
		SubRounds:     dec.Int64(),
		DelayHist:     dec.Int64s(),
	}
	nw.recorded = nw.recorded[:0]
	ne := dec.Int()
	for i := 0; i < ne; i++ {
		nw.recorded = append(nw.recorded, decodeEvent(dec))
	}
	return dec.Err()
}
