package faults

import (
	"strings"
	"testing"
)

func TestPlanStringParseRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		{Seed: 42},
		{MaxDelay: 4},
		{Drop: 0.2},
		{Dup: 0.1},
		{Reorder: true},
		All(0),
		All(99),
		{Seed: -3, MaxDelay: 64, Drop: 0.999, Dup: 1, Reorder: true},
		{Drop: 0.0625, Dup: 0.333},
	}
	for _, p := range plans {
		s := p.String()
		got, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got != p {
			t.Errorf("Parse(%q) = %+v, want %+v", s, got, p)
		}
	}
}

func TestPlanParsePresets(t *testing.T) {
	for _, s := range []string{"", "none", "  none  "} {
		p, err := Parse(s)
		if err != nil || p != (Plan{}) {
			t.Errorf("Parse(%q) = %+v, %v; want zero plan", s, p, err)
		}
	}
	p, err := Parse("all")
	if err != nil || p != All(0) {
		t.Errorf("Parse(all) = %+v, %v; want %+v", p, err, All(0))
	}
	if (Plan{}).String() != "none" {
		t.Errorf("zero plan renders %q, want none", (Plan{}).String())
	}
}

func TestPlanParseErrors(t *testing.T) {
	bad := []string{
		"delay", "delay=x", "drop=z", "frobnicate=1", "drop=1", "drop=1.5",
		"drop=-0.1", "dup=2", "delay=-1", "delay=65", "seed=abc", "drop=NaN",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	evs := []Event{
		{Round: 0, From: 0, To: 0, Kind: DropEvent},
		{Round: 7, From: 2, To: 5, Kind: DelayEvent, Arg: 3},
		{Round: 123, From: 9, To: 1, Kind: DupEvent},
	}
	for _, e := range evs {
		s := e.String()
		got, err := ParseEvent(s)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", s, err)
		}
		if got != e {
			t.Errorf("ParseEvent(%q) = %+v, want %+v", s, got, e)
		}
	}
	for _, s := range []string{
		"", "round=1", "round=1 from=0 to=2 kind=zap",
		"round=1 round=2 from=0 to=1 kind=drop", "bogus",
	} {
		if _, err := ParseEvent(s); err == nil {
			t.Errorf("ParseEvent(%q) succeeded, want error", s)
		}
	}
}

func TestPRFDeterministicAndKeyed(t *testing.T) {
	p := Plan{Seed: 11}
	a := p.prf(kindDataDrop, 3, 1, 2, 5, 0)
	if b := p.prf(kindDataDrop, 3, 1, 2, 5, 0); a != b {
		t.Fatalf("prf not deterministic: %x vs %x", a, b)
	}
	// Distinct keys must give distinct words (full-avalanche mixer; equal
	// words here would mean a key is being ignored).
	variants := []uint64{
		p.prf(kindDataDelay, 3, 1, 2, 5, 0),
		p.prf(kindDataDrop, 4, 1, 2, 5, 0),
		p.prf(kindDataDrop, 3, 2, 1, 5, 0),
		p.prf(kindDataDrop, 3, 1, 2, 6, 0),
		p.prf(kindDataDrop, 3, 1, 2, 5, 1),
		Plan{Seed: 12}.prf(kindDataDrop, 3, 1, 2, 5, 0),
	}
	for i, v := range variants {
		if v == a {
			t.Errorf("variant %d collides with base key", i)
		}
	}
}

func TestScriptFateComposes(t *testing.T) {
	script := []Event{
		{Round: 2, From: 0, To: 1, Kind: DelayEvent, Arg: 2},
		{Round: 2, From: 0, To: 1, Kind: DupEvent},
		{Round: 2, From: 0, To: 1, Kind: DelayEvent, Arg: 1}, // max wins
		{Round: 3, From: 0, To: 1, Kind: DropEvent},
	}
	f := scriptFateOf(script, 2, 0, 1)
	if f.drop || f.delay != 2 || !f.dup {
		t.Errorf("round 2 fate = %+v, want delay=2 dup", f)
	}
	f = scriptFateOf(script, 3, 0, 1)
	if !f.drop {
		t.Errorf("round 3 fate = %+v, want drop", f)
	}
	if f = scriptFateOf(script, 4, 0, 1); f != (scriptFate{}) {
		t.Errorf("round 4 fate = %+v, want none", f)
	}
}

func TestPlanStringOrderIsCanonical(t *testing.T) {
	s := All(5).String()
	want := "delay=4,drop=0.2,dup=0.1,reorder,seed=5"
	if s != want {
		t.Errorf("All(5).String() = %q, want %q", s, want)
	}
	if i := strings.Index(s, "delay"); i != 0 {
		t.Errorf("canonical form must lead with delay: %q", s)
	}
}
