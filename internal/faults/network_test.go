package faults

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/congest"
)

// word is a one-word test payload.
type word int

func (word) Words() int { return 1 }

// testBatch builds a deterministic batch for round r over an n-node
// all-pairs link set: node u sends to node (u+1+r)%n and (u+2+r)%n.
func testBatch(r, n int) []congest.Message {
	var b []congest.Message
	for u := 0; u < n; u++ {
		seen := map[int]bool{}
		for _, d := range []int{1 + r%3, 2 + r%2} {
			v := (u + d) % n
			if v == u || seen[v] { // one message per link direction per round
				continue
			}
			seen[v] = true
			b = append(b, congest.Message{From: u, To: v, Payload: word(100*r + 10*u + v)})
		}
	}
	return b
}

// canonical returns the batch in the delivery-order invariant's order:
// destination ascending, then sender ascending.
func canonical(batch []congest.Message) []congest.Message {
	out := append([]congest.Message(nil), batch...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		return a.To < b.To || (a.To == b.To && a.From < b.From)
	})
	return out
}

// TestBarrierExactDelivery is the shim's core contract: under every fault
// plan, each round's batch arrives complete, exactly once, in canonical
// order, in the very next logical round.
func TestBarrierExactDelivery(t *testing.T) {
	plans := []Plan{
		{},                       // perfect network
		{Seed: 1, MaxDelay: 4},   // delay only
		{Seed: 2, Drop: 0.2},     // drops + retransmit
		{Seed: 3, Dup: 0.5},      // duplication
		{Seed: 4, Reorder: true}, // reorder at zero delay
		All(5),                   // everything
		{Seed: 6, MaxDelay: 64, Drop: 0.6, Dup: 0.9, Reorder: true}, // heavy
	}
	for _, p := range plans {
		t.Run(p.String(), func(t *testing.T) {
			nw := New(p)
			const n, rounds = 7, 12
			nw.Reset(n)
			for r := 0; r < rounds; r++ {
				batch := testBatch(r, n)
				if err := nw.Send(r, batch); err != nil {
					t.Fatalf("round %d: Send: %v", r, err)
				}
				if due := nw.NextDue(r + 1); due != r+1 {
					t.Fatalf("round %d: NextDue(%d) = %d, want %d", r, r+1, due, r+1)
				}
				if nw.Pending() != len(batch) {
					t.Fatalf("round %d: Pending = %d, want %d", r, nw.Pending(), len(batch))
				}
				got := nw.Collect(r + 1)
				if want := canonical(batch); !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d: Collect = %v, want %v", r, got, want)
				}
				if nw.Pending() != 0 {
					t.Fatalf("round %d: Pending = %d after Collect, want 0", r, nw.Pending())
				}
			}
			phys := nw.Phys()
			want := int64(0)
			for r := 0; r < rounds; r++ {
				want += int64(len(testBatch(r, n)))
			}
			if phys.Delivered != want {
				t.Errorf("Delivered = %d, want %d", phys.Delivered, want)
			}
			if p == (Plan{}) {
				if phys.Retransmits != 0 || phys.DataDrops != 0 || phys.DupDeliveries != 0 {
					t.Errorf("perfect plan did physical work: %+v", phys)
				}
			}
			if p.Drop > 0 && phys.Retransmits == 0 {
				t.Errorf("plan %v dropped nothing worth retransmitting: %+v", p, phys)
			}
		})
	}
}

// TestBarrierRunsIndependentOfBatchOrder: the reassembled inbox order must
// come from sequence numbers, not from the order Send saw the batch in.
func TestBarrierIndependentOfBatchOrder(t *testing.T) {
	p := All(17)
	run := func(perm func([]congest.Message)) []congest.Message {
		nw := New(p)
		nw.Reset(5)
		batch := testBatch(0, 5)
		perm(batch)
		if err := nw.Send(0, batch); err != nil {
			t.Fatal(err)
		}
		return nw.Collect(1)
	}
	a := run(func([]congest.Message) {})
	b := run(func(b []congest.Message) {
		for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
			b[i], b[j] = b[j], b[i]
		}
	})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("delivery order depends on send order:\n%v\nvs\n%v", a, b)
	}
}

// TestBarrierUnsatisfiable: a drop rate the retransmit budget cannot beat
// surfaces as an error, not a hang.
func TestBarrierUnsatisfiable(t *testing.T) {
	nw := New(Plan{Seed: 9, Drop: 0.9999999999})
	nw.Reset(3)
	err := nw.Send(0, []congest.Message{{From: 0, To: 1, Payload: word(1)}})
	if err == nil {
		t.Fatal("Send succeeded under a ~certain-drop plan, want barrier-cap error")
	}
}

func TestUnreliableScriptedFaults(t *testing.T) {
	nw := New(Plan{})
	nw.Unreliable = true
	nw.Script = []Event{
		{Round: 0, From: 0, To: 1, Kind: DropEvent},
		{Round: 0, From: 1, To: 2, Kind: DelayEvent, Arg: 2},
		{Round: 0, From: 2, To: 0, Kind: DupEvent},
	}
	nw.Reset(3)
	batch := []congest.Message{
		{From: 0, To: 1, Payload: word(1)},
		{From: 1, To: 2, Payload: word(2)},
		{From: 2, To: 0, Payload: word(3)},
	}
	if err := nw.Send(0, batch); err != nil {
		t.Fatal(err)
	}
	// Round 1: the dropped message is gone, the delayed one absent, the
	// duplicated one arrives twice.
	got := nw.Collect(1)
	want := []congest.Message{
		{From: 2, To: 0, Payload: word(3)},
		{From: 2, To: 0, Payload: word(3)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round 1 inbox = %v, want %v", got, want)
	}
	// Round 3: the delayed message lands.
	if due := nw.NextDue(2); due != 3 {
		t.Errorf("NextDue(2) = %d, want 3", due)
	}
	got = nw.Collect(3)
	want = []congest.Message{{From: 1, To: 2, Payload: word(2)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round 3 inbox = %v, want %v", got, want)
	}
	if nw.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", nw.Pending())
	}
	phys := nw.Phys()
	if phys.Dropped != 1 || phys.DupCopies != 1 || phys.Delivered != 3 {
		t.Errorf("phys = %+v, want 1 dropped, 1 dup copy, 3 delivered", phys)
	}
}

// TestUnreliableRecordedReplay: a probabilistic chaos run records its
// faults as Events, and replaying them as a Script reproduces the exact
// delivery schedule — the property difftest.Shrink is built on.
func TestUnreliableRecordedReplay(t *testing.T) {
	const n, rounds = 6, 8
	run := func(nw *Network) map[int][]congest.Message {
		nw.Unreliable = true
		nw.Reset(n)
		out := map[int][]congest.Message{}
		for r := 0; r < rounds; r++ {
			if err := nw.Send(r, testBatch(r, n)); err != nil {
				t.Fatal(err)
			}
		}
		for r := 1; r <= rounds+MaxMaxDelay; r++ {
			if msgs := nw.Collect(r); len(msgs) > 0 {
				out[r] = msgs
			}
		}
		if nw.Pending() != 0 {
			t.Fatalf("Pending = %d after draining", nw.Pending())
		}
		return out
	}
	chaos := New(All(23))
	first := run(chaos)
	recorded := chaos.Recorded()
	if len(recorded) == 0 {
		t.Fatal("chaos run recorded no events")
	}

	replay := New(Plan{Reorder: true, Seed: 23}) // keep the shuffle keys
	replay.Script = recorded
	second := run(replay)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("script replay diverged from recorded chaos run:\n%v\nvs\n%v", first, second)
	}
}

// TestResetRetainsPhys: per-run state clears, cumulative stats and the
// event log survive (multi-phase algorithms run many engines).
func TestResetRetainsPhys(t *testing.T) {
	nw := New(Plan{Seed: 3, Drop: 0.3})
	nw.Reset(4)
	if err := nw.Send(0, testBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	nw.Collect(1)
	before := nw.Phys()
	if before.DataSends == 0 {
		t.Fatal("no physical sends recorded")
	}
	nw.Reset(4)
	if nw.Pending() != 0 || nw.NextDue(0) != 0 {
		t.Error("Reset left per-run delivery state behind")
	}
	if after := nw.Phys(); !reflect.DeepEqual(after, before) {
		t.Errorf("Reset lost cumulative stats: %+v vs %+v", after, before)
	}
	if err := nw.Send(0, testBatch(0, 4)); err != nil {
		t.Fatal(err)
	}
	if after := nw.Phys(); after.DataSends <= before.DataSends {
		t.Errorf("stats did not accumulate across runs: %+v", after)
	}
}

type sinkRec struct {
	rounds []int
	total  PhysStats
}

func (s *sinkRec) PhysRound(r int, d PhysStats) {
	s.rounds = append(s.rounds, r)
	s.total.Add(d)
}

// TestSinkDeltasSumToPhys: the per-round deltas handed to the Sink must
// sum to the cumulative Phys figures.
func TestSinkDeltasSumToPhys(t *testing.T) {
	nw := New(All(31))
	rec := &sinkRec{}
	nw.Sink = rec
	nw.Reset(5)
	for r := 0; r < 6; r++ {
		if err := nw.Send(r, testBatch(r, 5)); err != nil {
			t.Fatal(err)
		}
		nw.Collect(r + 1)
	}
	if want := []int{0, 1, 2, 3, 4, 5}; !reflect.DeepEqual(rec.rounds, want) {
		t.Errorf("sink rounds = %v, want %v", rec.rounds, want)
	}
	if !reflect.DeepEqual(rec.total, nw.Phys()) {
		t.Errorf("sink sum %+v != Phys %+v", rec.total, nw.Phys())
	}
}

// TestDeterminismAcrossRuns: the whole simulation is a pure function of
// (plan, batches) — byte-identical physical stats on repeat runs.
func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (PhysStats, string) {
		nw := New(All(77))
		nw.Reset(8)
		var trace string
		for r := 0; r < 10; r++ {
			if err := nw.Send(r, testBatch(r, 8)); err != nil {
				t.Fatal(err)
			}
			trace += fmt.Sprint(nw.Collect(r + 1))
		}
		return nw.Phys(), trace
	}
	s1, t1 := run()
	s2, t2 := run()
	if !reflect.DeepEqual(s1, s2) || t1 != t2 {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", s1, s2)
	}
}
