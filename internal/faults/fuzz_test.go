package faults

import (
	"reflect"
	"testing"
)

// FuzzFaultPlan checks the plan codec's round-trip invariant promised in
// Parse's doc: every plan Parse accepts renders to a canonical string that
// parses back to the identical plan.
func FuzzFaultPlan(f *testing.F) {
	for _, s := range []string{
		"", "none", "all",
		"delay=4,drop=0.2,dup=0.1,reorder,seed=5",
		"drop=0.999", "delay=64", "seed=-3,reorder",
		"dup=1", " drop = 0.5 , delay = 2 ",
		"drop=1e-300", "delay=65", "drop=1", "drop=nan",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned invalid plan %+v: %v", s, p, err)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not parse: %v", p.String(), s, err)
		}
		if q != p {
			t.Fatalf("round trip changed the plan: %q -> %+v -> %q -> %+v", s, p, p.String(), q)
		}
	})
}

// FuzzReliableLink throws fuzzer-chosen fault plans and traffic shapes at
// the reliability shim and asserts its whole contract: Send never fails for
// a satisfiable plan, Collect returns exactly the canonical batch, and no
// transmission is left pending once the barrier returns.
func FuzzReliableLink(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(5), uint8(4), uint16(200), uint16(100), true)
	f.Add(int64(42), uint8(0), uint8(2), uint8(1), uint16(0), uint16(0), false)
	f.Add(int64(-7), uint8(7), uint8(8), uint8(10), uint16(699), uint16(1000), true)
	f.Fuzz(func(t *testing.T, seed int64, delayRaw, nRaw, roundsRaw uint8, dropRaw, dupRaw uint16, reorder bool) {
		plan := Plan{
			Seed:     seed,
			MaxDelay: int(delayRaw % 8),
			// <= 0.699: progress needs the data copy AND its ACK to survive a
			// retransmit cycle, so per-cycle success stays >= (1-0.7)^2 ≈ 0.09
			// and the barrier's sub-round budget is effectively never exhausted
			// (at drop 0.899 the fuzzer genuinely found it running out).
			Drop:    float64(dropRaw%700) / 1000,
			Dup:     float64(dupRaw%1001) / 1000,
			Reorder: reorder,
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("constructed invalid plan %+v: %v", plan, err)
		}
		n := 2 + int(nRaw%7)
		rounds := 1 + int(roundsRaw%10)

		nw := New(plan)
		nw.Reset(n)
		var total int64
		for r := 0; r < rounds; r++ {
			batch := testBatch(r, n)
			total += int64(len(batch))
			if err := nw.Send(r, batch); err != nil {
				t.Fatalf("plan %q round %d: Send: %v", plan, r, err)
			}
			got := nw.Collect(r + 1)
			if !reflect.DeepEqual(got, canonical(batch)) {
				t.Fatalf("plan %q round %d: delivery diverged from canonical batch\ngot  %v\nwant %v",
					plan, r, got, canonical(batch))
			}
		}
		if nw.Pending() != 0 {
			t.Fatalf("plan %q: %d messages still pending after barrier", plan, nw.Pending())
		}
		if d := nw.Phys().Delivered; d != total {
			t.Fatalf("plan %q: delivered %d of %d messages", plan, d, total)
		}
	})
}
