package faults

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bellman"
	"repro/internal/congest"
	"repro/internal/graph"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// TestGoldenPhysStats pins the physical-delivery profile of a fixed
// Bellman-Ford run under the standard chaos plan. The shim's PRF, the
// retransmit timer and the barrier loop are all deterministic, so any code
// change that alters how many transmissions the adversary sees — not just
// whether the result is correct — shows up as a diff against this file.
// Regenerate deliberately with `go test ./internal/faults/ -run Golden -update`.
func TestGoldenPhysStats(t *testing.T) {
	g := graph.Random(16, 48, graph.GenOpts{Seed: 3, MaxW: 5, Directed: true})
	nw := New(All(42))
	res, err := bellman.Run(g, bellman.Opts{Sources: []int{0, 1}, H: 4, Network: nw})
	if err != nil {
		t.Fatal(err)
	}
	snap := struct {
		Plan  string        `json:"plan"`
		Stats congest.Stats `json:"logical_stats"`
		Phys  PhysStats     `json:"phys"`
	}{Plan: All(42).String(), Stats: res.Stats, Phys: nw.Phys()}
	got, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_phys.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("physical stats drifted from golden snapshot (run with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}
