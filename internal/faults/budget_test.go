package faults

import (
	"testing"
)

// TestBarrierBudgetExhaustion pins the corner FuzzReliableLink found (see
// the Drop comment there): above the supported drop regime, per-cycle
// success falls low enough that the barrier's sub-round budget
// 1000·(MaxDelay+2) genuinely runs out. The exact instance — drop=0.899,
// seed=17, n=3, first round's batch — is committed so the failure mode
// stays a structured, plan-attributed error and never regresses into a
// hang or a panic.
func TestBarrierBudgetExhaustion(t *testing.T) {
	plan := Plan{Seed: 17, Drop: 0.899}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan must be formally valid (exhaustion is a runtime budget, not a validation error): %v", err)
	}
	nw := New(plan)
	nw.Reset(3)
	err := nw.Send(0, testBatch(0, 3))
	if err == nil {
		t.Fatal("drop=0.899 seed=17 no longer exhausts the barrier budget; find a new pinned instance " +
			"(sweep seeds as FuzzReliableLink's Drop comment describes) or the corner is untested")
	}
	want := `faults: round 0 barrier incomplete after 2000 physical sub-rounds (plan "drop=0.899,seed=17")`
	if err.Error() != want {
		t.Fatalf("budget exhaustion error changed:\ngot  %q\nwant %q", err, want)
	}
	if nw.Pending() < 0 {
		t.Fatalf("negative pending count after aborted barrier: %d", nw.Pending())
	}

	// The same traffic under the supported regime (Drop <= 0.699, the
	// fuzzer's bound) must complete: the budget only bites past it.
	ok := New(Plan{Seed: 17, Drop: 0.699})
	ok.Reset(3)
	if err := ok.Send(0, testBatch(0, 3)); err != nil {
		t.Fatalf("drop=0.699 must stay within the barrier budget: %v", err)
	}
	if got := ok.Collect(1); len(got) == 0 {
		t.Fatal("no deliveries under the supported drop regime")
	}
}
