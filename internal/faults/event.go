package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a single explicit fault event.
type Kind int

const (
	// DropEvent destroys the transmission.
	DropEvent Kind = iota
	// DelayEvent defers it by Arg sub-rounds (logical rounds in
	// unreliable mode).
	DelayEvent
	// DupEvent injects one extra copy, deferred by Arg sub-rounds
	// (logical rounds in unreliable mode).
	DupEvent
	// CrashEvent crash-stops node From at the start of round Round (To is
	// unused and must be 0): the engine aborts the run at the barrier with
	// a congest.CrashError before any node steps. Arg, when positive, is
	// the restart offset k — the fault plan allows the node back at round
	// Round+k, and a supervisor may restore the latest checkpoint; Arg=0
	// is an unrecoverable crash-stop. A crash fires once and disarms for
	// the lifetime of the Network (across Reset and checkpoint restore
	// alike — crash-stop is an event, not reconstructible state).
	CrashEvent
)

var kindNames = [...]string{"drop", "delay", "dup", "crash"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown event kind %q", s)
}

// Event is one explicit fault: it applies to the first transmission
// attempt of the message sent on link From→To in logical round Round (in
// CONGEST a link direction carries at most one message per round, so the
// triple identifies the message). A Network with a non-nil Script injects
// exactly the scripted events and nothing else — the replayable,
// shrinkable form of a fault plan (internal/difftest.Shrink minimizes
// event lists; the probabilistic Network records one Event per fault it
// injects so any chaos run can be turned into a script).
type Event struct {
	Round    int
	From, To int
	Kind     Kind
	// Arg is the delay amount for DelayEvent and the extra copy's delay
	// for DupEvent; unused for DropEvent.
	Arg int
}

// String renders the event in the fixture form ParseEvent accepts:
// "round=R from=U to=V kind=K" with " arg=N" appended when non-zero.
func (e Event) String() string {
	s := fmt.Sprintf("round=%d from=%d to=%d kind=%s", e.Round, e.From, e.To, e.Kind)
	if e.Arg != 0 {
		s += fmt.Sprintf(" arg=%d", e.Arg)
	}
	return s
}

// ParseEvent is the inverse of Event.String.
func ParseEvent(s string) (Event, error) {
	var e Event
	seen := map[string]bool{}
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok || seen[k] {
			return Event{}, fmt.Errorf("faults: bad event field %q in %q", f, s)
		}
		seen[k] = true
		var err error
		switch k {
		case "round":
			e.Round, err = strconv.Atoi(v)
		case "from":
			e.From, err = strconv.Atoi(v)
		case "to":
			e.To, err = strconv.Atoi(v)
		case "arg":
			e.Arg, err = strconv.Atoi(v)
		case "kind":
			e.Kind, err = ParseKind(v)
		default:
			return Event{}, fmt.Errorf("faults: unknown event field %q in %q", k, s)
		}
		if err != nil {
			return Event{}, err
		}
	}
	if !seen["round"] || !seen["from"] || !seen["to"] || !seen["kind"] {
		return Event{}, fmt.Errorf("faults: event %q missing round/from/to/kind", s)
	}
	return e, nil
}

// scriptFate aggregates the scripted events matching one message.
type scriptFate struct {
	drop     bool
	delay    int
	dup      bool
	dupDelay int
}

// fateOf collects the scripted fate of the message sent on From→To in
// round r. Multiple events for one message compose (e.g. Delay + Dup).
func scriptFateOf(script []Event, r, from, to int) scriptFate {
	var f scriptFate
	for _, e := range script {
		if e.Round != r || e.From != from || e.To != to {
			continue
		}
		switch e.Kind {
		case DropEvent:
			f.drop = true
		case DelayEvent:
			if e.Arg > f.delay {
				f.delay = e.Arg
			}
		case DupEvent:
			f.dup = true
			if e.Arg > f.dupDelay {
				f.dupDelay = e.Arg
			}
		}
	}
	return f
}
