// Package faults is the adversarial-delivery layer for the CONGEST engine
// (internal/congest): a seeded, fully deterministic fault injector for the
// physical network underneath the round abstraction, plus the reliability
// shim — per-link sequence numbers, cumulative ACKs, timeout retransmit
// and a per-round delivery barrier — that restores exact synchronous
// semantics over it.
//
// The paper's bounds (Theorems I.1–I.5) are statements about a perfectly
// synchronous CONGEST network. Rather than hardening every protocol
// individually, this package hardens the substrate: each logical round's
// message batch is carried by simulated physical sub-rounds in which the
// adversary may delay (bounded), drop, duplicate and reorder individual
// transmissions, and the shim retransmits until every sequence number is
// cumulatively acknowledged. Because the barrier completes before the next
// logical round starts and inboxes are reassembled in canonical
// (sender, sequence) order, every unmodified protocol computes bit-identical
// distances, parents and logical Stats under any fault plan — the
// conformance sweep in faults_test.go verifies exactly that, on both the
// dense and active-set schedulers.
//
// Fault decisions are drawn from a Plan: a keyed PRF of
// (seed, kind, round, src, dst, sequence, attempt), so a run is a pure
// function of (graph, protocol, plan) — independent of host scheduling,
// worker count and map iteration order. The same keying makes every
// counterexample replayable and shrinkable (internal/difftest.Shrink).
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/key"
)

// Plan is a deterministic fault model for the physical network. The zero
// value is the perfect network (the shim still runs, but every
// transmission succeeds immediately).
type Plan struct {
	// Seed keys the fault PRF. Two runs with the same plan see the same
	// faults; 0 is a valid seed.
	Seed int64
	// MaxDelay bounds the extra latency of a transmission attempt: each
	// copy is assigned a delay drawn uniformly from 0..MaxDelay physical
	// sub-rounds (logical rounds in unreliable mode).
	MaxDelay int
	// Drop is the per-attempt probability that a transmission vanishes.
	// Must be < 1 or the reliability barrier cannot complete.
	Drop float64
	// Dup is the per-attempt probability that a transmission is
	// duplicated; the extra copy gets an independent delay.
	Dup float64
	// Reorder scrambles the processing order of same-sub-round arrivals
	// (deterministically). With MaxDelay > 0 arrival order is already
	// scrambled across sub-rounds; Reorder makes it adversarial even at
	// delay 0.
	Reorder bool
}

// MaxMaxDelay bounds Plan.MaxDelay (a delay is "bounded" in the model's
// sense; anything larger is a drop in disguise).
const MaxMaxDelay = 64

// Validate reports whether the plan's parameters are in range.
func (p Plan) Validate() error {
	if p.MaxDelay < 0 || p.MaxDelay > MaxMaxDelay {
		return fmt.Errorf("faults: MaxDelay %d out of range [0, %d]", p.MaxDelay, MaxMaxDelay)
	}
	if math.IsNaN(p.Drop) || p.Drop < 0 || p.Drop >= 1 {
		return fmt.Errorf("faults: Drop %v out of range [0, 1)", p.Drop)
	}
	if math.IsNaN(p.Dup) || p.Dup < 0 || p.Dup > 1 {
		return fmt.Errorf("faults: Dup %v out of range [0, 1]", p.Dup)
	}
	return nil
}

// All is the standard chaos plan used by the conformance sweep and the
// -faults=all CLI shorthand: bounded delay ≤ 4, 20% drops, 10%
// duplication, adversarial reordering.
func All(seed int64) Plan {
	return Plan{Seed: seed, MaxDelay: 4, Drop: 0.2, Dup: 0.1, Reorder: true}
}

// Parse decodes a plan from its textual form: comma-separated terms
// "delay=N", "drop=P", "dup=P", "reorder" and "seed=N", in any order.
// The presets "" and "none" give the zero plan and "all" gives All(0).
// Parse(p.String()) == p for every valid plan (FuzzFaultPlan).
func Parse(s string) (Plan, error) {
	var p Plan
	switch strings.TrimSpace(s) {
	case "", "none":
		return p, nil
	case "all":
		return All(0), nil
	}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		if term == "reorder" {
			p.Reorder = true
			continue
		}
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: bad plan term %q (want key=value or reorder)", term)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "delay":
			d, err := strconv.Atoi(v)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad delay %q: %v", v, err)
			}
			p.MaxDelay = d
		case "seed":
			sd, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad seed %q: %v", v, err)
			}
			p.Seed = sd
		case "drop", "dup":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad %s %q: %v", k, v, err)
			}
			if k == "drop" {
				p.Drop = f
			} else {
				p.Dup = f
			}
		default:
			return Plan{}, fmt.Errorf("faults: unknown plan key %q", k)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// String renders the plan in the canonical form Parse accepts: active
// terms in delay, drop, dup, reorder, seed order; "none" for the zero
// plan.
func (p Plan) String() string {
	var terms []string
	if p.MaxDelay != 0 {
		terms = append(terms, fmt.Sprintf("delay=%d", p.MaxDelay))
	}
	if p.Drop != 0 {
		terms = append(terms, "drop="+strconv.FormatFloat(p.Drop, 'g', -1, 64))
	}
	if p.Dup != 0 {
		terms = append(terms, "dup="+strconv.FormatFloat(p.Dup, 'g', -1, 64))
	}
	if p.Reorder {
		terms = append(terms, "reorder")
	}
	if p.Seed != 0 {
		terms = append(terms, fmt.Sprintf("seed=%d", p.Seed))
	}
	if len(terms) == 0 {
		return "none"
	}
	return strings.Join(terms, ",")
}

// PRF domains. Every random decision in the package is keyed by one of
// these so decisions are independent of each other and of evaluation
// order.
const (
	kindDataDrop uint64 = iota + 1
	kindDataDelay
	kindDataDup
	kindDupDelay
	kindAckDrop
	kindAckDelay
	kindShuffle
)

// prf draws the decision word for one (kind, round, link, seq, attempt)
// key under the plan's seed. The seeding and mixing discipline is the
// shared one in internal/key; the derived stream is bit-identical to the
// pre-dedup local copy, so committed fixtures replay unchanged.
func (p Plan) prf(kind uint64, round, from, to int, seq int64, attempt int) uint64 {
	h := key.PRF(p.Seed, kind)
	h = key.Mix64(h ^ uint64(uint32(round)) ^ uint64(uint32(attempt))<<32)
	h = key.Mix64(h ^ uint64(uint32(from)) ^ uint64(uint32(to))<<32)
	h = key.Mix64(h ^ uint64(seq))
	return h
}

// u01 maps a PRF word to [0, 1).
func u01(h uint64) float64 { return key.U01(h) }
