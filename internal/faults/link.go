package faults

import (
	"repro/internal/congest"
)

// pkt is one sequence-numbered data packet awaiting acknowledgement.
type pkt struct {
	seq      int64
	msg      congest.Message
	attempts int // transmissions so far (attempt index keys the PRF)
}

// link is one direction of a communication link under the reliability
// shim. Both endpoints' state lives here because the simulation is
// global; the protocol it implements is strictly local: the sender
// retransmits its unacknowledged window on a timeout, the receiver
// deduplicates by sequence number, delivers in sequence order and returns
// cumulative ACKs.
type link struct {
	from, to int

	// Sender state.
	nextSeq  int64 // last assigned sequence number
	out      []pkt // outstanding unACKed packets, sequence ascending
	ackedTo  int64 // cumulative acknowledgement received
	resendAt int64 // sub-round at which the window retransmits
	ackTries int   // ACK transmissions this round (attempt PRF key)

	// Receiver state.
	delivered int64                     // in-order delivery frontier
	hold      map[int64]congest.Message // out-of-order holdback buffer
	got       []congest.Message         // this round's deliveries, sequence order
	ackPend   bool                      // data arrived this sub-round; owe an ACK
}

// accept processes one received data packet; it reports whether the
// packet was new (false = duplicate, already delivered or held).
func (l *link) accept(seq int64, msg congest.Message) bool {
	if seq <= l.delivered {
		return false
	}
	if _, dup := l.hold[seq]; dup {
		return false
	}
	if l.hold == nil {
		l.hold = make(map[int64]congest.Message)
	}
	l.hold[seq] = msg
	for {
		m, ok := l.hold[l.delivered+1]
		if !ok {
			break
		}
		delete(l.hold, l.delivered+1)
		l.delivered++
		l.got = append(l.got, m)
	}
	return true
}

// ack processes one received cumulative acknowledgement and reports
// whether it emptied the outstanding window.
func (l *link) ack(cum int64) bool {
	if cum <= l.ackedTo {
		return false
	}
	l.ackedTo = cum
	had := len(l.out) > 0
	for len(l.out) > 0 && l.out[0].seq <= cum {
		l.out = l.out[1:]
	}
	return had && len(l.out) == 0
}

// PhysStats counts physical-delivery work: what the adversary did to the
// wire and what the reliability shim spent undoing it. Logical
// congest.Stats are invariant under any fault plan; these are not — they
// are the cost of the synchrony the shim restores.
type PhysStats struct {
	// DataSends counts first transmissions of data packets; Retransmits
	// counts re-sends after an unacknowledged timeout.
	DataSends   int64 `json:"dataSends"`
	Retransmits int64 `json:"retransmits"`
	// DupCopies counts adversary-injected duplicate transmissions;
	// DupDeliveries counts arrivals the receiver discarded as already
	// seen (duplicates and retransmit overlap alike).
	DupCopies     int64 `json:"dupCopies"`
	DupDeliveries int64 `json:"dupDeliveries"`
	// DataDrops / AckDrops count transmissions the adversary destroyed.
	DataDrops int64 `json:"dataDrops"`
	AckDrops  int64 `json:"ackDrops"`
	// AckSends counts cumulative-ACK transmissions.
	AckSends int64 `json:"ackSends"`
	// Delivered counts messages handed to logical inboxes; Dropped counts
	// messages destroyed for good (unreliable mode only — under the shim
	// it stays 0 by construction).
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	// SubRounds counts simulated physical sub-rounds; the per-logical-
	// round ratio is the synchronizer's latency overhead.
	SubRounds int64 `json:"subRounds"`
	// DelayHist[d] counts transmission attempts assigned d extra
	// sub-rounds of latency (logical rounds in unreliable mode).
	DelayHist []int64 `json:"delayHist,omitempty"`
}

// Add accumulates d into s (histograms grow to fit).
func (s *PhysStats) Add(d PhysStats) {
	s.DataSends += d.DataSends
	s.Retransmits += d.Retransmits
	s.DupCopies += d.DupCopies
	s.DupDeliveries += d.DupDeliveries
	s.DataDrops += d.DataDrops
	s.AckDrops += d.AckDrops
	s.AckSends += d.AckSends
	s.Delivered += d.Delivered
	s.Dropped += d.Dropped
	s.SubRounds += d.SubRounds
	for i, c := range d.DelayHist {
		for len(s.DelayHist) <= i {
			s.DelayHist = append(s.DelayHist, 0)
		}
		s.DelayHist[i] += c
	}
}

// delayed records one attempt's injected delay in the histogram.
func (s *PhysStats) delayed(d int) {
	for len(s.DelayHist) <= d {
		s.DelayHist = append(s.DelayHist, 0)
	}
	s.DelayHist[d]++
}

// Sink receives one PhysStats delta per logical round with traffic.
// internal/obs.Recorder implements it, attributing physical-delivery cost
// to algorithm phases alongside the logical event stream.
type Sink interface {
	PhysRound(round int, delta PhysStats)
}
