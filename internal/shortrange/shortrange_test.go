package shortrange

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestSingleSourceExactSSSP(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(30, 90, graph.GenOpts{Seed: seed, MaxW: 7, ZeroFrac: 0.3, Directed: seed%2 == 0})
		res, err := SingleSource(g, 0, 6)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := graph.Dijkstra(g, 0)
		for v := 0; v < g.N(); v++ {
			if res.Dist[0][v] != want[v] {
				t.Fatalf("seed %d: dist[%d] = %d, want %d", seed, v, res.Dist[0][v], want[v])
			}
		}
	}
}

func TestSnapshotWithinHHopClaim(t *testing.T) {
	// Lemma II.15's content: by round ⌈Δ√h⌉+h (here Δ is folded into γ=√h
	// for the as-written algorithm, so the snapshot round is ⌈γ⌉+h... the
	// implementation snapshots at ⌈Δγ⌉+h with Δ=1) estimates should be at
	// most the h-hop distance. With Δ=1 the claim is only meaningful for
	// unit-ish distances, so here we run the k-source form with the real Δ.
	violations := 0
	checked := 0
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(26, 78, graph.GenOpts{Seed: seed, MaxW: 5, ZeroFrac: 0.3, Directed: true})
		sources := []int{0, 9, 17}
		h := 6
		delta := graph.HHopDelta(g, sources, h)
		if delta == 0 {
			continue
		}
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, s := range sources {
			want := graph.HHopDistances(g, s, h)
			for v := 0; v < g.N(); v++ {
				if want[v] >= graph.Inf {
					continue
				}
				checked++
				if res.Snap[i][v] > want[v] {
					violations++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pairs checked")
	}
	// The claim is measured, not assumed: report and fail only if it is
	// grossly false (>20% violations would mean the schedule is broken).
	t.Logf("snapshot claim: %d/%d estimates above their h-hop distance at the claimed round", violations, checked)
	if violations*5 > checked {
		t.Fatalf("snapshot claim grossly violated: %d/%d", violations, checked)
	}
}

func TestCongestionBound(t *testing.T) {
	// Single-source congestion claim: at most √h messages per link
	// direction over the whole run... as written the argument gives ~√h
	// sends per node; we assert the measured per-link congestion stays
	// within √h + slack.
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(40, 120, graph.GenOpts{Seed: seed, MaxW: 4, ZeroFrac: 0.3, Directed: true})
		h := 9
		res, err := SingleSource(g, 3, h)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bound := int(math.Sqrt(float64(h))) + 2
		if res.Stats.MaxLinkCongestion > bound {
			t.Errorf("seed %d: congestion %d exceeds √h+2 = %d", seed, res.Stats.MaxLinkCongestion, bound)
		}
	}
}

func TestExtension(t *testing.T) {
	// Seed a frontier with known distances; extension must equal the
	// Dijkstra distances of a virtual super-source attached to the seeds.
	g := graph.Random(30, 90, graph.GenOpts{Seed: 7, MaxW: 6, ZeroFrac: 0.2, Directed: true})
	seed := map[int]int64{2: 5, 11: 0, 23: 9}
	res, err := Extension(g, seed, 5)
	if err != nil {
		t.Fatalf("Extension: %v", err)
	}
	// Reference: virtual node attached to each seeded node with the seed
	// weight.
	vg := graph.New(g.N()+1, true)
	for _, e := range g.Edges() {
		vg.MustAddEdge(e.From, e.To, e.W)
	}
	for v, d := range seed {
		vg.MustAddEdge(g.N(), v, d)
	}
	want := graph.Dijkstra(vg, g.N())
	for v := 0; v < g.N(); v++ {
		if res.Dist[0][v] != want[v] {
			t.Fatalf("extension dist[%d] = %d, want %d", v, res.Dist[0][v], want[v])
		}
	}
}

func TestKSourceExact(t *testing.T) {
	g := graph.Grid(5, 6, graph.GenOpts{Seed: 4, MaxW: 5, ZeroFrac: 0.25})
	sources := []int{0, 14, 29}
	res, err := Run(g, Opts{Sources: sources, H: 7})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, s := range sources {
		want := graph.Dijkstra(g, s)
		for v := 0; v < g.N(); v++ {
			if res.Dist[i][v] != want[v] {
				t.Fatalf("dist[%d][%d] = %d, want %d", s, v, res.Dist[i][v], want[v])
			}
		}
	}
}

func TestZeroChain(t *testing.T) {
	g := graph.Path(8, graph.GenOpts{Seed: 1, MaxW: 1}).Transform(func(int64) int64 { return 0 })
	res, err := SingleSource(g, 0, 7)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v := 0; v < 8; v++ {
		if res.Dist[0][v] != 0 || res.Hops[0][v] != int64(v) {
			t.Fatalf("(d,l)[%d] = (%d,%d), want (0,%d)", v, res.Dist[0][v], res.Hops[0][v], v)
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 2})
	if _, err := Run(g, Opts{H: 2}); err == nil {
		t.Fatal("no sources accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{0}}); err == nil {
		t.Fatal("H=0 accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{5}, H: 1}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Extension(g, nil, 2); err == nil {
		t.Fatal("empty seed accepted")
	}
	if _, err := Extension(g, map[int]int64{0: -1}, 2); err == nil {
		t.Fatal("negative seed accepted")
	}
}
