// Package shortrange implements the paper's Algorithm 2 (Sec. II-C): the
// simplified short-range algorithm that replaces two subroutines of Huang
// et al. [13]. Each node keeps a single best estimate (d*, l*) per source
// (smallest distance, ties by hop count) and re-broadcasts it in round
// ⌈d*·γ + l*⌉; for the single-source algorithm as written γ = √h, and for
// the k-source generalization γ = √(hk/Δ).
//
// Unlike Algorithm 1 there is no hop cap and no multi-entry list: the
// algorithm eventually computes exact unrestricted SSSP distances, and the paper's
// h-hop claim (Lemma II.15) is about *when* estimates are good — by round
// ⌈Δ·γ⌉ + h every node's estimate should already be at most its h-hop
// distance, with per-source congestion at most √h. Both claims are
// measured: Result.Snap records every estimate at the claimed round, and
// the engine reports max link congestion.
//
// The short-range-extension variant of [13] is the Seed option: nodes that
// already know a distance from the source start from it.
package shortrange

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/key"
)

// estimate is the wire payload: (source, d*, l*).
type estimate struct {
	src  int
	d, l int64
}

// Words reports the message size in words.
func (estimate) Words() int { return 3 }

// Opts configures a run.
type Opts struct {
	// Sources are the source node IDs. Required.
	Sources []int
	// H is the hop parameter h (it sets γ and the snapshot round; it is
	// not a hop cap). Required.
	H int
	// Delta is the distance bound used by the k-source schedule
	// γ = √(hk/Δ) and the snapshot round ⌈Δγ⌉+h. For the single-source
	// Algorithm 2 as written pass Delta=1 (γ = √h). If 0, 1 is used for
	// k=1 and H·maxWeight otherwise.
	Delta int64
	// Seed, if non-nil, gives initial distances per source index
	// (graph.Inf = unknown): the short-range-extension variant. Seeded
	// nodes start with hop count 0.
	Seed [][]int64
	// Delays, if non-nil, gives a per-source start delay added to every
	// schedule time: Ghaffari's random-delay scheduling framework [10],
	// which the paper's Sec. II-C combines with Algorithm 2 to run all
	// source executions concurrently. Shared (public) randomness is the
	// standard assumption for the framework. Length must match Sources.
	Delays []int64
	// Strict selects the literal equality-only send rule.
	Strict bool
	// MaxRounds, Workers and Scheduler are passed to the engine.
	MaxRounds int
	Workers   int
	Scheduler congest.Scheduler
	// Obs, if set, receives engine events (see congest.Observer).
	Obs congest.Observer
	// Network, if set, replaces the engine's perfect delivery with a
	// pluggable substrate (see congest.Config.Network); internal/faults
	// provides the adversarial one.
	Network congest.Network
	// Checkpoint and Ctx are passed to the engine (see
	// congest.Config.Checkpoint and congest.Config.Ctx).
	Checkpoint *congest.CheckpointPolicy
	Ctx        context.Context
}

// Result reports distances and measured behaviour.
type Result struct {
	// Dist[i][v], Hops[i][v]: final estimate from Sources[i] at v (exact
	// SSSP distances at quiescence — or seeded-extension distances).
	Dist [][]int64
	Hops [][]int64
	// Parent[i][v]: predecessor of the final estimate (-1 none).
	Parent [][]int
	// Snap[i][v]: the estimate at the end of round SnapRound — the paper's
	// claim is Snap[i][v] ≤ h-hop distance (Lemma II.15).
	Snap      [][]int64
	SnapRound int64
	// Stats: engine report; Stats.MaxLinkCongestion is the paper's
	// congestion measure (claimed ≤ √h per source, so ≤ k·√h total).
	Stats congest.Stats
	// LateSends / Missed as in package core.
	LateSends int
	Missed    int
}

type node struct {
	id   int
	opts *Opts

	gamma  key.Gamma
	snapAt int64

	srcIdx   map[int]int
	dist     []int64
	hops     []int64
	parent   []int
	needSend []bool
	snap     []int64
	inW      map[int]int64
	cur      int
	late     int
	missed   int
}

func (nd *node) Init(ctx *congest.Context) {
	k := len(nd.opts.Sources)
	nd.srcIdx = make(map[int]int, k)
	nd.dist = make([]int64, k)
	nd.hops = make([]int64, k)
	nd.parent = make([]int, k)
	nd.needSend = make([]bool, k)
	nd.snap = make([]int64, k)
	for i, s := range nd.opts.Sources {
		nd.srcIdx[s] = i
		nd.dist[i] = graph.Inf
		nd.hops[i] = -1
		nd.parent[i] = -1
		nd.snap[i] = graph.Inf
		if nd.opts.Seed != nil {
			// Extension variant: the seeds fully define the initial state
			// (the source label is only an identifier on the wire).
			if nd.opts.Seed[i][nd.id] < graph.Inf {
				nd.dist[i] = nd.opts.Seed[i][nd.id]
				nd.hops[i] = 0
				nd.parent[i] = nd.id
				nd.needSend[i] = true
			}
		} else if s == nd.id {
			nd.dist[i] = 0
			nd.hops[i] = 0
			nd.parent[i] = nd.id
			nd.needSend[i] = true
		}
	}
	nd.inW = make(map[int]int64)
	for _, e := range ctx.InEdges() {
		if w, ok := nd.inW[e.From]; !ok || e.W < w {
			nd.inW[e.From] = e.W
		}
	}
}

func (nd *node) sched(i int) int64 {
	s := nd.gamma.CeilKappa(nd.dist[i], nd.hops[i])
	if nd.opts.Delays != nil {
		s += nd.opts.Delays[i]
	}
	return s
}

func (nd *node) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	nd.cur = r
	for _, m := range inbox {
		est := m.Payload.(estimate)
		w, ok := nd.inW[m.From]
		if !ok {
			continue
		}
		i, ok := nd.srcIdx[est.src]
		if !ok {
			ctx.Failf("estimate for unknown source %d", est.src)
			return
		}
		d, l := est.d+w, est.l+1
		if d < nd.dist[i] || (d == nd.dist[i] && l < nd.hops[i]) {
			nd.dist[i], nd.hops[i], nd.parent[i] = d, l, m.From
			nd.needSend[i] = true
		}
	}
	// Send the lowest-(d, l, src) due estimate, at most one per round.
	send := -1
	var sendSched int64
	for _, i := range nd.order() {
		if !nd.needSend[i] {
			continue
		}
		s := nd.sched(i)
		if s == int64(r) {
			if send < 0 {
				send, sendSched = i, s
			} else {
				nd.missed++
			}
		} else if s < int64(r) {
			if nd.opts.Strict {
				nd.missed++
			} else if send < 0 {
				send, sendSched = i, s
			}
		}
	}
	if send >= 0 {
		if sendSched < int64(r) {
			nd.late++
		}
		ctx.Broadcast(estimate{src: nd.opts.Sources[send], d: nd.dist[send], l: nd.hops[send]})
		nd.needSend[send] = false
	}
	if int64(r) == nd.snapAt {
		copy(nd.snap, nd.dist)
	}
}

// order returns source indices sorted by (d, l, src): overdue processing
// prefers the lexicographically smallest estimate.
func (nd *node) order() []int {
	idx := make([]int, len(nd.dist))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if nd.dist[ia] != nd.dist[ib] {
			return nd.dist[ia] < nd.dist[ib]
		}
		if nd.hops[ia] != nd.hops[ib] {
			return nd.hops[ia] < nd.hops[ib]
		}
		return nd.opts.Sources[ia] < nd.opts.Sources[ib]
	})
	return idx
}

// NextWake implements congest.Waker: the earliest pending-entry schedule
// (clamped to the next round by the engine when overdue, so strict-mode
// missed accounting is per-round, as in the dense engine), and the snapshot
// round, which must be stepped exactly so the T_snap copy happens.
func (nd *node) NextWake() int {
	next := congest.WakeOnReceive
	if int64(nd.cur) < nd.snapAt {
		next = int(nd.snapAt)
	}
	for i, ns := range nd.needSend {
		if !ns {
			continue
		}
		if s := nd.sched(i); next == congest.WakeOnReceive || s < int64(next) {
			next = int(s)
		}
	}
	return next
}

func (nd *node) Quiescent() bool {
	// The snapshot keeps the node formally busy until the snapshot round
	// so the engine does not stop early on fast instances.
	if int64(nd.cur) < nd.snapAt {
		return false
	}
	for i, ns := range nd.needSend {
		if !ns {
			continue
		}
		if !nd.opts.Strict {
			return false
		}
		if nd.sched(i) > int64(nd.cur) {
			return false
		}
	}
	return true
}

// Run executes the short-range algorithm.
func Run(g *graph.Graph, opts Opts) (*Result, error) {
	if len(opts.Sources) == 0 {
		return nil, fmt.Errorf("shortrange: no sources")
	}
	if opts.H <= 0 {
		return nil, fmt.Errorf("shortrange: H=%d must be positive", opts.H)
	}
	for _, s := range opts.Sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("shortrange: source %d out of range", s)
		}
	}
	if opts.Seed != nil && len(opts.Seed) != len(opts.Sources) {
		return nil, fmt.Errorf("shortrange: Seed rows %d != sources %d", len(opts.Seed), len(opts.Sources))
	}
	if opts.Delays != nil && len(opts.Delays) != len(opts.Sources) {
		return nil, fmt.Errorf("shortrange: Delays length %d != sources %d", len(opts.Delays), len(opts.Sources))
	}
	k := len(opts.Sources)
	if opts.Delta == 0 {
		if k == 1 {
			opts.Delta = 1 // γ = √h, Algorithm 2 as written
		} else {
			opts.Delta = int64(opts.H) * g.MaxWeight()
			if opts.Delta < 1 {
				opts.Delta = 1
			}
		}
	}
	gamma := key.New(k, opts.H, opts.Delta)
	// The claimed good-by round: ⌈Δγ⌉ + h (Lemma II.15's dilation), shifted
	// by the largest start delay under the random-delay framework.
	snapAt := gamma.CeilKappa(opts.Delta, int64(opts.H))
	for _, d := range opts.Delays {
		if snapAt < gamma.CeilKappa(opts.Delta, int64(opts.H))+d {
			snapAt = gamma.CeilKappa(opts.Delta, int64(opts.H)) + d
		}
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = int(32*snapAt) + 64*g.N() + 1024
	}
	nodes := make([]*node, g.N())
	stats, err := congest.Run(g, func(v int) congest.Node {
		nodes[v] = &node{id: v, opts: &opts, gamma: gamma, snapAt: snapAt}
		return nodes[v]
	}, congest.Config{MaxRounds: opts.MaxRounds, Workers: opts.Workers, Scheduler: opts.Scheduler, Observer: opts.Obs, Network: opts.Network, Checkpoint: opts.Checkpoint, Ctx: opts.Ctx})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Dist:      make([][]int64, k),
		Hops:      make([][]int64, k),
		Parent:    make([][]int, k),
		Snap:      make([][]int64, k),
		SnapRound: snapAt,
		Stats:     stats,
	}
	for i := 0; i < k; i++ {
		res.Dist[i] = make([]int64, g.N())
		res.Hops[i] = make([]int64, g.N())
		res.Parent[i] = make([]int, g.N())
		res.Snap[i] = make([]int64, g.N())
		for v, nd := range nodes {
			res.Dist[i][v] = nd.dist[i]
			res.Hops[i][v] = nd.hops[i]
			res.Parent[i][v] = nd.parent[i]
			res.Snap[i][v] = nd.snap[i]
		}
	}
	for _, nd := range nodes {
		res.LateSends += nd.late
		res.Missed += nd.missed
	}
	return res, nil
}

// SingleSource runs Algorithm 2 exactly as written for one source with
// γ = √h.
func SingleSource(g *graph.Graph, source, h int) (*Result, error) {
	return Run(g, Opts{Sources: []int{source}, H: h, Delta: 1})
}

// Concurrent runs every source's Algorithm 2 execution (γ = √h each)
// simultaneously under Ghaffari's random-delay scheduling [10], as the end
// of the paper's Sec. II-C prescribes for h-hop APSP: each source's
// schedule is shifted by a uniform delay from [0, spread). Deterministic
// given the seed (public randomness).
func Concurrent(g *graph.Graph, sources []int, h int, spread int64, seed int64) (*Result, error) {
	if spread < 1 {
		spread = 1
	}
	rng := rand.New(rand.NewSource(seed))
	delays := make([]int64, len(sources))
	for i := range delays {
		delays[i] = rng.Int63n(spread)
	}
	// γ = √h per execution: Delta = 1 mirrors SingleSource's slope for
	// every source, so the executions are honest Algorithm 2 instances.
	return Run(g, Opts{Sources: sources, H: h, Delta: 1, Delays: delays})
}

// Extension runs the short-range-extension: nodes in seed (node -> known
// distance) start from their known distances from the conceptual source.
func Extension(g *graph.Graph, seed map[int]int64, h int) (*Result, error) {
	s := make([]int64, g.N())
	for v := range s {
		s[v] = graph.Inf
	}
	first := -1
	for v, d := range seed {
		if v < 0 || v >= g.N() || d < 0 {
			return nil, fmt.Errorf("shortrange: bad seed (%d,%d)", v, d)
		}
		s[v] = d
		if first < 0 || v < first {
			first = v
		}
	}
	if first < 0 {
		return nil, fmt.Errorf("shortrange: empty seed")
	}
	// The "source" is notional; pick the smallest seeded node as the label.
	return Run(g, Opts{Sources: []int{first}, H: h, Delta: 1, Seed: [][]int64{s}})
}
