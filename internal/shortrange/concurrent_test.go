package shortrange

import (
	"testing"

	"repro/internal/graph"
)

func TestConcurrentAllSourcesExact(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(24, 80, graph.GenOpts{Seed: seed, MaxW: 5, ZeroFrac: 0.3, Directed: true})
		sources := make([]int, g.N())
		for v := range sources {
			sources[v] = v
		}
		res, err := Concurrent(g, sources, 6, int64(g.N()), seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, s := range sources {
			want := graph.Dijkstra(g, s)
			for v := 0; v < g.N(); v++ {
				if res.Dist[i][v] != want[v] {
					t.Fatalf("seed %d: dist[%d][%d] = %d, want %d", seed, s, v, res.Dist[i][v], want[v])
				}
			}
		}
	}
}

func TestConcurrentDeterministicPerSeed(t *testing.T) {
	g := graph.Random(20, 60, graph.GenOpts{Seed: 1, MaxW: 5, Directed: true})
	sources := []int{0, 5, 10, 15}
	a, err := Concurrent(g, sources, 5, 20, 7)
	if err != nil {
		t.Fatalf("Concurrent: %v", err)
	}
	b, err := Concurrent(g, sources, 5, 20, 7)
	if err != nil {
		t.Fatalf("Concurrent: %v", err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("same seed, different stats: %+v vs %+v", a.Stats, b.Stats)
	}
	c, err := Concurrent(g, sources, 5, 20, 8)
	if err != nil {
		t.Fatalf("Concurrent: %v", err)
	}
	if c.Stats == a.Stats {
		t.Log("different seeds happened to match stats (possible, not a failure)")
	}
}

func TestDelaysSpreadCongestion(t *testing.T) {
	// The random-delay framework's purpose: with all executions starting
	// at once (spread=1) per-link congestion piles up; with spread ~n it
	// should not be (much) worse and often better. We assert the delayed
	// run never exceeds the undelayed congestion by more than 1 (the
	// relation the framework's analysis predicts on average).
	g := graph.Random(30, 100, graph.GenOpts{Seed: 3, MaxW: 4, ZeroFrac: 0.2, Directed: true})
	sources := make([]int, g.N())
	for v := range sources {
		sources[v] = v
	}
	packed, err := Concurrent(g, sources, 6, 1, 1)
	if err != nil {
		t.Fatalf("packed: %v", err)
	}
	spread, err := Concurrent(g, sources, 6, int64(2*g.N()), 1)
	if err != nil {
		t.Fatalf("spread: %v", err)
	}
	t.Logf("packed: rounds %d congestion %d; spread: rounds %d congestion %d",
		packed.Stats.Rounds, packed.Stats.MaxLinkCongestion,
		spread.Stats.Rounds, spread.Stats.MaxLinkCongestion)
	if spread.Stats.MaxLinkCongestion > packed.Stats.MaxLinkCongestion+1 {
		t.Fatalf("random delays increased congestion: %d vs %d",
			spread.Stats.MaxLinkCongestion, packed.Stats.MaxLinkCongestion)
	}
}

func TestDelaysValidation(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 2})
	if _, err := Run(g, Opts{Sources: []int{0, 1}, H: 2, Delays: []int64{1}}); err == nil {
		t.Fatal("mis-sized Delays accepted")
	}
}
