// Checkpoint support: congest.Stateful for the Algorithm 2 node. The
// T_snap copy (snap) is recorded state, not derivable: a restore after
// the snapshot round must reproduce exactly what was frozen then.
package shortrange

import (
	"fmt"

	"repro/internal/congest"
)

func init() {
	congest.RegisterPayloadCodec("shortrange.estimate", estimate{},
		func(enc *congest.StateEncoder, p congest.Payload) {
			m := p.(estimate)
			enc.Int(m.src)
			enc.Int64(m.d)
			enc.Int64(m.l)
		},
		func(dec *congest.StateDecoder) (congest.Payload, error) {
			m := estimate{src: dec.Int(), d: dec.Int64(), l: dec.Int64()}
			return m, dec.Err()
		})
}

// EncodeState implements congest.Stateful.
func (nd *node) EncodeState(enc *congest.StateEncoder) {
	enc.Int(nd.cur)
	enc.Int(nd.late)
	enc.Int(nd.missed)
	enc.Int64s(nd.dist)
	enc.Int64s(nd.hops)
	enc.Ints(nd.parent)
	enc.Bools(nd.needSend)
	enc.Int64s(nd.snap)
}

// DecodeState implements congest.Stateful.
func (nd *node) DecodeState(dec *congest.StateDecoder) error {
	nd.cur = dec.Int()
	nd.late = dec.Int()
	nd.missed = dec.Int()
	nd.dist = dec.Int64s()
	nd.hops = dec.Int64s()
	nd.parent = dec.Ints()
	nd.needSend = dec.Bools()
	nd.snap = dec.Int64s()
	if err := dec.Err(); err != nil {
		return err
	}
	k := len(nd.opts.Sources)
	if len(nd.dist) != k || len(nd.hops) != k || len(nd.parent) != k || len(nd.needSend) != k || len(nd.snap) != k {
		return fmt.Errorf("shortrange: snapshot arity mismatch (want %d sources)", k)
	}
	return nil
}
