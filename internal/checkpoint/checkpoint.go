// Package checkpoint persists engine snapshots (congest.Snapshot) to disk
// and supervises crash-restart loops.
//
// A checkpoint file is a versioned container: magic, a JSON metadata
// header identifying the computation (algorithm, graph fingerprint,
// sources, fault plan, scheduler, disarmed crash events), and the binary
// snapshot. Load validates the container; matching the metadata against
// the computation being resumed is the caller's job (ValidateAgainst
// covers the common checks). Save writes atomically (temp file + rename)
// so a crash mid-write never corrupts the previous checkpoint.
//
// Supervise implements the crash-restart loop: run the computation, and
// when it dies with a recoverable crash (congest.CrashError with
// Restart > 0), re-arm the policy with the latest snapshot and run it
// again — the re-executed prefix is deterministic, the restored suffix is
// bit-exact, so the supervised result equals the fault-free one.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/congest"
	"repro/internal/graph"
)

// Magic identifies a checkpoint file.
const Magic = "APSPCKPT"

// FileVersion guards the container layout (the snapshot payload is
// versioned separately by congest.SnapshotVersion).
const FileVersion = 1

// Meta identifies the computation a snapshot belongs to. All fields are
// informative except the ones ValidateAgainst checks.
type Meta struct {
	// Alg names the algorithm ("core", "hssp", ...; cmd/apsprun's -alg).
	Alg string `json:"alg,omitempty"`
	// N, M and Graph (an FNV-1a fingerprint of the encoded graph) pin the
	// input instance.
	N     int    `json:"n"`
	M     int    `json:"m"`
	Graph uint64 `json:"graph"`
	// Sources and H pin the query.
	Sources []int `json:"sources,omitempty"`
	H       int   `json:"h,omitempty"`
	// Plan is the fault plan in canonical string form ("" = none).
	Plan string `json:"plan,omitempty"`
	// Sched is the scheduler the snapshot was taken under.
	Sched congest.Scheduler `json:"sched"`
	// Workers is informative only (worker count never affects results).
	Workers int `json:"workers,omitempty"`
	// Disarmed lists the script indices of crash events that already
	// fired (faults.Network.DisarmedCrashes): a resuming process must
	// disarm them again or the same crash re-fires on the resumed run.
	Disarmed []int `json:"disarmed,omitempty"`
}

// Fingerprint hashes the graph's canonical encoding (FNV-1a 64).
func Fingerprint(g *graph.Graph) uint64 {
	h := fnv.New64a()
	if err := graph.Encode(h, g); err != nil {
		return 0 // encode to a hash cannot fail; belt and braces
	}
	return h.Sum64()
}

// ValidateAgainst checks the metadata against the computation about to
// resume: same graph, same sources, same hop parameter, same fault plan,
// same scheduler.
func (m *Meta) ValidateAgainst(g *graph.Graph, sources []int, h int, plan string, sched congest.Scheduler) error {
	if m.N != g.N() || m.M != g.M() || m.Graph != Fingerprint(g) {
		return fmt.Errorf("checkpoint: graph mismatch (snapshot n=%d m=%d fp=%x)", m.N, m.M, m.Graph)
	}
	if len(m.Sources) != len(sources) {
		return fmt.Errorf("checkpoint: source count mismatch (snapshot %d, run %d)", len(m.Sources), len(sources))
	}
	for i, s := range m.Sources {
		if s != sources[i] {
			return fmt.Errorf("checkpoint: source %d mismatch (snapshot %d, run %d)", i, s, sources[i])
		}
	}
	if m.H != h {
		return fmt.Errorf("checkpoint: hop parameter mismatch (snapshot %d, run %d)", m.H, h)
	}
	if m.Plan != plan {
		return fmt.Errorf("checkpoint: fault plan mismatch (snapshot %q, run %q)", m.Plan, plan)
	}
	if m.Sched != sched {
		return fmt.Errorf("checkpoint: scheduler mismatch (snapshot %d, run %d)", m.Sched, sched)
	}
	return nil
}

// Save writes the checkpoint atomically: to a temp file in path's
// directory, synced, then renamed over path.
func Save(path string, meta *Meta, snap *congest.Snapshot) error {
	_, err := save(path, meta, snap)
	return err
}

// save is Save, reporting the container size (header + meta + body) so the
// Keeper's OnSave hook can account bytes without re-marshalling.
func save(path string, meta *Meta, snap *congest.Snapshot) (int64, error) {
	body, err := snap.MarshalBinary()
	if err != nil {
		return 0, fmt.Errorf("checkpoint: marshal snapshot: %w", err)
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: marshal meta: %w", err)
	}
	size := int64(len(Magic) + 8 + len(mb) + 8 + len(body))
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	var hdr [8]byte
	if _, err := f.WriteString(Magic); err != nil {
		return 0, fail(err)
	}
	binary.LittleEndian.PutUint32(hdr[:4], FileVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(mb)))
	if _, err := f.Write(hdr[:]); err != nil {
		return 0, fail(err)
	}
	if _, err := f.Write(mb); err != nil {
		return 0, fail(err)
	}
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(body)))
	if _, err := f.Write(hdr[:]); err != nil {
		return 0, fail(err)
	}
	if _, err := f.Write(body); err != nil {
		return 0, fail(err)
	}
	if err := f.Sync(); err != nil {
		return 0, fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: %w", err)
	}
	// fsync the parent directory too: the rename above is only durable
	// once the directory entry is on disk — without this, a power cut can
	// forget the whole file even though its contents were synced.
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	return size, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync dir %s: %w", dir, err)
	}
	return nil
}

// Load reads and validates a checkpoint file.
func Load(path string) (*Meta, *congest.Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	r := raw
	take := func(n int) ([]byte, error) {
		if len(r) < n {
			return nil, fmt.Errorf("checkpoint: %s: truncated file", path)
		}
		b := r[:n]
		r = r[n:]
		return b, nil
	}
	magic, err := take(len(Magic))
	if err != nil {
		return nil, nil, err
	}
	if string(magic) != Magic {
		return nil, nil, fmt.Errorf("checkpoint: %s is not a checkpoint file", path)
	}
	hdr, err := take(8)
	if err != nil {
		return nil, nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[:4]); v != FileVersion {
		return nil, nil, fmt.Errorf("checkpoint: %s: unsupported file version %d (want %d)", path, v, FileVersion)
	}
	mb, err := take(int(binary.LittleEndian.Uint32(hdr[4:])))
	if err != nil {
		return nil, nil, err
	}
	meta := &Meta{}
	if err := json.Unmarshal(mb, meta); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %s: bad metadata: %w", path, err)
	}
	lb, err := take(8)
	if err != nil {
		return nil, nil, err
	}
	body, err := take(int(binary.LittleEndian.Uint64(lb)))
	if err != nil {
		return nil, nil, err
	}
	if len(r) != 0 {
		return nil, nil, fmt.Errorf("checkpoint: %s: %d trailing bytes", path, len(r))
	}
	snap := &congest.Snapshot{}
	if err := snap.UnmarshalBinary(body); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	return meta, snap, nil
}

// Keeper is a checkpoint sink that retains the latest snapshot in memory
// and optionally persists each one to Path. Its Sink method is what a
// CheckpointPolicy wants.
type Keeper struct {
	// Path, if non-empty, is where every snapshot is saved (atomically,
	// each overwriting the last).
	Path string
	// Meta is stored alongside when Path is set. The MetaFn hook, if set,
	// refreshes it before each save (e.g. to capture newly disarmed
	// crash events).
	Meta   *Meta
	MetaFn func(*Meta)
	// OnSave, if set, receives every persisted snapshot's wall-clock save
	// duration and container byte size (obs.Recorder.CheckpointSave has
	// the matching shape, which is how checkpoint costs reach the trace
	// stream and the metrics dump).
	OnSave func(d time.Duration, bytes int64)

	latest *congest.Snapshot
	saves  int
}

// Sink implements congest.CheckpointPolicy.Sink.
func (k *Keeper) Sink(s *congest.Snapshot) error {
	k.latest = s
	k.saves++
	if k.Path == "" {
		return nil
	}
	meta := k.Meta
	if meta == nil {
		meta = &Meta{N: s.N, Sched: s.Sched}
	}
	if k.MetaFn != nil {
		k.MetaFn(meta)
	}
	start := time.Now()
	n, err := save(k.Path, meta, s)
	if err == nil && k.OnSave != nil {
		k.OnSave(time.Since(start), n)
	}
	return err
}

// Latest returns the most recent snapshot (nil if none yet) and how many
// have been delivered.
func (k *Keeper) Latest() (*congest.Snapshot, int) { return k.latest, k.saves }

// Supervise runs fn under the policy, restarting after recoverable
// crashes. fn must be a closure that re-executes the whole computation
// under pol (sharing the faults.Network across attempts, or disarming
// fired crash events via Meta.Disarmed, so a handled crash does not
// re-fire). attempts bounds the number of restarts; an unrecoverable
// crash (Restart == 0), a non-crash error, or exhaustion of the budget is
// returned as-is. Returns the number of restarts performed.
func Supervise(pol *congest.CheckpointPolicy, keeper *Keeper, attempts int, fn func() error) (int, error) {
	restarts := 0
	for {
		err := fn()
		var ce *congest.CrashError
		if err == nil || !errors.As(err, &ce) {
			return restarts, err
		}
		if ce.Restart <= 0 {
			return restarts, fmt.Errorf("checkpoint: unrecoverable: %w", err)
		}
		if restarts >= attempts {
			return restarts, fmt.Errorf("checkpoint: restart budget (%d) exhausted: %w", attempts, err)
		}
		restarts++
		latest, _ := keeper.Latest()
		pol.Rearm(latest) // nil latest = clean re-execution from round 1
	}
}

// ReadMetaOnly is a cheap header probe: it decodes the metadata without
// unmarshalling the (possibly large) snapshot body.
func ReadMetaOnly(path string) (*Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, len(Magic)+8)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: truncated file", path)
	}
	if string(hdr[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("checkpoint: %s is not a checkpoint file", path)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(Magic):]); v != FileVersion {
		return nil, fmt.Errorf("checkpoint: %s: unsupported file version %d (want %d)", path, v, FileVersion)
	}
	mb := make([]byte, binary.LittleEndian.Uint32(hdr[len(Magic)+4:]))
	if _, err := io.ReadFull(f, mb); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: truncated metadata", path)
	}
	meta := &Meta{}
	if err := json.Unmarshal(mb, meta); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: bad metadata: %w", path, err)
	}
	return meta, nil
}
