package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpfault"
)

// newEchoServer returns a test server answering {"v":N} where N counts
// the requests that actually reached the handler.
func newEchoServer(t *testing.T) (*httptest.Server, *atomic.Uint64) {
	t.Helper()
	var hits atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"v":` + itoa(n) + `}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func fastOpts(ft *httpfault.Transport) Options {
	return Options{
		Transport:      ft,
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    4,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		Seed:           1,
	}
}

func TestRetryOn500ThenSuccess(t *testing.T) {
	srv, hits := newEchoServer(t)
	ft := &httpfault.Transport{Script: []httpfault.Event{
		{Req: 0, Kind: httpfault.Err500Event},
		{Req: 1, Kind: httpfault.Err500Event},
	}}
	c := New(fastOpts(ft))
	var out struct {
		V int `json:"v"`
	}
	resp, err := c.GetJSON(context.Background(), srv.URL+"/dist?s=0&t=1", &out)
	if err != nil {
		t.Fatalf("GetJSON: %v", err)
	}
	if resp.Status != http.StatusOK || out.V != 1 {
		t.Fatalf("got status %d v=%d, want 200 v=1", resp.Status, out.V)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (500s are synthesized)", got)
	}
	st := c.Snapshot()
	if st.Requests != 1 || st.Attempts != 3 || st.Retries != 2 || st.Successes != 1 || st.Failures != 0 {
		t.Fatalf("stats %+v, want Requests=1 Attempts=3 Retries=2 Successes=1", st)
	}
}

func TestTruncatedBodyRetried(t *testing.T) {
	srv, _ := newEchoServer(t)
	ft := &httpfault.Transport{Script: []httpfault.Event{
		{Req: 0, Kind: httpfault.TruncateEvent},
	}}
	c := New(fastOpts(ft))
	var out struct {
		V int `json:"v"`
	}
	if _, err := c.GetJSON(context.Background(), srv.URL+"/dist", &out); err != nil {
		t.Fatalf("GetJSON after truncation: %v", err)
	}
	if out.V != 2 {
		t.Fatalf("v=%d, want 2 (first answer truncated, second served)", out.V)
	}
	st := c.Snapshot()
	if st.Attempts != 2 || st.Retries != 1 {
		t.Fatalf("stats %+v, want Attempts=2 Retries=1", st)
	}
}

func TestResetRetried(t *testing.T) {
	srv, _ := newEchoServer(t)
	ft := &httpfault.Transport{Script: []httpfault.Event{
		{Req: 0, Kind: httpfault.ResetEvent, Arg: 1}, // reset after: answer lost
	}}
	c := New(fastOpts(ft))
	if _, err := c.Do(context.Background(), http.MethodGet, srv.URL+"/dist", "", nil); err != nil {
		t.Fatalf("Do after reset: %v", err)
	}
	if st := c.Snapshot(); st.Attempts != 2 {
		t.Fatalf("stats %+v, want Attempts=2", st)
	}
}

func TestRetryAfterHonored(t *testing.T) {
	srv, _ := newEchoServer(t)
	// The injected 503 carries Retry-After: 1 (second); the cap shrinks the
	// honored wait into test scale while keeping it well above the backoff.
	ft := &httpfault.Transport{Script: []httpfault.Event{
		{Req: 0, Kind: httpfault.Err503Event},
	}}
	opts := fastOpts(ft)
	opts.CapRetryAfter = 60 * time.Millisecond
	c := New(opts)
	start := time.Now()
	if _, err := c.Do(context.Background(), http.MethodGet, srv.URL+"/dist", "", nil); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("retry fired after %v, want >= capped Retry-After (60ms)", elapsed)
	}
	if st := c.Snapshot(); st.RetryAfter != 1 {
		t.Fatalf("stats %+v, want RetryAfter=1", st)
	}
}

func TestAttemptsExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	opts := fastOpts(&httpfault.Transport{Script: []httpfault.Event{}})
	opts.MaxAttempts = 3
	opts.BreakerTrip = -1
	c := New(opts)
	_, err := c.Do(context.Background(), http.MethodGet, srv.URL+"/dist", "", nil)
	if err == nil {
		t.Fatal("Do succeeded against an all-500 server")
	}
	st := c.Snapshot()
	if st.Attempts != 3 || st.Failures != 1 || st.Successes != 0 {
		t.Fatalf("stats %+v, want Attempts=3 Failures=1", st)
	}
}

func TestNonRetryableStatusIsFinal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such pair", http.StatusNotFound)
	}))
	defer srv.Close()
	c := New(fastOpts(&httpfault.Transport{Script: []httpfault.Event{}}))
	resp, err := c.Do(context.Background(), http.MethodGet, srv.URL+"/dist", "", nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != http.StatusNotFound {
		t.Fatalf("status %d, want 404 passed through", resp.Status)
	}
	if st := c.Snapshot(); st.Attempts != 1 || st.Retries != 0 {
		t.Fatalf("stats %+v, want a single attempt (4xx is final)", st)
	}
}

func TestBreakerOpensFastFailsAndRecovers(t *testing.T) {
	var broken atomic.Bool
	broken.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`)) //nolint:errcheck
	}))
	defer srv.Close()
	opts := fastOpts(&httpfault.Transport{Script: []httpfault.Event{}})
	opts.MaxAttempts = 2
	opts.BreakerTrip = 3
	opts.BreakerCooloff = 20 * time.Millisecond
	c := New(opts)
	url := srv.URL + "/dist"

	// First Do: two failed attempts (fails=2, still closed).
	if _, err := c.Do(context.Background(), http.MethodGet, url, "", nil); err == nil {
		t.Fatal("Do succeeded against broken server")
	}
	// Second Do: third failure opens the circuit; the retry inside the same
	// Do then fails fast.
	_, err := c.Do(context.Background(), http.MethodGet, url, "", nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen on the in-flight retry", err)
	}
	st := c.Snapshot()
	if st.BreakerOpens != 1 || st.BreakerFast != 1 {
		t.Fatalf("stats %+v, want BreakerOpens=1 BreakerFast=1", st)
	}
	// Within the cooloff every Do fails fast without touching the wire.
	attemptsBefore := st.Attempts
	if _, err := c.Do(context.Background(), http.MethodGet, url, "", nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want fast ErrBreakerOpen while open", err)
	}
	if st = c.Snapshot(); st.Attempts != attemptsBefore {
		t.Fatalf("open breaker still attempted: %d -> %d", attemptsBefore, st.Attempts)
	}
	// After the cooloff the half-open probe discovers the recovery.
	broken.Store(false)
	time.Sleep(30 * time.Millisecond)
	if _, err := c.Do(context.Background(), http.MethodGet, url, "", nil); err != nil {
		t.Fatalf("probe Do after recovery: %v", err)
	}
	// And the circuit is closed again: plain successes, no probes needed.
	if _, err := c.Do(context.Background(), http.MethodGet, url, "", nil); err != nil {
		t.Fatalf("Do after close: %v", err)
	}
}

func TestHedgeWinsOverDelayedPrimary(t *testing.T) {
	srv, _ := newEchoServer(t)
	ft := &httpfault.Transport{Script: []httpfault.Event{
		{Req: 0, Kind: httpfault.DelayEvent, Arg: int64(500 * time.Millisecond)},
	}}
	opts := fastOpts(ft)
	opts.MaxHedges = 1
	opts.HedgeDelay = 5 * time.Millisecond
	c := New(opts)
	start := time.Now()
	resp, err := c.Do(context.Background(), http.MethodGet, srv.URL+"/dist", "", nil)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if resp.Status != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.Status)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge did not rescue the delayed primary: took %v", elapsed)
	}
	st := c.Snapshot()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats %+v, want Hedges=1 HedgeWins=1", st)
	}
}

func TestBlackholeBoundedByAttemptTimeout(t *testing.T) {
	srv, _ := newEchoServer(t)
	ft := &httpfault.Transport{Script: []httpfault.Event{
		{Req: 0, Kind: httpfault.BlackholeEvent},
	}}
	opts := fastOpts(ft)
	opts.AttemptTimeout = 30 * time.Millisecond
	opts.MaxAttempts = 2
	c := New(opts)
	start := time.Now()
	if _, err := c.Do(context.Background(), http.MethodGet, srv.URL+"/dist", "", nil); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("blackholed attempt not bounded: took %v", elapsed)
	}
	if st := c.Snapshot(); st.Attempts != 2 {
		t.Fatalf("stats %+v, want Attempts=2 (blackhole timed out, retry served)", st)
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	srv, _ := newEchoServer(t)
	ft := &httpfault.Transport{Plan: httpfault.Plan{Seed: 1, Blackhole: 1}}
	opts := fastOpts(ft)
	opts.AttemptTimeout = 10 * time.Second
	c := New(opts)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Do(ctx, http.MethodGet, srv.URL+"/dist", "", nil); err == nil {
		t.Fatal("Do succeeded through a total blackhole")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled Do returned after %v", elapsed)
	}
}

func TestJitterDeterminism(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		c := New(Options{Seed: seed, BaseBackoff: time.Millisecond, MaxBackoff: 64 * time.Millisecond})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = c.backoff(i + 1)
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at %d: %v vs %v", i, a[i], b[i])
		}
		ceil := time.Millisecond << uint(i)
		if ceil > 64*time.Millisecond {
			ceil = 64 * time.Millisecond
		}
		if a[i] <= 0 || a[i] > ceil {
			t.Fatalf("backoff(%d) = %v outside (0, %v]", i+1, a[i], ceil)
		}
	}
	if c := mk(43); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Fatal("different seeds produced identical jitter prefix")
	}
}

func TestLatWindowQuantile(t *testing.T) {
	w := newLatWindow(8)
	if q := w.quantile(0.99); q != 0 {
		t.Fatalf("empty window quantile = %v, want 0", q)
	}
	for i := 1; i <= 10; i++ { // wraps: window holds 3..10
		w.observe(time.Duration(i) * time.Millisecond)
	}
	if q := w.quantile(0.5); q < 3*time.Millisecond || q > 10*time.Millisecond {
		t.Fatalf("median %v outside window range", q)
	}
	if q := w.quantile(0.99); q != 10*time.Millisecond {
		t.Fatalf("p99 = %v, want 10ms (max of window)", q)
	}
}
