// Package client is the resilient HTTP client for the apspd serving
// layer: deadlines, retries with exponential backoff and full jitter, a
// per-endpoint circuit breaker, and hedged requests after a p99-based
// delay. It is the reliability layer that restores request semantics over
// a faulty substrate (internal/httpfault) — the serving-layer analogue of
// the engine's α-synchronizer shim — and the primitive the oracle-cluster
// router (ROADMAP item 1) fans out and hedges with.
//
// The contract mirrors the engine shim's: given an idempotent GET/POST
// query endpoint, Do either returns a response the server actually
// produced, or an error — never a fabricated or torn answer. Response
// bodies are read fully inside the attempt, so a mid-body connection cut
// (a truncation) is a retryable attempt failure, not a JSON decode
// surprise at the caller.
//
// Randomized decisions (backoff jitter) are drawn from a seeded splitmix
// counter, so a single-goroutine request sequence is fully deterministic
// — the property the E-CHAOS experiment's fixed-seed assertions stand on.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/key"
)

// Defaults (applied by New when the Options field is zero).
const (
	DefaultAttemptTimeout = 1 * time.Second
	DefaultMaxAttempts    = 4
	DefaultBaseBackoff    = 5 * time.Millisecond
	DefaultMaxBackoff     = 250 * time.Millisecond
	DefaultCapRetryAfter  = 1 * time.Second
	DefaultBreakerTrip    = 8
	DefaultBreakerCooloff = 100 * time.Millisecond
	DefaultHedgeQuantile  = 0.99
	DefaultMinHedgeDelay  = 1 * time.Millisecond
)

// Options configures a Client.
type Options struct {
	// Transport performs the exchanges (nil = http.DefaultTransport).
	// Wrap an httpfault.Transport here to test against chaos.
	Transport http.RoundTripper
	// AttemptTimeout bounds each individual attempt; the caller's context
	// bounds the whole Do.
	AttemptTimeout time.Duration
	// MaxAttempts is the total number of attempts per Do (first + retries).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the exponential backoff: attempt i
	// sleeps a full-jitter draw from (0, min(MaxBackoff, BaseBackoff·2^i)].
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// CapRetryAfter bounds how long a server-sent Retry-After is honored
	// (a shedding server asking for an hour must not pin the caller).
	CapRetryAfter time.Duration
	// Seed keys the jitter PRF; a fixed seed makes a serial request
	// sequence's backoff schedule reproducible.
	Seed int64
	// BreakerTrip is the consecutive-failure count that opens an
	// endpoint's circuit breaker (<= -1 disables the breaker; 0 means the
	// default). While open, Do fails fast with ErrBreakerOpen; after
	// BreakerCooloff one probe is let through (half-open) and its outcome
	// closes or re-opens the circuit.
	BreakerTrip    int
	BreakerCooloff time.Duration
	// HedgeDelay, when positive, launches a second (hedged) attempt if
	// the first has not answered within the delay; 0 derives the delay
	// from the observed attempt-latency quantile (HedgeQuantile, default
	// p99, floored at MinHedgeDelay). Hedging is off until Disable is
	// unset... set MaxHedges to enable.
	HedgeDelay    time.Duration
	HedgeQuantile float64
	MinHedgeDelay time.Duration
	// MaxHedges is the number of extra attempts a hedge may add per
	// attempt round (0 disables hedging; 1 is the standard tail-latency
	// hedge).
	MaxHedges int
}

// ErrBreakerOpen is returned (wrapped) when an endpoint's circuit
// breaker is open and the cooloff has not expired.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// Response is a fully-read HTTP answer: by the time a caller sees one,
// the body has been drained and the connection returned to the pool, so a
// truncated body can never reach a decoder.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// Stats counts the client's reliability work (atomic; read via Snapshot).
type Stats struct {
	Requests     uint64 // Do calls
	Attempts     uint64 // individual HTTP attempts (incl. hedges)
	Retries      uint64 // backoff-then-retry transitions
	Hedges       uint64 // hedged attempts launched
	HedgeWins    uint64 // hedges that answered first
	RetryAfter   uint64 // waits extended by a server Retry-After
	BreakerFast  uint64 // Do calls failed fast on an open breaker
	BreakerOpens uint64 // closed->open transitions
	Successes    uint64 // Do calls that returned a response
	Failures     uint64 // Do calls that returned an error
}

type statCell struct {
	requests, attempts, retries, hedges, hedgeWins atomic.Uint64
	retryAfter, breakerFast, breakerOpens          atomic.Uint64
	successes, failures                            atomic.Uint64
}

func (c *statCell) snapshot() Stats {
	return Stats{
		Requests: c.requests.Load(), Attempts: c.attempts.Load(),
		Retries: c.retries.Load(), Hedges: c.hedges.Load(), HedgeWins: c.hedgeWins.Load(),
		RetryAfter: c.retryAfter.Load(), BreakerFast: c.breakerFast.Load(),
		BreakerOpens: c.breakerOpens.Load(),
		Successes:    c.successes.Load(), Failures: c.failures.Load(),
	}
}

// Client is the resilient HTTP client. Safe for concurrent use.
type Client struct {
	opts     Options
	breakers *breakerSet
	lat      *latWindow
	cell     statCell
	jitterN  atomic.Uint64
}

// New applies defaults and builds a Client.
func New(opts Options) *Client {
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = DefaultAttemptTimeout
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = DefaultMaxAttempts
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = DefaultBaseBackoff
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = DefaultMaxBackoff
	}
	if opts.CapRetryAfter <= 0 {
		opts.CapRetryAfter = DefaultCapRetryAfter
	}
	if opts.BreakerTrip == 0 {
		opts.BreakerTrip = DefaultBreakerTrip
	}
	if opts.BreakerCooloff <= 0 {
		opts.BreakerCooloff = DefaultBreakerCooloff
	}
	if opts.HedgeQuantile <= 0 || opts.HedgeQuantile >= 1 {
		opts.HedgeQuantile = DefaultHedgeQuantile
	}
	if opts.MinHedgeDelay <= 0 {
		opts.MinHedgeDelay = DefaultMinHedgeDelay
	}
	return &Client{
		opts:     opts,
		breakers: newBreakerSet(opts.BreakerTrip, opts.BreakerCooloff),
		lat:      newLatWindow(256),
	}
}

// Snapshot returns cumulative reliability counters.
func (c *Client) Snapshot() Stats { return c.cell.snapshot() }

// GetJSON fetches url and decodes a 200 answer into out (out may be nil).
// Non-2xx final statuses are returned as the Response with a nil error —
// the caller owns status policy; transport-level failure owns the error.
func (c *Client) GetJSON(ctx context.Context, url string, out any) (*Response, error) {
	return c.do(ctx, http.MethodGet, url, "", nil, out)
}

// PostJSON posts body to url and decodes a 200 answer into out.
func (c *Client) PostJSON(ctx context.Context, url string, body []byte, out any) (*Response, error) {
	return c.do(ctx, http.MethodPost, url, "application/json", body, out)
}

// Do issues one resilient exchange without decoding.
func (c *Client) Do(ctx context.Context, method, url, contentType string, body []byte) (*Response, error) {
	return c.do(ctx, method, url, contentType, body, nil)
}

func (c *Client) do(ctx context.Context, method, url, contentType string, body []byte, out any) (*Response, error) {
	c.cell.requests.Add(1)
	key := endpointKey(url)
	var lastErr error
	var lastResp *Response
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			break
		}
		if attempt > 0 {
			c.cell.retries.Add(1)
			if err := c.sleepBackoff(ctx, attempt, lastResp); err != nil {
				break
			}
		}
		switch c.breakers.allow(key) {
		case admitOpen:
			c.cell.breakerFast.Add(1)
			c.cell.failures.Add(1)
			return nil, fmt.Errorf("client: %s %s: %w", method, key, ErrBreakerOpen)
		case admitProbe, admitClosed:
		}
		resp, err := c.hedgedAttempt(ctx, method, url, contentType, body)
		if err == nil && !retryableStatus(resp.Status) {
			c.breakers.report(key, resp.Status < 500, &c.cell)
			c.cell.successes.Add(1)
			if out != nil && resp.Status == http.StatusOK {
				if derr := decodeJSON(resp.Body, out); derr != nil {
					return resp, derr
				}
			}
			return resp, nil
		}
		c.breakers.report(key, false, &c.cell)
		lastErr, lastResp = err, resp
	}
	c.cell.failures.Add(1)
	if lastErr == nil {
		if lastResp != nil {
			return nil, fmt.Errorf("client: %s %s: attempts exhausted on HTTP %d", method, key, lastResp.Status)
		}
		lastErr = ctx.Err()
	}
	return nil, fmt.Errorf("client: %s %s: %w", method, key, lastErr)
}

// retryableStatus: 5xx and 429 are the transient server conditions the
// serving layer emits under shed/degradation; everything else is final.
func retryableStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// sleepBackoff waits the full-jitter exponential backoff before retry
// `attempt`, stretched to a capped server Retry-After when the previous
// response carried one.
func (c *Client) sleepBackoff(ctx context.Context, attempt int, prev *Response) error {
	d := c.backoff(attempt)
	if ra := retryAfterOf(prev); ra > 0 {
		if ra > c.opts.CapRetryAfter {
			ra = c.opts.CapRetryAfter
		}
		if ra > d {
			d = ra
			c.cell.retryAfter.Add(1)
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff draws the full-jitter sleep for retry `attempt` (1-based):
// uniform in (0, min(MaxBackoff, Base·2^(attempt-1))].
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.opts.BaseBackoff << uint(attempt-1)
	if ceil > c.opts.MaxBackoff || ceil <= 0 {
		ceil = c.opts.MaxBackoff
	}
	return time.Duration(1 + c.rand()%uint64(ceil))
}

// rand is the seeded splitmix64 jitter stream (the shared internal/key
// counter-mode discipline; draw n is bit-identical to the pre-dedup
// inline mixer, so fixed-seed backoff schedules replay unchanged).
func (c *Client) rand() uint64 {
	return key.Stream(c.opts.Seed, c.jitterN.Add(1))
}

// retryAfterOf parses a delta-seconds Retry-After from the previous
// response (HTTP-dates are ignored: the serving layer sends seconds).
func retryAfterOf(resp *Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// hedgedAttempt races the primary attempt against up to MaxHedges hedges
// launched after the hedge delay. The first outcome that is a usable
// response wins; losers are canceled. With hedging disabled it is one
// plain attempt.
func (c *Client) hedgedAttempt(ctx context.Context, method, url, contentType string, body []byte) (*Response, error) {
	if c.opts.MaxHedges <= 0 {
		return c.attempt(ctx, method, url, contentType, body)
	}
	type outcome struct {
		resp *Response
		err  error
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, 1+c.opts.MaxHedges)
	launch := func() {
		go func() {
			r, err := c.attempt(actx, method, url, contentType, body)
			ch <- outcome{r, err}
		}()
	}
	launch()
	launched, pending := 1, 1
	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()
	var firstErr error
	var firstResp *Response
	for {
		select {
		case o := <-ch:
			pending--
			ok := o.err == nil && !retryableStatus(o.resp.Status)
			if ok {
				if launched > 1 {
					// Did a hedge produce this? The primary reports first on
					// the channel only if it finished first; any win after a
					// hedge launch counts the race as hedged either way —
					// what matters for accounting is that the hedge fired.
					c.cell.hedgeWins.Add(1)
				}
				return o.resp, nil
			}
			if firstErr == nil && firstResp == nil {
				firstResp, firstErr = o.resp, o.err
			}
			if pending == 0 {
				return firstResp, firstErr
			}
		case <-hedge.C:
			if launched <= c.opts.MaxHedges {
				c.cell.hedges.Add(1)
				launch()
				launched++
				pending++
				hedge.Reset(c.hedgeDelay())
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// hedgeDelay resolves the hedge trigger: the explicit option, or the
// observed attempt-latency quantile floored at MinHedgeDelay.
func (c *Client) hedgeDelay() time.Duration {
	if c.opts.HedgeDelay > 0 {
		return c.opts.HedgeDelay
	}
	if q := c.lat.quantile(c.opts.HedgeQuantile); q > c.opts.MinHedgeDelay {
		return q
	}
	return c.opts.MinHedgeDelay
}

// attempt is one complete HTTP exchange: build the request (fresh body
// reader — attempts never share consumed bodies), bound it by the
// attempt timeout, read the body to the end. Any failure along the way —
// transport error, truncated body — is an attempt error.
func (c *Client) attempt(ctx context.Context, method, url, contentType string, body []byte) (*Response, error) {
	c.cell.attempts.Add(1)
	actx, cancel := context.WithTimeout(ctx, c.opts.AttemptTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	transport := c.opts.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	start := time.Now()
	resp, err := transport.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading body: %w", err)
	}
	c.lat.observe(time.Since(start))
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: data}, nil
}

func decodeJSON(data []byte, out any) error {
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: bad JSON answer %.120q: %w", data, err)
	}
	return nil
}

// endpointKey is the circuit-breaker granularity: scheme://host/path
// (query parameters vary per request and must share a breaker).
func endpointKey(url string) string {
	if i := strings.IndexByte(url, '?'); i >= 0 {
		return url[:i]
	}
	return url
}
