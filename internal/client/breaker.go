package client

import (
	"sync"
	"time"
)

// admit is the breaker's admission verdict.
type admit int

const (
	admitClosed admit = iota // circuit closed: proceed normally
	admitProbe               // half-open: this request is the probe
	admitOpen                // open: fail fast
)

// breakerState is one endpoint's circuit.
type breakerState struct {
	fails   int       // consecutive failures while closed
	open    bool      // circuit open (fail fast until `until`)
	until   time.Time // when the open circuit allows a half-open probe
	probing bool      // a probe is in flight (half-open)
}

// breakerSet is the per-endpoint circuit-breaker table. A breaker exists
// to stop hammering an endpoint that is down — the retry loop would
// otherwise multiply load exactly when the server can least afford it —
// while the half-open probe discovers recovery without a thundering herd.
type breakerSet struct {
	trip    int // consecutive failures that open the circuit (<0 = disabled)
	cooloff time.Duration

	mu sync.Mutex
	m  map[string]*breakerState
}

func newBreakerSet(trip int, cooloff time.Duration) *breakerSet {
	return &breakerSet{trip: trip, cooloff: cooloff, m: make(map[string]*breakerState)}
}

// allow decides admission for one Do against the endpoint's circuit.
func (b *breakerSet) allow(key string) admit {
	if b.trip < 0 {
		return admitClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[key]
	if st == nil {
		return admitClosed
	}
	if !st.open {
		return admitClosed
	}
	if time.Now().Before(st.until) || st.probing {
		return admitOpen
	}
	st.probing = true // half-open: exactly one probe at a time
	return admitProbe
}

// report feeds an attempt outcome back into the circuit. opens is
// incremented (via the stats cell) on each closed→open transition.
func (b *breakerSet) report(key string, ok bool, cell *statCell) {
	if b.trip < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.m[key]
	if st == nil {
		st = &breakerState{}
		b.m[key] = st
	}
	if ok {
		st.fails = 0
		st.open = false
		st.probing = false
		return
	}
	if st.open {
		// A failed probe (or a straggler) re-arms the open window.
		st.probing = false
		st.until = time.Now().Add(b.cooloff)
		return
	}
	st.fails++
	if st.fails >= b.trip {
		st.open = true
		st.probing = false
		st.until = time.Now().Add(b.cooloff)
		if cell != nil {
			cell.breakerOpens.Add(1)
		}
	}
}

// latWindow is a fixed-size ring of recent attempt latencies; quantile
// sorts a copy on demand (the ring is small and hedge decisions are not
// on the per-request fast path once HedgeDelay is explicit).
type latWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

func newLatWindow(size int) *latWindow {
	return &latWindow{buf: make([]time.Duration, size)}
}

func (w *latWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
	w.mu.Unlock()
}

// quantile returns the q-quantile of the window (0 when empty).
func (w *latWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	if n == 0 {
		w.mu.Unlock()
		return 0
	}
	cp := make([]time.Duration, n)
	copy(cp, w.buf[:n])
	w.mu.Unlock()
	// Insertion sort: n <= 256 and the call is off the hot path.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	i := int(q*float64(len(cp))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(cp) {
		i = len(cp) - 1
	}
	return cp[i]
}
