package httpfault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrReset is the error surfaced for injected connection resets (both
// sides of the exchange). It unwraps from every reset the Transport
// returns, so callers can classify injected failures precisely.
var ErrReset = errors.New("httpfault: connection reset by chaos")

// ErrTruncated is the error surfaced by a truncated response body's final
// Read.
var ErrTruncated = errors.New("httpfault: response body truncated by chaos")

// Stats counts injected faults (atomic; read with Snapshot).
type Stats struct {
	Requests    uint64 // exchanges that entered the injector
	Delays      uint64
	ResetsPre   uint64 // resets before the server saw the request
	ResetsPost  uint64 // resets after the server did the work
	Err500s     uint64
	Err503s     uint64
	Truncations uint64
	Blackholes  uint64
	ConnsKilled uint64 // listener-side connection kills
}

// statCell is the live atomic form of Stats.
type statCell struct {
	requests, delays, resetsPre, resetsPost atomic.Uint64
	err500s, err503s, truncations           atomic.Uint64
	blackholes, connsKilled                 atomic.Uint64
}

func (c *statCell) snapshot() Stats {
	return Stats{
		Requests:    c.requests.Load(),
		Delays:      c.delays.Load(),
		ResetsPre:   c.resetsPre.Load(),
		ResetsPost:  c.resetsPost.Load(),
		Err500s:     c.err500s.Load(),
		Err503s:     c.err503s.Load(),
		Truncations: c.truncations.Load(),
		Blackholes:  c.blackholes.Load(),
		ConnsKilled: c.connsKilled.Load(),
	}
}

// Transport is a fault-injecting http.RoundTripper. Faults are drawn per
// request from the Plan's keyed PRF (request indices are assigned in
// admission order), or taken verbatim from Script when it is non-nil.
// The zero value with only Inner set is a transparent pass-through.
type Transport struct {
	// Plan is the probabilistic fault model (ignored when Script is set).
	Plan Plan
	// Script, when non-nil, injects exactly these events and nothing else.
	Script []Event
	// Inner performs the real exchanges (nil = http.DefaultTransport).
	Inner http.RoundTripper
	// Record freezes every injected fault as an Event retrievable from
	// Recorded — the replay bridge: run chaos once, shrink the script.
	Record bool

	seq   atomic.Uint64
	cell  statCell
	mu    sync.Mutex
	saved []Event
}

// Snapshot returns the cumulative injection counts.
func (t *Transport) Snapshot() Stats { return t.cell.snapshot() }

// Recorded returns a copy of the events injected so far (Record must be
// set).
func (t *Transport) Recorded() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.saved...)
}

func (t *Transport) record(req uint64, f fate) {
	if !t.Record {
		return
	}
	evs := f.events(req)
	if len(evs) == 0 {
		return
	}
	t.mu.Lock()
	t.saved = append(t.saved, evs...)
	t.mu.Unlock()
}

// RoundTrip implements http.RoundTripper: resolve the request's fate,
// apply the delay, then either synthesize the fault or forward to Inner.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := t.seq.Add(1) - 1
	t.cell.requests.Add(1)
	var f fate
	if t.Script != nil {
		f = scriptFate(t.Script, i)
	} else {
		f = t.Plan.planFate(i)
	}
	t.record(i, f)

	ctx := req.Context()
	if f.delay > 0 {
		t.cell.delays.Add(1)
		timer := time.NewTimer(f.delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			closeBody(req)
			return nil, ctx.Err()
		}
	}
	switch {
	case f.blackhole:
		t.cell.blackholes.Add(1)
		closeBody(req)
		<-ctx.Done()
		return nil, fmt.Errorf("httpfault: request %d blackholed: %w", i, ctx.Err())
	case f.reset && !f.resetAfter:
		t.cell.resetsPre.Add(1)
		closeBody(req)
		return nil, &net.OpError{Op: "write", Net: "tcp", Err: ErrReset}
	case f.err500:
		t.cell.err500s.Add(1)
		closeBody(req)
		return synthesize(req, http.StatusInternalServerError, nil), nil
	case f.err503:
		t.cell.err503s.Add(1)
		closeBody(req)
		return synthesize(req, http.StatusServiceUnavailable, http.Header{"Retry-After": {"1"}}), nil
	}

	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch {
	case f.reset: // resetAfter: the server did the work, the answer is lost
		t.cell.resetsPost.Add(1)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: ErrReset}
	case f.truncate:
		t.cell.truncations.Add(1)
		resp.Body = truncateBody(resp.Body, resp.ContentLength)
		return resp, nil
	}
	return resp, nil
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// synthesize fabricates an error response that never touched the wire.
func synthesize(req *http.Request, status int, hdr http.Header) *http.Response {
	body := fmt.Sprintf(`{"error":"httpfault: injected %d"}`, status)
	h := http.Header{"Content-Type": {"application/json"}}
	for k, vs := range hdr {
		h[k] = vs
	}
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody returns a body that yields the first half of the declared
// content length (or 16 bytes when unknown) and then fails the read with
// ErrTruncated — the mid-body connection drop a JSON decoder must never
// paper over.
func truncateBody(inner io.ReadCloser, contentLength int64) io.ReadCloser {
	cut := int64(16)
	if contentLength > 1 {
		cut = contentLength / 2
	}
	return &truncatedBody{inner: inner, remaining: cut}
}

type truncatedBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, ErrTruncated
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The inner body ended before the cut (chunked or tiny bodies):
		// the truncation must still read as a failure, not a clean EOF.
		err = ErrTruncated
	}
	return n, err
}

func (b *truncatedBody) Close() error {
	io.Copy(io.Discard, b.inner) // keep the underlying connection reusable
	return b.inner.Close()
}

// Listener wraps a net.Listener with server-side chaos: each accepted
// connection is assigned a fate from the same keyed PRF (by connection
// index) and, when selected, is abruptly closed after a bounded number of
// writes — the server-side mirror of a client-observed connection reset.
// KillP is the per-connection kill probability.
type Listener struct {
	net.Listener
	Plan  Plan
	KillP float64

	seq  atomic.Uint64
	cell statCell
}

// WrapListener wraps ln so that a KillP fraction of accepted connections
// die mid-stream, deterministically by connection index under plan.Seed.
func WrapListener(ln net.Listener, plan Plan, killP float64) *Listener {
	return &Listener{Listener: ln, Plan: plan, KillP: killP}
}

// Snapshot returns the listener's cumulative kill count.
func (l *Listener) Snapshot() Stats { return l.cell.snapshot() }

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	i := l.seq.Add(1) - 1
	if l.KillP <= 0 || u01(l.Plan.prf(kindConnKill, i)) >= l.KillP {
		return c, nil
	}
	// Kill after 1..8 writes: late enough that a response may be mid-
	// flight, early enough that every killed connection actually dies.
	return &killedConn{Conn: c, writesLeft: int64(1 + l.Plan.prf(kindConnKill, ^i)%8), cell: &l.cell}, nil
}

// killedConn aborts the connection on its n-th write. TCP connections get
// SO_LINGER 0 so the close is an RST — the client observes a genuine
// connection reset, not a graceful FIN that reads as clean EOF.
type killedConn struct {
	net.Conn
	writesLeft int64
	killed     atomic.Bool
	cell       *statCell
}

func (c *killedConn) Write(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrReset}
	}
	if atomic.AddInt64(&c.writesLeft, -1) <= 0 {
		c.kill()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrReset}
	}
	return c.Conn.Write(p)
}

func (c *killedConn) kill() {
	if c.killed.Swap(true) {
		return
	}
	c.cell.connsKilled.Add(1)
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}
