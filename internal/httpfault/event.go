package httpfault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind classifies a single explicit HTTP fault event.
type Kind int

const (
	// DelayEvent defers the request by Arg (a duration in nanoseconds).
	DelayEvent Kind = iota
	// ResetEvent kills the exchange with a connection-reset error. Arg 0
	// resets before the request reaches the server (the request is lost);
	// Arg 1 resets after the exchange completed (the server did the work,
	// the client never saw the answer).
	ResetEvent
	// Err500Event answers the request with a synthesized 500 without
	// reaching the server.
	Err500Event
	// Err503Event answers with a synthesized 503 carrying Retry-After: 1.
	Err503Event
	// TruncateEvent cuts the response body at half its length and errors
	// the remaining read.
	TruncateEvent
	// BlackholeEvent hangs the request until its context is done.
	BlackholeEvent
)

var kindNames = [...]string{"delay", "reset", "err500", "err503", "truncate", "blackhole"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("httpfault: unknown event kind %q", s)
}

// Event is one explicit fault applied to the Req-th request seen by the
// Transport (0-based, in admission order). A Transport with a non-nil
// Script injects exactly the scripted events and nothing else — the
// replayable, shrinkable form of an HTTP fault plan (the probabilistic
// Transport records one Event per fault it injects, so any chaos run can
// be frozen into a script and minimized with difftest.DDMin).
type Event struct {
	Req  uint64
	Kind Kind
	// Arg is the delay in nanoseconds for DelayEvent and the reset side
	// (0 = before, 1 = after) for ResetEvent; unused otherwise.
	Arg int64
}

// String renders the event in the fixture form ParseEvent accepts:
// "req=N kind=K" with " arg=N" appended when non-zero.
func (e Event) String() string {
	s := fmt.Sprintf("req=%d kind=%s", e.Req, e.Kind)
	if e.Arg != 0 {
		s += fmt.Sprintf(" arg=%d", e.Arg)
	}
	return s
}

// ParseEvent is the inverse of Event.String.
func ParseEvent(s string) (Event, error) {
	var e Event
	seen := map[string]bool{}
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok || seen[k] {
			return Event{}, fmt.Errorf("httpfault: bad event field %q in %q", f, s)
		}
		seen[k] = true
		var err error
		switch k {
		case "req":
			e.Req, err = strconv.ParseUint(v, 10, 64)
		case "arg":
			e.Arg, err = strconv.ParseInt(v, 10, 64)
		case "kind":
			e.Kind, err = ParseKind(v)
		default:
			return Event{}, fmt.Errorf("httpfault: unknown event field %q in %q", k, s)
		}
		if err != nil {
			return Event{}, err
		}
	}
	if !seen["req"] || !seen["kind"] {
		return Event{}, fmt.Errorf("httpfault: event %q missing req/kind", s)
	}
	return e, nil
}

// fate is the resolved fault assignment for one request. The zero fate is
// a clean pass-through.
type fate struct {
	delay      time.Duration
	reset      bool
	resetAfter bool // reset fires after the exchange, not before
	err500     bool
	err503     bool
	truncate   bool
	blackhole  bool
}

// planFate draws request req's fate from the probabilistic plan. At most
// one terminal fault (reset/500/503/truncate/blackhole) applies, resolved
// in a fixed precedence order so the per-kind probabilities stay
// independent PRF draws; delay composes with any of them.
func (p Plan) planFate(req uint64) fate {
	var f fate
	if p.DelayP > 0 && p.MaxDelay > 0 && u01(p.prf(kindDelay, req)) < p.DelayP {
		f.delay = time.Duration(1 + p.prf(kindDelayAmount, req)%uint64(p.MaxDelay))
	}
	switch {
	case p.Blackhole > 0 && u01(p.prf(kindBlackhole, req)) < p.Blackhole:
		f.blackhole = true
	case p.Reset > 0 && u01(p.prf(kindReset, req)) < p.Reset:
		f.reset = true
		f.resetAfter = p.prf(kindResetSide, req)&1 == 1
	case p.Err500 > 0 && u01(p.prf(kindErr500, req)) < p.Err500:
		f.err500 = true
	case p.Err503 > 0 && u01(p.prf(kindErr503, req)) < p.Err503:
		f.err503 = true
	case p.Truncate > 0 && u01(p.prf(kindTruncate, req)) < p.Truncate:
		f.truncate = true
	}
	return f
}

// scriptFate aggregates the scripted events matching request req.
// Multiple events compose (e.g. Delay + Reset); conflicting terminal
// kinds resolve in blackhole > reset > err500 > err503 > truncate order,
// matching the probabilistic precedence.
func scriptFate(script []Event, req uint64) fate {
	var f fate
	for _, e := range script {
		if e.Req != req {
			continue
		}
		switch e.Kind {
		case DelayEvent:
			if d := time.Duration(e.Arg); d > f.delay {
				f.delay = d
			}
		case ResetEvent:
			f.reset = true
			f.resetAfter = e.Arg == 1
		case Err500Event:
			f.err500 = true
		case Err503Event:
			f.err503 = true
		case TruncateEvent:
			f.truncate = true
		case BlackholeEvent:
			f.blackhole = true
		}
	}
	// Precedence: a scripted blackhole wins over everything, then reset,
	// then the synthesized statuses, then truncation.
	switch {
	case f.blackhole:
		f.reset, f.err500, f.err503, f.truncate = false, false, false, false
	case f.reset:
		f.err500, f.err503, f.truncate = false, false, false
	case f.err500:
		f.err503, f.truncate = false, false
	case f.err503:
		f.truncate = false
	}
	return f
}

// events freezes a fate back into its explicit Event list (the recording
// side of replayability).
func (f fate) events(req uint64) []Event {
	var evs []Event
	if f.delay > 0 {
		evs = append(evs, Event{Req: req, Kind: DelayEvent, Arg: int64(f.delay)})
	}
	switch {
	case f.blackhole:
		evs = append(evs, Event{Req: req, Kind: BlackholeEvent})
	case f.reset:
		var side int64
		if f.resetAfter {
			side = 1
		}
		evs = append(evs, Event{Req: req, Kind: ResetEvent, Arg: side})
	case f.err500:
		evs = append(evs, Event{Req: req, Kind: Err500Event})
	case f.err503:
		evs = append(evs, Event{Req: req, Kind: Err503Event})
	case f.truncate:
		evs = append(evs, Event{Req: req, Kind: TruncateEvent})
	}
	return evs
}
