// Package httpfault is the adversarial substrate for the HTTP serving
// path, the serving-layer sibling of internal/faults: a seeded, fully
// deterministic fault injector for the transport underneath
// internal/oracle's HTTP surface, designed to be paired with a
// reliability layer (internal/client) that restores exact request
// semantics over it.
//
// Where internal/faults perturbs per-transmission delivery under the
// CONGEST round abstraction, this package perturbs whole HTTP exchanges:
// per-request added latency, connection resets (before or after the
// request reaches the server), synthesized 500/503 responses, truncated
// response bodies and blackholes (the request hangs until the caller's
// context gives up). Every decision is drawn from a keyed PRF of
// (seed, kind, request index), so a run is a pure function of the plan
// and the request order — independent of host scheduling — and any chaos
// run can be frozen into an explicit Event script, replayed, and shrunk
// with internal/difftest.DDMin.
//
// The injector has two attachment points: Transport wraps an
// http.RoundTripper (client side — faults on the way out and the way
// back), and Listener wraps a net.Listener (server side — accepted
// connections die mid-stream), so chaos can be injected into either end
// of a real TCP conversation or into an in-process handler chain.
package httpfault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/key"
)

// Plan is a deterministic fault model for the HTTP substrate. The zero
// value is the perfect transport: every request passes through untouched.
type Plan struct {
	// Seed keys the fault PRF. Two runs over the same request order see
	// the same faults; 0 is a valid seed.
	Seed int64
	// MaxDelay bounds the extra latency injected per request: each
	// affected request sleeps a duration drawn uniformly from
	// (0, MaxDelay]. 0 disables delay injection.
	MaxDelay time.Duration
	// DelayP is the per-request probability of injected latency.
	DelayP float64
	// Reset is the per-request probability of a connection reset. Half of
	// the resets (by an independent PRF draw) fire before the request
	// reaches the server — the request is lost; the other half fire after
	// the exchange completed — the response is lost but the server did the
	// work. The second flavor is what makes retry idempotency observable.
	Reset float64
	// Err500 and Err503 are per-request probabilities of a synthesized
	// 500/503 response (the request never reaches the inner transport;
	// 503s carry a Retry-After: 1 header, like a shedding server).
	Err500 float64
	Err503 float64
	// Truncate is the per-request probability that the response body is
	// cut at half its declared length and the connection errors mid-read.
	Truncate float64
	// Blackhole is the per-request probability that the request hangs
	// until the request context is done (the client's deadline is the only
	// way out).
	Blackhole float64
}

// MaxMaxDelay bounds Plan.MaxDelay: anything longer than a second is a
// blackhole in disguise (and makes deterministic tests crawl).
const MaxMaxDelay = time.Second

// Validate reports whether the plan's parameters are in range.
func (p Plan) Validate() error {
	if p.MaxDelay < 0 || p.MaxDelay > MaxMaxDelay {
		return fmt.Errorf("httpfault: MaxDelay %v out of range [0, %v]", p.MaxDelay, MaxMaxDelay)
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"DelayP", p.DelayP}, {"Reset", p.Reset}, {"Err500", p.Err500},
		{"Err503", p.Err503}, {"Truncate", p.Truncate}, {"Blackhole", p.Blackhole},
	} {
		if math.IsNaN(pr.v) || pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("httpfault: %s %v out of range [0, 1]", pr.name, pr.v)
		}
	}
	return nil
}

// All is the standard chaos plan used by the E-CHAOS experiment and the
// "all" CLI shorthand: 20%% of requests delayed up to 2ms, 10%% reset, 5%%
// each of 500s and 503s, 5%% truncated, 2%% blackholed.
func All(seed int64) Plan {
	return Plan{
		Seed: seed, MaxDelay: 2 * time.Millisecond, DelayP: 0.2,
		Reset: 0.1, Err500: 0.05, Err503: 0.05, Truncate: 0.05, Blackhole: 0.02,
	}
}

// Parse decodes a plan from its textual form: comma-separated terms
// "delay=DUR", "delayp=P", "reset=P", "err500=P", "err503=P",
// "truncate=P", "blackhole=P" and "seed=N", in any order. The presets ""
// and "none" give the zero plan and "all" gives All(0).
// Parse(p.String()) == p for every valid plan (FuzzHTTPFaultPlan).
func Parse(s string) (Plan, error) {
	var p Plan
	switch strings.TrimSpace(s) {
	case "", "none":
		return p, nil
	case "all":
		return All(0), nil
	}
	for _, term := range strings.Split(s, ",") {
		term = strings.TrimSpace(term)
		k, v, ok := strings.Cut(term, "=")
		if !ok {
			return Plan{}, fmt.Errorf("httpfault: bad plan term %q (want key=value)", term)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil {
				return Plan{}, fmt.Errorf("httpfault: bad delay %q: %v", v, err)
			}
			p.MaxDelay = d
		case "seed":
			sd, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("httpfault: bad seed %q: %v", v, err)
			}
			p.Seed = sd
		case "delayp", "reset", "err500", "err503", "truncate", "blackhole":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("httpfault: bad %s %q: %v", k, v, err)
			}
			switch k {
			case "delayp":
				p.DelayP = f
			case "reset":
				p.Reset = f
			case "err500":
				p.Err500 = f
			case "err503":
				p.Err503 = f
			case "truncate":
				p.Truncate = f
			case "blackhole":
				p.Blackhole = f
			}
		default:
			return Plan{}, fmt.Errorf("httpfault: unknown plan key %q", k)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// String renders the plan in the canonical form Parse accepts: active
// terms in delay, delayp, reset, err500, err503, truncate, blackhole,
// seed order; "none" for the zero plan.
func (p Plan) String() string {
	var terms []string
	if p.MaxDelay != 0 {
		terms = append(terms, "delay="+p.MaxDelay.String())
	}
	prob := func(k string, v float64) {
		if v != 0 {
			terms = append(terms, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	prob("delayp", p.DelayP)
	prob("reset", p.Reset)
	prob("err500", p.Err500)
	prob("err503", p.Err503)
	prob("truncate", p.Truncate)
	prob("blackhole", p.Blackhole)
	if p.Seed != 0 {
		terms = append(terms, fmt.Sprintf("seed=%d", p.Seed))
	}
	if len(terms) == 0 {
		return "none"
	}
	return strings.Join(terms, ",")
}

// PRF domains. Every random decision is keyed by one of these so
// decisions are independent of each other and of evaluation order.
const (
	kindDelay uint64 = iota + 1
	kindDelayAmount
	kindReset
	kindResetSide
	kindErr500
	kindErr503
	kindTruncate
	kindBlackhole
	kindConnKill
)

// prf draws the decision word for one (kind, request index) key under the
// plan's seed — the shared internal/key discipline, bit-identical to the
// pre-dedup local copy so recorded scripts and seeded tests replay
// unchanged.
func (p Plan) prf(kind, req uint64) uint64 {
	return key.Mix64(key.PRF(p.Seed, kind) ^ req)
}

// u01 maps a PRF word to [0, 1).
func u01(h uint64) float64 { return key.U01(h) }
