package httpfault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/difftest"
)

// newBackend returns a test server answering every request with a fixed
// JSON body, plus a client whose transport runs through the injector.
func newBackend(t *testing.T, tr *Transport) (*httptest.Server, *http.Client) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"answer":42,"pad":"0123456789abcdef0123456789abcdef"}`))
	}))
	t.Cleanup(ts.Close)
	if tr.Inner == nil {
		tr.Inner = ts.Client().Transport
	}
	return ts, &http.Client{Transport: tr}
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	return resp, body, rerr
}

func TestPassThrough(t *testing.T) {
	tr := &Transport{} // zero plan: perfect transport
	ts, c := newBackend(t, tr)
	resp, body, err := get(t, c, ts.URL)
	if err != nil || resp.StatusCode != 200 || !strings.Contains(string(body), "42") {
		t.Fatalf("pass-through: status=%v body=%q err=%v", resp, body, err)
	}
	if s := tr.Snapshot(); s.Requests != 1 || s.Delays+s.ResetsPre+s.ResetsPost+s.Err500s+s.Err503s+s.Truncations+s.Blackholes != 0 {
		t.Fatalf("pass-through injected faults: %+v", s)
	}
}

func TestScriptedFaults(t *testing.T) {
	script := []Event{
		{Req: 0, Kind: ResetEvent},                                                            // before the server
		{Req: 1, Kind: ResetEvent, Arg: 1},                                                    // after the server
		{Req: 2, Kind: Err500Event},                                                           //
		{Req: 3, Kind: Err503Event},                                                           //
		{Req: 4, Kind: TruncateEvent},                                                         //
		{Req: 5, Kind: DelayEvent, Arg: int64(2 * time.Millisecond)},                          // delay only
		{Req: 6, Kind: BlackholeEvent},                                                        //
		{Req: 7, Kind: DelayEvent, Arg: int64(time.Millisecond)}, {Req: 7, Kind: Err500Event}, // composition
	}
	tr := &Transport{Script: script}
	ts, c := newBackend(t, tr)

	// req 0: reset before — transport error unwrapping to ErrReset.
	if _, _, err := get(t, c, ts.URL); !errors.Is(err, ErrReset) {
		t.Fatalf("req 0: err = %v, want ErrReset", err)
	}
	// req 1: reset after — also an error, but the server saw the request.
	if _, _, err := get(t, c, ts.URL); !errors.Is(err, ErrReset) {
		t.Fatalf("req 1: err = %v, want ErrReset", err)
	}
	// req 2: synthesized 500.
	if resp, _, err := get(t, c, ts.URL); err != nil || resp.StatusCode != 500 {
		t.Fatalf("req 2: resp=%v err=%v, want 500", resp, err)
	}
	// req 3: synthesized 503 with Retry-After.
	if resp, _, err := get(t, c, ts.URL); err != nil || resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("req 3: resp=%v err=%v, want 503 + Retry-After", resp, err)
	}
	// req 4: truncated body — the read must fail, never a clean short read.
	if _, _, err := get(t, c, ts.URL); !errors.Is(err, ErrTruncated) {
		t.Fatalf("req 4: err = %v, want ErrTruncated", err)
	}
	// req 5: delay only — the answer still arrives intact.
	start := time.Now()
	if resp, body, err := get(t, c, ts.URL); err != nil || resp.StatusCode != 200 || !strings.Contains(string(body), "42") {
		t.Fatalf("req 5: resp=%v err=%v", resp, err)
	} else if time.Since(start) < 2*time.Millisecond {
		t.Fatalf("req 5: no delay observed")
	}
	// req 6: blackhole — only the context deadline gets the client out.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL, nil)
	if _, err := c.Do(req); err == nil {
		t.Fatalf("req 6: blackhole answered")
	}
	// req 7: delay + 500 compose.
	if resp, _, err := get(t, c, ts.URL); err != nil || resp.StatusCode != 500 {
		t.Fatalf("req 7: resp=%v err=%v, want 500", resp, err)
	}

	s := tr.Snapshot()
	want := Stats{Requests: 8, Delays: 2, ResetsPre: 1, ResetsPost: 1, Err500s: 2, Err503s: 1, Truncations: 1, Blackholes: 1}
	if s != want {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}
}

// TestPlanDeterminism: the same plan over the same request order injects
// the same faults, and recording freezes a replayable script.
func TestPlanDeterminism(t *testing.T) {
	run := func() (Stats, []Event) {
		tr := &Transport{Plan: All(7), Record: true}
		ts, c := newBackend(t, tr)
		for i := 0; i < 200; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL, nil)
			if resp, err := c.Do(req); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
		}
		return tr.Snapshot(), tr.Recorded()
	}
	s1, ev1 := run()
	s2, ev2 := run()
	if s1 != s2 {
		t.Fatalf("two identical runs differ: %+v vs %+v", s1, s2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("recorded scripts differ in length: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("recorded scripts differ at %d: %v vs %v", i, ev1[i], ev2[i])
		}
	}
	if s1.Requests != 200 {
		t.Fatalf("requests = %d, want 200", s1.Requests)
	}
	// All(7) at 200 requests must actually exercise the fault space.
	if s1.Delays == 0 || s1.ResetsPre+s1.ResetsPost == 0 || s1.Err500s == 0 || s1.Err503s == 0 {
		t.Fatalf("chaos plan injected too little: %+v", s1)
	}

	// Replaying the frozen script reproduces the same fault assignment.
	tr := &Transport{Script: ev1}
	ts, c := newBackend(t, tr)
	for i := 0; i < 200; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL, nil)
		if resp, err := c.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}
	sr := tr.Snapshot()
	if sr.ResetsPre != s1.ResetsPre || sr.Err500s != s1.Err500s || sr.Truncations != s1.Truncations || sr.Blackholes != s1.Blackholes {
		t.Fatalf("script replay diverged: %+v vs %+v", sr, s1)
	}
}

// TestScriptShrink: a failure triggered by one event in a large recorded
// script ddmins down to that single event via difftest.DDMin.
func TestScriptShrink(t *testing.T) {
	script := make([]Event, 0, 41)
	for i := 0; i < 40; i++ {
		script = append(script, Event{Req: uint64(i), Kind: DelayEvent, Arg: int64(time.Microsecond)})
	}
	script = append(script, Event{Req: 17, Kind: Err500Event})

	// The "failure": request 17 answers non-200 under the script.
	fails := func(evs []Event) bool {
		tr := &Transport{Script: evs}
		ts, c := newBackend(t, tr)
		var bad bool
		for i := 0; i < 40; i++ {
			resp, _, err := get(t, c, ts.URL)
			if err == nil && resp.StatusCode != 200 && i == 17 {
				bad = true
			}
		}
		return bad
	}
	min := difftest.DDMin(script, fails)
	if len(min) != 1 || min[0].Kind != Err500Event || min[0].Req != 17 {
		t.Fatalf("shrink did not isolate the 500 event: %v", min)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"all",
		"delay=2ms,delayp=0.2,reset=0.1,err500=0.05,err503=0.05,truncate=0.05,blackhole=0.02,seed=7",
		"reset=0.5",
		"delay=1ms,delayp=1,seed=-3",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)): %v", s, err)
		}
		if p != p2 {
			t.Fatalf("round trip %q: %+v != %+v", s, p, p2)
		}
	}
	for _, bad := range []string{"delay=abc", "reset=2", "blackhole=-1", "wat=1", "delay=5s", "reorder"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestEventRoundTrip(t *testing.T) {
	evs := []Event{
		{Req: 0, Kind: ResetEvent},
		{Req: 3, Kind: ResetEvent, Arg: 1},
		{Req: 9, Kind: DelayEvent, Arg: 1500},
		{Req: 12, Kind: BlackholeEvent},
	}
	for _, e := range evs {
		got, err := ParseEvent(e.String())
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", e, err)
		}
		if got != e {
			t.Fatalf("round trip %v -> %v", e, got)
		}
	}
	for _, bad := range []string{"", "req=1", "kind=reset", "req=1 kind=nope", "req=1 req=2 kind=reset"} {
		if _, err := ParseEvent(bad); err == nil {
			t.Fatalf("ParseEvent(%q) accepted", bad)
		}
	}
}

// TestListenerKills: a wrapped listener with KillP=1 kills every
// connection; the client observes transport errors, and the kill counter
// accounts them.
func TestListenerKills(t *testing.T) {
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 64<<10)) // large enough to span several writes
	}))
	ln := WrapListener(ts.Listener, Plan{Seed: 3}, 1.0)
	ts.Listener = ln
	ts.Start()
	defer ts.Close()

	client := &http.Client{Timeout: 2 * time.Second}
	errs := 0
	for i := 0; i < 8; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			errs++
			continue
		}
		if _, rerr := io.ReadAll(resp.Body); rerr != nil {
			errs++
		}
		resp.Body.Close()
	}
	if errs == 0 {
		t.Fatalf("KillP=1 listener produced no client-visible failures")
	}
	if got := ln.Snapshot().ConnsKilled; got == 0 {
		t.Fatalf("no connections recorded as killed")
	}
}

// TestListenerPassThrough: KillP=0 never kills.
func TestListenerPassThrough(t *testing.T) {
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	ln := WrapListener(ts.Listener, Plan{Seed: 3}, 0)
	ts.Listener = ln
	ts.Start()
	defer ts.Close()
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatalf("clean listener failed: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := ln.Snapshot().ConnsKilled; got != 0 {
		t.Fatalf("KillP=0 killed %d connections", got)
	}
}
