package httpfault

import (
	"testing"
	"time"
)

// FuzzHTTPFaultPlan checks the Parse/String bijection on the plan
// grammar: any string Parse accepts must survive a String round trip
// bit-exactly, and the parsed plan must validate — the same contract
// FuzzFaultPlan holds for the engine-level fault plans.
func FuzzHTTPFaultPlan(f *testing.F) {
	f.Add("none")
	f.Add("all")
	f.Add("delay=2ms,delayp=0.2,reset=0.1,err500=0.05,err503=0.05,truncate=0.05,blackhole=0.02,seed=7")
	f.Add("reset=0.99,seed=-1")
	f.Add("delay=1ns,delayp=1e-9")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return // rejected inputs are out of scope
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted invalid plan %+v: %v", s, p, verr)
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q) failed: %v", s, canon, err)
		}
		if p != p2 {
			t.Fatalf("round trip %q: %+v != %+v", s, p, p2)
		}
		if p2.String() != canon {
			t.Fatalf("String not canonical: %q vs %q", p2.String(), canon)
		}
		// The PRF must be total on any valid plan (no panics, stable fate).
		for req := uint64(0); req < 4; req++ {
			f1, f2 := p.planFate(req), p.planFate(req)
			if f1 != f2 {
				t.Fatalf("planFate(%d) unstable: %+v vs %+v", req, f1, f2)
			}
			if f1.delay < 0 || f1.delay > time.Second {
				t.Fatalf("planFate(%d) delay %v out of range", req, f1.delay)
			}
		}
	})
}
