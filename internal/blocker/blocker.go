// Package blocker computes blocker sets (Definition III.1): given an h-hop
// CSSSP collection, a set Q of vertices hitting every root-to-leaf path of
// length exactly h in every tree. It follows the structure of Sec. III-B:
//
//  1. children discovery — each tree member tells its parent, per tree
//     (pipelined, several parents can be served in the same round);
//  2. score initialization — a pipelined convergecast per tree computes
//     score_v(x) = number of depth-h descendants of v in T_x;
//  3. a greedy loop: aggregate the maximum total score to a BFS-tree root
//     (the node with the most uncovered paths), broadcast the chosen
//     blocker c, zero the scores of c's descendants by pipelining source
//     IDs down the common subtree (the paper's Algorithm 4), and subtract
//     c's per-tree scores at its ancestors by pipelining them up the
//     in-tree of Lemma III.7 — until the maximum score is zero.
//
// Every phase is executed on the CONGEST engine and its rounds are
// accounted; the greedy selection per pick costs O(diameter), matching the
// aggregation the paper inherits from [3].
package blocker

import (
	"fmt"

	"repro/internal/bcast"
	"repro/internal/congest"
	"repro/internal/cssp"
	"repro/internal/graph"
)

// Result reports the blocker set and the cost of computing it.
type Result struct {
	// Q is the blocker set in pick order.
	Q []int
	// Stats accumulates all phases.
	Stats congest.Stats
	// PhaseRounds breaks rounds down by phase name ("claims", "scores",
	// "select", "descendants", "ancestors").
	PhaseRounds map[string]int
	// Scores is each node's final per-tree score (all zero on success).
	Scores [][]int64
}

// msg is the shared payload for the blocker phases: a (kind, tree, value)
// triple.
type msg struct {
	kind int // claim / count / zero / subtract
	tree int
	val  int64
}

// Words reports the message size in words.
func (msg) Words() int { return 3 }

const (
	kindClaim = iota
	kindCount
	kindZero
	kindSub
)

// outItem is a queued message to a specific neighbor.
type outItem struct {
	to int
	m  msg
}

// queueNode is shared plumbing: per-neighbor FIFO queues, one send per
// neighbor per round.
type queueNode struct {
	q map[int][]msg
}

func (qn *queueNode) enqueue(to int, m msg) {
	if qn.q == nil {
		qn.q = make(map[int][]msg)
	}
	qn.q[to] = append(qn.q[to], m)
}

func (qn *queueNode) flush(ctx *congest.Context) {
	for to, items := range qn.q {
		if len(items) == 0 {
			continue
		}
		ctx.Send(to, items[0])
		if len(items) == 1 {
			delete(qn.q, to)
		} else {
			qn.q[to] = items[1:]
		}
	}
}

func (qn *queueNode) empty() bool { return len(qn.q) == 0 }

// claimNode implements children discovery.
type claimNode struct {
	queueNode
	id       int
	coll     *cssp.Collection
	children [][]int // per tree
	started  bool
}

func (nd *claimNode) Init(ctx *congest.Context) {
	nd.children = make([][]int, len(nd.coll.Sources))
	for i, root := range nd.coll.Sources {
		if nd.id != root && nd.coll.Parent[i][nd.id] >= 0 {
			nd.enqueue(nd.coll.Parent[i][nd.id], msg{kind: kindClaim, tree: i})
		}
	}
}

func (nd *claimNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		mm := m.Payload.(msg)
		if mm.kind != kindClaim {
			ctx.Failf("claims phase: unexpected kind %d", mm.kind)
			return
		}
		nd.children[mm.tree] = append(nd.children[mm.tree], m.From)
	}
	nd.flush(ctx)
}

func (nd *claimNode) Quiescent() bool { return nd.empty() }

// NextWake implements congest.Waker: queued claims drain one per neighbor
// per round; after that, only incoming claims matter.
func (nd *claimNode) NextWake() int {
	if !nd.empty() {
		return 1
	}
	return congest.WakeOnReceive
}

// scoreNode implements the per-tree descendant-leaf convergecast.
type scoreNode struct {
	queueNode
	id       int
	coll     *cssp.Collection
	children [][]int
	score    []int64
	pending  []int
	reported []bool
}

func (nd *scoreNode) Init(ctx *congest.Context) {
	k := len(nd.coll.Sources)
	nd.score = make([]int64, k)
	nd.pending = make([]int, k)
	nd.reported = make([]bool, k)
	for i := range nd.coll.Sources {
		if nd.coll.Depth[i][nd.id] == nd.coll.H {
			nd.score[i] = 1
		}
		nd.pending[i] = len(nd.children[i])
	}
}

// report enqueues the finished count for tree i to the parent.
func (nd *scoreNode) report(i int) {
	if nd.reported[i] || nd.pending[i] != 0 {
		return
	}
	nd.reported[i] = true
	root := nd.coll.Sources[i]
	if nd.id == root || nd.coll.Parent[i][nd.id] < 0 {
		return
	}
	// Zero counts must still be reported: the parent waits on every child.
	nd.enqueue(nd.coll.Parent[i][nd.id], msg{kind: kindCount, tree: i, val: nd.score[i]})
}

func (nd *scoreNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		mm := m.Payload.(msg)
		if mm.kind != kindCount {
			ctx.Failf("scores phase: unexpected kind %d", mm.kind)
			return
		}
		nd.score[mm.tree] += mm.val
		nd.pending[mm.tree]--
	}
	for i := range nd.score {
		nd.report(i)
	}
	nd.flush(ctx)
}

// NextWake implements congest.Waker: the node acts spontaneously while its
// queues drain or while a finished (pending-zero) count is still to be
// reported; otherwise only a child's report wakes it.
func (nd *scoreNode) NextWake() int {
	if !nd.empty() {
		return 1
	}
	for i := range nd.pending {
		if nd.pending[i] == 0 && !nd.reported[i] {
			return 1
		}
	}
	return congest.WakeOnReceive
}

func (nd *scoreNode) Quiescent() bool {
	if !nd.empty() {
		return false
	}
	for i := range nd.pending {
		// Waiting on children is fine (their messages are in flight); an
		// unreported finished count would be a bug, but report runs every
		// round, so pending-zero implies reported.
		if nd.pending[i] == 0 && !nd.reported[i] {
			return false
		}
	}
	return true
}

// updateNode implements one pick's score updates: Algorithm 4 (descendant
// zeroing, kindZero flowing down tree children) and the ancestor
// subtraction (kindSub flowing up tree parents).
type updateNode struct {
	queueNode
	id       int
	coll     *cssp.Collection
	children [][]int
	score    []int64
	c        int     // the chosen blocker
	cScore   []int64 // c's pre-pick scores (only at c)
}

func (nd *updateNode) Init(ctx *congest.Context) {
	if nd.id != nd.c {
		return
	}
	// Local step at c: queue the per-tree updates, zero own scores.
	for i := range nd.coll.Sources {
		if nd.score[i] != 0 {
			// Descendant zeroing for trees where c has depth-h descendants
			// (Algorithm 4), and ancestor subtraction of c's count along
			// the path to the root.
			for _, ch := range nd.children[i] {
				nd.enqueue(ch, msg{kind: kindZero, tree: i})
			}
			if p := nd.coll.Parent[i][nd.id]; p >= 0 && nd.id != nd.coll.Sources[i] {
				nd.enqueue(p, msg{kind: kindSub, tree: i, val: nd.score[i]})
			}
		}
		nd.score[i] = 0
	}
}

func (nd *updateNode) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	for _, m := range inbox {
		mm := m.Payload.(msg)
		i := mm.tree
		switch mm.kind {
		case kindZero:
			nd.score[i] = 0
			for _, ch := range nd.children[i] {
				nd.enqueue(ch, msg{kind: kindZero, tree: i})
			}
		case kindSub:
			nd.score[i] -= mm.val
			if nd.score[i] < 0 {
				ctx.Failf("ancestor update drove score below zero at node %d tree %d", nd.id, i)
				return
			}
			if p := nd.coll.Parent[i][nd.id]; p >= 0 && nd.id != nd.coll.Sources[i] {
				nd.enqueue(p, msg{kind: kindSub, tree: i, val: mm.val})
			}
		default:
			ctx.Failf("update phase: unexpected kind %d", mm.kind)
			return
		}
	}
	nd.flush(ctx)
}

func (nd *updateNode) Quiescent() bool { return nd.empty() }

// NextWake implements congest.Waker: queued updates drain one per neighbor
// per round.
func (nd *updateNode) NextWake() int {
	if !nd.empty() {
		return 1
	}
	return congest.WakeOnReceive
}

// Compute runs the full blocker-set computation on the collection. cfg
// carries the engine knobs for every internal phase (claims, scores, the
// greedy selection loop and the score updates); its Observer receives all
// of their events. The zero Config is fine.
func Compute(g *graph.Graph, coll *cssp.Collection, cfg congest.Config) (*Result, error) {
	n := g.N()
	k := len(coll.Sources)
	res := &Result{PhaseRounds: make(map[string]int)}

	// Phase 1: children discovery.
	claims := make([]*claimNode, n)
	st, err := congest.Run(g, func(v int) congest.Node {
		claims[v] = &claimNode{id: v, coll: coll}
		return claims[v]
	}, cfg)
	res.Stats.Add(st)
	res.PhaseRounds["claims"] = st.Rounds
	if err != nil {
		return nil, fmt.Errorf("blocker: claims: %w", err)
	}
	children := make([][][]int, n)
	for v := range claims {
		children[v] = claims[v].children
	}

	// Phase 2: score initialization.
	scores := make([]*scoreNode, n)
	st, err = congest.Run(g, func(v int) congest.Node {
		scores[v] = &scoreNode{id: v, coll: coll, children: children[v]}
		return scores[v]
	}, cfg)
	res.Stats.Add(st)
	res.PhaseRounds["scores"] = st.Rounds
	if err != nil {
		return nil, fmt.Errorf("blocker: scores: %w", err)
	}
	score := make([][]int64, n)
	for v := range scores {
		score[v] = scores[v].score
	}

	// BFS tree for the greedy aggregation.
	tree, st, err := bcast.BuildTree(g, 0, cfg)
	res.Stats.Add(st)
	res.PhaseRounds["select"] += st.Rounds
	if err != nil {
		return nil, fmt.Errorf("blocker: aggregation tree: %w", err)
	}

	// Phase 3: greedy loop.
	for iter := 0; iter <= n; iter++ {
		totals := make([]int64, n)
		for v := 0; v < n; v++ {
			for i := 0; i < k; i++ {
				totals[v] += score[v][i]
			}
		}
		maxScore, arg, st, err := bcast.MaxArg(g, tree, totals, cfg)
		res.Stats.Add(st)
		res.PhaseRounds["select"] += st.Rounds
		if err != nil {
			return nil, fmt.Errorf("blocker: select: %w", err)
		}
		if maxScore == 0 {
			res.Scores = score
			return res, nil
		}
		c := int(arg)
		// Announce c (a one-value broadcast down the BFS tree).
		_, st, err = bcast.Broadcast(g, tree, []bcast.Vec{{int64(c)}}, cfg)
		res.Stats.Add(st)
		res.PhaseRounds["select"] += st.Rounds
		if err != nil {
			return nil, fmt.Errorf("blocker: announce: %w", err)
		}
		res.Q = append(res.Q, c)

		// Score updates at descendants (Algorithm 4) and ancestors.
		updates := make([]*updateNode, n)
		st, err = congest.Run(g, func(v int) congest.Node {
			updates[v] = &updateNode{id: v, coll: coll, children: children[v], score: score[v], c: c}
			return updates[v]
		}, cfg)
		res.Stats.Add(st)
		res.PhaseRounds["descendants"] += st.Rounds // both updates share the phase
		if err != nil {
			return nil, fmt.Errorf("blocker: updates after pick %d: %w", c, err)
		}
	}
	return nil, fmt.Errorf("blocker: greedy loop did not terminate within n picks")
}

// VerifyCoverage checks Definition III.1: every root-to-leaf path of length
// exactly h in every tree contains a vertex of Q. It returns the uncovered
// (tree, leaf) pairs.
func VerifyCoverage(coll *cssp.Collection, q []int) []string {
	inQ := make(map[int]bool, len(q))
	for _, c := range q {
		inQ[c] = true
	}
	var bad []string
	for i := range coll.Sources {
		for v := range coll.Parent[i] {
			if coll.Depth[i][v] != coll.H {
				continue
			}
			covered := false
			for _, u := range coll.PathTo(i, v) {
				if inQ[u] {
					covered = true
					break
				}
			}
			if !covered {
				bad = append(bad, fmt.Sprintf("tree %d: depth-%d leaf %d uncovered", i, coll.H, v))
			}
		}
	}
	return bad
}
