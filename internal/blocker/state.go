// Checkpoint support: congest.Stateful for the blocker-phase node kinds.
// The per-neighbor FIFO queues are maps, so they are encoded in sorted
// neighbor order; the collection, children lists and the chosen blocker
// are configuration rebuilt by Compute's phase drivers.
package blocker

import (
	"fmt"
	"sort"

	"repro/internal/congest"
)

func init() {
	congest.RegisterPayloadCodec("blocker.msg", msg{},
		func(enc *congest.StateEncoder, p congest.Payload) {
			m := p.(msg)
			enc.Int(m.kind)
			enc.Int(m.tree)
			enc.Int64(m.val)
		},
		func(dec *congest.StateDecoder) (congest.Payload, error) {
			m := msg{kind: dec.Int(), tree: dec.Int(), val: dec.Int64()}
			return m, dec.Err()
		})
}

func (qn *queueNode) encodeQueues(enc *congest.StateEncoder) {
	tos := make([]int, 0, len(qn.q))
	for to := range qn.q {
		tos = append(tos, to)
	}
	sort.Ints(tos)
	enc.Int(len(tos))
	for _, to := range tos {
		enc.Int(to)
		items := qn.q[to]
		enc.Int(len(items))
		for _, m := range items {
			enc.Int(m.kind)
			enc.Int(m.tree)
			enc.Int64(m.val)
		}
	}
}

func (qn *queueNode) decodeQueues(dec *congest.StateDecoder) error {
	qn.q = nil
	nt := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < nt; i++ {
		to := dec.Int()
		ni := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		for j := 0; j < ni; j++ {
			qn.enqueue(to, msg{kind: dec.Int(), tree: dec.Int(), val: dec.Int64()})
		}
	}
	return dec.Err()
}

func encodeIntLists(enc *congest.StateEncoder, ls [][]int) {
	enc.Int(len(ls))
	for _, l := range ls {
		enc.Ints(l)
	}
}

func decodeIntLists(dec *congest.StateDecoder) [][]int {
	n := dec.Int()
	if dec.Err() != nil {
		return nil
	}
	ls := make([][]int, n)
	for i := range ls {
		ls[i] = dec.Ints()
	}
	return ls
}

// EncodeState implements congest.Stateful.
func (nd *claimNode) EncodeState(enc *congest.StateEncoder) {
	nd.encodeQueues(enc)
	encodeIntLists(enc, nd.children)
	enc.Bool(nd.started)
}

// DecodeState implements congest.Stateful.
func (nd *claimNode) DecodeState(dec *congest.StateDecoder) error {
	if err := nd.decodeQueues(dec); err != nil {
		return err
	}
	nd.children = decodeIntLists(dec)
	nd.started = dec.Bool()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(nd.children) != len(nd.coll.Sources) {
		return fmt.Errorf("blocker: snapshot has %d trees, want %d", len(nd.children), len(nd.coll.Sources))
	}
	return nil
}

// EncodeState implements congest.Stateful.
func (nd *scoreNode) EncodeState(enc *congest.StateEncoder) {
	nd.encodeQueues(enc)
	enc.Int64s(nd.score)
	enc.Ints(nd.pending)
	enc.Bools(nd.reported)
}

// DecodeState implements congest.Stateful.
func (nd *scoreNode) DecodeState(dec *congest.StateDecoder) error {
	if err := nd.decodeQueues(dec); err != nil {
		return err
	}
	nd.score = dec.Int64s()
	nd.pending = dec.Ints()
	nd.reported = dec.Bools()
	if err := dec.Err(); err != nil {
		return err
	}
	k := len(nd.coll.Sources)
	if len(nd.score) != k || len(nd.pending) != k || len(nd.reported) != k {
		return fmt.Errorf("blocker: snapshot score arity mismatch (want %d trees)", k)
	}
	return nil
}

// EncodeState implements congest.Stateful.
func (nd *updateNode) EncodeState(enc *congest.StateEncoder) {
	nd.encodeQueues(enc)
	enc.Int64s(nd.score)
	enc.Int64s(nd.cScore)
}

// DecodeState implements congest.Stateful. The score slice is shared with
// Compute's cross-phase accounting array, so it is updated in place.
func (nd *updateNode) DecodeState(dec *congest.StateDecoder) error {
	if err := nd.decodeQueues(dec); err != nil {
		return err
	}
	score := dec.Int64s()
	cScore := dec.Int64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(score) != len(nd.score) {
		return fmt.Errorf("blocker: snapshot score arity mismatch (want %d trees)", len(nd.score))
	}
	copy(nd.score, score)
	nd.cScore = cScore
	return nil
}
