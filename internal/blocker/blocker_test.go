package blocker

import (
	"math"
	"testing"

	"repro/internal/congest"
	"repro/internal/cssp"
	"repro/internal/graph"
)

func runPhase(g *graph.Graph, mk func(v int) *claimNode) (congest.Stats, error) {
	return congest.Run(g, func(v int) congest.Node { return mk(v) }, congest.Config{})
}

func runScorePhase(g *graph.Graph, mk func(v int) *scoreNode) (congest.Stats, error) {
	return congest.Run(g, func(v int) congest.Node { return mk(v) }, congest.Config{})
}

// centralScores computes score_v(i) = number of depth-h descendants of v in
// tree i, sequentially, as the oracle for the convergecast.
func centralScores(coll *cssp.Collection, n int) [][]int64 {
	k := len(coll.Sources)
	score := make([][]int64, n)
	for v := 0; v < n; v++ {
		score[v] = make([]int64, k)
	}
	for i := 0; i < k; i++ {
		for v := 0; v < n; v++ {
			if coll.Depth[i][v] != coll.H {
				continue
			}
			for _, u := range coll.PathTo(i, v) {
				score[u][i]++
			}
		}
	}
	return score
}

// centralGreedy replicates the distributed greedy (max total score, ties by
// smallest node) sequentially.
func centralGreedy(coll *cssp.Collection, n int) []int {
	score := centralScores(coll, n)
	k := len(coll.Sources)
	var q []int
	for {
		best, arg := int64(0), -1
		for v := 0; v < n; v++ {
			var t int64
			for i := 0; i < k; i++ {
				t += score[v][i]
			}
			if t > best {
				best, arg = t, v
			}
		}
		if best == 0 {
			return q
		}
		q = append(q, arg)
		// Re-derive scores from uncovered leaves.
		inQ := make(map[int]bool, len(q))
		for _, c := range q {
			inQ[c] = true
		}
		for v := 0; v < n; v++ {
			for i := 0; i < k; i++ {
				score[v][i] = 0
			}
		}
		for i := 0; i < k; i++ {
			for v := 0; v < n; v++ {
				if coll.Depth[i][v] != coll.H {
					continue
				}
				path := coll.PathTo(i, v)
				covered := false
				for _, u := range path {
					if inQ[u] {
						covered = true
						break
					}
				}
				if covered {
					continue
				}
				for _, u := range path {
					score[u][i]++
				}
			}
		}
	}
}

func buildCollection(t *testing.T, seed int64, n, m, h int, zeroFrac float64, kSources int) (*graph.Graph, *cssp.Collection) {
	t.Helper()
	g := graph.Random(n, m, graph.GenOpts{Seed: seed, MaxW: 5, ZeroFrac: zeroFrac, Directed: seed%2 == 0})
	sources := make([]int, 0, kSources)
	for i := 0; i < kSources; i++ {
		sources = append(sources, (i*n)/kSources)
	}
	coll, err := cssp.Build(g, sources, h, 0, congest.Config{})
	if err != nil {
		t.Fatalf("cssp.Build: %v", err)
	}
	return g, coll
}

func TestScoresMatchCentral(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g, coll := buildCollection(t, seed, 20, 60, 3, 0.3, 4)
		scores := make([]*scoreNode, g.N())
		claims := make([]*claimNode, g.N())
		_, err := runPhase(g, func(v int) *claimNode {
			claims[v] = &claimNode{id: v, coll: coll}
			return claims[v]
		})
		if err != nil {
			t.Fatalf("claims: %v", err)
		}
		_, err = runScorePhase(g, func(v int) *scoreNode {
			scores[v] = &scoreNode{id: v, coll: coll, children: claims[v].children}
			return scores[v]
		})
		if err != nil {
			t.Fatalf("scores: %v", err)
		}
		want := centralScores(coll, g.N())
		for v := 0; v < g.N(); v++ {
			for i := range coll.Sources {
				if scores[v].score[i] != want[v][i] {
					t.Fatalf("seed %d: score[%d][%d] = %d, want %d", seed, v, i, scores[v].score[i], want[v][i])
				}
			}
		}
	}
}

func TestChildrenClaimsMatchCollection(t *testing.T) {
	g, coll := buildCollection(t, 3, 18, 54, 3, 0.3, 3)
	claims := make([]*claimNode, g.N())
	_, err := runPhase(g, func(v int) *claimNode {
		claims[v] = &claimNode{id: v, coll: coll}
		return claims[v]
	})
	if err != nil {
		t.Fatalf("claims: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		for i := range coll.Sources {
			got := append([]int(nil), claims[v].children[i]...)
			want := append([]int(nil), coll.Children[i][v]...)
			if len(got) != len(want) {
				t.Fatalf("children[%d][%d]: %v vs %v", i, v, got, want)
			}
			seen := make(map[int]bool)
			for _, c := range got {
				seen[c] = true
			}
			for _, c := range want {
				if !seen[c] {
					t.Fatalf("children[%d][%d]: missing %d", i, v, c)
				}
			}
		}
	}
}

func TestComputeCoversAllPaths(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g, coll := buildCollection(t, seed, 22, 66, 3, 0.3, 5)
		res, err := Compute(g, coll, congest.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bad := VerifyCoverage(coll, res.Q); len(bad) != 0 {
			t.Fatalf("seed %d: uncovered paths: %v", seed, bad[0])
		}
		for v := range res.Scores {
			for i := range res.Scores[v] {
				if res.Scores[v][i] != 0 {
					t.Fatalf("seed %d: residual score at %d tree %d", seed, v, i)
				}
			}
		}
	}
}

func TestComputeMatchesCentralGreedy(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g, coll := buildCollection(t, seed, 20, 60, 2, 0.25, 4)
		res, err := Compute(g, coll, congest.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := centralGreedy(coll, g.N())
		if len(res.Q) != len(want) {
			t.Fatalf("seed %d: |Q| = %d, central %d (%v vs %v)", seed, len(res.Q), len(want), res.Q, want)
		}
		for j := range want {
			if res.Q[j] != want[j] {
				t.Fatalf("seed %d: pick %d = %d, central %d", seed, j, res.Q[j], want[j])
			}
		}
	}
}

func TestBlockerSizeReasonable(t *testing.T) {
	// The paper's greedy guarantee: |Q| = O((n ln n)/h) (from [3]).
	g, coll := buildCollection(t, 9, 40, 160, 4, 0.3, 40)
	res, err := Compute(g, coll, congest.Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	n := float64(g.N())
	bound := int(4*n*math.Log(n)/float64(coll.H)) + 1
	if len(res.Q) > bound {
		t.Fatalf("|Q| = %d exceeds 4(n ln n)/h = %d", len(res.Q), bound)
	}
	t.Logf("|Q| = %d, bound %d, rounds %d (%v)", len(res.Q), bound, res.Stats.Rounds, res.PhaseRounds)
}

func TestEmptyBlockerWhenNoDeepPaths(t *testing.T) {
	// A shallow graph with h larger than any hop distance: no depth-h
	// leaves, so Q must be empty.
	g := graph.Complete(6, graph.GenOpts{Seed: 1, MaxW: 5})
	coll, err := cssp.Build(g, []int{0, 1, 2}, 4, 0, congest.Config{})
	if err != nil {
		t.Fatalf("cssp.Build: %v", err)
	}
	res, err := Compute(g, coll, congest.Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if len(res.Q) != 0 {
		t.Fatalf("Q = %v, want empty", res.Q)
	}
}
