package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// memSink captures emitted traces in memory.
type memSink struct {
	mu     sync.Mutex
	traces [][]SpanRecord
	closed bool
}

func (m *memSink) Trace(spans []SpanRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.traces = append(m.traces, spans)
	return nil
}

func (m *memSink) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

func (m *memSink) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.traces)
}

func newTestTracer(t *testing.T, opts Options) (*Tracer, *memSink) {
	t.Helper()
	sink := &memSink{}
	opts.Sinks = append(opts.Sinks, sink)
	tr := New(opts)
	if tr == nil {
		t.Fatal("New returned the disabled tracer for enabled options")
	}
	return tr, sink
}

func TestNilTracerIsFreeAndSilent(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRequest(context.Background(), "req", "")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil tracer put a span in the context")
	}
	// Every nil-span method must be a no-op, not a panic.
	sp.Set("k", "v")
	sp.SetInt("n", 1)
	sp.Error(errors.New("x"))
	sp.Child("c").End()
	sp.End()
	if sp.TraceID() != "" || sp.ID() != "" || sp.Sampled() || sp.Traceparent() != "" {
		t.Fatal("nil span leaked identity")
	}
	if tr.Enabled() || tr.Emitted() != 0 || tr.Err() != nil || tr.Close() != nil {
		t.Fatal("nil tracer is not fully inert")
	}
	if _, sp := Start(ctx, "child"); sp != nil {
		t.Fatal("Start minted a span from an untraced context")
	}
}

func TestNewReturnsDisabledWithoutSinksOrSampling(t *testing.T) {
	if New(Options{SampleEvery: 1}) != nil {
		t.Fatal("tracer without sinks should be disabled")
	}
	if New(Options{Sinks: []Sink{&memSink{}}}) != nil {
		t.Fatal("tracer without any sampling mode should be disabled")
	}
}

func TestDeterministicIDs(t *testing.T) {
	run := func() []string {
		tr, _ := newTestTracer(t, Options{SampleEvery: 1, Seed: 42})
		var ids []string
		for i := 0; i < 4; i++ {
			_, sp := tr.StartRequest(context.Background(), "req", "")
			ids = append(ids, sp.TraceID(), sp.ID())
			sp.End()
		}
		return ids
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ID %d differs across identical runs: %s vs %s", i, a[i], b[i])
		}
		if len(a[i])%16 != 0 || !isLowerHex(a[i]) {
			t.Fatalf("ID %d is not lowercase hex: %q", i, a[i])
		}
	}
	if a[0] == a[2] {
		t.Fatal("consecutive requests share a trace ID")
	}
}

func TestHeadSamplingOneInN(t *testing.T) {
	tr, sink := newTestTracer(t, Options{SampleEvery: 3, Seed: 1})
	for i := 0; i < 9; i++ {
		_, sp := tr.StartRequest(context.Background(), "req", "")
		sp.End()
	}
	if got := sink.count(); got != 3 {
		t.Fatalf("1-in-3 sampling over 9 requests emitted %d traces, want 3", got)
	}
	if tr.Emitted() != 3 {
		t.Fatalf("Emitted() = %d, want 3", tr.Emitted())
	}
}

func TestTailCaptureSlowAndError(t *testing.T) {
	tr, sink := newTestTracer(t, Options{SlowThreshold: time.Nanosecond, Seed: 1})
	_, sp := tr.StartRequest(context.Background(), "slow", "")
	time.Sleep(time.Millisecond)
	sp.End()
	if sink.count() != 1 {
		t.Fatal("slow trace was not tail-captured")
	}

	tr2, sink2 := newTestTracer(t, Options{CaptureErrors: true, Seed: 1})
	_, ok := tr2.StartRequest(context.Background(), "fine", "")
	ok.End()
	if sink2.count() != 0 {
		t.Fatal("healthy trace emitted without head sampling")
	}
	ctx, root := tr2.StartRequest(context.Background(), "bad", "")
	_, child := Start(ctx, "inner")
	child.Error(errors.New("boom"))
	child.End()
	root.End()
	if sink2.count() != 1 {
		t.Fatal("error trace was not tail-captured")
	}
	spans := sink2.traces[0]
	if spans[1].Err != "boom" {
		t.Fatalf("child error not recorded: %+v", spans[1])
	}
}

// TestSpanTreeShape runs on an injected deterministic clock (one
// millisecond per reading), so every recorded start and duration is an
// exact expected value — no slack for µs rounding, which made the
// wall-clock version of this test flaky.
func TestSpanTreeShape(t *testing.T) {
	base := time.UnixMicro(1_700_000_000_000_000)
	var readings int
	clock := func() time.Time {
		readings++
		return base.Add(time.Duration(readings-1) * time.Millisecond)
	}
	tr, sink := newTestTracer(t, Options{SampleEvery: 1, Seed: 7, Now: clock})
	ctx, root := tr.StartRequest(context.Background(), "serve.path", "")
	root.SetInt("gen", 3)
	cctx, probe := Start(ctx, "cache.probe")
	probe.Set("hit", "false")
	probe.End()
	if FromContext(cctx) != probe {
		t.Fatal("Start did not thread the child through the context")
	}
	walk := root.Child("walk")
	walk.End()
	root.End()

	spans := sink.traces[0]
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "serve.path" || spans[0].Parent != "" {
		t.Fatalf("root malformed: %+v", spans[0])
	}
	if spans[0].Attrs["gen"] != "3" {
		t.Fatalf("root attrs: %+v", spans[0].Attrs)
	}
	// Clock readings, in order: trace start, root start, probe start,
	// probe end, walk start, walk end, root end — one millisecond apart.
	// Under the fake clock the records are exact, nesting included.
	baseUS := base.UnixMicro()
	want := []struct {
		name           string
		startUS, durUS int64
	}{
		{"serve.path", baseUS + 1000, 5000},
		{"cache.probe", baseUS + 2000, 1000},
		{"walk", baseUS + 4000, 1000},
	}
	for i, w := range want {
		s := spans[i]
		if s.Name != w.name || s.StartUS != w.startUS || s.DurUS != w.durUS {
			t.Fatalf("span %d = %q start %d dur %d, want %q start %d dur %d",
				i, s.Name, s.StartUS, s.DurUS, w.name, w.startUS, w.durUS)
		}
	}
	for _, s := range spans[1:] {
		if s.Parent != spans[0].SpanID {
			t.Fatalf("span %q parent %q, want root %q", s.Name, s.Parent, spans[0].SpanID)
		}
		if s.TraceID != spans[0].TraceID {
			t.Fatalf("span %q trace %q, want %q", s.Name, s.TraceID, spans[0].TraceID)
		}
		if s.StartUS < spans[0].StartUS || s.StartUS+s.DurUS > spans[0].StartUS+spans[0].DurUS {
			t.Fatalf("span %q does not nest in root: %+v within %+v", s.Name, s, spans[0])
		}
	}
}

func TestMaxSpansCap(t *testing.T) {
	tr, sink := newTestTracer(t, Options{SampleEvery: 1, MaxSpans: 4, Seed: 1})
	_, root := tr.StartRequest(context.Background(), "req", "")
	for i := 0; i < 10; i++ {
		root.Child(fmt.Sprintf("c%d", i)).End()
	}
	root.End()
	spans := sink.traces[0]
	if len(spans) != 4 {
		t.Fatalf("recorded %d spans, want cap 4", len(spans))
	}
	if spans[0].Attrs["droppedSpans"] != "7" {
		t.Fatalf("droppedSpans attr = %q, want 7", spans[0].Attrs["droppedSpans"])
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr, sink := newTestTracer(t, Options{SampleEvery: 1000000, Seed: 1})
	const inID = "4bf92f3577b34da6a3ce929d0e0e4736"
	hdr := FormatTraceparent(inID, "00f067aa0ba902b7", true)
	_, sp := tr.StartRequest(context.Background(), "req", hdr)
	if sp.TraceID() != inID {
		t.Fatalf("incoming trace ID not adopted: %s", sp.TraceID())
	}
	if !sp.Sampled() {
		t.Fatal("incoming sampled flag not honored")
	}
	out := sp.Traceparent()
	gotID, parent, sampled, ok := ParseTraceparent(out)
	if !ok || gotID != inID || parent != sp.ID() || !sampled {
		t.Fatalf("outbound header %q does not round-trip (ok=%v id=%s parent=%s)", out, ok, gotID, parent)
	}
	sp.End()
	if sink.count() != 1 {
		t.Fatal("upstream-sampled trace was not emitted")
	}

	// An unsampled upstream decision also wins over head sampling.
	tr2, sink2 := newTestTracer(t, Options{SampleEvery: 1, Seed: 1})
	_, sp2 := tr2.StartRequest(context.Background(), "req", FormatTraceparent(inID, "00f067aa0ba902b7", false))
	sp2.End()
	if sink2.count() != 0 {
		t.Fatal("upstream-unsampled trace was emitted anyway")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",       // missing flags
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    // unknown version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",    // uppercase
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",    // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",    // zero parent
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01",     // short parent
		"00-4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7-01",    // wrong separator
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",    // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-99", // trailing junk
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
	id, parent, sampled, ok := ParseTraceparent(" 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00 ")
	if !ok || sampled || id == "" || parent == "" {
		t.Fatalf("valid padded header rejected (ok=%v sampled=%v)", ok, sampled)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	tr := New(Options{SampleEvery: 1, Seed: 9, Sinks: []Sink{sink}})
	ctx, root := tr.StartRequest(context.Background(), "req", "")
	_, child := Start(ctx, "step")
	child.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL emitted %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("bad JSONL line %q: %v", lines[1], err)
	}
	if rec.Name != "step" || rec.Parent == "" {
		t.Fatalf("JSONL child record %+v", rec)
	}
}

func TestChromeSinkSharesTimeline(t *testing.T) {
	var buf bytes.Buffer
	dst := obs.NewChrome(&buf)
	tr := New(Options{SampleEvery: 1, Seed: 3, Sinks: []Sink{NewChrome(dst)}})
	ctx, root := tr.StartRequest(context.Background(), "serve.dist", "")
	_, sp := Start(ctx, "lookup")
	sp.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not a trace-event document: %v", err)
	}
	events := doc.Events
	var slices, meta int
	for _, e := range events {
		if pid, _ := e["pid"].(float64); int(pid) != ServePID {
			continue
		}
		switch e["ph"] {
		case "X":
			slices++
			args, _ := e["args"].(map[string]any)
			if args["trace"] == "" || args["span"] == "" {
				t.Fatalf("slice lacks trace identity: %+v", e)
			}
		case "M":
			meta++
		}
	}
	if slices != 2 {
		t.Fatalf("chrome timeline has %d serving slices, want 2", slices)
	}
	if meta < 2 {
		t.Fatalf("chrome timeline has %d metadata events, want process+thread names", meta)
	}
}

func TestAggSink(t *testing.T) {
	agg := NewAgg()
	tr := New(Options{SampleEvery: 1, Seed: 5, Sinks: []Sink{agg}})
	for i := 0; i < 3; i++ {
		ctx, root := tr.StartRequest(context.Background(), "serve.path", "")
		_, walk := Start(ctx, "walk")
		if i == 0 {
			walk.Error(errors.New("broken"))
		}
		walk.End()
		root.End()
	}
	rows := agg.Rows()
	if len(rows) != 2 {
		t.Fatalf("agg rows %d, want 2", len(rows))
	}
	byName := map[string]AggRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	walk := byName["walk"]
	if walk.Count != 3 || walk.Errs != 1 || walk.TotalUS <= 0 || walk.MaxUS <= 0 {
		t.Fatalf("walk row %+v", walk)
	}
	if walk.AvgUS() <= 0 {
		t.Fatalf("walk avg %f", walk.AvgUS())
	}
	if rows[0].TotalUS < rows[1].TotalUS {
		t.Fatal("agg rows not sorted by total time descending")
	}
}

func TestUnclosedSpansFlaggedAtEmit(t *testing.T) {
	tr, sink := newTestTracer(t, Options{SampleEvery: 1, Seed: 1})
	_, root := tr.StartRequest(context.Background(), "req", "")
	root.Child("leaked") // never ended
	root.End()
	spans := sink.traces[0]
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	leaked := spans[1]
	if leaked.Attrs["unclosed"] != "true" || leaked.DurUS < 1 {
		t.Fatalf("leaked span not flagged: %+v", leaked)
	}
}

func TestLogHandlerStampsTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	base, err := obs.NewLogHandler(&buf, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(LogHandler(base))
	tr, _ := newTestTracer(t, Options{SampleEvery: 1, Seed: 1})
	ctx, sp := tr.StartRequest(context.Background(), "req", "")

	logger.InfoContext(ctx, "slow query", "kind", "path")
	sp.End()
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("bad log line %q: %v", buf.String(), err)
	}
	if rec["trace_id"] != sp.TraceID() || rec["span_id"] != sp.ID() {
		t.Fatalf("log record missing trace identity: %v", rec)
	}

	buf.Reset()
	logger.Info("untraced")
	var rec2 map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec2); err != nil {
		t.Fatal(err)
	}
	if _, has := rec2["trace_id"]; has {
		t.Fatalf("untraced record carries a trace ID: %v", rec2)
	}
}

func TestConcurrentRequests(t *testing.T) {
	tr, sink := newTestTracer(t, Options{SampleEvery: 1, Seed: 11})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := tr.StartRequest(context.Background(), "req", "")
			for j := 0; j < 4; j++ {
				_, sp := Start(ctx, "step")
				sp.SetInt("j", int64(j))
				sp.End()
			}
			root.End()
		}()
	}
	wg.Wait()
	if got := sink.count(); got != 32 {
		t.Fatalf("emitted %d traces, want 32", got)
	}
	ids := map[string]bool{}
	for _, spans := range sink.traces {
		if len(spans) != 5 {
			t.Fatalf("trace has %d spans, want 5", len(spans))
		}
		if ids[spans[0].TraceID] {
			t.Fatalf("trace ID %s assigned twice", spans[0].TraceID)
		}
		ids[spans[0].TraceID] = true
	}
}
