package trace

import (
	"context"
	"log/slog"
)

// LogHandler wraps a slog.Handler so every record logged with a traced
// context is stamped with trace_id and span_id — the join key between the
// slow-query log, the JSONL span trace and the histogram exemplars. Build
// the base handler with obs.NewLogHandler and wrap it once at startup.
func LogHandler(h slog.Handler) slog.Handler { return logHandler{h} }

type logHandler struct{ slog.Handler }

func (lh logHandler) Handle(ctx context.Context, r slog.Record) error {
	if sp := FromContext(ctx); sp != nil {
		r.AddAttrs(slog.String("trace_id", sp.TraceID()), slog.String("span_id", sp.ID()))
	}
	return lh.Handler.Handle(ctx, r)
}

func (lh logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logHandler{lh.Handler.WithAttrs(attrs)}
}

func (lh logHandler) WithGroup(name string) slog.Handler {
	return logHandler{lh.Handler.WithGroup(name)}
}
