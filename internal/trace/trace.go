// Package trace is the request-scoped tracing layer for the serving path:
// cheap span trees with deterministic IDs, W3C traceparent propagation, and
// head-plus-tail sampling (a fixed 1-in-N head sample, with slow or failed
// requests always captured regardless of the head decision).
//
// The engine side of the repository already attributes every CONGEST round
// to an algorithm phase (internal/obs); this package gives the serving tier
// the same discipline at request granularity. A traced /path query through
// cmd/apspd produces a span tree — admission wait, cache probe, shard
// lookup, parent-walk materialization — that renders on the same Chrome
// trace_event timeline as the engine's phase tracks (the Chrome sink emits
// through obs.WriteChromeTrace into the same file, under its own PID).
//
// Span and trace IDs are deterministic: a tracer seeded with the same value
// assigns the same IDs to the same arrival sequence, so traces diff cleanly
// across runs and tests can assert on exact IDs. Incoming requests carrying
// a W3C traceparent header keep their trace ID (and their sampled flag is
// honored), which is what makes scatter-gather across a future apspd
// cluster inherit end-to-end propagation for free.
package trace

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/key"
)

// DefaultMaxSpans bounds the spans recorded per trace (a runaway batch
// cannot hold unbounded memory; overflow is counted and flagged on the
// root span).
const DefaultMaxSpans = 512

// Options configures a Tracer.
type Options struct {
	// SampleEvery head-samples one in every N root spans (1 = every
	// request, 0 = no head sampling — only tail capture emits).
	SampleEvery int
	// SlowThreshold tail-captures any trace whose root span takes at
	// least this long, regardless of the head decision (0 = off).
	SlowThreshold time.Duration
	// CaptureErrors tail-captures any trace whose spans recorded an
	// error, regardless of the head decision.
	CaptureErrors bool
	// MaxSpans caps recorded spans per trace (0 = DefaultMaxSpans).
	MaxSpans int
	// Seed keys the deterministic ID sequence.
	Seed uint64
	// Sinks receive every emitted trace, in order.
	Sinks []Sink
	// Now overrides the wall clock (nil = time.Now). Tests inject a
	// deterministic clock here so span timings — and the sampling
	// decisions derived from them — are exact instead of slack-checked.
	Now func() time.Time
}

// SpanRecord is one finished span in export form — what sinks consume and
// what the JSONL trace file holds, one per line.
type SpanRecord struct {
	TraceID string            `json:"trace"`
	SpanID  string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"startUs"` // Unix microseconds
	DurUS   int64             `json:"durUs"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Err     string            `json:"err,omitempty"`
}

// Sink consumes emitted traces. Trace receives a finished trace's spans in
// creation order (the root span first); implementations must be safe for
// concurrent calls.
type Sink interface {
	Trace(spans []SpanRecord) error
	Close() error
}

// Tracer hands out request traces. A nil *Tracer is valid and disabled:
// every operation on it (and on the nil spans it returns) is a no-op, so
// call sites need no guards — that is the "tracing disabled costs nothing"
// fast path.
type Tracer struct {
	sampleEvery int
	slow        time.Duration
	capErrors   bool
	maxSpans    int
	seed        uint64
	sinks       []Sink

	now func() time.Time

	seq     atomic.Uint64 // root spans started (head-sampling counter)
	emitted atomic.Uint64 // traces emitted to sinks
	sinkErr atomic.Pointer[error]
}

// New builds a Tracer. Returns nil (the disabled tracer) when the options
// can never emit anything — no sinks, or no sampling mode enabled.
func New(opts Options) *Tracer {
	if len(opts.Sinks) == 0 {
		return nil
	}
	if opts.SampleEvery <= 0 && opts.SlowThreshold <= 0 && !opts.CaptureErrors {
		return nil
	}
	maxSpans := opts.MaxSpans
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	return &Tracer{
		sampleEvery: opts.SampleEvery,
		slow:        opts.SlowThreshold,
		capErrors:   opts.CaptureErrors,
		maxSpans:    maxSpans,
		seed:        opts.Seed,
		sinks:       opts.Sinks,
		now:         now,
	}
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil }

// Emitted returns how many traces reached the sinks.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted.Load()
}

// Err returns the first sink error, if any (sinks misbehaving must not
// fail requests, so emit errors are latched here instead of returned on
// the hot path).
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	if p := t.sinkErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Close closes every sink and reports the first error (latched or from
// closing).
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	err := t.Err()
	for _, s := range t.sinks {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// trace is the per-request span buffer shared by all spans of one tree.
type trace struct {
	tracer      *Tracer
	id          string // 32 hex chars
	headSampled bool
	start       time.Time
	startUnixUS int64

	mu      sync.Mutex
	spans   []*Span
	nspans  uint64 // total started, including dropped
	dropped int
	sawErr  bool
}

// Span is one timed operation in a request's tree. The zero of usefulness:
// a nil *Span ignores every method, so handlers trace unconditionally.
type Span struct {
	tr     *trace
	id     string
	parent string
	name   string
	start  time.Duration // offset from trace start
	dur    time.Duration // 0 until End
	root   bool
	attrs  []attrKV
	err    error
}

type attrKV struct{ k, v string }

// StartRequest opens a new trace with its root span. traceparent is the
// incoming W3C header value ("" for none): a valid header pins the trace
// ID and its sampled flag wins the head decision; otherwise the tracer
// assigns the next deterministic ID and head-samples 1-in-SampleEvery.
// The returned context carries the root span for Start and for log
// stamping. Ending the root span emits the trace (or discards it, per the
// sampling decision).
func (t *Tracer) StartRequest(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	seq := t.seq.Add(1)
	id, _, sampled, ok := ParseTraceparent(traceparent)
	if !ok {
		id = fmt.Sprintf("%016x%016x", splitmix64(t.seed+2*seq), splitmix64(t.seed+2*seq+1))
		sampled = t.sampleEvery > 0 && (seq-1)%uint64(t.sampleEvery) == 0
	}
	now := t.now()
	tr := &trace{
		tracer:      t,
		id:          id,
		headSampled: sampled,
		start:       now,
		startUnixUS: now.UnixMicro(),
	}
	sp := tr.newSpan(name, "")
	sp.root = true
	return ContextWith(ctx, sp), sp
}

// newSpan allocates the next span of the tree; span IDs hash the trace ID
// with the span's creation index, so they are deterministic per trace.
func (tr *trace) newSpan(name, parent string) *Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nspans++
	if len(tr.spans) >= tr.tracer.maxSpans {
		tr.dropped++
		return nil
	}
	sp := &Span{
		tr:     tr,
		id:     fmt.Sprintf("%016x", splitmix64(hash64(tr.id)^tr.nspans)),
		parent: parent,
		name:   name,
		start:  tr.tracer.now().Sub(tr.start),
	}
	tr.spans = append(tr.spans, sp)
	return sp
}

// Start opens a child of the context's current span and returns a context
// carrying the child. With no span in ctx (tracing off, or an untraced
// code path) both returns are no-ops.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.newSpan(name, parent.id)
	if sp == nil {
		return ctx, nil
	}
	return ContextWith(ctx, sp), sp
}

// Child opens a child span without threading a context — for tight loops
// (per-sub-batch segments) where allocating derived contexts would cost
// more than the span itself.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.tr.newSpan(name, sp.id)
}

// Set attaches a string attribute.
func (sp *Span) Set(key, value string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, attrKV{key, value})
	sp.tr.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (sp *Span) SetInt(key string, value int64) {
	sp.Set(key, fmt.Sprintf("%d", value))
}

// Error records err on the span (nil is ignored) and marks the trace for
// tail capture when the tracer captures errors.
func (sp *Span) Error(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.err = err
	sp.tr.sawErr = true
	sp.tr.mu.Unlock()
}

// End closes the span. Ending the root span decides the trace's fate:
// head-sampled, slow (root duration ≥ SlowThreshold) and error traces are
// emitted to every sink; everything else is dropped. End is idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	tr := sp.tr
	tr.mu.Lock()
	if sp.dur == 0 {
		sp.dur = tr.tracer.now().Sub(tr.start) - sp.start
		if sp.dur <= 0 {
			sp.dur = time.Nanosecond
		}
	}
	if !sp.root {
		tr.mu.Unlock()
		return
	}
	t := tr.tracer
	emit := tr.headSampled ||
		(t.slow > 0 && sp.dur >= t.slow) ||
		(t.capErrors && tr.sawErr)
	if !emit {
		tr.mu.Unlock()
		return
	}
	if tr.dropped > 0 {
		sp.attrs = append(sp.attrs, attrKV{"droppedSpans", fmt.Sprintf("%d", tr.dropped)})
	}
	records := make([]SpanRecord, 0, len(tr.spans))
	for _, s := range tr.spans {
		records = append(records, s.record())
	}
	tr.mu.Unlock()

	t.emitted.Add(1)
	for _, sink := range t.sinks {
		if err := sink.Trace(records); err != nil {
			t.sinkErr.CompareAndSwap(nil, &err)
		}
	}
}

// record flattens a span (caller holds tr.mu). Unclosed spans at emit time
// (a handler that forgot End, or a span cut short by panic recovery) get
// the elapsed-so-far duration and an attrs marker rather than a zero.
func (sp *Span) record() SpanRecord {
	r := SpanRecord{
		TraceID: sp.tr.id,
		SpanID:  sp.id,
		Parent:  sp.parent,
		Name:    sp.name,
		StartUS: sp.tr.startUnixUS + sp.start.Microseconds(),
		DurUS:   sp.dur.Microseconds(),
	}
	if sp.dur == 0 {
		r.DurUS = (sp.tr.tracer.now().Sub(sp.tr.start) - sp.start).Microseconds()
		sp.attrs = append(sp.attrs, attrKV{"unclosed", "true"})
	}
	if r.DurUS < 1 {
		r.DurUS = 1
	}
	if len(sp.attrs) > 0 {
		r.Attrs = make(map[string]string, len(sp.attrs))
		for _, kv := range sp.attrs {
			r.Attrs[kv.k] = kv.v
		}
	}
	if sp.err != nil {
		r.Err = sp.err.Error()
	}
	return r
}

// TraceID returns the span's trace ID ("" for a nil span).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.tr.id
}

// ID returns the span's own ID ("" for a nil span).
func (sp *Span) ID() string {
	if sp == nil {
		return ""
	}
	return sp.id
}

// Sampled reports the head decision — whether the trace will be emitted
// regardless of how the request turns out. The serving layer uses this to
// attach histogram exemplars only for traces an operator can actually look
// up.
func (sp *Span) Sampled() bool {
	if sp == nil {
		return false
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	return sp.tr.headSampled
}

// ctxKey carries the current span through a context.
type ctxKey struct{}

// ContextWith returns ctx carrying sp as the current span.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the current span (nil when untraced).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// splitmix64 is the SplitMix64 mixer — cheap, stateless, and good enough
// for ID dispersion (not for cryptographic unguessability, which traces
// do not need). One increment-then-finalize step of the shared
// internal/key discipline; the pinned-stream caveat there applies — the
// deterministic-trace tests replay byte-for-byte only while these bits
// never move.
func splitmix64(x uint64) uint64 {
	return key.Mix64(x + key.PhiMix)
}

// hash64 is FNV-1a over a string (trace IDs), used to key span IDs.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
