package trace

import "strings"

// W3C Trace Context (https://www.w3.org/TR/trace-context/) traceparent
// handling: version 00, `00-<16-byte trace-id>-<8-byte parent-id>-<flags>`
// in lowercase hex. Extraction keeps an upstream caller's trace ID so a
// front-end router fanning a /batch out to shard backends yields one
// coherent tree; injection lets apspd's own clients (and the future
// cluster's scatter-gather legs) carry the context onward.

// TraceparentHeader is the canonical header name.
const TraceparentHeader = "traceparent"

// ParseTraceparent decodes a traceparent header value. ok is false for
// anything malformed (wrong shape, non-hex, all-zero IDs) or for versions
// other than 00 — per spec, unknown versions with the 00 shape could be
// accepted, but rejecting keeps downstream behavior deterministic.
func ParseTraceparent(h string) (traceID, parentID string, sampled, ok bool) {
	h = strings.TrimSpace(h)
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false, false
	}
	ver, tid, pid, flags := h[:2], h[3:35], h[36:52], h[53:]
	if ver != "00" || !isLowerHex(tid) || !isLowerHex(pid) || !isLowerHex(flags) {
		return "", "", false, false
	}
	if tid == strings.Repeat("0", 32) || pid == strings.Repeat("0", 16) {
		return "", "", false, false
	}
	return tid, pid, hexNibble(flags[1])&1 == 1, true
}

// FormatTraceparent encodes a traceparent value for outbound propagation.
func FormatTraceparent(traceID, spanID string, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + traceID + "-" + spanID + "-" + flags
}

// Traceparent renders the span's outbound propagation header ("" for a nil
// span): inject it into downstream requests, and echo it on responses so
// callers learn the server-assigned trace ID.
func (sp *Span) Traceparent() string {
	if sp == nil {
		return ""
	}
	return FormatTraceparent(sp.tr.id, sp.id, sp.Sampled())
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

func hexNibble(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}
