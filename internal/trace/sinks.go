package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/obs"
)

// JSONL streams every emitted span as one JSON line — the same
// grep-friendly convention as the engine's obs.JSONL event trace, keyed by
// trace ID instead of phase.
type JSONL struct {
	mu    sync.Mutex
	enc   *json.Encoder
	flush func() error
	close func() error
}

// NewJSONL wraps an io.Writer. If w is also an io.Closer it is closed by
// Close.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	j := &JSONL{enc: json.NewEncoder(bw), flush: bw.Flush}
	if c, ok := w.(io.Closer); ok {
		j.close = c.Close
	}
	return j
}

// CreateJSONL opens (truncating) path and returns a JSONL span sink.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: create jsonl: %w", err)
	}
	return NewJSONL(f), nil
}

// Trace implements Sink.
func (j *JSONL) Trace(spans []SpanRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range spans {
		if err := j.enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.flush()
	if j.close != nil {
		if cerr := j.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ServePID is the trace_event process ID for serving-request spans —
// distinct from obs.EnginePID so both render side by side in one file.
const ServePID = 2

// chromeTracks bounds the serving-side thread tracks: each trace's spans
// land on one track, traces rotate across this many (concurrent requests
// on one track would overlap illegibly).
const chromeTracks = 24

// Chrome converts emitted traces to Chrome trace_event slices and hands
// them to an obs.Chrome sink — the engine's encoder — so serving spans
// (PID 2) and engine phase rounds (PID 1) share one timeline. The target
// sink's Close (not this sink's) writes the file; close the Tracer before
// the obs side.
type Chrome struct {
	dst  *obs.Chrome
	once sync.Once
	seq  uint64
	mu   sync.Mutex
}

// NewChrome wraps the destination obs.Chrome sink.
func NewChrome(dst *obs.Chrome) *Chrome { return &Chrome{dst: dst} }

// Trace implements Sink.
func (c *Chrome) Trace(spans []SpanRecord) error {
	c.once.Do(func() {
		meta := make([]obs.ChromeEvent, 0, chromeTracks+1)
		meta = append(meta, obs.ChromeEvent{
			Name: "process_name", Ph: "M", PID: ServePID,
			Args: map[string]any{"name": "apspd serving"},
		})
		for tid := 1; tid <= chromeTracks; tid++ {
			meta = append(meta, obs.ChromeEvent{
				Name: "thread_name", Ph: "M", PID: ServePID, TID: tid,
				Args: map[string]any{"name": fmt.Sprintf("requests %02d", tid)},
			})
		}
		c.dst.AddEvents(meta...)
	})
	c.mu.Lock()
	c.seq++
	tid := int(c.seq%chromeTracks) + 1
	c.mu.Unlock()

	out := make([]obs.ChromeEvent, 0, len(spans))
	for _, s := range spans {
		args := map[string]any{"trace": s.TraceID, "span": s.SpanID}
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		out = append(out, obs.ChromeEvent{
			Name: s.Name, Ph: "X",
			TS: s.StartUS, Dur: s.DurUS,
			PID: ServePID, TID: tid,
			Args: args,
		})
	}
	c.dst.AddEvents(out...)
	return nil
}

// Close implements Sink; the destination obs.Chrome owns the file.
func (c *Chrome) Close() error { return nil }

// Agg aggregates span durations by span name — the per-span
// latency-attribution table behind the E-SERVE experiment: where inside
// the serving path did the time go, across every traced request.
type Agg struct {
	mu     sync.Mutex
	byName map[string]*AggRow
}

// AggRow is one span name's accumulated timing.
type AggRow struct {
	Name    string
	Count   int64
	TotalUS int64
	MaxUS   int64
	Errs    int64
}

// AvgUS is the mean span duration in microseconds.
func (r *AggRow) AvgUS() float64 {
	if r.Count == 0 {
		return 0
	}
	return float64(r.TotalUS) / float64(r.Count)
}

// NewAgg returns an empty aggregator.
func NewAgg() *Agg { return &Agg{byName: make(map[string]*AggRow)} }

// Trace implements Sink.
func (a *Agg) Trace(spans []SpanRecord) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range spans {
		r, ok := a.byName[s.Name]
		if !ok {
			r = &AggRow{Name: s.Name}
			a.byName[s.Name] = r
		}
		r.Count++
		r.TotalUS += s.DurUS
		if s.DurUS > r.MaxUS {
			r.MaxUS = s.DurUS
		}
		if s.Err != "" {
			r.Errs++
		}
	}
	return nil
}

// Close implements Sink.
func (a *Agg) Close() error { return nil }

// Rows returns the aggregation sorted by total time descending — the
// attribution order an operator wants.
func (a *Agg) Rows() []AggRow {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]AggRow, 0, len(a.byName))
	for _, r := range a.byName {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalUS != out[j].TotalUS {
			return out[i].TotalUS > out[j].TotalUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}
