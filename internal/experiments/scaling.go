package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/scaling"
)

func init() {
	register("E-SCALE", eScale)
}

// eScale measures the repository's implementation of the paper's stated
// future work (Sec. V): pipelining + Gabow scaling. The claim to check is
// W-insensitivity — scaling rounds grow like log W while Theorem I.1(ii)'s
// pipelined APSP pays 2n√Δ — and the resulting crossover.
func eScale(cfg Config) (*Table, error) {
	n := 24
	if cfg.Small {
		n = 16
	}
	t := &Table{
		ID:      "E-SCALE",
		Title:   "Future work (Sec. V): pipelining + Gabow scaling vs Theorem I.1(ii)",
		Headers: []string{"W", "Δ", "scaling rounds", "phases", "Alg1 rounds", "winner"},
	}
	for _, w := range []int64{4, 64, 1024, 16384} {
		g := graph.Random(n, 3*n, graph.GenOpts{Seed: cfg.Seed, MinW: w / 4, MaxW: w, ZeroFrac: 0.1, Directed: true})
		delta := graph.Delta(g)
		sc, err := scaling.Run(g, scaling.Opts{})
		if err != nil {
			return nil, err
		}
		a1, err := core.APSP(g, delta, false)
		if err != nil {
			return nil, err
		}
		want := graph.APSP(g)
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if sc.Dist[s][v] != want[s][v] || a1.Dist[s][v] != want[s][v] {
					return nil, fmt.Errorf("W=%d: wrong distance at (%d,%d)", w, s, v)
				}
			}
		}
		winner := "Alg1"
		if sc.Stats.Rounds < a1.Stats.Rounds {
			winner = "scaling"
		}
		t.AddRow(w, delta, sc.Stats.Rounds, sc.Bits+1, a1.Stats.Rounds, winner)
	}
	t.Note("scaling rounds grow ~log W (phase count); Alg1 rounds grow ~√Δ — the crossover realizes Sec. V's hope")
	t.Note("messages carry the sender's previous-phase distance, resolving the per-source-weights obstacle deterministically")
	return t, nil
}
