package experiments

import (
	"fmt"
	"time"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/graph"
)

func init() {
	register("E-XOVER", eCrossover)
}

// eCrossover is the CONGEST-vs-centralized crossover table: the simulated
// pipelined engine (rounds are the paper's currency, wall clock is what a
// recompute actually costs) against the shared-memory backend of
// internal/compute on the same instances. The engine's per-round
// simulation overhead means the centralized backend wins wall clock at
// every size — the interesting quantity is *by how much* as n grows,
// which is exactly the number that justifies `apspd -backend parallel`
// for production bootstrap while the engine remains the object of study.
// Every pair of matrices is checked bit-identical before timing is
// reported, so the speedup column never trades correctness.
func eCrossover(cfg Config) (*Table, error) {
	sizes := []int{64, 128, 256, 512, 1024}
	if cfg.Small {
		sizes = []int{32, 64, 128}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = 8
	}
	t := &Table{
		ID:    "E-XOVER",
		Title: fmt.Sprintf("CONGEST engine vs centralized parallel backend (%d workers)", workers),
		Headers: []string{"n", "m", "engine rounds", "engine wall", "parallel wall",
			"speedup", "kernel", "floyd wall"},
	}
	var lastSpeedup float64
	for _, n := range sizes {
		g := graph.Random(n, 4*n, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
		sources := make([]int, n)
		for v := range sources {
			sources[v] = v
		}

		engStart := time.Now()
		eng, err := core.Run(g, core.Opts{Sources: sources, H: n - 1, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		engWall := time.Since(engStart)

		parStart := time.Now()
		par, err := compute.APSP(g, compute.Opts{Workers: workers})
		if err != nil {
			return nil, err
		}
		parWall := time.Since(parStart)

		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if eng.Dist[s][v] != par.Dist[s][v] || eng.Hops[s][v] != par.Hops[s][v] {
					return nil, fmt.Errorf("n=%d: engine and parallel backend diverge at (%d,%d)", n, s, v)
				}
			}
		}

		// The auto-pick takes Dijkstra on these sparse instances; time the
		// dense kernel too (it computes the full n×n closure regardless of
		// density) up to a size where n³ stays affordable.
		floydWall := "-"
		if n <= 512 {
			fwStart := time.Now()
			fw, err := compute.APSP(g, compute.Opts{Workers: workers, Kernel: compute.Floyd})
			if err != nil {
				return nil, err
			}
			for s := 0; s < n; s++ {
				for v := 0; v < n; v++ {
					if fw.Dist[s][v] != par.Dist[s][v] {
						return nil, fmt.Errorf("n=%d: floyd kernel diverges at (%d,%d)", n, s, v)
					}
				}
			}
			floydWall = time.Since(fwStart).Round(time.Microsecond).String()
		}

		lastSpeedup = float64(engWall) / float64(parWall)
		t.AddRow(n, g.M(), eng.Stats.Rounds,
			engWall.Round(time.Microsecond), parWall.Round(time.Microsecond),
			fmt.Sprintf("%.0fx", lastSpeedup), string(par.Kernel), floydWall)
	}
	t.Note("speedup = engine wall / parallel wall on identical instances, matrices verified bit-identical")
	t.Note("largest size: parallel backend is %.0fx faster than the simulated engine (acceptance floor: 5x at n=1024)", lastSpeedup)
	return t, nil
}
