package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/posweight"
)

func init() {
	register("E-INV", eInv)
	register("A-LIT", aLit)
	register("A-ZERO", aZero)
	register("A-LIST", aList)
}

// eInv audits the paper's Invariants 1 and 2 (Lemmas II.11/II.12) under
// the correct Pareto discipline, quantifying where the paper's accounting
// is tight and where the frontier exceeds it.
func eInv(cfg Config) (*Table, error) {
	n, m := 32, 110
	if cfg.Small {
		n, m = 20, 64
	}
	t := &Table{
		ID:    "E-INV",
		Title: "Invariant audit (Pareto discipline): list sizes and schedule health",
		Headers: []string{"graph", "h", "maxPerSrc", "h/γ+1 (paper)", "min(h,Δ)+1", "maxList",
			"γΔ+k (paper)", "inv1 viol", "late", "collisions"},
	}
	k := 8
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"random", graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 6, ZeroFrac: 0.2, Directed: true})},
		{"zeroheavy", graph.ZeroHeavy(n, m, 0.6, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, Directed: true})},
		{"grid", graph.Grid(n/4, 4, graph.GenOpts{Seed: cfg.Seed, MaxW: 6, ZeroFrac: 0.3})},
	} {
		for _, h := range []int{6, 12} {
			sources := make([]int, 0, k)
			for i := 0; i < k; i++ {
				sources = append(sources, (i*fam.g.N())/k)
			}
			delta := graph.HHopDelta(fam.g, sources, h)
			if delta == 0 {
				delta = 1
			}
			res, err := core.Run(fam.g, core.Opts{Sources: sources, H: h, Delta: delta, Audit: true})
			if err != nil {
				return nil, err
			}
			gammaBound := int64(math.Sqrt(float64(int64(h)*delta)/float64(k))) + 1
			paretoBound := int64(h) + 1
			if delta+1 < paretoBound {
				paretoBound = delta + 1
			}
			listBound := int64(math.Sqrt(float64(int64(k)*int64(h)*delta))) + int64(k)
			t.AddRow(fam.name, h, res.MaxPerSource, gammaBound, paretoBound, res.MaxListLen,
				listBound, res.Inv1Violations, res.LateSends, res.Collisions)
		}
	}
	t.Note("maxPerSrc > h/γ+1 marks inputs where the paper's Invariant 2 budget would have had to drop needed entries")
	return t, nil
}

// aLit measures the paper-literal machinery (ModePaper variants) against
// the Pareto discipline: how often each variant loses a distance, and that
// in the APSP regime (h = n−1) the literal machinery is correct and meets
// its bound.
func aLit(cfg Config) (*Table, error) {
	trials := 30
	n, m := 14, 36
	if cfg.Small {
		trials = 10
	}
	t := &Table{
		ID:      "A-LIT",
		Title:   "Ablation: paper-literal list rules vs Pareto (h-hop regime, h=4)",
		Headers: []string{"variant", "wrong pairs", "checked pairs", "underestimates"},
	}
	type variant struct {
		name string
		mode core.Mode
		ev   core.EvictPolicy
		upd  bool
	}
	variants := []variant{
		{"pareto (default)", core.ModePareto, 0, false},
		{"literal gate+evict", core.ModePaper, core.EvictAllInserts, true},
		{"sender gate, evict all", core.ModePaper, core.EvictAllInserts, false},
		{"sender gate, evict nonSP", core.ModePaper, core.EvictNonSPInserts, false},
		{"sender gate, evict sent-only", core.ModePaper, core.EvictOnlySent, false},
	}
	for _, vr := range variants {
		wrong, under, total := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed + int64(trial), MaxW: 5, ZeroFrac: 0.25, Directed: true})
			sources := []int{0, n / 3, 2 * n / 3}
			h := 4
			delta := graph.HHopDelta(g, sources, h)
			if delta == 0 {
				delta = 1
			}
			res, err := core.Run(g, core.Opts{Sources: sources, H: h, Delta: delta,
				Mode: vr.mode, Evict: vr.ev, GateByUpdatedKey: vr.upd})
			if err != nil {
				return nil, fmt.Errorf("%s trial %d: %w", vr.name, trial, err)
			}
			for i, s := range sources {
				want := graph.HHopDistances(g, s, h)
				for v := 0; v < n; v++ {
					total++
					if res.Dist[i][v] != want[v] {
						wrong++
						if res.Dist[i][v] < want[v] {
							under++
						}
					}
				}
			}
		}
		t.AddRow(vr.name, wrong, total, under)
	}
	t.Note("losses are always overestimates (missing paths); fabricating paths would be a different bug class")
	t.Note("in the APSP regime h=n−1 the literal rules are correct (see core.TestPaperModeAPSPRegime)")
	return t, nil
}

// aZero reproduces the paper's Sec. II motivation: the classical
// positive-weight pipelining breaks on zero-weight edges.
func aZero(cfg Config) (*Table, error) {
	n, m := 28, 90
	if cfg.Small {
		n, m = 18, 54
	}
	t := &Table{
		ID:      "A-ZERO",
		Title:   "Ablation: zero-weight edges vs the classical r=d+pos schedule",
		Headers: []string{"zeroFrac", "strict wrong", "lenient wrong", "lenient late sends", "Alg1 wrong", "pairs"},
	}
	for _, zf := range []float64{0, 0.25, 0.5, 0.75} {
		g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 6, ZeroFrac: zf, MinW: 1, Directed: true})
		sources := make([]int, n)
		for v := range sources {
			sources[v] = v
		}
		want := graph.APSP(g)
		count := func(dist [][]int64) int {
			w := 0
			for s := 0; s < n; s++ {
				for v := 0; v < n; v++ {
					if dist[s][v] != want[s][v] {
						w++
					}
				}
			}
			return w
		}
		strict, err := posweight.Run(g, posweight.Opts{Sources: sources, Strict: true})
		if err != nil {
			return nil, err
		}
		lenient, err := posweight.Run(g, posweight.Opts{Sources: sources})
		if err != nil {
			return nil, err
		}
		a1, err := core.APSP(g, graph.Delta(g), false)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", zf), count(strict.Dist), count(lenient.Dist),
			lenient.LateSends, count(a1.Dist), n*n)
	}
	t.Note("strict = the literature's equality-only send rule; its losses grow with the zero fraction")
	t.Note("Algorithm 1 (rightmost) is exact at every zero fraction")
	return t, nil
}

// aList measures the value of Algorithm 1's multi-entry lists: the
// single-estimate pipeline cannot express h-hop semantics at all, and even
// for unrestricted APSP its lenient variant pays late-send penalties on
// zero-heavy graphs.
func aList(cfg Config) (*Table, error) {
	n, m := 28, 96
	if cfg.Small {
		n, m = 18, 60
	}
	t := &Table{
		ID:      "A-LIST",
		Title:   "Ablation: multi-entry lists (Alg 1) vs single best estimate",
		Headers: []string{"zeroFrac", "Alg1 rounds", "single-est rounds", "single-est late", "Alg1 maxPerSrc"},
	}
	for _, zf := range []float64{0, 0.4, 0.7} {
		g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed + 7, MaxW: 6, ZeroFrac: zf, MinW: 1, Directed: true})
		sources := make([]int, n)
		for v := range sources {
			sources[v] = v
		}
		delta := graph.Delta(g)
		a1, err := core.APSP(g, delta, false)
		if err != nil {
			return nil, err
		}
		se, err := posweight.Run(g, posweight.Opts{Sources: sources})
		if err != nil {
			return nil, err
		}
		want := graph.APSP(g)
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if a1.Dist[s][v] != want[s][v] || se.Dist[s][v] != want[s][v] {
					return nil, fmt.Errorf("zf=%.2f: wrong distance", zf)
				}
			}
		}
		t.AddRow(fmt.Sprintf("%.2f", zf), a1.Stats.Rounds, se.Stats.Rounds, se.LateSends, a1.MaxPerSource)
	}
	t.Note("for unrestricted APSP both are exact; only Alg 1 supports h-hop semantics (the CSSSP/blocker substrate)")
	return t, nil
}
