package experiments

import (
	"fmt"

	"repro/internal/bellman"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hssp"
	"repro/internal/scaling"
)

func init() {
	register("E-KSSP", eKSSP)
}

// eKSSP sweeps the source count k: the k-SSP bounds of Theorems I.1(iii),
// I.2(ii)/I.3(ii), plus the scaling extension, all on the same graph. The
// paper's claim is sublinear growth in k for the pipelined algorithms
// (√k for Algorithm 1; k^{1/4}..k^{1/3} for Algorithm 3) versus the
// linear growth of the Bellman–Ford-style baselines.
func eKSSP(cfg Config) (*Table, error) {
	n := 48
	if cfg.Small {
		n = 24
	}
	t := &Table{
		ID:      "E-KSSP",
		Title:   "k-SSP: rounds as the source count grows (fixed graph)",
		Headers: []string{"k", "Alg1 rounds", "Alg1 bound", "Alg3 rounds", "scaling rounds", "BF rounds"},
	}
	g := graph.Random(n, 3*n, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
	delta := graph.Delta(g)
	for _, k := range []int{1, 4, 16, n} {
		sources := make([]int, 0, k)
		for i := 0; i < k; i++ {
			sources = append(sources, (i*n)/k)
		}
		a1, err := core.KSSP(g, sources, delta, false)
		if err != nil {
			return nil, err
		}
		a3, err := hssp.Run(g, hssp.Opts{Sources: sources, Delta: delta})
		if err != nil {
			return nil, err
		}
		sc, err := scaling.Run(g, scaling.Opts{Sources: sources})
		if err != nil {
			return nil, err
		}
		// Bellman–Ford baseline cost is h·k with h=n−1; run it for the
		// smaller k only (it is the slow baseline, and its cost is exactly
		// predictable).
		bfRounds := "-"
		if k <= 16 {
			bf, err := bellmanFull(g, sources)
			if err != nil {
				return nil, err
			}
			bfRounds = fmt.Sprint(bf)
		}
		for i, s := range sources {
			want := graph.Dijkstra(g, s)
			for v := 0; v < n; v++ {
				if a1.Dist[i][v] != want[v] || a3.Dist[i][v] != want[v] || sc.Dist[i][v] != want[v] {
					return nil, fmt.Errorf("k=%d: wrong distance from %d", k, s)
				}
			}
		}
		t.AddRow(k, a1.Stats.Rounds, a1.Bound, a3.Stats.Rounds, sc.Stats.Rounds, bfRounds)
	}
	t.Note("Alg1 grows ~√k (Theorem I.1(iii)); Bellman–Ford grows linearly in k")
	return t, nil
}

func bellmanFull(g *graph.Graph, sources []int) (int, error) {
	res, err := bellman.Run(g, bellman.Opts{Sources: sources, H: g.N() - 1})
	if err != nil {
		return 0, err
	}
	return res.Stats.Rounds, nil
}
