package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/unweighted"
)

func init() {
	register("E-DELTA", eDelta)
}

// eDelta probes the Δ promise that Theorem I.1 assumes is known: the same
// APSP instance run with promises from the exact Δ up to 16× looser, plus
// the distributed estimate of unweighted.EstimateDelta. The proven bound
// scales with √Δ; the measured rounds respond non-monotonically, because a
// looser promise shrinks γ and schedules distance-heavy keys earlier while
// inflating the worst-case position budget.
func eDelta(cfg Config) (*Table, error) {
	n, m := 36, 130
	if cfg.Small {
		n, m = 24, 80
	}
	t := &Table{
		ID:      "E-DELTA",
		Title:   "Sensitivity to the Δ promise (same graph, Alg 1 APSP)",
		Headers: []string{"promise", "Δ used", "rounds", "bound", "rounds/bound", "maxList"},
	}
	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 9, ZeroFrac: 0.25, Directed: true})
	truth := graph.Delta(g)
	want := graph.APSP(g)
	run := func(label string, delta int64) error {
		res, err := core.APSP(g, delta, false)
		if err != nil {
			return err
		}
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if res.Dist[s][v] != want[s][v] {
					return fmt.Errorf("%s: wrong distance at (%d,%d)", label, s, v)
				}
			}
		}
		t.AddRow(label, delta, res.Stats.Rounds, res.Bound,
			ratio(int64(res.Stats.Rounds), res.Bound), res.MaxListLen)
		return nil
	}
	for _, f := range []int64{1, 2, 4, 16} {
		if err := run(fmt.Sprintf("%d×Δ", f), f*truth); err != nil {
			return nil, err
		}
	}
	est, estRes, err := unweighted.EstimateDelta(g, n-1)
	if err != nil {
		return nil, err
	}
	if err := run("distributed Δ̂", est); err != nil {
		return nil, err
	}
	t.Note("Δ̂ estimation itself costs %d rounds (< 2n)", estRes.Stats.Rounds)
	t.Note("correctness holds for every valid promise; only the schedule shape changes")
	return t, nil
}
