package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/httpfault"
	"repro/internal/oracle"
)

func init() { register("E-CLUSTER", eCluster) }

// eCluster is the multi-process cluster drill: three shard backends on
// real TCP listeners behind the scatter-gather router, each owning a
// third of the source dimension. Three phases:
//
//	clean    serial /dist + /batch load through the router on a perfect
//	         transport — zero errors, zero wrong answers, every /batch
//	         assembled from one generation.
//	kill     concurrent load through a chaos transport (httpfault.All);
//	         mid-load one backend is killed abruptly (no drain) and
//	         restored from its autosave directory on the same port. The
//	         router's retries, hedging and per-shard breaker bridge the
//	         outage: zero wrong answers, >=50%% availability.
//	rollout  POST /admin/recompute drains the cluster shard-by-shard
//	         while mixed /dist + /batch load runs. Every 200 answer
//	         validates and names a single generation; mixed-generation
//	         refusals (503) are counted and allowed, torn answers are not.
//
// Every 200 answer in every phase is checked against per-source Dijkstra
// reference distances, so the experiment is a zero-wrong-answers gate for
// the whole cluster layer.
func eCluster(cfg Config) (*Table, error) {
	n, m := 120, 480
	cleanQ, killQ, rollQ := 600, 900, 300
	workers := 6
	if cfg.Small {
		n, m = 48, 192
		cleanQ, killQ, rollQ = 200, 300, 120
		workers = 4
	}
	const nShards = 3

	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
	// Reference matrix: the validation oracle for every phase.
	ref := make([][]int64, n)
	for s := 0; s < n; s++ {
		ref[s] = graph.Dijkstra(g, s)
	}

	cl, err := startExpCluster(g, nShards, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defer cl.close()

	t := &Table{
		ID:      "E-CLUSTER",
		Title:   "oracle cluster: scatter-gather routing, backend kill under chaos, generation-aware rollout",
		Headers: []string{"phase", "queries", "ok", "errors", "wrong", "refused", "detail"},
	}

	// -- clean ------------------------------------------------------------
	clean := newClusterLoad(ref)
	for q := 0; q < cleanQ; q++ {
		if q%10 == 9 {
			clean.batch(cl.cleanURL, cl.stream(q), 4)
		} else {
			src, dst := cl.stream(q)()
			clean.dist(cl.cleanURL, src, dst)
		}
	}
	if clean.errors() != 0 || clean.wrong.Load() != 0 {
		return nil, fmt.Errorf("clean phase: %d errors, %d wrong answers on a perfect transport",
			clean.errors(), clean.wrong.Load())
	}
	t.AddRow("clean", clean.total.Load(), clean.ok.Load(), clean.errors(), clean.wrong.Load(), clean.refused.Load(), "serial, no faults")

	// -- kill -------------------------------------------------------------
	kill := newClusterLoad(ref)
	var (
		resolved atomic.Int64
		wg       sync.WaitGroup
	)
	perWorker := killQ / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := cl.stream(1000 + w)
			for q := 0; q < perWorker; q++ {
				src, dst := next()
				kill.dist(cl.chaosURL, src, dst)
				resolved.Add(1)
			}
		}(w)
	}
	// Kill -9, in process: once half the load has resolved, close every
	// connection of backend 1 without draining, then restore a recovered
	// server from its autosave directory on the same port.
	victim := 1
	for resolved.Load() < int64(perWorker*workers/2) {
		time.Sleep(time.Millisecond)
	}
	cl.backends[victim].hs.Close()
	if err := cl.restore(victim, g); err != nil {
		return nil, fmt.Errorf("kill phase: %w", err)
	}
	wg.Wait()
	if kill.wrong.Load() != 0 {
		return nil, fmt.Errorf("kill phase: %d wrong answers slipped through the cluster layer", kill.wrong.Load())
	}
	if int(kill.ok.Load()) < perWorker*workers/2 {
		return nil, fmt.Errorf("kill phase: only %d/%d queries survived the backend kill", kill.ok.Load(), perWorker*workers)
	}
	t.AddRow("kill", kill.total.Load(), kill.ok.Load(), kill.errors(), kill.wrong.Load(), kill.refused.Load(),
		fmt.Sprintf("backend %d killed+recovered, chaos transport, %d workers", victim, workers))

	// -- rollout ----------------------------------------------------------
	roll := newClusterLoad(ref)
	preGens, err := cl.shardGens()
	if err != nil {
		return nil, fmt.Errorf("rollout phase: %w", err)
	}
	resp, err := http.Post(cl.cleanURL+"/admin/recompute", "application/json", nil)
	if err != nil {
		return nil, fmt.Errorf("rollout trigger: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("rollout trigger answered %d, want 202", resp.StatusCode)
	}
	for q := 0; q < rollQ; q++ {
		if q%5 == 4 {
			roll.batch(cl.cleanURL, cl.stream(2000+q), 4)
		} else {
			src, dst := cl.stream(2000 + q)()
			roll.dist(cl.cleanURL, src, dst)
		}
	}
	if err := cl.awaitRollout(preGens, 60*time.Second); err != nil {
		return nil, fmt.Errorf("rollout phase: %w", err)
	}
	if roll.wrong.Load() != 0 {
		return nil, fmt.Errorf("rollout phase: %d torn or wrong answers during the drain", roll.wrong.Load())
	}
	t.AddRow("rollout", roll.total.Load(), roll.ok.Load(), roll.errors(), roll.wrong.Load(), roll.refused.Load(),
		"shard-by-shard recompute drain, load concurrent with the swap")

	t.Note("n=%d over %d shard backends on real TCP listeners, one source-range shard each; every 200 answer checked against per-source Dijkstra (zero-wrong-answers gate)", n, nShards)
	t.Note("kill phase: httpfault.All chaos on the router->backend transport plus an abrupt (no-drain) backend kill and autosave recovery; the >=50%% availability and zero-wrong bounds are the asserted part")
	t.Note("rollout phase: /batch answers carry one generation by construction; 'refused' counts 503 mixed-generation refusals (allowed), a torn answer would fail the run")
	return t, nil
}

// expBackend is one shard backend on a real listener.
type expBackend struct {
	srv  *oracle.Server
	hs   *http.Server
	addr string
	base string
	dir  string
	k    int
}

// expCluster is the full topology: backends, their shard map, and two
// routers over the same backends — one on a perfect transport, one
// through a chaos injector.
type expCluster struct {
	backends []*expBackend
	m        *cluster.Map
	nShards  int
	seed     int64

	cleanFront *http.Server
	chaosFront *http.Server
	cleanURL   string
	chaosURL   string
	httpc      *http.Client
	dirs       []string
}

// expShardSnap builds shard k's snapshot from per-source Dijkstra trees.
func expShardSnap(g *graph.Graph, k, nShards int) (*oracle.Snapshot, error) {
	lo, hi := cluster.Range(g.N(), k, nShards)
	sources := make([]int, 0, hi-lo)
	dist := make([][]int64, 0, hi-lo)
	parent := make([][]int, 0, hi-lo)
	for s := lo; s < hi; s++ {
		d, p := graph.DijkstraTree(g, s)
		sources = append(sources, s)
		dist = append(dist, d)
		parent = append(parent, p)
	}
	return oracle.Build(g, oracle.BuildInput{Alg: "dijkstra", Sources: sources, Dist: dist, Parent: parent},
		oracle.BuildOpts{Fingerprint: checkpoint.Fingerprint(g)})
}

func startExpCluster(g *graph.Graph, nShards int, seed int64) (*expCluster, error) {
	cl := &expCluster{nShards: nShards, seed: seed, httpc: &http.Client{Timeout: 10 * time.Second}}
	replicaSets := make([][]string, nShards)
	for k := 0; k < nShards; k++ {
		dir, err := os.MkdirTemp("", "ecluster-autosave-")
		if err != nil {
			cl.close()
			return nil, err
		}
		cl.dirs = append(cl.dirs, dir)
		b, err := cl.startBackend(g, k, dir)
		if err != nil {
			cl.close()
			return nil, err
		}
		cl.backends = append(cl.backends, b)
		replicaSets[k] = []string{b.base}
	}
	m, err := cluster.NewContiguous(g.N(), fmt.Sprintf("%016x", checkpoint.Fingerprint(g)), replicaSets)
	if err != nil {
		cl.close()
		return nil, err
	}
	cl.m = m

	serveRouter := func(inner http.RoundTripper, attempts int) (*http.Server, string, error) {
		router, err := cluster.NewRouter(cluster.Options{
			Map:            m,
			Inner:          inner,
			AttemptTimeout: 50 * time.Millisecond,
			MaxAttempts:    attempts,
			HedgeDelay:     10 * time.Millisecond,
			Seed:           seed,
			RolloutPoll:    10 * time.Millisecond,
			RolloutTimeout: 60 * time.Second,
		})
		if err != nil {
			return nil, "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", err
		}
		hs := &http.Server{Handler: router.Handler()}
		go hs.Serve(ln)
		return hs, "http://" + ln.Addr().String(), nil
	}
	if cl.cleanFront, cl.cleanURL, err = serveRouter(nil, 4); err != nil {
		cl.close()
		return nil, err
	}
	chaos := &httpfault.Transport{Plan: httpfault.All(seed), Inner: &http.Transport{}}
	if cl.chaosFront, cl.chaosURL, err = serveRouter(chaos, 4); err != nil {
		cl.close()
		return nil, err
	}
	return cl, nil
}

// startBackend boots shard k's oracle server on a fresh port with
// autosave wired (the crash-recovery substrate the kill phase stands on).
func (cl *expCluster) startBackend(g *graph.Graph, k int, dir string) (*expBackend, error) {
	snap, err := expShardSnap(g, k, cl.nShards)
	if err != nil {
		return nil, err
	}
	b := &expBackend{dir: dir, k: k}
	b.srv = cl.newShardServer(g, k, dir)
	b.srv.Publish(snap)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	b.addr = ln.Addr().String()
	b.base = "http://" + b.addr
	b.hs = &http.Server{Handler: b.srv.Handler()}
	go b.hs.Serve(ln)
	return b, nil
}

func (cl *expCluster) newShardServer(g *graph.Graph, k int, dir string) *oracle.Server {
	return &oracle.Server{
		Store: &oracle.Store{}, Cache: oracle.NewPathCache(4096),
		Met: oracle.NewMetrics(), MaxInflight: 256,
		ShardID: cluster.FormatShardID(k, cl.nShards),
		Recompute: func(ctx context.Context) (*oracle.Snapshot, error) {
			return expShardSnap(g, k, cl.nShards)
		},
		AfterPublish: func(s *oracle.Snapshot) { oracle.SaveToDir(dir, s) },
	}
}

// restore brings the killed backend back on the same port from its
// autosave directory (oracle.RecoverDir quarantines corrupt files).
func (cl *expCluster) restore(k int, g *graph.Graph) error {
	b := cl.backends[k]
	discard := slog.New(slog.NewTextHandler(io.Discard, nil))
	rec, path, err := oracle.RecoverDir(b.dir, g, checkpoint.Fingerprint(g), discard)
	if err != nil {
		return fmt.Errorf("recovering autosave: %w", err)
	}
	if rec == nil || path == "" {
		return fmt.Errorf("no autosave to recover from (dir %s)", b.dir)
	}
	srv := cl.newShardServer(g, k, b.dir)
	srv.Publish(rec)
	var ln net.Listener
	for {
		ln, err = net.Listen("tcp", b.addr)
		if err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.srv = srv
	b.hs = &http.Server{Handler: srv.Handler()}
	go b.hs.Serve(ln)
	return nil
}

// shardGens probes the router /healthz for each shard's generation.
func (cl *expCluster) shardGens() (map[int]uint64, error) {
	resp, err := cl.httpc.Get(cl.cleanURL + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h struct {
		Shards []struct {
			ID  int    `json:"id"`
			Gen uint64 `json:"gen"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, err
	}
	gens := map[int]uint64{}
	for _, s := range h.Shards {
		gens[s.ID] = s.Gen
	}
	return gens, nil
}

// awaitRollout polls until every shard's generation has advanced past its
// pre-rollout value and the router reports the drain finished.
func (cl *expCluster) awaitRollout(pre map[int]uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := cl.httpc.Get(cl.cleanURL + "/healthz")
		if err == nil {
			var h struct {
				Status  string `json:"status"`
				Rollout bool   `json:"rollout"`
				Shards  []struct {
					ID  int    `json:"id"`
					Gen uint64 `json:"gen"`
				} `json:"shards"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if derr == nil && !h.Rollout && h.Status == "ok" {
				advanced := len(h.Shards) == cl.nShards
				for _, s := range h.Shards {
					if s.Gen <= pre[s.ID] {
						advanced = false
					}
				}
				if advanced {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rollout did not complete within %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (cl *expCluster) close() {
	if cl.cleanFront != nil {
		cl.cleanFront.Close()
	}
	if cl.chaosFront != nil {
		cl.chaosFront.Close()
	}
	for _, b := range cl.backends {
		if b.hs != nil {
			b.hs.Close()
		}
	}
	for _, d := range cl.dirs {
		os.RemoveAll(d)
	}
}

// stream is a deterministic (src, dst) stream over the whole source
// dimension — queries cross shard boundaries by construction.
func (cl *expCluster) stream(worker int) func() (src, dst int) {
	n := cl.m.N
	x := uint64(cl.seed)*0x9e3779b97f4a7c15 + uint64(worker+1)*0xbf58476d1ce4e5b9
	return func() (src, dst int) {
		x = x*6364136223846793005 + 1442695040888963407
		return int((x >> 33) % uint64(n)), int(x % uint64(n))
	}
}

// clusterLoad aggregates one phase's validated load.
type clusterLoad struct {
	ref                       [][]int64
	total, ok, wrong, refused atomic.Int64
	httpc                     *http.Client
}

func newClusterLoad(ref [][]int64) *clusterLoad {
	return &clusterLoad{ref: ref, httpc: &http.Client{Timeout: 10 * time.Second}}
}

func (l *clusterLoad) errors() int64 { return l.total.Load() - l.ok.Load() }

// dist issues one validated /dist through the router. A non-200 is an
// error; a 200 disagreeing with the reference matrix is wrong.
func (l *clusterLoad) dist(base string, src, dst int) {
	l.total.Add(1)
	resp, err := l.httpc.Get(fmt.Sprintf("%s/dist?src=%d&dst=%d", base, src, dst))
	if err != nil {
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return
	}
	var d struct {
		Reachable bool   `json:"reachable"`
		Dist      *int64 `json:"dist"`
	}
	if json.Unmarshal(body, &d) != nil {
		l.wrong.Add(1)
		return
	}
	l.ok.Add(1)
	if bad := l.check(src, dst, d.Reachable, d.Dist); bad {
		l.wrong.Add(1)
	}
}

// batch issues one validated /batch of `size` queries through the router.
// A 503 refusal counts as refused (the generation gate working as
// designed); per-query 502 entries count the batch as an error; any
// mismatched 200 payload is wrong.
func (l *clusterLoad) batch(base string, next func() (int, int), size int) {
	l.total.Add(1)
	type q struct {
		Src int `json:"src"`
		Dst int `json:"dst"`
	}
	qs := make([]q, size)
	for i := range qs {
		qs[i].Src, qs[i].Dst = next()
	}
	body, _ := json.Marshal(map[string]any{"queries": qs})
	resp, err := l.httpc.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusServiceUnavailable {
		l.refused.Add(1)
		return
	}
	if resp.StatusCode != http.StatusOK {
		return
	}
	var out struct {
		Gen     uint64 `json:"gen"`
		Results []struct {
			Src       int    `json:"src"`
			Dst       int    `json:"dst"`
			Reachable bool   `json:"reachable"`
			Dist      *int64 `json:"dist"`
			Error     string `json:"error"`
		} `json:"results"`
	}
	if json.Unmarshal(raw, &out) != nil || len(out.Results) != size || out.Gen == 0 {
		l.wrong.Add(1)
		return
	}
	allClean := true
	for i, r := range out.Results {
		if r.Src != qs[i].Src || r.Dst != qs[i].Dst {
			l.wrong.Add(1)
			return
		}
		if r.Error != "" {
			allClean = false
			continue
		}
		if l.check(r.Src, r.Dst, r.Reachable, r.Dist) {
			l.wrong.Add(1)
			return
		}
	}
	if allClean {
		l.ok.Add(1)
	}
}

// check returns true when the answer disagrees with the reference matrix.
func (l *clusterLoad) check(src, dst int, reachable bool, dist *int64) bool {
	want := l.ref[src][dst]
	if want >= graph.Inf {
		return reachable || dist != nil
	}
	return dist == nil || *dist != want
}
