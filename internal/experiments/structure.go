package experiments

import (
	"fmt"
	"math"

	"repro/internal/blocker"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/cssp"
	"repro/internal/graph"
	"repro/internal/shortrange"
)

func init() {
	register("F1", f1)
	register("E-CSSSP", eCSSSP)
	register("E-BLK", eBlk)
	register("E-SR", eSR)
}

// f1 reproduces Figure 1: plain h-hop parent pointers are not h-hop trees;
// the 2h-truncation CSSSP is.
func f1(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1: naive h-hop parent chains vs CSSSP",
		Headers: []string{"graph", "h", "naive chains >h (or broken)", "CSSSP violations", "CSSSP rounds"},
	}
	families := []struct {
		name    string
		g       *graph.Graph
		h       int
		sources []int
	}{
		{"fig1 instance", fig1Graph(), 2, []int{0}},
		{"zeroheavy", graph.ZeroHeavy(24, 80, 0.5, graph.GenOpts{Seed: cfg.Seed, MaxW: 6, Directed: true}), 3, []int{0, 8, 16}},
		{"random", graph.Random(24, 80, graph.GenOpts{Seed: cfg.Seed, MaxW: 6, ZeroFrac: 0.3, Directed: true}), 4, []int{0, 12}},
	}
	for _, fam := range families {
		// Naive: run Algorithm 1 at h directly and walk parent chains.
		direct, err := core.Run(fam.g, core.Opts{Sources: fam.sources, H: fam.h})
		if err != nil {
			return nil, err
		}
		deep := 0
		for i := range fam.sources {
			for v := 0; v < fam.g.N(); v++ {
				if direct.Parent[i][v] < 0 {
					continue
				}
				depth, ok := chainDepth(direct.Parent[i], fam.sources[i], v, fam.g.N())
				if !ok || depth > fam.h {
					deep++
				}
			}
		}
		coll, err := cssp.Build(fam.g, fam.sources, fam.h, 0, congest.Config{})
		if err != nil {
			return nil, err
		}
		bad := coll.Verify(fam.g)
		t.AddRow(fam.name, fam.h, deep, len(bad), coll.Stats.Rounds)
	}
	t.Note("naive = parent pointers of a direct h-hop Algorithm 1 run; 'broken' counts chains that do not reach the root")
	return t, nil
}

// fig1Graph is the instance from cssp.TestFigureOnePhenomenon.
func fig1Graph() *graph.Graph {
	g := graph.New(4, true)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 2, 0)
	g.MustAddEdge(2, 1, 0)
	g.MustAddEdge(1, 3, 0)
	return g
}

// chainDepth walks parent pointers from v toward root; ok=false on a break
// or cycle.
func chainDepth(parent []int, root, v, n int) (int, bool) {
	depth := 0
	for cur := v; cur != root; cur = parent[cur] {
		if parent[cur] < 0 || depth > n {
			return depth, false
		}
		depth++
	}
	return depth, true
}

// eCSSSP verifies Definition III.3 across families and reports construction
// cost against the √(Δhk) shape (Lemma III.5).
func eCSSSP(cfg Config) (*Table, error) {
	n, m := 30, 100
	if cfg.Small {
		n, m = 20, 64
	}
	t := &Table{
		ID:      "E-CSSSP",
		Title:   "CSSSP construction (Lemmas III.4–III.5): consistency and cost",
		Headers: []string{"k", "h", "Δ(2h)", "violations", "rounds", "2√(2khΔ)+k+2h", "dropped by repair"},
	}
	for _, k := range []int{4, 8} {
		for _, h := range []int{3, 6} {
			g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed + int64(k*h), MaxW: 6, ZeroFrac: 0.35, Directed: true})
			sources := make([]int, 0, k)
			for i := 0; i < k; i++ {
				sources = append(sources, (i*n)/k)
			}
			delta := graph.HHopDelta(g, sources, 2*h)
			if delta == 0 {
				delta = 1
			}
			coll, err := cssp.Build(g, sources, h, delta, congest.Config{})
			if err != nil {
				return nil, err
			}
			bad := coll.Verify(g)
			// Count vertices the repair phase dropped relative to the raw
			// truncation (reachable in ≤h recorded hops but not in a tree).
			dropped := 0
			for i := range sources {
				for v := 0; v < n; v++ {
					if coll.Parent[i][v] < 0 && coll.RawDist[i][v] < graph.Inf {
						hh := graph.HHopDistances(g, sources[i], h)
						if hh[v] < graph.Inf && coll.RawDist[i][v] == hh[v] {
							dropped++
						}
					}
				}
			}
			bound := int64(2*math.Sqrt(float64(int64(2*k*h)*delta))) + int64(k) + int64(2*h)
			t.AddRow(k, h, delta, len(bad), coll.Stats.Rounds, bound, dropped)
		}
	}
	t.Note("'dropped by repair' counts h-hop-reachable vertices excluded by the parent re-selection (legitimate per Definition III.3 when their true δ needs >h hops)")
	return t, nil
}

// eBlk sweeps h: blocker size against the O((n ln n)/h) guarantee and the
// per-phase round costs, including Algorithm 4's k+h−1 bound per pick.
func eBlk(cfg Config) (*Table, error) {
	n, m := 36, 130
	if cfg.Small {
		n, m = 24, 80
	}
	t := &Table{
		ID:      "E-BLK",
		Title:   "Blocker sets (Sec. III-B): size and phase costs vs h",
		Headers: []string{"h", "|Q|", "(n ln n)/h", "claim rds", "score rds", "select rds", "update rds", "upd/pick", "k+h-1"},
	}
	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 5, ZeroFrac: 0.3, Directed: true})
	sources := make([]int, n)
	for v := range sources {
		sources[v] = v
	}
	for _, h := range []int{2, 3, 5, 8} {
		coll, err := cssp.Build(g, sources, h, 0, congest.Config{})
		if err != nil {
			return nil, err
		}
		res, err := blocker.Compute(g, coll, congest.Config{})
		if err != nil {
			return nil, err
		}
		if bad := blocker.VerifyCoverage(coll, res.Q); len(bad) != 0 {
			return nil, fmt.Errorf("h=%d: blocker does not cover: %s", h, bad[0])
		}
		guarantee := int(float64(n) * math.Log(float64(n)) / float64(h))
		perPick := "-"
		if len(res.Q) > 0 {
			perPick = fmt.Sprintf("%.1f", float64(res.PhaseRounds["descendants"])/float64(len(res.Q)))
		}
		t.AddRow(h, len(res.Q), guarantee, res.PhaseRounds["claims"], res.PhaseRounds["scores"],
			res.PhaseRounds["select"], res.PhaseRounds["descendants"], perPick, len(sources)+h-1)
	}
	t.Note("'upd/pick' is the measured Algorithm 4 (+ancestor) rounds per blocker pick; the paper bounds it by k+h−1")
	return t, nil
}

// eSR measures Algorithm 2 (Lemma II.15): the snapshot claim (estimates ≤
// h-hop distance by round ⌈Δγ⌉+h) and congestion ≤ √h.
func eSR(cfg Config) (*Table, error) {
	n, m := 40, 130
	if cfg.Small {
		n, m = 24, 80
	}
	t := &Table{
		ID:      "E-SR",
		Title:   "Short-range Algorithm 2 (Lemma II.15): dilation and congestion",
		Headers: []string{"h", "zeroFrac", "snap viol", "pairs", "snap round", "final rounds", "congestion", "√h"},
	}
	for _, h := range []int{4, 9, 16} {
		for _, zf := range []float64{0, 0.5} {
			g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed + int64(h), MaxW: 5, ZeroFrac: zf, MinW: 1, Directed: true})
			sources := []int{0, n / 2}
			delta := graph.HHopDelta(g, sources, h)
			if delta == 0 {
				delta = 1
			}
			res, err := shortrange.Run(g, shortrange.Opts{Sources: sources, H: h, Delta: delta})
			if err != nil {
				return nil, err
			}
			viol, pairs := 0, 0
			for i, s := range sources {
				want := graph.HHopDistances(g, s, h)
				for v := 0; v < n; v++ {
					if want[v] >= graph.Inf {
						continue
					}
					pairs++
					if res.Snap[i][v] > want[v] {
						viol++
					}
				}
			}
			t.AddRow(h, fmt.Sprintf("%.1f", zf), viol, pairs, res.SnapRound,
				res.Stats.Rounds, res.Stats.MaxLinkCongestion, fmt.Sprintf("%.1f", math.Sqrt(float64(h))))
		}
	}
	t.Note("snap viol counts estimates still above their h-hop distance at the claimed round ⌈Δγ⌉+h")
	return t, nil
}
