package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/oracle"
)

func init() {
	register("E-SERVE", eServe)
}

// eServe drives the apspd serving layer (internal/oracle) with a closed-loop
// load generator: W workers each issue a fixed quota of queries against a
// published snapshot over real HTTP, for the point-distance, path and batch
// endpoints. Every /dist answer is checked against the in-memory matrices
// and every /path answer against the snapshot walker, so the table doubles
// as an end-to-end differential gate for the serving stack; throughput and
// latency columns are wall-clock and therefore machine-dependent (unlike
// every other experiment in this package, which reports logical costs).
func eServe(cfg Config) (*Table, error) {
	n, m, k := 256, 1024, 32
	perWorker := 1500
	levels := []int{1, 8, 32}
	if cfg.Small {
		n, m, k = 64, 256, 8
		perWorker = 150
		levels = []int{1, 4}
	}

	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
	sources := make([]int, k)
	dist := make([][]int64, k)
	parent := make([][]int, k)
	for i := range sources {
		src := i * (n / k)
		sources[i] = src
		dist[i], parent[i] = graph.DijkstraTree(g, src)
	}
	// The serving layer is the system under test, so the snapshot comes from
	// the sequential oracle; the checkpoint→compute→serve route is covered
	// by the oracle package's differential and handoff tests.
	snap, err := oracle.Build(g, oracle.BuildInput{Alg: "dijkstra", Sources: sources, Dist: dist, Parent: parent}, oracle.BuildOpts{})
	if err != nil {
		return nil, err
	}
	srv := &oracle.Server{Store: &oracle.Store{}, Cache: oracle.NewPathCache(4096), Met: oracle.NewMetrics(), MaxInflight: 1024}
	srv.Publish(snap)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		// The default per-host idle-connection cap would force most of a
		// 32-worker closed loop through fresh TCP connections.
		tr.MaxIdleConnsPerHost = levels[len(levels)-1] * 2
	}

	t := &Table{
		ID:      "E-SERVE",
		Title:   "apspd serving layer: closed-loop throughput and latency (validated answers)",
		Headers: []string{"endpoint", "workers", "queries", "qps", "p50(us)", "p99(us)"},
	}

	for _, kind := range []string{"dist", "path", "batch16"} {
		for _, workers := range levels {
			res, err := serveLoop(client, ts.URL, snap, kind, workers, perWorker, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s x%d: %w", kind, workers, err)
			}
			t.AddRow(kind, workers, res.queries,
				fmt.Sprintf("%.0f", res.qps),
				fmt.Sprintf("%.0f", res.quantile(0.50)),
				fmt.Sprintf("%.0f", res.quantile(0.99)))
		}
	}

	t.Note(fmt.Sprintf("n=%d k=%d snapshot; every dist answer checked against the matrices, every path answer against the walker", n, k))
	t.Note("batch16 posts 16 point queries per request; qps counts individual queries, latency is per request")
	t.Note("qps and latency are wall-clock (machine-dependent); the validation columns of this experiment are the deterministic part")
	return t, nil
}

// serveResult aggregates one load-generation cell.
type serveResult struct {
	queries int
	qps     float64
	lats    []time.Duration // one sample per HTTP request, sorted
}

func (r *serveResult) quantile(q float64) float64 {
	if len(r.lats) == 0 {
		return 0
	}
	i := int(q*float64(len(r.lats))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.lats) {
		i = len(r.lats) - 1
	}
	return float64(r.lats[i]) / float64(time.Microsecond)
}

// serveLoop runs one closed-loop cell: `workers` goroutines, each issuing
// `perWorker` requests of the given kind, validating every answer.
func serveLoop(client *http.Client, base string, snap *oracle.Snapshot, kind string, workers, perWorker int, seed int64) (*serveResult, error) {
	sources := snap.Sources()
	n := snap.N()
	const batchSize = 16

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		allLats  []time.Duration
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deterministic per-worker query stream (splitmix-style LCG).
			x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(w+1)*0xbf58476d1ce4e5b9
			next := func() (src, row, dst int) {
				x = x*6364136223846793005 + 1442695040888963407
				i := int((x >> 33) % uint64(len(sources)))
				r, _ := snap.Row(sources[i])
				return sources[i], r, int(x % uint64(n))
			}
			lats := make([]time.Duration, 0, perWorker)
			fail := func(err error) {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
			for q := 0; q < perWorker; q++ {
				var err error
				t0 := time.Now()
				switch kind {
				case "dist":
					src, row, dst := next()
					err = serveCheckDist(client, base, snap, src, row, dst)
				case "path":
					src, row, dst := next()
					err = serveCheckPath(client, base, snap, src, row, dst)
				case "batch16":
					err = serveCheckBatch(client, base, snap, next, batchSize)
				default:
					err = fmt.Errorf("unknown kind %q", kind)
				}
				lats = append(lats, time.Since(t0))
				if err != nil {
					fail(fmt.Errorf("worker %d query %d: %w", w, q, err))
					return
				}
			}
			mu.Lock()
			allLats = append(allLats, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(allLats, func(i, j int) bool { return allLats[i] < allLats[j] })
	queries := workers * perWorker
	if kind == "batch16" {
		queries *= batchSize
	}
	return &serveResult{
		queries: queries,
		qps:     float64(queries) / elapsed.Seconds(),
		lats:    allLats,
	}, nil
}

func serveGet(client *http.Client, url string, out any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("bad JSON %q: %w", body, err)
		}
	}
	return resp.StatusCode, nil
}

func serveCheckDist(client *http.Client, base string, snap *oracle.Snapshot, src, row, dst int) error {
	var resp struct {
		Reachable bool   `json:"reachable"`
		Dist      *int64 `json:"dist"`
	}
	status, err := serveGet(client, fmt.Sprintf("%s/dist?src=%d&dst=%d", base, src, dst), &resp)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("dist(%d,%d): status %d", src, dst, status)
	}
	want := snap.DistAt(row, dst)
	if want >= graph.Inf {
		if resp.Reachable || resp.Dist != nil {
			return fmt.Errorf("dist(%d,%d): unreachable pair answered %+v", src, dst, resp)
		}
		return nil
	}
	if resp.Dist == nil || *resp.Dist != want {
		return fmt.Errorf("dist(%d,%d) = %+v, want %d", src, dst, resp, want)
	}
	return nil
}

func serveCheckPath(client *http.Client, base string, snap *oracle.Snapshot, src, row, dst int) error {
	var resp struct {
		Dist int64 `json:"dist"`
		Path []int `json:"path"`
	}
	status, err := serveGet(client, fmt.Sprintf("%s/path?src=%d&dst=%d", base, src, dst), &resp)
	if err != nil {
		return err
	}
	if snap.DistAt(row, dst) >= graph.Inf {
		if status != http.StatusNotFound {
			return fmt.Errorf("path(%d,%d): unreachable pair status %d", src, dst, status)
		}
		return nil
	}
	if status != http.StatusOK {
		return fmt.Errorf("path(%d,%d): status %d", src, dst, status)
	}
	wantPath, werr := snap.Path(row, dst)
	if werr != nil {
		return fmt.Errorf("path(%d,%d): walker refused: %w", src, dst, werr)
	}
	if len(resp.Path) != len(wantPath) || resp.Dist != snap.DistAt(row, dst) {
		return fmt.Errorf("path(%d,%d) = %+v, want %v", src, dst, resp, wantPath)
	}
	for i := range wantPath {
		if resp.Path[i] != wantPath[i] {
			return fmt.Errorf("path(%d,%d)[%d] = %d, want %d", src, dst, i, resp.Path[i], wantPath[i])
		}
	}
	return nil
}

func serveCheckBatch(client *http.Client, base string, snap *oracle.Snapshot, next func() (src, row, dst int), size int) error {
	type item struct {
		Src int `json:"src"`
		Dst int `json:"dst"`
	}
	items := make([]item, size)
	rows := make([]int, size)
	for i := range items {
		src, row, dst := next()
		items[i] = item{Src: src, Dst: dst}
		rows[i] = row
	}
	body, err := json.Marshal(struct {
		Queries []item `json:"queries"`
	}{items})
	if err != nil {
		return err
	}
	resp, err := client.Post(base+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("batch: status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Results []struct {
			Reachable bool   `json:"reachable"`
			Dist      *int64 `json:"dist"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return fmt.Errorf("batch: bad JSON %q: %w", raw, err)
	}
	if len(out.Results) != size {
		return fmt.Errorf("batch: %d results, want %d", len(out.Results), size)
	}
	for i, r := range out.Results {
		want := snap.DistAt(rows[i], items[i].Dst)
		if want >= graph.Inf {
			if r.Reachable || r.Dist != nil {
				return fmt.Errorf("batch[%d]: unreachable pair answered %+v", i, r)
			}
			continue
		}
		if r.Dist == nil || *r.Dist != want {
			return fmt.Errorf("batch[%d] = %+v, want %d", i, r, want)
		}
	}
	return nil
}
