package experiments

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/blocker"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/cssp"
	"repro/internal/graph"
	"repro/internal/hssp"
	"repro/internal/scaling"
	"repro/internal/shortrange"
)

func init() {
	register("SCORECARD", scorecard)
}

// scorecard runs a check per paper claim and reports a verdict:
// CONFIRMED (measured as claimed), REFUTED (counterexample), or
// CONFIRMED* (confirmed for the repaired/restricted reading; see the
// note). It is the one-screen summary of the reproduction.
func scorecard(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "SCORECARD",
		Title:   "Reproduction scorecard: verdict per paper claim",
		Headers: []string{"claim", "statement", "verdict", "evidence"},
	}
	n := 28
	if cfg.Small {
		n = 18
	}
	g := graph.ZeroHeavy(n, 3*n+n/2, 0.4, graph.GenOpts{Seed: cfg.Seed, MaxW: 7, Directed: true})
	sources := []int{0, n / 3, 2 * n / 3}
	h := 5
	delta := graph.HHopDelta(g, sources, h)
	if delta == 0 {
		delta = 1
	}

	// --- Theorem I.1 / Lemma II.14: correctness and round bound.
	res, err := core.Run(g, core.Opts{Sources: sources, H: h, Delta: delta, Audit: true})
	if err != nil {
		return nil, err
	}
	exact := true
	for i, s := range sources {
		want := graph.HHopDistances(g, s, h)
		for v := 0; v < n; v++ {
			if res.Dist[i][v] != want[v] {
				exact = false
			}
		}
	}
	t.AddRow("Thm I.1 correctness", "(h,k)-SSP exact with zero weights",
		verdict(exact, "CONFIRMED*", "REFUTED"),
		"Pareto discipline; literal pseudocode refuted (see rows below)")
	t.AddRow("Thm I.1 rounds", "≤ 2√(khΔ)+k+h",
		verdict(int64(res.Stats.Rounds) <= res.Bound, "CONFIRMED", "EXCEEDED"),
		fmt.Sprintf("%d vs %d", res.Stats.Rounds, res.Bound))
	t.AddRow("Lemma II.12 (Inv 1)", "entries arrive before ⌈κ⌉+pos",
		verdict(res.Inv1Violations == 0, "CONFIRMED", "REFUTED"),
		fmt.Sprintf("%d violations audited", res.Inv1Violations))
	t.AddRow("Lemma II.11 (Inv 2)", "per-source entries ≤ h/γ+1",
		verdict(res.Inv2Violations == 0, "CONFIRMED", "REFUTED"),
		fmt.Sprintf("%d violations — correct runs can need min(h,Δ)+1 > h/γ+1 (finding F-1)", res.Inv2Violations))

	// --- The literal pseudocode: counterexample instances.
	lit := paperLiteralLoses()
	t.AddRow("Alg 1 INSERT eviction", "evict closest non-SP above on insert",
		verdict(lit, "REFUTED", "UNREPRODUCED"),
		"8-node instance loses an h-hop distance (core/counterexample_test.go)")

	// --- APSP regime: literal machinery is fine.
	gA := graph.Random(16, 48, graph.GenOpts{Seed: cfg.Seed, MaxW: 5, ZeroFrac: 0.3, Directed: true})
	deltaA := graph.Delta(gA)
	srcA := make([]int, gA.N())
	for v := range srcA {
		srcA[v] = v
	}
	resA, err := core.Run(gA, core.Opts{Sources: srcA, H: gA.N() - 1, Delta: deltaA, Audit: true,
		Mode: core.ModePaper, Evict: core.EvictAllInserts, GateByUpdatedKey: true})
	if err != nil {
		return nil, err
	}
	okA := resA.Inv2Violations == 0 && int64(resA.Stats.Rounds) <= resA.Bound
	wantA := graph.APSP(gA)
	for s := 0; s < gA.N(); s++ {
		for v := 0; v < gA.N(); v++ {
			if resA.Dist[s][v] != wantA[s][v] {
				okA = false
			}
		}
	}
	t.AddRow("Thm I.1(ii) APSP", "literal rules + 2n√Δ+2n in the APSP regime",
		verdict(okA, "CONFIRMED", "REFUTED"),
		fmt.Sprintf("h=n−1: exact, Inv2=%d, %d ≤ %d rounds", resA.Inv2Violations, resA.Stats.Rounds, resA.Bound))

	// --- Lemma II.15: short-range.
	sr, err := shortrange.Run(g, shortrange.Opts{Sources: sources, H: h, Delta: delta})
	if err != nil {
		return nil, err
	}
	snapOK := true
	for i, s := range sources {
		want := graph.HHopDistances(g, s, h)
		for v := 0; v < n; v++ {
			if want[v] < graph.Inf && sr.Snap[i][v] > want[v] {
				snapOK = false
			}
		}
	}
	t.AddRow("Lemma II.15 dilation", "short-range ≤ h-hop values by ⌈Δγ⌉+h",
		verdict(snapOK, "CONFIRMED", "REFUTED"),
		fmt.Sprintf("snapshot at round %d", sr.SnapRound))
	congOK := float64(sr.Stats.MaxLinkCongestion) <= math.Sqrt(float64(h))*math.Sqrt(float64(len(sources)))+2
	t.AddRow("Lemma II.15 congestion", "≤ √h per source (+O(1))",
		verdict(congOK, "CONFIRMED", "EXCEEDED"),
		fmt.Sprintf("measured %d for k=%d, h=%d", sr.Stats.MaxLinkCongestion, len(sources), h))

	// --- Lemma III.4: CSSSP.
	coll, err := cssp.Build(g, sources, h, 0, congest.Config{})
	if err != nil {
		return nil, err
	}
	csspOK := len(coll.Verify(g)) == 0 && len(coll.VerifyLemmas()) == 0
	t.AddRow("Lemma III.4 (CSSSP)", "2h-truncation yields a consistent collection",
		verdict(csspOK, "CONFIRMED*", "REFUTED"),
		"requires the repair phase of internal/cssp (finding F-3)")

	// --- Definition III.1 / Lemma III.8: blocker.
	blk, err := blocker.Compute(g, coll, congest.Config{})
	if err != nil {
		return nil, err
	}
	covOK := len(blocker.VerifyCoverage(coll, blk.Q)) == 0
	t.AddRow("Def III.1 coverage", "greedy Q hits every depth-h path",
		verdict(covOK, "CONFIRMED", "REFUTED"),
		fmt.Sprintf("|Q| = %d", len(blk.Q)))
	updOK := true
	if len(blk.Q) > 0 {
		updOK = blk.PhaseRounds["descendants"]/len(blk.Q) <= len(sources)+h-1
	}
	t.AddRow("Lemma III.8 (Alg 4)", "descendant updates ≤ k+h−1 rounds per pick",
		verdict(updOK, "CONFIRMED", "EXCEEDED"),
		fmt.Sprintf("avg %v rounds/pick vs %d", avgPerPick(blk), len(sources)+h-1))

	// --- Theorems I.2/I.3: Algorithm 3 exact.
	a3, err := hssp.Run(g, hssp.Opts{H: h})
	if err != nil {
		return nil, err
	}
	a3OK := true
	wantAll := graph.APSP(g)
	for s := 0; s < n; s++ {
		for v := 0; v < n; v++ {
			if a3.Dist[s][v] != wantAll[s][v] {
				a3OK = false
			}
		}
	}
	t.AddRow("Thms I.2/I.3 (Alg 3)", "CSSSP+blocker+SSSP computes exact APSP",
		verdict(a3OK, "CONFIRMED", "REFUTED"),
		fmt.Sprintf("%d rounds, |Q| = %d", a3.Stats.Rounds, len(a3.Q)))

	// --- Theorem I.5: approximation.
	apx, err := approx.Run(g, approx.Opts{Eps: 0.5})
	if err != nil {
		return nil, err
	}
	stretch, mism := approx.CheckStretch(g, apx)
	t.AddRow("Thm I.5 (approx)", "(1+ε) stretch with zero weights",
		verdict(mism == 0 && stretch <= 1.5, "CONFIRMED", "REFUTED"),
		fmt.Sprintf("stretch %.4f ≤ 1.50, %d mismatches", stretch, mism))

	// --- Sec. V future work.
	sc, err := scaling.Run(g, scaling.Opts{Sources: sources})
	if err != nil {
		return nil, err
	}
	scOK := true
	for i, s := range sources {
		want := graph.Dijkstra(g, s)
		for v := 0; v < n; v++ {
			if sc.Dist[i][v] != want[v] {
				scOK = false
			}
		}
	}
	t.AddRow("Sec. V future work", "pipelining + Gabow scaling (exact, ∝ log W)",
		verdict(scOK, "IMPLEMENTED", "REFUTED"),
		fmt.Sprintf("%d phases, %d rounds", sc.Bits+1, sc.Stats.Rounds))

	t.Note("CONFIRMED* = holds for the repaired reading; the literal pseudocode is refuted by pinned counterexamples")
	t.Note("full accounts: EXPERIMENTS.md findings F-1..F-4")
	return t, nil
}

// paperLiteralLoses replays the pinned 8-node eviction counterexample
// (core/counterexample_test.go) and reports whether the literal rules
// still lose node 3's distance (true = refutation reproduced).
func paperLiteralLoses() bool {
	g := graph.New(8, true)
	for _, e := range [][3]int64{
		{0, 2, 4}, {1, 2, 0}, {1, 7, 0}, {2, 4, 0}, {2, 6, 0}, {2, 6, 3},
		{2, 7, 3}, {3, 6, 3}, {4, 1, 0}, {4, 1, 2}, {4, 2, 0}, {5, 1, 5},
		{5, 3, 3}, {5, 7, 0}, {7, 3, 0}, {7, 6, 0},
	} {
		g.MustAddEdge(int(e[0]), int(e[1]), e[2])
	}
	res, err := core.Run(g, core.Opts{Sources: []int{0}, H: 4, Delta: 7,
		Mode: core.ModePaper, Evict: core.EvictAllInserts, GateByUpdatedKey: true})
	if err != nil {
		return false
	}
	return res.Dist[0][3] != 7 // truth is 7; the literal rules lose it
}

func verdict(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}

func avgPerPick(blk *blocker.Result) string {
	if len(blk.Q) == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(blk.PhaseRounds["descendants"])/float64(len(blk.Q)))
}
