package experiments

import (
	"fmt"
	"reflect"

	"repro/internal/congest"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/hssp"
)

func init() {
	register("E-FAULTS", eFaults)
}

// eFaults measures the reliability shim (internal/faults) under a sweep of
// adversarial plans: the logical CONGEST cost must be bit-identical to the
// fault-free run — that is the synchronizer's correctness claim — while
// the physical-delivery overhead (retransmits, duplicate suppressions,
// sub-rounds per logical round) quantifies what restoring synchrony costs.
// With Config.Faults set, only that plan is swept.
func eFaults(cfg Config) (*Table, error) {
	n, m := 48, 160
	if cfg.Small {
		n, m = 24, 80
	}
	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})

	plans := []faults.Plan{
		{Seed: cfg.FaultSeed},              // perfect network, shim engaged
		{Seed: cfg.FaultSeed, MaxDelay: 4}, // delay only
		{Seed: cfg.FaultSeed, Drop: 0.2},   // drops + retransmit
		{Seed: cfg.FaultSeed, Dup: 0.1},    // duplication
		faults.All(cfg.FaultSeed),          // everything
	}
	if cfg.Faults != "" {
		p, err := faults.Parse(cfg.Faults)
		if err != nil {
			return nil, err
		}
		if p.Seed == 0 {
			p.Seed = cfg.FaultSeed
		}
		plans = []faults.Plan{p}
	}

	t := &Table{
		ID:      "E-FAULTS",
		Title:   "Adversarial delivery: logical invariance and the shim's physical cost",
		Headers: []string{"plan", "rounds", "messages", "physSends", "retrans", "dupDiscard", "subRounds/round"},
	}

	run := func(net congest.Network) ([][]int64, congest.Stats, error) {
		res, err := hssp.Run(g, hssp.Opts{Sources: []int{0, 1, 2}, Workers: cfg.Workers, Network: net})
		if err != nil {
			return nil, congest.Stats{}, err
		}
		return res.Dist, res.Stats, nil
	}

	baseDist, baseStats, err := run(nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("(no shim)", baseStats.Rounds, baseStats.Messages, "-", "-", "-", "-")

	for _, p := range plans {
		nw := faults.New(p)
		dist, stats, err := run(nw)
		if err != nil {
			return nil, fmt.Errorf("plan %q: %w", p, err)
		}
		if !reflect.DeepEqual(dist, baseDist) {
			return nil, fmt.Errorf("plan %q: distances diverged from fault-free run", p)
		}
		if stats != baseStats {
			return nil, fmt.Errorf("plan %q: logical stats diverged: %+v vs %+v", p, stats, baseStats)
		}
		phys := nw.Phys()
		t.AddRow(p.String(), stats.Rounds, stats.Messages,
			phys.DataSends+phys.Retransmits+phys.DupCopies, phys.Retransmits,
			phys.DupDeliveries, ratio(phys.SubRounds, int64(stats.Rounds)))
	}
	t.Note("rounds and messages are asserted bit-identical to the fault-free baseline for every plan")
	t.Note("physSends counts all data transmissions incl. retransmits and injected duplicates")
	return t, nil
}
