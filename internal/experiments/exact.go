package experiments

import (
	"fmt"
	"math"

	"repro/internal/bellman"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hssp"
)

func init() {
	register("T1-exact", t1Exact)
	register("E-T11", eT11)
	register("E-T1213", eT1213)
}

// t1Exact regenerates the paper's Table I (exact weighted APSP): measured
// rounds of every implementable competitor on the same graphs, against the
// theoretical reference curves. Absolute constants differ from the paper's
// O(·) rows by design; the comparison of interest is who wins and how the
// gaps scale.
func t1Exact(cfg Config) (*Table, error) {
	sizes := []int{24, 32, 48, 64}
	if cfg.Small {
		sizes = []int{16, 24}
	}
	t := &Table{
		ID:      "T1-exact",
		Title:   "Table I (exact APSP): measured rounds per algorithm",
		Headers: []string{"n", "Δ", "Alg1 (this paper)", "Alg3 (this paper)", "Bellman-Ford", "bound 2n√Δ+2n", "n^1.5 ([3])", "Alg1/bound"},
	}
	for _, n := range sizes {
		g := graph.Random(n, 3*n, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
		delta := graph.Delta(g)

		a1, err := core.APSP(g, delta, false)
		if err != nil {
			return nil, fmt.Errorf("Alg1 n=%d: %w", n, err)
		}
		a3, err := hssp.Run(g, hssp.Opts{Delta: delta})
		if err != nil {
			return nil, fmt.Errorf("Alg3 n=%d: %w", n, err)
		}
		sources := make([]int, n)
		for v := range sources {
			sources[v] = v
		}
		bf, err := bellman.Run(g, bellman.Opts{Sources: sources, H: n - 1})
		if err != nil {
			return nil, fmt.Errorf("BF n=%d: %w", n, err)
		}
		// Validate all three against the oracle before reporting numbers.
		want := graph.APSP(g)
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if a1.Dist[s][v] != want[s][v] || a3.Dist[s][v] != want[s][v] || bf.Dist[s][v] != want[s][v] {
					return nil, fmt.Errorf("n=%d: an algorithm returned a wrong distance at (%d,%d)", n, s, v)
				}
			}
		}
		n32 := int64(math.Ceil(math.Pow(float64(n), 1.5)))
		t.AddRow(n, delta, a1.Stats.Rounds, a3.Stats.Rounds, bf.Stats.Rounds,
			a1.Bound, n32, ratio(int64(a1.Stats.Rounds), a1.Bound))
	}
	t.Note("all outputs validated against Dijkstra before measuring")
	t.Note("Alg3 = CSSSP + blocker + per-blocker SSSP (Theorems I.2/I.3), h auto-chosen")
	return t, nil
}

// eT11 validates Theorem I.1's round bound 2√(khΔ)+k+h across an (h,k)
// sweep.
func eT11(cfg Config) (*Table, error) {
	n, m := 40, 140
	if cfg.Small {
		n, m = 24, 80
	}
	t := &Table{
		ID:      "E-T11",
		Title:   "Theorem I.1: measured rounds vs 2√(khΔ)+k+h",
		Headers: []string{"k", "h", "Δ", "rounds", "bound", "rounds/bound", "late", "collisions"},
	}
	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 6, ZeroFrac: 0.3, Directed: true})
	for _, k := range []int{1, 4, 8} {
		for _, h := range []int{4, 8, 16} {
			sources := make([]int, 0, k)
			for i := 0; i < k; i++ {
				sources = append(sources, (i*n)/k)
			}
			delta := graph.HHopDelta(g, sources, h)
			if delta == 0 {
				delta = 1
			}
			res, err := core.Run(g, core.Opts{Sources: sources, H: h, Delta: delta})
			if err != nil {
				return nil, err
			}
			for i, s := range sources {
				want := graph.HHopDistances(g, s, h)
				for v := 0; v < n; v++ {
					if res.Dist[i][v] != want[v] {
						return nil, fmt.Errorf("k=%d h=%d: wrong distance", k, h)
					}
				}
			}
			t.AddRow(k, h, delta, res.Stats.Rounds, res.Bound,
				ratio(int64(res.Stats.Rounds), res.Bound), res.LateSends, res.Collisions)
		}
	}
	t.Note("rounds/bound > 1 quantifies the cost of the correct (Pareto) list discipline")
	return t, nil
}

// eT1213 sweeps the maximum weight W to reproduce Corollary I.4's
// crossover: Algorithm 3 (W-sensitive) against Algorithm 1 (Δ-sensitive)
// and the n^{3/2} reference of [3].
func eT1213(cfg Config) (*Table, error) {
	n := 40
	if cfg.Small {
		n = 24
	}
	t := &Table{
		ID:      "E-T1213",
		Title:   "Theorems I.2/I.3 & Corollary I.4: rounds as W grows (fixed n)",
		Headers: []string{"W", "Δ", "Alg1 rounds", "Alg3 rounds", "Alg3 |Q|", "Alg3 h", "n^1.5", "winner"},
	}
	weights := []int64{1, 16, 256, 1024}
	if cfg.Small {
		weights = []int64{1, 16, 256}
	}
	for _, w := range weights {
		minW := w / 4
		g := graph.Random(n, 3*n, graph.GenOpts{Seed: cfg.Seed + int64(w), MinW: minW, MaxW: w, ZeroFrac: 0.1, Directed: true})
		delta := graph.Delta(g)
		a1, err := core.APSP(g, delta, false)
		if err != nil {
			return nil, err
		}
		a3, err := hssp.Run(g, hssp.Opts{Delta: delta})
		if err != nil {
			return nil, err
		}
		want := graph.APSP(g)
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if a1.Dist[s][v] != want[s][v] || a3.Dist[s][v] != want[s][v] {
					return nil, fmt.Errorf("W=%d: wrong distance", w)
				}
			}
		}
		n32 := int64(math.Ceil(math.Pow(float64(n), 1.5)))
		winner := "Alg1"
		if a3.Stats.Rounds < a1.Stats.Rounds {
			winner = "Alg3"
		}
		t.AddRow(w, delta, a1.Stats.Rounds, a3.Stats.Rounds, len(a3.Q), a3.H, n32, winner)
	}
	t.Note("paper's claim: Alg1 scales with √Δ (so with √W); Alg3 trades that for n·|Q| + √(Δhk)")
	return t, nil
}
