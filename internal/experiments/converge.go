package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

func init() {
	register("E-CONV", eConv)
}

// eConv measures Algorithm 1's anytime behaviour: what fraction of the
// final shortest-path distances is already correct at intermediate rounds.
// The pipelined schedule sends small keys first, so distances should
// arrive roughly in key order — near-linear convergence rather than a
// last-minute burst.
func eConv(cfg Config) (*Table, error) {
	n, m := 40, 140
	if cfg.Small {
		n, m = 24, 80
	}
	t := &Table{
		ID:      "E-CONV",
		Title:   "Anytime behaviour: correct distances vs elapsed rounds (Alg 1 APSP)",
		Headers: []string{"round", "% of total rounds", "correct pairs", "fraction"},
	}
	g := graph.ZeroHeavy(n, m, 0.4, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, Directed: true})
	delta := graph.Delta(g)

	// First run to learn the total rounds, second run with snapshots.
	probe, err := core.APSP(g, delta, false)
	if err != nil {
		return nil, err
	}
	total := probe.Stats.Rounds
	if total < 4 {
		return nil, fmt.Errorf("E-CONV: run too short (%d rounds)", total)
	}
	marks := []int{total / 8, total / 4, total / 2, 3 * total / 4, total}
	sources := make([]int, n)
	for v := range sources {
		sources[v] = v
	}
	res, err := core.Run(g, core.Opts{Sources: sources, H: n - 1, Delta: delta, SnapshotRounds: marks})
	if err != nil {
		return nil, err
	}
	want := graph.APSP(g)
	reachable := 0
	for s := 0; s < n; s++ {
		for v := 0; v < n; v++ {
			if want[s][v] < graph.Inf {
				reachable++
			}
		}
	}
	for _, mark := range marks {
		snap := res.Snapshots[mark]
		correct := 0
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if want[s][v] < graph.Inf && snap[s][v] == want[s][v] {
					correct++
				}
			}
		}
		t.AddRow(mark, fmt.Sprintf("%d%%", mark*100/total), correct,
			fmt.Sprintf("%.3f", float64(correct)/float64(reachable)))
	}
	t.Note("small keys are scheduled first, so close pairs resolve early — the pipeline is a usable anytime algorithm")
	return t, nil
}
