package experiments

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/graph"
	"repro/internal/httpfault"
	"repro/internal/oracle"
)

func init() {
	register("E-CHAOS", eChaos)
}

// eChaos is the serving-layer resilience drill: closed-loop load through
// the httpfault injector against the apspd serving stack, with the
// resilient client (retries, backoff, breaker, hedging) bridging the
// faults. Three phases:
//
//	clean  — injector disabled; the overhead baseline and a sanity gate
//	         (every query must succeed).
//	chaos  — the standard all-faults plan (httpfault.All) on a serial
//	         closed loop. Serial execution makes the whole trace a pure
//	         function of the seed: the injected-fault counts, attempt
//	         counts and retry counts in the table are bit-deterministic.
//	crash  — concurrent workers against a real listener while the server
//	         is abruptly killed mid-load and a fresh one is restored from
//	         the autosave directory (oracle.RecoverDir), the in-process
//	         twin of scripts/chaos_smoke.sh's kill -9 drill.
//
// Every 200 answer in every phase is validated against the reference
// matrices, so the experiment doubles as a zero-wrong-answers gate; the
// error-rate bounds are asserted in-line and the run fails loudly when
// they are exceeded.
func eChaos(cfg Config) (*Table, error) {
	n, m, k := 192, 768, 16
	queries := 1200
	workers := 8
	if cfg.Small {
		n, m, k = 64, 256, 8
		queries = 240
		workers = 4
	}

	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
	sources := make([]int, k)
	dist := make([][]int64, k)
	parent := make([][]int, k)
	for i := range sources {
		src := i * (n / k)
		sources[i] = src
		dist[i], parent[i] = graph.DijkstraTree(g, src)
	}
	snap, err := oracle.Build(g, oracle.BuildInput{Alg: "dijkstra", Sources: sources, Dist: dist, Parent: parent}, oracle.BuildOpts{})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E-CHAOS",
		Title:   "serving-layer resilience: fault injection, retries and crash recovery (validated answers)",
		Headers: []string{"phase", "queries", "ok", "errors", "wrong", "attempts", "retries", "injected"},
	}

	clean, err := chaosSerial(snap, httpfault.Plan{}, queries, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("clean phase: %w", err)
	}
	if clean.errors != 0 || clean.wrong != 0 {
		return nil, fmt.Errorf("clean phase: %d errors, %d wrong answers on a perfect transport", clean.errors, clean.wrong)
	}
	t.AddRow("clean", clean.queries, clean.ok, clean.errors, clean.wrong, clean.attempts, clean.retries, clean.injected)

	chaos, err := chaosSerial(snap, httpfault.All(cfg.Seed), queries, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("chaos phase: %w", err)
	}
	if chaos.wrong != 0 {
		return nil, fmt.Errorf("chaos phase: %d wrong answers slipped through the retry layer", chaos.wrong)
	}
	// With the All plan (~27% per-attempt fault rate) and 4 attempts the
	// expected residual error rate is ~0.5%; 5% is a loud-failure bound.
	if maxErr := queries / 20; chaos.errors > maxErr {
		return nil, fmt.Errorf("chaos phase: %d/%d errors exceeds the 5%% bound", chaos.errors, queries)
	}
	t.AddRow("chaos", chaos.queries, chaos.ok, chaos.errors, chaos.wrong, chaos.attempts, chaos.retries, chaos.injected)

	crash, err := chaosCrash(g, snap, queries, workers, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("crash phase: %w", err)
	}
	if crash.wrong != 0 {
		return nil, fmt.Errorf("crash phase: %d wrong answers across the restart", crash.wrong)
	}
	if crash.ok < crash.queries/2 {
		return nil, fmt.Errorf("crash phase: only %d/%d queries survived the restart", crash.ok, crash.queries)
	}
	t.AddRow("crash", crash.queries, crash.ok, crash.errors, crash.wrong, crash.attempts, crash.retries, crash.injected)

	t.Note("n=%d k=%d snapshot; every 200 answer checked against the reference matrices (zero-wrong-answers gate)", n, k)
	t.Note("clean and chaos run a serial closed loop: their rows are bit-deterministic from the seed (faults are a keyed PRF over the attempt index)")
	t.Note("crash kills the server abruptly mid-load and restores it from the autosave dir via oracle.RecoverDir (%d workers); its ok/error split is timing-dependent, the zero-wrong and >=50%% survival bounds are the asserted part", workers)
	return t, nil
}

// chaosResult aggregates one load phase.
type chaosResult struct {
	queries, ok, errors, wrong int
	attempts, retries          uint64
	injected                   uint64
}

// injectedTotal sums the fault events out of an injector snapshot
// (Requests counts admissions, not faults, so it is excluded).
func injectedTotal(s httpfault.Stats) uint64 {
	return s.Delays + s.ResetsPre + s.ResetsPost + s.Err500s + s.Err503s + s.Truncations + s.Blackholes + s.ConnsKilled
}

// chaosClientOpts are the shared resilient-client knobs for the load
// phases: short attempt timeouts so blackholes are cheap, small capped
// backoff so a run stays fast, seeded jitter for reproducible schedules.
func chaosClientOpts(rt http.RoundTripper, seed int64) client.Options {
	return client.Options{
		Transport:      rt,
		AttemptTimeout: 25 * time.Millisecond,
		MaxAttempts:    4,
		BaseBackoff:    500 * time.Microsecond,
		MaxBackoff:     4 * time.Millisecond,
		CapRetryAfter:  2 * time.Millisecond,
		Seed:           seed,
	}
}

// chaosQuery issues one validated /dist query through the resilient
// client. Returns (ok, wrong): transport-level failure is (false, false),
// a 200 disagreeing with the matrices is (true, true).
func chaosQuery(c *client.Client, base string, snap *oracle.Snapshot, src, row, dst int) (bool, bool) {
	var resp struct {
		Reachable bool   `json:"reachable"`
		Dist      *int64 `json:"dist"`
	}
	r, err := c.GetJSON(context.Background(), fmt.Sprintf("%s/dist?src=%d&dst=%d", base, src, dst), &resp)
	if err != nil {
		return false, false
	}
	if r.Status != http.StatusOK {
		return false, false
	}
	want := snap.DistAt(row, dst)
	if want >= graph.Inf {
		return true, resp.Reachable || resp.Dist != nil
	}
	return true, resp.Dist == nil || *resp.Dist != want
}

// chaosStream is the deterministic query stream shared by the phases.
func chaosStream(snap *oracle.Snapshot, seed int64, worker int) func() (src, row, dst int) {
	sources := snap.Sources()
	n := snap.N()
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(worker+1)*0xbf58476d1ce4e5b9
	return func() (src, row, dst int) {
		x = x*6364136223846793005 + 1442695040888963407
		i := int((x >> 33) % uint64(len(sources)))
		r, _ := snap.Row(sources[i])
		return sources[i], r, int(x % uint64(n))
	}
}

// chaosSerial runs a single-worker closed loop through the injector. The
// serial schedule makes every column deterministic: fault fates are a
// keyed PRF over the injector's admission index, and with one worker that
// index order is the retry-expanded query order.
func chaosSerial(snap *oracle.Snapshot, plan httpfault.Plan, queries int, seed int64) (*chaosResult, error) {
	srv := &oracle.Server{Store: &oracle.Store{}, Cache: oracle.NewPathCache(4096), Met: oracle.NewMetrics(), MaxInflight: 64}
	srv.Publish(snap)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ft := &httpfault.Transport{Plan: plan, Inner: ts.Client().Transport}
	opts := chaosClientOpts(ft, seed)
	opts.BreakerTrip = -1 // wall-clock cooloffs would break determinism
	c := client.New(opts)

	next := chaosStream(snap, seed, 0)
	res := &chaosResult{queries: queries}
	for q := 0; q < queries; q++ {
		src, row, dst := next()
		ok, wrong := chaosQuery(c, ts.URL, snap, src, row, dst)
		if ok {
			res.ok++
		} else {
			res.errors++
		}
		if wrong {
			res.wrong++
		}
	}
	cs := c.Snapshot()
	res.attempts, res.retries = cs.Attempts, cs.Retries
	res.injected = injectedTotal(ft.Snapshot())
	return res, nil
}

// chaosCrash drives concurrent load against a real listener, abruptly
// kills the server once half the queries have resolved, restores a fresh
// server from the autosave directory on the same address, and lets the
// client's retries bridge the outage.
func chaosCrash(g *graph.Graph, snap *oracle.Snapshot, queries, workers int, seed int64) (*chaosResult, error) {
	dir, err := os.MkdirTemp("", "echaos-autosave-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	newServer := func() *oracle.Server {
		return &oracle.Server{
			Store: &oracle.Store{}, Cache: oracle.NewPathCache(4096),
			Met: oracle.NewMetrics(), MaxInflight: 256,
			AfterPublish: func(s *oracle.Snapshot) { oracle.SaveToDir(dir, s) },
		}
	}
	srv1 := newServer()
	srv1.Publish(snap) // autosaves via AfterPublish

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	base := "http://" + addr
	hs := &http.Server{Handler: srv1.Handler()}
	go hs.Serve(ln)

	inner := &http.Transport{}
	defer inner.CloseIdleConnections()
	ft := &httpfault.Transport{Plan: httpfault.All(seed + 1), Inner: inner}
	opts := chaosClientOpts(ft, seed)
	opts.MaxAttempts = 6 // extra headroom to ride out the restart window
	opts.MaxHedges = 1   // the tail-latency hedge, exercised under real concurrency
	c := client.New(opts)

	perWorker := queries / workers
	total := perWorker * workers
	var (
		resolved  atomic.Int64
		ok, wrong atomic.Int64
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := chaosStream(snap, seed, w)
			for q := 0; q < perWorker; q++ {
				src, row, dst := next()
				o, wr := chaosQuery(c, base, snap, src, row, dst)
				if o {
					ok.Add(1)
				}
				if wr {
					wrong.Add(1)
				}
				resolved.Add(1)
			}
		}(w)
	}

	// Kill -9, in process: once half the load has resolved, close every
	// connection without draining and bring up a recovered server on the
	// same address.
	for resolved.Load() < int64(total/2) {
		time.Sleep(time.Millisecond)
	}
	hs.Close()

	discard := slog.New(slog.NewTextHandler(io.Discard, nil))
	rec, path, err := oracle.RecoverDir(dir, g, snap.Fingerprint(), discard)
	if err != nil {
		return nil, fmt.Errorf("recovering autosave: %w", err)
	}
	if rec == nil || path == "" {
		return nil, fmt.Errorf("no autosave to recover from (dir %s)", dir)
	}
	srv2 := newServer()
	srv2.Publish(rec)
	var ln2 net.Listener
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	defer hs2.Close()

	wg.Wait()
	cs := c.Snapshot()
	return &chaosResult{
		queries:  total,
		ok:       int(ok.Load()),
		errors:   total - int(ok.Load()),
		wrong:    int(wrong.Load()),
		attempts: cs.Attempts,
		retries:  cs.Retries,
		injected: injectedTotal(ft.Snapshot()),
	}, nil
}
