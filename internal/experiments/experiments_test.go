package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"A-LIST", "A-LIT", "A-ZERO", "E-APX", "E-BIG", "E-BLK", "E-CHAOS", "E-CLUSTER", "E-CONV", "E-CRASH", "E-CSSSP", "E-DELTA", "E-FAULTS", "E-INV", "E-KSSP", "E-SCALE", "E-SCHED", "E-SERVE", "E-SR", "E-STEP1", "E-T11", "E-T1213", "E-TRACE", "E-XOVER", "F1", "SCORECARD", "T1-approx", "T1-exact"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("nope", Config{Small: true}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestEachExperimentSmall(t *testing.T) {
	// Every experiment must run to completion at small size and produce a
	// non-empty, well-formed table (internal validations inside each
	// experiment fail loudly if an algorithm returns a wrong distance).
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Run(id, Config{Small: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if tab.ID != id {
				t.Fatalf("table ID %q != %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Headers) {
					t.Fatalf("%s: ragged row %v vs headers %v", id, row, tab.Headers)
				}
			}
			var buf bytes.Buffer
			tab.Format(&buf)
			if !strings.Contains(buf.String(), id) {
				t.Fatalf("%s: formatted output missing ID", id)
			}
		})
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Headers: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.AddRow(2.5, 7)
	tab.Note("hello %d", 42)
	var buf bytes.Buffer
	tab.Format(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "2.500", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Headers: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.Note("footnote")
	var buf bytes.Buffer
	tab.Markdown(&buf)
	out := buf.String()
	for _, want := range []string{"### X — demo", "| a | bb |", "| --- | --- |", "| 1 | x |", "*footnote*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown output missing %q:\n%s", want, out)
		}
	}
}
