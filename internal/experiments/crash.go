package experiments

import (
	"fmt"
	"reflect"

	"repro/internal/checkpoint"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/graph"
)

func init() {
	register("E-CRASH", eCrash)
}

// eCrash measures the crash/checkpoint substrate on the pipelined
// Algorithm 1: the snapshot cost of periodic checkpointing (count and
// serialized bytes per cadence), a kill-and-resume drill, and a scripted
// crash-stop fault recovered by the checkpoint supervisor. Every scenario
// asserts the final distances, parents and logical Stats are bit-identical
// to the uninterrupted baseline — determinism is the whole point of the
// checkpoint design, so any drift is an error, not a table entry.
func eCrash(cfg Config) (*Table, error) {
	n, m := 48, 160
	if cfg.Small {
		n, m = 24, 80
	}
	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
	sources := []int{0, 1, 2}
	h := n - 1

	run := func(net congest.Network, pol *congest.CheckpointPolicy) (*core.Result, error) {
		return core.Run(g, core.Opts{Sources: sources, H: h, Workers: cfg.Workers, Network: net, Checkpoint: pol})
	}
	base, err := run(nil, nil)
	if err != nil {
		return nil, err
	}
	same := func(res *core.Result) error {
		if res.Stats != base.Stats || !reflect.DeepEqual(res.Dist, base.Dist) || !reflect.DeepEqual(res.Parent, base.Parent) {
			return fmt.Errorf("result diverged from the uninterrupted baseline")
		}
		return nil
	}

	t := &Table{
		ID:      "E-CRASH",
		Title:   "Crash faults & checkpointing: snapshot cost and bit-exact recovery",
		Headers: []string{"scenario", "rounds", "messages", "snapshots", "snapBytes", "restarts", "outcome"},
	}
	t.AddRow("baseline", base.Stats.Rounds, base.Stats.Messages, 0, "-", 0, "ok")

	// Periodic checkpointing: pure overhead measurement; the run is never
	// interrupted, so the result must be untouched.
	for _, every := range []int{1, 8, 32} {
		snaps, bytes := 0, 0
		pol := &congest.CheckpointPolicy{Every: every, Sink: func(s *congest.Snapshot) error {
			b, err := s.MarshalBinary()
			if err != nil {
				return err
			}
			snaps++
			bytes += len(b)
			return nil
		}}
		res, err := run(nil, pol)
		if err != nil {
			return nil, fmt.Errorf("every=%d: %w", every, err)
		}
		if err := same(res); err != nil {
			return nil, fmt.Errorf("every=%d: %w", every, err)
		}
		t.AddRow(fmt.Sprintf("checkpoint every=%d", every), res.Stats.Rounds, res.Stats.Messages,
			snaps, bytes, 0, "ok")
	}

	// Kill-and-resume drill: stop at the midpoint barrier, serialize, and
	// resume in a fresh engine.
	mid := base.Stats.Rounds / 2
	if mid < 1 {
		mid = 1
	}
	k := &checkpoint.Keeper{}
	_, err = run(nil, &congest.CheckpointPolicy{AtRound: mid, Stop: true, Sink: k.Sink})
	if err != congest.ErrCheckpointStop {
		return nil, fmt.Errorf("kill@%d: want ErrCheckpointStop, got %v", mid, err)
	}
	snap, _ := k.Latest()
	raw, err := snap.MarshalBinary()
	if err != nil {
		return nil, err
	}
	snap2 := &congest.Snapshot{}
	if err := snap2.UnmarshalBinary(raw); err != nil {
		return nil, err
	}
	res, err := run(nil, &congest.CheckpointPolicy{Resume: snap2})
	if err != nil {
		return nil, fmt.Errorf("resume@%d: %w", mid, err)
	}
	if err := same(res); err != nil {
		return nil, fmt.Errorf("resume@%d: %w", mid, err)
	}
	t.AddRow(fmt.Sprintf("kill@%d + resume", mid), res.Stats.Rounds, res.Stats.Messages,
		1, len(raw), 0, "ok")

	// Supervised crash-stop recovery: node 1 crashes at the midpoint with
	// a restart offset; the supervisor re-arms from the latest per-4-round
	// snapshot and the recovered run must still match the baseline.
	net := faults.New(faults.Plan{Seed: cfg.FaultSeed})
	net.Script = []faults.Event{{Round: mid, From: 1, Kind: faults.CrashEvent, Arg: 1}}
	k2 := &checkpoint.Keeper{}
	snaps := 0
	pol := &congest.CheckpointPolicy{Every: 4, Sink: func(s *congest.Snapshot) error {
		snaps++
		return k2.Sink(s)
	}}
	var rec *core.Result
	restartsDone, err := checkpoint.Supervise(pol, k2, 3, func() error {
		r, ferr := run(net, pol)
		if ferr == nil {
			rec = r
		}
		return ferr
	})
	if err != nil {
		return nil, fmt.Errorf("supervised crash: %w", err)
	}
	if err := same(rec); err != nil {
		return nil, fmt.Errorf("supervised crash: %w", err)
	}
	t.AddRow(fmt.Sprintf("crash 1@%d+1 (every=4)", mid), rec.Stats.Rounds, rec.Stats.Messages,
		snaps, "-", restartsDone, "recovered")

	t.Note("all scenarios asserted bit-identical distances, parents and Stats vs the uninterrupted baseline")
	t.Note("snapBytes is the serialized snapshot size (MarshalBinary); kill+resume shows one snapshot's size")
	return t, nil
}
