// Package experiments regenerates every table, figure and theorem bound of
// the paper as a measured experiment (the per-experiment index lives in
// DESIGN.md; results are recorded in EXPERIMENTS.md). Each experiment is a
// function from a Config to a printable Table; cmd/apspbench prints them
// and the repository benchmarks run them at reduced size.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config scales the experiments.
type Config struct {
	// Small selects reduced sizes (used by `go test -bench` so a full
	// bench sweep stays fast); the full sizes are the defaults.
	Small bool
	// Seed makes every experiment deterministic.
	Seed int64
	// Workers bounds the engine goroutines per round in the scale-sensitive
	// experiments (E-BIG); 0 keeps the engine default. Results and CONGEST
	// costs are worker-count independent, only wall clock moves.
	Workers int
	// Faults, if non-empty, restricts E-FAULTS to the given plan (the
	// faults.Parse syntax, e.g. "all" or "delay=4,drop=0.2").
	Faults string
	// FaultSeed keys the fault PRF in E-FAULTS when the plan carries no
	// seed term.
	FaultSeed int64
}

// Table is a printable experiment result.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format writes the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as a GitHub-flavored Markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "*%s*\n\n", n)
	}
}

// Runner is an experiment entry point.
type Runner func(Config) (*Table, error)

var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the registered experiment identifiers, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}

// RunAll executes every experiment in ID order. markdown selects Markdown
// output instead of aligned text.
func RunAll(cfg Config, w io.Writer, markdown bool) error {
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if markdown {
			t.Markdown(w)
		} else {
			t.Format(w)
		}
	}
	return nil
}

// Collect executes every experiment in ID order and returns the tables
// (the collecting counterpart of RunAll, for serialization).
func Collect(cfg Config) ([]*Table, error) {
	tables := make([]*Table, 0, len(registry))
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", id, err)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// WriteJSON serializes tables as an indented JSON array — the
// machine-readable counterpart of Format/Markdown, so a benchmark sweep's
// per-phase numbers can be persisted and diffed across commits
// (cmd/apspbench -json).
func WriteJSON(w io.Writer, tables []*Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tables)
}

// ratio formats a/b with two decimals, guarding division by zero.
func ratio(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(a)/float64(b))
}
