package experiments

import (
	"fmt"
	"net/http/httptest"

	"repro/internal/graph"
	"repro/internal/oracle"
	"repro/internal/trace"
)

func init() {
	register("E-TRACE", eTrace)
}

// eTrace is E-SERVE's attribution companion: it drives the same serving
// stack with every request traced (SampleEvery=1) into an in-memory
// aggregator and reports where serving latency actually goes, span by span
// — request roots (serve.dist / serve.path / serve.batch) alongside their
// interior spans (cache.probe, walk, lookup, batch.segment). The share
// column divides each span's total self-reported time by the summed root
// time, so a hot interior span is visible without reading trace files.
// Wall-clock columns are machine-dependent; the span *structure* (which
// spans appear, their counts, zero errors) is the deterministic part.
func eTrace(cfg Config) (*Table, error) {
	n, m, k := 256, 1024, 32
	queries := 2000
	if cfg.Small {
		n, m, k = 64, 256, 8
		queries = 300
	}

	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
	sources := make([]int, k)
	dist := make([][]int64, k)
	parent := make([][]int, k)
	for i := range sources {
		src := i * (n / k)
		sources[i] = src
		dist[i], parent[i] = graph.DijkstraTree(g, src)
	}
	snap, err := oracle.Build(g, oracle.BuildInput{Alg: "dijkstra", Sources: sources, Dist: dist, Parent: parent}, oracle.BuildOpts{})
	if err != nil {
		return nil, err
	}

	agg := trace.NewAgg()
	tracer := trace.New(trace.Options{SampleEvery: 1, Seed: uint64(cfg.Seed) + 1, Sinks: []trace.Sink{agg}})
	srv := &oracle.Server{Store: &oracle.Store{}, Cache: oracle.NewPathCache(4096),
		Met: oracle.NewMetrics(), MaxInflight: 1024, Tracer: tracer}
	srv.Publish(snap)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	// A mixed single-worker workload: point distances, paths (the repeated
	// pair stream makes the cache hit on revisits, so both probe outcomes
	// appear), and 16-query batches.
	x := uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	next := func() (src, row, dst int) {
		x = x*6364136223846793005 + 1442695040888963407
		i := int((x >> 33) % uint64(len(sources)))
		r, _ := snap.Row(sources[i])
		return sources[i], r, int(x % uint64(n))
	}
	for q := 0; q < queries; q++ {
		var err error
		switch q % 4 {
		case 0, 1:
			src, row, dst := next()
			err = serveCheckDist(client, ts.URL, snap, src, row, dst)
		case 2:
			src, row, dst := next()
			err = serveCheckPath(client, ts.URL, snap, src, row, dst)
		default:
			err = serveCheckBatch(client, ts.URL, snap, next, 16)
		}
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", q, err)
		}
	}
	if err := tracer.Close(); err != nil {
		return nil, err
	}

	rows := agg.Rows()
	var rootUS int64
	for _, r := range rows {
		if isRootSpan(r.Name) {
			rootUS += r.TotalUS
		}
	}

	t := &Table{
		ID:      "E-TRACE",
		Title:   "apspd serving latency attribution by span (every request traced)",
		Headers: []string{"span", "count", "errs", "total(ms)", "avg(us)", "max(us)", "share"},
	}
	for _, r := range rows {
		share := ""
		if rootUS > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(r.TotalUS)/float64(rootUS))
		}
		t.AddRow(r.Name, r.Count, r.Errs,
			fmt.Sprintf("%.2f", float64(r.TotalUS)/1000),
			fmt.Sprintf("%.0f", r.AvgUS()),
			r.MaxUS, share)
	}
	t.Note(fmt.Sprintf("n=%d k=%d snapshot, %d requests (2:1:1 dist/path/batch16), every answer validated", n, k, queries))
	t.Note("share = span total / summed request-root total; interior spans overlap their roots, so shares do not sum to 100%%")
	t.Note("wall-clock columns are machine-dependent; the span set, counts and errs are the deterministic part (path errs are unreachable-pair 404s of the seeded query stream)")
	return t, nil
}

// isRootSpan reports whether a span name is a request root (serve.*),
// whose summed duration is the attribution denominator.
func isRootSpan(name string) bool {
	return len(name) > 6 && name[:6] == "serve."
}
