package experiments

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/graph"
)

func init() {
	register("T1-approx", t1Approx)
	register("E-APX", eApx)
}

// t1Approx regenerates the approximation half of Table I: the paper's
// claim is the first deterministic O((n/ε²)·log n) bound that survives
// zero-weight edges; [16]/[18] hold only for positive weights.
func t1Approx(cfg Config) (*Table, error) {
	sizes := []int{24, 32, 48}
	if cfg.Small {
		sizes = []int{16, 24}
	}
	t := &Table{
		ID:      "T1-approx",
		Title:   "Table I ((1+ε) APSP with zero weights): rounds and stretch",
		Headers: []string{"n", "ε", "rounds", "(n/ε²)·log n", "max stretch", "1+ε"},
	}
	eps := 0.5
	for _, n := range sizes {
		g := graph.Random(n, 3*n, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.3, Directed: true})
		res, err := approx.Run(g, approx.Opts{Eps: eps})
		if err != nil {
			return nil, err
		}
		stretch, mismatches := approx.CheckStretch(g, res)
		if mismatches != 0 {
			return nil, fmt.Errorf("n=%d: %d structural mismatches", n, mismatches)
		}
		reference := int64(float64(n) / (eps * eps) * math.Log(float64(n)))
		t.AddRow(n, eps, res.Stats.Rounds, reference, fmt.Sprintf("%.4f", stretch), 1+eps)
	}
	t.Note("zero-weight pairs come out exactly 0 via the Sec. IV reachability phase")
	t.Note("this repo's positive-weight substrate costs O((n/ε)·log(nW)); same shape as the paper's O((n/ε²)·log n) black box")
	return t, nil
}

// eApx sweeps ε: stretch must stay below 1+ε while rounds grow
// polynomially in 1/ε.
func eApx(cfg Config) (*Table, error) {
	n := 32
	if cfg.Small {
		n = 20
	}
	t := &Table{
		ID:      "E-APX",
		Title:   "Theorem I.5: ε sweep (fixed n, zero-heavy graph)",
		Headers: []string{"ε", "rounds", "scales", "max stretch", "1+ε", "zero rounds"},
	}
	g := graph.ZeroHeavy(n, 3*n, 0.4, graph.GenOpts{Seed: cfg.Seed, MaxW: 10, Directed: true})
	for _, eps := range []float64{1.0, 0.5, 0.25} {
		res, err := approx.Run(g, approx.Opts{Eps: eps})
		if err != nil {
			return nil, err
		}
		stretch, mismatches := approx.CheckStretch(g, res)
		if mismatches != 0 {
			return nil, fmt.Errorf("eps=%v: %d mismatches", eps, mismatches)
		}
		if stretch > 1+eps {
			return nil, fmt.Errorf("eps=%v: stretch %.4f exceeds claim", eps, stretch)
		}
		t.AddRow(fmt.Sprintf("%.2f", eps), res.Stats.Rounds, res.Scales,
			fmt.Sprintf("%.4f", stretch), fmt.Sprintf("%.2f", 1+eps), res.PhaseRounds["zero"])
	}
	return t, nil
}
