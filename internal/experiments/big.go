package experiments

import (
	"fmt"
	"math"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/graph"
)

func init() {
	register("E-BIG", eBig)
}

// eBig is the scaling study: Algorithm 1 APSP rounds as n grows with the
// weight scale held fixed, against the 2n√Δ+2n curve. The interesting
// quantity is the fitted exponent of rounds in n (the paper predicts ~1
// when Δ is n-independent, since rounds ≈ 2√Δ·n). The ladder is a clean
// power-of-two progression to n=4096 — uniform log-spacing, so the
// consecutive-pair exponents are directly comparable. The top sizes are
// what the flat message plane buys: at n=4096 the run moves hundreds of
// millions of messages, which the object-inbox engine could not hold.
func eBig(cfg Config) (*Table, error) {
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	if cfg.Small {
		sizes = []int{32, 64}
	}
	t := &Table{
		ID:      "E-BIG",
		Title:   "Scaling study: Algorithm 1 APSP rounds vs n (fixed weight scale)",
		Headers: []string{"n", "Δ", "rounds", "bound 2n√Δ+2n", "rounds/n", "messages"},
	}
	var prevRounds, prevN float64
	var exps []float64
	for _, n := range sizes {
		g := graph.Random(n, 4*n, graph.GenOpts{Seed: cfg.Seed, MaxW: 8, ZeroFrac: 0.25, Directed: true})
		delta := graph.Delta(g)
		sources := make([]int, n)
		for v := range sources {
			sources[v] = v
		}
		res, err := core.Run(g, core.Opts{Sources: sources, H: n - 1, Delta: delta, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		// One parallel-backend reference matrix for the whole size: at
		// n=4096 this replaces 4096 sequential Dijkstra runs and also
		// cross-checks hop counts, which graph.APSP never recorded.
		want, err := compute.APSP(g, compute.Opts{Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		for s := 0; s < n; s++ {
			for v := 0; v < n; v++ {
				if res.Dist[s][v] != want.Dist[s][v] {
					return nil, fmt.Errorf("n=%d: wrong distance at (%d,%d)", n, s, v)
				}
				if res.Hops[s][v] != want.Hops[s][v] {
					return nil, fmt.Errorf("n=%d: wrong hop count at (%d,%d)", n, s, v)
				}
			}
		}
		t.AddRow(n, delta, res.Stats.Rounds, res.Bound,
			fmt.Sprintf("%.1f", float64(res.Stats.Rounds)/float64(n)), res.Stats.Messages)
		if prevN > 0 {
			exps = append(exps, math.Log(float64(res.Stats.Rounds)/prevRounds)/math.Log(float64(n)/prevN))
		}
		prevRounds, prevN = float64(res.Stats.Rounds), float64(n)
	}
	if len(exps) > 0 {
		sum := 0.0
		for _, e := range exps {
			sum += e
		}
		t.Note("fitted rounds ~ n^%.2f between consecutive sizes (paper predicts ~1 for fixed Δ, modulo Δ drift)", sum/float64(len(exps)))
	}
	t.Note("all distances and hop counts validated against the parallel compute backend at every size")
	return t, nil
}
