package experiments

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/shortrange"
)

func init() {
	register("E-SCHED", eSched)
}

// eSched compares the two ways of running many short-range executions at
// once for h-hop APSP (end of Sec. II-C): the paper's deterministic
// k-source schedule γ = √(hk/Δ), and the prior approach — per-source
// γ = √h executions smeared by Ghaffari's random delays [10] — plus the
// naive simultaneous start as a control. All three are exact; the question
// is rounds.
func eSched(cfg Config) (*Table, error) {
	n, m := 36, 120
	if cfg.Small {
		n, m = 22, 70
	}
	t := &Table{
		ID:      "E-SCHED",
		Title:   "Sec. II-C: deterministic γ-schedule vs random-delay scheduling",
		Headers: []string{"h", "k-source γ rounds", "random delays rounds", "packed rounds", "congestion (all)"},
	}
	g := graph.Random(n, m, graph.GenOpts{Seed: cfg.Seed, MaxW: 5, ZeroFrac: 0.25, Directed: true})
	sources := make([]int, n)
	for v := range sources {
		sources[v] = v
	}
	for _, h := range []int{4, 8, 16} {
		delta := graph.HHopDelta(g, sources, h)
		if delta == 0 {
			delta = 1
		}
		det, err := shortrange.Run(g, shortrange.Opts{Sources: sources, H: h, Delta: delta})
		if err != nil {
			return nil, err
		}
		rnd, err := shortrange.Concurrent(g, sources, h, int64(n), cfg.Seed)
		if err != nil {
			return nil, err
		}
		packed, err := shortrange.Concurrent(g, sources, h, 1, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// All must agree with Dijkstra (short-range converges to exact
		// SSSP at quiescence).
		for i, s := range sources {
			want := graph.Dijkstra(g, s)
			for v := 0; v < n; v++ {
				if det.Dist[i][v] != want[v] || rnd.Dist[i][v] != want[v] || packed.Dist[i][v] != want[v] {
					return nil, fmt.Errorf("h=%d: scheduler changed a distance at (%d,%d)", h, s, v)
				}
			}
		}
		cong := fmt.Sprintf("%d/%d/%d", det.Stats.MaxLinkCongestion, rnd.Stats.MaxLinkCongestion, packed.Stats.MaxLinkCongestion)
		t.AddRow(h, det.Stats.Rounds, rnd.Stats.Rounds, packed.Stats.Rounds, cong)
	}
	t.Note("total per-link congestion is schedule-independent here (the engine serializes sends); rounds are the comparison")
	t.Note("the deterministic γ-schedule is the paper's replacement for the randomized framework — and needs no randomness")
	return t, nil
}
