package experiments

import (
	"fmt"
	"math"

	"repro/internal/congest"
	"repro/internal/cssp"
	"repro/internal/graph"
)

func init() {
	register("E-STEP1", eStep1)
}

// eStep1 is the paper's own headline ablation inside Algorithm 3: Step 1
// (h-hop CSSSP construction) via the Θ(n·h)-round Bellman–Ford method of
// [3] versus via the pipelined Algorithm 1, which Sec. III introduces
// precisely because the [3] method "takes Θ(n·h) rounds, which is too
// large for our purposes".
func eStep1(cfg Config) (*Table, error) {
	n, m := 40, 140
	if cfg.Small {
		n, m = 24, 80
	}
	t := &Table{
		ID:      "E-STEP1",
		Title:   "Algorithm 3 Step 1: CSSSP via Algorithm 1 vs via Bellman–Ford ([3])",
		Headers: []string{"h", "Alg1 rounds", "BF rounds", "~2h·k·2", "√(2·2h·k·Δ)·2", "speedup"},
	}
	g := graph.ZeroHeavy(n, m, 0.35, graph.GenOpts{Seed: cfg.Seed, MaxW: 6, Directed: true})
	sources := make([]int, n)
	for v := range sources {
		sources[v] = v
	}
	for _, h := range []int{2, 4, 8} {
		viaAlg1, err := cssp.Build(g, sources, h, 0, congest.Config{})
		if err != nil {
			return nil, err
		}
		viaBF, err := cssp.BuildBellmanFord(g, sources, h, congest.Config{})
		if err != nil {
			return nil, err
		}
		// Both must produce valid collections with identical tree data.
		if bad := viaAlg1.Verify(g); len(bad) != 0 {
			return nil, fmt.Errorf("h=%d: Alg1 CSSSP invalid: %s", h, bad[0])
		}
		if bad := viaBF.Verify(g); len(bad) != 0 {
			return nil, fmt.Errorf("h=%d: BF CSSSP invalid: %s", h, bad[0])
		}
		for i := range sources {
			for v := 0; v < n; v++ {
				if viaAlg1.Dist[i][v] != viaBF.Dist[i][v] || viaAlg1.Hops[i][v] != viaBF.Hops[i][v] {
					return nil, fmt.Errorf("h=%d: constructions disagree at [%d][%d]", h, i, v)
				}
			}
		}
		delta := graph.HHopDelta(g, sources, 2*h)
		if delta == 0 {
			delta = 1
		}
		pipePred := int64(2 * math.Sqrt(float64(int64(2*2*h*n)*delta))) // 2√(2khΔ) with the 2h budget
		t.AddRow(h, viaAlg1.Stats.Rounds, viaBF.Stats.Rounds,
			2*2*h*n, pipePred,
			ratio(int64(viaBF.Stats.Rounds), int64(viaAlg1.Stats.Rounds)))
	}
	t.Note("BF cost includes the hop-tagging second sweep (×2); its growth is linear in h·k, Alg1's is √(hkΔ)")
	t.Note("both constructions yield identical collections (verified)")
	return t, nil
}
