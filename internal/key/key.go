// Package key implements exact arithmetic for the path keys used by the
// paper's pipelined Algorithm 1 (Sec. II-A):
//
//	κ = d·γ + l,   γ = √(k·h/Δ)
//
// where d is the weighted length of a path, l its hop count, k the number of
// sources, h the hop bound, and Δ the distance bound. γ is irrational in
// general, so comparing keys or computing the send schedule ⌈κ⌉ + pos with
// floating point would make schedule decisions depend on rounding noise.
// This package compares keys and computes ⌈κ⌉ exactly: comparisons reduce to
// integer sign tests of a·γ + b, evaluated by cross-squaring, with a fast
// int64 path and a math/big fallback when squares would overflow.
package key

import (
	"fmt"
	"math"
	"math/big"
)

// Gamma represents γ = √(Num/Den) with Num, Den positive integers. It is
// immutable and safe for concurrent use.
type Gamma struct {
	num, den int64
	fastA    int64   // |a| bound for the int64 fast path on a²·num
	fastB    int64   // |b| bound for the int64 fast path on b²·den
	approx   float64 // float estimate of γ, for display only
}

// New returns γ = √(k·h/Δ), the key slope of Algorithm 1. Δ is clamped to at
// least 1 (a Δ of 0 means every shortest-path distance is 0; γ's role is
// only to weigh d against l and any positive finite slope is then valid).
// k and h must be positive.
func New(k, h int, delta int64) Gamma {
	if k <= 0 || h <= 0 {
		panic(fmt.Sprintf("key: k=%d h=%d must be positive", k, h))
	}
	if delta < 1 {
		delta = 1
	}
	return NewRatio(int64(k)*int64(h), delta)
}

// NewRatio returns γ = √(num/den) for positive num, den.
func NewRatio(num, den int64) Gamma {
	if num <= 0 || den <= 0 {
		panic(fmt.Sprintf("key: gamma ratio %d/%d must be positive", num, den))
	}
	g := Gamma{num: num, den: den}
	g.fastA = int64(math.Sqrt(float64(math.MaxInt64)/float64(num))) - 2
	g.fastB = int64(math.Sqrt(float64(math.MaxInt64)/float64(den))) - 2
	if g.fastA < 0 {
		g.fastA = 0
	}
	if g.fastB < 0 {
		g.fastB = 0
	}
	g.approx = math.Sqrt(float64(num) / float64(den))
	return g
}

// Num returns the numerator of γ².
func (g Gamma) Num() int64 { return g.num }

// Den returns the denominator of γ².
func (g Gamma) Den() int64 { return g.den }

// Approx returns a float64 estimate of γ for display purposes only.
func (g Gamma) Approx() float64 { return g.approx }

// Float returns a float64 estimate of κ = d·γ + l for display purposes.
func (g Gamma) Float(d, l int64) float64 { return float64(d)*g.approx + float64(l) }

// signAGammaPlusB returns the sign of a·γ + b in {-1, 0, +1}, exactly.
func (g Gamma) signAGammaPlusB(a, b int64) int {
	switch {
	case a == 0 && b == 0:
		return 0
	case a >= 0 && b >= 0:
		return 1 // not both zero
	case a <= 0 && b <= 0:
		return -1
	}
	// Opposite signs: compare a²·num against b²·den, the squares of the two
	// sides of a·γ = -b.
	var cmp int
	absA, absB := a, b
	if absA < 0 {
		absA = -absA
	}
	if absB < 0 {
		absB = -absB
	}
	if absA <= g.fastA && absB <= g.fastB {
		lhs := absA * absA * g.num
		rhs := absB * absB * g.den
		switch {
		case lhs < rhs:
			cmp = -1
		case lhs > rhs:
			cmp = 1
		}
	} else {
		lhs := new(big.Int).Mul(big.NewInt(absA), big.NewInt(absA))
		lhs.Mul(lhs, big.NewInt(g.num))
		rhs := new(big.Int).Mul(big.NewInt(absB), big.NewInt(absB))
		rhs.Mul(rhs, big.NewInt(g.den))
		cmp = lhs.Cmp(rhs)
	}
	// cmp orders |a|γ vs |b|. If a > 0 (so b < 0): sign(aγ+b) = cmp.
	// If a < 0 (so b > 0): sign = -cmp.
	if a > 0 {
		return cmp
	}
	return -cmp
}

// Cmp compares κ1 = d1·γ + l1 with κ2 = d2·γ + l2 exactly, returning
// -1, 0 or +1.
func (g Gamma) Cmp(d1, l1, d2, l2 int64) int {
	return g.signAGammaPlusB(d1-d2, l1-l2)
}

// CeilKappa returns ⌈d·γ + l⌉ exactly: l + (the least c ≥ 0 with
// c²·den ≥ d²·num). d and l must be non-negative.
func (g Gamma) CeilKappa(d, l int64) int64 {
	if d < 0 || l < 0 {
		panic(fmt.Sprintf("key: CeilKappa(%d,%d) wants non-negative arguments", d, l))
	}
	return l + g.ceilDGamma(d)
}

// ceilDGamma returns ⌈d·γ⌉ for d ≥ 0.
func (g Gamma) ceilDGamma(d int64) int64 {
	if d == 0 {
		return 0
	}
	// Estimate then fix up with exact comparisons c·γ ≥/=< d... we need the
	// least c with c ≥ d·γ, i.e. c²·den ≥ d²·num.
	est := int64(float64(d) * g.approx)
	c := est - 2
	if c < 0 {
		c = 0
	}
	for !g.geCSquared(c, d) {
		c++
	}
	return c
}

// geCSquared reports c²·den ≥ d²·num exactly (c, d ≥ 0).
func (g Gamma) geCSquared(c, d int64) bool {
	if c <= g.fastB && d <= g.fastA {
		return c*c*g.den >= d*d*g.num
	}
	lhs := new(big.Int).Mul(big.NewInt(c), big.NewInt(c))
	lhs.Mul(lhs, big.NewInt(g.den))
	rhs := new(big.Int).Mul(big.NewInt(d), big.NewInt(d))
	rhs.Mul(rhs, big.NewInt(g.num))
	return lhs.Cmp(rhs) >= 0
}

// Schedule returns the send round ⌈κ⌉ + pos = ⌈d·γ⌉ + l + pos for an entry
// at list position pos, per Step 1 of Algorithm 1 (pos is an integer, so
// ⌈κ + pos⌉ = ⌈κ⌉ + pos).
func (g Gamma) Schedule(d, l int64, pos int) int64 {
	return g.CeilKappa(d, l) + int64(pos)
}

// Bound returns the paper's round bound for Algorithm 1 with these
// parameters: ⌈Δγ + h + Δγ + k⌉ ≤ ⌈2√(khΔ)⌉ + h + k (Lemma II.14). It is
// computed exactly as ⌈2Δγ⌉ + h + k.
func Bound(k, h int, delta int64) int64 {
	if delta < 1 {
		delta = 1
	}
	// 2Δγ = √(4Δ²·kh/Δ) = √(4Δkh): least c with c² ≥ 4·Δ·k·h.
	return ceilSqrtProduct(4*delta, int64(k)*int64(h)) + int64(h) + int64(k)
}

// ceilSqrtProduct returns ⌈√(a·b)⌉ for non-negative a, b using big.Int, so
// it never overflows.
func ceilSqrtProduct(a, b int64) int64 {
	p := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
	c := new(big.Int).Sqrt(p) // floor sqrt
	if new(big.Int).Mul(c, c).Cmp(p) < 0 {
		c.Add(c, big.NewInt(1))
	}
	return c.Int64()
}
