package key

import "testing"

// FuzzCmpCeil: exact key arithmetic must satisfy its defining properties
// on arbitrary inputs (antisymmetry of Cmp, and the two ceiling
// inequalities) without panicking.
func FuzzCmpCeil(f *testing.F) {
	f.Add(int64(2), int64(1), int64(3), int64(4), int64(5), int64(6))
	f.Add(int64(1), int64(1), int64(0), int64(0), int64(0), int64(0))
	f.Add(int64(1<<40), int64(3), int64(1<<30), int64(7), int64(1<<20), int64(9))
	f.Fuzz(func(t *testing.T, num, den, d1, l1, d2, l2 int64) {
		if num <= 0 || den <= 0 || num > 1<<50 || den > 1<<50 {
			return
		}
		norm := func(x int64) int64 {
			if x < 0 {
				x = -x
			}
			return x % (1 << 40)
		}
		d1, l1, d2, l2 = norm(d1), norm(l1), norm(d2), norm(l2)
		g := NewRatio(num, den)
		if c, cRev := g.Cmp(d1, l1, d2, l2), g.Cmp(d2, l2, d1, l1); c != -cRev {
			t.Fatalf("antisymmetry failed: %d vs %d", c, cRev)
		}
		if g.Cmp(d1, l1, d1, l1) != 0 {
			t.Fatal("reflexivity failed")
		}
		ck := g.CeilKappa(d1, l1)
		c := ck - l1
		if !g.geCSquared(c, d1) {
			t.Fatalf("ceiling too small: %d", ck)
		}
		if c > 0 && g.geCSquared(c-1, d1) {
			t.Fatalf("ceiling not tight: %d", ck)
		}
	})
}
