package key

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestPerfectSquareGamma(t *testing.T) {
	// γ = √(4/1) = 2 exactly.
	g := NewRatio(4, 1)
	if got := g.CeilKappa(3, 1); got != 7 {
		t.Fatalf("⌈3·2+1⌉ = %d, want 7", got)
	}
	if c := g.Cmp(1, 2, 2, 0); c != 0 {
		t.Fatalf("1·2+2 vs 2·2+0: cmp = %d, want 0", c)
	}
	if c := g.Cmp(1, 3, 2, 0); c != 1 {
		t.Fatalf("5 vs 4: cmp = %d, want 1", c)
	}
}

func TestIrrationalGamma(t *testing.T) {
	// γ = √2.
	g := NewRatio(2, 1)
	// ⌈1·√2⌉ = 2, ⌈2·√2⌉ = 3, ⌈5·√2⌉ = ⌈7.07⌉ = 8.
	cases := []struct{ d, want int64 }{{0, 0}, {1, 2}, {2, 3}, {5, 8}, {7, 10}, {10, 15}}
	for _, c := range cases {
		if got := g.CeilKappa(c.d, 0); got != c.want {
			t.Fatalf("⌈%d√2⌉ = %d, want %d", c.d, got, c.want)
		}
	}
	// √2 vs 1.5: 2γ vs 3 → 8 vs 9 → less.
	if c := g.Cmp(2, 0, 0, 3); c != -1 {
		t.Fatalf("2√2 vs 3: cmp = %d, want -1", c)
	}
	if c := g.Cmp(0, 3, 2, 0); c != 1 {
		t.Fatalf("3 vs 2√2: cmp = %d, want 1", c)
	}
}

func TestFractionalGamma(t *testing.T) {
	// γ = √(1/4) = 1/2.
	g := NewRatio(1, 4)
	if got := g.CeilKappa(3, 0); got != 2 {
		t.Fatalf("⌈3/2⌉ = %d, want 2", got)
	}
	if got := g.CeilKappa(4, 1); got != 3 {
		t.Fatalf("⌈4/2+1⌉ = %d, want 3", got)
	}
	if c := g.Cmp(2, 0, 0, 1); c != 0 {
		t.Fatalf("2·(1/2) vs 1: cmp = %d, want 0", c)
	}
}

func TestNewClampsDelta(t *testing.T) {
	g := New(3, 5, 0) // Δ=0 clamped to 1 → γ = √15
	if g.Num() != 15 || g.Den() != 1 {
		t.Fatalf("gamma = √(%d/%d), want √(15/1)", g.Num(), g.Den())
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, c := range []struct{ k, h int }{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d,1) did not panic", c.k, c.h)
				}
			}()
			New(c.k, c.h, 1)
		}()
	}
}

func TestScheduleMatchesDefinition(t *testing.T) {
	g := New(4, 9, 7) // γ = √(36/7)
	// Schedule = ⌈dγ⌉ + l + pos.
	if got, want := g.Schedule(3, 2, 5), g.CeilKappa(3, 2)+5; got != want {
		t.Fatalf("Schedule = %d, want %d", got, want)
	}
}

func TestBoundFormula(t *testing.T) {
	// Bound = ⌈2√(khΔ)⌉ + h + k. k=2,h=8,Δ=4 → 2√64=16 → 16+8+2=26.
	if got := Bound(2, 8, 4); got != 26 {
		t.Fatalf("Bound = %d, want 26", got)
	}
	// Non-square: k=1,h=1,Δ=2 → ⌈2√2⌉=3 → 3+1+1=5.
	if got := Bound(1, 1, 2); got != 5 {
		t.Fatalf("Bound = %d, want 5", got)
	}
	// Δ=0 clamps to 1: ⌈2√(kh)⌉+h+k.
	if got := Bound(4, 4, 0); got != 16 {
		t.Fatalf("Bound(Δ=0) = %d, want 16", got)
	}
}

// exactCmp computes sign((d1-d2)·√(num/den) + (l1-l2)) with big.Float at
// high precision, as an independent oracle.
func exactCmp(num, den, d1, l1, d2, l2 int64) int {
	prec := uint(256)
	gamma := new(big.Float).SetPrec(prec).Quo(
		new(big.Float).SetPrec(prec).SetInt64(num),
		new(big.Float).SetPrec(prec).SetInt64(den))
	gamma.Sqrt(gamma)
	k1 := new(big.Float).SetPrec(prec).Mul(gamma, big.NewFloat(0).SetInt64(d1))
	k1.Add(k1, new(big.Float).SetInt64(l1))
	k2 := new(big.Float).SetPrec(prec).Mul(gamma, big.NewFloat(0).SetInt64(d2))
	k2.Add(k2, new(big.Float).SetInt64(l2))
	c := k1.Cmp(k2)
	// big.Float at 256 bits cannot prove equality of irrationals; but our
	// inputs are bounded so any true inequality is far above 2^-200.
	return c
}

func TestQuickCmpAgainstBigFloat(t *testing.T) {
	f := func(numRaw, denRaw uint16, d1, l1, d2, l2 uint16) bool {
		num := int64(numRaw%1000) + 1
		den := int64(denRaw%1000) + 1
		g := NewRatio(num, den)
		got := g.Cmp(int64(d1), int64(l1), int64(d2), int64(l2))
		want := exactCmp(num, den, int64(d1), int64(l1), int64(d2), int64(l2))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCeilAgainstBigFloat(t *testing.T) {
	f := func(numRaw, denRaw uint16, dRaw uint32, lRaw uint16) bool {
		num := int64(numRaw%5000) + 1
		den := int64(denRaw%5000) + 1
		d := int64(dRaw % 100000)
		l := int64(lRaw % 1000)
		g := NewRatio(num, den)
		got := g.CeilKappa(d, l)
		// Verify the two defining properties of the ceiling exactly:
		// (got-l) ≥ d·γ and (got-l-1) < d·γ (when got-l ≥ 1).
		c := got - l
		if !g.geCSquared(c, d) {
			return false
		}
		if c > 0 && g.geCSquared(c-1, d) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBigFallbackPath(t *testing.T) {
	// Force the overflow fallback: enormous num and operands.
	g := NewRatio(math.MaxInt64/2, 1)
	if g.fastA > 2 {
		t.Fatalf("fastA = %d, expected tiny threshold", g.fastA)
	}
	// a=10^9, γ huge: a·γ + b with b = -10^18 — decide via big path.
	a, b := int64(1_000_000_000), int64(-1_000_000_000_000_000_000)
	// a²·num ≈ 10^18 · 4.6·10^18 ≫ b²... b² overflows int64 massively; the
	// sign must come out via big.Int. aγ ≈ 10^9·2.1·10^9 ≈ 2.1·10^18 > 10^18.
	if s := g.signAGammaPlusB(a, b); s != 1 {
		t.Fatalf("big-path sign = %d, want 1", s)
	}
	if s := g.signAGammaPlusB(-a, -b); s != -1 {
		t.Fatalf("big-path sign = %d, want -1", s)
	}
	// CeilKappa through the big path must still satisfy its definition.
	got := g.CeilKappa(3, 0)
	if !g.geCSquared(got, 3) || g.geCSquared(got-1, 3) {
		t.Fatalf("big-path CeilKappa(3,0) = %d fails ceiling definition", got)
	}
}

func TestCmpTotalOrderProperties(t *testing.T) {
	g := New(3, 7, 11)
	type kv struct{ d, l int64 }
	vals := []kv{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}, {3, 2}, {5, 0}, {0, 5}, {4, 4}, {7, 1}}
	for _, a := range vals {
		if g.Cmp(a.d, a.l, a.d, a.l) != 0 {
			t.Fatalf("reflexivity failed at %+v", a)
		}
		for _, b := range vals {
			ab := g.Cmp(a.d, a.l, b.d, b.l)
			ba := g.Cmp(b.d, b.l, a.d, a.l)
			if ab != -ba {
				t.Fatalf("antisymmetry failed: %+v vs %+v: %d %d", a, b, ab, ba)
			}
			for _, c := range vals {
				bc := g.Cmp(b.d, b.l, c.d, c.l)
				ac := g.Cmp(a.d, a.l, c.d, c.l)
				if ab <= 0 && bc <= 0 && ac > 0 {
					t.Fatalf("transitivity failed: %+v %+v %+v", a, b, c)
				}
			}
		}
	}
}

func TestCeilKappaPanicsOnNegative(t *testing.T) {
	g := NewRatio(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("CeilKappa(-1, 0) did not panic")
		}
	}()
	g.CeilKappa(-1, 0)
}
