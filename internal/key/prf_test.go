package key

import "testing"

// TestPRFPinned pins the shared PRF discipline bit-for-bit. These values
// were produced by the three pre-dedup local copies (internal/faults,
// internal/httpfault, internal/client); if any of them move, every seeded
// fixture and ddmin testdata replay in the repository breaks.
func TestPRFPinned(t *testing.T) {
	// Reference implementation, transcribed from the pre-dedup copies.
	ref := func(x uint64) uint64 {
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return x
	}
	for _, x := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		if got, want := Mix64(x), ref(x); got != want {
			t.Errorf("Mix64(%#x) = %#x, want %#x", x, got, want)
		}
	}
	for _, tc := range []struct {
		seed int64
		kind uint64
	}{{0, 1}, {7, 3}, {-1, 9}} {
		want := ref(uint64(tc.seed)*0x9e3779b97f4a7c15 ^ tc.kind)
		if got := PRF(tc.seed, tc.kind); got != want {
			t.Errorf("PRF(%d, %d) = %#x, want %#x", tc.seed, tc.kind, got, want)
		}
	}
	for _, tc := range []struct {
		seed int64
		n    uint64
	}{{0, 1}, {5, 2}, {-3, 77}} {
		want := ref(uint64(tc.seed)*0x9e3779b97f4a7c15 + tc.n*0xbf58476d1ce4e5b9)
		if got := Stream(tc.seed, tc.n); got != want {
			t.Errorf("Stream(%d, %d) = %#x, want %#x", tc.seed, tc.n, got, want)
		}
	}
}

// TestU01Range checks the unit-interval map's endpoints and resolution.
func TestU01Range(t *testing.T) {
	if got := U01(0); got != 0 {
		t.Errorf("U01(0) = %v, want 0", got)
	}
	if got := U01(^uint64(0)); got < 0 || got >= 1 {
		t.Errorf("U01(max) = %v outside [0,1)", got)
	}
	if a, b := U01(1<<11), U01(2<<11); a == b {
		t.Errorf("U01 lost resolution: %v == %v", a, b)
	}
}
