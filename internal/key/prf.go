package key

// Seeded PRF discipline shared by every fault injector and jitter source
// in the repository. internal/faults (per-transmission delivery faults),
// internal/httpfault (per-request HTTP faults) and internal/client
// (backoff jitter) all key their random decisions the same way: a seed is
// spread over the word with the golden-ratio constant, the decision
// domain is folded in, and the SplitMix64 finalizer avalanches the
// result. Keeping the three in one place pins the derived streams — the
// committed ddmin fixtures and every fixed-seed experiment table replay
// byte-for-byte only while these bits never move.

// PRF mixing constants: the golden-ratio increment that spreads seeds
// across the word, and the two finalizer multipliers.
const (
	PhiMix  uint64 = 0x9e3779b97f4a7c15
	mixMul1 uint64 = 0xbf58476d1ce4e5b9
	mixMul2 uint64 = 0x94d049bb133111eb
)

// Mix64 is the SplitMix64 finalizer: a cheap, stateless full-avalanche
// 64-bit mixer. Every keyed-PRF draw in the repository bottoms out here.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= mixMul1
	x ^= x >> 27
	x *= mixMul2
	x ^= x >> 31
	return x
}

// PRF seeds a decision domain: Mix64(seed·φ ^ kind). Chain further
// decision coordinates with Mix64(h ^ coordinate) — the discipline
// internal/faults and internal/httpfault derive their fault fates from.
func PRF(seed int64, kind uint64) uint64 {
	return Mix64(uint64(seed)*PhiMix ^ kind)
}

// Stream is the counter-mode draw n of a seeded splitmix sequence:
// Mix64(seed·φ + n·c1). internal/client's jitter stream.
func Stream(seed int64, n uint64) uint64 {
	return Mix64(uint64(seed)*PhiMix + n*mixMul1)
}

// U01 maps a PRF word to [0, 1) with 53 bits of resolution — the
// probability-threshold form every fault plan compares against.
func U01(h uint64) float64 { return float64(h>>11) / (1 << 53) }
