package core

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Path reconstruction error kinds. The serving layer (internal/oracle)
// calls the walker on untrusted query input and loaded-from-disk matrices,
// so every failure mode is a typed, errors.Is-able error — never a panic
// or an unbounded loop.
var (
	// ErrPathSourceRange: the source index is outside 0..k-1.
	ErrPathSourceRange = errors.New("source index out of range")
	// ErrPathNodeRange: the target node is outside 0..n-1.
	ErrPathNodeRange = errors.New("node out of range")
	// ErrPathUnreachable: the recorded distance is infinite.
	ErrPathUnreachable = errors.New("unreachable")
	// ErrPathCycle: the parent walk revisits nodes beyond any simple
	// path's length (corrupt parent matrix).
	ErrPathCycle = errors.New("parent walk cycles")
	// ErrPathBroken: a non-source node has no parent, or a parent index
	// outside the graph (corrupt parent matrix).
	ErrPathBroken = errors.New("broken parent chain")
	// ErrPathBadArc: a recorded parent arc is not an edge of the graph.
	ErrPathBadArc = errors.New("recorded parent arc not in graph")
	// ErrPathInconsistent: the parent records diverge — the Figure-1
	// phenomenon on hop-bounded runs (use package cssp for consistent
	// h-hop paths).
	ErrPathInconsistent = errors.New("parent records diverge")
	// ErrPathMalformed: the result matrices do not match the graph or each
	// other in shape (truncated or corrupted input).
	ErrPathMalformed = errors.New("malformed result")
)

// PathError is the typed error of path reconstruction: Kind is one of the
// sentinels above (via errors.Is), Source the source index and Node the
// target of the failing query.
type PathError struct {
	Kind         error
	Source, Node int
	Detail       string
}

// Error implements error.
func (e *PathError) Error() string {
	msg := e.Kind.Error()
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return fmt.Sprintf("core: path(source %d, node %d): %s", e.Source, e.Node, msg)
}

// Unwrap makes errors.Is(err, ErrPath...) work.
func (e *PathError) Unwrap() error { return e.Kind }

func pathErr(kind error, i, v int, format string, args ...interface{}) *PathError {
	return &PathError{Kind: kind, Source: i, Node: v, Detail: fmt.Sprintf(format, args...)}
}

// PathView is the accessor form of a result's per-source matrices: the
// walker reads through it so callers that store distances and parents in
// another layout (the oracle's flat shards) reuse the identical walk and
// error semantics without materializing [][] slices. Hops may be nil for
// results that do not record hop counts; hop validation is then skipped.
type PathView struct {
	Sources []int
	Dist    func(i, v int) int64
	Hops    func(i, v int) int64
	Parent  func(i, v int) int
}

// WalkParents rebuilds the recorded shortest path from Sources[i] to v by
// walking parent pointers, validating tightness edge by edge: each step
// (p, u) must satisfy dist[p] + w(p,u) == dist[u] and (when hops are
// recorded) hops[p]+1 == hops[u]. All failures are *PathError.
func WalkParents(g *graph.Graph, pv PathView, i, v int) ([]int, error) {
	if i < 0 || i >= len(pv.Sources) {
		return nil, pathErr(ErrPathSourceRange, i, v, "index %d, %d sources", i, len(pv.Sources))
	}
	if v < 0 || v >= g.N() {
		return nil, pathErr(ErrPathNodeRange, i, v, "node %d, n=%d", v, g.N())
	}
	src := pv.Sources[i]
	if src < 0 || src >= g.N() {
		return nil, pathErr(ErrPathMalformed, i, v, "source node %d outside graph (n=%d)", src, g.N())
	}
	if pv.Dist(i, v) >= graph.Inf {
		return nil, pathErr(ErrPathUnreachable, i, v, "node %d unreachable from %d", v, src)
	}
	var rev []int
	cur := v
	for steps := 0; ; steps++ {
		rev = append(rev, cur)
		if cur == src {
			break
		}
		if steps >= g.N() {
			return nil, pathErr(ErrPathCycle, i, v, "walk exceeded %d nodes", g.N())
		}
		p := pv.Parent(i, cur)
		if p < 0 || p >= g.N() {
			return nil, pathErr(ErrPathBroken, i, v, "parent %d of node %d", p, cur)
		}
		w, ok := g.Weight(p, cur)
		if !ok {
			return nil, pathErr(ErrPathBadArc, i, v, "arc (%d,%d)", p, cur)
		}
		if pv.Dist(i, p)+w != pv.Dist(i, cur) {
			return nil, pathErr(ErrPathInconsistent, i, v,
				"at %d→%d (the Figure-1 phenomenon; use package cssp for consistent h-hop paths)", p, cur)
		}
		if pv.Hops != nil && pv.Hops(i, p)+1 != pv.Hops(i, cur) {
			return nil, pathErr(ErrPathInconsistent, i, v,
				"hop count at %d→%d (the Figure-1 phenomenon; use package cssp for consistent h-hop paths)", p, cur)
		}
		cur = p
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, nil
}

// validateShape checks the result matrices against the graph before any
// indexing: ReconstructPath accepts results deserialized from disk, so a
// shape mismatch must be a typed error, not an index panic.
func validateShape(g *graph.Graph, res *Result, i, v int) *PathError {
	k, n := len(res.Sources), g.N()
	if len(res.Dist) != k || len(res.Parent) != k || (res.Hops != nil && len(res.Hops) != k) {
		return pathErr(ErrPathMalformed, i, v,
			"%d sources but %d dist / %d parent / %d hops rows", k, len(res.Dist), len(res.Parent), len(res.Hops))
	}
	for r := 0; r < k; r++ {
		if len(res.Dist[r]) != n || len(res.Parent[r]) != n || (res.Hops != nil && len(res.Hops[r]) != n) {
			return pathErr(ErrPathMalformed, i, v, "row %d shorter than n=%d", r, n)
		}
	}
	return nil
}

// ReconstructPath rebuilds the recorded shortest path from Sources[i] to v,
// validating every edge (see WalkParents).
//
// For unrestricted runs (h ≥ n−1) the walk always succeeds. For genuinely
// hop-bounded runs it can fail with ErrPathInconsistent even though every
// individual distance is correct: a prefix of an h-hop shortest path need
// not be an h-hop shortest path (the paper's Figure 1), so an ancestor's
// recorded entry may belong to a different path. That is not a defect of
// the run — reconstructing h-hop paths requires the CSSSP machinery of
// Sec. III (package cssp), and the error says so.
func ReconstructPath(g *graph.Graph, res *Result, i, v int) ([]int, error) {
	if res.Parent == nil {
		return nil, pathErr(ErrPathMalformed, i, v, "result has no parent records")
	}
	if err := validateShape(g, res, i, v); err != nil {
		return nil, err
	}
	pv := PathView{
		Sources: res.Sources,
		Dist:    func(i, v int) int64 { return res.Dist[i][v] },
		Parent:  func(i, v int) int { return res.Parent[i][v] },
	}
	if res.Hops != nil {
		pv.Hops = func(i, v int) int64 { return res.Hops[i][v] }
	}
	return WalkParents(g, pv, i, v)
}

// PathWeight sums the arc weights along path (using minimum parallel
// weights), returning an error if an arc is missing.
func PathWeight(g *graph.Graph, path []int) (int64, error) {
	var total int64
	for j := 0; j+1 < len(path); j++ {
		w, ok := g.Weight(path[j], path[j+1])
		if !ok {
			return 0, fmt.Errorf("core: no arc (%d,%d)", path[j], path[j+1])
		}
		total += w
	}
	return total, nil
}
