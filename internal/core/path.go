package core

import (
	"fmt"

	"repro/internal/graph"
)

// ReconstructPath rebuilds the recorded shortest path from Sources[i] to v
// by walking parent pointers, validating tightness edge by edge: each step
// (p, u) must satisfy dist[p] + w(p,u) == dist[u] and hops[p]+1 == hops[u].
//
// For unrestricted runs (h ≥ n−1) the walk always succeeds. For genuinely
// hop-bounded runs it can fail even though every individual distance is
// correct: a prefix of an h-hop shortest path need not be an h-hop
// shortest path (the paper's Figure 1), so an ancestor's recorded entry
// may belong to a different path. That is not a defect of the run —
// reconstructing h-hop paths requires the CSSSP machinery of Sec. III
// (package cssp), and the error message says so.
func ReconstructPath(g *graph.Graph, res *Result, i, v int) ([]int, error) {
	if i < 0 || i >= len(res.Sources) {
		return nil, fmt.Errorf("core: source index %d out of range", i)
	}
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("core: node %d out of range", v)
	}
	src := res.Sources[i]
	if res.Dist[i][v] >= graph.Inf {
		return nil, fmt.Errorf("core: %d unreachable from %d within %d hops", v, src, len(res.Dist[i]))
	}
	var rev []int
	cur := v
	for steps := 0; ; steps++ {
		rev = append(rev, cur)
		if cur == src {
			break
		}
		if steps > g.N() {
			return nil, fmt.Errorf("core: parent walk from %d cycles", v)
		}
		p := res.Parent[i][cur]
		if p < 0 {
			return nil, fmt.Errorf("core: broken parent chain at %d", cur)
		}
		w, ok := g.Weight(p, cur)
		if !ok {
			return nil, fmt.Errorf("core: recorded parent arc (%d,%d) not in graph", p, cur)
		}
		if res.Dist[i][p]+w != res.Dist[i][cur] || res.Hops[i][p]+1 != res.Hops[i][cur] {
			return nil, fmt.Errorf(
				"core: parent records diverge at %d→%d (the Figure-1 phenomenon; use package cssp for consistent h-hop paths)",
				p, cur)
		}
		cur = p
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, nil
}

// PathWeight sums the arc weights along path (using minimum parallel
// weights), returning an error if an arc is missing.
func PathWeight(g *graph.Graph, path []int) (int64, error) {
	var total int64
	for j := 0; j+1 < len(path); j++ {
		w, ok := g.Weight(path[j], path[j+1])
		if !ok {
			return 0, fmt.Errorf("core: no arc (%d,%d)", path[j], path[j+1])
		}
		total += w
	}
	return total, nil
}
