// Checkpoint support: the pipelined (h,k)-SSP node's side of the
// congest.Stateful contract. The snapshot captures everything round-
// crossing — the list in order, the per-source sets in stored order
// (removal uses swap-deletion, so stored order influences future stored
// order and must round-trip for bit-exact resume), the shortest-path
// records, the lazy send heap in heap-array order (a heap array restored
// verbatim is the same heap), and the diagnostics counters. Derived
// fields (srcOf, inFrom/inWt, gamma, cached ⌈κ⌉) are rebuilt, not stored.
package core

import (
	"fmt"

	"repro/internal/congest"
)

func init() {
	// The codec name and field bytes predate the pooled *wire payload:
	// keeping both identical keeps historical checkpoint files loading.
	congest.RegisterPayloadCodec("core.wire", &wire{},
		func(enc *congest.StateEncoder, p congest.Payload) {
			m := p.(*wire)
			enc.Int64(m.d)
			enc.Int64(m.l)
			enc.Int(m.src)
			enc.Bool(m.sp)
			enc.Int64(int64(m.nu))
		},
		func(dec *congest.StateDecoder) (congest.Payload, error) {
			m := &wire{d: dec.Int64(), l: dec.Int64(), src: dec.Int(), sp: dec.Bool(), nu: int32(dec.Int64())}
			return m, dec.Err()
		})
}

// EncodeState implements congest.Stateful.
func (nd *node) EncodeState(enc *congest.StateEncoder) {
	enc.Int(nd.cur)
	enc.Int64(nd.seq)
	enc.Int(nd.pending)

	enc.Int(len(nd.list))
	for _, z := range nd.list {
		enc.Int64(z.d)
		enc.Int64(z.l)
		enc.Int(z.srcIdx)
		enc.Int(z.parent)
		enc.Bool(z.flagSP)
		enc.Bool(z.needSend)
	}

	enc.Int(len(nd.perSrc))
	for _, ps := range nd.perSrc {
		idxs := make([]int, len(ps))
		for i, z := range ps {
			idxs[i] = z.idx
		}
		enc.Ints(idxs)
	}

	enc.Int(len(nd.bests))
	for i := range nd.bests {
		b := &nd.bests[i]
		enc.Int64(b.d)
		enc.Int64(b.l)
		enc.Int(b.parent)
		ei := -1
		if b.e != nil && !b.e.dead {
			ei = b.e.idx
		}
		enc.Int(ei)
	}

	// Lazy heap, in heap-array order: restoring the array verbatim restores
	// the identical heap. Items whose entry has died keep a -1 index and are
	// re-attached to a shared dead sentinel on decode, so the lazy pop-and-
	// skip behaviour replays exactly.
	enc.Int(nd.h.Len())
	for _, it := range nd.h {
		enc.Int64(it.time)
		enc.Int64(it.seq)
		ei := -1
		if !it.e.dead {
			ei = it.e.idx
		}
		enc.Int(ei)
	}

	enc.Int(nd.late)
	enc.Int(nd.collisions)
	enc.Int(nd.missed)
	enc.Int(nd.inv1)
	enc.Int(nd.inv2)
	enc.Int(nd.maxList)
	enc.Int(nd.maxPer)
	enc.Int64(nd.inserts)
	enc.Int64(nd.evicts)
	enc.Int64(nd.nuDrops)
	enc.Int64(nd.dupDrops)

	enc.Int(len(nd.snaps))
	rounds := make([]int, 0, len(nd.snaps))
	for r := range nd.snaps {
		rounds = append(rounds, r)
	}
	for i := 1; i < len(rounds); i++ { // insertion sort; snapshot sets are tiny
		for j := i; j > 0 && rounds[j] < rounds[j-1]; j-- {
			rounds[j], rounds[j-1] = rounds[j-1], rounds[j]
		}
	}
	for _, r := range rounds {
		enc.Int(r)
		enc.Int64s(nd.snaps[r])
	}
}

// DecodeState implements congest.Stateful: it discards whatever Init
// built and reconstructs the node from the snapshot.
func (nd *node) DecodeState(dec *congest.StateDecoder) error {
	nd.cur = dec.Int()
	nd.seq = dec.Int64()
	nd.pending = dec.Int()

	nl := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	list := make([]*entry, nl)
	for i := range list {
		z := &entry{d: dec.Int64(), l: dec.Int64(), srcIdx: dec.Int(), parent: dec.Int(), flagSP: dec.Bool(), needSend: dec.Bool(), idx: i}
		if err := dec.Err(); err != nil {
			return err
		}
		if z.srcIdx < 0 || z.srcIdx >= len(nd.opts.Sources) {
			return fmt.Errorf("core: entry source index %d out of range", z.srcIdx)
		}
		z.ceilK = nd.gamma.CeilKappa(z.d, z.l)
		list[i] = z
	}
	nd.list = list

	at := func(i int) (*entry, error) {
		if i < 0 || i >= len(list) {
			return nil, fmt.Errorf("core: entry index %d out of range", i)
		}
		return list[i], nil
	}

	k := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if k != len(nd.opts.Sources) {
		return fmt.Errorf("core: snapshot has %d sources, run has %d", k, len(nd.opts.Sources))
	}
	nd.perSrc = make([][]*entry, k)
	for i := 0; i < k; i++ {
		idxs := dec.Ints()
		if err := dec.Err(); err != nil {
			return err
		}
		ps := make([]*entry, len(idxs))
		for j, ix := range idxs {
			z, err := at(ix)
			if err != nil {
				return err
			}
			ps[j] = z
		}
		nd.perSrc[i] = ps
	}

	nb := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if nb != k {
		return fmt.Errorf("core: snapshot has %d best records, want %d", nb, k)
	}
	nd.bests = make([]best, k)
	for i := range nd.bests {
		b := best{d: dec.Int64(), l: dec.Int64(), parent: dec.Int()}
		ei := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		if ei >= 0 {
			z, err := at(ei)
			if err != nil {
				return err
			}
			b.e = z
		}
		nd.bests[i] = b
	}

	nh := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	var deadSentinel *entry
	nd.h = make(sendHeap, 0, nh)
	for i := 0; i < nh; i++ {
		it := sendItem{time: dec.Int64(), seq: dec.Int64()}
		ei := dec.Int()
		if err := dec.Err(); err != nil {
			return err
		}
		if ei >= 0 {
			z, err := at(ei)
			if err != nil {
				return err
			}
			it.e = z
		} else {
			if deadSentinel == nil {
				deadSentinel = &entry{dead: true, idx: -1}
			}
			it.e = deadSentinel
		}
		it.e.heapRefs++
		nd.h = append(nd.h, it)
	}

	nd.late = dec.Int()
	nd.collisions = dec.Int()
	nd.missed = dec.Int()
	nd.inv1 = dec.Int()
	nd.inv2 = dec.Int()
	nd.maxList = dec.Int()
	nd.maxPer = dec.Int()
	nd.inserts = dec.Int64()
	nd.evicts = dec.Int64()
	nd.nuDrops = dec.Int64()
	nd.dupDrops = dec.Int64()

	ns := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	nd.snaps = nil
	if ns > 0 {
		nd.snaps = make(map[int][]int64, ns)
		for i := 0; i < ns; i++ {
			r := dec.Int()
			nd.snaps[r] = dec.Int64s()
		}
	}
	return dec.Err()
}
