package core

import (
	"testing"

	"repro/internal/graph"
)

func allSources(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// checkHKSSP validates a Result against the sequential h-hop reference.
func checkHKSSP(t *testing.T, g *graph.Graph, sources []int, h int, res *Result) {
	t.Helper()
	for i, s := range sources {
		wantD, wantL := graph.HHopDistHops(g, s, h)
		for v := 0; v < g.N(); v++ {
			if res.Dist[i][v] != wantD[v] {
				t.Fatalf("dist[src %d][%d] = %d, want %d", s, v, res.Dist[i][v], wantD[v])
			}
			if wantD[v] < graph.Inf && res.Hops[i][v] != int64(wantL[v]) {
				t.Fatalf("hops[src %d][%d] = %d, want %d (minimal hop count of an h-hop shortest path)",
					s, v, res.Hops[i][v], wantL[v])
			}
		}
	}
}

func TestSingleSourceSmallZeroChain(t *testing.T) {
	// The zero chain that breaks positive-weight pipelining (see
	// internal/posweight): Algorithm 1 must handle it.
	g := graph.New(4, true)
	g.MustAddEdge(0, 1, 0)
	g.MustAddEdge(1, 2, 0)
	g.MustAddEdge(2, 3, 0)
	res, err := Run(g, Opts{Sources: []int{0}, H: 3, Delta: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v := 0; v < 4; v++ {
		if res.Dist[0][v] != 0 {
			t.Fatalf("dist[0][%d] = %d, want 0", v, res.Dist[0][v])
		}
		if res.Hops[0][v] != int64(v) {
			t.Fatalf("hops[0][%d] = %d, want %d", v, res.Hops[0][v], v)
		}
	}
}

func TestHKSSPRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.Random(24, 72, graph.GenOpts{Seed: seed, MaxW: 7, ZeroFrac: 0.3, Directed: seed%2 == 0})
		sources := []int{0, 5, 11, 17}
		for _, h := range []int{2, 5, 9} {
			delta := graph.HHopDelta(g, sources, h)
			res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta, Audit: true})
			if err != nil {
				t.Fatalf("seed %d h %d: %v", seed, h, err)
			}
			checkHKSSP(t, g, sources, h, res)
			// The Pareto discipline's provable per-source bound.
			bound := int64(h) + 1
			if delta+1 < bound {
				bound = delta + 1
			}
			if int64(res.MaxPerSource) > bound {
				t.Errorf("seed %d h %d: per-source frontier %d exceeds min(h,Δ)+1 = %d",
					seed, h, res.MaxPerSource, bound)
			}
		}
	}
}

func TestAPSPMatchesDijkstra(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(20, 60, graph.GenOpts{Seed: seed, MaxW: 6, ZeroFrac: 0.35, Directed: seed%2 == 1})
		delta := graph.Delta(g)
		res, err := APSP(g, delta, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := graph.APSP(g)
		for s := 0; s < g.N(); s++ {
			for v := 0; v < g.N(); v++ {
				if res.Dist[s][v] != want[s][v] {
					t.Fatalf("seed %d: dist[%d][%d] = %d, want %d", seed, s, v, res.Dist[s][v], want[s][v])
				}
			}
		}
	}
}

func TestRoundsNearPaperBound(t *testing.T) {
	// Lemma II.14 claims completion by round 2√(khΔ) + k + h for the
	// paper's list discipline. The correct (Pareto) discipline can hold
	// more entries per source than Invariant 2 allows, inflating positions
	// and hence schedules; experiment E-INV measures the real ratio. Here
	// we assert the measured rounds stay within 2× the paper bound on this
	// family, which holds with large margin.
	for seed := int64(0); seed < 6; seed++ {
		g := graph.Random(28, 90, graph.GenOpts{Seed: seed, MaxW: 5, ZeroFrac: 0.3, Directed: true})
		sources := []int{1, 7, 13, 19, 25}
		h := 8
		delta := graph.HHopDelta(g, sources, h)
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if int64(res.Stats.Rounds) > 2*res.Bound {
			t.Errorf("seed %d: rounds %d exceed 2× paper bound %d (late=%d collisions=%d)",
				seed, res.Stats.Rounds, res.Bound, res.LateSends, res.Collisions)
		}
	}
}

func TestAPSPRoundsNearBound(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := graph.Random(24, 72, graph.GenOpts{Seed: seed, MaxW: 4, ZeroFrac: 0.25, Directed: false})
		delta := graph.Delta(g)
		res, err := APSP(g, delta, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Theorem I.1(ii): 2n√Δ + 2n for the paper's discipline; ≤2× for
		// the Pareto discipline on this family.
		if int64(res.Stats.Rounds) > 2*res.Bound {
			t.Errorf("seed %d: APSP rounds %d exceed 2× bound %d", seed, res.Stats.Rounds, res.Bound)
		}
	}
}

func TestPaperModeAPSPRegime(t *testing.T) {
	// With h = n−1 the hop budget never binds for final answers (a
	// min-weight walk contains a simple min-weight path), so the paper's
	// literal machinery — whose losses are all hop-budget Pareto points —
	// is expected to be correct for APSP, and to respect both Invariant 2
	// and the Theorem I.1(ii) round bound. This validates the paper's
	// headline APSP claim as stated.
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(20, 60, graph.GenOpts{Seed: seed, MaxW: 5, ZeroFrac: 0.3, Directed: seed%2 == 0})
		delta := graph.Delta(g)
		sources := allSources(g.N())
		res, err := Run(g, Opts{
			Sources: sources, H: g.N() - 1, Delta: delta, Audit: true,
			Mode: ModePaper, Evict: EvictAllInserts, GateByUpdatedKey: true,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := graph.APSP(g)
		for s := 0; s < g.N(); s++ {
			for v := 0; v < g.N(); v++ {
				if res.Dist[s][v] != want[s][v] {
					t.Fatalf("seed %d: paper-mode APSP wrong at [%d][%d]: %d vs %d",
						seed, s, v, res.Dist[s][v], want[s][v])
				}
			}
		}
		if res.Inv2Violations != 0 {
			t.Errorf("seed %d: paper mode violated Invariant 2 %d times in the APSP regime", seed, res.Inv2Violations)
		}
		if int64(res.Stats.Rounds) > res.Bound {
			t.Errorf("seed %d: paper-mode APSP rounds %d exceed bound %d", seed, res.Stats.Rounds, res.Bound)
		}
	}
}

func TestZeroHeavyGraphs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.ZeroHeavy(26, 80, 0.6, graph.GenOpts{Seed: seed, MaxW: 8, Directed: true})
		sources := []int{0, 9, 18}
		h := 12
		delta := graph.HHopDelta(g, sources, h)
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta, Audit: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkHKSSP(t, g, sources, h, res)
	}
}

func TestLayeredZeroLadder(t *testing.T) {
	g := graph.LayeredZero(5, 6, graph.GenOpts{Seed: 2, MaxW: 4})
	sources := []int{0, 7}
	h := g.N() - 1
	delta := graph.HHopDelta(g, sources, h)
	res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkHKSSP(t, g, sources, h, res)
}

func TestHopBudgetBinds(t *testing.T) {
	// Weight-zero path: with H=3 only 3 hops reachable.
	g := graph.Path(8, graph.GenOpts{Seed: 1, MaxW: 1}).Transform(func(int64) int64 { return 0 })
	res, err := Run(g, Opts{Sources: []int{0}, H: 3, Delta: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v := 0; v < 8; v++ {
		want := graph.Inf
		if v <= 3 {
			want = 0
		}
		if res.Dist[0][v] != want {
			t.Fatalf("dist[0][%d] = %d, want %d", v, res.Dist[0][v], want)
		}
	}
}

func TestParentPointersAreTight(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Random(22, 66, graph.GenOpts{Seed: seed, MaxW: 6, ZeroFrac: 0.3, Directed: true})
		sources := []int{0, 8}
		h := 7
		delta := graph.HHopDelta(g, sources, h)
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, s := range sources {
			for v := 0; v < g.N(); v++ {
				if res.Dist[i][v] >= graph.Inf {
					if res.Parent[i][v] != -1 {
						t.Fatalf("unreachable node %d has parent", v)
					}
					continue
				}
				if v == s {
					if res.Parent[i][v] != s {
						t.Fatalf("source parent = %d", res.Parent[i][v])
					}
					continue
				}
				p := res.Parent[i][v]
				w, ok := g.Weight(p, v)
				if !ok {
					t.Fatalf("parent arc (%d,%d) missing", p, v)
				}
				// The recorded path's prefix to p has res.Hops-1 hops; its
				// weight must equal dist - w and be optimal for that hop
				// budget (else a shorter h-hop path to v would exist).
				lm1 := int(res.Hops[i][v]) - 1
				pref := graph.HHopDistances(g, s, lm1)
				if pref[p]+w != res.Dist[i][v] {
					t.Fatalf("seed %d: parent edge not tight at v=%d: pref=%d w=%d dist=%d",
						seed, v, pref[p], w, res.Dist[i][v])
				}
			}
		}
	}
}

func TestDeltaAutoUpperBound(t *testing.T) {
	g := graph.Random(18, 50, graph.GenOpts{Seed: 4, MaxW: 5, ZeroFrac: 0.2, Directed: true})
	res, err := Run(g, Opts{Sources: []int{0, 3}, H: 6}) // Delta omitted
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Delta != 6*g.MaxWeight() {
		t.Fatalf("auto Delta = %d, want H·maxW = %d", res.Delta, 6*g.MaxWeight())
	}
	checkHKSSP(t, g, []int{0, 3}, 6, res)
}

func TestStrictModeOnZeroFreeGraph(t *testing.T) {
	// With strictly positive weights... strictness is still not guaranteed
	// by the paper to be collision-free, but it must stay correct whenever
	// no sends are missed; we verify correctness holds or a miss is
	// reported.
	g := graph.Random(20, 60, graph.GenOpts{Seed: 6, MinW: 1, MaxW: 5, Directed: true})
	sources := []int{0, 5, 10}
	h := 8
	delta := graph.HHopDelta(g, sources, h)
	res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta, Strict: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Missed == 0 {
		checkHKSSP(t, g, sources, h, res)
	} else {
		t.Logf("strict mode missed %d sends on a positive-weight graph", res.Missed)
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(4, graph.GenOpts{Seed: 1, MaxW: 3})
	if _, err := Run(g, Opts{H: 2}); err == nil {
		t.Fatal("no sources accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{0}}); err == nil {
		t.Fatal("H=0 accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{9}, H: 2}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{1, 1}, H: 2}); err == nil {
		t.Fatal("duplicate source accepted")
	}
}

func TestInvariantCountersPopulated(t *testing.T) {
	g := graph.ZeroHeavy(20, 60, 0.5, graph.GenOpts{Seed: 3, MaxW: 6, Directed: true})
	sources := allSources(g.N())
	h := 10
	delta := graph.HHopDelta(g, sources, h)
	res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta, Audit: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Inserts == 0 || res.MaxListLen == 0 || res.MaxPerSource == 0 {
		t.Fatalf("counters empty: %+v", res)
	}
	// Pareto discipline bound: per-source entries ≤ min(h,Δ)+1 and total
	// list ≤ k · (min(h,Δ)+1).
	perBound := int64(h) + 1
	if delta+1 < perBound {
		perBound = delta + 1
	}
	if int64(res.MaxPerSource) > perBound {
		t.Errorf("per-source frontier %d exceeds min(h,Δ)+1 = %d", res.MaxPerSource, perBound)
	}
	if int64(res.MaxListLen) > int64(len(sources))*perBound {
		t.Errorf("list length %d exceeds k·(min(h,Δ)+1)", res.MaxListLen)
	}
}

func TestMultiEntryListsActuallyUsed(t *testing.T) {
	// On zero-heavy graphs Algorithm 1's distinguishing feature — multiple
	// entries per source — must actually occur; otherwise this
	// implementation would be indistinguishable from the single-estimate
	// baseline and the test suite would not be exercising the novelty.
	found := false
	for seed := int64(0); seed < 10 && !found; seed++ {
		g := graph.ZeroHeavy(24, 96, 0.5, graph.GenOpts{Seed: seed, MaxW: 9, Directed: true})
		sources := allSources(g.N())
		h := 12
		delta := graph.HHopDelta(g, sources, h)
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.MaxPerSource > 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no run ever stored more than one entry per source")
	}
}

func TestUndirectedGraph(t *testing.T) {
	g := graph.Grid(4, 5, graph.GenOpts{Seed: 7, MaxW: 5, ZeroFrac: 0.3})
	sources := []int{0, 10, 19}
	h := 9
	delta := graph.HHopDelta(g, sources, h)
	res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkHKSSP(t, g, sources, h, res)
}

func TestSingleNodeGraph(t *testing.T) {
	g := graph.New(1, true)
	res, err := Run(g, Opts{Sources: []int{0}, H: 1, Delta: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dist[0][0] != 0 || res.Stats.Rounds != 0 {
		t.Fatalf("single node: %+v", res)
	}
}
