package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Property: the Pareto-pipelined (h,k)-SSP equals the sequential h-hop DP
// on arbitrary random instances — distances and minimal hop counts both.
func TestQuickHKSSPMatchesReference(t *testing.T) {
	f := func(seedRaw uint32, nRaw, hRaw, kRaw, zfRaw uint8) bool {
		seed := int64(seedRaw)
		n := 6 + int(nRaw%14)
		h := 1 + int(hRaw%7)
		k := 1 + int(kRaw%3)
		zf := float64(zfRaw%4) / 4.0
		g := graph.Random(n, 3*n, graph.GenOpts{Seed: seed, MaxW: 6, ZeroFrac: zf, Directed: seed%2 == 0})
		sources := make([]int, 0, k)
		for i := 0; i < k; i++ {
			sources = append(sources, (i*n)/k)
		}
		res, err := Run(g, Opts{Sources: sources, H: h})
		if err != nil {
			return false
		}
		for i, s := range sources {
			wantD, wantL := graph.HHopDistHops(g, s, h)
			for v := 0; v < n; v++ {
				if res.Dist[i][v] != wantD[v] {
					return false
				}
				if wantD[v] < graph.Inf && res.Hops[i][v] != int64(wantL[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the send schedule audit never reports an Invariant-1 violation
// (entries always arrive strictly before their schedule time).
func TestQuickInvariant1Holds(t *testing.T) {
	f := func(seedRaw uint32, hRaw uint8) bool {
		seed := int64(seedRaw)
		h := 2 + int(hRaw%8)
		g := graph.ZeroHeavy(16, 48, 0.5, graph.GenOpts{Seed: seed, MaxW: 5, Directed: true})
		sources := []int{0, 5, 10}
		delta := graph.HHopDelta(g, sources, h)
		if delta == 0 {
			delta = 1
		}
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta, Audit: true})
		if err != nil {
			return false
		}
		return res.Inv1Violations == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the per-source frontier never exceeds min(h,Δ)+1 under the
// Pareto discipline.
func TestQuickFrontierBound(t *testing.T) {
	f := func(seedRaw uint32, hRaw uint8) bool {
		seed := int64(seedRaw)
		h := 2 + int(hRaw%10)
		g := graph.Random(14, 42, graph.GenOpts{Seed: seed, MaxW: 7, ZeroFrac: 0.4, Directed: true})
		sources := []int{0, 7}
		delta := graph.HHopDelta(g, sources, h)
		if delta == 0 {
			delta = 1
		}
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
		if err != nil {
			return false
		}
		bound := int64(h) + 1
		if delta+1 < bound {
			bound = delta + 1
		}
		return int64(res.MaxPerSource) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: results and stats are identical across worker counts
// (the engine parallelizes within rounds; outcomes must not depend on it).
func TestDeterministicAcrossWorkers(t *testing.T) {
	g := graph.ZeroHeavy(30, 100, 0.5, graph.GenOpts{Seed: 17, MaxW: 8, Directed: true})
	sources := []int{0, 10, 20}
	h := 9
	delta := graph.HHopDelta(g, sources, h)
	run := func(workers int) *Result {
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		res := run(w)
		if res.Stats != base.Stats {
			t.Fatalf("workers=%d changed stats: %+v vs %+v", w, res.Stats, base.Stats)
		}
		for i := range sources {
			for v := 0; v < g.N(); v++ {
				if res.Dist[i][v] != base.Dist[i][v] || res.Parent[i][v] != base.Parent[i][v] {
					t.Fatalf("workers=%d changed result at [%d][%d]", w, i, v)
				}
			}
		}
	}
}

// The MaxRounds guard must fire as an error, not hang, when set too low.
func TestMaxRoundsGuard(t *testing.T) {
	g := graph.Random(20, 60, graph.GenOpts{Seed: 1, MaxW: 5, Directed: true})
	_, err := Run(g, Opts{Sources: []int{0}, H: 10, MaxRounds: 2})
	if err == nil {
		t.Fatal("MaxRounds=2 did not error")
	}
}

// The Trace hook must receive events and force single-worker execution.
func TestTraceHook(t *testing.T) {
	g := graph.Path(4, graph.GenOpts{Seed: 1, MaxW: 3})
	lines := 0
	_, err := Run(g, Opts{Sources: []int{0}, H: 3, Trace: func(string, ...interface{}) { lines++ }})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lines == 0 {
		t.Fatal("trace hook never called")
	}
}
