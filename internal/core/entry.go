package core

import (
	"repro/internal/key"
)

// entry is one element Z of list_v (paper Table II): a path record
// (κ, d, l, x) with κ = d·γ + l represented implicitly by (d, l) and
// compared exactly through key.Gamma.
type entry struct {
	d, l   int64 // weighted distance and hop length of the path
	srcIdx int   // index of source x in Opts.Sources
	parent int   // the neighbor the entry arrived from (source itself at origin)

	flagSP   bool // Z.flag-d*: currently the shortest-path entry for x at v
	needSend bool // scheduled but not yet sent
	dead     bool // removed from the list (heap entries are lazy)

	idx      int   // current position in the list (0-based; pos = idx+1)
	ceilK    int64 // cached ⌈κ⌉ = ⌈d·γ⌉ + l
	heapRefs int32 // live sendItems pointing here; recycling waits for 0
}

// less is the total list order (κ, d, x): keys ascending, ties by distance,
// then by source label (paper Sec. II-A: "ordered by key value κ, with ties
// first resolved by the value of d, and then by the label of the source
// vertex").
func (z *entry) less(o *entry, g key.Gamma, sources []int) bool {
	if c := g.Cmp(z.d, z.l, o.d, o.l); c != 0 {
		return c < 0
	}
	if z.d != o.d {
		return z.d < o.d
	}
	return sources[z.srcIdx] < sources[o.srcIdx]
}

// equalKey reports whether two entries occupy the same position in the
// total order: identical (d, l, x) (κ is a function of d and l).
func (z *entry) equalKey(o *entry) bool {
	return z.d == o.d && z.l == o.l && z.srcIdx == o.srcIdx
}

// wire is the message payload M = (Z, Z.flag-d*, Z.ν) of Step 2.
type wire struct {
	d, l int64
	src  int // source node ID (not index: IDs are what travel on the wire)
	sp   bool
	nu   int32 // Z.ν: entries for x at or below Z on the sender's list
}

// Words reports the CONGEST size: d, l, src, ν and the flag packed with ν.
func (wire) Words() int { return 4 }
