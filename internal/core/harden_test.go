package core

import (
	"errors"
	"testing"

	"repro/internal/graph"
)

// TestReconstructPathTypedErrors drives every failure mode of the
// hardened walker with corrupt or out-of-range inputs — the oracle serving
// layer calls this on untrusted queries, so each case must come back as a
// typed error, never a panic or a hang.
func TestReconstructPathTypedErrors(t *testing.T) {
	// A path 0—1—2—3 whose last edge has weight zero: the zero edge is what
	// lets a corrupted parent matrix form a cycle that passes the
	// distance-tightness check (hop records must be dropped too — consistent
	// hops cannot cycle, which is itself part of the defense).
	mkRes := func() (*graph.Graph, *Result) {
		g := graph.New(4, false)
		g.MustAddEdge(0, 1, 2)
		g.MustAddEdge(1, 2, 1)
		g.MustAddEdge(2, 3, 0)
		res, err := Run(g, Opts{Sources: []int{0}, H: 3})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return g, res
	}

	cases := []struct {
		name    string
		mutate  func(*Result)
		i, v    int
		wantErr error
	}{
		{"source index negative", nil, -1, 2, ErrPathSourceRange},
		{"source index too large", nil, 7, 2, ErrPathSourceRange},
		{"node negative", nil, 0, -3, ErrPathNodeRange},
		{"node too large", nil, 0, 99, ErrPathNodeRange},
		{"parent cycle", func(r *Result) {
			// 2 and 3 point at each other across the zero-weight edge: every
			// step is distance-tight, so only the cycle guard can stop the
			// walk from looping forever.
			r.Parent[0][2] = 3
			r.Parent[0][3] = 2
			r.Hops = nil
		}, 0, 3, ErrPathCycle},
		{"self-parent", func(r *Result) {
			// A self-loop arc is never in the graph, so the walk dies on arc
			// validation before the cycle guard is even needed.
			r.Parent[0][2] = 2
			r.Hops = nil
		}, 0, 2, ErrPathBadArc},
		{"broken chain", func(r *Result) { r.Parent[0][2] = -1 }, 0, 2, ErrPathBroken},
		{"parent outside graph", func(r *Result) { r.Parent[0][2] = 42 }, 0, 2, ErrPathBroken},
		{"parent arc not in graph", func(r *Result) { r.Parent[0][3] = 1 }, 0, 3, ErrPathBadArc},
		{"distance not tight", func(r *Result) { r.Dist[0][2]++ }, 0, 3, ErrPathInconsistent},
		{"hop count not tight", func(r *Result) { r.Hops[0][2]++ }, 0, 3, ErrPathInconsistent},
		{"dist rows truncated", func(r *Result) { r.Dist = r.Dist[:0] }, 0, 2, ErrPathMalformed},
		{"dist row short", func(r *Result) { r.Dist[0] = r.Dist[0][:2] }, 0, 1, ErrPathMalformed},
		{"parent rows missing", func(r *Result) { r.Parent = nil }, 0, 2, ErrPathMalformed},
		{"source node outside graph", func(r *Result) { r.Sources[0] = 9 }, 0, 2, ErrPathMalformed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, res := mkRes()
			if tc.mutate != nil {
				tc.mutate(res)
			}
			path, err := ReconstructPath(g, res, tc.i, tc.v)
			if err == nil {
				t.Fatalf("corrupt input accepted, path %v", path)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want kind %v", err, tc.wantErr)
			}
			var pe *PathError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not *PathError", err)
			}
		})
	}
}

// TestReconstructPathUnreachableTyped pins the unreachable case to its
// sentinel (directed path graph reversed: node 0 cannot be reached from 3).
func TestReconstructPathUnreachableTyped(t *testing.T) {
	g := graph.Path(4, graph.GenOpts{Seed: 1, MaxW: 3})
	res, err := Run(g, Opts{Sources: []int{0}, H: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	_, err = ReconstructPath(g, res, 0, 3)
	if !errors.Is(err, ErrPathUnreachable) {
		t.Fatalf("error %v, want ErrPathUnreachable", err)
	}
}

// TestWalkParentsNilHops checks the accessor walker accepts results
// without hop records (Bellman–Ford parents, oracle snapshots) and still
// validates distance tightness.
func TestWalkParentsNilHops(t *testing.T) {
	g := graph.New(3, true)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	dist := []int64{0, 2, 5}
	parent := []int{0, 0, 1}
	pv := PathView{
		Sources: []int{0},
		Dist:    func(i, v int) int64 { return dist[v] },
		Parent:  func(i, v int) int { return parent[v] },
	}
	path, err := WalkParents(g, pv, 0, 2)
	if err != nil {
		t.Fatalf("WalkParents: %v", err)
	}
	if len(path) != 3 || path[0] != 0 || path[2] != 2 {
		t.Fatalf("path = %v, want [0 1 2]", path)
	}
	dist[1] = 1 // break tightness
	if _, err := WalkParents(g, pv, 0, 2); !errors.Is(err, ErrPathInconsistent) {
		t.Fatalf("error %v, want ErrPathInconsistent", err)
	}
}
