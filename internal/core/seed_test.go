package core

import (
	"testing"

	"repro/internal/graph"
)

// extendReference computes the expected result of the extension variant:
// h relaxation waves from the seeded state.
func extendReference(g *graph.Graph, seed []int64, src, h int) []int64 {
	cur := append([]int64(nil), seed...)
	if src >= 0 && cur[src] > 0 {
		cur[src] = 0
	}
	for it := 0; it < h; it++ {
		next := append([]int64(nil), cur...)
		for v := 0; v < g.N(); v++ {
			if cur[v] >= graph.Inf {
				continue
			}
			for _, e := range g.Out(v) {
				if d := cur[v] + e.W; d < next[e.To] {
					next[e.To] = d
				}
			}
		}
		cur = next
	}
	return cur
}

func TestSeededExtension(t *testing.T) {
	for seedNum := int64(0); seedNum < 5; seedNum++ {
		g := graph.Random(22, 70, graph.GenOpts{Seed: seedNum, MaxW: 6, ZeroFrac: 0.3, Directed: true})
		n := g.N()
		// Two conceptual sources with scattered known frontiers.
		seeds := make([][]int64, 2)
		for i := range seeds {
			seeds[i] = make([]int64, n)
			for v := range seeds[i] {
				seeds[i][v] = graph.Inf
			}
		}
		seeds[0][3], seeds[0][9], seeds[0][15] = 4, 0, 11
		seeds[1][7], seeds[1][19] = 2, 6
		sources := []int{3, 7} // labels only; their own seeds apply
		h := 5
		res, err := Run(g, Opts{Sources: sources, H: h, Seed: seeds})
		if err != nil {
			t.Fatalf("seed %d: %v", seedNum, err)
		}
		for i, s := range sources {
			want := extendReference(g, seeds[i], s, h)
			for v := 0; v < n; v++ {
				if res.Dist[i][v] != want[v] {
					t.Fatalf("seed %d: ext dist[%d][%d] = %d, want %d", seedNum, s, v, res.Dist[i][v], want[v])
				}
			}
		}
	}
}

func TestSeedZeroHeavyExtension(t *testing.T) {
	g := graph.ZeroHeavy(20, 70, 0.5, graph.GenOpts{Seed: 8, MaxW: 7, Directed: true})
	n := g.N()
	seed := make([]int64, n)
	for v := range seed {
		seed[v] = graph.Inf
	}
	seed[5], seed[12] = 3, 0
	res, err := Run(g, Opts{Sources: []int{5}, H: 6, Seed: [][]int64{seed}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := extendReference(g, seed, 5, 6)
	for v := 0; v < n; v++ {
		if res.Dist[0][v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[0][v], want[v])
		}
	}
}

func TestSeedSourceKeepsZero(t *testing.T) {
	// A seed at the source larger than 0 must not override the source's
	// own distance.
	g := graph.Path(4, graph.GenOpts{Seed: 1, MaxW: 3, MinW: 1})
	seed := []int64{9, graph.Inf, graph.Inf, graph.Inf}
	res, err := Run(g, Opts{Sources: []int{0}, H: 3, Seed: [][]int64{seed}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dist[0][0] != 0 {
		t.Fatalf("source distance = %d, want 0", res.Dist[0][0])
	}
}

func TestSeedValidation(t *testing.T) {
	g := graph.Path(3, graph.GenOpts{Seed: 1, MaxW: 2})
	if _, err := Run(g, Opts{Sources: []int{0}, H: 2, Seed: [][]int64{nil, nil}}); err == nil {
		t.Fatal("mis-sized Seed accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{0}, H: 2, Seed: [][]int64{{0, 1}}}); err == nil {
		t.Fatal("short Seed row accepted")
	}
	if _, err := Run(g, Opts{Sources: []int{0}, H: 2, Seed: [][]int64{{0, -2, 1}}}); err == nil {
		t.Fatal("negative seed accepted")
	}
}
