// Package core implements the paper's central contribution: the pipelined
// (h,k)-SSP algorithm (Algorithm 1, Sec. II) for graphs with non-negative
// integer edge weights, zero-weight edges included.
//
// Every node v maintains list_v of path entries Z = (κ, d, l, x) ordered by
// (κ, d, x), where κ = d·γ + l and γ = √(kh/Δ). Unusually — and this is the
// algorithm's innovation — list_v may hold several entries per source,
// including entries known not to be shortest, governed by the Z.ν counting
// rule (Step 13) and the INSERT eviction rule. An entry at position pos is
// sent in round ⌈κ⌉ + pos. The paper proves (Theorem I.1) that all h-hop
// shortest path distances from k sources arrive within
// 2√(khΔ) + k + h rounds.
//
// The send schedule: the paper states the rule as equality,
// "send Z when ⌈Z.κ + pos(Z)⌉ = r". Because pos(Z) can grow by more than
// one between consecutive rounds (several inserts below Z while an eviction
// lands above it), a literal implementation can skip past the equality
// moment. This implementation therefore defaults to the lenient rule —
// send the earliest-scheduled unsent entry whose schedule time has arrived,
// one per round — and counts both late sends and same-round schedule
// collisions, so the experiments quantify how often the strict rule would
// have misfired (experiment E-INV). Opts.Strict selects the literal rule
// for the ablation.
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/key"
)

// EvictPolicy selects when the INSERT procedure's eviction rule (remove the
// closest non-SP entry above the inserted one; paper Observation II.3) is
// applied. The paper's text applies it to every insertion, but doing so is
// demonstrably incorrect on small instances this repository found: an
// insertion can evict a due-but-unsent non-SP entry that is the unique
// carrier of a downstream node's h-hop shortest path (see
// TestPaperModeCounterexampleEviction). The default therefore only evicts
// entries whose information has already been broadcast; the literal policy
// is kept for the ablation experiment A-LIT.
type EvictPolicy int

const (
	// EvictOnlySent applies the rule on every insertion but only evicts
	// entries that have already been sent (information already shared with
	// all neighbors, so discarding the local copy cannot lose paths).
	// Default.
	EvictOnlySent EvictPolicy = iota
	// EvictAllInserts applies the eviction rule on every insertion — the
	// literal reading of the paper's INSERT procedure. Incorrect; kept for
	// the ablation.
	EvictAllInserts
	// EvictNonSPInserts applies the eviction rule only on Step 13 (non-SP)
	// insertions. Still incorrect (a non-SP insert can evict an unsent
	// carrier); kept for the ablation.
	EvictNonSPInserts
)

// Mode selects the list-maintenance discipline.
type Mode int

const (
	// ModePareto (default) keeps, per source, the Pareto frontier of
	// (distance, hops) pairs: an incoming entry is dropped iff some retained
	// entry has both smaller-or-equal distance and smaller-or-equal hop
	// count, and an inserted entry removes the entries it dominates.
	// Dominated entries are useless for every suffix and hop budget, so
	// this discipline is correct by construction for exact h-hop shortest
	// paths; it retains the paper's keys and send schedule unchanged. Its
	// per-source list size (≤ min(h,Δ)+1) can exceed the paper's
	// Invariant 2 bound h/γ+1 — that gap is precisely where the paper's
	// machinery loses needed entries (see ModePaper).
	ModePareto Mode = iota
	// ModePaper reproduces the paper's Step 13 ν-counting insertion gate
	// and the INSERT eviction rule, with the EvictPolicy and gate-key knobs
	// below. The literal readings are demonstrably incorrect on small
	// instances (see counterexample_test.go); this mode exists to
	// reproduce and measure the paper's accounting, including exactly that
	// failure.
	ModePaper
)

// Opts configures an Algorithm 1 run.
type Opts struct {
	// Sources is the source set S (the k of (h,k)-SSP). Required.
	Sources []int
	// H is the hop bound h. Required.
	H int
	// Delta is the promised bound on h-hop shortest-path distances. If 0,
	// the safe upper bound H·maxWeight is used (correct, but a larger Δ
	// weakens γ and costs rounds — the paper assumes Δ is known).
	Delta int64
	// Seed, if non-nil, gives initial known distances per source index
	// (graph.Inf = unknown): the extension variant of Sec. II-C lifted to
	// the multi-entry algorithm. Seeded nodes start with an entry
	// (Seed[i][v], 0) — an already-computed distance with zero additional
	// hops — and the run extends those by up to H further hops. A source's
	// own entry remains (0,0) unless a smaller seed is given. Delta must
	// then bound seed+extension distances; the auto bound accounts for the
	// largest finite seed.
	Seed [][]int64
	// Mode selects the list discipline (see Mode).
	Mode Mode
	// Strict selects the paper's literal equality-only send rule.
	Strict bool
	// Evict selects the INSERT eviction policy in ModePaper (see
	// EvictPolicy).
	Evict EvictPolicy
	// GateByUpdatedKey switches the Step 13 insertion gate to count the
	// receiver's entries below the *updated* key Z.κ (one literal reading
	// of the paper's text). The default counts entries below the *sender's*
	// key Z⁻.κ; gating on the updated key demonstrably drops essential
	// entries (see TestPaperModeCounterexampleGateKey). Only meaningful in
	// ModePaper.
	GateByUpdatedKey bool
	// Audit enables per-insert Invariant 1 and per-round Invariant 2
	// verification (costs time; violations are counted in the Result).
	Audit bool
	// Prealloc, when positive, pre-sizes each node's entry storage for that
	// many concurrent entries at Init: the freelist is stocked with a
	// contiguous block and the list, per-source sets, send heap and scratch
	// slices get matching capacity. Rounds then allocate nothing until a
	// node's live entry count first exceeds the hint (growth falls back to
	// ordinary allocation — correct, just no longer allocation-free). The
	// steady-state allocation guards rely on this; the default 0 keeps
	// memory proportional to actual demand.
	Prealloc int
	// MaxRounds, Workers and Scheduler are passed to the engine. MaxRounds
	// defaults to a slack multiple of the paper bound.
	MaxRounds int
	Workers   int
	Scheduler congest.Scheduler
	// Trace, if set, receives a line per list event (insert, drop, evict,
	// send); a debugging aid. Forces Workers=1 so lines are ordered.
	Trace func(format string, args ...interface{})
	// Obs, if set, receives engine events (see congest.Observer); attach a
	// congest.Timeline via Timeline.Observer(), or an obs.Recorder for
	// phase-attributed traces and metrics.
	Obs congest.Observer
	// Network, if set, replaces the engine's perfect delivery with a
	// pluggable substrate (see congest.Config.Network); internal/faults
	// provides the adversarial one.
	Network congest.Network
	// Checkpoint and Ctx are passed to the engine (see
	// congest.Config.Checkpoint and congest.Config.Ctx).
	Checkpoint *congest.CheckpointPolicy
	Ctx        context.Context
	// SnapshotRounds, if non-empty, records each node's best distances at
	// the end of the given rounds (ascending), exposing the algorithm's
	// anytime behaviour (experiment E-CONV). Rounds after quiescence
	// report the final state.
	SnapshotRounds []int
}

// Result reports distances and the measured behaviour of the run.
type Result struct {
	// Sources echoes the source set; row i below belongs to Sources[i].
	Sources []int
	// Dist[i][v], Hops[i][v]: the h-hop shortest distance from Sources[i]
	// to v and the minimal hop count attaining it (graph.Inf / -1 when v is
	// not reachable within h hops).
	Dist [][]int64
	Hops [][]int64
	// Parent[i][v]: the predecessor on the recorded path (last edge), -1 if
	// none, the source itself at the source.
	Parent [][]int
	// Stats is the engine cost report.
	Stats congest.Stats
	// Bound is the paper's round bound 2√(khΔ) + k + h for this run's
	// parameters (Lemma II.14), for direct comparison with Stats.Rounds.
	Bound int64
	// Delta is the Δ the run actually used.
	Delta int64

	// Schedule diagnostics (see package comment).
	LateSends  int // sends after their scheduled round (lenient mode)
	Collisions int // rounds at a node where ≥2 entries were due simultaneously
	Missed     int // strict mode: due entries that could not be sent in their round

	// Invariant audit (populated when Opts.Audit).
	Inv1Violations int // inserts with r ≥ ⌈κ⌉ + pos (Lemma II.12)
	Inv2Violations int // per-source list count exceeding h/γ + 1 (Lemma II.11)

	// Snapshots[r][i][v]: best distance for Sources[i] at node v at the end
	// of round r, for each requested SnapshotRounds entry (final state for
	// rounds past quiescence).
	Snapshots map[int][][]int64

	// List behaviour.
	MaxListLen   int   // max |list_v| observed (paper: ≤ γΔ + k)
	MaxPerSource int   // max entries for one source at one node (paper: ≤ h/γ + 1)
	Inserts      int64 // total list insertions
	Evictions    int64 // entries removed by the INSERT eviction rule
	NuDrops      int64 // non-SP entries rejected by the Step 13 counting rule
	DupDrops     int64 // exact duplicate entries dropped
}

// sendItem is a lazy heap item: the entry may have moved (schedule grew) or
// died since it was pushed.
type sendItem struct {
	time int64
	seq  int64
	e    *entry
}

type sendHeap []sendItem

func (h sendHeap) Len() int { return len(h) }
func (h sendHeap) Less(i, j int) bool {
	return h[i].time < h[j].time || (h[i].time == h[j].time && h[i].seq < h[j].seq)
}
func (h sendHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// The sift code below is container/heap's algorithm verbatim on the
// concrete type, for two reasons: the stdlib API boxes every pushed
// sendItem into an interface{} (a heap allocation per schedule() on the
// engine's zero-alloc round path), and the heap ARRAY — not just the pop
// order — is serialized by EncodeState, so the element movements must
// match the historical ones exactly for checkpoint byte-compatibility.
func (h sendHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func (h sendHeap) down(i, n int) {
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h.Less(j2, j) {
			j = j2
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}

func (h *sendHeap) push(it sendItem) {
	*h = append(*h, it)
	h.up(len(*h) - 1)
}

func (h *sendHeap) popMin() sendItem {
	old := *h
	n := len(old) - 1
	old.Swap(0, n)
	old.down(0, n)
	it := old[n]
	*h = old[:n]
	return it
}

// best is the node's current shortest-path record d*_v[x] with the Step 9
// tie-break state (d, then l, then parent ID).
type best struct {
	d, l   int64
	parent int
	e      *entry // the entry carrying flag-d*, nil until first reached
}

type node struct {
	id   int
	opts *Opts

	gamma key.Gamma
	// srcOf maps a source node ID to its index in Sources (-1 absent);
	// one slice shared by every node of the run (see NewNode). The dense
	// lookup replaces a per-node map: the receive loop resolves a source
	// per message, and hashing dominated the engine's hot-path profile.
	srcOf []int32
	// inFrom/inWt are the node's in-neighbors ascending with the minimum
	// arc weight per neighbor. The inbox is sorted by sender (an engine
	// invariant), so the receive loop resolves weights with a linear
	// merge-join instead of a map probe per message.
	inFrom []int32
	inWt   []int64

	list    []*entry
	perSrc  [][]*entry
	bests   []best
	pending int // alive entries with needSend
	h       sendHeap
	seq     int64
	cur     int // last round executed

	// local counters, merged into res at collection time
	late, collisions, missed int
	inv1, inv2               int
	maxList, maxPer          int
	inserts, evicts, nuDrops int64
	dupDrops                 int64

	snaps map[int][]int64 // snapshot round -> copy of best distances

	// Steady-state allocation control (see the AllocsPerRun guards in
	// internal/congest): outgoing payloads are pool-recycled, dropped and
	// retired entries go through a freelist, and the per-round transient
	// slices are node-owned scratch reused across rounds.
	pool     congest.Pool[wire]
	freeEnts []*entry
	victims  []*entry
	requeue  []sendItem
	gate     entry // scratch for the Step 13 gate key (never inserted)
}

// newEntry returns a zeroed entry, recycled when one is available.
func (nd *node) newEntry() *entry {
	if n := len(nd.freeEnts); n > 0 {
		z := nd.freeEnts[n-1]
		nd.freeEnts[n-1] = nil
		nd.freeEnts = nd.freeEnts[:n-1]
		*z = entry{}
		return z
	}
	return &entry{}
}

// recycle returns an entry that never entered the list (a receive-path
// drop) straight to the freelist.
func (nd *node) recycle(z *entry) {
	nd.freeEnts = append(nd.freeEnts, z)
}

// maybeFree recycles a dead entry once nothing references it: the lazy
// send heap has dropped its last item for it (heapRefs 0) and it is not
// a best record's carrier. Callers invoke it after marking dead and
// after every heapRefs decrement.
func (nd *node) maybeFree(z *entry) {
	if z.dead && z.heapRefs == 0 && nd.bests[z.srcIdx].e != z {
		nd.freeEnts = append(nd.freeEnts, z)
	}
}

func (nd *node) Init(ctx *congest.Context) {
	k := len(nd.opts.Sources)
	if p := nd.opts.Prealloc; p > 0 {
		block := make([]entry, p)
		nd.freeEnts = make([]*entry, p, 2*p)
		for i := range block {
			nd.freeEnts[i] = &block[i]
		}
		nd.list = make([]*entry, 0, p)
		nd.h = make(sendHeap, 0, 2*p)
		nd.victims = make([]*entry, 0, p)
		nd.requeue = make([]sendItem, 0, p)
	}
	if ctx.PayloadReuse() {
		nd.pool.Prewarm(4)
	}
	nd.bests = make([]best, k)
	nd.perSrc = make([][]*entry, k)
	if p := nd.opts.Prealloc; p > 0 {
		for i := range nd.perSrc {
			nd.perSrc[i] = make([]*entry, 0, p)
		}
	}
	for i := range nd.opts.Sources {
		nd.bests[i] = best{d: graph.Inf, l: -1, parent: -1}
	}
	nd.inFrom, nd.inWt = graph.MinInArcs(ctx.InEdges())
	for i := range nd.opts.Sources {
		d := int64(-1)
		if nd.opts.Sources[i] == nd.id {
			d = 0
		}
		if nd.opts.Seed != nil {
			if s := nd.opts.Seed[i][nd.id]; s < graph.Inf && (d < 0 || s < d) {
				d = s
			}
		}
		if d < 0 {
			continue
		}
		z := &entry{d: d, l: 0, srcIdx: i, parent: nd.id, flagSP: true, needSend: true}
		z.ceilK = nd.gamma.CeilKappa(d, 0)
		nd.bests[i] = best{d: d, l: 0, parent: nd.id, e: z}
		nd.insertAt(z, nd.searchPos(z))
		nd.schedule(z)
	}
}

// schedule pushes an entry's current send time onto the lazy heap.
func (nd *node) schedule(z *entry) {
	nd.seq++
	z.heapRefs++
	nd.h.push(sendItem{time: z.ceilK + int64(z.idx) + 1, seq: nd.seq, e: z})
}

// insertAt places z at position p, shifting the tail and fixing indices.
func (nd *node) insertAt(z *entry, p int) {
	nd.list = append(nd.list, nil)
	copy(nd.list[p+1:], nd.list[p:])
	nd.list[p] = z
	for i := p; i < len(nd.list); i++ {
		nd.list[i].idx = i
	}
	nd.perSrc[z.srcIdx] = append(nd.perSrc[z.srcIdx], z)
	if z.needSend {
		nd.pending++
	}
	nd.inserts++
	if len(nd.list) > nd.maxList {
		nd.maxList = len(nd.list)
	}
	if c := len(nd.perSrc[z.srcIdx]); c > nd.maxPer {
		nd.maxPer = c
	}
}

// removeEntry deletes z from the list and per-source set and marks it dead.
func (nd *node) removeEntry(z *entry) {
	p := z.idx
	nd.list = append(nd.list[:p], nd.list[p+1:]...)
	for i := p; i < len(nd.list); i++ {
		nd.list[i].idx = i
	}
	ps := nd.perSrc[z.srcIdx]
	for i, e := range ps {
		if e == z {
			ps[i] = ps[len(ps)-1]
			nd.perSrc[z.srcIdx] = ps[:len(ps)-1]
			break
		}
	}
	if z.needSend && !z.dead {
		nd.pending--
	}
	z.dead = true
	nd.evicts++
	nd.maybeFree(z)
}

// searchPos returns the position at which z belongs in the list order.
func (nd *node) searchPos(z *entry) int {
	return sort.Search(len(nd.list), func(i int) bool {
		return z.less(nd.list[i], nd.gamma, nd.opts.Sources) || z.equalKey(nd.list[i])
	})
}

// countBefore returns the number of entries for z's source that precede z
// in the list order (z need not be in the list).
func (nd *node) countBefore(z *entry) int {
	c := 0
	for _, e := range nd.perSrc[z.srcIdx] {
		if e.less(z, nd.gamma, nd.opts.Sources) {
			c++
		}
	}
	return c
}

// nu computes Z.ν: entries for z's source at or below z (inclusive),
// with z on the list.
func (nd *node) nu(z *entry) int { return nd.countBefore(z) + 1 }

// insert performs the paper's INSERT procedure: place z in sorted order,
// then (policy permitting) evict the closest non-SP entry for the same
// source above z.
func (nd *node) insert(z *entry, r int) {
	p := nd.searchPos(z)
	nd.insertAt(z, p)
	if nd.opts.Audit {
		// Invariant 1 (Lemma II.12): an entry added in round r satisfies
		// r < ⌈κ⌉ + pos. Messages processed in engine round r were sent in
		// round r−1, which is the paper's "added in round r−1".
		if int64(r-1) >= z.ceilK+int64(z.idx)+1 {
			nd.inv1++
		}
	}
	if nd.opts.Evict != EvictNonSPInserts || !z.flagSP {
		// Eviction: closest non-SP entry for x strictly above z (policy
		// permitting; EvictOnlySent skips entries not yet broadcast).
		var victim *entry
		for _, e := range nd.perSrc[z.srcIdx] {
			if e == z || e.flagSP || e.idx <= z.idx {
				continue
			}
			if nd.opts.Evict == EvictOnlySent && e.needSend {
				continue
			}
			if victim == nil || e.idx < victim.idx {
				victim = e
			}
		}
		if victim != nil {
			if nd.tracing() {
				nd.trace("v%d EVICT (d=%d l=%d src=%d) sent=%v", nd.id, victim.d, victim.l, nd.opts.Sources[victim.srcIdx], !victim.needSend)
			}
			nd.removeEntry(victim)
		}
	}
	nd.schedule(z)
}

// receivePareto processes an incoming entry under ModePareto: keep exactly
// the per-source Pareto frontier of (d, l) pairs. A dominated entry is
// useless for every suffix and hop budget (its extensions are dominated
// too), so dropping it — and only it — cannot lose any h-hop shortest path.
func (nd *node) receivePareto(z *entry, r int, from int) {
	i := z.srcIdx
	b := &nd.bests[i]
	if z.d == b.d && z.l == b.l {
		// Same record as the current shortest-path entry: at most the
		// tie-break parent (smallest ID, Step 9) improves. The wire content
		// would be identical, so no new entry is needed.
		if from < b.parent {
			b.parent = from
			if b.e != nil {
				b.e.parent = from
			}
		}
		nd.recycle(z)
		return
	}
	for _, e := range nd.perSrc[i] {
		if e.d <= z.d && e.l <= z.l {
			nd.nuDrops++
			if nd.tracing() {
				nd.trace("r%d v%d PARETODROP (d=%d l=%d src=%d)", r, nd.id, z.d, z.l, nd.opts.Sources[i])
			}
			nd.recycle(z)
			return
		}
	}
	if z.d < b.d || (z.d == b.d && z.l < b.l) {
		if b.e != nil {
			b.e.flagSP = false
		}
		z.flagSP = true
		*b = best{d: z.d, l: z.l, parent: from, e: z}
	}
	z.needSend = true
	p := nd.searchPos(z)
	nd.insertAt(z, p)
	if nd.tracing() {
		nd.trace("r%d v%d INSERT pareto (d=%d l=%d src=%d) sp=%v", r, nd.id, z.d, z.l, nd.opts.Sources[i], z.flagSP)
	}
	// Remove the entries z dominates; they are strictly above z in the
	// list order (κ(z) ≤ κ(e) with a strict component).
	nd.victims = nd.victims[:0]
	for _, e := range nd.perSrc[i] {
		if e != z && e.d >= z.d && e.l >= z.l {
			nd.victims = append(nd.victims, e)
		}
	}
	for _, e := range nd.victims {
		if nd.tracing() {
			nd.trace("v%d DOMINATED-REMOVE (d=%d l=%d src=%d) sent=%v", nd.id, e.d, e.l, nd.opts.Sources[i], !e.needSend)
		}
		nd.removeEntry(e)
	}
	nd.schedule(z)
}

// tracing reports whether Opts.Trace is set. Hot-path callers must check
// it BEFORE building a trace call: passing integers through the variadic
// ...interface{} boxes them onto the heap at the call site even when the
// sink is nil, which would break the steady-state zero-allocation guards.
func (nd *node) tracing() bool { return nd.opts.Trace != nil }

// trace emits a debug line when Opts.Trace is set.
func (nd *node) trace(format string, args ...interface{}) {
	if nd.opts.Trace != nil {
		nd.opts.Trace(format, args...)
	}
}

func (nd *node) Round(ctx *congest.Context, r int, inbox []congest.Message) {
	nd.cur = r
	// Receive (Steps 3–13). The inbox is sorted ascending by sender (an
	// engine invariant), so the in-arc weight lookup is a merge-join over
	// the equally-sorted inFrom: the cursor only ever advances.
	inPos := 0
	for _, m := range inbox {
		msg := m.Payload.(*wire)
		for inPos < len(nd.inFrom) && int(nd.inFrom[inPos]) < m.From {
			inPos++
		}
		if inPos == len(nd.inFrom) || int(nd.inFrom[inPos]) != m.From {
			continue // link without an arc into this node
		}
		w := nd.inWt[inPos]
		if msg.src < 0 || msg.src >= len(nd.srcOf) || nd.srcOf[msg.src] < 0 {
			ctx.Failf("entry for unknown source %d", msg.src)
			return
		}
		i := int(nd.srcOf[msg.src])
		d := msg.d + w
		l := msg.l + 1
		if l > int64(nd.opts.H) {
			continue // beyond the hop budget: cannot be an h-hop path
		}
		if nd.opts.Mode == ModePareto && d > nd.opts.Delta {
			// Under the Δ promise, every prefix of a useful path weighs at
			// most Δ (weights are non-negative), so heavier entries are
			// dead weight; pruning them keeps the frontier ≤ min(h,Δ)+1.
			continue
		}
		if nd.id == nd.opts.Sources[i] {
			continue // nothing improves the source's own (0,0) record
		}
		z := nd.newEntry()
		z.d, z.l, z.srcIdx, z.parent = d, l, i, m.From
		z.ceilK = nd.gamma.CeilKappa(d, l)

		if nd.opts.Mode == ModePareto {
			nd.receivePareto(z, r, m.From)
			continue
		}

		b := &nd.bests[i]
		better := d < b.d ||
			(d == b.d && l < b.l) ||
			(d == b.d && l == b.l && m.From < b.parent)
		if better {
			// Step 9–11: z is the new shortest-path entry.
			if b.e != nil {
				b.e.flagSP = false
			}
			z.flagSP = true
			z.needSend = true
			*b = best{d: d, l: l, parent: m.From, e: z}
			nd.insert(z, r)
			if nd.tracing() {
				nd.trace("r%d v%d INSERT SP (d=%d l=%d src=%d) from %d", r, nd.id, d, l, msg.src, m.From)
			}
			continue
		}
		// Step 13: non-SP entry; insert only if fewer than ν⁻ entries for
		// x lie below the gate key. Exact duplicates carry no information.
		dup := false
		for _, e := range nd.perSrc[i] {
			if e.equalKey(z) {
				dup = true
				break
			}
		}
		if dup {
			nd.dupDrops++
			nd.recycle(z)
			continue
		}
		gate := z
		if !nd.opts.GateByUpdatedKey {
			// Count entries below the sender's key κ(Z⁻) instead of the
			// updated κ(Z); see Opts.GateByUpdatedKey.
			nd.gate = entry{d: msg.d, l: msg.l, srcIdx: i}
			gate = &nd.gate
		}
		if nd.countBefore(gate) < int(msg.nu) {
			z.needSend = true
			nd.insert(z, r)
			if nd.tracing() {
				nd.trace("r%d v%d INSERT nonSP (d=%d l=%d src=%d) from %d nu=%d", r, nd.id, d, l, msg.src, m.From, msg.nu)
			}
		} else {
			nd.nuDrops++
			if nd.tracing() {
				nd.trace("r%d v%d NUDROP (d=%d l=%d src=%d) from %d nu=%d below=%d", r, nd.id, d, l, msg.src, m.From, msg.nu, nd.countBefore(gate))
			}
			nd.recycle(z)
		}
	}

	if nd.opts.Audit {
		nd.auditInv2()
	}

	// Send (Steps 1–2): at most one entry per round, per the schedule.
	nd.sendPhase(ctx, r)

	for _, sr := range nd.opts.SnapshotRounds {
		if sr == r {
			if nd.snaps == nil {
				nd.snaps = make(map[int][]int64)
			}
			row := make([]int64, len(nd.bests))
			for i, b := range nd.bests {
				row[i] = b.d
			}
			nd.snaps[sr] = row
		}
	}
}

// sendPhase pops due heap items lazily and sends at most one entry.
func (nd *node) sendPhase(ctx *congest.Context, r int) {
	var candidate *entry
	var candSched int64
	requeue := nd.requeue[:0] // collected due-but-not-sent items to re-push
	for nd.h.Len() > 0 && nd.h[0].time <= int64(r) {
		it := nd.h.popMin()
		z := it.e
		z.heapRefs--
		if z.dead || !z.needSend {
			nd.maybeFree(z)
			continue
		}
		sched := z.ceilK + int64(z.idx) + 1
		if sched > int64(r) {
			nd.schedule(z) // schedule moved into the future; re-arm
			continue
		}
		if nd.opts.Strict && sched < int64(r) {
			// Missed its equality moment; it may become due again if its
			// position grows, so keep probing each round.
			nd.missed++
			nd.seq++
			requeue = append(requeue, sendItem{time: int64(r) + 1, seq: nd.seq, e: z})
			continue
		}
		if candidate == nil {
			candidate, candSched = z, sched
			continue
		}
		// A second due entry this round. It is a schedule collision in the
		// paper's sense only when both entries hit their equality moment in
		// this exact round (backlogged overdue entries are counted as late
		// sends instead).
		if sched == int64(r) && candSched == int64(r) {
			nd.collisions++
		}
		keep, keepSched := candidate, candSched
		other := z
		otherSched := sched
		// Earliest schedule wins; ties by list order.
		if otherSched < keepSched || (otherSched == keepSched && other.idx < keep.idx) {
			keep, keepSched, other = other, otherSched, keep
		}
		candidate, candSched = keep, keepSched
		nd.seq++
		requeue = append(requeue, sendItem{time: int64(r) + 1, seq: nd.seq, e: other})
	}
	for _, it := range requeue {
		it.e.heapRefs++
		nd.h.push(it)
	}
	nd.requeue = requeue[:0]
	if candidate == nil {
		return
	}
	if candSched < int64(r) {
		nd.late++
	}
	z := candidate
	z.needSend = false
	nd.pending--
	if nd.tracing() {
		nd.trace("r%d v%d SEND (d=%d l=%d src=%d) sp=%v nu=%d sched=%d", r, nd.id, z.d, z.l, nd.opts.Sources[z.srcIdx], z.flagSP, nd.nu(z), candSched)
	}
	w := nd.pool.Get(ctx, r)
	w.d, w.l, w.src, w.sp, w.nu = z.d, z.l, nd.opts.Sources[z.srcIdx], z.flagSP, int32(nd.nu(z))
	ctx.Broadcast(w)
}

// auditInv2 checks Lemma II.11: per-source entry count ≤ h/γ + 1, i.e.
// (count−1)² · k ≤ h · Δ, exactly in integers.
func (nd *node) auditInv2() {
	h := int64(nd.opts.H)
	k := int64(len(nd.opts.Sources))
	for _, ps := range nd.perSrc {
		c := int64(len(ps)) - 1
		if c <= 0 {
			continue
		}
		if c*c*k > h*nd.opts.Delta {
			nd.inv2++
		}
	}
}

func (nd *node) Quiescent() bool {
	if !nd.opts.Strict {
		return nd.pending == 0
	}
	// Strict: a pending entry can fire later only with a future schedule;
	// overdue entries re-fire only if their position grows via a receive.
	for _, z := range nd.list {
		if z.needSend && z.ceilK+int64(z.idx)+1 > int64(nd.cur) {
			return false
		}
	}
	return true
}

// NextWake implements congest.Waker. The node acts spontaneously only when
// its earliest heap item comes due — sends, late sends and requeued
// collisions are all gated on heap-pop time, so the heap top is exact, and
// waking on a stale item (dead or re-armed entry) is harmless — or when a
// snapshot round arrives. Audit mode re-checks Invariant 2 every round, so
// it keeps dense stepping.
func (nd *node) NextWake() int {
	if nd.opts.Audit {
		return nd.cur + 1
	}
	next := congest.WakeOnReceive
	if nd.h.Len() > 0 {
		next = int(nd.h[0].time)
	}
	for _, sr := range nd.opts.SnapshotRounds { // ascending
		if sr > nd.cur {
			if next == congest.WakeOnReceive || sr < next {
				next = sr
			}
			break
		}
	}
	return next
}

// Run executes Algorithm 1 on g.
// NewNode returns the engine node factory for one run with the given
// options. Callers must set Sources, H and Delta (Run normalizes them
// first; stepwise engine drivers — the congest allocation guards and
// benchmarks — call this directly with explicit values). The factory
// shares opts, which must not change during the run.
func NewNode(opts *Opts) func(v int) congest.Node {
	gamma := key.New(len(opts.Sources), opts.H, opts.Delta)
	srcOf := sourceIndex(opts.Sources)
	return func(v int) congest.Node {
		return &node{id: v, opts: opts, gamma: gamma, srcOf: srcOf}
	}
}

// sourceIndex builds the dense source-ID → source-index table shared by
// every node of a run (-1 marks non-sources).
func sourceIndex(sources []int) []int32 {
	maxS := 0
	for _, s := range sources {
		if s > maxS {
			maxS = s
		}
	}
	srcOf := make([]int32, maxS+1)
	for i := range srcOf {
		srcOf[i] = -1
	}
	for i, s := range sources {
		srcOf[s] = int32(i)
	}
	return srcOf
}

func Run(g *graph.Graph, opts Opts) (*Result, error) {
	if len(opts.Sources) == 0 {
		return nil, fmt.Errorf("core: no sources")
	}
	if opts.H <= 0 {
		return nil, fmt.Errorf("core: hop bound H=%d must be positive", opts.H)
	}
	seen := make(map[int]bool)
	for _, s := range opts.Sources {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("core: source %d out of range", s)
		}
		if seen[s] {
			return nil, fmt.Errorf("core: duplicate source %d", s)
		}
		seen[s] = true
	}
	if opts.Seed != nil && len(opts.Seed) != len(opts.Sources) {
		return nil, fmt.Errorf("core: Seed rows %d != sources %d", len(opts.Seed), len(opts.Sources))
	}
	var maxSeed int64
	if opts.Seed != nil {
		for i := range opts.Seed {
			if len(opts.Seed[i]) != g.N() {
				return nil, fmt.Errorf("core: Seed row %d has %d entries, want %d", i, len(opts.Seed[i]), g.N())
			}
			for _, s := range opts.Seed[i] {
				if s < 0 {
					return nil, fmt.Errorf("core: negative seed distance %d", s)
				}
				if s < graph.Inf && s > maxSeed {
					maxSeed = s
				}
			}
		}
	}
	if opts.Delta == 0 {
		opts.Delta = int64(opts.H)*g.MaxWeight() + maxSeed
		if opts.Delta < 1 {
			opts.Delta = 1
		}
	}
	k := len(opts.Sources)
	bound := key.Bound(k, opts.H, opts.Delta)
	if opts.MaxRounds == 0 {
		mr := 16*bound + 1024
		if mr > int64(1<<30) {
			mr = 1 << 30
		}
		opts.MaxRounds = int(mr)
	}
	gamma := key.New(k, opts.H, opts.Delta)
	if opts.Trace != nil {
		opts.Workers = 1
	}

	res := &Result{Sources: append([]int(nil), opts.Sources...), Bound: bound, Delta: opts.Delta}
	nodes := make([]*node, g.N())
	srcOf := sourceIndex(opts.Sources)
	stats, err := congest.Run(g, func(v int) congest.Node {
		nodes[v] = &node{id: v, opts: &opts, gamma: gamma, srcOf: srcOf}
		return nodes[v]
	}, congest.Config{MaxRounds: opts.MaxRounds, Workers: opts.Workers, Scheduler: opts.Scheduler, Observer: opts.Obs, Network: opts.Network, Checkpoint: opts.Checkpoint, Ctx: opts.Ctx})
	res.Stats = stats
	if err != nil {
		return nil, err
	}

	res.Dist = make([][]int64, k)
	res.Hops = make([][]int64, k)
	res.Parent = make([][]int, k)
	for i := 0; i < k; i++ {
		res.Dist[i] = make([]int64, g.N())
		res.Hops[i] = make([]int64, g.N())
		res.Parent[i] = make([]int, g.N())
		for v, nd := range nodes {
			b := nd.bests[i]
			res.Dist[i][v] = b.d
			res.Hops[i][v] = b.l
			res.Parent[i][v] = b.parent
		}
	}
	if len(opts.SnapshotRounds) > 0 {
		res.Snapshots = make(map[int][][]int64, len(opts.SnapshotRounds))
		for _, sr := range opts.SnapshotRounds {
			snap := make([][]int64, k)
			for i := 0; i < k; i++ {
				snap[i] = make([]int64, g.N())
				for v, nd := range nodes {
					if row, ok := nd.snaps[sr]; ok {
						snap[i][v] = row[i]
					} else {
						snap[i][v] = nd.bests[i].d // run ended before sr
					}
				}
			}
			res.Snapshots[sr] = snap
		}
	}
	for _, nd := range nodes {
		res.LateSends += nd.late
		res.Collisions += nd.collisions
		res.Missed += nd.missed
		res.Inv1Violations += nd.inv1
		res.Inv2Violations += nd.inv2
		if nd.maxList > res.MaxListLen {
			res.MaxListLen = nd.maxList
		}
		if nd.maxPer > res.MaxPerSource {
			res.MaxPerSource = nd.maxPer
		}
		res.Inserts += nd.inserts
		res.Evictions += nd.evicts
		res.NuDrops += nd.nuDrops
		res.DupDrops += nd.dupDrops
	}
	return res, nil
}

// APSP runs Algorithm 1 with every node a source and hop bound n−1
// (sufficient for any shortest path), realizing Theorem I.1(ii):
// APSP in 2n√Δ + 2n rounds for shortest-path distances at most Δ.
func APSP(g *graph.Graph, delta int64, strict bool) (*Result, error) {
	sources := make([]int, g.N())
	for v := range sources {
		sources[v] = v
	}
	h := g.N() - 1
	if h < 1 {
		h = 1
	}
	return Run(g, Opts{Sources: sources, H: h, Delta: delta, Strict: strict})
}

// KSSP runs Algorithm 1 for k given sources with hop bound n−1, realizing
// Theorem I.1(iii).
func KSSP(g *graph.Graph, sources []int, delta int64, strict bool) (*Result, error) {
	h := g.N() - 1
	if h < 1 {
		h = 1
	}
	return Run(g, Opts{Sources: sources, H: h, Delta: delta, Strict: strict})
}
