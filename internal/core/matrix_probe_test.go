package core

import (
	"testing"

	"repro/internal/graph"
)

// TestProbeMatrix prints, for each pinned instance, which paper-mode knob
// combination loses a distance. Development aid for maintaining the
// counterexample tests; always passes.
func TestProbeMatrix(t *testing.T) {
	type inst struct {
		name    string
		g       *graph.Graph
		sources []int
		h       int
		delta   int64
	}
	g1, s1, h1, d1, _, _ := instanceEvict()
	g2, s2, h2, d2 := instanceGate()
	g3 := graph.New(8, true)
	for _, e := range [][3]int64{
		{0, 2, 0}, {1, 5, 3}, {2, 0, 5}, {2, 1, 3}, {2, 3, 0}, {3, 4, 2},
		{4, 0, 5}, {4, 2, 0}, {4, 5, 1}, {4, 6, 5}, {5, 0, 0}, {5, 6, 0},
		{6, 0, 4}, {6, 3, 0}, {7, 4, 5}, {7, 5, 3},
	} {
		g3.MustAddEdge(int(e[0]), int(e[1]), e[2])
	}
	instances := []inst{
		{"evict", g1, s1, h1, d1},
		{"gate912", g2, s2, h2, d2},
		{"gate829", g3, []int{0, 2, 5}, 4, 6},
	}
	for _, in := range instances {
		for _, ev := range []EvictPolicy{EvictOnlySent, EvictAllInserts, EvictNonSPInserts} {
			for _, upd := range []bool{false, true} {
				res, err := Run(in.g, Opts{Sources: in.sources, H: in.h, Delta: in.delta,
					Mode: ModePaper, Evict: ev, GateByUpdatedKey: upd})
				if err != nil {
					t.Fatalf("%s: %v", in.name, err)
				}
				wrong := 0
				for i, s := range in.sources {
					want := graph.HHopDistances(in.g, s, in.h)
					for v := 0; v < in.g.N(); v++ {
						if res.Dist[i][v] != want[v] {
							wrong++
						}
					}
				}
				t.Logf("%s evict=%d updatedGate=%v wrong=%d", in.name, ev, upd, wrong)
			}
		}
	}
}
