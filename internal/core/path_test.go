package core

import (
	"testing"

	"repro/internal/graph"
)

func TestReconstructPathUnrestricted(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := graph.Random(20, 60, graph.GenOpts{Seed: seed, MaxW: 6, ZeroFrac: 0.3, Directed: true})
		res, err := APSP(g, graph.Delta(g), false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for s := 0; s < g.N(); s++ {
			for v := 0; v < g.N(); v++ {
				if res.Dist[s][v] >= graph.Inf {
					continue
				}
				path, err := ReconstructPath(g, res, s, v)
				if err != nil {
					t.Fatalf("seed %d (%d,%d): %v", seed, s, v, err)
				}
				if path[0] != s || path[len(path)-1] != v {
					t.Fatalf("path endpoints %v", path)
				}
				w, err := PathWeight(g, path)
				if err != nil {
					t.Fatalf("PathWeight: %v", err)
				}
				if w != res.Dist[s][v] {
					t.Fatalf("path weight %d != dist %d", w, res.Dist[s][v])
				}
				if int64(len(path)-1) != res.Hops[s][v] {
					t.Fatalf("path hops %d != recorded %d", len(path)-1, res.Hops[s][v])
				}
			}
		}
	}
}

func TestReconstructPathHopBoundedMayFailGracefully(t *testing.T) {
	// The Figure-1 instance: v=3's recorded parent (node 1) carries a
	// different entry, so reconstruction must fail with a diagnostic, not
	// return a wrong path.
	g := graph.New(4, true)
	g.MustAddEdge(0, 1, 5)
	g.MustAddEdge(0, 2, 0)
	g.MustAddEdge(2, 1, 0)
	g.MustAddEdge(1, 3, 0)
	res, err := Run(g, Opts{Sources: []int{0}, H: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dist[0][3] != 5 {
		t.Fatalf("dist[0][3] = %d, want 5", res.Dist[0][3])
	}
	if _, err := ReconstructPath(g, res, 0, 3); err == nil {
		t.Fatal("expected reconstruction to detect the Figure-1 divergence")
	}
	// Node 1's own path is reconstructible (0→2→1).
	path, err := ReconstructPath(g, res, 0, 1)
	if err != nil {
		t.Fatalf("ReconstructPath(1): %v", err)
	}
	if len(path) != 3 || path[1] != 2 {
		t.Fatalf("path to 1 = %v, want [0 2 1]", path)
	}
}

func TestReconstructPathErrors(t *testing.T) {
	g := graph.Path(4, graph.GenOpts{Seed: 1, MaxW: 3})
	res, err := Run(g, Opts{Sources: []int{0}, H: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := ReconstructPath(g, res, 5, 0); err == nil {
		t.Fatal("bad source index accepted")
	}
	if _, err := ReconstructPath(g, res, 0, 99); err == nil {
		t.Fatal("bad node accepted")
	}
	// Unreachable: restrict hops so the far end is unreachable.
	res2, err := Run(g, Opts{Sources: []int{0}, H: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := ReconstructPath(g, res2, 0, 3); err == nil {
		t.Fatal("unreachable node accepted")
	}
}
