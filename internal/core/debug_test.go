package core

import (
	"testing"

	"repro/internal/difftest"
)

// TestDifferentialSweep sweeps small random instances against the h-hop
// oracle; this is the harness that originally found the counterexamples in
// counterexample_test.go, kept green as a permanent regression sweep.
func TestDifferentialSweep(t *testing.T) {
	checked := difftest.Search(t, difftest.Space{}, func(in difftest.Instance) error {
		res, err := Run(in.G, Opts{Sources: in.Sources, H: in.H})
		if err != nil {
			return err
		}
		return difftest.HHopOracle(in, res.Dist)
	})
	if checked == 0 {
		t.Fatal("no instances checked")
	}
}

// TestDifferentialSweepUndirected covers the undirected case.
func TestDifferentialSweepUndirected(t *testing.T) {
	difftest.Search(t, difftest.Space{Undirected: true, SeedsPerSize: 15}, func(in difftest.Instance) error {
		res, err := Run(in.G, Opts{Sources: in.Sources, H: in.H})
		if err != nil {
			return err
		}
		return difftest.HHopOracle(in, res.Dist)
	})
}

// TestDifferentialSweepHighZero stresses the zero-weight regime.
func TestDifferentialSweepHighZero(t *testing.T) {
	difftest.Search(t, difftest.Space{ZeroFrac: 0.6, SeedsPerSize: 20, H: 6}, func(in difftest.Instance) error {
		res, err := Run(in.G, Opts{Sources: in.Sources, H: in.H})
		if err != nil {
			return err
		}
		return difftest.HHopOracle(in, res.Dist)
	})
}
