package core

import (
	"testing"

	"repro/internal/graph"
)

// This file pins down the two reproduction findings about the paper's
// Algorithm 1 pseudocode (conference version): literal readings of the
// INSERT eviction rule and of the Step 13 ν-gate lose entries that are the
// unique carriers of some node's h-hop shortest path. Both instances were
// found by the randomized shrink search in debug_test.go and verified by
// hand (the traces are in EXPERIMENTS.md). ModePareto is correct on both.

// instanceEvict is the 8-node instance where a new shortest-path entry
// (d=4,l=4) at node 7 evicts the due-but-unsent non-SP entry (d=7,l=2) —
// the unique carrier of node 3's 4-hop shortest path (weight 7 via
// 0→2→7→3).
func instanceEvict() (*graph.Graph, []int, int, int64, int, int64) {
	g := graph.New(8, true)
	for _, e := range [][3]int64{
		{0, 2, 4}, {1, 2, 0}, {1, 7, 0}, {2, 4, 0}, {2, 6, 0}, {2, 6, 3},
		{2, 7, 3}, {3, 6, 3}, {4, 1, 0}, {4, 1, 2}, {4, 2, 0}, {5, 1, 5},
		{5, 3, 3}, {5, 7, 0}, {7, 3, 0}, {7, 6, 0},
	} {
		g.MustAddEdge(int(e[0]), int(e[1]), e[2])
	}
	return g, []int{0}, 4, 7, 3, 7 // sources, h, Δ, victim node, true dist
}

// instanceGate is the 9-node instance where the eviction rule applied on a
// non-SP insertion removes node 8's unsent (d=4,l=1) entry for source 6,
// losing node 5's shortest path (weight 9 via 6→8→3→7→5).
func instanceGate() (*graph.Graph, []int, int, int64) {
	g := graph.New(9, true)
	for _, e := range [][3]int64{
		{0, 6, 0}, {0, 7, 2}, {1, 6, 0}, {1, 8, 0}, {2, 1, 4}, {2, 8, 0},
		{3, 7, 0}, {3, 8, 0}, {4, 2, 0}, {5, 3, 0}, {6, 2, 3}, {6, 4, 2},
		{6, 8, 4}, {7, 1, 5}, {7, 5, 4}, {7, 6, 5}, {8, 0, 3}, {8, 3, 1},
	} {
		g.MustAddEdge(int(e[0]), int(e[1]), e[2])
	}
	return g, []int{0, 3, 6}, 4, 9
}

func TestPaperModeCounterexampleEviction(t *testing.T) {
	g, sources, h, delta, victim, want := instanceEvict()
	res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta,
		Mode: ModePaper, Evict: EvictAllInserts, GateByUpdatedKey: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dist[0][victim] == want {
		t.Fatalf("the literal eviction rule unexpectedly produced the correct distance %d — counterexample no longer reproduces", want)
	}
	t.Logf("literal paper mode: dist[0][%d] = %d, truth %d (reproduced the loss)", victim, res.Dist[0][victim], want)
}

func TestPaperModeCounterexampleNonSPEvict(t *testing.T) {
	g, sources, h, delta := instanceGate()
	// Even the gentler eviction (applied only on non-SP insertions) loses
	// node 5's shortest path from source 6, whichever gate key is used.
	res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta,
		Mode: ModePaper, Evict: EvictNonSPInserts})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := graph.HHopDistances(g, 6, h)
	if res.Dist[2][5] == want[5] {
		t.Fatalf("the non-SP eviction rule unexpectedly produced the correct distance — counterexample no longer reproduces")
	}
	t.Logf("non-SP eviction: dist[6][5] = %d, truth %d (reproduced the loss)", res.Dist[2][5], want[5])
}

// instanceGateKey is the 8-node instance where gating a non-SP entry by its
// updated key κ(Z) drops node 5's entry (d=6,l=3) for source 0 — the unique
// carrier of node 6's 4-hop shortest path (weight 6 via 0→2→1→5→6) — while
// every eviction policy is harmless here.
func instanceGateKey() (*graph.Graph, []int, int, int64) {
	g := graph.New(8, true)
	for _, e := range [][3]int64{
		{0, 2, 0}, {1, 5, 3}, {2, 0, 5}, {2, 1, 3}, {2, 3, 0}, {3, 4, 2},
		{4, 0, 5}, {4, 2, 0}, {4, 5, 1}, {4, 6, 5}, {5, 0, 0}, {5, 6, 0},
		{6, 0, 4}, {6, 3, 0}, {7, 4, 5}, {7, 5, 3},
	} {
		g.MustAddEdge(int(e[0]), int(e[1]), e[2])
	}
	return g, []int{0, 2, 5}, 4, 6
}

func TestPaperModeCounterexampleGateKey(t *testing.T) {
	g, sources, h, delta := instanceGateKey()
	// Isolate the gate: EvictOnlySent never discards unshared information,
	// so the remaining loss is attributable to the updated-key gate alone.
	res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta,
		Mode: ModePaper, Evict: EvictOnlySent, GateByUpdatedKey: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := graph.HHopDistances(g, 0, h)
	if res.Dist[0][6] == want[6] {
		t.Fatalf("the updated-key gate unexpectedly produced the correct distance — counterexample no longer reproduces")
	}
	t.Logf("updated-key gate: dist[0][6] = %d, truth %d (reproduced the loss)", res.Dist[0][6], want[6])
}

func TestParetoModeFixesBothCounterexamples(t *testing.T) {
	{
		g, sources, h, delta, victim, want := instanceEvict()
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.Dist[0][victim] != want {
			t.Fatalf("Pareto mode wrong on eviction instance: %d, want %d", res.Dist[0][victim], want)
		}
	}
	{
		g, sources, h, delta := instanceGate()
		res, err := Run(g, Opts{Sources: sources, H: h, Delta: delta})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for i, s := range sources {
			want := graph.HHopDistances(g, s, h)
			for v := 0; v < g.N(); v++ {
				if res.Dist[i][v] != want[v] {
					t.Fatalf("Pareto mode wrong on gate instance at [%d][%d]: %d, want %d",
						s, v, res.Dist[i][v], want[v])
				}
			}
		}
	}
}

func TestPaperModeVariantsOnRandomGraphs(t *testing.T) {
	// Measure (not assert) how often each paper-literal variant loses a
	// distance on small random graphs; the suite asserts only that the
	// default mode never does (covered elsewhere) and that losses, when
	// they occur, are always overestimates (missing paths), never
	// underestimates (fabricated paths).
	type variant struct {
		name string
		opts Opts
	}
	variants := []variant{
		{"literal", Opts{Mode: ModePaper, Evict: EvictAllInserts, GateByUpdatedKey: true}},
		{"senderGate", Opts{Mode: ModePaper, Evict: EvictAllInserts}},
		{"nonSPEvict", Opts{Mode: ModePaper, Evict: EvictNonSPInserts}},
	}
	for _, vr := range variants {
		wrong, total := 0, 0
		for seed := int64(0); seed < 15; seed++ {
			g := graph.Random(12, 30, graph.GenOpts{Seed: seed, MaxW: 5, ZeroFrac: 0.25, Directed: true})
			sources := []int{0, 4, 8}
			h := 4
			delta := graph.HHopDelta(g, sources, h)
			opts := vr.opts
			opts.Sources, opts.H, opts.Delta = sources, h, delta
			res, err := Run(g, opts)
			if err != nil {
				t.Fatalf("%s seed %d: %v", vr.name, seed, err)
			}
			for i, s := range sources {
				want := graph.HHopDistances(g, s, h)
				for v := 0; v < g.N(); v++ {
					total++
					if res.Dist[i][v] != want[v] {
						wrong++
						if res.Dist[i][v] < want[v] {
							t.Fatalf("%s seed %d: UNDERESTIMATE at [%d][%d]: %d < %d",
								vr.name, seed, s, v, res.Dist[i][v], want[v])
						}
					}
				}
			}
		}
		t.Logf("%s: %d/%d distances wrong (all overestimates)", vr.name, wrong, total)
	}
}
