package core

import (
	"testing"

	"repro/internal/graph"
)

// TestExhaustiveTiny enumerates EVERY directed graph on 3 nodes with arc
// weights in {absent, 0, 1, 2} (4^6 = 4096 graphs), every source set and
// hop bounds 1..3, and checks Algorithm 1 against the h-hop DP oracle —
// exhaustive verification of the tiny space rather than random sampling.
func TestExhaustiveTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	const n = 3
	arcs := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}
	sourceSets := [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	runs := 0
	for code := 0; code < 1<<(2*len(arcs)); code++ {
		g := graph.New(n, true)
		c := code
		edges := 0
		for _, a := range arcs {
			w := c & 3 // 0=absent, 1..3 → weight 0..2
			c >>= 2
			if w != 0 {
				g.MustAddEdge(a[0], a[1], int64(w-1))
				edges++
			}
		}
		if edges == 0 {
			continue
		}
		for _, sources := range sourceSets {
			for h := 1; h <= 3; h++ {
				res, err := Run(g, Opts{Sources: sources, H: h})
				if err != nil {
					t.Fatalf("code=%d sources=%v h=%d: %v", code, sources, h, err)
				}
				runs++
				for i, s := range sources {
					wantD, wantL := graph.HHopDistHops(g, s, h)
					for v := 0; v < n; v++ {
						if res.Dist[i][v] != wantD[v] {
							t.Fatalf("code=%d sources=%v h=%d: dist[%d][%d] = %d, want %d",
								code, sources, h, s, v, res.Dist[i][v], wantD[v])
						}
						if wantD[v] < graph.Inf && res.Hops[i][v] != int64(wantL[v]) {
							t.Fatalf("code=%d sources=%v h=%d: hops[%d][%d] = %d, want %d",
								code, sources, h, s, v, res.Hops[i][v], wantL[v])
						}
					}
				}
			}
		}
	}
	t.Logf("exhaustively verified %d runs over all 3-node graphs", runs)
}
