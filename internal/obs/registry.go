// Prometheus-text instrument registry. The engine's Metrics sink and the
// oracle serving layer (internal/oracle) both expose metrics in the
// Prometheus text exposition format; Registry is the shared encoder, so
// the HELP/TYPE/label/bucket formatting rules live in exactly one place.
//
// Instruments are cheap and concurrency-safe: counters and gauges are a
// single atomic word, histograms one atomic word per bucket. Write renders
// families in registration order and series within a family in
// registration order, which keeps dumps diffable across runs.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds instrument families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

type family struct {
	name, help, typ string
	buckets         []float64 // histograms only
	order           []*instrument
	byKey           map[string]*instrument
}

// instrument is one labelled series: a counter/gauge value or a histogram.
type instrument struct {
	labels string // pre-rendered {k="v",...}, "" when unlabelled

	bits atomic.Uint64 // counter/gauge value (float64 bits)

	counts []atomic.Int64 // histogram: per-bucket (non-cumulative) counts
	inf    atomic.Int64   // histogram: observations above the last bound
	sum    atomic.Uint64  // histogram: sum of observations (float64 bits)

	// ex holds the latest exemplar per bucket (len(counts)+1; the last
	// slot is the +Inf bucket). Exemplars link a bucket's counts to one
	// concrete traced observation — WriteOpenMetrics renders them.
	ex []atomic.Pointer[exemplar]
}

// exemplar is one traced observation attached to a histogram bucket.
type exemplar struct {
	labels string // pre-rendered {k="v",...}
	value  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels builds the canonical {k="v",...} form; label order is the
// caller's, values are escaped with %q (the Prometheus escaping rules).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// instrument returns the series for (name, labels), creating family and
// series on first use. Registering one name under two different types or
// bucket layouts is a programming error and panics.
func (r *Registry) instrument(name, help, typ string, buckets []float64, labels []Label) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, byKey: make(map[string]*instrument)}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	} else if len(f.buckets) != len(buckets) {
		panic(fmt.Sprintf("obs: histogram %s registered with different bucket layouts", name))
	}
	key := renderLabels(labels)
	ins, ok := f.byKey[key]
	if !ok {
		ins = &instrument{labels: key}
		if typ == "histogram" {
			ins.counts = make([]atomic.Int64, len(buckets))
			ins.ex = make([]atomic.Pointer[exemplar], len(buckets)+1)
		}
		f.byKey[key] = ins
		f.order = append(f.order, ins)
	}
	return ins
}

// Counter is a monotonically increasing value.
type Counter struct{ ins *instrument }

// Counter registers (or fetches) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	return Counter{r.instrument(name, help, "counter", nil, labels)}
}

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add adds delta (which must be non-negative for Prometheus semantics;
// not enforced).
func (c Counter) Add(delta float64) { atomicAddFloat(&c.ins.bits, delta) }

// Value returns the current value.
func (c Counter) Value() float64 { return math.Float64frombits(c.ins.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ ins *instrument }

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	return Gauge{r.instrument(name, help, "gauge", nil, labels)}
}

// Set replaces the value.
func (g Gauge) Set(v float64) { g.ins.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g Gauge) Add(delta float64) { atomicAddFloat(&g.ins.bits, delta) }

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.ins.bits.Load()) }

// Histogram is a fixed-bucket distribution; bounds are the inclusive
// upper bounds in ascending order (+Inf is implicit).
type Histogram struct {
	ins    *instrument
	bounds []float64
}

// Histogram registers (or fetches) a histogram series with the given
// bucket upper bounds (ascending; +Inf implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) Histogram {
	return Histogram{r.instrument(name, help, "histogram", bounds, labels), bounds}
}

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.ins.counts[i].Add(1)
	} else {
		h.ins.inf.Add(1)
	}
	atomicAddFloat(&h.ins.sum, v)
}

// ObserveExemplar records one observation and attaches an exemplar — the
// latest traced observation to land in each bucket is kept and rendered by
// WriteOpenMetrics (e.g. trace_id=… linking a latency bucket to a request
// trace). With no labels it degrades to a plain Observe.
func (h Histogram) ObserveExemplar(v float64, labels ...Label) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.ins.counts[i].Add(1)
	} else {
		h.ins.inf.Add(1)
	}
	atomicAddFloat(&h.ins.sum, v)
	if len(labels) > 0 {
		h.ins.ex[i].Store(&exemplar{labels: renderLabels(labels), value: v})
	}
}

// Count returns the total number of observations.
func (h Histogram) Count() int64 {
	var n int64
	for i := range h.ins.counts {
		n += h.ins.counts[i].Load()
	}
	return n + h.ins.inf.Load()
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// attributing each bucket's mass to its upper bound — the usual
// histogram_quantile upper-bound estimate. Returns 0 with no data; the
// last bound when the quantile lands in the +Inf bucket.
func (h Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.ins.counts {
		cum += h.ins.counts[i].Load()
		if cum >= rank {
			return h.bounds[i]
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// restore installs pre-accumulated bucket state (package-internal; the
// engine Metrics sink accumulates during Emit and installs once at Close).
func (h Histogram) restore(raw []int64, inf int64, sum float64) {
	for i := range raw {
		h.ins.counts[i].Store(raw[i])
	}
	h.ins.inf.Store(inf)
	h.ins.sum.Store(math.Float64bits(sum))
}

func atomicAddFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		val := math.Float64frombits(old) + delta
		if bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// formatValue renders a sample value: integers without an exponent or
// trailing zeros, everything else in Go's shortest 'g' form (what the
// previous hand-rolled writers produced with %d / %g).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelsWith appends one more pair to a pre-rendered label set (for the
// histogram "le" label).
func labelsWith(labels, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Write renders every family in registration order, in the classic
// Prometheus text exposition format (no exemplars — the classic parser
// rejects them).
func (r *Registry) Write(w io.Writer) error { return r.write(w, false) }

// WriteOpenMetrics renders the same families OpenMetrics-style: histogram
// bucket lines carry their latest exemplar (`… # {trace_id="…"} value`)
// and the dump ends with the mandatory `# EOF` terminator. Serve this
// variant when the scraper negotiates application/openmetrics-text.
func (r *Registry) WriteOpenMetrics(w io.Writer) error { return r.write(w, true) }

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.order {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, ins := range f.order {
			if f.typ != "histogram" {
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ins.labels, formatValue(math.Float64frombits(ins.bits.Load())))
				continue
			}
			var cum int64
			for i, le := range f.buckets {
				cum += ins.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d%s\n", f.name,
					labelsWith(ins.labels, "le", formatValue(le)), cum, ins.exemplarSuffix(openMetrics, i))
			}
			cum += ins.inf.Load()
			fmt.Fprintf(&b, "%s_bucket%s %d%s\n", f.name,
				labelsWith(ins.labels, "le", "+Inf"), cum, ins.exemplarSuffix(openMetrics, len(f.buckets)))
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, ins.labels, formatValue(math.Float64frombits(ins.sum.Load())))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, ins.labels, cum)
		}
	}
	if openMetrics {
		b.WriteString("# EOF\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// exemplarSuffix renders bucket i's exemplar annotation ("" when absent or
// when writing the classic format).
func (ins *instrument) exemplarSuffix(openMetrics bool, i int) string {
	if !openMetrics || ins.ex == nil {
		return ""
	}
	e := ins.ex[i].Load()
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # %s %s", e.labels, formatValue(e.value))
}
