package obs

import (
	"fmt"
	"io"
	"os"
)

// metricsBuckets are the upper bounds of the per-round message-count
// histogram (Prometheus "le" convention; +Inf is implicit).
var metricsBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

type phaseMetrics struct {
	name     string
	rounds   int
	messages int64
	wallUS   int64
	maxLink  int
	maxNode  int

	// Physical-delivery counters (adversarial network runs only).
	physSends   int64 // data sends incl. retransmits and dup copies
	physRetrans int64
	physDrops   int64 // data + ack drops
	physSubs    int64 // simulated physical sub-rounds
}

// Metrics accumulates the event stream into phase-labelled aggregates and,
// on Close, writes them in the Prometheus text exposition format (via the
// shared Registry encoder) — a plain metrics dump that node_exporter-style
// tooling (or grep) can consume.
type Metrics struct {
	w      io.Writer
	closer io.Closer

	order  []*phaseMetrics
	byName map[string]*phaseMetrics
	runs   int

	bucketRaw []int64 // per-bucket (non-cumulative) round message counts
	msgInf    int64   // rounds above the last bucket bound
	msgSum    int64
	msgCount  int64

	// Checkpoint persistence totals (checkpoint_save / checkpoint_load
	// events; zero on runs without a checkpoint policy).
	ckptSaves, ckptLoads       int64
	ckptSaveUS, ckptLoadUS     int64
	ckptSaveBytes, ckptLoadRaw int64
}

// NewMetrics wraps an io.Writer. If w is also an io.Closer it is closed by
// Close.
func NewMetrics(w io.Writer) *Metrics {
	m := &Metrics{
		w:         w,
		byName:    make(map[string]*phaseMetrics),
		bucketRaw: make([]int64, len(metricsBuckets)),
	}
	if cl, ok := w.(io.Closer); ok {
		m.closer = cl
	}
	return m
}

// CreateMetrics opens (truncating) path and returns a Metrics sink writing
// to it.
func CreateMetrics(path string) (*Metrics, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create metrics file: %w", err)
	}
	return NewMetrics(f), nil
}

// physAny reports whether any phase saw physical-delivery traffic (the
// phys series are omitted entirely on fault-free runs).
func physAny(order []*phaseMetrics) bool {
	for _, p := range order {
		if p.physSends > 0 || p.physSubs > 0 {
			return true
		}
	}
	return false
}

func (m *Metrics) phase(name string) *phaseMetrics {
	p, ok := m.byName[name]
	if !ok {
		p = &phaseMetrics{name: name}
		m.byName[name] = p
		m.order = append(m.order, p)
	}
	return p
}

// Emit implements Sink.
func (m *Metrics) Emit(e Event) error {
	p := m.phase(e.Phase)
	switch e.Kind {
	case "run_start":
		m.runs++
	case "round":
		p.rounds++
		p.messages += int64(e.Sent)
		p.wallUS += e.RoundUS
		m.msgSum += int64(e.Sent)
		m.msgCount++
		placed := false
		for i, le := range metricsBuckets {
			if float64(e.Sent) <= le {
				m.bucketRaw[i]++
				placed = true
				break
			}
		}
		if !placed {
			m.msgInf++
		}
	case "node_sends":
		if e.Msgs > p.maxNode {
			p.maxNode = e.Msgs
		}
	case "link_peak":
		if e.Load > p.maxLink {
			p.maxLink = e.Load
		}
	case "checkpoint_save":
		m.ckptSaves++
		m.ckptSaveUS += e.CkptDurUS
		m.ckptSaveBytes += e.CkptBytes
	case "checkpoint_load":
		m.ckptLoads++
		m.ckptLoadUS += e.CkptDurUS
		m.ckptLoadRaw += e.CkptBytes
	case "phys_round":
		if e.Phys != nil {
			p.physSends += e.Phys.DataSends + e.Phys.Retransmits + e.Phys.DupCopies
			p.physRetrans += e.Phys.Retransmits
			p.physDrops += e.Phys.DataDrops + e.Phys.AckDrops
			p.physSubs += e.Phys.SubRounds
		}
	}
	return nil
}

// Close implements Sink: folds the accumulated aggregates into a Registry
// and writes it.
func (m *Metrics) Close() error {
	reg := NewRegistry()
	reg.Counter("congest_runs_total", "engine runs observed").Add(float64(m.runs))
	for _, p := range m.order {
		reg.Counter("congest_phase_rounds_total",
			"rounds executed per phase (incl. quiescing rounds)", L("phase", p.name)).Add(float64(p.rounds))
	}
	for _, p := range m.order {
		reg.Counter("congest_phase_messages_total", "messages sent per phase",
			L("phase", p.name)).Add(float64(p.messages))
	}
	for _, p := range m.order {
		reg.Counter("congest_phase_wall_seconds_total", "wall-clock round time per phase",
			L("phase", p.name)).Add(float64(p.wallUS) / 1e6)
	}
	for _, p := range m.order {
		reg.Gauge("congest_phase_max_link_congestion", "peak per-link congestion seen in a phase",
			L("phase", p.name)).Set(float64(p.maxLink))
	}
	for _, p := range m.order {
		reg.Gauge("congest_phase_max_node_sends", "peak single-node sends in one round per phase",
			L("phase", p.name)).Set(float64(p.maxNode))
	}
	if physAny(m.order) {
		for _, p := range m.order {
			reg.Counter("congest_phase_phys_sends_total",
				"physical transmissions per phase (incl. retransmits and duplicates)",
				L("phase", p.name)).Add(float64(p.physSends))
		}
		for _, p := range m.order {
			reg.Counter("congest_phase_phys_retransmits_total", "retransmissions per phase",
				L("phase", p.name)).Add(float64(p.physRetrans))
		}
		for _, p := range m.order {
			reg.Counter("congest_phase_phys_drops_total",
				"adversary-dropped transmissions per phase (data + ack)",
				L("phase", p.name)).Add(float64(p.physDrops))
		}
		for _, p := range m.order {
			reg.Counter("congest_phase_phys_subrounds_total",
				"simulated physical sub-rounds per phase",
				L("phase", p.name)).Add(float64(p.physSubs))
		}
	}
	if m.ckptSaves > 0 || m.ckptLoads > 0 {
		reg.Counter("congest_checkpoint_writes_total", "engine snapshots persisted to disk").Add(float64(m.ckptSaves))
		reg.Counter("congest_checkpoint_write_seconds_total", "wall-clock time spent persisting snapshots").Add(float64(m.ckptSaveUS) / 1e6)
		reg.Counter("congest_checkpoint_write_bytes_total", "serialized snapshot bytes written").Add(float64(m.ckptSaveBytes))
		reg.Counter("congest_checkpoint_loads_total", "engine snapshots restored from disk").Add(float64(m.ckptLoads))
		reg.Counter("congest_checkpoint_load_seconds_total", "wall-clock time spent restoring snapshots").Add(float64(m.ckptLoadUS) / 1e6)
	}
	h := reg.Histogram("congest_round_messages", "per-round message counts", metricsBuckets)
	h.restore(m.bucketRaw, m.msgInf, float64(m.msgSum))

	err := reg.Write(m.w)
	if m.closer != nil {
		if cerr := m.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
