package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// metricsBuckets are the upper bounds of the per-round message-count
// histogram (Prometheus "le" convention; +Inf is implicit).
var metricsBuckets = []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

type phaseMetrics struct {
	name     string
	rounds   int
	messages int64
	wallUS   int64
	maxLink  int
	maxNode  int

	// Physical-delivery counters (adversarial network runs only).
	physSends   int64 // data sends incl. retransmits and dup copies
	physRetrans int64
	physDrops   int64 // data + ack drops
	physSubs    int64 // simulated physical sub-rounds
}

// Metrics accumulates the event stream into phase-labelled aggregates and,
// on Close, writes them in the Prometheus text exposition format — a plain
// metrics dump that node_exporter-style tooling (or grep) can consume.
type Metrics struct {
	w      io.Writer
	closer io.Closer

	order  []*phaseMetrics
	byName map[string]*phaseMetrics
	runs   int

	bucketCounts []int64
	msgSum       int64
	msgCount     int64
}

// NewMetrics wraps an io.Writer. If w is also an io.Closer it is closed by
// Close.
func NewMetrics(w io.Writer) *Metrics {
	m := &Metrics{
		w:            w,
		byName:       make(map[string]*phaseMetrics),
		bucketCounts: make([]int64, len(metricsBuckets)),
	}
	if cl, ok := w.(io.Closer); ok {
		m.closer = cl
	}
	return m
}

// CreateMetrics opens (truncating) path and returns a Metrics sink writing
// to it.
func CreateMetrics(path string) (*Metrics, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create metrics file: %w", err)
	}
	return NewMetrics(f), nil
}

// physAny reports whether any phase saw physical-delivery traffic (the
// phys series are omitted entirely on fault-free runs).
func physAny(order []*phaseMetrics) bool {
	for _, p := range order {
		if p.physSends > 0 || p.physSubs > 0 {
			return true
		}
	}
	return false
}

func (m *Metrics) phase(name string) *phaseMetrics {
	p, ok := m.byName[name]
	if !ok {
		p = &phaseMetrics{name: name}
		m.byName[name] = p
		m.order = append(m.order, p)
	}
	return p
}

// Emit implements Sink.
func (m *Metrics) Emit(e Event) error {
	p := m.phase(e.Phase)
	switch e.Kind {
	case "run_start":
		m.runs++
	case "round":
		p.rounds++
		p.messages += int64(e.Sent)
		p.wallUS += e.RoundUS
		m.msgSum += int64(e.Sent)
		m.msgCount++
		for i, le := range metricsBuckets {
			if e.Sent <= le {
				m.bucketCounts[i]++
			}
		}
	case "node_sends":
		if e.Msgs > p.maxNode {
			p.maxNode = e.Msgs
		}
	case "link_peak":
		if e.Load > p.maxLink {
			p.maxLink = e.Load
		}
	case "phys_round":
		if e.Phys != nil {
			p.physSends += e.Phys.DataSends + e.Phys.Retransmits + e.Phys.DupCopies
			p.physRetrans += e.Phys.Retransmits
			p.physDrops += e.Phys.DataDrops + e.Phys.AckDrops
			p.physSubs += e.Phys.SubRounds
		}
	}
	return nil
}

// Close implements Sink: writes the accumulated metrics.
func (m *Metrics) Close() error {
	var b strings.Builder
	series := func(help, typ, name string, rows func()) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		rows()
	}
	series("engine runs observed", "counter", "congest_runs_total", func() {
		fmt.Fprintf(&b, "congest_runs_total %d\n", m.runs)
	})
	series("rounds executed per phase (incl. quiescing rounds)", "counter",
		"congest_phase_rounds_total", func() {
			for _, p := range m.order {
				fmt.Fprintf(&b, "congest_phase_rounds_total{phase=%q} %d\n", p.name, p.rounds)
			}
		})
	series("messages sent per phase", "counter", "congest_phase_messages_total", func() {
		for _, p := range m.order {
			fmt.Fprintf(&b, "congest_phase_messages_total{phase=%q} %d\n", p.name, p.messages)
		}
	})
	series("wall-clock round time per phase", "counter", "congest_phase_wall_seconds_total", func() {
		for _, p := range m.order {
			fmt.Fprintf(&b, "congest_phase_wall_seconds_total{phase=%q} %g\n", p.name, float64(p.wallUS)/1e6)
		}
	})
	series("peak per-link congestion seen in a phase", "gauge",
		"congest_phase_max_link_congestion", func() {
			for _, p := range m.order {
				fmt.Fprintf(&b, "congest_phase_max_link_congestion{phase=%q} %d\n", p.name, p.maxLink)
			}
		})
	series("peak single-node sends in one round per phase", "gauge",
		"congest_phase_max_node_sends", func() {
			for _, p := range m.order {
				fmt.Fprintf(&b, "congest_phase_max_node_sends{phase=%q} %d\n", p.name, p.maxNode)
			}
		})
	if physAny(m.order) {
		series("physical transmissions per phase (incl. retransmits and duplicates)",
			"counter", "congest_phase_phys_sends_total", func() {
				for _, p := range m.order {
					fmt.Fprintf(&b, "congest_phase_phys_sends_total{phase=%q} %d\n", p.name, p.physSends)
				}
			})
		series("retransmissions per phase", "counter", "congest_phase_phys_retransmits_total", func() {
			for _, p := range m.order {
				fmt.Fprintf(&b, "congest_phase_phys_retransmits_total{phase=%q} %d\n", p.name, p.physRetrans)
			}
		})
		series("adversary-dropped transmissions per phase (data + ack)", "counter",
			"congest_phase_phys_drops_total", func() {
				for _, p := range m.order {
					fmt.Fprintf(&b, "congest_phase_phys_drops_total{phase=%q} %d\n", p.name, p.physDrops)
				}
			})
		series("simulated physical sub-rounds per phase", "counter",
			"congest_phase_phys_subrounds_total", func() {
				for _, p := range m.order {
					fmt.Fprintf(&b, "congest_phase_phys_subrounds_total{phase=%q} %d\n", p.name, p.physSubs)
				}
			})
	}
	series("per-round message counts", "histogram", "congest_round_messages", func() {
		for i, le := range metricsBuckets {
			fmt.Fprintf(&b, "congest_round_messages_bucket{le=%q} %d\n", fmt.Sprint(le), m.bucketCounts[i])
		}
		fmt.Fprintf(&b, "congest_round_messages_bucket{le=\"+Inf\"} %d\n", m.msgCount)
		fmt.Fprintf(&b, "congest_round_messages_sum %d\n", m.msgSum)
		fmt.Fprintf(&b, "congest_round_messages_count %d\n", m.msgCount)
	})

	_, err := io.WriteString(m.w, b.String())
	if m.closer != nil {
		if cerr := m.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
