// Package obs is the observability subsystem for the CONGEST engine and
// every algorithm layered on it: a phase-attributing Recorder that
// implements congest.Observer, plus pluggable sinks that turn the event
// stream into artifacts — a structured JSONL trace (jsonl.go), a Chrome
// trace_event file for chrome://tracing / Perfetto (chrome.go), and a
// Prometheus-text metrics dump (metrics.go).
//
// The paper's claims (Theorems I.1–I.5, Table I, Corollary I.4) are
// statements about where rounds and congestion go — short-range phase vs.
// blocker construction vs. pipelined propagation — so the Recorder
// attributes every engine event to the algorithm phase that was current
// when it happened (congest.SetPhase), and guarantees that the per-phase
// Stats sum exactly to the aggregate congest.Stats: phase stats are
// accumulated with the same Stats.Add the multi-phase algorithms use
// (rounds and messages add, congestion takes the max), over exactly the
// same sequence of engine runs.
package obs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/congest"
	"repro/internal/faults"
)

// Event is one observability record, already phase-attributed. All sinks
// consume the same stream; fields not meaningful for a kind are zero.
type Event struct {
	// TS is the event time as an offset from the Recorder's start, in
	// microseconds.
	TS int64 `json:"ts"`
	// Kind is one of "phase", "run_start", "round", "node_sends",
	// "link_peak", "phys_round", "run_done", "checkpoint_save",
	// "checkpoint_load".
	Kind string `json:"kind"`
	// Phase is the algorithm phase the event is attributed to.
	Phase string `json:"phase"`
	// Run is the 1-based engine-run sequence number within the recorder's
	// lifetime (a multi-phase algorithm is many engine runs).
	Run int `json:"run,omitempty"`
	// Round is the 1-based round within the current engine run.
	Round int `json:"round,omitempty"`
	// GlobalRound is the cumulative number of executed rounds across all
	// engine runs, including this one — a monotone x-axis for plots.
	GlobalRound int `json:"globalRound,omitempty"`
	// N is the network size (run_start).
	N int `json:"n,omitempty"`
	// Sent and Active are the round's message count and sending-node count
	// (round).
	Sent   int `json:"sent,omitempty"`
	Active int `json:"active,omitempty"`
	// RoundUS is the round's wall-clock duration in microseconds (round).
	RoundUS int64 `json:"roundUs,omitempty"`
	// Node and Msgs are one node's sends this round (node_sends).
	Node int `json:"node,omitempty"`
	Msgs int `json:"msgs,omitempty"`
	// From, To, Load describe a new per-link congestion maximum
	// (link_peak).
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	Load int `json:"load,omitempty"`
	// Stats is the finished run's cost report (run_done).
	Stats *congest.Stats `json:"stats,omitempty"`
	// Phys is one logical round's physical-delivery cost under an
	// adversarial network (phys_round; see faults.PhysStats).
	Phys *faults.PhysStats `json:"phys,omitempty"`
	// CkptDurUS and CkptBytes describe one checkpoint persistence
	// operation (checkpoint_save / checkpoint_load): wall-clock duration
	// in microseconds and the serialized snapshot size.
	CkptDurUS int64 `json:"ckptDurUs,omitempty"`
	CkptBytes int64 `json:"ckptBytes,omitempty"`
}

// Sink consumes the phase-attributed event stream. Emit is called
// synchronously from the engine's routing goroutine (under the Recorder's
// lock); Close flushes whatever the sink buffers.
type Sink interface {
	Emit(e Event) error
	Close() error
}

// PhaseBreakdown is one phase's accumulated cost, in first-use order.
type PhaseBreakdown struct {
	// Phase is the name set via congest.SetPhase ("main" if none was).
	Phase string `json:"phase"`
	// Stats accumulates the phase's engine runs with congest.Stats.Add
	// semantics: Rounds and Messages add, the max fields take the max.
	Stats congest.Stats `json:"stats"`
	// Runs is the number of engine runs attributed to the phase.
	Runs int `json:"runs"`
	// RoundsExecuted counts executed rounds, including trailing quiescing
	// rounds that Stats.Rounds excludes.
	RoundsExecuted int `json:"roundsExecuted"`
	// Wall is the phase's accumulated wall-clock round time.
	Wall time.Duration `json:"wallNs"`
	// Phys accumulates the phase's physical-delivery cost when the engine
	// runs over an adversarial network (all-zero otherwise).
	Phys faults.PhysStats `json:"phys,omitempty"`
}

// Recorder implements congest.Observer and congest.Phaser: it attributes
// every engine event to the current phase, maintains per-phase and total
// cost accounting, and fans the enriched events out to its sinks.
//
// A single Recorder may observe many engine runs (a BlockerAPSP run is
// dozens), but must not be shared by concurrent runs that interleave
// phases: attribution follows the latest Phase call.
type Recorder struct {
	mu    sync.Mutex
	start time.Time
	sinks []Sink
	err   error // first sink error

	byName      map[string]*PhaseBreakdown
	order       []*PhaseBreakdown
	cur         *PhaseBreakdown
	total       congest.Stats
	phys        faults.PhysStats
	physSeen    bool
	runs        int
	globalRound int // executed rounds across finished and current runs
	runBase     int // globalRound at the start of the current run
}

// NewRecorder returns a Recorder fanning out to the given sinks (none is
// fine: the Recorder still produces the per-phase breakdown).
func NewRecorder(sinks ...Sink) *Recorder {
	return &Recorder{
		start:  time.Now(),
		sinks:  sinks,
		byName: make(map[string]*PhaseBreakdown),
	}
}

// DefaultPhase is the phase events are attributed to before any Phase
// call.
const DefaultPhase = "main"

func (r *Recorder) emit(e Event) {
	e.TS = time.Since(r.start).Microseconds()
	e.Phase = r.cur.Phase
	e.Run = r.runs
	for _, s := range r.sinks {
		if err := s.Emit(e); err != nil && r.err == nil {
			r.err = fmt.Errorf("obs: sink emit: %w", err)
		}
	}
}

// ensurePhase returns the current phase, creating the default one lazily.
func (r *Recorder) ensurePhase() *PhaseBreakdown {
	if r.cur == nil {
		r.phaseLocked(DefaultPhase)
	}
	return r.cur
}

func (r *Recorder) phaseLocked(name string) {
	p, ok := r.byName[name]
	if !ok {
		p = &PhaseBreakdown{Phase: name}
		r.byName[name] = p
		r.order = append(r.order, p)
	}
	r.cur = p
}

// Phase switches attribution to the named phase (implements
// congest.Phaser). Returning to an earlier name resumes its accounting.
func (r *Recorder) Phase(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil && r.cur.Phase == name {
		return
	}
	r.phaseLocked(name)
	r.emit(Event{Kind: "phase"})
}

// RunStart implements congest.Observer.
func (r *Recorder) RunStart(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensurePhase()
	r.runs++
	r.runBase = r.globalRound
	r.emit(Event{Kind: "run_start", N: n})
}

// RoundDone implements congest.Observer.
func (r *Recorder) RoundDone(e congest.RoundEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.ensurePhase()
	p.RoundsExecuted++
	p.Wall += e.Elapsed
	r.globalRound = r.runBase + e.Round
	r.emit(Event{
		Kind:        "round",
		Round:       e.Round,
		GlobalRound: r.globalRound,
		Sent:        e.Sent,
		Active:      e.Active,
		RoundUS:     e.Elapsed.Microseconds(),
	})
}

// NodeSends implements congest.Observer.
func (r *Recorder) NodeSends(round, node, msgs int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensurePhase()
	r.emit(Event{Kind: "node_sends", Round: round, GlobalRound: r.runBase + round, Node: node, Msgs: msgs})
}

// LinkPeak implements congest.Observer.
func (r *Recorder) LinkPeak(round, from, to, load int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensurePhase()
	r.emit(Event{Kind: "link_peak", Round: round, GlobalRound: r.runBase + round, From: from, To: to, Load: load})
}

// PhysRound implements faults.Sink: one logical round's physical-delivery
// cost is attributed to the current phase, accumulated, and emitted as a
// "phys_round" event. Wire the same Recorder as both the engine Observer
// and the faults.Network's Sink to get phase-attributed chaos accounting.
func (r *Recorder) PhysRound(round int, delta faults.PhysStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.ensurePhase()
	p.Phys.Add(delta)
	r.phys.Add(delta)
	r.physSeen = true
	r.emit(Event{Kind: "phys_round", Round: round, GlobalRound: r.runBase + round, Phys: &delta})
}

// CheckpointSave records one engine snapshot persisted to disk (wire it
// to checkpoint.Keeper.OnSave): the duration and byte count land in the
// trace stream and the metrics dump, attributed to the current phase.
func (r *Recorder) CheckpointSave(d time.Duration, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensurePhase()
	r.emit(Event{Kind: "checkpoint_save", CkptDurUS: d.Microseconds(), CkptBytes: bytes})
}

// CheckpointLoad records one checkpoint restored from disk.
func (r *Recorder) CheckpointLoad(d time.Duration, bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensurePhase()
	r.emit(Event{Kind: "checkpoint_load", CkptDurUS: d.Microseconds(), CkptBytes: bytes})
}

// TotalPhys returns the aggregate physical-delivery cost across all
// observed engine runs, and whether any was recorded at all.
func (r *Recorder) TotalPhys() (faults.PhysStats, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.phys
	s.DelayHist = append([]int64(nil), r.phys.DelayHist...)
	return s, r.physSeen
}

// RunDone implements congest.Observer: the finished run's Stats are folded
// into the current phase and the total with congest.Stats.Add semantics,
// which is what makes Breakdown sum exactly to the aggregate.
func (r *Recorder) RunDone(s congest.Stats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.ensurePhase()
	p.Stats.Add(s)
	p.Runs++
	r.total.Add(s)
	r.emit(Event{Kind: "run_done", Stats: &s})
}

// Breakdown returns the per-phase accounting in first-use order. The sum
// of the phases' Rounds and Messages equals Total()'s, and their max
// fields' maximum equals Total()'s, by construction.
func (r *Recorder) Breakdown() []PhaseBreakdown {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PhaseBreakdown, len(r.order))
	for i, p := range r.order {
		out[i] = *p
	}
	return out
}

// Total returns the aggregate cost across all observed engine runs —
// identical to what a multi-phase algorithm reports as its Stats.
func (r *Recorder) Total() congest.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Runs returns the number of engine runs observed so far.
func (r *Recorder) Runs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runs
}

// Wall returns the total wall-clock round time across all phases.
func (r *Recorder) Wall() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var w time.Duration
	for _, p := range r.order {
		w += p.Wall
	}
	return w
}

// Close flushes and closes every sink and reports the first error any sink
// returned over the recorder's lifetime.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.sinks {
		if err := s.Close(); err != nil && r.err == nil {
			r.err = fmt.Errorf("obs: sink close: %w", err)
		}
	}
	r.sinks = nil
	return r.err
}

// Report is a machine-readable run summary: the aggregate cost plus the
// per-phase breakdown. cmd/apsprun serializes it behind -json and
// -stats-json so experiment trajectories can be tracked across commits.
type Report struct {
	// Alg, N, M, K identify the run (algorithm, nodes, edges, sources).
	Alg string `json:"alg,omitempty"`
	N   int    `json:"n,omitempty"`
	M   int    `json:"m,omitempty"`
	K   int    `json:"k,omitempty"`
	// Total is the aggregate engine cost.
	Total congest.Stats `json:"total"`
	// WallUS is total wall-clock round time in microseconds.
	WallUS int64 `json:"wallUs"`
	// Runs is the number of engine runs.
	Runs int `json:"runs"`
	// Phases is the per-phase breakdown, first-use order.
	Phases []PhaseBreakdown `json:"phases"`
	// Phys is the aggregate physical-delivery cost, present only when the
	// run went through an adversarial network (faults.Network).
	Phys *faults.PhysStats `json:"phys,omitempty"`
}

// ReportOf assembles a Report from the recorder's current state.
func (r *Recorder) ReportOf(alg string, n, m, k int) Report {
	rep := Report{
		Alg:    alg,
		N:      n,
		M:      m,
		K:      k,
		Total:  r.Total(),
		WallUS: r.Wall().Microseconds(),
		Runs:   r.Runs(),
		Phases: r.Breakdown(),
	}
	if phys, ok := r.TotalPhys(); ok {
		rep.Phys = &phys
	}
	return rep
}
