package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/hssp"
	"repro/internal/obs"
)

// TestPhaseSumsEqualAggregate is the subsystem's core invariant: a
// multi-phase BlockerAPSP run on a 64-node graph yields a per-phase
// breakdown that sums EXACTLY to the algorithm's own aggregate Stats — no
// event dropped, none double-counted.
func TestPhaseSumsEqualAggregate(t *testing.T) {
	g := graph.Random(64, 300, graph.GenOpts{Seed: 7, MaxW: 8, ZeroFrac: 0.2, Directed: true})
	rec := obs.NewRecorder()
	res, err := hssp.Run(g, hssp.Opts{H: 4, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}

	phases := rec.Breakdown()
	if len(phases) != 4 {
		t.Fatalf("got %d phases, want 4 (cssp/blocker/sssp/broadcast): %+v", len(phases), phases)
	}
	wantOrder := []string{"cssp", "blocker", "sssp", "broadcast"}
	var sum congest.Stats
	for i, p := range phases {
		if p.Phase != wantOrder[i] {
			t.Errorf("phase[%d] = %q, want %q", i, p.Phase, wantOrder[i])
		}
		if p.Runs == 0 {
			t.Errorf("phase %q has zero runs", p.Phase)
		}
		if p.Stats.Rounds != res.PhaseRounds[p.Phase] {
			t.Errorf("phase %q rounds = %d, algorithm reports %d", p.Phase, p.Stats.Rounds, res.PhaseRounds[p.Phase])
		}
		sum.Add(p.Stats)
	}
	if sum != res.Stats {
		t.Errorf("phase sum %+v != aggregate %+v", sum, res.Stats)
	}
	if rec.Total() != res.Stats {
		t.Errorf("recorder total %+v != aggregate %+v", rec.Total(), res.Stats)
	}
	if rec.Runs() == 0 {
		t.Error("recorder saw zero engine runs")
	}
}

// TestReportOf checks the serializable summary carries the breakdown.
func TestReportOf(t *testing.T) {
	g := graph.Grid(4, 4, graph.GenOpts{Seed: 1, MaxW: 3})
	rec := obs.NewRecorder()
	res, err := hssp.Run(g, hssp.Opts{H: 2, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.ReportOf("blocker", g.N(), g.M(), g.N())
	if rep.Total != res.Stats {
		t.Errorf("report total %+v != aggregate %+v", rep.Total, res.Stats)
	}
	if len(rep.Phases) == 0 {
		t.Error("report has no phases")
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Total != rep.Total {
		t.Errorf("round-trip total %+v != %+v", back.Total, rep.Total)
	}
}

func runWithSinks(t *testing.T, sinks ...obs.Sink) *obs.Recorder {
	t.Helper()
	g := graph.Random(24, 90, graph.GenOpts{Seed: 3, MaxW: 5, Directed: true})
	rec := obs.NewRecorder(sinks...)
	if _, err := hssp.Run(g, hssp.Opts{H: 3, Obs: rec}); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	return rec
}

// TestJSONLSink checks every emitted line is a valid Event and the stream
// covers all event kinds with phase attribution throughout.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	runWithSinks(t, obs.NewJSONL(&buf))

	valid := map[string]bool{
		"phase": true, "run_start": true, "round": true,
		"node_sends": true, "link_peak": true, "run_done": true,
	}
	seen := map[string]int{}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("suspiciously short trace: %d lines", len(lines))
	}
	for i, ln := range lines {
		var e obs.Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i+1, err, ln)
		}
		if !valid[e.Kind] {
			t.Fatalf("line %d: unknown kind %q", i+1, e.Kind)
		}
		if e.Phase == "" {
			t.Fatalf("line %d: missing phase attribution: %s", i+1, ln)
		}
		seen[e.Kind]++
	}
	for k := range valid {
		if seen[k] == 0 {
			t.Errorf("no %q events in trace", k)
		}
	}
}

// TestChromeSink checks the exported file is valid trace_event JSON with
// per-phase thread tracks, round slices, and hot-node counters.
func TestChromeSink(t *testing.T) {
	var buf bytes.Buffer
	runWithSinks(t, obs.NewChrome(&buf))

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	phases := map[string]bool{}
	var slices, counters int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "thread_name" {
				args := ev["args"].(map[string]any)
				phases[args["name"].(string)] = true
			}
		case "X":
			slices++
			if ev["dur"].(float64) < 1 {
				t.Fatalf("slice with zero duration: %v", ev)
			}
		case "C":
			counters++
		}
	}
	for _, want := range []string{"phase:cssp", "phase:blocker", "phase:sssp", "phase:broadcast"} {
		if !phases[want] {
			t.Errorf("missing thread track %q (have %v)", want, phases)
		}
	}
	if slices == 0 {
		t.Error("no round slices")
	}
	if counters == 0 {
		t.Error("no hot-node counter events")
	}
}

// TestMetricsSink checks the Prometheus text dump has the expected series
// and internally consistent histogram counts.
func TestMetricsSink(t *testing.T) {
	var buf bytes.Buffer
	rec := runWithSinks(t, obs.NewMetrics(&buf))

	text := buf.String()
	for _, name := range []string{
		"congest_runs_total",
		"congest_phase_rounds_total{phase=\"cssp\"}",
		"congest_phase_messages_total{phase=\"sssp\"}",
		"congest_phase_max_link_congestion{phase=\"blocker\"}",
		"congest_phase_max_node_sends{phase=\"broadcast\"}",
		"congest_round_messages_bucket{le=\"+Inf\"}",
		"congest_round_messages_sum",
		"congest_round_messages_count",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("metrics dump missing %q", name)
		}
	}
	// The histogram's _sum must equal the recorder's total message count:
	// both are the sum of per-round Sent values.
	var msgSum int64 = -1
	for _, ln := range strings.Split(text, "\n") {
		if strings.HasPrefix(ln, "congest_round_messages_sum ") {
			if _, err := fmtSscan(ln, &msgSum); err != nil {
				t.Fatalf("bad sum line %q: %v", ln, err)
			}
		}
	}
	if msgSum != int64(rec.Total().Messages) {
		t.Errorf("histogram sum %d != total messages %d", msgSum, rec.Total().Messages)
	}
}

func fmtSscan(line string, out *int64) (int, error) {
	fields := strings.Fields(line)
	return 1, json.Unmarshal([]byte(fields[len(fields)-1]), out)
}

// TestTeeForwardsPhase checks congest.Tee keeps phase attribution intact
// when a Recorder is combined with a plain observer.
func TestTeeForwardsPhase(t *testing.T) {
	g := graph.Grid(3, 3, graph.GenOpts{Seed: 2, MaxW: 2})
	rec := obs.NewRecorder()
	var rounds int
	tee := congest.Tee(rec, roundCounter{&rounds})
	if _, err := hssp.Run(g, hssp.Opts{H: 2, Obs: tee}); err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Error("plain observer behind Tee saw no rounds")
	}
	if len(rec.Breakdown()) != 4 {
		t.Errorf("recorder behind Tee got %d phases, want 4", len(rec.Breakdown()))
	}
}

type roundCounter struct{ n *int }

func (r roundCounter) RunStart(int)                 {}
func (r roundCounter) RoundDone(congest.RoundEvent) { *r.n++ }
func (r roundCounter) NodeSends(int, int, int)      {}
func (r roundCounter) LinkPeak(int, int, int, int)  {}
func (r roundCounter) RunDone(congest.Stats)        {}
