package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// ChromeEvent is one entry of the Chrome trace_event format (the JSON
// consumed by chrome://tracing and Perfetto): "X" complete slices for
// durations, "M" metadata naming the tracks, "C" counters. It is exported
// so other producers — the request-span encoder in internal/trace — can
// emit into the same file and render on one timeline with the engine.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes events as a {"traceEvents":[...]} document — the
// one encoder for every trace_event producer in the repository.
func WriteChromeTrace(w io.Writer, events []ChromeEvent) error {
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}

// Chrome buffers the event stream and, on Close, writes a
// {"traceEvents":[...]} file: one thread track per phase carrying that
// phase's rounds as duration slices, plus counter tracks for the HotNodes
// busiest nodes (by total sends — known only once the run is over, which
// is why the sink buffers).
type Chrome struct {
	w      io.Writer
	closer io.Closer
	// HotNodes is how many top-sending nodes get counter tracks (default
	// 8; set before Close).
	HotNodes int

	mu     sync.Mutex
	events []Event
	extra  []ChromeEvent
}

// NewChrome wraps an io.Writer. If w is also an io.Closer it is closed by
// Close.
func NewChrome(w io.Writer) *Chrome {
	c := &Chrome{w: w, HotNodes: 8}
	if cl, ok := w.(io.Closer); ok {
		c.closer = cl
	}
	return c
}

// CreateChrome opens (truncating) path and returns a Chrome sink writing
// to it.
func CreateChrome(path string) (*Chrome, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create chrome trace: %w", err)
	}
	return NewChrome(f), nil
}

// Emit implements Sink.
func (c *Chrome) Emit(e Event) error {
	switch e.Kind {
	case "round", "node_sends", "run_start":
		c.mu.Lock()
		c.events = append(c.events, e)
		c.mu.Unlock()
	}
	return nil
}

// AddEvents appends pre-built trace_event entries to the file this sink
// will write — this is how serving-request spans (internal/trace, PID 2)
// land on the same timeline as the engine's phase tracks (PID 1). Call
// before Close; safe concurrently with Emit.
func (c *Chrome) AddEvents(evs ...ChromeEvent) {
	c.mu.Lock()
	c.extra = append(c.extra, evs...)
	c.mu.Unlock()
}

// EnginePID is the trace_event process ID of the engine's phase tracks;
// external producers adding events via AddEvents should use another PID.
const EnginePID = 1

// Close implements Sink: assembles and writes the trace file.
func (c *Chrome) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := []ChromeEvent{{
		Name: "process_name", Ph: "M", PID: EnginePID,
		Args: map[string]any{"name": "congest engine"},
	}}

	// One thread track per phase, in first-appearance order.
	tids := make(map[string]int)
	for _, e := range c.events {
		if _, ok := tids[e.Phase]; !ok {
			tid := len(tids) + 1
			tids[e.Phase] = tid
			out = append(out, ChromeEvent{
				Name: "thread_name", Ph: "M", PID: EnginePID, TID: tid,
				Args: map[string]any{"name": "phase:" + e.Phase},
			})
		}
	}

	// Hot-node selection: total sends per node across the whole run.
	totals := make(map[int]int)
	for _, e := range c.events {
		if e.Kind == "node_sends" {
			totals[e.Node] += e.Msgs
		}
	}
	nodes := make([]int, 0, len(totals))
	for v := range totals {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if totals[nodes[i]] != totals[nodes[j]] {
			return totals[nodes[i]] > totals[nodes[j]]
		}
		return nodes[i] < nodes[j]
	})
	if len(nodes) > c.HotNodes {
		nodes = nodes[:c.HotNodes]
	}
	hot := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		hot[v] = true
	}

	for _, e := range c.events {
		switch e.Kind {
		case "round":
			dur := e.RoundUS
			if dur < 1 {
				dur = 1
			}
			ts := e.TS - dur
			if ts < 0 {
				ts = 0
			}
			out = append(out, ChromeEvent{
				Name: fmt.Sprintf("round %d", e.Round),
				Ph:   "X", TS: ts, Dur: dur,
				PID: EnginePID, TID: tids[e.Phase],
				Args: map[string]any{
					"run": e.Run, "sent": e.Sent, "active": e.Active,
					"globalRound": e.GlobalRound,
				},
			})
		case "node_sends":
			if !hot[e.Node] {
				continue
			}
			out = append(out, ChromeEvent{
				Name: fmt.Sprintf("node %d sends", e.Node),
				Ph:   "C", TS: e.TS, PID: EnginePID, TID: tids[e.Phase],
				Args: map[string]any{"msgs": e.Msgs},
			})
		}
	}
	out = append(out, c.extra...)

	err := WriteChromeTrace(c.w, out)
	if c.closer != nil {
		if cerr := c.closer.Close(); err == nil {
			err = cerr
		}
	}
	c.events, c.extra = nil, nil
	return err
}
