package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryTextFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("oracle_queries_total", "queries served", L("kind", "dist"))
	c.Add(3)
	c.Inc()
	reg.Counter("oracle_queries_total", "queries served", L("kind", "path")).Inc()
	reg.Gauge("oracle_generation", "snapshot generation").Set(7)
	h := reg.Histogram("oracle_latency_seconds", "query latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2) // +Inf bucket

	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP oracle_queries_total queries served",
		"# TYPE oracle_queries_total counter",
		`oracle_queries_total{kind="dist"} 4`,
		`oracle_queries_total{kind="path"} 1`,
		"# TYPE oracle_generation gauge",
		"oracle_generation 7",
		"# TYPE oracle_latency_seconds histogram",
		`oracle_latency_seconds_bucket{le="0.001"} 1`,
		`oracle_latency_seconds_bucket{le="0.01"} 1`,
		`oracle_latency_seconds_bucket{le="0.1"} 2`,
		`oracle_latency_seconds_bucket{le="+Inf"} 3`,
		"oracle_latency_seconds_sum 2.0505",
		"oracle_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order, series in first-use order.
	if strings.Index(out, "oracle_queries_total") > strings.Index(out, "oracle_generation") {
		t.Error("family order not preserved")
	}
	if strings.Index(out, `kind="dist"`) > strings.Index(out, `kind="path"`) {
		t.Error("series order not preserved")
	}
}

func TestRegistryReregisterReturnsSameSeries(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "x")
	b := reg.Counter("x_total", "x")
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("re-registered counter diverged: %v", a.Value())
	}
	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, ln := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(ln, "x_total ") {
			samples++
		}
	}
	if samples != 1 {
		t.Fatalf("duplicate series rendered:\n%s", buf.String())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("y_total", "y")
	defer func() {
		if recover() == nil {
			t.Fatal("registering y_total as gauge did not panic")
		}
	}()
	reg.Gauge("y_total", "y")
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_seconds", "q", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // le=1
	}
	for i := 0; i < 9; i++ {
		h.Observe(3) // le=4
	}
	h.Observe(100) // +Inf
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.95); got != 4 {
		t.Errorf("p95 = %v, want 4", got)
	}
	if got := h.Quantile(0.999); got != 8 {
		t.Errorf("p99.9 (in +Inf) = %v, want last bound 8", got)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
}

func TestRegistryConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_total", "c")
	h := reg.Histogram("conc_seconds", "h", []float64{1, 10})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "e", L("phase", `a"b\c`)).Inc()
	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `esc_total{phase="a\"b\\c"} 1`) {
		t.Fatalf("escaped label missing:\n%s", buf.String())
	}
}
