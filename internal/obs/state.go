// Checkpoint support: the Recorder's side of the congest.Snapshotter
// contract, so phase-attributed accounting survives an engine
// checkpoint/restore bit-exactly. The snapshot covers the accounting
// state (per-phase breakdowns, totals, run and round counters, current
// phase) but not the sinks: a restored Recorder keeps its own sinks and
// start time, and the resumed run's events flow into them from the
// resume point on.
package obs

import (
	"fmt"
	"time"

	"repro/internal/congest"
	"repro/internal/faults"
)

// CurrentPhase implements congest.PhaseTracker: it reports the phase a
// crash or checkpoint at this instant would be attributed to. Safe to
// call from engine worker goroutines.
func (r *Recorder) CurrentPhase() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur == nil {
		return DefaultPhase
	}
	return r.cur.Phase
}

func encodeStats(enc *congest.StateEncoder, s congest.Stats) {
	enc.Int(s.Rounds)
	enc.Int64(s.Messages)
	enc.Int(s.MaxWords)
	enc.Int(s.MaxLinkCongestion)
	enc.Int(s.MaxNodeSends)
}

func decodeStats(dec *congest.StateDecoder) congest.Stats {
	return congest.Stats{
		Rounds:            dec.Int(),
		Messages:          dec.Int64(),
		MaxWords:          dec.Int(),
		MaxLinkCongestion: dec.Int(),
		MaxNodeSends:      dec.Int(),
	}
}

func encodePhys(enc *congest.StateEncoder, p *faults.PhysStats) {
	enc.Int64(p.DataSends)
	enc.Int64(p.Retransmits)
	enc.Int64(p.DupCopies)
	enc.Int64(p.DupDeliveries)
	enc.Int64(p.DataDrops)
	enc.Int64(p.AckDrops)
	enc.Int64(p.AckSends)
	enc.Int64(p.Delivered)
	enc.Int64(p.Dropped)
	enc.Int64(p.SubRounds)
	enc.Int64s(p.DelayHist)
}

func decodePhys(dec *congest.StateDecoder) faults.PhysStats {
	return faults.PhysStats{
		DataSends:     dec.Int64(),
		Retransmits:   dec.Int64(),
		DupCopies:     dec.Int64(),
		DupDeliveries: dec.Int64(),
		DataDrops:     dec.Int64(),
		AckDrops:      dec.Int64(),
		AckSends:      dec.Int64(),
		Delivered:     dec.Int64(),
		Dropped:       dec.Int64(),
		SubRounds:     dec.Int64(),
		DelayHist:     dec.Int64s(),
	}
}

// SnapshotState implements congest.Snapshotter.
func (r *Recorder) SnapshotState(enc *congest.StateEncoder) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	enc.Int(r.runs)
	enc.Int(r.globalRound)
	enc.Int(r.runBase)
	cur := ""
	if r.cur != nil {
		cur = r.cur.Phase
	}
	enc.String(cur)
	encodeStats(enc, r.total)
	enc.Bool(r.physSeen)
	encodePhys(enc, &r.phys)
	enc.Int(len(r.order))
	for _, p := range r.order {
		enc.String(p.Phase)
		encodeStats(enc, p.Stats)
		enc.Int(p.Runs)
		enc.Int(p.RoundsExecuted)
		enc.Int64(int64(p.Wall))
		encodePhys(enc, &p.Phys)
	}
	return nil
}

// RestoreState implements congest.Snapshotter: it replaces the
// accounting state with the snapshot's, discarding whatever the Recorder
// accumulated while deterministically re-executing the rounds the
// snapshot already covers. Sinks and start time are untouched.
func (r *Recorder) RestoreState(dec *congest.StateDecoder) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs = dec.Int()
	r.globalRound = dec.Int()
	r.runBase = dec.Int()
	cur := dec.String()
	r.total = decodeStats(dec)
	r.physSeen = dec.Bool()
	r.phys = decodePhys(dec)
	np := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	r.byName = make(map[string]*PhaseBreakdown, np)
	r.order = r.order[:0]
	for i := 0; i < np; i++ {
		p := &PhaseBreakdown{
			Phase:          dec.String(),
			Stats:          decodeStats(dec),
			Runs:           dec.Int(),
			RoundsExecuted: dec.Int(),
			Wall:           time.Duration(dec.Int64()),
		}
		p.Phys = decodePhys(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		if _, dup := r.byName[p.Phase]; dup {
			return fmt.Errorf("obs: snapshot has duplicate phase %q", p.Phase)
		}
		r.byName[p.Phase] = p
		r.order = append(r.order, p)
	}
	r.cur = nil
	if cur != "" {
		p, ok := r.byName[cur]
		if !ok {
			return fmt.Errorf("obs: snapshot current phase %q not in breakdown", cur)
		}
		r.cur = p
	}
	return dec.Err()
}
