package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSONL is a streaming structured-trace sink: one Event per line, encoded
// as JSON — trivially greppable and loadable with any JSON-lines tooling.
type JSONL struct {
	enc   *json.Encoder
	flush func() error
	close func() error
}

// NewJSONL wraps an io.Writer. If w is also an io.Closer it is closed by
// Close.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	j := &JSONL{enc: json.NewEncoder(bw), flush: bw.Flush}
	if c, ok := w.(io.Closer); ok {
		j.close = c.Close
	}
	return j
}

// CreateJSONL opens (truncating) path and returns a JSONL sink writing to
// it.
func CreateJSONL(path string) (*JSONL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create jsonl trace: %w", err)
	}
	return NewJSONL(f), nil
}

// Emit implements Sink.
func (j *JSONL) Emit(e Event) error {
	return j.enc.Encode(e)
}

// Close implements Sink.
func (j *JSONL) Close() error {
	err := j.flush()
	if j.close != nil {
		if cerr := j.close(); err == nil {
			err = cerr
		}
	}
	return err
}
