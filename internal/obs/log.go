// Structured logging: one place builds the slog handler every binary in
// the repository uses, so the -log flag (text | json | off) and level
// semantics stay consistent across cmd/apspd and cmd/apsprun. Trace-ID
// stamping is layered on top by internal/trace (obs cannot import it — the
// dependency runs the other way).
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogHandler builds the repository-standard slog handler.
//
//	format: "text" (human logfmt), "json" (one JSON object per line),
//	        "off" (every record discarded)
//	level:  minimum level the handler emits
func NewLogHandler(w io.Writer, format string, level slog.Leveler) (slog.Handler, error) {
	switch format {
	case "text", "":
		return slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}), nil
	case "json":
		return slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}), nil
	case "off":
		return nopHandler{}, nil
	}
	return nil, fmt.Errorf("obs: bad log format %q (want text | json | off)", format)
}

// ParseLogLevel maps the -log-level flag to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: bad log level %q (want debug | info | warn | error)", s)
}

// nopHandler discards every record (slog.DiscardHandler needs go1.24; the
// module floor is 1.22).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }
