package graph

import "testing"

func TestRandomConnectedAndSized(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := Random(50, 150, GenOpts{Seed: seed, MaxW: 20, Directed: seed%2 == 0})
		if !g.CommConnected() {
			t.Fatalf("seed %d: Random graph disconnected", seed)
		}
		if g.M() != 150 {
			t.Fatalf("seed %d: M = %d, want 150", seed, g.M())
		}
		if g.MaxWeight() > 20 {
			t.Fatalf("seed %d: weight %d > MaxW", seed, g.MaxWeight())
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(30, 90, GenOpts{Seed: 42, MaxW: 7, Directed: true})
	b := Random(30, 90, GenOpts{Seed: 42, MaxW: 7, Directed: true})
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed, different edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c := Random(30, 90, GenOpts{Seed: 43, MaxW: 7, Directed: true})
	same := true
	ec := c.Edges()
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestMinWRespected(t *testing.T) {
	g := Random(20, 60, GenOpts{Seed: 5, MinW: 3, MaxW: 9})
	for _, e := range g.Edges() {
		if e.W < 3 || e.W > 9 {
			t.Fatalf("weight %d outside [3,9]", e.W)
		}
	}
}

func TestZeroFracProducesZeros(t *testing.T) {
	g := Random(50, 400, GenOpts{Seed: 8, MinW: 1, MaxW: 10, ZeroFrac: 0.5})
	zeros := 0
	for _, e := range g.Edges() {
		if e.W == 0 {
			zeros++
		}
	}
	if zeros < 100 || zeros > 300 {
		t.Fatalf("zero edges = %d of 400, want roughly half", zeros)
	}
}

func TestGnpConnected(t *testing.T) {
	g := Gnp(40, 0.1, GenOpts{Seed: 2})
	if !g.CommConnected() {
		t.Fatal("Gnp with backbone must be connected")
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4, GenOpts{Seed: 1, MaxW: 5})
	if g.N() != 12 {
		t.Fatalf("N = %d", g.N())
	}
	// Undirected grid edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	if !g.HasLink(0, 1) || !g.HasLink(0, 4) || g.HasLink(3, 4) {
		t.Fatal("grid adjacency wrong")
	}
	dg := Grid(3, 4, GenOpts{Seed: 1, MaxW: 5, Directed: true})
	if dg.M() != 34 {
		t.Fatalf("directed grid M = %d, want 34", dg.M())
	}
	if !dg.CommConnected() {
		t.Fatal("directed grid comm graph disconnected")
	}
}

func TestRingPathCompleteTree(t *testing.T) {
	if g := Ring(8, GenOpts{Seed: 1}); g.M() != 8 || !g.CommConnected() {
		t.Fatalf("ring: M=%d connected=%v", g.M(), g.CommConnected())
	}
	if g := Path(8, GenOpts{Seed: 1}); g.M() != 7 || g.CommDiameter() != 7 {
		t.Fatalf("path: M=%d diam=%d", g.M(), g.CommDiameter())
	}
	if g := Complete(6, GenOpts{Seed: 1}); g.M() != 15 || g.CommDiameter() != 1 {
		t.Fatalf("complete: M=%d diam=%d", g.M(), g.CommDiameter())
	}
	if g := RandomTree(20, GenOpts{Seed: 1}); g.M() != 19 || !g.CommConnected() {
		t.Fatalf("tree: M=%d connected=%v", g.M(), g.CommConnected())
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(60, 2, GenOpts{Seed: 4, MaxW: 9})
	if !g.CommConnected() {
		t.Fatal("PA graph disconnected")
	}
	// Hubs should exist: max degree well above the attachment degree.
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 5 {
		t.Fatalf("max degree %d suspiciously small for a PA graph", maxDeg)
	}
}

func TestSmallWorld(t *testing.T) {
	g := SmallWorld(40, 3, 0.2, GenOpts{Seed: 6, MaxW: 8})
	if !g.CommConnected() {
		t.Fatal("small-world disconnected (ring backbone must survive rewiring)")
	}
	// Rewiring should shrink the diameter well below the pure ring lattice.
	lattice := SmallWorld(40, 3, 0, GenOpts{Seed: 6, MaxW: 8})
	if d1, d2 := g.CommDiameter(), lattice.CommDiameter(); d1 > d2 {
		t.Fatalf("rewired diameter %d > lattice diameter %d", d1, d2)
	}
	// Determinism.
	h := SmallWorld(40, 3, 0.2, GenOpts{Seed: 6, MaxW: 8})
	if g.M() != h.M() {
		t.Fatal("SmallWorld not deterministic")
	}
}

func TestGeometric(t *testing.T) {
	g := Geometric(50, 0.25, GenOpts{Seed: 4, MinW: 1, MaxW: 10})
	if !g.CommConnected() {
		t.Fatal("geometric graph disconnected despite backbone")
	}
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 10 {
			t.Fatalf("weight %d outside [1,10]", e.W)
		}
	}
	// Larger radius, more edges.
	dense := Geometric(50, 0.5, GenOpts{Seed: 4, MinW: 1, MaxW: 10})
	if dense.M() <= g.M() {
		t.Fatalf("radius 0.5 edges %d ≤ radius 0.25 edges %d", dense.M(), g.M())
	}
	// Directed variant keeps pairs.
	dg := Geometric(30, 0.3, GenOpts{Seed: 4, MinW: 1, MaxW: 5, Directed: true})
	if !dg.CommConnected() {
		t.Fatal("directed geometric disconnected")
	}
}

func TestZeroHeavy(t *testing.T) {
	g := ZeroHeavy(40, 160, 0.6, GenOpts{Seed: 9, MaxW: 10})
	zeros := 0
	for _, e := range g.Edges() {
		if e.W == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Fatal("ZeroHeavy produced no zero edges")
	}
	if !g.CommConnected() {
		t.Fatal("ZeroHeavy disconnected")
	}
}

func TestLayeredZero(t *testing.T) {
	g := LayeredZero(4, 5, GenOpts{Seed: 3, MaxW: 6})
	if g.N() != 20 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.CommConnected() {
		t.Fatal("LayeredZero disconnected")
	}
	// Inside a layer distances are zero but hop counts are not.
	d, l := HHopDistHops(g, 0, g.N())
	if d[4] != 0 || l[4] != 4 {
		t.Fatalf("(d,l) along zero chain = (%d,%d), want (0,4)", d[4], l[4])
	}
}
