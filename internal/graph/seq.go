package graph

import "container/heap"

// This file contains the sequential reference implementations every
// distributed algorithm in the repository is validated against. They are
// deliberately simple and independent of the distributed code paths.

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v int
	d int64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d || (q[i].d == q[j].d && q[i].v < q[j].v) }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns single-source shortest path distances from src.
// Unreachable nodes get Inf. Zero-weight edges are handled (weights are
// non-negative).
func Dijkstra(g *Graph, src int) []int64 {
	d, _ := DijkstraTree(g, src)
	return d
}

// DijkstraTree returns distances and a shortest-path-tree parent array
// (parent[src] == src; parent[v] == -1 for unreachable v).
func DijkstraTree(g *Graph, src int) ([]int64, []int) {
	n := g.N()
	dist := make([]int64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for v := range dist {
		dist[v] = Inf
		parent[v] = -1
	}
	dist[src] = 0
	parent[src] = src
	q := &pq{{v: src, d: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.v] || it.d > dist[it.v] {
			continue
		}
		done[it.v] = true
		for _, e := range g.Out(it.v) {
			nd := it.d + e.W
			if nd < dist[e.To] {
				dist[e.To] = nd
				parent[e.To] = it.v
				heap.Push(q, pqItem{v: e.To, d: nd})
			}
		}
	}
	return dist, parent
}

// APSP returns the all-pairs shortest path distance matrix dist[src][v]
// computed by n runs of Dijkstra.
func APSP(g *Graph) [][]int64 {
	n := g.N()
	all := make([][]int64, n)
	for s := 0; s < n; s++ {
		all[s] = Dijkstra(g, s)
	}
	return all
}

// FloydWarshall returns the all-pairs distance matrix via the O(n^3)
// recurrence; an independent cross-check of APSP for small graphs.
func FloydWarshall(g *Graph) [][]int64 {
	n := g.N()
	d := make([][]int64, n)
	for i := range d {
		d[i] = make([]int64, n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = Inf
			}
		}
	}
	for _, e := range g.Edges() {
		if e.W < d[e.From][e.To] {
			d[e.From][e.To] = e.W
		}
		if !g.Directed() && e.W < d[e.To][e.From] {
			d[e.To][e.From] = e.W
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

// HHopDistances returns, for each v, the minimum weight of a path from src
// to v using at most h edges (Inf if no such path). Because weights are
// non-negative, the minimum over walks equals the minimum over simple paths.
func HHopDistances(g *Graph, src, h int) []int64 {
	d, _ := HHopDistHops(g, src, h)
	return d
}

// HHopDistHops returns, for each v, the minimum weight d of a path from src
// to v with at most h edges, together with the minimum hop count l among
// paths achieving weight d within the hop budget. This is the (d, l)
// tie-break order used by the paper's Algorithm 1 (Step 9).
// Unreachable nodes get (Inf, -1).
func HHopDistHops(g *Graph, src, h int) ([]int64, []int) {
	n := g.N()
	cur := make([]int64, n)
	next := make([]int64, n)
	hops := make([]int, n)
	for v := range cur {
		cur[v] = Inf
		hops[v] = -1
	}
	cur[src] = 0
	hops[src] = 0
	for i := 1; i <= h; i++ {
		copy(next, cur)
		changed := false
		for v := 0; v < n; v++ {
			if cur[v] >= Inf {
				continue
			}
			for _, e := range g.Out(v) {
				if nd := cur[v] + e.W; nd < next[e.To] {
					next[e.To] = nd
					changed = true
				}
			}
		}
		cur, next = next, cur
		// Record the first hop count at which each node attains its final
		// value; overwrite whenever the distance strictly improves.
		for v := 0; v < n; v++ {
			if cur[v] < next[v] || (hops[v] < 0 && cur[v] < Inf) {
				hops[v] = i
			}
		}
		if !changed {
			break
		}
	}
	return cur, hops
}

// KSourceHHop returns dist[i][v] = h-hop distance from sources[i] to v.
func KSourceHHop(g *Graph, sources []int, h int) [][]int64 {
	out := make([][]int64, len(sources))
	for i, s := range sources {
		out[i] = HHopDistances(g, s, h)
	}
	return out
}

// Delta returns the maximum finite shortest-path distance over all ordered
// pairs (the paper's Δ for APSP), and 0 for an edgeless graph.
func Delta(g *Graph) int64 {
	var max int64
	for _, row := range APSP(g) {
		for _, d := range row {
			if d < Inf && d > max {
				max = d
			}
		}
	}
	return max
}

// HHopDelta returns the maximum finite h-hop distance from the given sources
// (the Δ promise for (h,k)-SSP runs).
func HHopDelta(g *Graph, sources []int, h int) int64 {
	var max int64
	for _, s := range sources {
		for _, d := range HHopDistances(g, s, h) {
			if d < Inf && d > max {
				max = d
			}
		}
	}
	return max
}

// ZeroClosure returns reach[u][v] = true iff there is a path of total weight
// zero from u to v (including u == v). Used by the approximate-APSP
// algorithm of Sec. IV, which handles zero-distance pairs separately.
func ZeroClosure(g *Graph) [][]bool {
	n := g.N()
	zero := g.Subgraph(func(e Edge) bool { return e.W == 0 })
	reach := make([][]bool, n)
	for s := 0; s < n; s++ {
		reach[s] = make([]bool, n)
		reach[s][s] = true
		stack := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range zero.Out(v) {
				if !reach[s][e.To] {
					reach[s][e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
	}
	return reach
}
